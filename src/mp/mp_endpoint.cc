#include "mp/mp_endpoint.hh"

#include <utility>

#include "sim/logging.hh"

namespace tb {
namespace mp {

MpEndpoint::MpEndpoint(EventQueue& queue, NodeId node,
                       noc::Network& network, std::string name)
    : SimObject(queue, std::move(name)), nodeId(node), net(network)
{}

void
MpEndpoint::send(NodeId dst, MpMessage msg)
{
    if (!fabric)
        panic(name(), ": endpoint not attached to a fabric");
    msg.src = nodeId;
    statsGroup.scalar("sent").inc();
    // Delivery runs at the destination endpoint when the last flit
    // arrives; the network preserves per-pair ordering.
    net.send(nodeId, dst, msg.bytes, [this, dst, msg]() {
        fabric->endpoint(dst).deliver(msg);
    });
}

void
MpEndpoint::deliver(const MpMessage& msg)
{
    statsGroup.scalar("received").inc();
    if (wakeOnMessage) {
        auto wake = std::move(wakeOnMessage);
        wakeOnMessage = nullptr;
        wake();
    }
    for (auto& h : handlers)
        h(msg);
}

MpFabric::MpFabric(EventQueue& queue, noc::Network& network)
{
    const unsigned n = network.config().nodes();
    endpoints.reserve(n);
    for (NodeId i = 0; i < n; ++i) {
        endpoints.push_back(std::make_unique<MpEndpoint>(
            queue, i, network, "node" + std::to_string(i) + ".nic"));
        endpoints.back()->fabric = this;
    }
}

} // namespace mp
} // namespace tb
