/**
 * @file
 * Thrifty barrier for message-passing machines.
 *
 * A coordinator-based barrier: every thread sends an ARRIVE message
 * to the coordinator node; when all have checked in, the coordinator
 * measures the actual barrier interval time on its own clock, trains
 * the (replicated) BIT predictor, and broadcasts RELEASE messages
 * carrying the measured BIT — the message-passing analog of
 * publishing the shared BIT variable and flipping the flag.
 *
 * Early threads behave exactly like Section 3 prescribes, with the
 * coherence machinery swapped for NIC machinery:
 *
 *   shared-memory design            message-passing analog
 *   ------------------------------  -------------------------------
 *   spin on the flag line           poll the NIC for RELEASE
 *   flag monitor + invalidation     NIC wake-on-message
 *   wake-up timer in the cache ctl  wake-up timer (same hardware)
 *   published BIT shared variable   BIT payload in RELEASE
 *   per-thread local BRTS chain     identical (local clocks only)
 *
 * Because releases are point-to-point messages, each node observes
 * its own release instant; the BRTS chain absorbs the skew exactly
 * as in the shared-memory design.
 *
 * Configuration reuses ThriftyConfig: sleep-state table, wake-up
 * policy, overprediction cutoff and underprediction filter all apply
 * unchanged. An empty state table yields the conventional polling
 * barrier (the MP baseline).
 */

#ifndef TB_MP_MP_BARRIER_HH_
#define TB_MP_MP_BARRIER_HH_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "cpu/cpu.hh"
#include "mp/mp_endpoint.hh"
#include "sim/sim_object.hh"
#include "thrifty/barrier.hh"
#include "thrifty/bit_predictor.hh"
#include "thrifty/thrifty_config.hh"

namespace tb {
namespace mp {

/** Shared state of all MP thrifty barriers in one program. */
class MpRuntime
{
  public:
    MpRuntime(unsigned num_threads, const thrifty::ThriftyConfig& cfg,
              thrifty::SyncStats& stats);

    unsigned numThreads() const { return threads; }
    const thrifty::ThriftyConfig& config() const { return cfg; }
    thrifty::BitPredictor& predictor() { return *pred; }
    thrifty::SyncStats& stats() { return syncStats; }

    Tick brts(ThreadId tid) const { return brts_.at(tid); }
    void advanceBrts(ThreadId tid, Tick bit) { brts_.at(tid) += bit; }

  private:
    unsigned threads;
    thrifty::ThriftyConfig cfg;
    std::unique_ptr<thrifty::BitPredictor> pred;
    thrifty::SyncStats& syncStats;
    std::vector<Tick> brts_;
};

/**
 * One static message-passing barrier. The CPU at each node is driven
 * through the same power-state machine as in the shared-memory
 * design; only the wait/wake plumbing differs.
 */
class MpBarrier : public SimObject
{
  public:
    /**
     * @param queue       Simulation event queue.
     * @param pc          Static identifier of this barrier.
     * @param runtime     Shared MP thrifty runtime.
     * @param fabric      Message endpoints (one per node).
     * @param cpus        The per-node CPUs (indexed by NodeId).
     * @param coordinator Node hosting the arrival counter.
     */
    MpBarrier(EventQueue& queue, thrifty::BarrierPc pc,
              MpRuntime& runtime, MpFabric& fabric,
              std::vector<cpu::Cpu*> cpus, NodeId coordinator,
              std::string name);

    /**
     * Thread on node @p tid arrives; @p cont runs when its RELEASE
     * message has been received (and the CPU is active).
     */
    void arrive(ThreadId tid, std::function<void()> cont);

    thrifty::BarrierPc pc() const { return barrierPc; }
    std::uint64_t instances() const { return instanceIdx; }

  private:
    /** Message tags. */
    enum : std::uint32_t { kArrive = 1, kRelease = 2 };

    /** Coordinator side: an ARRIVE message landed. */
    void onArrive(const MpMessage& msg);

    /** Waiter side: the RELEASE for this node landed. */
    void onRelease(ThreadId tid, const MpMessage& msg);

    /** Begin waiting (spin or sleep) after checking in. */
    void wait(ThreadId tid);

    /** Waiter is awake and released: bookkeeping + continue. */
    void depart(ThreadId tid);

    thrifty::BarrierPc barrierPc;
    MpRuntime& runtime;
    MpFabric& fabric;
    std::vector<cpu::Cpu*> cpus;
    NodeId coord;
    unsigned total;

    // Coordinator state.
    unsigned arrived = 0;
    Tick lastReleaseTick = 0; ///< coordinator-clock BIT anchor
    std::uint64_t instanceIdx = 0;

    // Per-waiter state.
    struct Waiter
    {
        std::function<void()> cont;
        bool released = false;
        bool waiting = false;  ///< checked in, not yet departed
        bool spinning = false; ///< currently in the polling loop
        Tick arrival = 0;
        Tick wakeTick = kTickNever;
        Tick publishedBit = 0;
        std::uint64_t instance = 0;
        EventHandle timer; ///< internal wake-up, canceled on release
    };
    std::vector<Waiter> waiters;
};

} // namespace mp
} // namespace tb

#endif // TB_MP_MP_BARRIER_HH_
