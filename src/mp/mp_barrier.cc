#include "mp/mp_barrier.hh"

#include <utility>

#include "sim/logging.hh"

namespace tb {
namespace mp {

MpRuntime::MpRuntime(unsigned num_threads,
                     const thrifty::ThriftyConfig& config,
                     thrifty::SyncStats& stats)
    : threads(num_threads),
      cfg(config),
      pred(thrifty::makePredictor(config.predictorKind)),
      syncStats(stats),
      brts_(num_threads, 0)
{
    if (num_threads == 0)
        fatal("MP runtime needs at least one thread");
    if (cfg.oracle)
        fatal("oracle mode is not implemented for the MP barrier");
}

MpBarrier::MpBarrier(EventQueue& queue, thrifty::BarrierPc pc,
                     MpRuntime& rt, MpFabric& fabric_,
                     std::vector<cpu::Cpu*> cpu_list,
                     NodeId coordinator, std::string name)
    : SimObject(queue, std::move(name)),
      barrierPc(pc),
      runtime(rt),
      fabric(fabric_),
      cpus(std::move(cpu_list)),
      coord(coordinator),
      total(rt.numThreads()),
      waiters(total)
{
    if (cpus.size() < total)
        fatal(this->name(), ": need one CPU per thread");
    if (coord >= fabric.numNodes())
        fatal(this->name(), ": coordinator outside fabric");

    // Register a demultiplexing handler on every endpoint: this
    // barrier consumes messages whose payload a == pc; other barriers
    // register their own handlers alongside.
    for (NodeId n = 0; n < total; ++n) {
        fabric.endpoint(n).addHandler([this,
                                       n](const MpMessage& msg) {
            if (msg.a != barrierPc)
                return;
            if (msg.tag == kArrive)
                onArrive(msg);
            else if (msg.tag == kRelease)
                onRelease(static_cast<ThreadId>(n), msg);
            else
                panic(this->name(), ": unknown tag ", msg.tag);
        });
    }
}

void
MpBarrier::arrive(ThreadId tid, std::function<void()> cont)
{
    if (tid >= total)
        panic(name(), ": thread ", tid, " outside barrier population");
    Waiter& w = waiters[tid];
    if (w.waiting)
        panic(name(), ": thread ", tid, " arrived twice");

    thrifty::SyncStats& st = runtime.stats();
    ++st.arrivals;
    w.cont = std::move(cont);
    w.released = false;
    w.waiting = true;
    w.spinning = false;
    w.arrival = curTick();
    w.wakeTick = kTickNever;
    w.publishedBit = 0;
    w.instance = instanceIdx;

    MpMessage m;
    m.tag = kArrive;
    m.a = barrierPc;
    m.b = tid;
    m.bytes = 16;
    fabric.endpoint(tid).send(coord, m);

    wait(tid);
}

void
MpBarrier::wait(ThreadId tid)
{
    Waiter& w = waiters[tid];
    const thrifty::ThriftyConfig& cfg = runtime.config();
    thrifty::SyncStats& st = runtime.stats();
    cpu::Cpu& cpu = *cpus[tid];

    // Predict the stall ahead, exactly as in the shared-memory
    // design (Section 3.2).
    const power::SleepState* state = nullptr;
    Tick predicted_wake = 0;
    if (auto bit = runtime.predictor().predict(barrierPc, tid)) {
        predicted_wake = runtime.brts(tid) + *bit;
        if (predicted_wake > curTick())
            state = cfg.states.select(predicted_wake - curTick());
    }

    if (!state) {
        // Poll the NIC for the release (the MP spinloop).
        ++st.spins;
        w.spinning = true;
        cpu.beginSpin();
        return; // resumed by onRelease()
    }

    ++st.sleeps;
    if (cfg.wakeup != thrifty::WakeupPolicy::Internal) {
        fabric.endpoint(tid).armWakeOnMessage([this, tid]() {
            cpus[tid]->wakeRequest(mem::WakeReason::ExternalFlag);
        });
    }
    if (cfg.wakeup != thrifty::WakeupPolicy::External) {
        const Tick lead = state->transitionLatency;
        const Tick target = predicted_wake > curTick() + lead
                                ? predicted_wake - lead
                                : curTick();
        w.timer.cancel();
        w.timer = eq.schedule(target, [this, tid]() {
            cpus[tid]->wakeRequest(mem::WakeReason::Timer);
        });
    }

    cpu.enterSleep(*state, [this, tid](mem::WakeReason) {
        Waiter& ww = waiters[tid];
        ww.wakeTick = curTick();
        if (ww.released) {
            depart(tid);
            return;
        }
        // Woke before the release (early timer): residual poll.
        ww.spinning = true;
        cpus[tid]->beginSpin();
        ++runtime.stats().residualSpins;
    });
}

void
MpBarrier::onArrive(const MpMessage& msg)
{
    (void)msg;
    if (++arrived < total)
        return;
    arrived = 0;

    // All checked in: measure the interval on the coordinator's
    // clock, train the predictor (unless filtered), broadcast.
    const Tick actual_bit = curTick() - lastReleaseTick;
    lastReleaseTick = curTick();

    const thrifty::ThriftyConfig& cfg = runtime.config();
    bool skip = false;
    if (cfg.underpredictionFilter > 0.0) {
        if (auto prev = runtime.predictor().stored(barrierPc)) {
            if (static_cast<double>(actual_bit) >
                cfg.underpredictionFilter *
                    static_cast<double>(*prev)) {
                skip = true;
                ++runtime.stats().filteredUpdates;
            }
        }
    }
    if (!skip)
        runtime.predictor().update(barrierPc, actual_bit);

    ++instanceIdx;
    ++runtime.stats().instances;

    for (NodeId n = 0; n < total; ++n) {
        MpMessage m;
        m.tag = kRelease;
        m.a = barrierPc;
        m.b = actual_bit;
        m.bytes = 16;
        fabric.endpoint(coord).send(n, m);
    }
}

void
MpBarrier::onRelease(ThreadId tid, const MpMessage& msg)
{
    Waiter& w = waiters[tid];
    if (!w.waiting)
        panic(name(), ": release for a thread that is not waiting");
    w.released = true;
    w.publishedBit = msg.b;
    fabric.endpoint(tid).disarmWakeOnMessage();
    // The external path won the race (or the thread is polling):
    // the internal timer has nothing left to do.
    if (runtime.config().wakeup != thrifty::WakeupPolicy::Internal)
        w.timer.cancel();

    if (w.spinning) {
        // Polling (conventional wait or residual poll): the message
        // arrival is observed on the next poll iteration.
        if (w.wakeTick != kTickNever) {
            runtime.stats().residualSpinTicks +=
                static_cast<double>(curTick() - w.wakeTick);
        }
        w.spinning = false;
        cpus[tid]->endSpin();
        depart(tid);
        return;
    }
    // Asleep (or mid-transition): the NIC wake (hybrid/external) ran
    // just before this handler, or the timer (internal) will fire
    // later; either way the enterSleep wake callback sees
    // released == true and departs.
}

void
MpBarrier::depart(ThreadId tid)
{
    Waiter& w = waiters[tid];
    const thrifty::ThriftyConfig& cfg = runtime.config();

    runtime.advanceBrts(tid, w.publishedBit);
    const Tick release_ts = runtime.brts(tid);
    if (w.wakeTick != kTickNever && cfg.overpredictionThreshold >= 0.0 &&
        w.wakeTick > release_ts) {
        const Tick penalty = w.wakeTick - release_ts;
        if (static_cast<double>(penalty) >
            cfg.overpredictionThreshold *
                static_cast<double>(w.publishedBit)) {
            runtime.predictor().disable(barrierPc, tid);
            ++runtime.stats().cutoffs;
        }
    }
    runtime.stats().totalStallTicks +=
        static_cast<double>(curTick() - w.arrival);

    thrifty::SyncStats& st = runtime.stats();
    if (st.traceEnabled) {
        thrifty::BarrierTraceEntry e;
        e.pc = barrierPc;
        e.instance = w.instance;
        e.tid = tid;
        e.bit = w.publishedBit;
        const Tick compute = w.arrival > release_ts - w.publishedBit
                                 ? w.arrival -
                                       (release_ts - w.publishedBit)
                                 : 0;
        e.compute = std::min(compute, w.publishedBit);
        e.stall = e.bit - e.compute;
        st.trace.push_back(e);
    }

    w.waiting = false;
    auto cont = std::move(w.cont);
    w.cont = nullptr;
    cont();
}

} // namespace mp
} // namespace tb
