/**
 * @file
 * Message-passing endpoints over the interconnect.
 *
 * The paper notes the thrifty barrier "is conceptually viable in
 * other environments such as message-passing machines" (Section 1).
 * This module provides the substrate to demonstrate that: one NIC-like
 * endpoint per node exchanging explicit, typed messages over the same
 * hypercube network the coherence protocol uses — no shared memory,
 * no coherence. An endpoint can be armed to *wake the CPU* when a
 * message arrives, playing the role the flag invalidation plays in
 * the shared-memory design.
 */

#ifndef TB_MP_MP_ENDPOINT_HH_
#define TB_MP_MP_ENDPOINT_HH_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "noc/network.hh"
#include "sim/sim_object.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace tb {
namespace mp {

/** An application-level message. */
struct MpMessage
{
    std::uint32_t tag = 0;    ///< application-defined kind
    std::uint64_t a = 0;      ///< payload word A
    std::uint64_t b = 0;      ///< payload word B
    NodeId src = kInvalidNode;
    unsigned bytes = 32;      ///< wire size charged to the network
};

/** One node's NIC. */
class MpEndpoint : public SimObject
{
  public:
    using Handler = std::function<void(const MpMessage&)>;

    MpEndpoint(EventQueue& queue, NodeId node, noc::Network& network,
               std::string name);

    NodeId node() const { return nodeId; }

    /** Install the message delivery handler. */
    void setHandler(Handler h)
    {
        handlers.clear();
        handlers.push_back(std::move(h));
    }

    /** Add a delivery handler (all registered handlers see every
     *  message; each filters by its own tags/ids). */
    void addHandler(Handler h) { handlers.push_back(std::move(h)); }

    /** Send @p msg to node @p dst (src filled in automatically). */
    void send(NodeId dst, MpMessage msg);

    /**
     * Arm the NIC wake-up: the next delivered message (any tag)
     * triggers @p wake before the handler runs. One-shot.
     */
    void
    armWakeOnMessage(std::function<void()> wake)
    {
        wakeOnMessage = std::move(wake);
    }

    /** Disarm the NIC wake-up. */
    void disarmWakeOnMessage() { wakeOnMessage = nullptr; }

    const stats::StatGroup& statistics() const { return statsGroup; }

  private:
    friend class MpFabric;
    void deliver(const MpMessage& msg);

    NodeId nodeId;
    noc::Network& net;
    class MpFabric* fabric = nullptr; ///< set by the owning fabric
    std::vector<Handler> handlers;
    std::function<void()> wakeOnMessage;
    stats::StatGroup statsGroup;
};

/** Builds and owns one endpoint per node of a network. */
class MpFabric
{
  public:
    explicit MpFabric(EventQueue& queue, noc::Network& network);

    MpEndpoint& endpoint(NodeId n) { return *endpoints.at(n); }
    unsigned numNodes() const
    {
        return static_cast<unsigned>(endpoints.size());
    }

  private:
    std::vector<std::unique_ptr<MpEndpoint>> endpoints;
};

} // namespace mp
} // namespace tb

#endif // TB_MP_MP_ENDPOINT_HH_
