#include "svc/service_journal.hh"

#include <cerrno>
#include <cinttypes>
#include <cstdlib>
#include <cstring>
#include <fstream>

#include "harness/campaign_journal.hh"
#include "sim/logging.hh"

namespace tb {
namespace svc {

namespace {

/** Offset just past `"key": ` (and the opening quote for strings). */
std::size_t
fieldStart(const std::string& line, const char* key, bool string_field)
{
    const std::string pat = std::string("\"") + key + "\": ";
    const std::size_t at = line.find(pat);
    if (at == std::string::npos)
        return std::string::npos;
    std::size_t off = at + pat.size();
    if (string_field) {
        if (off >= line.size() || line[off] != '"')
            return std::string::npos;
        ++off;
    }
    return off;
}

bool
parseU64Field(const std::string& line, const char* key, int base,
              std::uint64_t* out)
{
    const std::size_t off = fieldStart(line, key, base == 16);
    if (off == std::string::npos)
        return false;
    errno = 0;
    char* end = nullptr;
    const unsigned long long v =
        std::strtoull(line.c_str() + off, &end, base);
    if (end == line.c_str() + off || errno == ERANGE)
        return false;
    *out = v;
    return true;
}

/**
 * Split a journal line into its checksum-covered body and verify the
 * trailing `, "check": "%016x"}` seal. False (= skip the line) on a
 * torn line, a foreign line, or a checksum mismatch.
 */
bool
sealedBody(const std::string& line, std::string* body)
{
    const std::string pat = ", \"check\": \"";
    const std::size_t at = line.rfind(pat);
    if (at == std::string::npos ||
        line.size() != at + pat.size() + 16 + 2 ||
        line.compare(line.size() - 2, 2, "\"}") != 0)
        return false;
    std::uint64_t check = 0;
    if (!parseU64Field(line.substr(at + 2), "check", 16, &check))
        return false;
    *body = line.substr(0, at);
    return harness::fnv1a64(*body) == check;
}

/** Last field of a body is a string: extract and unescape it. The
 *  body's final character is its closing quote. */
bool
trailingString(const std::string& body, const char* key,
               std::string* out)
{
    const std::size_t off = fieldStart(body, key, true);
    if (off == std::string::npos || body.empty() ||
        body.back() != '"' || off > body.size() - 1)
        return false;
    // Escapes only ever shrink on decode; the writer used the shared
    // JSON escape, so round-trip through the journal unescaper.
    const std::string raw = body.substr(off, body.size() - 1 - off);
    std::string plain;
    plain.reserve(raw.size());
    for (std::size_t i = 0; i < raw.size(); ++i) {
        if (raw[i] != '\\') {
            plain += raw[i];
            continue;
        }
        if (++i >= raw.size())
            return false;
        switch (raw[i]) {
          case '"':  plain += '"'; break;
          case '\\': plain += '\\'; break;
          case 'n':  plain += '\n'; break;
          case 'r':  plain += '\r'; break;
          case 't':  plain += '\t'; break;
          default:   return false; // \uXXXX never appears in names
        }
    }
    *out = std::move(plain);
    return true;
}

} // namespace

ServiceJournal::~ServiceJournal()
{
    if (out_)
        std::fclose(out_);
}

void
ServiceJournal::open(const std::string& path, bool resume)
{
    path_ = path;
    hasCampaign_ = false;
    fingerprint_ = 0;
    count_ = 0;
    loaded_ = 0;
    recovered_.clear();

    if (resume) {
        std::ifstream in(path);
        std::string line;
        while (in && std::getline(in, line)) {
            std::string body;
            if (!sealedBody(line, &body))
                continue; // torn final line: event never landed
            std::string kind;
            {
                const std::size_t off = fieldStart(body, "svc", true);
                const std::size_t end =
                    off == std::string::npos ? std::string::npos
                                             : body.find('"', off);
                if (end == std::string::npos)
                    continue;
                kind = body.substr(off, end - off);
            }
            if (kind == "campaign") {
                std::uint64_t fp = 0, n = 0;
                if (!parseU64Field(body, "fingerprint", 16, &fp) ||
                    !parseU64Field(body, "count", 10, &n))
                    continue;
                if (hasCampaign_ &&
                    (fp != fingerprint_ || n != count_)) {
                    char a[17], b[17];
                    std::snprintf(a, sizeof(a), "%016" PRIx64,
                                  fingerprint_);
                    std::snprintf(b, sizeof(b), "%016" PRIx64, fp);
                    fatal("service journal ", path,
                          ": conflicting campaign records (fingerprint ",
                          a, "/", count_, " points vs ", b, "/", n,
                          " points) — this journal was shared by two "
                          "different campaigns; delete it or give each "
                          "campaign its own --journal file");
                }
                hasCampaign_ = true;
                fingerprint_ = fp;
                count_ = n;
                ++loaded_;
                continue;
            }
            std::uint64_t point = 0;
            if (!parseU64Field(body, "point", 10, &point))
                continue;
            PointRecovery& rec =
                recovered_[static_cast<std::size_t>(point)];
            if (kind == "lease" || kind == "loss") {
                std::uint64_t attempt = 0;
                if (!parseU64Field(body, "attempt", 10, &attempt))
                    continue;
                if (attempt > rec.attempts)
                    rec.attempts = static_cast<unsigned>(attempt);
                rec.outstanding = kind == "lease";
                if (kind == "loss") {
                    std::string reason;
                    if (trailingString(body, "reason", &reason))
                        rec.lastReason = std::move(reason);
                }
            } else if (kind == "done") {
                // Completed: nothing to recover. The result itself
                // lives in the completion journal; dropping the
                // entry just keeps resume reports clean.
                recovered_.erase(static_cast<std::size_t>(point));
            } else {
                continue; // unknown kind (newer writer): ignore
            }
            ++loaded_;
        }
    }

    out_ = std::fopen(path.c_str(), resume ? "ab" : "wb");
    if (!out_)
        fatal("cannot open service journal ", path, ": ",
              errnoMessage(errno));
}

void
ServiceJournal::append(const std::string& body)
{
    if (!out_)
        return;
    std::fprintf(out_, "%s, \"check\": \"%016" PRIx64 "\"}\n",
                 body.c_str(), harness::fnv1a64(body));
    std::fflush(out_);
}

void
ServiceJournal::recordCampaign(std::uint64_t fingerprint,
                               std::uint64_t count)
{
    if (!out_)
        return;
    if (hasCampaign_ &&
        (fingerprint != fingerprint_ || count != count_)) {
        char a[17], b[17];
        std::snprintf(a, sizeof(a), "%016" PRIx64, fingerprint_);
        std::snprintf(b, sizeof(b), "%016" PRIx64, fingerprint);
        fatal("service journal ", path_, ": resumed campaign "
              "(fingerprint ", a, ", ", count_,
              " points) does not match this campaign (fingerprint ",
              b, ", ", count, " points) — wrong --journal file?");
    }
    hasCampaign_ = true;
    fingerprint_ = fingerprint;
    count_ = count;
    char body[128];
    std::snprintf(body, sizeof(body),
                  "{\"svc\": \"campaign\", \"fingerprint\": "
                  "\"%016" PRIx64 "\", \"count\": %" PRIu64,
                  fingerprint, count);
    append(body);
}

void
ServiceJournal::recordLease(std::size_t point, unsigned attempt,
                            const std::string& worker)
{
    if (!out_)
        return;
    std::string body = "{\"svc\": \"lease\", \"point\": " +
                       std::to_string(point) + ", \"attempt\": " +
                       std::to_string(attempt) + ", \"worker\": \"" +
                       harness::CampaignJournal::escapeJson(worker) +
                       "\"";
    append(body);
}

void
ServiceJournal::recordLoss(std::size_t point, unsigned attempt,
                           const std::string& reason)
{
    if (!out_)
        return;
    std::string body = "{\"svc\": \"loss\", \"point\": " +
                       std::to_string(point) + ", \"attempt\": " +
                       std::to_string(attempt) + ", \"reason\": \"" +
                       harness::CampaignJournal::escapeJson(reason) +
                       "\"";
    append(body);
}

void
ServiceJournal::recordDone(std::size_t point)
{
    if (!out_)
        return;
    append("{\"svc\": \"done\", \"point\": " + std::to_string(point));
}

} // namespace svc
} // namespace tb
