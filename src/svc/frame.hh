/**
 * @file
 * The campaign service wire protocol: length-prefixed, versioned
 * frames over a Unix-domain or TCP socket (docs/ROBUSTNESS.md,
 * "Distributed campaigns").
 *
 * Every frame is a fixed 12-byte header followed by a payload:
 *
 *   offset  size  field
 *        0     4  magic "TBF1"
 *        4     2  protocol version (little-endian, currently 1)
 *        6     2  frame type (FrameType, little-endian)
 *        8     4  payload length in bytes (little-endian)
 *
 * Payload contents are frame-type-specific sequences of little-endian
 * u64s and u32-length-prefixed strings (appendU64/appendString and
 * the PayloadReader below). Campaign point results travel as the
 * existing TBRESULT1 serde / campaign artifact strings, verbatim —
 * the wire adds framing, never re-encodes.
 *
 * The header is versioned and self-delimiting so a mismatched peer
 * (old binary, wrong port, line noise) is detected at the first
 * frame: bad magic or version is a protocol error that closes the
 * connection and lands in the crash ledger, never undefined behaviour
 * further in. Payloads are capped (kMaxFramePayload) so a corrupt
 * length field cannot make a peer allocate unbounded memory.
 */

#ifndef TB_SVC_FRAME_HH_
#define TB_SVC_FRAME_HH_

#include <cstdint>
#include <string>
#include <vector>

namespace tb {
namespace svc {

/** Protocol version this build speaks. */
constexpr std::uint16_t kFrameVersion = 1;

/** Upper bound on one frame's payload (a corrupt header must not
 *  translate into an unbounded allocation). */
constexpr std::uint32_t kMaxFramePayload = 64u << 20;

/** Frame types of protocol version 1. */
enum class FrameType : std::uint16_t
{
    // worker -> daemon
    Hello = 1,        ///< u64 count, u64 fingerprint, str name
    LeaseRequest = 2, ///< (empty)
    Heartbeat = 3,    ///< u64 point
    Result = 4,       ///< u64 point, u64 key, u64 checksum, str artifact
    PointError = 5,   ///< u64 point, u64 outcome, str message
    Goodbye = 6,      ///< str reason
    Keys = 7,         ///< count x u64 point config hashes (on request)

    // daemon -> worker
    HelloAck = 32,   ///< u64 workerId, u64 heartbeatMs, u64 leaseMs,
                     ///< u64 flags (kHelloAckWantKeys)
    LeaseGrant = 33, ///< u64 point, u64 attempt
    NoWork = 34,     ///< u64 retryAfterMs (all leased / backing off)
    Done = 35,       ///< (empty) campaign complete, worker may exit
    ResultAck = 36,  ///< u64 point
    Reject = 37,     ///< str reason (protocol error; connection closes)
};

/** HelloAck flag: daemon has no key table (generic tb_campaignd) and
 *  asks the worker to upload its per-point config hashes. */
constexpr std::uint64_t kHelloAckWantKeys = 1;

/** Human-readable frame-type name (diagnostics, crash ledger). */
const char* frameTypeName(FrameType t);

/** One decoded frame. */
struct Frame
{
    FrameType type = FrameType::Reject;
    std::string payload;
};

/** Append a little-endian u64 to a payload under construction. */
void appendU64(std::string* payload, std::uint64_t v);

/** Append a u32-length-prefixed string to a payload. */
void appendString(std::string* payload, const std::string& s);

/** Sequential reader over a received payload. */
class PayloadReader
{
  public:
    explicit PayloadReader(const std::string& payload)
        : data_(payload)
    {}

    /** False once any read ran past the end (check after reading). */
    bool ok() const { return ok_; }
    /** Whether every payload byte was consumed. */
    bool exhausted() const { return ok_ && at_ == data_.size(); }

    std::uint64_t u64();
    std::string str();

  private:
    const std::string& data_;
    std::size_t at_ = 0;
    bool ok_ = true;
};

/** Wire size of the fixed frame header. */
constexpr std::size_t kFrameHeaderSize = 12;

/**
 * Validate a kFrameHeaderSize-byte header: magic, version, payload
 * cap. True on success with @p type / @p length filled in; false with
 * a diagnostic in @p err. Exposed for transports that reassemble the
 * header from fragments (net_faults.cc) and for the protocol fuzzer.
 */
bool parseFrameHeader(const char* header, FrameType* type,
                      std::uint32_t* length, std::string* err);

/** Serialize a frame (header + payload) to wire bytes. */
std::string encodeFrame(FrameType type, const std::string& payload);

/**
 * Write one frame to @p fd (EINTR-safe, blocking). False on any I/O
 * error — with SIGPIPE ignored, a dead peer surfaces here as EPIPE.
 */
bool sendFrame(int fd, FrameType type, const std::string& payload);

/**
 * Blocking read of exactly one frame. Returns 1 on success, 0 on
 * clean EOF before a header byte, -1 on error (malformed header,
 * truncated frame, I/O failure) with a diagnostic in @p err.
 */
int recvFrame(int fd, Frame* out, std::string* err);

/**
 * Incremental frame decoder for non-blocking connections: the daemon
 * feeds whatever bytes poll() surfaced and collects every complete
 * frame. A malformed header poisons the reader permanently — framing
 * is unrecoverable once desynchronized.
 */
class FrameReader
{
  public:
    /**
     * Consume @p n bytes, appending decoded frames to @p out.
     * Returns false (and sets error()) on a malformed header.
     */
    bool feed(const char* data, std::size_t n,
              std::vector<Frame>* out);

    const std::string& error() const { return error_; }

  private:
    std::string buf_;
    std::string error_;
    bool poisoned_ = false;
};

} // namespace svc
} // namespace tb

#endif // TB_SVC_FRAME_HH_
