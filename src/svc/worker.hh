/**
 * @file
 * Campaign worker client: leases points from a CampaignService and
 * streams artifacts back (docs/ROBUSTNESS.md, "Distributed
 * campaigns").
 *
 * A worker is deliberately stateless about the campaign: it knows the
 * point space (count + per-point config hashes) and how to execute a
 * point; everything else — what to run next, retry budgets, whether
 * the work already exists in the journal or cache — lives in the
 * daemon. That is what makes a SIGKILLed worker free: it held only
 * leases, and leases come back.
 *
 * While a point simulates, a heartbeat thread keeps the connection
 * demonstrably alive at the daemon-announced interval; a worker wedged
 * inside a simulation stops heartbeating and is declared dead after
 * kHeartbeatMisses intervals, bounding the daemon's exposure without
 * any worker-side watchdog.
 */

#ifndef TB_SVC_WORKER_HH_
#define TB_SVC_WORKER_HH_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/thread_safety.hh"
#include "svc/frame.hh"
#include "svc/net_faults.hh"

namespace tb {
namespace svc {

/** One worker process's configuration. */
struct WorkerOptions
{
    std::string connect;           ///< unix:PATH or tcp:HOST:PORT
    std::string name;              ///< announced id; "" = "pid@host"
    std::size_t count = 0;         ///< point-space size
    std::vector<std::uint64_t> keys; ///< per-point config hashes
    /// How long to keep retrying the initial connect. Workers are
    /// typically launched alongside the daemon; this absorbs the
    /// daemon's startup (journal replay, cache scan) without the
    /// launcher needing sleeps.
    std::uint64_t connectWaitMs = 5000;
    /// Budget for transparent reconnection after losing an
    /// established daemon socket mid-campaign: long enough to ride
    /// out a daemon SIGKILL + `--serve --resume` restart. 0 restores
    /// the old behaviour (treat daemon loss as campaign-over).
    std::uint64_t reconnectWaitMs = 5000;
    /// Deterministic network fault injection over this worker's
    /// socket (--net-faults; all-zero = clean transport).
    NetFaultSpec netFaults;
};

/** Client-side counters (smoke tests assert on these). */
struct WorkerStats
{
    std::uint64_t leases = 0;
    std::uint64_t results = 0;
    std::uint64_t pointErrors = 0;
    std::uint64_t heartbeats = 0;
    std::uint64_t noWorkWaits = 0;
    std::uint64_t reconnects = 0; ///< successful re-handshakes
};

/** Lease/execute/report loop of one worker process. */
class CampaignWorker
{
  public:
    explicit CampaignWorker(WorkerOptions opts);
    ~CampaignWorker();

    CampaignWorker(const CampaignWorker&) = delete;
    CampaignWorker& operator=(const CampaignWorker&) = delete;

    /**
     * Connect, handshake, then lease and execute points via @p fn
     * until the daemon reports the campaign Done. @p fn returns the
     * point's serialized artifact; exceptions become PointError
     * frames classified like the local supervisor (PanicError ->
     * checker-violation, anything else -> exception). A lost daemon
     * socket is survivable: the worker finishes any in-flight point
     * locally, reconnects under deterministic exponential backoff
     * (bounded by reconnectWaitMs), re-announces itself by name, and
     * resubmits the unacknowledged report. Returns true on a clean
     * Done (or when the daemon stays gone past the reconnect budget —
     * the campaign presumably ended); false (with a diagnostic in
     * @p err) on rejection or a protocol-fatal exchange.
     */
    bool run(const std::function<std::string(std::size_t)>& fn,
             std::string* err);

    const WorkerStats& stats() const { return stats_; }
    std::uint64_t workerId() const { return workerId_; }

    /** Injected-fault counters (the --net-faults stderr line). */
    const NetFaultCounters& faultCounters() const
    {
        return transport_.counters();
    }

    /** Announced identity (the pid@host default when unset). */
    const std::string& name() const { return opts_.name; }

  private:
    /** A locally finished point whose report the daemon has not yet
     *  acknowledged; survives reconnects until acked. */
    struct PendingReport
    {
        bool valid = false;
        std::size_t point = 0;
        FrameType type = FrameType::Result;
        std::string payload;
    };

    /** 1 = handshake complete, 0 = daemon unreachable (retryable),
     *  -1 = protocol-fatal (rejected / malformed ack). */
    int handshake(std::uint64_t waitMs, std::string* err);
    /** 1 = reconnected, 0 = budget exhausted, -1 = fatal. */
    int reconnect(std::string* err);
    void dropConnection();
    void executePoint(
        std::size_t point,
        const std::function<std::string(std::size_t)>& fn);
    bool sendLocked(FrameType type, const std::string& payload);

    WorkerOptions opts_;
    int fd_ = -1;
    Mutex sendMu_; ///< main loop and heartbeat thread share the socket
    std::uint64_t workerId_ = 0;
    std::uint64_t heartbeatMs_ = 1000;
    WorkerStats stats_;
    FaultyTransport transport_;
    PendingReport pending_;
};

} // namespace svc
} // namespace tb

#endif // TB_SVC_WORKER_HH_
