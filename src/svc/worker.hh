/**
 * @file
 * Campaign worker client: leases points from a CampaignService and
 * streams artifacts back (docs/ROBUSTNESS.md, "Distributed
 * campaigns").
 *
 * A worker is deliberately stateless about the campaign: it knows the
 * point space (count + per-point config hashes) and how to execute a
 * point; everything else — what to run next, retry budgets, whether
 * the work already exists in the journal or cache — lives in the
 * daemon. That is what makes a SIGKILLed worker free: it held only
 * leases, and leases come back.
 *
 * While a point simulates, a heartbeat thread keeps the connection
 * demonstrably alive at the daemon-announced interval; a worker wedged
 * inside a simulation stops heartbeating and is declared dead after
 * kHeartbeatMisses intervals, bounding the daemon's exposure without
 * any worker-side watchdog.
 */

#ifndef TB_SVC_WORKER_HH_
#define TB_SVC_WORKER_HH_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/thread_safety.hh"
#include "svc/frame.hh"

namespace tb {
namespace svc {

/** One worker process's configuration. */
struct WorkerOptions
{
    std::string connect;           ///< unix:PATH or tcp:HOST:PORT
    std::string name;              ///< announced id; "" = "pid@host"
    std::size_t count = 0;         ///< point-space size
    std::vector<std::uint64_t> keys; ///< per-point config hashes
    /// How long to keep retrying the initial connect. Workers are
    /// typically launched alongside the daemon; this absorbs the
    /// daemon's startup (journal replay, cache scan) without the
    /// launcher needing sleeps.
    std::uint64_t connectWaitMs = 5000;
};

/** Client-side counters (smoke tests assert on these). */
struct WorkerStats
{
    std::uint64_t leases = 0;
    std::uint64_t results = 0;
    std::uint64_t pointErrors = 0;
    std::uint64_t heartbeats = 0;
    std::uint64_t noWorkWaits = 0;
};

/** Lease/execute/report loop of one worker process. */
class CampaignWorker
{
  public:
    explicit CampaignWorker(WorkerOptions opts);
    ~CampaignWorker();

    CampaignWorker(const CampaignWorker&) = delete;
    CampaignWorker& operator=(const CampaignWorker&) = delete;

    /**
     * Connect, handshake, then lease and execute points via @p fn
     * until the daemon reports the campaign Done. @p fn returns the
     * point's serialized artifact; exceptions become PointError
     * frames classified like the local supervisor (PanicError ->
     * checker-violation, anything else -> exception). Returns true on
     * a clean Done; false (with a diagnostic in @p err) on rejection
     * or connection loss.
     */
    bool run(const std::function<std::string(std::size_t)>& fn,
             std::string* err);

    const WorkerStats& stats() const { return stats_; }
    std::uint64_t workerId() const { return workerId_; }

  private:
    bool handshake(std::string* err);
    bool executePoint(
        std::size_t point,
        const std::function<std::string(std::size_t)>& fn,
        std::string* err);
    bool sendLocked(FrameType type, const std::string& payload);

    WorkerOptions opts_;
    int fd_ = -1;
    Mutex sendMu_; ///< main loop and heartbeat thread share the socket
    std::uint64_t workerId_ = 0;
    std::uint64_t heartbeatMs_ = 1000;
    WorkerStats stats_;
};

} // namespace svc
} // namespace tb

#endif // TB_SVC_WORKER_HH_
