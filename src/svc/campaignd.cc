#include "svc/campaignd.hh"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <limits>
#include <sstream>

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "harness/posix_io.hh"
#include "obs/json_writer.hh"
#include "sim/logging.hh"
#include "svc/net.hh"

namespace tb {
namespace svc {

/** One worker connection's demux state. */
struct CampaignService::Connection
{
    int fd = -1;
    std::uint64_t workerId = 0; ///< 0 until Hello
    std::string name;           ///< "pid@host" from Hello
    FrameReader reader;
    std::uint64_t lastActivityMs = 0;
    bool closing = false;  ///< Goodbye received / Reject sent
    bool helloed = false;

    std::string label() const
    {
        return name.empty() ? "worker#" + std::to_string(workerId)
                            : name;
    }
};

std::string
ServiceStats::summaryJson(const std::string& campaign) const
{
    std::ostringstream os;
    obs::JsonWriter w(os);
    w.beginObject();
    w.field("campaign", campaign)
        .field("kind", "service")
        .field("workers", workersSeen)
        .field("leases", leases)
        .field("leases_expired", leasesExpired)
        .field("heartbeat_timeouts", heartbeatTimeouts)
        .field("disconnects", disconnects)
        .field("protocol_errors", protocolErrors)
        .field("duplicates", duplicates)
        .field("duplicate_mismatches", duplicateMismatches)
        .field("stale_results", staleResults)
        .field("results", resultsAccepted)
        .field("journal_hits", journalHits)
        .field("cache_hits", cacheHits)
        .field("cache_misses", cacheMisses)
        .field("cache_evictions", cacheEvictions);
    w.endObject();
    os << '\n';
    return os.str();
}

std::uint64_t
fingerprintKeys(const std::vector<std::uint64_t>& keys)
{
    std::string bytes;
    bytes.reserve(8 * (keys.size() + 1));
    appendU64(&bytes, keys.size());
    for (std::uint64_t k : keys)
        appendU64(&bytes, k);
    return harness::fnv1a64(bytes);
}

CampaignService::CampaignService(ServiceOptions opts)
    : opts_(std::move(opts))
{
    handlers_[FrameType::Hello] =
        [this](Connection* c, const Frame& f) { onHello(c, f); };
    handlers_[FrameType::Keys] =
        [this](Connection* c, const Frame& f) { onKeys(c, f); };
    handlers_[FrameType::LeaseRequest] =
        [this](Connection* c, const Frame& f) {
            onLeaseRequest(c, f);
        };
    handlers_[FrameType::Heartbeat] =
        [this](Connection* c, const Frame& f) { onHeartbeat(c, f); };
    handlers_[FrameType::Result] =
        [this](Connection* c, const Frame& f) { onResult(c, f); };
    handlers_[FrameType::PointError] =
        [this](Connection* c, const Frame& f) { onPointError(c, f); };
    handlers_[FrameType::Goodbye] =
        [this](Connection* c, const Frame& f) { onGoodbye(c, f); };
}

CampaignService::~CampaignService()
{
    for (auto& c : conns_) {
        if (c->fd >= 0)
            ::close(c->fd);
    }
    if (listenFd_ >= 0) {
        ::close(listenFd_);
        cleanupAddress(opts_.listen);
    }
}

void
CampaignService::setKeys(std::vector<std::uint64_t> keys)
{
    keys_ = std::move(keys);
    haveKeys_ = true;
    fingerprint_ = fingerprintKeys(keys_);
}

std::uint64_t
CampaignService::nowMs() const
{
    using namespace std::chrono;
    // Genuine wall clock: lease deadlines and heartbeat liveness must
    // run on host time, independent of any simulation's virtual clock.
    return static_cast<std::uint64_t>(
        duration_cast<milliseconds>(
            // tblint-allow(TBL002): host time for lease/heartbeat deadlines
            steady_clock::now().time_since_epoch())
            .count());
}

void
CampaignService::preResolveStored()
{
    if (!haveKeys_)
        return;
    for (std::size_t i = 0; i < keys_.size(); ++i) {
        const WorkQueue::Point& p = queue_->point(i);
        if (p.state != WorkQueue::Point::State::Pending)
            continue;
        std::string stored;
        if (journal_ && journal_->active() &&
            journal_->lookup(i, keys_[i], &stored)) {
            results_[i] = std::move(stored);
            queue_->resolveStored(i,
                                  harness::PointOutcome::Journaled,
                                  keys_[i],
                                  harness::fnv1a64(results_[i]));
            ++stats_.journalHits;
            continue;
        }
        if (cache_ && cache_->lookup(keys_[i], &stored)) {
            results_[i] = std::move(stored);
            queue_->resolveStored(i, harness::PointOutcome::Cached,
                                  keys_[i],
                                  harness::fnv1a64(results_[i]));
            if (journal_ && journal_->active()) {
                journal_->record(
                    i, keys_[i],
                    i < seeds_.size() ? seeds_[i] : 0, results_[i]);
            }
        }
    }
    if (cache_) {
        stats_.cacheHits = cache_->stats().hits;
        stats_.cacheMisses = cache_->stats().misses;
        stats_.cacheEvictions = cache_->stats().evictions;
    }
    if (svcJournal_ && svcJournal_->active())
        svcJournal_->recordCampaign(fingerprint_, keys_.size());
}

void
CampaignService::recoverServiceState()
{
    if (!svcJournal_ || !svcJournal_->active() ||
        svcJournal_->loaded() == 0)
        return;
    const std::uint64_t now = nowMs();
    std::size_t restored = 0, requeued = 0;
    for (const auto& [i, rec] : svcJournal_->recovered()) {
        if (i >= queue_->size())
            continue; // journal from a larger campaign: fatal later
        if (queue_->point(i).state !=
            WorkQueue::Point::State::Pending)
            continue; // completion journal already resolved it
        // Re-arm the consumed attempts and replay the backoff that
        // was pending at the crash, so the restarted queue paces
        // retries exactly like the dead daemon would have.
        std::uint64_t notBefore = 0;
        if (rec.attempts >= 1) {
            harness::SupervisorPolicy sp;
            sp.backoffBaseMs = opts_.queue.backoffBaseMs;
            sp.backoffCapMs = opts_.queue.backoffCapMs;
            sp.seed = opts_.queue.seed;
            notBefore =
                now + harness::CampaignSupervisor::backoffDelayMs(
                          sp, i, rec.attempts + 1);
        }
        queue_->restore(i, rec.attempts, notBefore);
        ++restored;
        if (rec.outstanding)
            ++requeued;
    }
    // The restart itself is a crash event: the previous daemon died
    // with this scheduling state on the books. Ledgering it puts the
    // SIGKILL in the failure manifest next to the worker losses.
    ledger_.add(0, "daemon", "daemon-restart", -1,
                "recovered " +
                    std::to_string(svcJournal_->loaded()) +
                    " service-journal event(s): " +
                    std::to_string(restored) +
                    " unresolved point(s) restored, " +
                    std::to_string(requeued) +
                    " outstanding lease(s) requeued");
}

void
CampaignService::failPoint(std::size_t point, LeaseLoss loss,
                           harness::PointOutcome outcome,
                           const std::string& message,
                           std::uint64_t now)
{
    queue_->fail(point, loss, outcome, message, now);
    if (svcJournal_ && svcJournal_->active()) {
        svcJournal_->recordLoss(point, queue_->point(point).attempts,
                                leaseLossName(loss));
    }
}

bool
CampaignService::send(Connection* conn, FrameType type,
                      const std::string& payload)
{
    if (conn->fd < 0)
        return false;
    if (!sendFrame(conn->fd, type, payload)) {
        closeConnection(conn, LeaseLoss::Disconnect,
                        "send failed: " + errnoMessage(errno));
        return false;
    }
    return true;
}

void
CampaignService::failLeases(Connection* conn, LeaseLoss loss,
                            const std::string& detail)
{
    const std::uint64_t now = nowMs();
    for (std::size_t point : queue_->leasedBy(conn->workerId)) {
        ledger_.add(conn->workerId, conn->label(),
                    leaseLossName(loss), static_cast<long>(point),
                    detail);
        failPoint(point, loss, harness::PointOutcome::Crash,
                  "worker " + conn->label() + " lost: " + detail,
                  now);
    }
}

void
CampaignService::closeConnection(Connection* conn, LeaseLoss loss,
                                 const std::string& detail)
{
    if (conn->fd < 0)
        return;
    const bool hadLeases =
        !queue_->leasedBy(conn->workerId).empty();
    if (hadLeases) {
        ++stats_.disconnects;
        failLeases(conn, loss, detail);
    } else if (!conn->closing) {
        // A connection that dies without leases and without a
        // Goodbye is still a worker failure worth ledgering (e.g.
        // killed between leases), just not a lease loss.
        ledger_.add(conn->workerId, conn->label(),
                    leaseLossName(loss), -1, detail);
    }
    ::close(conn->fd);
    conn->fd = -1;
}

void
CampaignService::onHello(Connection* conn, const Frame& f)
{
    PayloadReader r(f.payload);
    const std::uint64_t count = r.u64();
    const std::uint64_t fp = r.u64();
    const std::string name = r.str();
    if (!r.ok()) {
        ++stats_.protocolErrors;
        ledger_.add(conn->workerId, name, "protocol-error", -1,
                    "malformed hello payload");
        std::string p;
        appendString(&p, "malformed hello");
        send(conn, FrameType::Reject, p);
        conn->closing = true;
        closeConnection(conn, LeaseLoss::ProtocolError,
                        "malformed hello");
        return;
    }
    conn->workerId = nextWorkerId_++;
    conn->name = name;
    ++stats_.workersSeen;
    std::string reject;
    if (count != queue_->size()) {
        reject = "point count mismatch: daemon serves " +
                 std::to_string(queue_->size()) +
                 " points, worker built for " + std::to_string(count);
    } else if (haveKeys_ && fp != fingerprint_) {
        reject = "config fingerprint mismatch: daemon " +
                 std::to_string(fingerprint_) + ", worker " +
                 std::to_string(fp) +
                 " (different sweep/flags/binary?)";
    }
    if (!reject.empty()) {
        ++stats_.protocolErrors;
        ledger_.add(conn->workerId, conn->label(), "protocol-error",
                    -1, reject);
        std::string p;
        appendString(&p, reject);
        send(conn, FrameType::Reject, p);
        conn->closing = true;
        closeConnection(conn, LeaseLoss::ProtocolError, reject);
        return;
    }
    if (!haveKeys_ && fingerprint_ == 0) {
        // Generic mode: first worker defines the fingerprint; its
        // Keys upload fills the table. Later workers must match.
        fingerprint_ = fp;
    } else if (!haveKeys_ && fp != fingerprint_) {
        const std::string msg =
            "config fingerprint mismatch against first worker";
        ++stats_.protocolErrors;
        ledger_.add(conn->workerId, conn->label(), "protocol-error",
                    -1, msg);
        std::string p;
        appendString(&p, msg);
        send(conn, FrameType::Reject, p);
        conn->closing = true;
        closeConnection(conn, LeaseLoss::ProtocolError, msg);
        return;
    }
    conn->helloed = true;
    std::string p;
    appendU64(&p, conn->workerId);
    appendU64(&p, opts_.heartbeatMs);
    appendU64(&p, opts_.queue.leaseMs);
    appendU64(&p, haveKeys_ ? 0 : kHelloAckWantKeys);
    send(conn, FrameType::HelloAck, p);
}

void
CampaignService::onKeys(Connection* conn, const Frame& f)
{
    if (haveKeys_)
        return; // table already known; fingerprint was checked
    if (f.payload.size() != 8 * queue_->size()) {
        ++stats_.protocolErrors;
        ledger_.add(conn->workerId, conn->label(), "protocol-error",
                    -1, "keys frame has wrong length");
        conn->closing = true;
        closeConnection(conn, LeaseLoss::ProtocolError,
                        "keys frame has wrong length");
        return;
    }
    PayloadReader r(f.payload);
    std::vector<std::uint64_t> keys(queue_->size());
    for (std::uint64_t& k : keys)
        k = r.u64();
    if (fingerprintKeys(keys) != fingerprint_) {
        ++stats_.protocolErrors;
        ledger_.add(conn->workerId, conn->label(), "protocol-error",
                    -1, "keys do not match hello fingerprint");
        conn->closing = true;
        closeConnection(conn, LeaseLoss::ProtocolError,
                        "keys do not match hello fingerprint");
        return;
    }
    keys_ = std::move(keys);
    haveKeys_ = true;
    preResolveStored();
}

void
CampaignService::onLeaseRequest(Connection* conn, const Frame&)
{
    if (queue_->allResolved() ||
        harness::CampaignSupervisor::interruptRequested()) {
        send(conn, FrameType::Done, "");
        return;
    }
    const LeaseGrant g = queue_->lease(conn->workerId, nowMs());
    if (!g.granted) {
        std::string p;
        appendU64(&p, g.retryAfterMs);
        send(conn, FrameType::NoWork, p);
        return;
    }
    ++stats_.leases;
    if (svcJournal_ && svcJournal_->active())
        svcJournal_->recordLease(g.point, g.attempt, conn->label());
    std::string p;
    appendU64(&p, g.point);
    appendU64(&p, g.attempt);
    send(conn, FrameType::LeaseGrant, p);
}

void
CampaignService::onHeartbeat(Connection* conn, const Frame& f)
{
    PayloadReader r(f.payload);
    const std::uint64_t point = r.u64();
    // Heartbeats for a lease this worker no longer holds are a
    // benign race (its lease expired and was re-granted); activity
    // time was already refreshed by the caller.
    (void)queue_->heartbeat(static_cast<std::size_t>(point),
                            conn->workerId);
}

void
CampaignService::onResult(Connection* conn, const Frame& f)
{
    PayloadReader r(f.payload);
    const std::uint64_t point = r.u64();
    const std::uint64_t key = r.u64();
    const std::uint64_t checksum = r.u64();
    std::string artifact = r.str();
    if (!r.ok() || point >= queue_->size()) {
        ++stats_.protocolErrors;
        ledger_.add(conn->workerId, conn->label(), "protocol-error",
                    -1, "malformed result frame");
        conn->closing = true;
        closeConnection(conn, LeaseLoss::ProtocolError,
                        "malformed result frame");
        return;
    }
    const std::size_t i = static_cast<std::size_t>(point);
    std::string problem;
    if (harness::fnv1a64(artifact) != checksum)
        problem = "result checksum does not match artifact";
    else if (haveKeys_ && keys_[i] != key)
        problem = "result config hash does not match the point key";
    if (!problem.empty()) {
        ++stats_.protocolErrors;
        ledger_.add(conn->workerId, conn->label(), "protocol-error",
                    static_cast<long>(i), problem);
        failPoint(i, LeaseLoss::ProtocolError,
                  harness::PointOutcome::Crash,
                  "worker " + conn->label() + ": " + problem,
                  nowMs());
        std::string p;
        appendU64(&p, point);
        send(conn, FrameType::ResultAck, p);
        return;
    }
    switch (queue_->complete(i, conn->workerId, key, checksum)) {
      case CompleteOutcome::Accepted:
        results_[i] = std::move(artifact);
        ++stats_.resultsAccepted;
        if (journal_ && journal_->active()) {
            journal_->record(i, key,
                             i < seeds_.size() ? seeds_[i] : 0,
                             results_[i]);
        }
        if (svcJournal_ && svcJournal_->active())
            svcJournal_->recordDone(i);
        if (cache_) {
            cache_->store(key, results_[i]);
            stats_.cacheMisses = cache_->stats().misses;
            stats_.cacheEvictions = cache_->stats().evictions;
        }
        break;
      case CompleteOutcome::DuplicateMatch:
        ++stats_.duplicates;
        break;
      case CompleteOutcome::DuplicateMismatch:
        ++stats_.duplicateMismatches;
        ledger_.add(conn->workerId, conn->label(), "protocol-error",
                    static_cast<long>(i),
                    "duplicate completion disagrees with recorded "
                    "config-hash/checksum — determinism violation");
        break;
      case CompleteOutcome::Rejected:
        ++stats_.staleResults;
        break;
    }
    std::string p;
    appendU64(&p, point);
    send(conn, FrameType::ResultAck, p);
}

void
CampaignService::onPointError(Connection* conn, const Frame& f)
{
    PayloadReader r(f.payload);
    const std::uint64_t point = r.u64();
    const std::uint64_t outcome = r.u64();
    const std::string message = r.str();
    if (!r.ok() || point >= queue_->size()) {
        ++stats_.protocolErrors;
        conn->closing = true;
        closeConnection(conn, LeaseLoss::ProtocolError,
                        "malformed point-error frame");
        return;
    }
    const harness::PointOutcome po =
        outcome ==
                static_cast<std::uint64_t>(
                    harness::PointOutcome::CheckerViolation)
            ? harness::PointOutcome::CheckerViolation
        : outcome == static_cast<std::uint64_t>(
                         harness::PointOutcome::Crash)
            ? harness::PointOutcome::Crash
            : harness::PointOutcome::Exception;
    ledger_.add(conn->workerId, conn->label(), "point-error",
                static_cast<long>(point), message);
    failPoint(static_cast<std::size_t>(point),
              LeaseLoss::WorkerError, po, message, nowMs());
    std::string p;
    appendU64(&p, point);
    send(conn, FrameType::ResultAck, p);
}

void
CampaignService::onGoodbye(Connection* conn, const Frame& f)
{
    PayloadReader r(f.payload);
    const std::string reason = r.str();
    conn->closing = true;
    // Leaving with leases outstanding is a failure, however polite.
    if (!queue_->leasedBy(conn->workerId).empty())
        failLeases(conn, LeaseLoss::Disconnect,
                   "goodbye with leases outstanding: " + reason);
    ::close(conn->fd);
    conn->fd = -1;
}

void
CampaignService::dispatchFrame(Connection* conn, const Frame& frame)
{
    if (!conn->helloed && frame.type != FrameType::Hello) {
        ++stats_.protocolErrors;
        ledger_.add(conn->workerId, conn->label(), "protocol-error",
                    -1,
                    std::string("frame before hello: ") +
                        frameTypeName(frame.type));
        conn->closing = true;
        closeConnection(conn, LeaseLoss::ProtocolError,
                        "frame before hello");
        return;
    }
    const auto it = handlers_.find(frame.type);
    if (it == handlers_.end()) {
        ++stats_.protocolErrors;
        ledger_.add(conn->workerId, conn->label(), "protocol-error",
                    -1,
                    std::string("unexpected frame type: ") +
                        frameTypeName(frame.type));
        conn->closing = true;
        closeConnection(conn, LeaseLoss::ProtocolError,
                        "unexpected frame type");
        return;
    }
    it->second(conn, frame);
}

void
CampaignService::acceptConnections()
{
    const int fd = harness::acceptOne(listenFd_);
    if (fd < 0)
        return; // EAGAIN or transient accept failure
    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    conn->lastActivityMs = nowMs();
    conns_.push_back(std::move(conn));
    // Accept one per poll round; poll re-reports readiness.
}

void
CampaignService::serviceConnection(Connection* conn)
{
    char buf[65536];
    const ssize_t r =
        harness::readSome(conn->fd, buf, sizeof(buf));
    if (r < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK)
            return;
        closeConnection(conn, LeaseLoss::Disconnect,
                        "read failed: " + errnoMessage(errno));
        return;
    }
    if (r == 0) {
        closeConnection(conn, LeaseLoss::Disconnect,
                        "connection closed (worker exited or was "
                        "killed)");
        return;
    }
    conn->lastActivityMs = nowMs();
    std::vector<Frame> frames;
    if (!conn->reader.feed(buf, static_cast<std::size_t>(r),
                           &frames)) {
        ++stats_.protocolErrors;
        ledger_.add(conn->workerId, conn->label(), "protocol-error",
                    -1, conn->reader.error());
        conn->closing = true;
        closeConnection(conn, LeaseLoss::ProtocolError,
                        conn->reader.error());
        return;
    }
    for (const Frame& f : frames) {
        if (conn->fd < 0)
            break;
        dispatchFrame(conn, f);
    }
}

void
CampaignService::checkDeadlines()
{
    const std::uint64_t now = nowMs();
    for (std::size_t point : queue_->expired(now)) {
        const WorkQueue::Point& p = queue_->point(point);
        std::string who = "worker#" + std::to_string(p.leasedTo);
        for (const auto& c : conns_) {
            if (c->workerId == p.leasedTo && !c->name.empty())
                who = c->name;
        }
        ++stats_.leasesExpired;
        ledger_.add(p.leasedTo, who,
                    leaseLossName(LeaseLoss::Expired),
                    static_cast<long>(point),
                    "lease deadline of " +
                        std::to_string(opts_.queue.leaseMs) +
                        " ms passed without a result");
        failPoint(point, LeaseLoss::Expired,
                  harness::PointOutcome::Timeout,
                  "lease deadline of " +
                      std::to_string(opts_.queue.leaseMs) +
                      " ms exceeded",
                  now);
    }
    // Heartbeat liveness: a connection whose last activity is older
    // than kHeartbeatMisses intervals is dead even though the socket
    // still looks open (wedged process, dead NAT). Lease-less
    // connections are reaped on the same clock: a healthy idle worker
    // sends LeaseRequests at least once a second, so prolonged
    // silence means the peer is stuck — e.g. a corrupted frame header
    // left the reader waiting for bytes that will never come, or a
    // fuzz client is squatting on the listener — and closing is what
    // unsticks a blocked worker into its reconnect path.
    for (auto& c : conns_) {
        if (c->fd < 0)
            continue;
        if (now - c->lastActivityMs >
            kHeartbeatMisses * opts_.heartbeatMs) {
            ++stats_.heartbeatTimeouts;
            const bool idle = queue_->leasedBy(c->workerId).empty();
            closeConnection(
                c.get(), LeaseLoss::HeartbeatLost,
                idle ? "idle connection reaped (no frames for " +
                           std::to_string(kHeartbeatMisses) +
                           " heartbeat intervals)"
                     : std::to_string(kHeartbeatMisses) +
                           " heartbeat intervals missed");
        }
    }
}

void
CampaignService::broadcastDone()
{
    for (auto& c : conns_) {
        if (c->fd >= 0)
            sendFrame(c->fd, FrameType::Done, "");
    }
}

harness::SupervisorReport
CampaignService::run(std::size_t count)
{
    harness::ignoreSigpipe();
    queue_ = std::make_unique<WorkQueue>(count, opts_.queue);
    results_.assign(count, std::string());
    if (haveKeys_ && keys_.size() != count)
        fatal("campaign service: ", keys_.size(),
              " keys for ", count, " points");
    if (svcJournal_ && svcJournal_->active() &&
        svcJournal_->hasCampaign() && svcJournal_->count() != count) {
        fatal("campaign service: resumed service journal describes ",
              svcJournal_->count(), " points, this campaign has ",
              count, " — wrong --journal file?");
    }
    preResolveStored();
    recoverServiceState();

    std::string err;
    listenFd_ = listenOn(opts_.listen, &err);
    if (listenFd_ < 0)
        fatal("campaign service: ", err);

    while (!queue_->allResolved() &&
           !harness::CampaignSupervisor::interruptRequested()) {
        std::vector<struct pollfd> pfds;
        pfds.push_back({listenFd_, POLLIN, 0});
        std::vector<Connection*> polled;
        for (auto& c : conns_) {
            if (c->fd < 0)
                continue;
            pfds.push_back({c->fd, POLLIN, 0});
            polled.push_back(c.get());
        }
        // Bound the wait by the next queue event (backoff expiry or
        // lease deadline) and by the heartbeat check cadence.
        const std::uint64_t now = nowMs();
        std::uint64_t waitMs = opts_.heartbeatMs;
        const std::uint64_t next = queue_->nextEventMs();
        if (next != std::numeric_limits<std::uint64_t>::max())
            waitMs = std::min(
                waitMs, next > now ? next - now : std::uint64_t(1));
        waitMs = std::max<std::uint64_t>(
            std::min<std::uint64_t>(waitMs, 1000), 10);
        // pollMany reports EINTR as a timeout, so a signal (SIGINT,
        // SIGCHLD from --isolate) re-enters the loop and re-derives
        // its deadline-bounded timeout instead of dying here.
        const int rc = harness::pollMany(pfds.data(), pfds.size(),
                                         static_cast<int>(waitMs));
        if (rc < 0)
            fatal("campaign service: poll: ",
                  errnoMessage(errno));
        if (rc > 0) {
            if (pfds[0].revents & POLLIN)
                acceptConnections();
            for (std::size_t i = 0; i < polled.size(); ++i) {
                if (pfds[i + 1].revents &
                    (POLLIN | POLLHUP | POLLERR))
                    serviceConnection(polled[i]);
            }
        }
        checkDeadlines();
        // Drop fully closed connections.
        conns_.erase(
            std::remove_if(conns_.begin(), conns_.end(),
                           [](const std::unique_ptr<Connection>& c) {
                               return c->fd < 0;
                           }),
            conns_.end());
    }

    broadcastDone();
    if (journal_)
        journal_->flush();
    if (cache_) {
        stats_.cacheHits = cache_->stats().hits;
        stats_.cacheMisses = cache_->stats().misses;
        stats_.cacheEvictions = cache_->stats().evictions;
    }

    harness::SupervisorReport report;
    queue_->fillReport(&report);
    report.interrupted =
        harness::CampaignSupervisor::interruptRequested();
    return report;
}

} // namespace svc
} // namespace tb
