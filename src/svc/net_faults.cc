#include "svc/net_faults.hh"

#include <cerrno>

#include <sys/socket.h>

#include "fault/fault_spec.hh"
#include "harness/campaign_journal.hh"
#include "harness/posix_io.hh"
#include "sim/logging.hh"

namespace tb {
namespace svc {

namespace {

constexpr const char* kWhat = "net-faults spec";

} // namespace

bool
NetFaultSpec::enabled() const
{
    return shortWrite > 0.0 || splitRead > 0.0 || delay > 0.0 ||
           disconnect > 0.0 || corrupt > 0.0;
}

std::string
NetFaultSpec::summary() const
{
    std::string out = "seed=" + std::to_string(seed);
    auto rate = [&](const char* key, double v) {
        if (v > 0.0)
            out += std::string(",") + key + "=" +
                   fault::spec::renderRate(v);
    };
    rate("short-write", shortWrite);
    rate("split-read", splitRead);
    if (delay > 0.0) {
        out += ",delay=" + fault::spec::renderRate(delay) + ":" +
               std::to_string(delayMs);
    }
    rate("disconnect", disconnect);
    rate("corrupt", corrupt);
    return out;
}

NetFaultSpec
NetFaultSpec::parse(const std::string& text)
{
    NetFaultSpec s;
    for (const fault::spec::Pair& p :
         fault::spec::splitPairs(kWhat, text)) {
        auto noArg = [&]() {
            if (!p.arg.empty())
                fatal(kWhat, ": ", p.key,
                      " does not take a :arg suffix");
        };
        if (p.key == "seed") {
            noArg();
            s.seed = fault::spec::parseCount(kWhat, p.key, p.value);
        } else if (p.key == "all") {
            noArg();
            const double v =
                fault::spec::parseRate(kWhat, p.key, p.value);
            s.shortWrite = s.splitRead = s.delay = v;
            s.disconnect = s.corrupt = v;
        } else if (p.key == "short-write") {
            noArg();
            s.shortWrite =
                fault::spec::parseRate(kWhat, p.key, p.value);
        } else if (p.key == "split-read") {
            noArg();
            s.splitRead =
                fault::spec::parseRate(kWhat, p.key, p.value);
        } else if (p.key == "delay") {
            s.delay = fault::spec::parseRate(kWhat, p.key, p.value);
            if (!p.arg.empty())
                s.delayMs =
                    fault::spec::parseCount(kWhat, p.key, p.arg);
        } else if (p.key == "disconnect") {
            noArg();
            s.disconnect =
                fault::spec::parseRate(kWhat, p.key, p.value);
        } else if (p.key == "corrupt") {
            noArg();
            s.corrupt = fault::spec::parseRate(kWhat, p.key, p.value);
        } else {
            fatal(kWhat, ": unknown key '", p.key,
                  "' (see docs/ROBUSTNESS.md for the grammar)");
        }
    }
    return s;
}

std::string
NetFaultCounters::summaryJson(const std::string& worker) const
{
    char buf[512];
    std::snprintf(
        buf, sizeof(buf),
        "{\"kind\": \"net-faults\", \"worker\": \"%s\", "
        "\"short_writes\": %llu, \"split_reads\": %llu, "
        "\"delays\": %llu, \"disconnects\": %llu, "
        "\"corruptions\": %llu, \"total\": %llu}\n",
        worker.c_str(),
        static_cast<unsigned long long>(shortWrites),
        static_cast<unsigned long long>(splitReads),
        static_cast<unsigned long long>(delays),
        static_cast<unsigned long long>(disconnects),
        static_cast<unsigned long long>(corruptions),
        static_cast<unsigned long long>(total()));
    return buf;
}

void
FaultyTransport::configure(const NetFaultSpec& spec,
                           const std::string& streamName)
{
    spec_ = spec;
    counters_ = NetFaultCounters{};
    // Salt the spec seed with the worker identity so every worker of
    // one chaos run draws a distinct — but reproducible — stream.
    rng_ = tb::Random(spec.seed * 0x9e3779b97f4a7c15ULL ^
                      harness::fnv1a64(streamName));
}

bool
FaultyTransport::sendFrame(int fd, FrameType type,
                           const std::string& payload)
{
    if (!spec_.enabled())
        return svc::sendFrame(fd, type, payload);

    if (spec_.delay > 0.0 && rng_.chance(spec_.delay)) {
        ++counters_.delays;
        harness::pollOne(-1, 0, static_cast<int>(spec_.delayMs));
    }

    std::string wire = encodeFrame(type, payload);

    if (spec_.corrupt > 0.0 && rng_.chance(spec_.corrupt)) {
        // Flip one bit anywhere in the wire frame. A header hit
        // poisons the daemon's FrameReader (close + ledger); a
        // payload hit is caught by the result checksum or the
        // malformed-payload path. FNV-1a cannot collide on a single
        // bit flip, so a corrupted artifact is never accepted.
        ++counters_.corruptions;
        const std::size_t at = rng_.uniformInt(wire.size());
        wire[at] = static_cast<char>(
            wire[at] ^ (1u << rng_.uniformInt(8)));
    }

    if (spec_.disconnect > 0.0 && rng_.chance(spec_.disconnect)) {
        // Dead peer mid-frame: ship a prefix, then slam the socket
        // shut in both directions. The injected errno routes callers
        // into the same reconnect path a daemon SIGKILL would.
        ++counters_.disconnects;
        const std::size_t cut = rng_.uniformInt(wire.size());
        if (cut > 0)
            harness::writeFull(fd, wire.data(), cut);
        ::shutdown(fd, SHUT_RDWR);
        errno = ECONNRESET;
        return false;
    }

    if (spec_.shortWrite > 0.0 && rng_.chance(spec_.shortWrite) &&
        wire.size() > 1) {
        // Tear the frame across two writes with a pause between so
        // the peer's incremental FrameReader observes a partial
        // frame and must wait for the rest.
        ++counters_.shortWrites;
        const std::size_t cut = 1 + rng_.uniformInt(wire.size() - 1);
        if (!harness::writeFull(fd, wire.data(), cut))
            return false;
        harness::pollOne(-1, 0, 1);
        return harness::writeFull(fd, wire.data() + cut,
                                  wire.size() - cut);
    }

    return harness::writeFull(fd, wire.data(), wire.size());
}

int
FaultyTransport::recvFrame(int fd, Frame* out, std::string* err)
{
    if (!spec_.enabled())
        return svc::recvFrame(fd, out, err);

    if (spec_.delay > 0.0 && rng_.chance(spec_.delay)) {
        ++counters_.delays;
        harness::pollOne(-1, 0, static_cast<int>(spec_.delayMs));
    }

    if (!(spec_.splitRead > 0.0 && rng_.chance(spec_.splitRead)))
        return svc::recvFrame(fd, out, err);

    // Fragmented receive: pull the header in two pieces, then the
    // payload in two pieces, reassembling exactly the way a TCP
    // segment boundary would force a peer to.
    ++counters_.splitReads;
    char header[kFrameHeaderSize];
    const std::size_t first =
        1 + rng_.uniformInt(kFrameHeaderSize - 1);
    ssize_t r = harness::readFull(fd, header, first);
    if (r == 0)
        return 0;
    if (r < 0 ||
        harness::readFull(fd, header + first,
                          kFrameHeaderSize - first) !=
            static_cast<ssize_t>(kFrameHeaderSize - first)) {
        *err = errno ? errnoMessage(errno)
                     : "connection closed mid-frame";
        return -1;
    }
    std::uint32_t length = 0;
    if (!parseFrameHeader(header, &out->type, &length, err))
        return -1;
    out->payload.resize(length);
    if (length > 0) {
        const std::size_t cut =
            length > 1 ? 1 + rng_.uniformInt(length - 1) : length;
        if (harness::readFull(fd, out->payload.data(), cut) !=
                static_cast<ssize_t>(cut) ||
            (cut < length &&
             harness::readFull(fd, out->payload.data() + cut,
                               length - cut) !=
                 static_cast<ssize_t>(length - cut))) {
            *err = errno ? errnoMessage(errno)
                         : "connection closed mid-frame";
            return -1;
        }
    }
    return 1;
}

} // namespace svc
} // namespace tb
