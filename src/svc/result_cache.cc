#include "svc/result_cache.hh"

#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <sstream>

#include <sys/stat.h>
#include <unistd.h>

#include "harness/campaign_journal.hh"
#include "sim/logging.hh"

namespace tb {
namespace svc {

namespace {

std::string
keyName(std::uint64_t key)
{
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%016" PRIx64, key);
    return buf;
}

} // namespace

bool
ResultCache::open(const std::string& dir)
{
    dir_.clear();
    if (dir.empty())
        return false;
    if (::mkdir(dir.c_str(), 0777) != 0 && errno != EEXIST) {
        warn("result cache: cannot create ", dir, ": ",
             errnoMessage(errno), " — running uncached");
        return false;
    }
    if (::access(dir.c_str(), W_OK | X_OK) != 0) {
        warn("result cache: ", dir, " is not writable: ",
             errnoMessage(errno), " — running uncached");
        return false;
    }
    dir_ = dir;
    return true;
}

std::string
ResultCache::entryPath(std::uint64_t key) const
{
    return dir_ + "/" + keyName(key) + ".tbr";
}

bool
ResultCache::lookup(std::uint64_t key, std::string* result)
{
    if (!active())
        return false;
    const std::string path = entryPath(key);
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        ++stats_.misses;
        return false;
    }
    std::ostringstream os;
    os << in.rdbuf();
    in.close();
    const std::string data = os.str();

    // Classify before trusting. Entries are written via atomic
    // tmp+rename, but a writer dying under ENOSPC or SIGKILL can
    // still leave zero-length or header-truncated files behind; each
    // shape is evicted with its own diagnosis so an operator can tell
    // torn writes from bit rot. The header is exactly "TBCACHE1 "
    // plus 16 lowercase hex digits plus a newline — nothing looser.
    const char* why = nullptr;
    std::uint64_t sum = 0;
    if (data.empty()) {
        why = "zero-length entry (torn write?)";
    } else if (data.size() < kCacheHeaderLen ||
               data.compare(0, 9, "TBCACHE1 ") != 0 ||
               data[kCacheHeaderLen - 1] != '\n') {
        why = "truncated or malformed header";
    } else {
        for (std::size_t i = 9; i < kCacheHeaderLen - 1; ++i) {
            const char c = data[i];
            if (c >= '0' && c <= '9')
                sum = sum * 16 + static_cast<std::uint64_t>(c - '0');
            else if (c >= 'a' && c <= 'f')
                sum = sum * 16 +
                      static_cast<std::uint64_t>(c - 'a' + 10);
            else {
                why = "truncated or malformed header";
                break;
            }
        }
    }
    std::string body;
    if (!why) {
        body = data.substr(kCacheHeaderLen);
        if (harness::fnv1a64(body) != sum)
            why = "checksum mismatch";
    }
    if (why) {
        // Evict so the rerun repairs the cache, and make sure
        // corruption never masquerades as a result.
        std::remove(path.c_str());
        ++stats_.evictions;
        ++stats_.misses;
        warn("result cache: evicted ", path, ": ", why);
        return false;
    }
    *result = std::move(body);
    ++stats_.hits;
    return true;
}

void
ResultCache::store(std::uint64_t key, const std::string& result)
{
    if (!active())
        return;
    char header[32];
    std::snprintf(header, sizeof(header), "TBCACHE1 %016" PRIx64 "\n",
                  harness::fnv1a64(result));
    harness::writeFileAtomic(entryPath(key), header + result);
    ++stats_.stores;
}

} // namespace svc
} // namespace tb
