#include "svc/result_cache.hh"

#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <sstream>

#include <sys/stat.h>
#include <unistd.h>

#include "harness/campaign_journal.hh"
#include "sim/logging.hh"

namespace tb {
namespace svc {

namespace {

std::string
keyName(std::uint64_t key)
{
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%016" PRIx64, key);
    return buf;
}

} // namespace

bool
ResultCache::open(const std::string& dir)
{
    dir_.clear();
    if (dir.empty())
        return false;
    if (::mkdir(dir.c_str(), 0777) != 0 && errno != EEXIST) {
        warn("result cache: cannot create ", dir, ": ",
             errnoMessage(errno), " — running uncached");
        return false;
    }
    if (::access(dir.c_str(), W_OK | X_OK) != 0) {
        warn("result cache: ", dir, " is not writable: ",
             errnoMessage(errno), " — running uncached");
        return false;
    }
    dir_ = dir;
    return true;
}

std::string
ResultCache::entryPath(std::uint64_t key) const
{
    return dir_ + "/" + keyName(key) + ".tbr";
}

bool
ResultCache::lookup(std::uint64_t key, std::string* result)
{
    if (!active())
        return false;
    const std::string path = entryPath(key);
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        ++stats_.misses;
        return false;
    }
    std::string header;
    std::getline(in, header);
    std::uint64_t sum = 0;
    const bool headerOk =
        std::sscanf(header.c_str(), "TBCACHE1 %16" SCNx64, &sum) == 1;
    std::string body;
    if (headerOk) {
        std::ostringstream os;
        os << in.rdbuf();
        body = os.str();
    }
    if (!headerOk || harness::fnv1a64(body) != sum) {
        // Corrupt entry: evict so the rerun repairs the cache, and
        // make sure corruption never masquerades as a result.
        in.close();
        std::remove(path.c_str());
        ++stats_.evictions;
        ++stats_.misses;
        warn("result cache: evicted corrupted entry ", path);
        return false;
    }
    *result = std::move(body);
    ++stats_.hits;
    return true;
}

void
ResultCache::store(std::uint64_t key, const std::string& result)
{
    if (!active())
        return;
    char header[32];
    std::snprintf(header, sizeof(header), "TBCACHE1 %016" PRIx64 "\n",
                  harness::fnv1a64(result));
    harness::writeFileAtomic(entryPath(key), header + result);
    ++stats_.stores;
}

} // namespace svc
} // namespace tb
