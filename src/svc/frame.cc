#include "svc/frame.hh"

#include <cerrno>
#include <cstring>

#include "harness/posix_io.hh"
#include "sim/logging.hh"

namespace tb {
namespace svc {

namespace {

constexpr char kMagic[4] = {'T', 'B', 'F', '1'};
constexpr std::size_t kHeaderSize = kFrameHeaderSize;

void
putU16(char* p, std::uint16_t v)
{
    p[0] = static_cast<char>(v & 0xff);
    p[1] = static_cast<char>((v >> 8) & 0xff);
}

void
putU32(char* p, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        p[i] = static_cast<char>((v >> (8 * i)) & 0xff);
}

std::uint16_t
getU16(const char* p)
{
    return static_cast<std::uint16_t>(
        static_cast<unsigned char>(p[0]) |
        (static_cast<unsigned char>(p[1]) << 8));
}

std::uint32_t
getU32(const char* p)
{
    std::uint32_t v = 0;
    for (int i = 3; i >= 0; --i)
        v = (v << 8) | static_cast<unsigned char>(p[i]);
    return v;
}

} // namespace

bool
parseFrameHeader(const char* h, FrameType* type, std::uint32_t* length,
                 std::string* err)
{
    if (std::memcmp(h, kMagic, sizeof(kMagic)) != 0) {
        *err = "bad frame magic (peer is not speaking TBF1)";
        return false;
    }
    const std::uint16_t version = getU16(h + 4);
    if (version != kFrameVersion) {
        *err = "unsupported frame version " + std::to_string(version) +
               " (this build speaks " + std::to_string(kFrameVersion) +
               ")";
        return false;
    }
    const std::uint32_t len = getU32(h + 8);
    if (len > kMaxFramePayload) {
        *err = "frame payload length " + std::to_string(len) +
               " exceeds the " + std::to_string(kMaxFramePayload) +
               "-byte cap (corrupt header?)";
        return false;
    }
    *type = static_cast<FrameType>(getU16(h + 6));
    *length = len;
    return true;
}

const char*
frameTypeName(FrameType t)
{
    switch (t) {
      case FrameType::Hello:        return "hello";
      case FrameType::LeaseRequest: return "lease-request";
      case FrameType::Heartbeat:    return "heartbeat";
      case FrameType::Result:       return "result";
      case FrameType::PointError:   return "point-error";
      case FrameType::Goodbye:      return "goodbye";
      case FrameType::Keys:         return "keys";
      case FrameType::HelloAck:     return "hello-ack";
      case FrameType::LeaseGrant:   return "lease-grant";
      case FrameType::NoWork:       return "no-work";
      case FrameType::Done:         return "done";
      case FrameType::ResultAck:    return "result-ack";
      case FrameType::Reject:       return "reject";
    }
    return "?";
}

void
appendU64(std::string* payload, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        payload->push_back(
            static_cast<char>((v >> (8 * i)) & 0xff));
}

void
appendString(std::string* payload, const std::string& s)
{
    char len[4];
    putU32(len, static_cast<std::uint32_t>(s.size()));
    payload->append(len, sizeof(len));
    payload->append(s);
}

std::uint64_t
PayloadReader::u64()
{
    if (!ok_ || at_ + 8 > data_.size()) {
        ok_ = false;
        return 0;
    }
    std::uint64_t v = 0;
    for (int i = 7; i >= 0; --i)
        v = (v << 8) | static_cast<unsigned char>(data_[at_ + i]);
    at_ += 8;
    return v;
}

std::string
PayloadReader::str()
{
    if (!ok_ || at_ + 4 > data_.size()) {
        ok_ = false;
        return "";
    }
    const std::uint32_t len = getU32(data_.data() + at_);
    at_ += 4;
    if (at_ + len > data_.size()) {
        ok_ = false;
        return "";
    }
    std::string s = data_.substr(at_, len);
    at_ += len;
    return s;
}

std::string
encodeFrame(FrameType type, const std::string& payload)
{
    if (payload.size() > kMaxFramePayload)
        panic("frame payload of ", payload.size(),
              " bytes exceeds the protocol cap");
    std::string wire;
    wire.reserve(kHeaderSize + payload.size());
    wire.append(kMagic, sizeof(kMagic));
    char h[8];
    putU16(h, kFrameVersion);
    putU16(h + 2, static_cast<std::uint16_t>(type));
    putU32(h + 4, static_cast<std::uint32_t>(payload.size()));
    wire.append(h, sizeof(h));
    wire.append(payload);
    return wire;
}

bool
sendFrame(int fd, FrameType type, const std::string& payload)
{
    const std::string wire = encodeFrame(type, payload);
    return harness::writeFull(fd, wire.data(), wire.size());
}

int
recvFrame(int fd, Frame* out, std::string* err)
{
    char header[kHeaderSize];
    const ssize_t r = harness::readFull(fd, header, sizeof(header));
    if (r == 0)
        return 0;
    if (r < 0) {
        *err = errno ? errnoMessage(errno)
                     : "connection closed mid-frame";
        return -1;
    }
    std::uint32_t length = 0;
    if (!parseFrameHeader(header, &out->type, &length, err))
        return -1;
    out->payload.resize(length);
    if (length > 0 &&
        harness::readFull(fd, out->payload.data(), length) !=
            static_cast<ssize_t>(length)) {
        *err = errno ? errnoMessage(errno)
                     : "connection closed mid-frame";
        return -1;
    }
    return 1;
}

bool
FrameReader::feed(const char* data, std::size_t n,
                  std::vector<Frame>* out)
{
    if (poisoned_)
        return false;
    buf_.append(data, n);
    for (;;) {
        if (buf_.size() < kHeaderSize)
            return true;
        Frame f;
        std::uint32_t length = 0;
        if (!parseFrameHeader(buf_.data(), &f.type, &length, &error_)) {
            poisoned_ = true;
            return false;
        }
        if (buf_.size() < kHeaderSize + length)
            return true;
        f.payload = buf_.substr(kHeaderSize, length);
        buf_.erase(0, kHeaderSize + length);
        out->push_back(std::move(f));
    }
}

} // namespace svc
} // namespace tb
