/**
 * @file
 * The campaign work-queue daemon (docs/ROBUSTNESS.md, "Distributed
 * campaigns").
 *
 * CampaignService owns one campaign's point space and serves it to
 * workers over the TBF1 frame protocol: workers take *leases* on
 * points, heartbeat while simulating, and stream artifacts back.
 * Worker failure is the designed-for case, not the exception:
 *
 *  - a dead socket (SIGKILL, OOM, network drop) returns the worker's
 *    leases to the queue immediately;
 *  - a silent worker (socket open, heartbeats stopped) is declared
 *    dead after kHeartbeatMisses missed intervals;
 *  - a hung simulation is bounded by the sim-independent lease
 *    deadline (--deadline-ms);
 *  - every loss consumes one attempt of the point's retry budget and
 *    re-eligibility follows the supervisor's deterministic
 *    exponential backoff;
 *  - duplicate completions from slow-but-alive workers are resolved
 *    idempotently against the journal's config-hash + FNV-1a
 *    checksum pair;
 *  - every observed failure is recorded in the per-worker crash
 *    ledger, which lands in the PR 4 failure manifest.
 *
 * In front of the queue sit the CampaignJournal (exactly PR 4's
 * resume semantics) and the content-addressed ResultCache: points
 * resolved from either are never leased, so a warm-cache re-run
 * performs zero simulations.
 *
 * The daemon is single-threaded: one poll() loop multiplexes the
 * listener and every worker connection, and frames demux through a
 * per-type handler table — the same registry-of-handlers idiom as
 * mp::MpEndpoint, with frame types in place of message tags.
 */

#ifndef TB_SVC_CAMPAIGND_HH_
#define TB_SVC_CAMPAIGND_HH_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "harness/campaign_journal.hh"
#include "harness/campaign_supervisor.hh"
#include "svc/crash_ledger.hh"
#include "svc/frame.hh"
#include "svc/result_cache.hh"
#include "svc/service_journal.hh"
#include "svc/work_queue.hh"

namespace tb {
namespace svc {

/** Missed heartbeat intervals after which a worker is declared dead. */
constexpr unsigned kHeartbeatMisses = 3;

/** Knobs of one daemon instance. */
struct ServiceOptions
{
    std::string listen;              ///< unix:PATH or tcp:HOST:PORT
    std::string campaign = "svc";    ///< name used in summaries
    std::uint64_t heartbeatMs = 1000;
    QueuePolicy queue;
};

/** Daemon-side counters, emitted as a `"kind": "service"` line. */
struct ServiceStats
{
    std::uint64_t workersSeen = 0;
    std::uint64_t leases = 0;
    std::uint64_t leasesExpired = 0;
    std::uint64_t heartbeatTimeouts = 0;
    std::uint64_t disconnects = 0;       ///< with leases outstanding
    std::uint64_t protocolErrors = 0;
    std::uint64_t duplicates = 0;        ///< benign (matching) dups
    std::uint64_t duplicateMismatches = 0;
    std::uint64_t staleResults = 0;
    std::uint64_t resultsAccepted = 0;
    std::uint64_t journalHits = 0;
    std::uint64_t cacheHits = 0;
    std::uint64_t cacheMisses = 0;
    std::uint64_t cacheEvictions = 0;

    std::string summaryJson(const std::string& campaign) const;
};

/** Canonical fingerprint of a point-key table (Hello handshake). */
std::uint64_t fingerprintKeys(const std::vector<std::uint64_t>& keys);

/** One campaign's daemon. */
class CampaignService
{
  public:
    explicit CampaignService(ServiceOptions opts);
    ~CampaignService();

    CampaignService(const CampaignService&) = delete;
    CampaignService& operator=(const CampaignService&) = delete;

    /** Journal to consult/append (PR 4 resume); may be null. */
    void attachJournal(harness::CampaignJournal* journal)
    {
        journal_ = journal;
    }

    /** Content-addressed result cache; may be null. */
    void attachCache(ResultCache* cache) { cache_ = cache; }

    /**
     * Service journal making the daemon's scheduling state durable
     * (docs/ROBUSTNESS.md, "Daemon crash recovery"); may be null.
     * Must be open()ed by the caller; when it was opened with resume,
     * run() replays it into the work queue before serving.
     */
    void attachServiceJournal(ServiceJournal* journal)
    {
        svcJournal_ = journal;
    }

    /**
     * Per-point config hashes / workload seeds. When set (the
     * campaign-binary --serve mode), journal and cache resolve
     * before any worker connects and worker-reported keys are
     * verified against the table. When absent (generic tb_campaignd),
     * the table is uploaded by the first worker's Keys frame.
     */
    void setKeys(std::vector<std::uint64_t> keys);
    void setSeeds(std::vector<std::uint64_t> seeds)
    {
        seeds_ = std::move(seeds);
    }

    /**
     * Serve all @p count points until each is Done or Failed (or
     * SIGINT). Never throws for worker failures — they are ledgered
     * and retried. Throws FatalError only when the listen address is
     * unusable.
     */
    harness::SupervisorReport run(std::size_t count);

    /** Artifacts by point index ("" for failed/not-run points). */
    const std::vector<std::string>& results() const
    {
        return results_;
    }

    const ServiceStats& stats() const { return stats_; }
    const CrashLedger& ledger() const { return ledger_; }

  private:
    struct Connection;

    void preResolveStored();
    void recoverServiceState();
    void failPoint(std::size_t point, LeaseLoss loss,
                   harness::PointOutcome outcome,
                   const std::string& message, std::uint64_t nowMs);
    std::uint64_t nowMs() const;
    void acceptConnections();
    void serviceConnection(Connection* conn);
    void dispatchFrame(Connection* conn, const Frame& frame);
    void closeConnection(Connection* conn, LeaseLoss loss,
                         const std::string& detail);
    void failLeases(Connection* conn, LeaseLoss loss,
                    const std::string& detail);
    void checkDeadlines();
    void broadcastDone();
    bool send(Connection* conn, FrameType type,
              const std::string& payload);

    // Frame handlers (the per-type demux table, mp_endpoint-style).
    void onHello(Connection* conn, const Frame& f);
    void onKeys(Connection* conn, const Frame& f);
    void onLeaseRequest(Connection* conn, const Frame& f);
    void onHeartbeat(Connection* conn, const Frame& f);
    void onResult(Connection* conn, const Frame& f);
    void onPointError(Connection* conn, const Frame& f);
    void onGoodbye(Connection* conn, const Frame& f);

    ServiceOptions opts_;
    harness::CampaignJournal* journal_ = nullptr;
    ResultCache* cache_ = nullptr;
    ServiceJournal* svcJournal_ = nullptr;
    std::vector<std::uint64_t> keys_;
    std::vector<std::uint64_t> seeds_;
    bool haveKeys_ = false;
    std::uint64_t fingerprint_ = 0;

    int listenFd_ = -1;
    std::unique_ptr<WorkQueue> queue_;
    std::vector<std::string> results_;
    std::vector<std::unique_ptr<Connection>> conns_;
    std::map<FrameType,
             std::function<void(Connection*, const Frame&)>>
        handlers_;
    CrashLedger ledger_;
    ServiceStats stats_;
    std::uint64_t nextWorkerId_ = 1;
};

} // namespace svc
} // namespace tb

#endif // TB_SVC_CAMPAIGND_HH_
