/**
 * @file
 * Lease-based work queue of campaign sweep points.
 *
 * The daemon's bookkeeping core, kept free of sockets and clocks so
 * every failure path is unit-testable: all methods take the current
 * wall-clock milliseconds as a parameter (the daemon samples a
 * monotonic clock; tests pass literals).
 *
 * Lifecycle of a point:
 *
 *   Pending --lease--> Leased --complete--> Done
 *      ^                  |
 *      |     expire / worker death / point error
 *      +------------------+  (attempt budget left: backoff, retry)
 *                         |
 *                         +--> Failed (budget exhausted)
 *
 * Robustness properties:
 *  - a lease carries a sim-independent deadline; an expired lease
 *    returns the point to the queue with its retry budget decremented
 *    and a deterministic exponential backoff (the supervisor's
 *    backoffDelayMs, so distributed retries pace exactly like local
 *    ones);
 *  - duplicate completions (a re-leased point whose original worker
 *    was slow, not dead) are resolved idempotently: a duplicate whose
 *    config key and checksum match the recorded result is benign and
 *    counted, a mismatch is a determinism violation surfaced as a
 *    protocol error;
 *  - every transition is attributable to a worker id, so the daemon
 *    can write an exact crash ledger.
 */

#ifndef TB_SVC_WORK_QUEUE_HH_
#define TB_SVC_WORK_QUEUE_HH_

#include <cstdint>
#include <string>
#include <vector>

#include "harness/campaign_supervisor.hh"

namespace tb {
namespace svc {

/** Retry/lease policy of one queue. */
struct QueuePolicy
{
    unsigned maxAttempts = 1;          ///< attempts per point
    std::uint64_t backoffBaseMs = 100; ///< doubles per attempt
    std::uint64_t backoffCapMs = 10000;
    std::uint64_t leaseMs = 0;         ///< per-lease deadline; 0 = none
    std::uint64_t seed = 1;            ///< backoff jitter seed
};

/** Why a lease came back to the queue (ledger vocabulary). */
enum class LeaseLoss
{
    Expired,         ///< lease deadline passed without a result
    Disconnect,      ///< worker socket died (EOF/EPIPE)
    HeartbeatLost,   ///< socket open but heartbeats stopped
    ProtocolError,   ///< worker sent garbage; connection dropped
    WorkerError,     ///< worker reported a point failure
};

const char* leaseLossName(LeaseLoss loss);

/** Outcome of offering a completion to the queue. */
enum class CompleteOutcome
{
    Accepted,          ///< first completion; result recorded
    DuplicateMatch,    ///< point already done, same key+checksum
    DuplicateMismatch, ///< point done with a *different* result
    Rejected,          ///< unknown point / already failed
};

/** One granted lease. */
struct LeaseGrant
{
    bool granted = false;
    std::size_t point = 0;
    unsigned attempt = 0;        ///< 1-based attempt number
    std::uint64_t retryAfterMs = 0; ///< when !granted: hint to re-ask
};

/** Work-queue of a fixed point space. */
class WorkQueue
{
  public:
    WorkQueue(std::size_t count, const QueuePolicy& policy);

    /**
     * Resolve point @p i without work (journal replay / cache hit).
     * @p key and @p checksum record the replayed artifact's identity
     * so a late duplicate submission from a reconnecting worker is
     * classified DuplicateMatch, not a determinism violation.
     */
    void resolveStored(std::size_t i, harness::PointOutcome how,
                       std::uint64_t key, std::uint64_t checksum);

    /**
     * Reconstruct the pre-crash scheduling state of point @p i during
     * a `--serve --resume` daemon restart: re-arm with @p attempts
     * already consumed and gate re-leasing behind @p notBeforeMs.
     * Only a Pending point (one the completion journal did not
     * resolve) is touched. Deliberately never restores Failed: a
     * point at budget gets one more attempt after a daemon crash
     * instead of trusting the tail of a torn journal for a terminal
     * verdict.
     */
    void restore(std::size_t i, unsigned attempts,
                 std::uint64_t notBeforeMs);

    /**
     * Try to lease the lowest eligible point to @p worker. When
     * nothing is eligible, retryAfterMs hints how long the worker
     * should wait: the nearest backoff expiry, or a default poll
     * interval when everything is leased out.
     */
    LeaseGrant lease(std::uint64_t worker, std::uint64_t nowMs);

    /**
     * Offer a completion for @p point from @p worker. @p checksum is
     * the FNV-1a of the artifact; @p key the point's config hash.
     * Duplicate completions are resolved against the recorded
     * (key, checksum) pair.
     */
    CompleteOutcome complete(std::size_t point, std::uint64_t worker,
                             std::uint64_t key,
                             std::uint64_t checksum);

    /**
     * Return @p point to the queue after a lost lease or a reported
     * failure. Consumes one attempt; with budget left the point is
     * re-eligible after its deterministic backoff, otherwise it is
     * Failed with @p outcome and @p message recorded.
     */
    void fail(std::size_t point, LeaseLoss loss,
              harness::PointOutcome outcome,
              const std::string& message, std::uint64_t nowMs);

    /** Points currently leased by @p worker (crash handling). */
    std::vector<std::size_t> leasedBy(std::uint64_t worker) const;

    /** Leases whose deadline has passed at @p nowMs. */
    std::vector<std::size_t> expired(std::uint64_t nowMs) const;

    /** Record a heartbeat for @p point (refreshes nothing by itself;
     *  heartbeat liveness is per-connection in the daemon, but the
     *  queue validates the worker still holds the lease). */
    bool heartbeat(std::size_t point, std::uint64_t worker) const;

    /** All points Done or Failed. */
    bool allResolved() const { return unresolved_ == 0; }

    /**
     * Millisecond timestamp of the next interesting queue event
     * (earliest backoff expiry or lease deadline), or UINT64_MAX —
     * the daemon bounds its poll timeout with this.
     */
    std::uint64_t nextEventMs() const;

    /** Fill a supervisor-shaped report (outcome per point). */
    void fillReport(harness::SupervisorReport* report) const;

    std::size_t size() const { return points_.size(); }
    std::uint64_t retries() const { return retries_; }

    /** Per-point bookkeeping (exposed for the daemon/tests). */
    struct Point
    {
        enum class State { Pending, Leased, Done, Failed };
        State state = State::Pending;
        unsigned attempts = 0; ///< attempts started
        std::uint64_t leasedTo = 0;
        std::uint64_t leaseDeadlineMs = 0; ///< 0 = no deadline
        std::uint64_t notBeforeMs = 0;     ///< backoff gate
        std::uint64_t key = 0;             ///< config hash (on Done)
        std::uint64_t checksum = 0;        ///< artifact FNV (on Done)
        harness::PointOutcome outcome = harness::PointOutcome::NotRun;
        std::string message;
    };

    const Point& point(std::size_t i) const { return points_.at(i); }

  private:
    QueuePolicy policy_;
    std::vector<Point> points_;
    std::size_t unresolved_ = 0;
    std::uint64_t retries_ = 0;
};

} // namespace svc
} // namespace tb

#endif // TB_SVC_WORK_QUEUE_HH_
