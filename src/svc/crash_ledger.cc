#include "svc/crash_ledger.hh"

#include "obs/json_writer.hh"

namespace tb {
namespace svc {

void
CrashLedger::add(std::uint64_t workerId,
                 const std::string& workerName,
                 const std::string& reason, long point,
                 const std::string& detail)
{
    events_.push_back(
        CrashEvent{workerId, workerName, reason, point, detail});
}

std::size_t
CrashLedger::count(const std::string& reason) const
{
    std::size_t n = 0;
    for (const CrashEvent& e : events_)
        n += e.reason == reason;
    return n;
}

void
CrashLedger::writeJsonl(std::ostream& os,
                        const std::string& campaign) const
{
    for (const CrashEvent& e : events_) {
        obs::JsonWriter w(os);
        w.beginObject();
        w.field("campaign", campaign)
            .field("kind", "crash-ledger")
            .field("worker", e.workerId)
            .field("worker_name", e.workerName)
            .field("reason", e.reason);
        if (e.point >= 0)
            w.field("point", static_cast<std::uint64_t>(e.point));
        w.field("detail", e.detail);
        w.endObject();
        os << '\n';
    }
}

} // namespace svc
} // namespace tb
