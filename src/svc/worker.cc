#include "svc/worker.hh"

#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>

#include <poll.h>
#include <unistd.h>

#include "harness/campaign_journal.hh"
#include "harness/campaign_supervisor.hh"
#include "harness/posix_io.hh"
#include "sim/logging.hh"
#include "svc/campaignd.hh"
#include "svc/net.hh"

namespace tb {
namespace svc {

namespace {

std::string
defaultWorkerName()
{
    char host[256] = "unknown";
    ::gethostname(host, sizeof(host) - 1);
    host[sizeof(host) - 1] = '\0';
    return std::to_string(::getpid()) + "@" + host;
}

/** Whether errno @p e means "the daemon is simply gone". */
bool
peerGone(int e)
{
    return e == EPIPE || e == ECONNRESET;
}

} // namespace

CampaignWorker::CampaignWorker(WorkerOptions opts)
    : opts_(std::move(opts))
{
    if (opts_.name.empty())
        opts_.name = defaultWorkerName();
}

CampaignWorker::~CampaignWorker()
{
    if (fd_ >= 0)
        ::close(fd_);
}

bool
CampaignWorker::sendLocked(FrameType type, const std::string& payload)
{
    LockGuard lock(sendMu_);
    return fd_ >= 0 && sendFrame(fd_, type, payload);
}

bool
CampaignWorker::handshake(std::string* err)
{
    // Retry the connect while the daemon starts up (binds its socket,
    // replays its journal): workers and daemon are normally launched
    // together, and a bounded retry here beats sleeps in every
    // launcher script.
    const std::uint64_t stepMs = 100;
    for (std::uint64_t waited = 0;; waited += stepMs) {
        fd_ = connectTo(opts_.connect, err);
        if (fd_ >= 0)
            break;
        if (waited >= opts_.connectWaitMs)
            return false;
        harness::pollOne(-1, 0, static_cast<int>(stepMs));
    }

    std::string hello;
    appendU64(&hello, opts_.count);
    appendU64(&hello, fingerprintKeys(opts_.keys));
    appendString(&hello, opts_.name);
    if (!sendLocked(FrameType::Hello, hello)) {
        *err = "hello: " + errnoMessage(errno);
        return false;
    }

    Frame f;
    const int rc = recvFrame(fd_, &f, err);
    if (rc <= 0) {
        if (rc == 0)
            *err = "daemon closed the connection during handshake";
        return false;
    }
    if (f.type == FrameType::Reject) {
        PayloadReader r(f.payload);
        *err = "rejected by daemon: " + r.str();
        return false;
    }
    if (f.type != FrameType::HelloAck) {
        *err = std::string("expected hello-ack, got ") +
               frameTypeName(f.type);
        return false;
    }
    PayloadReader r(f.payload);
    workerId_ = r.u64();
    heartbeatMs_ = r.u64();
    r.u64(); // leaseMs: informational
    const std::uint64_t flags = r.u64();
    if (!r.ok()) {
        *err = "malformed hello-ack";
        return false;
    }
    if (heartbeatMs_ == 0)
        heartbeatMs_ = 1000;
    if (flags & kHelloAckWantKeys) {
        std::string keys;
        keys.reserve(8 * opts_.keys.size());
        for (std::uint64_t k : opts_.keys)
            appendU64(&keys, k);
        if (!sendLocked(FrameType::Keys, keys)) {
            *err = "keys upload: " + errnoMessage(errno);
            return false;
        }
    }
    return true;
}

bool
CampaignWorker::executePoint(
    std::size_t point,
    const std::function<std::string(std::size_t)>& fn,
    std::string* err)
{
    // Heartbeat thread: proves liveness to the daemon while the
    // simulation runs. The condition variable both paces the interval
    // and lets the main thread stop it instantly once the point ends.
    std::mutex hbMu;
    std::condition_variable hbCv;
    bool finished = false;
    std::thread hb([&]() {
        std::unique_lock<std::mutex> lock(hbMu);
        for (;;) {
            if (hbCv.wait_for(
                    lock, std::chrono::milliseconds(heartbeatMs_),
                    [&]() { return finished; }))
                return;
            std::string p;
            appendU64(&p, point);
            if (!sendLocked(FrameType::Heartbeat, p))
                return; // socket died; the main recv will see it too
            ++stats_.heartbeats;
        }
    });

    harness::PointOutcome outcome = harness::PointOutcome::Ok;
    std::string payload;
    try {
        payload = fn(point);
    } catch (const PanicError& e) {
        outcome = harness::PointOutcome::CheckerViolation;
        payload = e.what();
    } catch (const std::exception& e) {
        outcome = harness::PointOutcome::Exception;
        payload = e.what();
    } catch (...) {
        outcome = harness::PointOutcome::Exception;
        payload = "unknown exception";
    }

    {
        std::lock_guard<std::mutex> lock(hbMu);
        finished = true;
    }
    hbCv.notify_all();
    hb.join();

    bool sent;
    if (outcome == harness::PointOutcome::Ok) {
        std::string p;
        appendU64(&p, point);
        appendU64(&p, point < opts_.keys.size() ? opts_.keys[point]
                                                : 0);
        appendU64(&p, harness::fnv1a64(payload));
        appendString(&p, payload);
        sent = sendLocked(FrameType::Result, p);
        if (sent)
            ++stats_.results;
    } else {
        std::string p;
        appendU64(&p, point);
        appendU64(&p, static_cast<std::uint64_t>(outcome));
        appendString(&p, payload);
        sent = sendLocked(FrameType::PointError, p);
        if (sent)
            ++stats_.pointErrors;
    }
    if (!sent && !peerGone(errno)) {
        *err = "report for point " + std::to_string(point) + ": " +
               errnoMessage(errno);
        return false;
    }
    return true;
}

bool
CampaignWorker::run(
    const std::function<std::string(std::size_t)>& fn,
    std::string* err)
{
    harness::ignoreSigpipe();
    if (!handshake(err))
        return false;

    for (;;) {
        if (!sendLocked(FrameType::LeaseRequest, "")) {
            if (peerGone(errno)) {
                warn("campaign worker: daemon gone; assuming the "
                     "campaign ended");
                return true;
            }
            *err = "lease request: " + errnoMessage(errno);
            return false;
        }
        Frame f;
        const int rc = recvFrame(fd_, &f, err);
        if (rc == 0 || (rc < 0 && peerGone(errno))) {
            // The daemon resolved the campaign (possibly via another
            // worker) and exited between our frames. Not a worker
            // failure: real daemon crashes surface in the daemon's
            // own exit status and artifacts.
            warn("campaign worker: daemon gone; assuming the "
                 "campaign ended");
            return true;
        }
        if (rc < 0)
            return false;
        switch (f.type) {
          case FrameType::LeaseGrant: {
            PayloadReader r(f.payload);
            const std::size_t point =
                static_cast<std::size_t>(r.u64());
            ++stats_.leases;
            if (!executePoint(point, fn, err))
                return false;
            // The daemon acks every report; Done can follow
            // immediately when ours was the last point.
            Frame ack;
            const int arc = recvFrame(fd_, &ack, err);
            if (arc == 0 || (arc < 0 && peerGone(errno))) {
                warn("campaign worker: daemon gone; assuming the "
                     "campaign ended");
                return true;
            }
            if (arc < 0)
                return false;
            if (ack.type == FrameType::Done) {
                sendLocked(FrameType::Goodbye, "");
                return true;
            }
            break;
          }
          case FrameType::NoWork: {
            PayloadReader r(f.payload);
            const std::uint64_t hint = r.u64();
            ++stats_.noWorkWaits;
            // Wait as hinted, but wake early if the daemon speaks
            // (usually the final Done broadcast).
            harness::pollOne(
                fd_, POLLIN,
                static_cast<int>(
                    std::min<std::uint64_t>(hint ? hint : 100, 1000)));
            break;
          }
          case FrameType::Done:
            sendLocked(FrameType::Goodbye, "");
            return true;
          case FrameType::Reject: {
            PayloadReader r(f.payload);
            *err = "rejected by daemon: " + r.str();
            return false;
          }
          default:
            *err = std::string("unexpected frame from daemon: ") +
                   frameTypeName(f.type);
            return false;
        }
    }
}

} // namespace svc
} // namespace tb
