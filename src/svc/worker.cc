#include "svc/worker.hh"

#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>

#include <poll.h>
#include <unistd.h>

#include "harness/campaign_journal.hh"
#include "harness/campaign_supervisor.hh"
#include "harness/posix_io.hh"
#include "sim/logging.hh"
#include "svc/campaignd.hh"
#include "svc/net.hh"

namespace tb {
namespace svc {

namespace {

std::string
defaultWorkerName()
{
    char host[256] = "unknown";
    ::gethostname(host, sizeof(host) - 1);
    host[sizeof(host) - 1] = '\0';
    return std::to_string(::getpid()) + "@" + host;
}

/** Whether errno @p e means "the daemon is simply gone". */
bool
peerGone(int e)
{
    return e == EPIPE || e == ECONNRESET;
}

/** Whether a recvFrame return means the connection is gone (EOF or a
 *  peer-death errno) rather than a protocol-fatal condition. */
bool
lostFrame(int rc)
{
    return rc == 0 || (rc < 0 && peerGone(errno));
}

} // namespace

CampaignWorker::CampaignWorker(WorkerOptions opts)
    : opts_(std::move(opts))
{
    if (opts_.name.empty())
        opts_.name = defaultWorkerName();
}

CampaignWorker::~CampaignWorker()
{
    if (fd_ >= 0)
        ::close(fd_);
}

bool
CampaignWorker::sendLocked(FrameType type, const std::string& payload)
{
    LockGuard lock(sendMu_);
    return fd_ >= 0 && transport_.sendFrame(fd_, type, payload);
}

void
CampaignWorker::dropConnection()
{
    LockGuard lock(sendMu_);
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

int
CampaignWorker::handshake(std::uint64_t waitMs, std::string* err)
{
    // Retry the connect while the daemon starts up (binds its socket,
    // replays its journal): workers and daemon are normally launched
    // together, and a bounded retry here beats sleeps in every
    // launcher script.
    const std::uint64_t stepMs = 100;
    for (std::uint64_t waited = 0;; waited += stepMs) {
        fd_ = connectTo(opts_.connect, err);
        if (fd_ >= 0)
            break;
        if (waited >= waitMs)
            return 0;
        harness::pollOne(-1, 0, static_cast<int>(stepMs));
    }

    // The handshake travels over the clean transport even under
    // --net-faults: a corrupted Hello would surface as a config
    // mismatch (Reject) and mask the fault as a campaign bug. Only
    // post-handshake traffic is fault-injected.
    std::string hello;
    appendU64(&hello, opts_.count);
    appendU64(&hello, fingerprintKeys(opts_.keys));
    appendString(&hello, opts_.name);
    if (!sendFrame(fd_, FrameType::Hello, hello)) {
        *err = "hello: " + errnoMessage(errno);
        dropConnection();
        return peerGone(errno) ? 0 : -1;
    }

    Frame f;
    const int rc = recvFrame(fd_, &f, err);
    if (rc <= 0) {
        if (rc == 0)
            *err = "daemon closed the connection during handshake";
        dropConnection();
        return lostFrame(rc) ? 0 : -1;
    }
    if (f.type == FrameType::Reject) {
        PayloadReader r(f.payload);
        *err = "rejected by daemon: " + r.str();
        dropConnection();
        return -1;
    }
    if (f.type != FrameType::HelloAck) {
        *err = std::string("expected hello-ack, got ") +
               frameTypeName(f.type);
        dropConnection();
        return -1;
    }
    PayloadReader r(f.payload);
    workerId_ = r.u64();
    heartbeatMs_ = r.u64();
    r.u64(); // leaseMs: informational
    const std::uint64_t flags = r.u64();
    if (!r.ok()) {
        *err = "malformed hello-ack";
        dropConnection();
        return -1;
    }
    if (heartbeatMs_ == 0)
        heartbeatMs_ = 1000;
    if (flags & kHelloAckWantKeys) {
        std::string keys;
        keys.reserve(8 * opts_.keys.size());
        for (std::uint64_t k : opts_.keys)
            appendU64(&keys, k);
        if (!sendFrame(fd_, FrameType::Keys, keys)) {
            *err = "keys upload: " + errnoMessage(errno);
            dropConnection();
            return peerGone(errno) ? 0 : -1;
        }
    }
    return 1;
}

int
CampaignWorker::reconnect(std::string* err)
{
    dropConnection();
    if (opts_.reconnectWaitMs == 0)
        return 0;
    // The daemon restart window: retry the full handshake under the
    // supervisor's deterministic exponential backoff, seeded by our
    // identity so a fleet of restarting workers does not stampede the
    // fresh daemon in lockstep. Identity is the name, not the old
    // workerId — the restarted daemon hands out new ids.
    harness::SupervisorPolicy sp;
    sp.backoffBaseMs = 100;
    sp.backoffCapMs = 2000;
    sp.seed = harness::fnv1a64(opts_.name);
    std::uint64_t waited = 0;
    for (unsigned attempt = 1;; ++attempt) {
        const std::uint64_t delay =
            harness::CampaignSupervisor::backoffDelayMs(sp, 0,
                                                        attempt + 1);
        if (waited + delay > opts_.reconnectWaitMs)
            return 0;
        harness::pollOne(-1, 0, static_cast<int>(delay));
        waited += delay;
        std::string hsErr;
        const int h = handshake(0, &hsErr);
        if (h > 0) {
            ++stats_.reconnects;
            warn("campaign worker ", opts_.name, ": reconnected to ",
                 opts_.connect, " after ", attempt, " attempt(s)");
            return 1;
        }
        if (h < 0) {
            *err = hsErr;
            return -1;
        }
    }
}

void
CampaignWorker::executePoint(
    std::size_t point,
    const std::function<std::string(std::size_t)>& fn)
{
    // Heartbeat thread: proves liveness to the daemon while the
    // simulation runs. The condition variable both paces the interval
    // and lets the main thread stop it instantly once the point ends.
    std::mutex hbMu;
    std::condition_variable hbCv;
    bool finished = false;
    std::thread hb([&]() {
        std::unique_lock<std::mutex> lock(hbMu);
        for (;;) {
            if (hbCv.wait_for(
                    lock, std::chrono::milliseconds(heartbeatMs_),
                    [&]() { return finished; }))
                return;
            std::string p;
            appendU64(&p, point);
            if (!sendLocked(FrameType::Heartbeat, p))
                return; // socket died; the main recv will see it too
            ++stats_.heartbeats;
        }
    });

    harness::PointOutcome outcome = harness::PointOutcome::Ok;
    std::string payload;
    try {
        payload = fn(point);
    } catch (const PanicError& e) {
        outcome = harness::PointOutcome::CheckerViolation;
        payload = e.what();
    } catch (const std::exception& e) {
        outcome = harness::PointOutcome::Exception;
        payload = e.what();
    } catch (...) {
        outcome = harness::PointOutcome::Exception;
        payload = "unknown exception";
    }

    {
        std::lock_guard<std::mutex> lock(hbMu);
        finished = true;
    }
    hbCv.notify_all();
    hb.join();

    // Never send from here: stash the report so run() owns the
    // submit/ack exchange and can resubmit it after a reconnect. The
    // simulation's work survives any number of connection losses.
    pending_.valid = true;
    pending_.point = point;
    if (outcome == harness::PointOutcome::Ok) {
        std::string p;
        appendU64(&p, point);
        appendU64(&p, point < opts_.keys.size() ? opts_.keys[point]
                                                : 0);
        appendU64(&p, harness::fnv1a64(payload));
        appendString(&p, payload);
        pending_.type = FrameType::Result;
        pending_.payload = std::move(p);
    } else {
        std::string p;
        appendU64(&p, point);
        appendU64(&p, static_cast<std::uint64_t>(outcome));
        appendString(&p, payload);
        pending_.type = FrameType::PointError;
        pending_.payload = std::move(p);
    }
}

bool
CampaignWorker::run(
    const std::function<std::string(std::size_t)>& fn,
    std::string* err)
{
    harness::ignoreSigpipe();
    transport_.configure(opts_.netFaults, opts_.name);
    if (handshake(opts_.connectWaitMs, err) <= 0)
        return false;

    for (;;) {
        if (fd_ < 0) {
            const int r = reconnect(err);
            if (r < 0)
                return false;
            if (r == 0) {
                // The daemon resolved the campaign (possibly via
                // another worker) and exited; it stayed unreachable
                // for the whole reconnect budget. Not a worker
                // failure: real daemon crashes surface in the
                // daemon's own exit status and artifacts.
                warn("campaign worker: daemon gone; assuming the "
                     "campaign ended");
                return true;
            }
        }

        if (pending_.valid) {
            // Submit the stashed report and wait for the ack; a lost
            // connection anywhere in the exchange routes back through
            // reconnect() with the report still pending.
            if (!sendLocked(pending_.type, pending_.payload)) {
                if (peerGone(errno)) {
                    dropConnection();
                    continue;
                }
                *err = "report for point " +
                       std::to_string(pending_.point) + ": " +
                       errnoMessage(errno);
                return false;
            }
            Frame ack;
            const int arc = transport_.recvFrame(fd_, &ack, err);
            if (lostFrame(arc)) {
                dropConnection();
                continue;
            }
            if (arc < 0)
                return false;
            if (pending_.type == FrameType::Result)
                ++stats_.results;
            else
                ++stats_.pointErrors;
            pending_ = PendingReport{};
            if (ack.type == FrameType::Done) {
                sendLocked(FrameType::Goodbye, "");
                return true;
            }
            if (ack.type == FrameType::Reject) {
                PayloadReader r(ack.payload);
                *err = "rejected by daemon: " + r.str();
                return false;
            }
            if (ack.type != FrameType::ResultAck) {
                *err = std::string(
                           "expected result-ack, got ") +
                       frameTypeName(ack.type);
                return false;
            }
            continue;
        }

        if (!sendLocked(FrameType::LeaseRequest, "")) {
            if (peerGone(errno)) {
                dropConnection();
                continue;
            }
            *err = "lease request: " + errnoMessage(errno);
            return false;
        }
        Frame f;
        const int rc = transport_.recvFrame(fd_, &f, err);
        if (lostFrame(rc)) {
            dropConnection();
            continue;
        }
        if (rc < 0)
            return false;
        switch (f.type) {
          case FrameType::LeaseGrant: {
            PayloadReader r(f.payload);
            const std::size_t point =
                static_cast<std::size_t>(r.u64());
            ++stats_.leases;
            executePoint(point, fn);
            break; // the pending branch submits + awaits the ack
          }
          case FrameType::NoWork: {
            PayloadReader r(f.payload);
            const std::uint64_t hint = r.u64();
            ++stats_.noWorkWaits;
            // Wait as hinted, but wake early if the daemon speaks
            // (usually the final Done broadcast).
            harness::pollOne(
                fd_, POLLIN,
                static_cast<int>(
                    std::min<std::uint64_t>(hint ? hint : 100, 1000)));
            break;
          }
          case FrameType::Done:
            sendLocked(FrameType::Goodbye, "");
            return true;
          case FrameType::Reject: {
            PayloadReader r(f.payload);
            *err = "rejected by daemon: " + r.str();
            return false;
          }
          default:
            *err = std::string("unexpected frame from daemon: ") +
                   frameTypeName(f.type);
            return false;
        }
    }
}

} // namespace svc
} // namespace tb
