#include "svc/work_queue.hh"

#include <algorithm>
#include <limits>

namespace tb {
namespace svc {

const char*
leaseLossName(LeaseLoss loss)
{
    switch (loss) {
      case LeaseLoss::Expired:       return "lease-expired";
      case LeaseLoss::Disconnect:    return "disconnect";
      case LeaseLoss::HeartbeatLost: return "heartbeat-timeout";
      case LeaseLoss::ProtocolError: return "protocol-error";
      case LeaseLoss::WorkerError:   return "point-error";
    }
    return "?";
}

WorkQueue::WorkQueue(std::size_t count, const QueuePolicy& policy)
    : policy_(policy), points_(count), unresolved_(count)
{}

void
WorkQueue::resolveStored(std::size_t i, harness::PointOutcome how,
                         std::uint64_t key, std::uint64_t checksum)
{
    Point& p = points_.at(i);
    if (p.state == Point::State::Done ||
        p.state == Point::State::Failed)
        return;
    p.state = Point::State::Done;
    p.outcome = how;
    p.key = key;
    p.checksum = checksum;
    --unresolved_;
}

void
WorkQueue::restore(std::size_t i, unsigned attempts,
                   std::uint64_t notBeforeMs)
{
    if (i >= points_.size())
        return;
    Point& p = points_[i];
    if (p.state != Point::State::Pending)
        return;
    if (attempts > p.attempts)
        p.attempts = attempts;
    p.notBeforeMs = notBeforeMs;
}

LeaseGrant
WorkQueue::lease(std::uint64_t worker, std::uint64_t nowMs)
{
    LeaseGrant g;
    std::uint64_t nearest = std::numeric_limits<std::uint64_t>::max();
    for (std::size_t i = 0; i < points_.size(); ++i) {
        Point& p = points_[i];
        if (p.state != Point::State::Pending)
            continue;
        if (p.notBeforeMs > nowMs) {
            nearest = std::min(nearest, p.notBeforeMs);
            continue;
        }
        p.state = Point::State::Leased;
        p.leasedTo = worker;
        ++p.attempts;
        if (p.attempts > 1)
            ++retries_;
        p.leaseDeadlineMs =
            policy_.leaseMs == 0 ? 0 : nowMs + policy_.leaseMs;
        g.granted = true;
        g.point = i;
        g.attempt = p.attempts;
        return g;
    }
    // Nothing leasable: hint when to ask again — the nearest backoff
    // expiry, or a short poll when everything is in flight.
    g.retryAfterMs = nearest == std::numeric_limits<std::uint64_t>::max()
                         ? 100
                         : std::max<std::uint64_t>(nearest - nowMs, 1);
    return g;
}

CompleteOutcome
WorkQueue::complete(std::size_t point, std::uint64_t worker,
                    std::uint64_t key, std::uint64_t checksum)
{
    if (point >= points_.size())
        return CompleteOutcome::Rejected;
    Point& p = points_[point];
    if (p.state == Point::State::Done) {
        // A re-leased point's original worker finished after all.
        // Deterministic simulation means the duplicate must agree
        // bit-for-bit; config-hash + checksum is how we check without
        // keeping every artifact around.
        return p.key == key && p.checksum == checksum
                   ? CompleteOutcome::DuplicateMatch
                   : CompleteOutcome::DuplicateMismatch;
    }
    if (p.state == Point::State::Failed)
        return CompleteOutcome::Rejected;
    // Accept from the current lease holder; also accept a "late"
    // result from a worker whose lease expired while the point is
    // back in Pending — the work is done and verifiable either way.
    if (p.state == Point::State::Leased && p.leasedTo != worker)
        return CompleteOutcome::Rejected;
    p.state = Point::State::Done;
    p.outcome = harness::PointOutcome::Ok;
    p.key = key;
    p.checksum = checksum;
    p.leaseDeadlineMs = 0;
    --unresolved_;
    return CompleteOutcome::Accepted;
}

void
WorkQueue::fail(std::size_t point, LeaseLoss loss,
                harness::PointOutcome outcome,
                const std::string& message, std::uint64_t nowMs)
{
    if (point >= points_.size())
        return;
    Point& p = points_[point];
    if (p.state != Point::State::Leased)
        return;
    p.leasedTo = 0;
    p.leaseDeadlineMs = 0;
    if (p.attempts >= policy_.maxAttempts) {
        p.state = Point::State::Failed;
        p.outcome = outcome;
        p.message = message + " (" + leaseLossName(loss) + ", " +
                    std::to_string(p.attempts) + " attempt(s))";
        --unresolved_;
        return;
    }
    p.state = Point::State::Pending;
    p.message.clear();
    // Deterministic exponential backoff, same schedule as the local
    // supervisor's retry path: base << (attempt-2) + seeded jitter.
    harness::SupervisorPolicy sp;
    sp.backoffBaseMs = policy_.backoffBaseMs;
    sp.backoffCapMs = policy_.backoffCapMs;
    sp.seed = policy_.seed;
    p.notBeforeMs =
        nowMs + harness::CampaignSupervisor::backoffDelayMs(
                    sp, point, p.attempts + 1);
}

std::vector<std::size_t>
WorkQueue::leasedBy(std::uint64_t worker) const
{
    std::vector<std::size_t> out;
    for (std::size_t i = 0; i < points_.size(); ++i) {
        if (points_[i].state == Point::State::Leased &&
            points_[i].leasedTo == worker)
            out.push_back(i);
    }
    return out;
}

std::vector<std::size_t>
WorkQueue::expired(std::uint64_t nowMs) const
{
    std::vector<std::size_t> out;
    for (std::size_t i = 0; i < points_.size(); ++i) {
        const Point& p = points_[i];
        if (p.state == Point::State::Leased &&
            p.leaseDeadlineMs != 0 && nowMs >= p.leaseDeadlineMs)
            out.push_back(i);
    }
    return out;
}

bool
WorkQueue::heartbeat(std::size_t point, std::uint64_t worker) const
{
    return point < points_.size() &&
           points_[point].state == Point::State::Leased &&
           points_[point].leasedTo == worker;
}

std::uint64_t
WorkQueue::nextEventMs() const
{
    std::uint64_t next = std::numeric_limits<std::uint64_t>::max();
    for (const Point& p : points_) {
        if (p.state == Point::State::Pending && p.notBeforeMs != 0)
            next = std::min(next, p.notBeforeMs);
        else if (p.state == Point::State::Leased &&
                 p.leaseDeadlineMs != 0)
            next = std::min(next, p.leaseDeadlineMs);
    }
    return next;
}

void
WorkQueue::fillReport(harness::SupervisorReport* report) const
{
    report->points.assign(points_.size(), harness::PointRecord{});
    for (std::size_t i = 0; i < points_.size(); ++i) {
        harness::PointRecord& r = report->points[i];
        r.outcome = points_[i].outcome;
        r.attempts = points_[i].attempts;
        r.message = points_[i].message;
    }
    report->retries = retries_;
}

} // namespace svc
} // namespace tb
