#include "svc/distributed.hh"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "sim/logging.hh"
#include "sim/thread_safety.hh"
#include "svc/campaignd.hh"
#include "svc/worker.hh"

namespace tb {
namespace svc {

namespace {

/** The supervisor's default key function, mirrored for the daemon. */
std::uint64_t
pointKey(const harness::PointTask& task, std::size_t i)
{
    return task.key ? task.key(i)
                    : harness::fnv1a64("point:" + std::to_string(i));
}

std::vector<std::uint64_t>
pointKeys(const harness::PointTask& task, std::size_t count)
{
    std::vector<std::uint64_t> keys(count);
    for (std::size_t i = 0; i < count; ++i)
        keys[i] = pointKey(task, i);
    return keys;
}

CampaignRun
runLocal(const harness::CampaignOptions& opts, std::size_t count,
         const harness::PointTask& task,
         harness::CampaignJournal* journal, ResultCache* cache)
{
    harness::CampaignSupervisor supervisor(opts.policy);
    if (journal && journal->active())
        supervisor.attachJournal(journal);
    if (cache && cache->active()) {
        // The supervisor may run points on several threads; the cache
        // itself is single-threaded, so the hooks serialize on a
        // mutex shared by both closures.
        auto mu = std::make_shared<Mutex>();
        supervisor.attachCache(
            [cache, mu](std::uint64_t key, std::string* out) {
                LockGuard lock(*mu);
                return cache->lookup(key, out);
            },
            [cache, mu](std::uint64_t key, const std::string& r) {
                LockGuard lock(*mu);
                cache->store(key, r);
            });
    }
    CampaignRun run;
    run.report = supervisor.run(count, task);
    run.results = supervisor.results();
    return run;
}

CampaignRun
runServed(const harness::CampaignOptions& opts, std::size_t count,
          const harness::PointTask& task,
          harness::CampaignJournal* journal, ResultCache* cache,
          const std::string& campaignName)
{
    ServiceOptions so;
    so.listen = opts.serveAddr;
    so.campaign = campaignName;
    so.heartbeatMs = opts.heartbeatMs;
    so.queue.maxAttempts =
        std::max(opts.policy.maxAttempts, kServedMinAttempts);
    so.queue.backoffBaseMs = opts.policy.backoffBaseMs;
    so.queue.backoffCapMs = opts.policy.backoffCapMs;
    so.queue.leaseMs = opts.leaseMs;
    so.queue.seed = opts.policy.seed;

    CampaignService service(so);
    ServiceJournal svcJournal;
    if (journal && journal->active()) {
        service.attachJournal(journal);
        // The scheduling journal rides alongside the completion
        // journal: <journal>.svc. Opening with the same --resume flag
        // makes `--serve --resume` survive a daemon SIGKILL — leases,
        // attempt counts and backoff state are replayed before the
        // listener opens (docs/ROBUSTNESS.md, "Daemon crash
        // recovery").
        svcJournal.open(journal->path() + ".svc", opts.resume);
        service.attachServiceJournal(&svcJournal);
    }
    if (cache && cache->active())
        service.attachCache(cache);
    service.setKeys(pointKeys(task, count));
    if (task.seed) {
        std::vector<std::uint64_t> seeds(count);
        for (std::size_t i = 0; i < count; ++i)
            seeds[i] = task.seed(i);
        service.setSeeds(std::move(seeds));
    }

    CampaignRun run;
    run.report = service.run(count);
    run.results = service.results();
    run.serviceSummary = service.stats().summaryJson(campaignName);
    if (!service.ledger().empty()) {
        std::ostringstream os;
        service.ledger().writeJsonl(os, campaignName);
        run.ledgerJsonl = os.str();
    }
    // A served campaign leaves no repro commands behind (the daemon
    // never ran the point itself); synthesize them like the local
    // supervisor so the failure manifest stays actionable.
    if (task.repro) {
        for (std::size_t i = 0; i < count; ++i) {
            harness::PointRecord& r = run.report.points[i];
            if (r.outcome != harness::PointOutcome::Ok &&
                r.outcome != harness::PointOutcome::Journaled &&
                r.outcome != harness::PointOutcome::Cached)
                r.repro = task.repro(i);
        }
    }
    return run;
}

} // namespace

CampaignRun
runCampaignPoints(const harness::CampaignOptions& opts,
                  std::size_t count, const harness::PointTask& task,
                  harness::CampaignJournal* journal,
                  const std::string& campaignName)
{
    if (!opts.workerAddr.empty())
        panic("runCampaignPoints called in worker mode; dispatch to "
              "runCampaignWorker first");

    ResultCache cache;
    if (!opts.cacheDir.empty())
        cache.open(opts.cacheDir); // warns and stays inactive on failure

    CampaignRun run =
        opts.serveAddr.empty()
            ? runLocal(opts, count, task, journal, &cache)
            : runServed(opts, count, task, journal, &cache,
                        campaignName);
    run.cache = cache.stats();
    return run;
}

int
runCampaignWorker(const harness::CampaignOptions& opts,
                  std::size_t count, const harness::PointTask& task)
{
    WorkerOptions wo;
    wo.connect = opts.workerAddr;
    wo.name = opts.workerName;
    wo.count = count;
    wo.keys = pointKeys(task, count);
    wo.reconnectWaitMs = opts.reconnectMs;
    if (!opts.netFaultsSpec.empty()) {
        // The spec is CLI input but only svc understands the grammar
        // (the harness layer cannot depend on svc), so a bad value is
        // caught here and treated as the usage error it is.
        try {
            wo.netFaults = NetFaultSpec::parse(opts.netFaultsSpec);
        } catch (const FatalError& e) {
            std::fprintf(stderr, "%s\n", e.what());
            return 2;
        }
    }

    CampaignWorker worker(wo);
    std::string err;
    const bool ok = worker.run(task.run, &err);
    if (wo.netFaults.enabled()) {
        // Chaos evidence: prove the faults actually fired (the smoke
        // test greps this line) and make a zero-fault run visibly
        // vacuous.
        const std::string line =
            worker.faultCounters().summaryJson(worker.name());
        std::fprintf(stderr, "%s", line.c_str());
    }
    if (!ok) {
        std::fprintf(stderr, "campaign worker: %s\n", err.c_str());
        return 1;
    }
    return 0;
}

} // namespace svc
} // namespace tb
