/**
 * @file
 * Socket address parsing and setup for the campaign service.
 *
 * Addresses are strings so one flag serves both transports:
 *
 *   unix:/path/to.sock   Unix-domain socket (single machine; the
 *                        CI smoke and run_all.sh --distributed)
 *   tcp:host:port        TCP (workers on other machines)
 *
 * All returned descriptors are close-on-exec. Errors return -1 with
 * a diagnostic — the daemon treats a failed listen as fatal, a
 * worker retries connects with backoff.
 */

#ifndef TB_SVC_NET_HH_
#define TB_SVC_NET_HH_

#include <string>

namespace tb {
namespace svc {

/** Whether @p addr parses as a supported service address. */
bool validServiceAddress(const std::string& addr);

/**
 * Bind + listen on @p addr. A pre-existing Unix socket path is
 * unlinked first (stale socket of a dead daemon). Returns the
 * listening fd, or -1 with @p err filled.
 */
int listenOn(const std::string& addr, std::string* err);

/** Connect to @p addr. Returns the fd, or -1 with @p err filled. */
int connectTo(const std::string& addr, std::string* err);

/** Unlink the path of a unix: address (daemon shutdown). */
void cleanupAddress(const std::string& addr);

} // namespace svc
} // namespace tb

#endif // TB_SVC_NET_HH_
