/**
 * @file
 * Generic campaign worker: lease points from a tb_campaignd and run
 * an arbitrary command per point, capturing its stdout as the
 * artifact. The per-point config hash is derived from the command
 * line, so every worker of one campaign must be launched with the
 * same command — a mismatched worker is rejected at Hello.
 *
 *   tb_worker --connect ADDR --count N [--name S]
 *             [--net-faults SPEC] [--reconnect-ms N] -- CMD [ARGS...]
 *
 * Per lease of point I the worker runs `CMD ARGS... --only-point I`
 * (the repro-mode surface every campaign binary already has); a
 * non-zero exit becomes a PointError frame, never a dead worker.
 */

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "harness/campaign_journal.hh"
#include "sim/logging.hh"
#include "svc/net.hh"
#include "svc/worker.hh"

namespace {

[[noreturn]] void
usage(const char* complaint)
{
    std::fprintf(stderr,
                 "tb_worker: %s\n"
                 "usage: tb_worker --connect ADDR --count N "
                 "[--name S]\n"
                 "       [--net-faults SPEC] [--reconnect-ms N] "
                 "-- CMD [ARGS...]\n",
                 complaint);
    std::exit(2);
}

/** Run @p cmd, capture stdout; throws FatalError on non-zero exit. */
std::string
runCommand(const std::string& cmd)
{
    std::FILE* pipe = ::popen(cmd.c_str(), "r");
    if (!pipe)
        tb::fatal("cannot run '", cmd, "'");
    std::string out;
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), pipe)) > 0)
        out.append(buf, n);
    const int status = ::pclose(pipe);
    if (status != 0)
        tb::fatal("'", cmd, "' exited with status ", status,
                  (out.empty() ? "" : ": " + out));
    return out;
}

} // namespace

int
main(int argc, char** argv)
{
    using namespace tb;

    svc::WorkerOptions wo;
    std::vector<std::string> cmd;

    int i = 1;
    for (; i < argc; ++i) {
        const std::string opt = argv[i];
        const auto value = [&]() -> const char* {
            if (i + 1 >= argc) {
                usage((std::string("option ") + opt +
                       " needs a value")
                          .c_str());
            }
            return argv[++i];
        };
        if (opt == "--connect")
            wo.connect = value();
        else if (opt == "--count")
            wo.count = static_cast<std::size_t>(
                std::strtoull(value(), nullptr, 10));
        else if (opt == "--name")
            wo.name = value();
        else if (opt == "--net-faults")
            wo.netFaults = svc::NetFaultSpec::parse(value());
        else if (opt == "--reconnect-ms")
            wo.reconnectWaitMs =
                std::strtoull(value(), nullptr, 10);
        else if (opt == "--") {
            ++i;
            break;
        } else {
            usage((std::string("unknown option '") + opt + "'")
                      .c_str());
        }
    }
    for (; i < argc; ++i)
        cmd.push_back(argv[i]);

    if (wo.connect.empty() || !svc::validServiceAddress(wo.connect))
        usage("--connect needs unix:PATH or tcp:HOST:PORT");
    if (wo.count == 0)
        usage("--count must be >= 1");
    if (cmd.empty())
        usage("a command is required after --");

    std::string base;
    for (const std::string& part : cmd)
        base += (base.empty() ? "" : " ") + part;

    // Key = hash of (command line, point index): every worker running
    // the same command agrees, anything else is fingerprint-rejected.
    wo.keys.resize(wo.count);
    for (std::size_t p = 0; p < wo.count; ++p) {
        wo.keys[p] = harness::fnv1a64(base + "|point:" +
                                      std::to_string(p));
    }

    svc::CampaignWorker worker(wo);
    std::string err;
    const bool ok = worker.run(
        [&](std::size_t point) {
            return runCommand(base + " --only-point " +
                              std::to_string(point));
        },
        &err);
    if (wo.netFaults.enabled()) {
        const std::string line =
            worker.faultCounters().summaryJson(worker.name());
        std::fprintf(stderr, "%s", line.c_str());
    }
    if (!ok) {
        std::fprintf(stderr, "tb_worker: %s\n", err.c_str());
        return 1;
    }
    return 0;
}
