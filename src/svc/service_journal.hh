/**
 * @file
 * Append-only service journal: crash recovery for the campaign daemon
 * (docs/ROBUSTNESS.md, "Daemon crash recovery").
 *
 * The completion journal (harness::CampaignJournal) makes *results*
 * durable; this journal makes the daemon's *scheduling state* durable.
 * The daemon appends one JSONL record per scheduling event — lease
 * grant, lease loss (with its retry reason), completion — plus one
 * campaign-identity record (key-table fingerprint + point count). A
 * SIGKILLed daemon restarted with `--serve --resume` replays the file
 * and reconstructs the work queue: outstanding leases return to the
 * queue with their attempt counts intact, lost attempts keep their
 * backoff position, and points whose results the completion journal
 * holds are never re-leased.
 *
 * Every line carries an FNV-1a checksum of its own body, so a torn
 * final line (the daemon died mid-fprintf) fails validation and is
 * skipped — exactly the CampaignJournal discipline. Replay is
 * idempotent: attempts are the *maximum* attempt number seen, not a
 * line count, and a point is outstanding iff its *last* event is a
 * lease, so duplicated lines (crash between write and flush, journal
 * concatenation) change nothing. A campaign record that conflicts
 * with an existing one is fatal: the journal was shared by two
 * different campaigns and cannot be trusted.
 */

#ifndef TB_SVC_SERVICE_JOURNAL_HH_
#define TB_SVC_SERVICE_JOURNAL_HH_

#include <cstdint>
#include <cstdio>
#include <map>
#include <string>

namespace tb {
namespace svc {

/** Append-only JSONL record of daemon scheduling events. */
class ServiceJournal
{
  public:
    ServiceJournal() = default;
    ~ServiceJournal();

    ServiceJournal(const ServiceJournal&) = delete;
    ServiceJournal& operator=(const ServiceJournal&) = delete;

    /** Pre-crash scheduling state of one point, reconstructed on
     *  resume. */
    struct PointRecovery
    {
        /** Highest attempt number recorded (lease or loss). */
        unsigned attempts = 0;
        /** True when the last recorded event is a lease grant: the
         *  daemon died while a worker held (or believed it held)
         *  this point. */
        bool outstanding = false;
        /** Reason of the most recent recorded loss ("" if none). */
        std::string lastReason;
    };

    /**
     * Open the journal at @p path. With @p resume, existing records
     * are replayed (torn or checksum-failing lines are skipped) and
     * subsequent records append; without it any previous journal is
     * truncated. Throws FatalError when the file cannot be opened or
     * when it holds conflicting campaign-identity records.
     */
    void open(const std::string& path, bool resume);

    /** Whether open() succeeded (service journalling is optional). */
    bool active() const { return out_ != nullptr; }

    /** Journal file path ("" when inactive). */
    const std::string& path() const { return path_; }

    /**
     * Record the campaign identity once per run (duplicate identical
     * records across resumes are tolerated on replay). Fatal when a
     * resumed journal already names a different campaign.
     */
    void recordCampaign(std::uint64_t fingerprint, std::uint64_t count);

    /** Record a lease grant; flushed line-by-line like every event. */
    void recordLease(std::size_t point, unsigned attempt,
                     const std::string& worker);

    /** Record a lease loss and the retry reason that classified it. */
    void recordLoss(std::size_t point, unsigned attempt,
                    const std::string& reason);

    /** Record an accepted completion (clears the outstanding lease). */
    void recordDone(std::size_t point);

    /** Whether a resumed journal carried a campaign-identity record. */
    bool hasCampaign() const { return hasCampaign_; }
    /** Key-table fingerprint of the resumed campaign (0 if none). */
    std::uint64_t fingerprint() const { return fingerprint_; }
    /** Point count of the resumed campaign (0 if none). */
    std::uint64_t count() const { return count_; }

    /** Valid event lines replayed from a resumed journal. */
    std::size_t loaded() const { return loaded_; }

    /** Per-point recovery state of a resumed journal, excluding
     *  points whose last event is a completion. */
    const std::map<std::size_t, PointRecovery>& recovered() const
    {
        return recovered_;
    }

  private:
    void append(const std::string& body);

    std::string path_;
    std::FILE* out_ = nullptr;
    bool hasCampaign_ = false;
    std::uint64_t fingerprint_ = 0;
    std::uint64_t count_ = 0;
    std::size_t loaded_ = 0;
    std::map<std::size_t, PointRecovery> recovered_;
};

} // namespace svc
} // namespace tb

#endif // TB_SVC_SERVICE_JOURNAL_HH_
