/**
 * @file
 * Content-addressed result cache for campaign sweep points.
 *
 * A campaign point is fully determined by its config hash — the same
 * FNV-1a key the CampaignJournal records (sweep shape, flags,
 * workload knobs, seed). The cache maps that key to the point's
 * serialized artifact on disk, so a repeated point — across
 * campaigns, across daemon restarts, across machines sharing a
 * filesystem — is a cache hit instead of a re-simulation. Million-
 * point sweeps stay tractable exactly to the extent repeated points
 * become hits.
 *
 * Layout: one file per key, `<dir>/<%016x key>.tbr`, containing a
 * `TBCACHE1 <%016x fnv1a-checksum>` header line followed by the
 * artifact bytes, written via atomic tmp+rename. Every lookup
 * re-verifies the checksum: a corrupted entry (torn write, bit rot,
 * truncation) is *evicted* — unlinked and counted — and reported as
 * a miss, so corruption costs one re-simulation, never a wrong
 * artifact. Unlike the journal (scoped to one campaign file, indexed
 * by point number), the cache is keyed purely by content hash and
 * shared by everything.
 */

#ifndef TB_SVC_RESULT_CACHE_HH_
#define TB_SVC_RESULT_CACHE_HH_

#include <cstddef>
#include <cstdint>
#include <string>

namespace tb {
namespace svc {

/** Exact on-disk header length: "TBCACHE1 " + 16 hex + '\n'. */
constexpr std::size_t kCacheHeaderLen = 26;

/** Hit/miss/eviction accounting of one cache instance. */
struct CacheStats
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t stores = 0;
    std::uint64_t evictions = 0; ///< corrupted entries removed
};

/** On-disk content-addressed store of point artifacts. */
class ResultCache
{
  public:
    /**
     * Attach to @p dir, creating it (one level) if missing. Returns
     * false — cache disabled, campaign proceeds uncached — when the
     * directory cannot be created or is not writable.
     */
    bool open(const std::string& dir);

    bool active() const { return !dir_.empty(); }
    const std::string& dir() const { return dir_; }

    /**
     * Look up @p key. True (and @p result filled) only when an entry
     * exists *and* its checksum verifies; a corrupted entry is
     * evicted and counted, then reported as a miss.
     */
    bool lookup(std::uint64_t key, std::string* result);

    /** Store @p result under @p key (atomic tmp+rename; overwrites). */
    void store(std::uint64_t key, const std::string& result);

    const CacheStats& stats() const { return stats_; }

    /** Entry path of @p key (tests and diagnostics). */
    std::string entryPath(std::uint64_t key) const;

  private:
    std::string dir_;
    CacheStats stats_;
};

} // namespace svc
} // namespace tb

#endif // TB_SVC_RESULT_CACHE_HH_
