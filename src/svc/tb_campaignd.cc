/**
 * @file
 * Generic campaign daemon: serve any point space over TBF1 without
 * linking the campaign in. The key table (per-point config hashes) is
 * uploaded by the first worker's Keys frame; later workers must match
 * its fingerprint. Accepted artifacts are concatenated in point order
 * to stdout (or --out); the service summary goes to stdout, the
 * failure manifest and crash ledger to stderr (or --manifest).
 *
 *   tb_campaignd --listen ADDR --count N [--journal FILE [--resume]]
 *                [--cache DIR] [--lease-ms N] [--heartbeat-ms N]
 *                [--retries N] [--backoff-ms N] [--name S]
 *                [--out FILE] [--manifest FILE]
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <sstream>
#include <string>

#include "harness/campaign_journal.hh"
#include "harness/campaign_supervisor.hh"
#include "sim/logging.hh"
#include "svc/campaignd.hh"
#include "svc/net.hh"
#include "svc/result_cache.hh"

namespace {

[[noreturn]] void
usage(const char* complaint)
{
    std::fprintf(
        stderr,
        "tb_campaignd: %s\n"
        "usage: tb_campaignd --listen ADDR --count N\n"
        "       [--journal FILE [--resume]] [--cache DIR]\n"
        "       [--lease-ms N] [--heartbeat-ms N] [--retries N]\n"
        "       [--backoff-ms N] [--name S] [--out FILE] "
        "[--manifest FILE]\n",
        complaint);
    std::exit(2);
}

std::uint64_t
parseU64(const char* opt, const char* text)
{
    char* end = nullptr;
    const unsigned long long v = std::strtoull(text, &end, 10);
    if (end == text || *end != '\0' ||
        std::strchr(text, '-') != nullptr) {
        std::string msg = std::string("option ") + opt + ": '" +
                          text + "' is not a non-negative integer";
        usage(msg.c_str());
    }
    return v;
}

} // namespace

int
main(int argc, char** argv)
{
    using namespace tb;

    svc::ServiceOptions so;
    so.campaign = "campaignd";
    std::size_t count = 0;
    std::string journalPath, cacheDir, outPath, manifestPath;
    bool resume = false;

    for (int i = 1; i < argc; ++i) {
        const std::string opt = argv[i];
        const auto value = [&]() -> const char* {
            if (i + 1 >= argc) {
                usage((std::string("option ") + opt +
                       " needs a value")
                          .c_str());
            }
            return argv[++i];
        };
        if (opt == "--listen")
            so.listen = value();
        else if (opt == "--count")
            count = static_cast<std::size_t>(
                parseU64("--count", value()));
        else if (opt == "--journal")
            journalPath = value();
        else if (opt == "--resume")
            resume = true;
        else if (opt == "--cache")
            cacheDir = value();
        else if (opt == "--lease-ms")
            so.queue.leaseMs = parseU64("--lease-ms", value());
        else if (opt == "--heartbeat-ms")
            so.heartbeatMs = parseU64("--heartbeat-ms", value());
        else if (opt == "--retries")
            so.queue.maxAttempts = 1 + static_cast<unsigned>(
                parseU64("--retries", value()));
        else if (opt == "--backoff-ms")
            so.queue.backoffBaseMs = parseU64("--backoff-ms", value());
        else if (opt == "--name")
            so.campaign = value();
        else if (opt == "--out")
            outPath = value();
        else if (opt == "--manifest")
            manifestPath = value();
        else
            usage((std::string("unknown option '") + opt + "'")
                      .c_str());
    }
    if (so.listen.empty() || !svc::validServiceAddress(so.listen))
        usage("--listen needs unix:PATH or tcp:HOST:PORT");
    if (count == 0)
        usage("--count must be >= 1");
    if (resume && journalPath.empty())
        usage("--resume requires --journal FILE");
    if (so.heartbeatMs == 0)
        usage("--heartbeat-ms must be >= 1");

    try {
        harness::CampaignJournal journal;
        if (!journalPath.empty())
            journal.open(journalPath, resume);
        svc::ResultCache cache;
        if (!cacheDir.empty())
            cache.open(cacheDir);

        harness::CampaignSupervisor::installSigintHandler();
        svc::CampaignService service(so);
        svc::ServiceJournal svcJournal;
        if (journal.active()) {
            service.attachJournal(&journal);
            // Scheduling durability rides alongside the completion
            // journal (<journal>.svc): with --resume a SIGKILLed
            // daemon restarts with leases, attempt counts and backoff
            // state intact (docs/ROBUSTNESS.md, "Daemon crash
            // recovery").
            svcJournal.open(journalPath + ".svc", resume);
            service.attachServiceJournal(&svcJournal);
        }
        if (cache.active())
            service.attachCache(&cache);

        const harness::SupervisorReport report = service.run(count);

        std::string artifact;
        for (const std::string& r : service.results())
            artifact += r;
        std::cout << artifact;
        std::cout << report.summaryJson(so.campaign)
                  << service.stats().summaryJson(so.campaign)
                  << std::flush;

        std::ostringstream manifest;
        report.writeManifest(manifest, so.campaign);
        service.ledger().writeJsonl(manifest, so.campaign);
        if (!manifest.str().empty())
            std::cerr << manifest.str() << std::flush;
        if (!manifestPath.empty()) {
            if (!report.ok() || !service.ledger().empty())
                harness::writeFileAtomic(manifestPath,
                                         manifest.str());
            else
                std::remove(manifestPath.c_str());
        }
        if (!outPath.empty() && !report.interrupted)
            harness::writeFileAtomic(outPath, artifact);

        if (report.interrupted)
            return 130;
        return report.failures() == 0 ? 0 : 1;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "tb_campaignd: %s\n", e.what());
        return 1;
    }
}
