/**
 * @file
 * Per-worker crash ledger of a distributed campaign.
 *
 * Every worker failure the daemon observes — a socket that died
 * (SIGKILL, OOM, network drop all look the same: EOF/EPIPE), a
 * heartbeat that stopped, a lease that expired, a frame that did not
 * parse, a point error the worker itself reported — is recorded with
 * the worker's identity, the affected point and a reason. The ledger
 * is appended to the PR 4 failure manifest as `"kind":
 * "crash-ledger"` JSONL lines, so one file answers "what failed and
 * who lost it" for supervised and distributed campaigns alike. The
 * idiom follows the boot/reset-reason ledgers of embedded platforms:
 * a reset is only diagnosable if its reason was persisted *before*
 * recovery starts.
 */

#ifndef TB_SVC_CRASH_LEDGER_HH_
#define TB_SVC_CRASH_LEDGER_HH_

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace tb {
namespace svc {

/** One observed worker failure. */
struct CrashEvent
{
    std::uint64_t workerId = 0;
    std::string workerName; ///< "pid@host" as announced in Hello
    std::string reason;     ///< leaseLossName() vocabulary
    long point = -1;        ///< affected point; -1 = none/connection
    std::string detail;     ///< free-form diagnostic
};

/** Append-only in-memory ledger, rendered into the manifest. */
class CrashLedger
{
  public:
    void add(std::uint64_t workerId, const std::string& workerName,
             const std::string& reason, long point,
             const std::string& detail);

    bool empty() const { return events_.empty(); }
    std::size_t size() const { return events_.size(); }
    const std::vector<CrashEvent>& events() const { return events_; }

    /** Events with the given reason (tests, summaries). */
    std::size_t count(const std::string& reason) const;

    /**
     * One `"kind": "crash-ledger"` JSON line per event, in
     * observation order — the manifest shape next to the PR 4
     * per-point failure lines.
     */
    void writeJsonl(std::ostream& os,
                    const std::string& campaign) const;

  private:
    std::vector<CrashEvent> events_;
};

} // namespace svc
} // namespace tb

#endif // TB_SVC_CRASH_LEDGER_HH_
