#include "svc/net.hh"

#include <cerrno>
#include <cstring>

#include <fcntl.h>
#include <netdb.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "sim/logging.hh"

namespace tb {
namespace svc {

namespace {

constexpr const char* kUnixPrefix = "unix:";
constexpr const char* kTcpPrefix = "tcp:";

bool
hasPrefix(const std::string& s, const char* prefix)
{
    return s.rfind(prefix, 0) == 0;
}

void
setCloexec(int fd)
{
    const int flags = ::fcntl(fd, F_GETFD);
    if (flags >= 0)
        ::fcntl(fd, F_SETFD, flags | FD_CLOEXEC);
}

/** Fill a sockaddr_un; false when the path does not fit. */
bool
unixSockaddr(const std::string& path, sockaddr_un* sa,
             std::string* err)
{
    std::memset(sa, 0, sizeof(*sa));
    sa->sun_family = AF_UNIX;
    if (path.size() >= sizeof(sa->sun_path)) {
        *err = "unix socket path too long: " + path;
        return false;
    }
    std::memcpy(sa->sun_path, path.c_str(), path.size() + 1);
    return true;
}

/** Split "tcp:host:port" at the last colon. */
bool
splitTcp(const std::string& addr, std::string* host,
         std::string* port, std::string* err)
{
    const std::string rest = addr.substr(std::strlen(kTcpPrefix));
    const std::size_t colon = rest.rfind(':');
    if (colon == std::string::npos || colon == 0 ||
        colon + 1 >= rest.size()) {
        *err = "tcp address must be tcp:host:port, got '" + addr +
               "'";
        return false;
    }
    *host = rest.substr(0, colon);
    *port = rest.substr(colon + 1);
    return true;
}

int
tcpSocket(const std::string& addr, bool listen_side,
          std::string* err)
{
    std::string host, port;
    if (!splitTcp(addr, &host, &port, err))
        return -1;
    struct addrinfo hints;
    std::memset(&hints, 0, sizeof(hints));
    hints.ai_family = AF_UNSPEC;
    hints.ai_socktype = SOCK_STREAM;
    if (listen_side)
        hints.ai_flags = AI_PASSIVE;
    struct addrinfo* res = nullptr;
    const int rc =
        ::getaddrinfo(host.c_str(), port.c_str(), &hints, &res);
    if (rc != 0) {
        *err = std::string("getaddrinfo: ") + ::gai_strerror(rc);
        return -1;
    }
    int fd = -1;
    for (struct addrinfo* ai = res; ai; ai = ai->ai_next) {
        fd = ::socket(ai->ai_family, ai->ai_socktype,
                      ai->ai_protocol);
        if (fd < 0)
            continue;
        if (listen_side) {
            const int one = 1;
            ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one,
                         sizeof(one));
            if (::bind(fd, ai->ai_addr, ai->ai_addrlen) == 0 &&
                ::listen(fd, 64) == 0)
                break;
        } else if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) {
            break;
        }
        ::close(fd);
        fd = -1;
    }
    ::freeaddrinfo(res);
    if (fd < 0)
        *err = (listen_side ? "cannot listen on " : "cannot connect to ") +
               addr + ": " + errnoMessage(errno);
    return fd;
}

} // namespace

bool
validServiceAddress(const std::string& addr)
{
    if (hasPrefix(addr, kUnixPrefix))
        return addr.size() > std::strlen(kUnixPrefix);
    if (hasPrefix(addr, kTcpPrefix)) {
        std::string host, port, err;
        return splitTcp(addr, &host, &port, &err);
    }
    return false;
}

int
listenOn(const std::string& addr, std::string* err)
{
    int fd = -1;
    if (hasPrefix(addr, kUnixPrefix)) {
        const std::string path =
            addr.substr(std::strlen(kUnixPrefix));
        sockaddr_un sa;
        if (!unixSockaddr(path, &sa, err))
            return -1;
        ::unlink(path.c_str()); // stale socket of a dead daemon
        fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (fd < 0 ||
            ::bind(fd, reinterpret_cast<sockaddr*>(&sa),
                   sizeof(sa)) != 0 ||
            ::listen(fd, 64) != 0) {
            *err = "cannot listen on " + addr + ": " +
                   errnoMessage(errno);
            if (fd >= 0)
                ::close(fd);
            return -1;
        }
    } else if (hasPrefix(addr, kTcpPrefix)) {
        fd = tcpSocket(addr, /*listen_side=*/true, err);
        if (fd < 0)
            return -1;
    } else {
        *err = "service address must start with unix: or tcp:, got '" +
               addr + "'";
        return -1;
    }
    setCloexec(fd);
    return fd;
}

int
connectTo(const std::string& addr, std::string* err)
{
    int fd = -1;
    if (hasPrefix(addr, kUnixPrefix)) {
        const std::string path =
            addr.substr(std::strlen(kUnixPrefix));
        sockaddr_un sa;
        if (!unixSockaddr(path, &sa, err))
            return -1;
        fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (fd < 0 ||
            ::connect(fd, reinterpret_cast<sockaddr*>(&sa),
                      sizeof(sa)) != 0) {
            *err = "cannot connect to " + addr + ": " +
                   errnoMessage(errno);
            if (fd >= 0)
                ::close(fd);
            return -1;
        }
    } else if (hasPrefix(addr, kTcpPrefix)) {
        fd = tcpSocket(addr, /*listen_side=*/false, err);
        if (fd < 0)
            return -1;
    } else {
        *err = "service address must start with unix: or tcp:, got '" +
               addr + "'";
        return -1;
    }
    setCloexec(fd);
    return fd;
}

void
cleanupAddress(const std::string& addr)
{
    if (hasPrefix(addr, kUnixPrefix))
        ::unlink(addr.substr(std::strlen(kUnixPrefix)).c_str());
}

} // namespace svc
} // namespace tb
