/**
 * @file
 * Deterministic network fault injection for the campaign service
 * transport (docs/ROBUSTNESS.md, "Network fault injection").
 *
 * A NetFaultSpec names the per-operation fault rates a FaultyTransport
 * realizes against one worker's socket. Specs use the same
 * `key=value[:arg]` grammar as `--faults` (shared primitives in
 * fault::spec) so a failing run reproduces verbatim from a log line:
 *
 *     seed=7,short-write=0.3,split-read=0.3,corrupt=0.02,
 *     disconnect=0.05,delay=0.1:5
 *
 * Injection is worker-side and wraps sendFrame/recvFrame, exercising
 * exactly the failure surface a hostile network presents to the
 * protocol: torn frame boundaries (short writes / split reads), stale
 * peers (injected delays), dead peers mid-frame (disconnects), and
 * line noise (byte corruption). The fault stream is a private
 * tb::Random sequence seeded from (spec seed, worker name), so a run
 * is reproducible per worker regardless of scheduling.
 */

#ifndef TB_SVC_NET_FAULTS_HH_
#define TB_SVC_NET_FAULTS_HH_

#include <cstdint>
#include <string>

#include "sim/random.hh"
#include "svc/frame.hh"

namespace tb {
namespace svc {

/** Rates (probability per frame) of each injected network fault. */
struct NetFaultSpec
{
    /** Seed of the injector's private random stream. */
    std::uint64_t seed = 1;

    /** Probability an outbound frame is written in two raw writes. */
    double shortWrite = 0.0;
    /** Probability an inbound frame is read in header fragments. */
    double splitRead = 0.0;
    /** Probability an operation is delayed by delayMs first. */
    double delay = 0.0;
    /** Size of one injected delay, in milliseconds. */
    std::uint64_t delayMs = 5;
    /** Probability a send turns into a mid-frame disconnect. */
    double disconnect = 0.0;
    /** Probability one byte of an outbound frame is flipped. */
    double corrupt = 0.0;

    /** True if any fault rate is non-zero. */
    bool enabled() const;

    /** Canonical spec string (parses back to an identical spec). */
    std::string summary() const;

    /**
     * Parse a spec string. Grammar: comma-separated `key=value` pairs
     * with keys seed, short-write, split-read, delay (optional `:ms`
     * suffix), disconnect, corrupt, and `all=<rate>` setting every
     * rate at once. Calls fatal() on unknown keys, malformed numbers,
     * or rates outside [0, 1].
     */
    static NetFaultSpec parse(const std::string& text);
};

/** Running totals of the faults one transport actually injected. */
struct NetFaultCounters
{
    std::uint64_t shortWrites = 0;
    std::uint64_t splitReads = 0;
    std::uint64_t delays = 0;
    std::uint64_t disconnects = 0;
    std::uint64_t corruptions = 0;

    std::uint64_t total() const
    {
        return shortWrites + splitReads + delays + disconnects +
               corruptions;
    }

    /** One `"kind": "net-faults"` JSON summary line (chaos smoke
     *  greps these to prove every fault class actually fired). */
    std::string summaryJson(const std::string& worker) const;
};

/**
 * Drop-in wrapper over sendFrame/recvFrame that injects the faults a
 * NetFaultSpec names. With no spec configured (or an all-zero one) it
 * forwards verbatim — the worker always talks through one of these.
 *
 * Faults are injected on the worker side of the connection only; a
 * fault that corrupts or tears a frame exercises the daemon's
 * poison-and-ledger path, and a disconnect exercises the worker's own
 * reconnect path (the injected errno is ECONNRESET so callers route
 * it exactly like a daemon crash).
 */
class FaultyTransport
{
  public:
    /** Arm @p spec; @p streamName (worker identity) salts the seed so
     *  same-spec workers draw distinct deterministic streams. */
    void configure(const NetFaultSpec& spec,
                   const std::string& streamName);

    bool enabled() const { return spec_.enabled(); }
    const NetFaultSpec& spec() const { return spec_; }
    const NetFaultCounters& counters() const { return counters_; }

    /** sendFrame with injected delay/corruption/tearing/disconnect. */
    bool sendFrame(int fd, FrameType type, const std::string& payload);

    /** recvFrame with injected delay and fragmented header reads. */
    int recvFrame(int fd, Frame* out, std::string* err);

  private:
    NetFaultSpec spec_;
    NetFaultCounters counters_;
    tb::Random rng_{1};
};

} // namespace svc
} // namespace tb

#endif // TB_SVC_NET_FAULTS_HH_
