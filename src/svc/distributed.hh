/**
 * @file
 * Bridge from the campaign binaries to the distributed service: one
 * entry point that executes a campaign's point space under whichever
 * mode the command line selected — the local CampaignSupervisor
 * (default), the work-queue daemon (--serve), or a worker process
 * (--worker) — with the content-addressed result cache (--cache)
 * fronting both local and served execution.
 *
 * The contract that makes `--distributed` a thin client: for the same
 * point space and flags, runCampaignPoints returns the same results
 * vector whatever the mode, so the caller renders a byte-identical
 * artifact from a serial run, a 3-worker run, and a run where a
 * worker was SIGKILLed halfway through.
 */

#ifndef TB_SVC_DISTRIBUTED_HH_
#define TB_SVC_DISTRIBUTED_HH_

#include <cstdint>
#include <string>
#include <vector>

#include "harness/campaign_cli.hh"
#include "harness/campaign_journal.hh"
#include "harness/campaign_supervisor.hh"
#include "svc/result_cache.hh"

namespace tb {
namespace svc {

/**
 * Attempt floor for served campaigns. The local supervisor defaults
 * to one attempt per point because a local crash is usually the
 * simulation's own fault; a daemon's whole reason to exist is
 * surviving *worker* loss (SIGKILL, OOM, network drop), which at one
 * attempt would sink the campaign on the first dead socket. A served
 * queue therefore never runs with fewer attempts than this;
 * --retries beyond the floor still wins.
 */
constexpr unsigned kServedMinAttempts = 3;

/** Outcome of a campaign execution in any mode. */
struct CampaignRun
{
    harness::SupervisorReport report;
    std::vector<std::string> results; ///< artifacts by point index
    std::string serviceSummary; ///< `"kind": "service"` line ("" local)
    std::string ledgerJsonl;    ///< crash-ledger manifest lines
    CacheStats cache;           ///< zeros when --cache is off
};

/**
 * Execute @p count points of @p task under the mode selected by
 * @p opts (local supervisor, or daemon when opts.serveAddr is set).
 * Must not be called in worker mode — dispatch to runCampaignWorker
 * first.
 */
CampaignRun runCampaignPoints(const harness::CampaignOptions& opts,
                              std::size_t count,
                              const harness::PointTask& task,
                              harness::CampaignJournal* journal,
                              const std::string& campaignName);

/**
 * Worker mode: serve @p task points to the daemon at opts.workerAddr
 * until it reports the campaign done. Returns the process exit code
 * (0 clean, 1 on handshake/connection failure).
 */
int runCampaignWorker(const harness::CampaignOptions& opts,
                      std::size_t count,
                      const harness::PointTask& task);

} // namespace svc
} // namespace tb

#endif // TB_SVC_DISTRIBUTED_HH_
