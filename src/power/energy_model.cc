#include "power/energy_model.hh"

#include "sim/logging.hh"

namespace tb {
namespace power {

const char*
bucketName(Bucket b)
{
    switch (b) {
      case Bucket::Compute:    return "Compute";
      case Bucket::Spin:       return "Spin";
      case Bucket::Transition: return "Transition";
      case Bucket::Sleep:      return "Sleep";
    }
    return "?";
}

void
EnergyAccount::accrue(Bucket b, Tick duration, double watts)
{
    if (watts < 0.0)
        panic("negative power");
    const auto i = static_cast<std::size_t>(b);
    joules[i] += watts * ticksToSeconds(duration);
    ticks[i] += duration;
}

double
EnergyAccount::energy(Bucket b) const
{
    return joules[static_cast<std::size_t>(b)];
}

Tick
EnergyAccount::time(Bucket b) const
{
    return ticks[static_cast<std::size_t>(b)];
}

double
EnergyAccount::totalEnergy() const
{
    double t = 0.0;
    for (double j : joules)
        t += j;
    return t;
}

Tick
EnergyAccount::totalTime() const
{
    Tick t = 0;
    for (Tick x : ticks)
        t += x;
    return t;
}

void
EnergyAccount::add(const EnergyAccount& other)
{
    for (std::size_t i = 0; i < kNumBuckets; ++i) {
        joules[i] += other.joules[i];
        ticks[i] += other.ticks[i];
    }
}

void
EnergyAccount::clear()
{
    joules.fill(0.0);
    ticks.fill(0);
}

} // namespace power
} // namespace tb
