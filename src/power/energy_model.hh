/**
 * @file
 * CPU power/energy model.
 *
 * The paper derives sleep-state powers as fractions of the processor's
 * maximum thermal design power (TDPmax), obtained by microbenchmarking
 * a Wattch model; we adopt the same normalization directly (DESIGN.md
 * lists this substitution). Active computation runs at a configurable
 * fraction of TDPmax; the barrier spinloop at ~85% of active power
 * (the paper's measured average); transitions ramp linearly between
 * the endpoint powers.
 *
 * Every joule (and every tick) of a CPU's life lands in exactly one of
 * the paper's four accounting buckets: Compute, Spin, Transition,
 * Sleep (Section 5.2). Unit tests enforce the accounting identity.
 */

#ifndef TB_POWER_ENERGY_MODEL_HH_
#define TB_POWER_ENERGY_MODEL_HH_

#include <array>
#include <cstddef>

#include "sim/types.hh"

namespace tb {
namespace power {

/** The four energy/time buckets of Figures 5 and 6. */
enum class Bucket : std::uint8_t
{
    Compute = 0, ///< not at a barrier (includes memory/lock stalls)
    Spin,        ///< spinning on the barrier flag
    Transition,  ///< moving in/out of a low-power state
    Sleep,       ///< resident in a low-power state
};

inline constexpr std::size_t kNumBuckets = 4;

/** Human-readable bucket name. */
const char* bucketName(Bucket b);

/** Power parameters of one CPU. */
struct PowerParams
{
    /** Maximum thermal design power, watts. */
    double tdpMax = 30.0;
    /** Active computation power as a fraction of TDPmax. */
    double activeFraction = 0.80;
    /** Spinloop power as a fraction of *active* power (paper: 85%). */
    double spinFraction = 0.85;

    double activeWatts() const { return tdpMax * activeFraction; }
    double spinWatts() const { return activeWatts() * spinFraction; }
    double sleepWatts(double power_fraction) const
    {
        return tdpMax * power_fraction;
    }
};

/** Per-CPU energy and time ledger. */
class EnergyAccount
{
  public:
    /** Accrue @p duration at @p watts into @p bucket. */
    void accrue(Bucket b, Tick duration, double watts);

    /** Energy in joules spent in @p bucket. */
    double energy(Bucket b) const;

    /** Time in ticks spent in @p bucket. */
    Tick time(Bucket b) const;

    /** Total energy across buckets, joules. */
    double totalEnergy() const;

    /** Total time across buckets, ticks. */
    Tick totalTime() const;

    /** Merge another account into this one (for machine-wide sums). */
    void add(const EnergyAccount& other);

    /** Reset to zero. */
    void clear();

  private:
    std::array<double, kNumBuckets> joules{};
    std::array<Tick, kNumBuckets> ticks{};
};

} // namespace power
} // namespace tb

#endif // TB_POWER_ENERGY_MODEL_HH_
