/**
 * @file
 * Low-power processor sleep states (Table 3 of the paper).
 *
 * The paper models three states inspired by the Intel Pentium family:
 *
 *   State          P. savings   Tr. latency   Snoop?   V. reduction?
 *   Sleep1 (Halt)     70.2%        10 us        yes         no
 *   Sleep2            79.2%        15 us        no          no
 *   Sleep3            97.8%        35 us        no          yes
 *
 * Power savings are relative to TDPmax; while asleep the CPU consumes
 * (1 - savings) * TDPmax. Transition latency applies each way (in and
 * out), with power ramping linearly along the transition (Section 4.3).
 * Non-snooping states require the dirty shared lines to be flushed
 * before entry and cannot answer protocol requests from the cache.
 */

#ifndef TB_POWER_SLEEP_STATES_HH_
#define TB_POWER_SLEEP_STATES_HH_

#include <cstddef>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace tb {
namespace power {

/** Descriptor of one low-power sleep state. */
struct SleepState
{
    std::string name;
    /** Fraction of TDPmax consumed while in this state. */
    double powerFraction = 1.0;
    /** Transition latency, applied on entry and again on exit. */
    Tick transitionLatency = 0;
    /** Can the cache answer coherence requests in this state? */
    bool snoopable = true;
    /** Is the supply voltage lowered (reduced leakage)? */
    bool voltageReduced = false;
};

/**
 * The table the sleep() library call scans (Section 3.1): states
 * ordered from lightest to deepest. "The library procedure scans the
 * table for a best fit, and brings the CPU to that low-power sleep
 * state, or returns immediately if not enough sleep time lies ahead."
 */
class SleepStateTable
{
  public:
    SleepStateTable() = default;

    /** Build from an explicit list (must be ordered light->deep). */
    explicit SleepStateTable(std::vector<SleepState> states);

    /** The paper's three states (Table 3). */
    static SleepStateTable paperDefault();

    /** Only Sleep1/Halt — the Thrifty-Halt configuration. */
    static SleepStateTable haltOnly();

    /** Halt + Sleep2 (no voltage-reduced state) — ablation. */
    static SleepStateTable haltPlusSleep2();

    /**
     * Deepest state whose round-trip transition (in + out) fits within
     * @p predicted_stall. Returns nullptr if none fits — the caller
     * spins conventionally.
     */
    const SleepState* select(Tick predicted_stall) const;

    std::size_t size() const { return table.size(); }
    const SleepState& at(std::size_t i) const { return table.at(i); }
    bool empty() const { return table.empty(); }

  private:
    std::vector<SleepState> table;
};

} // namespace power
} // namespace tb

#endif // TB_POWER_SLEEP_STATES_HH_
