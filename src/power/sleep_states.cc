#include "power/sleep_states.hh"

#include "sim/logging.hh"

namespace tb {
namespace power {

namespace {

SleepState
makeState(const char* name, double savings, Tick latency, bool snoop,
          bool vred)
{
    SleepState s;
    s.name = name;
    s.powerFraction = 1.0 - savings;
    s.transitionLatency = latency;
    s.snoopable = snoop;
    s.voltageReduced = vred;
    return s;
}

} // namespace

SleepStateTable::SleepStateTable(std::vector<SleepState> states)
    : table(std::move(states))
{
    for (std::size_t i = 1; i < table.size(); ++i) {
        if (table[i].transitionLatency < table[i - 1].transitionLatency)
            fatal("sleep-state table must be ordered light to deep "
                  "(by transition latency)");
        if (table[i].powerFraction > table[i - 1].powerFraction)
            fatal("deeper sleep states must not consume more power");
    }
}

SleepStateTable
SleepStateTable::paperDefault()
{
    return SleepStateTable({
        makeState("Sleep1(Halt)", 0.702, 10 * kMicrosecond, true, false),
        makeState("Sleep2", 0.792, 15 * kMicrosecond, false, false),
        makeState("Sleep3", 0.978, 35 * kMicrosecond, false, true),
    });
}

SleepStateTable
SleepStateTable::haltOnly()
{
    return SleepStateTable({
        makeState("Sleep1(Halt)", 0.702, 10 * kMicrosecond, true, false),
    });
}

SleepStateTable
SleepStateTable::haltPlusSleep2()
{
    return SleepStateTable({
        makeState("Sleep1(Halt)", 0.702, 10 * kMicrosecond, true, false),
        makeState("Sleep2", 0.792, 15 * kMicrosecond, false, false),
    });
}

const SleepState*
SleepStateTable::select(Tick predicted_stall) const
{
    const SleepState* best = nullptr;
    for (const auto& s : table) {
        if (2 * s.transitionLatency <= predicted_stall)
            best = &s;
    }
    return best;
}

} // namespace power
} // namespace tb
