/**
 * @file
 * Base class for all named model components.
 *
 * A SimObject owns a name (for logs/stats prefixes) and a reference to
 * the simulation's EventQueue. The queue is shared by the whole machine
 * model, so SimObjects must not outlive it.
 */

#ifndef TB_SIM_SIM_OBJECT_HH_
#define TB_SIM_SIM_OBJECT_HH_

#include <string>
#include <utility>

#include "sim/event_queue.hh"
#include "sim/types.hh"

namespace tb {

/** Common base for model components (caches, routers, CPUs, ...). */
class SimObject
{
  public:
    /**
     * @param queue Event queue driving this simulation.
     * @param name  Hierarchical, dot-separated instance name.
     */
    SimObject(EventQueue& queue, std::string name)
        : eq(queue), objName(std::move(name))
    {}

    virtual ~SimObject() = default;

    SimObject(const SimObject&) = delete;
    SimObject& operator=(const SimObject&) = delete;

    /** Instance name, e.g.\ "node12.l1". */
    const std::string& name() const { return objName; }

    /** Current simulated time. */
    Tick curTick() const { return eq.now(); }

    /** The simulation's event queue. */
    EventQueue& eventQueue() { return eq; }

  protected:
    EventQueue& eq;

  private:
    std::string objName;
};

} // namespace tb

#endif // TB_SIM_SIM_OBJECT_HH_
