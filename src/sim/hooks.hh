/**
 * @file
 * One attachment struct for the cross-cutting instrumentation seams.
 *
 * Before the per-hop NoC rework, every component (Network, Fabric,
 * CacheController, Directory, Dram) carried its own triplet of
 * setObserver / setFaultHooks / setTraceSink setters and three
 * nullable pointers, and every new seam meant copying that boilerplate
 * a fourth time. Instead, the machine owns exactly one Hooks struct
 * and wires a pointer to it into every component at construction;
 * attaching a checker / fault injector / trace sink mutates the struct
 * fields in place and every component sees the update through its
 * stable pointer. All fields are nullable; components null-check at
 * use (one predicted-not-taken branch on hot paths, same as before).
 *
 * Everything here is pointers to forward-declared types, so this
 * header stays layering-neutral: sim-level components see only the
 * fields they understand.
 */

#ifndef TB_SIM_HOOKS_HH_
#define TB_SIM_HOOKS_HH_

#include "sim/types.hh"

namespace tb {

class FaultHooks;

namespace obs { class TraceSink; }
namespace mem { class ProtocolObserver; }

/**
 * Audit seam for NoC delivery timing, implemented by the protocol
 * checker: no message may arrive earlier than its zero-load latency
 * (the per-hop path computes stalls incrementally, and this pins its
 * lower bound to the closed form).
 */
class NocDeliveryAudit
{
  public:
    virtual ~NocDeliveryAudit() = default;

    /**
     * A message of @p bytes from @p src finished delivery at @p dst.
     * @p zeroLoad is the network's own contention-free latency for
     * this (hops, bytes) — the invariant is
     * deliverTick - sendTick >= zeroLoad.
     */
    virtual void onNocDelivered(NodeId src, NodeId dst, unsigned bytes,
                                Tick sendTick, Tick deliverTick,
                                Tick zeroLoad) = 0;
};

/** The machine-wide instrumentation attachment points. */
struct Hooks
{
    /** Protocol invariant checker observer (src/check). */
    mem::ProtocolObserver* check = nullptr;
    /** Deterministic fault injection (src/fault). */
    FaultHooks* faults = nullptr;
    /** Structured trace sink (src/obs). */
    obs::TraceSink* trace = nullptr;
    /** NoC delivery-timing audit (zero-load lower bound). */
    NocDeliveryAudit* nocAudit = nullptr;
};

} // namespace tb

#endif // TB_SIM_HOOKS_HH_
