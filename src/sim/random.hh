/**
 * @file
 * Deterministic random-number generation for workload synthesis.
 *
 * Every stochastic decision in the simulator flows through a Random
 * stream seeded explicitly from the experiment configuration, so that
 * two runs with the same seed are bit-identical. The generator is
 * xoshiro256** (public domain, Blackman & Vigna), small and fast.
 */

#ifndef TB_SIM_RANDOM_HH_
#define TB_SIM_RANDOM_HH_

#include <cmath>
#include <cstdint>

namespace tb {

/** A self-contained xoshiro256** random stream. */
class Random
{
  public:
    /** Seed the stream; distinct seeds give decorrelated streams. */
    explicit Random(std::uint64_t seed = 0x9e3779b97f4a7c15ULL)
    {
        // Expand the single seed through SplitMix64, the recommended
        // seeding procedure for xoshiro generators.
        std::uint64_t x = seed;
        for (auto& word : state) {
            x += 0x9e3779b97f4a7c15ULL;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
            word = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state[1] * 5, 7) * 9;
        const std::uint64_t t = state[1] << 17;
        state[2] ^= state[0];
        state[3] ^= state[1];
        state[1] ^= state[2];
        state[0] ^= state[3];
        state[2] ^= t;
        state[3] = rotl(state[3], 45);
        return result;
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Uniform double in [lo, hi). */
    double
    uniform(double lo, double hi)
    {
        return lo + (hi - lo) * uniform();
    }

    /** Uniform integer in [0, n). @p n must be > 0. */
    std::uint64_t
    uniformInt(std::uint64_t n)
    {
        // Lemire's nearly-divisionless bounded generation.
        __uint128_t m =
            static_cast<__uint128_t>(next()) * static_cast<__uint128_t>(n);
        std::uint64_t l = static_cast<std::uint64_t>(m);
        if (l < n) {
            std::uint64_t t = (0 - n) % n;
            while (l < t) {
                m = static_cast<__uint128_t>(next()) *
                    static_cast<__uint128_t>(n);
                l = static_cast<std::uint64_t>(m);
            }
        }
        return static_cast<std::uint64_t>(m >> 64);
    }

    /** Standard normal via Box-Muller. */
    double
    normal()
    {
        double u1 = uniform();
        double u2 = uniform();
        while (u1 <= 0.0)
            u1 = uniform();
        return std::sqrt(-2.0 * std::log(u1)) *
               std::cos(2.0 * 3.14159265358979323846 * u2);
    }

    /** Normal with given mean and standard deviation. */
    double
    normal(double mean, double sigma)
    {
        return mean + sigma * normal();
    }

    /**
     * Lognormal with given *linear-domain* mean and coefficient of
     * variation (sigma/mean). Used for per-thread compute-time skew.
     */
    double
    lognormalMeanCv(double mean, double cv)
    {
        if (cv <= 0.0)
            return mean;
        const double s2 = std::log(1.0 + cv * cv);
        const double mu = std::log(mean) - 0.5 * s2;
        return std::exp(normal(mu, std::sqrt(s2)));
    }

    /** Bernoulli trial with probability @p p of true. */
    bool chance(double p) { return uniform() < p; }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state[4];
};

} // namespace tb

#endif // TB_SIM_RANDOM_HH_
