/**
 * @file
 * Status/error reporting in the spirit of gem5's base/logging.hh.
 *
 * - panic():  a condition that should never happen regardless of user
 *             input, i.e.\ a simulator bug. Throws PanicError (so tests
 *             can assert on it); uncaught it terminates the process.
 * - fatal():  the simulation cannot continue due to a user error (bad
 *             configuration, invalid arguments). Throws FatalError.
 * - warn():   something is questionable but the run continues.
 * - inform(): plain status output.
 */

#ifndef TB_SIM_LOGGING_HH_
#define TB_SIM_LOGGING_HH_

#include <sstream>
#include <stdexcept>
#include <string>

namespace tb {

/** Thrown by panic(): an internal simulator invariant was violated. */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string& what)
        : std::logic_error(what)
    {}
};

/** Thrown by fatal(): the user asked for something unsupported. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string& what)
        : std::runtime_error(what)
    {}
};

namespace detail {

/** Fold a pack of streamable arguments into one string. */
template <typename... Args>
std::string
concat(Args&&... args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

void emitWarn(const std::string& msg);
void emitInform(const std::string& msg);

} // namespace detail

/** Abort the simulation: internal bug. Never returns. */
template <typename... Args>
[[noreturn]] void
panic(Args&&... args)
{
    throw PanicError(detail::concat("panic: ",
                                    std::forward<Args>(args)...));
}

/** Abort the simulation: user error. Never returns. */
template <typename... Args>
[[noreturn]] void
fatal(Args&&... args)
{
    throw FatalError(detail::concat("fatal: ",
                                    std::forward<Args>(args)...));
}

/** Report a suspicious-but-survivable condition to stderr. */
template <typename... Args>
void
warn(Args&&... args)
{
    detail::emitWarn(detail::concat(std::forward<Args>(args)...));
}

/** Report normal operating status to stderr. */
template <typename... Args>
void
inform(Args&&... args)
{
    detail::emitInform(detail::concat(std::forward<Args>(args)...));
}

/**
 * Render @p err (an errno value) as "message (errno N)". Replacement
 * for std::strerror, which returns a pointer into static storage and
 * is not thread-safe — campaign workers report I/O errors
 * concurrently.
 */
std::string errnoMessage(int err);

/**
 * Deterministic name for signal @p sig ("SIGSEGV", ...). Replacement
 * for strsignal(), which is mt-unsafe and locale-dependent — signal
 * names reach crash payloads in journaled artifacts, so the spelling
 * must not vary with the environment.
 */
std::string signalName(int sig);

/** Number of warn() calls so far (tests use this to observe warnings). */
std::uint64_t warnCount();

/** Suppress or re-enable warn()/inform() console output (for tests). */
void setLogQuiet(bool quiet);

} // namespace tb

#endif // TB_SIM_LOGGING_HH_
