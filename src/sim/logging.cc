#include "sim/logging.hh"

#include <atomic>
#include <cstdint>
#include <iostream>

namespace tb {

namespace {

std::atomic<std::uint64_t> g_warn_count{0};
std::atomic<bool> g_quiet{false};

} // namespace

namespace detail {

void
emitWarn(const std::string& msg)
{
    g_warn_count.fetch_add(1, std::memory_order_relaxed);
    if (!g_quiet.load(std::memory_order_relaxed))
        std::cerr << "warn: " << msg << '\n';
}

void
emitInform(const std::string& msg)
{
    if (!g_quiet.load(std::memory_order_relaxed))
        std::cerr << "info: " << msg << '\n';
}

} // namespace detail

std::uint64_t
warnCount()
{
    return g_warn_count.load(std::memory_order_relaxed);
}

void
setLogQuiet(bool quiet)
{
    g_quiet.store(quiet, std::memory_order_relaxed);
}

} // namespace tb
