#include "sim/logging.hh"

#include <csignal>

#include <atomic>
#include <cstdint>
#include <iostream>
#include <system_error>

namespace tb {

namespace {

std::atomic<std::uint64_t> g_warn_count{0};
std::atomic<bool> g_quiet{false};

} // namespace

namespace detail {

void
emitWarn(const std::string& msg)
{
    g_warn_count.fetch_add(1, std::memory_order_relaxed);
    if (!g_quiet.load(std::memory_order_relaxed))
        std::cerr << "warn: " << msg << '\n';
}

void
emitInform(const std::string& msg)
{
    if (!g_quiet.load(std::memory_order_relaxed))
        std::cerr << "info: " << msg << '\n';
}

} // namespace detail

std::string
errnoMessage(int err)
{
    return std::generic_category().message(err) + " (errno " +
           std::to_string(err) + ")";
}

std::string
signalName(int sig)
{
    switch (sig) {
      case SIGHUP: return "SIGHUP";
      case SIGINT: return "SIGINT";
      case SIGQUIT: return "SIGQUIT";
      case SIGILL: return "SIGILL";
      case SIGTRAP: return "SIGTRAP";
      case SIGABRT: return "SIGABRT";
      case SIGBUS: return "SIGBUS";
      case SIGFPE: return "SIGFPE";
      case SIGKILL: return "SIGKILL";
      case SIGUSR1: return "SIGUSR1";
      case SIGSEGV: return "SIGSEGV";
      case SIGUSR2: return "SIGUSR2";
      case SIGPIPE: return "SIGPIPE";
      case SIGALRM: return "SIGALRM";
      case SIGTERM: return "SIGTERM";
      default: return "signal " + std::to_string(sig);
    }
}

std::uint64_t
warnCount()
{
    return g_warn_count.load(std::memory_order_relaxed);
}

void
setLogQuiet(bool quiet)
{
    g_quiet.store(quiet, std::memory_order_relaxed);
}

} // namespace tb
