/**
 * @file
 * Deterministic discrete-event queue.
 *
 * Events are totally ordered by (tick, priority, insertion sequence), so
 * a given seed always produces bit-identical simulations. Cancelation is
 * lazy: an EventHandle marks its event dead and the queue drops it when
 * it reaches the head. The thrifty barrier's hybrid wake-up relies on
 * this to let the external and internal wake-up mechanisms cancel each
 * other (Section 3.3.2 of the paper).
 *
 * Storage design (docs/PERFORMANCE.md): events live in slab-allocated
 * pool slots reused through a free list, and callbacks whose captures
 * fit kInlineClosureBytes are stored inline in the slot — the schedule/
 * fire hot path performs no per-event heap allocation. Handles address
 * events by (slot index, generation); a recycled slot bumps its
 * generation so stale handles turn into harmless no-ops.
 */

#ifndef TB_SIM_EVENT_QUEUE_HH_
#define TB_SIM_EVENT_QUEUE_HH_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/logging.hh"
#include "sim/types.hh"

namespace tb {

class EventQueue;

/**
 * Passive observer of event-queue activity. Attached by the protocol
 * checker to enforce scheduling discipline (no past-tick schedules,
 * strictly ordered execution, balanced schedule/execute/cancel/drop
 * accounting). Null by default; the queue's hot path only pays a
 * predicted-not-taken branch when no observer is attached.
 */
class EventQueueObserver
{
  public:
    virtual ~EventQueueObserver() = default;

    /** An event was scheduled for @p when while the queue sat at
     *  @p now. */
    virtual void
    onSchedule(Tick when, int priority, std::uint64_t seq, Tick now)
    {
        (void)when; (void)priority; (void)seq; (void)now;
    }

    /** The event (@p when, @p priority, @p seq) is about to execute. */
    virtual void
    onExecute(Tick when, int priority, std::uint64_t seq)
    {
        (void)when; (void)priority; (void)seq;
    }

    /** A still-pending event was canceled. */
    virtual void
    onCancel(Tick when, std::uint64_t seq)
    {
        (void)when; (void)seq;
    }

    /**
     * A previously canceled event reached the head of the queue and
     * was dropped (its slot recycled). Every onCancel is eventually
     * matched by exactly one onDropDead once the queue drains, which
     * is what makes the cancel accounting auditable.
     */
    virtual void
    onDropDead(Tick when, std::uint64_t seq)
    {
        (void)when; (void)seq;
    }
};

namespace detail {

/**
 * Type-erased move-only callback with inline small-closure storage.
 * Callables up to kInlineBytes (and max_align_t alignment) live inside
 * the object; larger ones fall back to a single heap allocation.
 */
class EventClosure
{
  public:
    static constexpr std::size_t kInlineBytes = 48;

    EventClosure() = default;

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, EventClosure> &&
                  std::is_invocable_v<std::decay_t<F>&>>>
    EventClosure(F&& f) // NOLINT: implicit by design
    {
        using Fn = std::decay_t<F>;
        if constexpr (fitsInline<Fn>()) {
            ::new (static_cast<void*>(buf)) Fn(std::forward<F>(f));
            ops = &kInlineOps<Fn>;
        } else {
            *reinterpret_cast<Fn**>(static_cast<void*>(buf)) =
                new Fn(std::forward<F>(f));
            ops = &kHeapOps<Fn>;
        }
    }

    EventClosure(EventClosure&& other) noexcept { moveFrom(other); }

    EventClosure&
    operator=(EventClosure&& other) noexcept
    {
        if (this != &other) {
            reset();
            moveFrom(other);
        }
        return *this;
    }

    EventClosure(const EventClosure&) = delete;
    EventClosure& operator=(const EventClosure&) = delete;

    ~EventClosure() { reset(); }

    /** True if a callable is held. */
    explicit operator bool() const { return ops != nullptr; }

    /** Invoke the held callable (must not be empty). */
    void operator()() { ops->invoke(buf); }

    /**
     * Construct @p f in place. The closure must be empty — this is the
     * schedule hot path writing straight into a recycled pool slot, so
     * no destroy-and-relocate round trip happens.
     */
    template <typename F>
    void
    emplace(F&& f)
    {
        using Fn = std::decay_t<F>;
        if constexpr (fitsInline<Fn>()) {
            ::new (static_cast<void*>(buf)) Fn(std::forward<F>(f));
            ops = &kInlineOps<Fn>;
        } else {
            *reinterpret_cast<Fn**>(static_cast<void*>(buf)) =
                new Fn(std::forward<F>(f));
            ops = &kHeapOps<Fn>;
        }
    }

    /**
     * Invoke then destroy the held callable in one indirect call,
     * leaving the closure empty (must not be empty on entry). The
     * closure is marked empty *before* the callable runs, so the slot
     * stays consistent if the callback re-enters the queue.
     */
    void
    consume()
    {
        const Ops* o = ops;
        ops = nullptr;
        o->consume(buf);
    }

    /** Destroy the held callable (no-op if empty). */
    void
    reset()
    {
        if (ops) {
            ops->destroy(buf);
            ops = nullptr;
        }
    }

    /** True if @p Fn would be stored inline (no heap allocation). */
    template <typename Fn>
    static constexpr bool
    fitsInline()
    {
        return sizeof(Fn) <= kInlineBytes &&
               alignof(Fn) <= alignof(std::max_align_t) &&
               std::is_nothrow_move_constructible_v<Fn>;
    }

  private:
    struct Ops
    {
        void (*invoke)(void* self);
        void (*destroy)(void* self);
        /** Move-construct at @p dst from @p src, then destroy src. */
        void (*relocate)(void* dst, void* src);
        /** Invoke, then destroy (the fire path, fused). */
        void (*consume)(void* self);
    };

    template <typename Fn>
    static Fn* at(void* p) { return std::launder(reinterpret_cast<Fn*>(p)); }

    template <typename Fn>
    static constexpr Ops kInlineOps = {
        [](void* p) { (*at<Fn>(p))(); },
        [](void* p) { at<Fn>(p)->~Fn(); },
        [](void* dst, void* src) {
            Fn* s = at<Fn>(src);
            ::new (dst) Fn(std::move(*s));
            s->~Fn();
        },
        [](void* p) {
            Fn* f = at<Fn>(p);
            (*f)();
            f->~Fn();
        },
    };

    template <typename Fn>
    static constexpr Ops kHeapOps = {
        [](void* p) { (**reinterpret_cast<Fn**>(p))(); },
        [](void* p) { delete *reinterpret_cast<Fn**>(p); },
        [](void* dst, void* src) {
            *reinterpret_cast<Fn**>(dst) = *reinterpret_cast<Fn**>(src);
        },
        [](void* p) {
            Fn* f = *reinterpret_cast<Fn**>(p);
            (*f)();
            delete f;
        },
    };

    void
    moveFrom(EventClosure& other)
    {
        if (other.ops) {
            other.ops->relocate(buf, other.buf);
            ops = other.ops;
            other.ops = nullptr;
        }
    }

    alignas(std::max_align_t) unsigned char buf[kInlineBytes];
    const Ops* ops = nullptr;
};

} // namespace detail

/**
 * A cancelable reference to a scheduled event.
 *
 * Default-constructed handles refer to nothing; all operations on them
 * are harmless no-ops. Handles are trivially copyable (slot index +
 * generation); once the event fires or a cancelation is reaped, the
 * handle goes stale and every operation on it is again a no-op.
 */
class EventHandle
{
  public:
    EventHandle() = default;

    /** True if the event is still pending (not fired, not canceled). */
    bool scheduled() const;

    /** Cancel the event if still pending. Safe to call repeatedly. */
    void cancel();

    /**
     * Tick the event is scheduled for; kTickNever if the handle is
     * empty or the event already fired or was canceled.
     */
    Tick when() const;

  private:
    friend class EventQueue;

    EventHandle(EventQueue* q, std::uint32_t idx, std::uint64_t g)
        : queue(q), index(idx), gen(g)
    {}

    /**
     * Owning queue. A handle must not be used after its queue has been
     * destroyed (the queue owns the simulation and outlives all model
     * objects in practice).
     */
    EventQueue* queue = nullptr;
    std::uint32_t index = 0;
    std::uint64_t gen = 0;
};

/**
 * The central event queue driving one simulation.
 *
 * Not thread-safe: the entire simulated machine runs in one host
 * thread, which is what makes determinism cheap. Independent queues
 * (one per Machine) may run concurrently on different host threads —
 * the parallel campaign runner relies on this.
 */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    /** Largest closure stored without a heap allocation. */
    static constexpr std::size_t kInlineClosureBytes =
        detail::EventClosure::kInlineBytes;

    EventQueue() = default;

    EventQueue(const EventQueue&) = delete;
    EventQueue& operator=(const EventQueue&) = delete;

    /** Current simulated time. */
    Tick now() const { return curTick; }

    /**
     * Schedule @p f to run at absolute tick @p when.
     *
     * @param when      Absolute tick; must be >= now().
     * @param f         Callable executed when the event fires. Captures
     *                  up to kInlineClosureBytes are stored inline.
     * @param priority  Ties at the same tick run in ascending priority,
     *                  then insertion order.
     * @return a handle that can cancel the event.
     */
    template <typename F,
              typename = std::enable_if_t<
                  std::is_invocable_v<std::decay_t<F>&>>>
    EventHandle
    schedule(Tick when, F&& f, int priority = 0)
    {
        if constexpr (std::is_same_v<std::decay_t<F>, Callback>) {
            if (!f)
                panic("scheduling event with empty callback");
        }
        // prepareSlot validates and fills the key fields; the closure is
        // then constructed straight into the slot (no relocation), and
        // only a fully-formed event enters the heap.
        const std::uint32_t idx = prepareSlot(when, priority);
        Slot& s = slot(idx);
        s.callback.emplace(std::forward<F>(f));
        // In keyed mode every plain schedule() keys by (own stream,
        // local order) so it ties deterministically against events
        // merged in from peer partitions (which carry their origin
        // stream). The local order counter is separate from the slot
        // sequence: slot sequences are also consumed by merged events,
        // whose arrival timing is host-dependent, and must never leak
        // into an ordering key.
        heapPush(HeapEntry{when,
                           keyed_ ? packKeyedKey(priority, stream_,
                                                 takeKeyedOrder())
                                  : packKey(priority, s.seq),
                           idx});
        ++livePending;
        return EventHandle(this, idx, s.gen);
    }

    /** Schedule @p f to run @p delta ticks from now. */
    template <typename F,
              typename = std::enable_if_t<
                  std::is_invocable_v<std::decay_t<F>&>>>
    EventHandle
    scheduleIn(Tick delta, F&& f, int priority = 0)
    {
        return schedule(curTick + delta, std::forward<F>(f), priority);
    }

    /**
     * Schedule @p f with an explicit tie-break key: events at equal
     * (when, priority) run in ascending (@p stream, @p order) order
     * instead of insertion order.
     *
     * This is the substrate of the conservative PDES engine
     * (sim/pdes.hh): a partition's queue receives both locally
     * scheduled events and events merged in from peer partitions'
     * channels, and the merge happens at horizon boundaries whose
     * timing depends on host-thread scheduling. Keying every entry by
     * (origin partition, origin sequence) makes the executed total
     * order (time, priority, partition, seq) — a function of the
     * simulation alone, never of when a merge happened to run.
     *
     * A queue must be driven either entirely through schedule() or
     * entirely through scheduleKeyed(): the two pack their heap keys
     * differently, so mixing them interleaves ties arbitrarily (each
     * style alone is a strict total order).
     */
    template <typename F,
              typename = std::enable_if_t<
                  std::is_invocable_v<std::decay_t<F>&>>>
    EventHandle
    scheduleKeyed(Tick when, int priority, std::uint16_t stream,
                  std::uint32_t order, F&& f)
    {
        const std::uint32_t idx = prepareSlot(when, priority);
        Slot& s = slot(idx);
        s.callback.emplace(std::forward<F>(f));
        heapPush(HeapEntry{when, packKeyedKey(priority, stream, order),
                           idx});
        ++livePending;
        return EventHandle(this, idx, s.gen);
    }

    /**
     * Tick of the earliest live pending event, or kTickNever when the
     * queue is empty. Reaps canceled events sitting at the head (the
     * same pass runOne()/run() perform), so the answer is exact.
     */
    Tick
    nextTick()
    {
        dropDead();
        return heap.empty() ? kTickNever : heap.front().when;
    }

    /**
     * Execute the single next pending event.
     * @return true if an event ran, false if the queue was empty.
     */
    bool runOne();

    /**
     * Run until the queue drains or simulated time would exceed
     * @p until (events at exactly @p until still run).
     * @return the tick of the last executed event, or now() if none ran.
     */
    Tick run(Tick until = kTickNever);

    /** True when no live events are pending. */
    bool empty() const { return livePending == 0; }

    /** Number of live (non-canceled) pending events. */
    std::size_t pending() const { return livePending; }

    /** Total events executed since construction. */
    std::uint64_t eventsExecuted() const { return executed; }

    /**
     * Switch this queue into keyed mode: every plain schedule() from
     * here on ties by (priority, @p stream, local order) instead of
     * global insertion order, making it mixable with scheduleKeyed()
     * merges from PDES channels (the two then share one strict total
     * order). Used by managed engine partitions
     * (pdes::Engine::addManagedPartition); @p stream must equal the
     * partition id the queue is registered under, so local keys can
     * never collide with merged keys (self-channels are forbidden).
     * One-way and sticky: call before any event is scheduled.
     */
    void
    setKeyedStream(std::uint16_t stream)
    {
        if (nextSeq != 0)
            panic("setKeyedStream after events were scheduled");
        keyed_ = true;
        stream_ = stream;
    }

    /** True once setKeyedStream() switched this queue to keyed mode. */
    bool keyed() const { return keyed_; }

    /** The keyed-mode stream id (valid only when keyed()). */
    std::uint16_t keyedStream() const { return stream_; }

    /** Attach (or with nullptr detach) a scheduling observer. */
    void setObserver(EventQueueObserver* observer) { obs = observer; }

    /** The attached observer, or null. */
    EventQueueObserver* observer() const { return obs; }

    /**
     * Pool slots currently allocated (free + in use). Grows in slab
     * granularity and never shrinks; tests assert that cancel-heavy
     * churn reuses slots instead of growing this.
     */
    std::size_t poolCapacity() const { return slabs.size() * kSlabSize; }

  private:
    friend class EventHandle;

    static constexpr std::uint32_t kSlabBits = 8;
    static constexpr std::uint32_t kSlabSize = 1u << kSlabBits;
    static constexpr std::uint32_t kNoIndex = ~std::uint32_t{0};

    /** One pool slot: key fields, closure, free-list link. */
    struct Slot
    {
        enum class State : std::uint8_t { Free, Pending, Canceled };

        Tick when = 0;
        std::uint64_t seq = 0;
        /** Bumped every recycle; stale handles mismatch and no-op. */
        std::uint64_t gen = 0;
        detail::EventClosure callback;
        std::int32_t priority = 0;
        std::uint32_t nextFree = kNoIndex;
        State state = State::Free;
    };

    /**
     * Heap element: full ordering key + slot index, no indirection.
     * Priority (16-bit, bias-mapped so the unsigned compare preserves
     * signed order) and sequence (48-bit) share one word, so the
     * strict (tick, priority, seq) order costs two word compares in
     * the sift loops. prepareSlot() enforces both ranges.
     */
    struct HeapEntry
    {
        Tick when;
        std::uint64_t prioSeq;
        std::uint32_t index;

        /** Strict (tick, priority, seq) order; seq is unique. */
        bool
        before(const HeapEntry& o) const
        {
            if (when != o.when)
                return when < o.when;
            return prioSeq < o.prioSeq;
        }
    };

    /** Bits of the packed key holding the insertion sequence. */
    static constexpr unsigned kSeqBits = 48;

    static std::uint64_t
    packKey(int priority, std::uint64_t seq)
    {
        const auto biased = static_cast<std::uint16_t>(
            static_cast<std::uint16_t>(priority) ^ 0x8000u);
        return (std::uint64_t{biased} << kSeqBits) | seq;
    }

    /**
     * Key layout for scheduleKeyed(): the 48 sequence bits split into
     * a 16-bit stream id over a 32-bit per-stream order, so the packed
     * word still compares as (priority, stream, order) in one compare.
     */
    static std::uint64_t
    packKeyedKey(int priority, std::uint16_t stream, std::uint32_t order)
    {
        const auto biased = static_cast<std::uint16_t>(
            static_cast<std::uint16_t>(priority) ^ 0x8000u);
        return (std::uint64_t{biased} << kSeqBits) |
               (std::uint64_t{stream} << 32) | order;
    }

    Slot&
    slot(std::uint32_t idx)
    {
        // Simulations rarely exceed one slab of outstanding events, so
        // the first slab is reachable through a cached pointer without
        // touching the slab table.
        if (idx < kSlabSize)
            return slab0[idx];
        return slabs[idx >> kSlabBits][idx & (kSlabSize - 1)];
    }

    const Slot&
    slot(std::uint32_t idx) const
    {
        if (idx < kSlabSize)
            return slab0[idx];
        return slabs[idx >> kSlabBits][idx & (kSlabSize - 1)];
    }

    /**
     * Schedule prologue shared by every instantiation: observer hook,
     * past-tick / priority-range / sequence-range checks, slot
     * allocation and key-field fill. Returns the slot index; the
     * caller emplaces the closure and pushes the heap entry.
     */
    std::uint32_t
    prepareSlot(Tick when, int priority)
    {
        if (obs)
            obs->onSchedule(when, priority, nextSeq, curTick);
        if (when < curTick || static_cast<std::int16_t>(priority) !=
                                  priority ||
            (nextSeq >> kSeqBits) != 0) {
            rejectSchedule(when, priority);
        }
        const std::uint32_t idx = allocSlot();
        Slot& s = slot(idx);
        s.when = when;
        s.priority = priority;
        s.seq = nextSeq++;
        s.state = Slot::State::Pending;
        return idx;
    }

    /** Cold path of prepareSlot: diagnose and panic. */
    [[noreturn]] void rejectSchedule(Tick when, int priority) const;

    /** Next keyed-mode local order value (32-bit stream-order space). */
    std::uint32_t
    takeKeyedOrder()
    {
        if (keyedOrder_ == ~std::uint32_t{0})
            panic("keyed event queue exhausted its 2^32 order space");
        return keyedOrder_++;
    }

    /** Pop a free slot, growing the pool by one slab if exhausted. */
    std::uint32_t
    allocSlot()
    {
        if (freeHead == kNoIndex)
            growPool();
        const std::uint32_t idx = freeHead;
        freeHead = slot(idx).nextFree;
        return idx;
    }

    /** Cold path of allocSlot: add one slab to the free list. */
    void growPool();

    /** Return @p idx to the free list and invalidate its handles. */
    void recycleSlot(std::uint32_t idx, Slot& s);

    /** Reap canceled events from the head of the heap. */
    void dropDead();

    /** Pop + run the heap head (caller ensures a live head exists). */
    void executeHead();

    void
    heapPush(HeapEntry e)
    {
        heap.push_back(e);
        HeapEntry* h = heap.data();
        std::size_t i = heap.size() - 1;
        while (i > 0) {
            const std::size_t parent = (i - 1) >> 1;
            if (!e.before(h[parent]))
                break;
            h[i] = h[parent];
            i = parent;
        }
        h[i] = e;
    }

    HeapEntry heapPop();

    // EventHandle backends.
    bool handleScheduled(std::uint32_t idx, std::uint64_t gen) const;
    void handleCancel(std::uint32_t idx, std::uint64_t gen);
    Tick handleWhen(std::uint32_t idx, std::uint64_t gen) const;

    std::vector<std::unique_ptr<Slot[]>> slabs;
    /** Cached slabs[0] pointer (slot() fast path); null until the
     *  first slab exists. */
    Slot* slab0 = nullptr;
    std::uint32_t freeHead = kNoIndex;
    /** Canceled events still sitting in the heap. When zero, the
     *  reaping pass is a single counter test (no slot loads). */
    std::size_t deadPending = 0;
    std::vector<HeapEntry> heap;
    Tick curTick = 0;
    std::uint64_t nextSeq = 0;
    std::uint64_t executed = 0;
    std::size_t livePending = 0;
    EventQueueObserver* obs = nullptr;
    /** Keyed mode (setKeyedStream): plain schedule() packs keyed keys. */
    bool keyed_ = false;
    std::uint16_t stream_ = 0;
    std::uint32_t keyedOrder_ = 0;
};

inline bool
EventHandle::scheduled() const
{
    return queue && queue->handleScheduled(index, gen);
}

inline void
EventHandle::cancel()
{
    if (queue)
        queue->handleCancel(index, gen);
}

inline Tick
EventHandle::when() const
{
    return queue ? queue->handleWhen(index, gen) : kTickNever;
}

} // namespace tb

#endif // TB_SIM_EVENT_QUEUE_HH_
