/**
 * @file
 * Deterministic discrete-event queue.
 *
 * Events are totally ordered by (tick, priority, insertion sequence), so
 * a given seed always produces bit-identical simulations. Cancelation is
 * lazy: an EventHandle marks its event dead and the queue drops it when
 * it reaches the head. The thrifty barrier's hybrid wake-up relies on
 * this to let the external and internal wake-up mechanisms cancel each
 * other (Section 3.3.2 of the paper).
 */

#ifndef TB_SIM_EVENT_QUEUE_HH_
#define TB_SIM_EVENT_QUEUE_HH_

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "sim/types.hh"

namespace tb {

class EventQueue;

/**
 * Passive observer of event-queue activity. Attached by the protocol
 * checker to enforce scheduling discipline (no past-tick schedules,
 * strictly ordered execution, balanced schedule/execute/cancel
 * accounting). Null by default; the queue's hot path only pays a
 * predicted-not-taken branch when no observer is attached.
 */
class EventQueueObserver
{
  public:
    virtual ~EventQueueObserver() = default;

    /** An event was scheduled for @p when while the queue sat at
     *  @p now. */
    virtual void
    onSchedule(Tick when, int priority, std::uint64_t seq, Tick now)
    {
        (void)when; (void)priority; (void)seq; (void)now;
    }

    /** The event (@p when, @p priority, @p seq) is about to execute. */
    virtual void
    onExecute(Tick when, int priority, std::uint64_t seq)
    {
        (void)when; (void)priority; (void)seq;
    }

    /** A still-pending event was canceled. */
    virtual void
    onCancel(Tick when, std::uint64_t seq)
    {
        (void)when; (void)seq;
    }
};

/**
 * A cancelable reference to a scheduled event.
 *
 * Default-constructed handles refer to nothing; all operations on them
 * are harmless no-ops. Handles are cheap to copy (shared ownership of a
 * small control block).
 */
class EventHandle
{
  public:
    EventHandle() = default;

    /** True if the event is still pending (not fired, not canceled). */
    bool scheduled() const;

    /** Cancel the event if still pending. Safe to call repeatedly. */
    void cancel();

    /** Tick the event is (or was) scheduled for; kTickNever if none. */
    Tick when() const;

  private:
    friend class EventQueue;

    struct Event
    {
        Tick when = kTickNever;
        int priority = 0;
        std::uint64_t seq = 0;
        std::function<void()> callback;
        bool canceled = false;
        bool fired = false;
        /**
         * Owning queue; used only to keep the live-event count exact
         * on cancelation. A handle must not be canceled after its
         * queue has been destroyed (the queue owns the simulation and
         * outlives all model objects in practice).
         */
        EventQueue* owner = nullptr;
    };

    explicit EventHandle(std::shared_ptr<Event> ev) : event(std::move(ev)) {}

    std::shared_ptr<Event> event;
};

/**
 * The central event queue driving one simulation.
 *
 * Not thread-safe: the entire simulated machine runs in one host
 * thread, which is what makes determinism cheap.
 */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    EventQueue() = default;

    EventQueue(const EventQueue&) = delete;
    EventQueue& operator=(const EventQueue&) = delete;

    /** Current simulated time. */
    Tick now() const { return curTick; }

    /**
     * Schedule @p cb to run at absolute tick @p when.
     *
     * @param when      Absolute tick; must be >= now().
     * @param cb        Callback executed when the event fires.
     * @param priority  Ties at the same tick run in ascending priority,
     *                  then insertion order.
     * @return a handle that can cancel the event.
     */
    EventHandle schedule(Tick when, Callback cb, int priority = 0);

    /** Schedule @p cb to run @p delta ticks from now. */
    EventHandle
    scheduleIn(Tick delta, Callback cb, int priority = 0)
    {
        return schedule(curTick + delta, std::move(cb), priority);
    }

    /**
     * Execute the single next pending event.
     * @return true if an event ran, false if the queue was empty.
     */
    bool runOne();

    /**
     * Run until the queue drains or simulated time would exceed
     * @p until (events at exactly @p until still run).
     * @return the tick of the last executed event, or now() if none ran.
     */
    Tick run(Tick until = kTickNever);

    /** True when no live events are pending. */
    bool empty() const;

    /** Number of live (non-canceled) pending events. */
    std::size_t pending() const { return livePending; }

    /** Total events executed since construction. */
    std::uint64_t eventsExecuted() const { return executed; }

    /** Attach (or with nullptr detach) a scheduling observer. */
    void setObserver(EventQueueObserver* observer) { obs = observer; }

    /** The attached observer, or null. */
    EventQueueObserver* observer() const { return obs; }

  private:
    friend class EventHandle;

    using EventPtr = std::shared_ptr<EventHandle::Event>;

    struct Later
    {
        bool
        operator()(const EventPtr& a, const EventPtr& b) const
        {
            if (a->when != b->when)
                return a->when > b->when;
            if (a->priority != b->priority)
                return a->priority > b->priority;
            return a->seq > b->seq;
        }
    };

    /** Drop canceled events from the head of the heap. */
    void skipDead() const;

    mutable std::priority_queue<EventPtr, std::vector<EventPtr>, Later>
        heap;
    Tick curTick = 0;
    std::uint64_t nextSeq = 0;
    std::uint64_t executed = 0;
    std::size_t livePending = 0;
    EventQueueObserver* obs = nullptr;
};

} // namespace tb

#endif // TB_SIM_EVENT_QUEUE_HH_
