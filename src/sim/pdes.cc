/**
 * @file
 * Conservative PDES engine implementation (see pdes.hh for the
 * algorithm and the determinism argument).
 */

#include "sim/pdes.hh"

#include <algorithm>
#include <thread>

namespace tb {
namespace pdes {

using detail::Channel;
using detail::ChannelMsg;

// ---------------------------------------------------------------------
// Partition
// ---------------------------------------------------------------------

Partition::Partition(PartitionId id, std::string name, Kind kind,
                     EventQueue* externalQueue)
    : id_(id), name_(std::move(name)), kind_(kind)
{
    if (kind_ == Kind::Owned) {
        owned_ = std::make_unique<EventQueue>();
        eq_ = owned_.get();
    } else {
        eq_ = externalQueue;
    }
}

std::uint32_t
Partition::takeSeq()
{
    if (nextSeq_ == ~std::uint32_t{0}) {
        panic("pdes: partition ", id_, " '", name_,
              "' exhausted its 2^32 event sequence space");
    }
    return nextSeq_++;
}

Channel&
Partition::channelTo(PartitionId dst) const
{
    for (Channel* c : outs_) {
        if (c->dst == dst)
            return *c;
    }
    panic("pdes: partition ", id_, " '", name_,
          "' has no channel to partition ", dst,
          " (declare it with Engine::connect before run)");
}

void
Partition::push(Channel& c, ChannelMsg&& m)
{
    if (m.when < now() + c.lookahead) {
        panic("pdes: send on channel ", c.src, "->", c.dst,
              " violates conservative lookahead: when=", m.when,
              " < now=", now(), " + lookahead=", c.lookahead);
    }
    LockGuard g(c.mu);
    c.mailbox.push_back(std::move(m));
}

void
Partition::send(PartitionId dst, Tick when, std::function<void()> fn,
                int priority)
{
    if (!fn)
        panic("pdes: send with empty callback");
    Channel& c = channelTo(dst);
    ChannelMsg m;
    m.when = when;
    m.priority = priority;
    m.seq = takeSeq();
    m.kind = ChannelMsg::Kind::Payload;
    m.fn = std::move(fn);
    ++stats_.sent;
    push(c, std::move(m));
}

RemoteHandle
Partition::sendCancelable(PartitionId dst, Tick when,
                          std::function<void()> fn, int priority)
{
    if (!fn)
        panic("pdes: send with empty callback");
    Channel& c = channelTo(dst);
    ChannelMsg m;
    m.when = when;
    m.priority = priority;
    m.seq = takeSeq();
    m.kind = ChannelMsg::Kind::Cancelable;
    m.fn = std::move(fn);
    RemoteHandle h{dst, m.seq};
    ++stats_.sent;
    push(c, std::move(m));
    return h;
}

void
Partition::cancel(const RemoteHandle& h, Tick when)
{
    if (!h.valid())
        return;
    Channel& c = channelTo(h.dst);
    ChannelMsg m;
    m.when = when;
    m.priority = 0;
    m.seq = takeSeq();
    m.target = h.seq;
    m.kind = ChannelMsg::Kind::Cancel;
    ++stats_.cancelsSent;
    push(c, std::move(m));
}

Tick
Partition::lookaheadTo(PartitionId dst) const
{
    return channelTo(dst).lookahead;
}

// ---------------------------------------------------------------------
// Engine
// ---------------------------------------------------------------------

Partition&
Engine::addPartition(std::string name)
{
    if (ran_)
        panic("pdes: addPartition after run");
    if (parts_.size() >= kNoPartition)
        panic("pdes: partition id space (2^16 - 1) exhausted");
    const auto id = static_cast<PartitionId>(parts_.size());
    parts_.emplace_back(
        new Partition(id, std::move(name), Partition::Kind::Owned,
                      nullptr));
    return *parts_.back();
}

Partition&
Engine::addExternalPartition(std::string name, EventQueue& eq)
{
    if (ran_)
        panic("pdes: addExternalPartition after run");
    if (parts_.size() >= kNoPartition)
        panic("pdes: partition id space (2^16 - 1) exhausted");
    const auto id = static_cast<PartitionId>(parts_.size());
    parts_.emplace_back(
        new Partition(id, std::move(name), Partition::Kind::External,
                      &eq));
    return *parts_.back();
}

Partition&
Engine::addManagedPartition(std::string name, EventQueue& eq)
{
    if (ran_)
        panic("pdes: addManagedPartition after run");
    if (parts_.size() >= kNoPartition)
        panic("pdes: partition id space (2^16 - 1) exhausted");
    const auto id = static_cast<PartitionId>(parts_.size());
    if (!eq.keyed() || eq.keyedStream() != id) {
        panic("pdes: managed partition '", name, "' needs its queue in "
              "keyed mode with stream ", id,
              " (call EventQueue::setKeyedStream before scheduling "
              "anything into it)");
    }
    parts_.emplace_back(
        new Partition(id, std::move(name), Partition::Kind::Managed,
                      &eq));
    return *parts_.back();
}

void
Engine::connect(PartitionId src, PartitionId dst, Tick lookahead)
{
    if (ran_)
        panic("pdes: connect after run");
    if (src >= parts_.size() || dst >= parts_.size())
        panic("pdes: connect with unknown partition id");
    if (src == dst)
        panic("pdes: self-channel ", src, "->", dst, " is meaningless");
    if (lookahead == 0) {
        panic("pdes: channel ", src, "->", dst,
              " needs positive lookahead (conservative "
              "synchronization cannot make progress across a "
              "zero-latency edge)");
    }
    if (parts_[src]->kind_ == Partition::Kind::External ||
        parts_[dst]->kind_ == Partition::Kind::External) {
        panic("pdes: external partition cannot take channels (its "
              "queue keeps plain insertion-order scheduling, which "
              "has no deterministic cross-partition tie-break)");
    }
    for (const Channel* c : parts_[src]->outs_) {
        if (c->dst == dst)
            panic("pdes: duplicate channel ", src, "->", dst);
    }
    channels_.emplace_back(new Channel);
    Channel& c = *channels_.back();
    c.src = src;
    c.dst = dst;
    c.lookahead = lookahead;
    // The sender sits at tick 0 before run(), so lookahead itself is
    // the initial conservative bound.
    c.clock.store(lookahead, std::memory_order_relaxed);
    parts_[src]->outs_.push_back(&c);
    parts_[dst]->ins_.push_back(&c);
}

void
Engine::publishWake()
{
    // Pairs with the park path: the parker loads wakeVersion_ after
    // its fruitless sweep and re-checks it under the monitor before
    // waiting; we bump wakeVersion_ and then peek at the parked
    // count. Both atomics are seq_cst, so either the parker sees the
    // new version (and skips the wait) or we see its parked count
    // (and notify under the monitor) — no lost wake-up.
    wakeVersion_.fetch_add(1);
    if (parkedPeek_.load() > 0) {
        std::lock_guard<std::mutex> g(monitorMu_);
        parkCv_.notify_all();
    }
}

bool
Engine::step(Partition& p)
{
    bool progress = false;

    // 1. Per input channel: read the conservative bound FIRST
    // (acquire), then drain the mailbox. Every message below the
    // bound was pushed before the bound was published, so this order
    // guarantees the fire loop never trusts a bound whose messages it
    // has not merged. Merge timing cannot reorder execution: each
    // entry carries its origin (partition, seq) key.
    Tick lbts = kTickNever;
    for (Channel* c : p.ins_) {
        lbts = std::min(lbts, c->clock.load(std::memory_order_acquire));
        {
            LockGuard g(c->mu);
            if (!c->mailbox.empty())
                p.mergeBuf_.swap(c->mailbox);
        }
        Partition* self = &p;
        for (ChannelMsg& m : p.mergeBuf_) {
            progress = true;
            switch (m.kind) {
            case ChannelMsg::Kind::Payload:
                ++p.stats_.merged;
                p.eq_->scheduleKeyed(m.when, m.priority, c->src, m.seq,
                                     std::move(m.fn));
                break;
            case ChannelMsg::Kind::Cancelable: {
                ++p.stats_.merged;
                const std::uint64_t key =
                    Partition::remoteKey(c->src, m.seq);
                EventHandle h = p.eq_->scheduleKeyed(
                    m.when, m.priority, c->src, m.seq,
                    [self, key, fn = std::move(m.fn)]() mutable {
                        self->remotePending_.erase(key);
                        fn();
                    });
                p.remotePending_.emplace(key, h);
                break;
            }
            case ChannelMsg::Kind::Cancel: {
                const std::uint64_t key =
                    Partition::remoteKey(c->src, m.target);
                p.eq_->scheduleKeyed(
                    m.when, m.priority, c->src, m.seq, [self, key]() {
                        auto it = self->remotePending_.find(key);
                        if (it != self->remotePending_.end()) {
                            it->second.cancel();
                            self->remotePending_.erase(it);
                        }
                    });
                break;
            }
            }
        }
        p.mergeBuf_.clear();
    }

    // 2. Fire everything strictly below the LBTS. Events at exactly
    // the bound must wait: a message timestamped at it may yet arrive.
    const Tick next = p.eq_->nextTick();
    if (next < lbts) {
        const std::uint64_t before = p.eq_->eventsExecuted();
        p.eq_->run(lbts == kTickNever ? kTickNever : lbts - 1);
        p.stats_.fired += p.eq_->eventsExecuted() - before;
        progress = true;
    } else if (next != kTickNever) {
        ++p.stats_.stallRounds;
    }

    // 3. Null messages: everything below lbts is done here, so the
    // earliest future send is bounded by min(lbts, next local event).
    // Publish that plus the per-channel lookahead.
    const Tick safe = std::min(lbts, p.eq_->nextTick());
    bool advanced = false;
    for (Channel* c : p.outs_) {
        const Tick bound = satAdd(safe, c->lookahead);
        if (bound > c->clock.load(std::memory_order_relaxed)) {
            c->clock.store(bound, std::memory_order_release);
            ++p.stats_.nullPublishes;
            advanced = true;
        }
    }
    if (advanced)
        publishWake();
    return progress;
}

void
Engine::worker(unsigned tid, const std::vector<Partition*>& mine)
{
    (void)tid;
    while (!done_.load()) {
        bool progress = false;
        for (Partition* p : mine)
            progress |= step(*p);
        if (progress)
            continue;

        // Fruitless sweep (only clock publishes, if anything): park
        // until some clock advances. The version is sampled after the
        // sweep, so this worker's own publishes do not keep it awake
        // — without that, lookahead creep across an idle window would
        // busy-spin instead of converging through GVT rescues. A
        // publish racing between this load and the re-check under the
        // monitor is caught by the re-check; one racing after it is
        // caught by publishWake()'s parked-count peek.
        const std::uint64_t version = wakeVersion_.load();
        std::unique_lock<std::mutex> lk(monitorMu_);
        ++parkedWorkers_;
        parkedPeek_.store(parkedWorkers_);
        if (parkedWorkers_ == threadsUsed_ && !done_.load())
            rescueLocked();
        while (!done_.load() && wakeVersion_.load() == version)
            parkCv_.wait(lk);
        --parkedWorkers_;
        parkedPeek_.store(parkedWorkers_);
    }
}

void
Engine::rescueLocked()
{
    // Every other worker is blocked in parkCv_.wait (they released
    // monitorMu_, which this thread holds), so all partitions and
    // mailboxes are quiescent and safe to scan from here.
    Tick gvt = kTickNever;
    for (auto& p : parts_)
        gvt = std::min(gvt, p->eq_->nextTick());
    for (auto& c : channels_) {
        LockGuard g(c->mu);
        for (const ChannelMsg& m : c->mailbox)
            gvt = std::min(gvt, m.when);
    }

    if (gvt == kTickNever) {
        // No pending event, no in-flight message anywhere: done.
        done_.store(true);
        parkCv_.notify_all();
        return;
    }

    // Lookahead creep stalled the fleet short of the globally
    // earliest pending work. No event below gvt exists anywhere, so
    // every future send is bounded by gvt + lookahead — force the
    // clocks there. The owner of the gvt event had LBTS <= gvt (it
    // stalled), so its minimum input clock strictly advances past gvt
    // and the next sweep fires that event: guaranteed progress.
    ++gvtRescues_;
    for (auto& c : channels_) {
        const Tick bound = satAdd(gvt, c->lookahead);
        if (bound > c->clock.load(std::memory_order_relaxed))
            c->clock.store(bound, std::memory_order_release);
    }
    wakeVersion_.fetch_add(1);
    parkCv_.notify_all();
}

void
Engine::run()
{
    if (ran_)
        panic("pdes: Engine::run is one-shot");
    ran_ = true;
    if (parts_.empty())
        return;

    threadsUsed_ = std::max(
        1u,
        std::min(cfg_.threads, static_cast<unsigned>(parts_.size())));

    // Static partition ownership: partition i belongs to worker
    // i % threads. Ownership never moves, so partition state needs no
    // locking — only channels are shared.
    std::vector<std::vector<Partition*>> assign(threadsUsed_);
    for (std::size_t i = 0; i < parts_.size(); ++i)
        assign[i % threadsUsed_].push_back(parts_[i].get());

    if (threadsUsed_ == 1) {
        worker(0, assign[0]);
        return;
    }
    std::vector<std::thread> pool;
    pool.reserve(threadsUsed_);
    for (unsigned t = 0; t < threadsUsed_; ++t)
        pool.emplace_back([this, t, &assign] { worker(t, assign[t]); });
    for (auto& th : pool)
        th.join();
}

EngineStats
Engine::stats() const
{
    EngineStats s;
    s.threads = threadsUsed_;
    s.partitions = static_cast<unsigned>(parts_.size());
    s.gvtRescues = gvtRescues_;
    for (const auto& p : parts_) {
        const PartitionStats& ps = p->stats_;
        s.fired += ps.fired;
        s.scheduled += ps.scheduled;
        s.sent += ps.sent;
        s.merged += ps.merged;
        s.cancelsSent += ps.cancelsSent;
        s.nullPublishes += ps.nullPublishes;
        s.stallRounds += ps.stallRounds;
        s.finalTick = std::max(s.finalTick, p->eq_->now());
    }
    return s;
}

} // namespace pdes
} // namespace tb
