#include "sim/event_queue.hh"

#include <utility>

namespace tb {

// ----------------------------------------------------------------------
// EventHandle backends.
// ----------------------------------------------------------------------

bool
EventQueue::handleScheduled(std::uint32_t idx, std::uint64_t gen) const
{
    const Slot& s = slot(idx);
    return s.gen == gen && s.state == Slot::State::Pending;
}

void
EventQueue::handleCancel(std::uint32_t idx, std::uint64_t gen)
{
    Slot& s = slot(idx);
    if (s.gen != gen || s.state != Slot::State::Pending)
        return;
    s.state = Slot::State::Canceled;
    // Release the closure now: a canceled event never runs, and a
    // callback that captures the owner of its handle would otherwise
    // keep it alive until the dead slot is reaped.
    s.callback.reset();
    --livePending;
    ++deadPending;
    if (obs)
        obs->onCancel(s.when, s.seq);
}

Tick
EventQueue::handleWhen(std::uint32_t idx, std::uint64_t gen) const
{
    const Slot& s = slot(idx);
    if (s.gen != gen || s.state != Slot::State::Pending)
        return kTickNever;
    return s.when;
}

// ----------------------------------------------------------------------
// Slot pool.
// ----------------------------------------------------------------------

void
EventQueue::growPool()
{
    const std::size_t base = slabs.size() * kSlabSize;
    if (base + kSlabSize > kNoIndex)
        panic("event pool exhausted (2^32 slots)");
    slabs.push_back(std::make_unique<Slot[]>(kSlabSize));
    Slot* arr = slabs.back().get();
    if (!slab0)
        slab0 = arr;
    // Thread the new slots onto the free list lowest-index-first.
    for (std::uint32_t i = kSlabSize; i-- > 0;) {
        arr[i].nextFree = freeHead;
        freeHead = static_cast<std::uint32_t>(base) + i;
    }
}

void
EventQueue::recycleSlot(std::uint32_t idx, Slot& s)
{
    ++s.gen; // invalidate outstanding handles
    s.state = Slot::State::Free;
    s.callback.reset();
    s.nextFree = freeHead;
    freeHead = idx;
}

// ----------------------------------------------------------------------
// Scheduling and execution.
// ----------------------------------------------------------------------

void
EventQueue::rejectSchedule(Tick when, int priority) const
{
    if (when < curTick) {
        panic("scheduling event in the past: when=", when,
              " now=", curTick);
    }
    if (static_cast<std::int16_t>(priority) != priority)
        panic("event priority out of range: ", priority);
    panic("event sequence space exhausted (2^", kSeqBits, " events)");
}

void
EventQueue::dropDead()
{
    while (deadPending > 0 && !heap.empty()) {
        const std::uint32_t idx = heap.front().index;
        Slot& s = slot(idx);
        if (s.state != Slot::State::Canceled)
            break;
        if (obs)
            obs->onDropDead(s.when, s.seq);
        recycleSlot(idx, s);
        --deadPending;
        heapPop();
    }
}

void
EventQueue::executeHead()
{
    const HeapEntry e = heapPop();
    Slot& s = slot(e.index);
    if (obs)
        obs->onExecute(e.when, s.priority, s.seq);
    curTick = e.when;
    --livePending;
    ++executed;
    // Retire the slot *before* invoking: the bumped generation keeps
    // stale handles inert while the callback runs, and the slot only
    // joins the free list afterwards, so a self-rescheduling callback
    // can never be handed its own still-executing slot. The callback
    // is invoked in place — no relocation out of the slot.
    ++s.gen;
    s.state = Slot::State::Free;
    s.callback.consume();
    s.nextFree = freeHead;
    freeHead = e.index;
}

bool
EventQueue::runOne()
{
    dropDead();
    if (heap.empty())
        return false;
    executeHead();
    return true;
}

Tick
EventQueue::run(Tick until)
{
    for (;;) {
        dropDead();
        if (heap.empty() || heap.front().when > until)
            break;
        executeHead();
    }
    return curTick;
}

// ----------------------------------------------------------------------
// Binary min-heap over packed (tick, priority:seq) keys. Hole-based
// sift (move, don't swap) with 24-byte POD entries — no indirection in
// the comparisons, which is where the old shared_ptr heap burned its
// time.
// ----------------------------------------------------------------------

EventQueue::HeapEntry
EventQueue::heapPop()
{
    HeapEntry* h = heap.data();
    const HeapEntry top = h[0];
    const HeapEntry last = heap.back();
    heap.pop_back();
    const std::size_t n = heap.size();
    if (n > 0) {
        // Bottom-up pop: pull the min-child path up to a leaf with one
        // comparison per level, then sift the old tail entry back up.
        // The tail is almost always a recent (large-key) event that
        // belongs near the bottom, so the up-phase terminates at once
        // and this does about half the comparisons of a top-down sift.
        std::size_t i = 0;
        for (;;) {
            std::size_t child = 2 * i + 1;
            if (child >= n)
                break;
            if (child + 1 < n && h[child + 1].before(h[child]))
                ++child;
            h[i] = h[child];
            i = child;
        }
        while (i > 0) {
            const std::size_t parent = (i - 1) >> 1;
            if (!last.before(h[parent]))
                break;
            h[i] = h[parent];
            i = parent;
        }
        h[i] = last;
    }
    return top;
}

} // namespace tb
