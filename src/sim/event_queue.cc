#include "sim/event_queue.hh"

#include <utility>

#include "sim/logging.hh"

namespace tb {

bool
EventHandle::scheduled() const
{
    return event && !event->canceled && !event->fired;
}

void
EventHandle::cancel()
{
    if (event && !event->fired && !event->canceled) {
        event->canceled = true;
        // Release the closure now: a canceled event never runs, and a
        // callback that captures the owner of this handle would
        // otherwise keep it alive in a reference cycle.
        event->callback = nullptr;
        if (event->owner) {
            --event->owner->livePending;
            if (event->owner->obs)
                event->owner->obs->onCancel(event->when, event->seq);
        }
    }
}

Tick
EventHandle::when() const
{
    return event ? event->when : kTickNever;
}

EventHandle
EventQueue::schedule(Tick when, Callback cb, int priority)
{
    if (obs)
        obs->onSchedule(when, priority, nextSeq, curTick);
    if (when < curTick) {
        panic("scheduling event in the past: when=", when,
              " now=", curTick);
    }
    if (!cb)
        panic("scheduling event with empty callback");

    auto ev = std::make_shared<EventHandle::Event>();
    ev->when = when;
    ev->priority = priority;
    ev->seq = nextSeq++;
    ev->callback = std::move(cb);
    ev->owner = this;
    heap.push(ev);
    ++livePending;
    return EventHandle(ev);
}

void
EventQueue::skipDead() const
{
    while (!heap.empty() && heap.top()->canceled)
        heap.pop();
}

bool
EventQueue::empty() const
{
    skipDead();
    return heap.empty();
}

bool
EventQueue::runOne()
{
    skipDead();
    if (heap.empty())
        return false;

    EventPtr ev = heap.top();
    heap.pop();
    if (obs)
        obs->onExecute(ev->when, ev->priority, ev->seq);
    curTick = ev->when;
    ev->fired = true;
    --livePending;
    ++executed;
    // Move the callback out so self-rescheduling callbacks can't be
    // clobbered while running, and captured state dies promptly.
    auto cb = std::move(ev->callback);
    cb();
    return true;
}

Tick
EventQueue::run(Tick until)
{
    for (;;) {
        skipDead();
        if (heap.empty() || heap.top()->when > until)
            break;
        runOne();
    }
    return curTick;
}

} // namespace tb
