/**
 * @file
 * Clang thread-safety-analysis annotations (docs/CHECKING.md).
 *
 * The simulator kernel is single-threaded by design; threads exist
 * only in the harness layer (parallel campaigns, supervised attempts)
 * and in the capture buffers they report through. The locking there is
 * simple — one mutex per container — which is exactly the discipline
 * clang's `-Wthread-safety` can prove at compile time. These macros
 * expand to the clang attributes under clang and to nothing elsewhere,
 * so annotated code stays portable to gcc.
 *
 * std::mutex is not annotated in libstdc++/libc++, so annotated code
 * uses tb::Mutex (an annotated wrapper) with tb::LockGuard. Both
 * compile to the std primitives; only the attributes differ.
 *
 * Build with -DTB_THREAD_SAFETY=ON (clang only) to turn violations
 * into errors; CI's static-analysis job does.
 */

#ifndef TB_SIM_THREAD_SAFETY_HH_
#define TB_SIM_THREAD_SAFETY_HH_

#include <mutex>

#if defined(__clang__)
#define TB_TSA(x) __attribute__((x))
#else
#define TB_TSA(x)
#endif

/** The annotated type is a lockable capability. */
#define TB_CAPABILITY(x) TB_TSA(capability(x))
/** RAII type that acquires in its ctor and releases in its dtor. */
#define TB_SCOPED_CAPABILITY TB_TSA(scoped_lockable)
/** The member may only be touched while holding @p x. */
#define TB_GUARDED_BY(x) TB_TSA(guarded_by(x))
/** The pointee may only be touched while holding @p x. */
#define TB_PT_GUARDED_BY(x) TB_TSA(pt_guarded_by(x))
/** The function must be called with the capability held. */
#define TB_REQUIRES(...) TB_TSA(requires_capability(__VA_ARGS__))
/** The function acquires the capability and does not release it. */
#define TB_ACQUIRE(...) TB_TSA(acquire_capability(__VA_ARGS__))
/** The function releases the capability. */
#define TB_RELEASE(...) TB_TSA(release_capability(__VA_ARGS__))
/** The function must be called with the capability NOT held. */
#define TB_EXCLUDES(...) TB_TSA(locks_excluded(__VA_ARGS__))
/** Opt a function out of the analysis (trusted manual reasoning). */
#define TB_NO_THREAD_SAFETY_ANALYSIS TB_TSA(no_thread_safety_analysis)

namespace tb {

/** std::mutex with thread-safety-analysis attributes. */
class TB_CAPABILITY("mutex") Mutex
{
  public:
    void lock() TB_ACQUIRE() { mu_.lock(); }
    void unlock() TB_RELEASE() { mu_.unlock(); }

  private:
    std::mutex mu_;
};

/** std::lock_guard over tb::Mutex, visible to the analysis. */
class TB_SCOPED_CAPABILITY LockGuard
{
  public:
    explicit LockGuard(Mutex& mu) TB_ACQUIRE(mu) : mu_(mu)
    {
        mu_.lock();
    }
    ~LockGuard() TB_RELEASE() { mu_.unlock(); }

    LockGuard(const LockGuard&) = delete;
    LockGuard& operator=(const LockGuard&) = delete;

  private:
    Mutex& mu_;
};

} // namespace tb

#endif // TB_SIM_THREAD_SAFETY_HH_
