/**
 * @file
 * Fault-injection interface for the simulated machine.
 *
 * Model components (network, cache controllers, CPUs) carry an
 * optional FaultHooks pointer, null by default, and consult it at the
 * seams a real machine can misbehave at: wake-up delivery, the
 * internal wake timer, the pre-sleep flush, NoC links, and the OS
 * scheduler. When no hooks are attached every seam reduces to one
 * predicted-not-taken branch, mirroring the ProtocolObserver pattern.
 *
 * The canonical implementation is fault::FaultInjector, which draws
 * every decision from one seeded random stream in deterministic event
 * order, so a fault campaign replays bit-identically from its spec +
 * seed (see docs/ROBUSTNESS.md). The interface lives in sim/ so the
 * model libraries never depend on the fault library.
 */

#ifndef TB_SIM_FAULT_HOOKS_HH_
#define TB_SIM_FAULT_HOOKS_HH_

#include <cstddef>

#include "sim/types.hh"

namespace tb {

/** Outcome of consulting the hooks about one wake-up delivery. */
struct WakeDeliveryFault
{
    /** Swallow the flag-monitor notification entirely. */
    bool drop = false;
    /** Deliver now *and* replay the notification @p delay later. */
    bool duplicate = false;
    /** Delay before the (re)delivery; 0 = deliver immediately. */
    Tick delay = 0;
};

/** Fault decisions consulted by the model. All defaults are benign. */
class FaultHooks
{
  public:
    virtual ~FaultHooks() = default;

    // ------------------------------------------------------------------
    // NoC.
    // ------------------------------------------------------------------

    /** Extra stall on the directed link leaving @p at along @p dim. */
    virtual Tick
    linkStall(NodeId at, unsigned dim)
    {
        (void)at; (void)dim;
        return 0;
    }

    /** Extra end-to-end delay spike for a @p src -> @p dst message,
     *  applied before the network's point-to-point ordering clamp so
     *  the protocol's ordering assumptions survive the fault. */
    virtual Tick
    messageDelay(NodeId src, NodeId dst)
    {
        (void)src; (void)dst;
        return 0;
    }

    // ------------------------------------------------------------------
    // Cache controller (thrifty-barrier hardware).
    // ------------------------------------------------------------------

    /** How the flag monitor's wake-up notification on @p node is
     *  perturbed (dropped / duplicated / delayed). */
    virtual WakeDeliveryFault
    wakeDelivery(NodeId node)
    {
        (void)node;
        return {};
    }

    /** True if the wake timer being armed on @p node fails outright
     *  (never fires). */
    virtual bool
    wakeTimerFails(NodeId node)
    {
        (void)node;
        return false;
    }

    /** Drifted countdown for a timer armed for @p delta on @p node. */
    virtual Tick
    wakeTimerSkew(NodeId node, Tick delta)
    {
        (void)node;
        return delta;
    }

    /** Extra duration of a pre-sleep flush of @p lines dirty lines. */
    virtual Tick
    flushDelay(NodeId node, std::size_t lines)
    {
        (void)node; (void)lines;
        return 0;
    }

    // ------------------------------------------------------------------
    // CPU / OS.
    // ------------------------------------------------------------------

    /** OS-preemption burst at wake-up on @p node: the CPU is Active
     *  but the thread does not resume for this many ticks. */
    virtual Tick
    preemptionBurst(NodeId node)
    {
        (void)node;
        return 0;
    }
};

} // namespace tb

#endif // TB_SIM_FAULT_HOOKS_HH_
