/**
 * @file
 * Fundamental simulation types and time-unit helpers.
 *
 * The simulator counts time in integer *ticks*, where one tick is one
 * picosecond. This resolution expresses every clock domain in the
 * modeled machine (Table 1 of the paper) exactly:
 *   - 1 GHz CPU / L1      -> 1000 ticks per cycle
 *   - 500 MHz L2          -> 2000 ticks per cycle
 *   - 250 MHz bus/router  -> 4000 ticks per cycle
 */

#ifndef TB_SIM_TYPES_HH_
#define TB_SIM_TYPES_HH_

#include <cstdint>

namespace tb {

/** Simulated time in picoseconds. */
using Tick = std::uint64_t;

/** A count of clock cycles in some clock domain. */
using Cycles = std::uint64_t;

/** Identifier of a node (processor + caches + directory slice). */
using NodeId = std::uint32_t;

/** Identifier of a software thread (== NodeId in the dedicated setup). */
using ThreadId = std::uint32_t;

/** A physical memory address. */
using Addr = std::uint64_t;

/** Sentinel for "no tick" / "never". */
inline constexpr Tick kTickNever = ~Tick{0};

/** Sentinel for an invalid node. */
inline constexpr NodeId kInvalidNode = ~NodeId{0};

/** One nanosecond in ticks. */
inline constexpr Tick kNanosecond = 1000;

/** One microsecond in ticks. */
inline constexpr Tick kMicrosecond = 1000 * kNanosecond;

/** One millisecond in ticks. */
inline constexpr Tick kMillisecond = 1000 * kMicrosecond;

/** One second in ticks. */
inline constexpr Tick kSecond = 1000 * kMillisecond;

/** Convert a tick count to (floating) seconds. */
inline constexpr double
ticksToSeconds(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(kSecond);
}

/** Convert (floating) seconds to the nearest tick count. */
inline constexpr Tick
secondsToTicks(double s)
{
    return static_cast<Tick>(s * static_cast<double>(kSecond) + 0.5);
}

/**
 * A clock domain: converts between cycles and ticks for one frequency.
 *
 * Frequencies are expressed through an exact integer period in ticks,
 * so all conversions are exact for the frequencies in Table 1.
 */
class ClockDomain
{
  public:
    /** Construct from a period in ticks (e.g.\ 1000 for 1 GHz). */
    explicit constexpr ClockDomain(Tick period_ticks)
        : period(period_ticks)
    {}

    /** Period of one cycle in ticks. */
    constexpr Tick periodTicks() const { return period; }

    /** Frequency in Hz. */
    constexpr double
    frequencyHz() const
    {
        return static_cast<double>(kSecond) / static_cast<double>(period);
    }

    /** Convert a cycle count to ticks. */
    constexpr Tick cyclesToTicks(Cycles c) const { return c * period; }

    /** Convert ticks to whole elapsed cycles (floor). */
    constexpr Cycles ticksToCycles(Tick t) const { return t / period; }

    /** Round a tick up to the next edge of this clock (>= t). */
    constexpr Tick
    nextEdge(Tick t) const
    {
        Tick rem = t % period;
        return rem == 0 ? t : t + (period - rem);
    }

  private:
    Tick period;
};

} // namespace tb

#endif // TB_SIM_TYPES_HH_
