/**
 * @file
 * A small named-statistics package in the spirit of gem5's stats.
 *
 * Model objects register Scalar / Distribution stats against a
 * StatGroup. Export goes through the visitor seam: StatGroup::visit()
 * walks every stat in sorted-name order and hands it to a StatVisitor,
 * which is the only consumer interface — text and JSON rendering live
 * in src/obs/stat_writers.hh, not here. Everything is plain
 * value-semantics; no global registry, so independent simulations can
 * coexist in one process (important for the benchmark harness, which
 * runs dozens of configurations back to back).
 */

#ifndef TB_SIM_STATS_HH_
#define TB_SIM_STATS_HH_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <map>
#include <string>
#include <vector>

namespace tb {
namespace stats {

/** A named accumulating scalar. */
class Scalar
{
  public:
    Scalar() = default;

    Scalar& operator+=(double v) { value_ += v; return *this; }
    Scalar& operator=(double v) { value_ = v; return *this; }
    void inc(double v = 1.0) { value_ += v; }

    double value() const { return value_; }

  private:
    double value_ = 0.0;
};

/** Running distribution: count/sum/min/max/mean/stddev. */
class Distribution
{
  public:
    /** Record one sample. */
    void
    sample(double v)
    {
        ++n;
        sum += v;
        sumSq += v * v;
        lo = std::min(lo, v);
        hi = std::max(hi, v);
    }

    std::uint64_t count() const { return n; }
    double total() const { return sum; }
    /**
     * Smallest sample, or 0.0 when the distribution is empty. The 0.0
     * convention is fine for text reports but ambiguous with a real
     * zero sample, so machine-readable exporters must check count()
     * and emit null for empty distributions (the JSON writer does).
     */
    double min() const { return n ? lo : 0.0; }
    /** Largest sample, or 0.0 when empty (see min()). */
    double max() const { return n ? hi : 0.0; }
    double mean() const { return n ? sum / static_cast<double>(n) : 0.0; }

    /** Population standard deviation. */
    double
    stddev() const
    {
        if (n == 0)
            return 0.0;
        const double m = mean();
        const double var =
            std::max(0.0, sumSq / static_cast<double>(n) - m * m);
        return std::sqrt(var);
    }

    /** Coefficient of variation (stddev / mean), 0 when mean == 0. */
    double
    cv() const
    {
        const double m = mean();
        return m != 0.0 ? stddev() / m : 0.0;
    }

    /**
     * Fold @p o into this distribution as if every one of its samples
     * had been recorded here. Commutative in exact arithmetic, but
     * floating-point sums are order-sensitive — callers that need
     * bit-stable artifacts (the network's per-cluster stat shards)
     * must merge in a fixed order.
     */
    void
    merge(const Distribution& o)
    {
        if (o.n == 0)
            return;
        n += o.n;
        sum += o.sum;
        sumSq += o.sumSq;
        lo = std::min(lo, o.lo);
        hi = std::max(hi, o.hi);
    }

    /** Reset to the empty distribution. */
    void
    reset()
    {
        *this = Distribution{};
    }

  private:
    std::uint64_t n = 0;
    double sum = 0.0;
    double sumSq = 0.0;
    double lo = std::numeric_limits<double>::infinity();
    double hi = -std::numeric_limits<double>::infinity();
};

/**
 * Consumer interface for stat export. visit() feeds every stat of a
 * group through one of these; renderers (text, JSON) subclass it in
 * src/obs/. Group bracketing is only used by multi-group walks
 * (Machine::visitStats) — single-group visits never call it, hence
 * the no-op defaults.
 */
class StatVisitor
{
  public:
    virtual ~StatVisitor() = default;

    /** A named group of stats begins (e.g. "net", "cpu3"). */
    virtual void beginGroup(const std::string& name) { (void)name; }

    /** The current group ends. */
    virtual void endGroup() {}

    virtual void scalar(const std::string& name, double value) = 0;
    virtual void distribution(const std::string& name,
                              const Distribution& d) = 0;
};

/** A flat namespace of named stats belonging to one simulation. */
class StatGroup
{
  public:
    /** Get-or-create a scalar stat. */
    Scalar& scalar(const std::string& name) { return scalars[name]; }

    /** Get-or-create a distribution stat. */
    Distribution&
    distribution(const std::string& name)
    {
        return dists[name];
    }

    /** Read a scalar; 0 if absent. */
    double
    scalarValue(const std::string& name) const
    {
        auto it = scalars.find(name);
        return it == scalars.end() ? 0.0 : it->second.value();
    }

    /** True if a scalar with this name has been created. */
    bool
    hasScalar(const std::string& name) const
    {
        return scalars.count(name) != 0;
    }

    /**
     * Feed every stat to @p v: scalars first, then distributions,
     * each set sorted by name. Does not bracket with begin/endGroup —
     * that is the caller's job when walking multiple groups.
     */
    void visit(StatVisitor& v) const;

    /** Drop all stats. */
    void
    clear()
    {
        scalars.clear();
        dists.clear();
    }

  private:
    std::map<std::string, Scalar> scalars;
    std::map<std::string, Distribution> dists;
};

} // namespace stats
} // namespace tb

#endif // TB_SIM_STATS_HH_
