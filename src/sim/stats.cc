#include "sim/stats.hh"

#include <iomanip>

namespace tb {
namespace stats {

void
StatGroup::dump(std::ostream& os) const
{
    os << std::left;
    for (const auto& [name, s] : scalars) {
        os << std::setw(44) << name << ' '
           << std::setprecision(12) << s.value() << '\n';
    }
    for (const auto& [name, d] : dists) {
        os << std::setw(44) << (name + ".count") << ' ' << d.count()
           << '\n'
           << std::setw(44) << (name + ".mean") << ' '
           << std::setprecision(12) << d.mean() << '\n'
           << std::setw(44) << (name + ".stddev") << ' ' << d.stddev()
           << '\n'
           << std::setw(44) << (name + ".min") << ' ' << d.min() << '\n'
           << std::setw(44) << (name + ".max") << ' ' << d.max() << '\n';
    }
}

} // namespace stats
} // namespace tb
