#include "sim/stats.hh"

namespace tb {
namespace stats {

void
StatGroup::visit(StatVisitor& v) const
{
    for (const auto& [name, s] : scalars)
        v.scalar(name, s.value());
    for (const auto& [name, d] : dists)
        v.distribution(name, d);
}

} // namespace stats
} // namespace tb
