/**
 * @file
 * Conservative parallel discrete-event simulation (PDES) engine.
 *
 * The machine model is partitioned into Partitions, each owning one
 * slab EventQueue (event_queue.hh) and executed by exactly one worker
 * thread at a time. Cross-partition communication goes through
 * timestamped Channels declared up front with a positive *lookahead*:
 * a message sent while the source partition sits at simulated time s
 * must carry a timestamp >= s + lookahead. That bound is the classic
 * Chandy-Misra-Bryant contract, and it is what lets each partition
 * compute a conservative lower bound on incoming timestamps (LBTS)
 * and fire every local event strictly below it without ever seeing a
 * straggler.
 *
 * Null messages are clock-only channel updates: after a partition has
 * processed everything below its LBTS, it publishes
 * `min(LBTS, next local event) + lookahead` on every output channel
 * even when it sent no payload, so neighbors' LBTS keeps advancing
 * and the classic null-message deadlock cannot form. When every
 * worker still stalls (lookahead creep across an idle window), the
 * last thread to park performs a global-virtual-time rescue: with all
 * other workers parked it computes GVT = the minimum timestamp of any
 * pending event or in-flight message, force-advances every channel
 * clock to GVT + lookahead, and wakes the fleet; if GVT is kTickNever
 * the simulation is complete. Either some partition has work below
 * its LBTS, or the rescue strictly advances the earliest partition's
 * LBTS past GVT — so the engine always makes progress and always
 * terminates.
 *
 * Determinism contract (docs/PERFORMANCE.md): execution order is the
 * total order (time, priority, origin partition, origin sequence),
 * enforced by EventQueue::scheduleKeyed. Merge timing, worker count,
 * and host scheduling cannot change which key runs next, so any
 * thread count produces bit-identical simulations. The per-partition
 * diagnostic counters (null publishes, stall rounds, GVT rescues) ARE
 * host-timing dependent and must never feed artifacts; the
 * deterministic counters (fired/scheduled/sent/merged) may.
 */

#ifndef TB_SIM_PDES_HH_
#define TB_SIM_PDES_HH_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/logging.hh"
#include "sim/thread_safety.hh"
#include "sim/types.hh"

namespace tb {
namespace pdes {

/** Partition identifier; doubles as the heap tie-break stream id. */
using PartitionId = std::uint16_t;

/** Sentinel for "no partition". */
inline constexpr PartitionId kNoPartition = ~PartitionId{0};

class Engine;
class Partition;

/**
 * Token for canceling a cross-partition event from its sender. Only
 * events sent with Partition::sendCancelable produce live tokens.
 */
struct RemoteHandle
{
    PartitionId dst = kNoPartition;
    std::uint32_t seq = 0;

    bool valid() const { return dst != kNoPartition; }
};

/** Per-partition counters, readable after Engine::run() returns. */
struct PartitionStats
{
    // Deterministic: pure functions of the simulation, identical at
    // any worker count. Safe to export into artifacts.
    std::uint64_t fired = 0;     ///< events executed
    std::uint64_t scheduled = 0; ///< local schedule()/scheduleIn() calls
    std::uint64_t sent = 0;      ///< payload messages sent
    std::uint64_t merged = 0;    ///< payload messages merged in
    std::uint64_t cancelsSent = 0;

    // Host-timing diagnostics: vary run to run and with worker
    // count. Never export these into deterministic artifacts.
    std::uint64_t nullPublishes = 0; ///< clock-only channel updates
    std::uint64_t stallRounds = 0;   ///< rounds gated by LBTS with work pending
};

/** Whole-engine aggregate of PartitionStats plus run-level counters. */
struct EngineStats
{
    std::uint64_t fired = 0;
    std::uint64_t scheduled = 0;
    std::uint64_t sent = 0;
    std::uint64_t merged = 0;
    std::uint64_t cancelsSent = 0;
    std::uint64_t nullPublishes = 0; ///< diagnostic (host-timing)
    std::uint64_t stallRounds = 0;   ///< diagnostic (host-timing)
    std::uint64_t gvtRescues = 0;    ///< diagnostic (host-timing)
    Tick finalTick = 0;              ///< deterministic: max partition time
    unsigned threads = 0;
    unsigned partitions = 0;
};

namespace detail {

/**
 * One directed src->dst link. The mailbox carries payloads; the clock
 * is the null-message channel: a conservative lower bound on the
 * timestamp of any message the source may still send. Producers push
 * under the mutex and only then advance the clock (release), so a
 * consumer that reads clock (acquire) before draining the mailbox is
 * guaranteed to see every message with a timestamp below that bound.
 */
struct ChannelMsg
{
    enum class Kind : std::uint8_t { Payload, Cancelable, Cancel };

    Tick when = 0;
    std::int32_t priority = 0;
    std::uint32_t seq = 0;    ///< sender-order sequence (tie-break key)
    std::uint32_t target = 0; ///< Cancel: seq of the cancelable payload
    Kind kind = Kind::Payload;
    std::function<void()> fn;
};

struct Channel
{
    PartitionId src = kNoPartition;
    PartitionId dst = kNoPartition;
    Tick lookahead = 0;
    std::atomic<Tick> clock{0};
    Mutex mu;
    std::vector<ChannelMsg> mailbox TB_GUARDED_BY(mu);
};

} // namespace detail

/**
 * One unit of sequential simulation: a slab EventQueue plus the
 * channel endpoints wired to it. All methods are owner-confined: call
 * them from setup code before Engine::run(), or from event callbacks
 * executing on this partition — never from another partition's
 * callbacks (that is what send() is for; tblint TBL022 enforces it).
 */
class Partition
{
  public:
    PartitionId id() const { return id_; }
    const std::string& name() const { return name_; }

    /** Current simulated time of this partition. */
    Tick now() const { return eq_->now(); }

    /**
     * Schedule a local event. Keyed by (this partition, local seq) so
     * ties against merged remote events break deterministically.
     */
    template <typename F>
    EventHandle
    schedule(Tick when, F&& f, int priority = 0)
    {
        ++stats_.scheduled;
        // External AND managed partitions delegate to the queue's own
        // schedule(): an external queue keys by insertion order, a
        // managed queue keys itself by (its stream, local order).
        if (kind_ != Kind::Owned)
            return eq_->schedule(when, std::forward<F>(f), priority);
        return eq_->scheduleKeyed(when, priority, id_, takeSeq(),
                                  std::forward<F>(f));
    }

    /** Schedule a local event @p delta ticks from now. */
    template <typename F>
    EventHandle
    scheduleIn(Tick delta, F&& f, int priority = 0)
    {
        return schedule(now() + delta, std::forward<F>(f), priority);
    }

    /**
     * Send an event to partition @p dst, to execute there at absolute
     * tick @p when. A channel this->dst must exist and @p when must
     * honor its lookahead: when >= now() + lookahead. This is the
     * only legal way to affect another partition.
     */
    void send(PartitionId dst, Tick when, std::function<void()> fn,
              int priority = 0);

    /** send() variant returning a token usable with cancel(). */
    RemoteHandle sendCancelable(PartitionId dst, Tick when,
                                std::function<void()> fn,
                                int priority = 0);

    /**
     * Cancel a cancelable cross-partition event. The cancel travels
     * the same channel as the original send (same lookahead bound)
     * and takes effect at tick @p when: it wins iff when is strictly
     * below the target's tick — at or after it, the target has
     * already fired (or fires first at an equal tick, since the
     * target's tie-break key is necessarily smaller) and the cancel
     * is a deterministic no-op, exactly like a late EventHandle
     * cancel in the serial engine.
     */
    void cancel(const RemoteHandle& h, Tick when);

    /** Lookahead of the channel this->dst (panics if none). */
    Tick lookaheadTo(PartitionId dst) const;

    /**
     * Owner-thread escape hatch: the raw EventQueue, for wiring model
     * objects that hold an EventQueue& into this partition. Touching
     * another partition's queue through this is a data race AND a
     * determinism bug — cross-partition work must use send(). tblint
     * rule TBL022 flags call sites outside src/sim/.
     */
    EventQueue& unsafeQueue() { return *eq_; }

    /** Counters for this partition (stable once Engine::run returns). */
    const PartitionStats& stats() const { return stats_; }

  private:
    friend class Engine;

    /** How the partition relates to its queue (see Engine factories). */
    enum class Kind : std::uint8_t
    {
        Owned,    ///< engine-owned queue, keyed via scheduleKeyed
        External, ///< foreign queue, plain insertion order, no channels
        Managed,  ///< foreign queue in keyed mode, full channel citizen
    };

    Partition(PartitionId id, std::string name, Kind kind,
              EventQueue* externalQueue);

    std::uint32_t takeSeq();
    detail::Channel& channelTo(PartitionId dst) const;
    void push(detail::Channel& c, detail::ChannelMsg&& m);

    static std::uint64_t
    remoteKey(PartitionId src, std::uint32_t seq)
    {
        return (std::uint64_t{src} << 32) | seq;
    }

    PartitionId id_;
    std::string name_;
    std::unique_ptr<EventQueue> owned_;
    EventQueue* eq_;
    Kind kind_;
    std::uint32_t nextSeq_ = 0;
    /** Input channels in creation order — the deterministic drain
     *  order (irrelevant to execution order thanks to keyed ties, but
     *  kept fixed so merge accounting is reproducible too). */
    std::vector<detail::Channel*> ins_;
    std::vector<detail::Channel*> outs_;
    /** Merged cancelable events awaiting fire or cancel, by
     *  (src, seq). Lookup-only (never iterated), so the unordered map
     *  cannot leak host ordering into results. */
    std::unordered_map<std::uint64_t, EventHandle> remotePending_;
    /** Scratch buffer the merge loop swaps mailboxes into. */
    std::vector<detail::ChannelMsg> mergeBuf_;
    PartitionStats stats_;
};

/**
 * The conservative engine: owns partitions and channels, runs the
 * LBTS-gated fire loops on a fixed worker pool. One-shot: build the
 * topology, seed initial events, call run() exactly once, then read
 * stats. Worker count never affects simulation results — only wall
 * time (see file comment for the argument).
 */
class Engine
{
  public:
    struct Config
    {
        /** Worker threads; clamped to [1, partition count]. */
        unsigned threads = 1;
    };

    Engine() = default;
    explicit Engine(Config cfg) : cfg_(cfg) {}

    Engine(const Engine&) = delete;
    Engine& operator=(const Engine&) = delete;

    /** Create a partition with its own slab EventQueue. */
    Partition& addPartition(std::string name);

    /**
     * Wrap an externally owned EventQueue (e.g. a Machine's) as a
     * partition. External partitions keep the queue's plain
     * insertion-order scheduling, so they cannot take channels:
     * connect() refuses them. They exist to run a whole sequential
     * model under the engine's worker pool and stats umbrella.
     */
    Partition& addExternalPartition(std::string name, EventQueue& eq);

    /**
     * Wrap an externally owned EventQueue as a *managed* partition: a
     * full channel citizen whose queue the model schedules into
     * directly. The queue must already be in keyed mode with its
     * stream equal to the partition id this call will assign (ids are
     * assigned densely in creation order), so locally scheduled events
     * and channel merges share one deterministic total order. This is
     * how the machine model's per-cluster queues become real engine
     * partitions (harness/parallel_sim.cc).
     */
    Partition& addManagedPartition(std::string name, EventQueue& eq);

    /**
     * Declare the directed channel src->dst with conservative
     * @p lookahead (> 0): every message on it must be timestamped at
     * least lookahead past the sender's clock at send time.
     */
    void connect(PartitionId src, PartitionId dst, Tick lookahead);

    Partition& partition(PartitionId id) { return *parts_.at(id); }
    std::size_t partitionCount() const { return parts_.size(); }

    /**
     * Run to global completion: every queue drained, every channel
     * empty. Blocks until done; one-shot.
     */
    void run();

    /** Aggregate counters; valid once run() has returned. */
    EngineStats stats() const;

  private:
    friend class Partition;

    bool step(Partition& p);
    void worker(unsigned tid, const std::vector<Partition*>& mine);
    void publishWake();

    /**
     * All-parked rescue: compute GVT, mark done or force-advance the
     * channel clocks past it. Caller holds monitorMu_ with every
     * other worker blocked in parkCv_ (their partitions' memory is
     * visible through the mutex and cannot be touched concurrently),
     * which is what makes scanning foreign queues here safe.
     */
    void rescueLocked();

    static Tick
    satAdd(Tick a, Tick b)
    {
        return a >= kTickNever - b ? kTickNever : a + b;
    }

    Config cfg_;
    std::vector<std::unique_ptr<Partition>> parts_;
    std::vector<std::unique_ptr<detail::Channel>> channels_;
    bool ran_ = false;
    unsigned threadsUsed_ = 0;

    // Park/wake monitor. std::mutex (not tb::Mutex) because the
    // condition variable needs it; the guarded fields below are only
    // touched with monitorMu_ held — documented confinement, same as
    // the other spots clang TSA cannot express (docs/CHECKING.md).
    std::mutex monitorMu_;
    std::condition_variable parkCv_;
    unsigned parkedWorkers_ = 0;     // guarded by monitorMu_
    std::uint64_t gvtRescues_ = 0;   // guarded by monitorMu_
    /** Bumped (seq_cst) on every clock publish and rescue; a worker
     *  only parks if it is unchanged since its fruitless sweep began
     *  (Dekker pairing with parkedWorkers_, see publishWake()). */
    std::atomic<std::uint64_t> wakeVersion_{0};
    std::atomic<unsigned> parkedPeek_{0};
    std::atomic<bool> done_{false};
};

} // namespace pdes
} // namespace tb

#endif // TB_SIM_PDES_HH_
