#include "fault/fault_spec.hh"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "sim/logging.hh"

namespace tb::fault {

namespace spec {

double
parseRate(const std::string& what, const std::string& key,
          const std::string& text)
{
    errno = 0;
    char* end = nullptr;
    double v = std::strtod(text.c_str(), &end);
    if (end == text.c_str() || *end != '\0' || errno == ERANGE)
        fatal(what, ": bad value '", text, "' for ", key,
              " (expected a number)");
    if (v < 0.0 || v > 1.0)
        fatal(what, ": ", key, "=", text,
              " out of range (rates are probabilities in [0, 1])");
    return v;
}

std::uint64_t
parseCount(const std::string& what, const std::string& key,
           const std::string& text)
{
    errno = 0;
    char* end = nullptr;
    unsigned long long v = std::strtoull(text.c_str(), &end, 10);
    if (end == text.c_str() || *end != '\0' || errno == ERANGE ||
        text.find('-') != std::string::npos)
        fatal(what, ": bad value '", text, "' for ", key,
              " (expected a non-negative integer)");
    return v;
}

std::string
renderRate(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%g", v);
    return buf;
}

std::vector<Pair>
splitPairs(const std::string& what, const std::string& text)
{
    if (text.empty())
        fatal(what, ": empty spec (expected key=value[,key=value...])");

    std::vector<Pair> out;
    std::size_t start = 0;
    while (start <= text.size()) {
        std::size_t comma = text.find(',', start);
        if (comma == std::string::npos)
            comma = text.size();
        const std::string pair = text.substr(start, comma - start);
        start = comma + 1;

        const std::size_t eq = pair.find('=');
        if (eq == std::string::npos || eq == 0 || eq + 1 >= pair.size())
            fatal(what, ": malformed entry '", pair,
                  "' (expected key=value)");
        Pair p;
        p.key = pair.substr(0, eq);
        p.value = pair.substr(eq + 1);
        const std::size_t colon = p.value.find(':');
        if (colon != std::string::npos) {
            p.arg = p.value.substr(colon + 1);
            p.value = p.value.substr(0, colon);
            if (p.value.empty() || p.arg.empty())
                fatal(what, ": malformed entry '", pair,
                      "' (expected key=value:arg)");
        }
        out.push_back(std::move(p));
    }
    return out;
}

} // namespace spec

namespace {

constexpr const char* kWhat = "fault spec";

/** Parse a non-negative number with optional ns/us/ms suffix. */
Tick
parseDuration(const std::string& key, const std::string& text)
{
    errno = 0;
    char* end = nullptr;
    double v = std::strtod(text.c_str(), &end);
    if (end == text.c_str() || errno == ERANGE || v < 0.0)
        fatal("fault spec: bad duration '", text, "' for ", key);
    double unit = 1.0; // raw ticks
    if (std::strcmp(end, "ns") == 0)
        unit = static_cast<double>(kNanosecond);
    else if (std::strcmp(end, "us") == 0)
        unit = static_cast<double>(kMicrosecond);
    else if (std::strcmp(end, "ms") == 0)
        unit = static_cast<double>(kMillisecond);
    else if (*end != '\0')
        fatal("fault spec: bad duration suffix '", end, "' for ", key,
              " (use ns, us, ms, or raw ticks)");
    return static_cast<Tick>(v * unit + 0.5);
}

/** Render a tick count with the largest exact unit suffix. */
std::string
renderDuration(Tick t)
{
    char buf[32];
    if (t != 0 && t % kMillisecond == 0)
        std::snprintf(buf, sizeof(buf), "%llums",
                      static_cast<unsigned long long>(t / kMillisecond));
    else if (t != 0 && t % kMicrosecond == 0)
        std::snprintf(buf, sizeof(buf), "%lluus",
                      static_cast<unsigned long long>(t / kMicrosecond));
    else if (t != 0 && t % kNanosecond == 0)
        std::snprintf(buf, sizeof(buf), "%lluns",
                      static_cast<unsigned long long>(t / kNanosecond));
    else
        std::snprintf(buf, sizeof(buf), "%llu",
                      static_cast<unsigned long long>(t));
    return buf;
}

} // namespace

bool
FaultSpec::enabled() const
{
    return dropWake > 0.0 || dupWake > 0.0 || delayWake > 0.0 ||
           timerDrift > 0.0 || timerFail > 0.0 || linkStall > 0.0 ||
           msgDelay > 0.0 || flushDelay > 0.0 || preempt > 0.0;
}

std::string
FaultSpec::summary() const
{
    std::string out = "seed=" + std::to_string(seed);
    auto rate = [&](const char* key, double v) {
        if (v > 0.0)
            out += std::string(",") + key + "=" + spec::renderRate(v);
    };
    auto rateDur = [&](const char* key, double v, Tick d) {
        if (v > 0.0)
            out += std::string(",") + key + "=" + spec::renderRate(v) +
                   ":" + renderDuration(d);
    };
    rate("drop-wake", dropWake);
    rateDur("dup-wake", dupWake, dupWakeDelay);
    rateDur("delay-wake", delayWake, delayWakeDelay);
    rate("timer-drift", timerDrift);
    rate("timer-fail", timerFail);
    rateDur("link-stall", linkStall, linkStallTicks);
    rateDur("msg-delay", msgDelay, msgDelayTicks);
    rateDur("flush-delay", flushDelay, flushDelayTicks);
    rateDur("preempt", preempt, preemptBurst);
    return out;
}

FaultSpec
FaultSpec::parse(const std::string& text)
{
    FaultSpec s;
    // Split on commas, then each pair on '=' and an optional ':'
    // (shared grammar primitives in fault::spec).
    for (const spec::Pair& p : spec::splitPairs(kWhat, text)) {
        const std::string& key = p.key;
        const std::string& value = p.value;
        const std::string& dur = p.arg;
        auto parseRate = [&](const std::string& k, const std::string& v) {
            return spec::parseRate(kWhat, k, v);
        };

        auto noDuration = [&]() {
            if (!dur.empty())
                fatal("fault spec: ", key,
                      " does not take a :duration suffix");
        };

        if (key == "seed") {
            noDuration();
            s.seed = spec::parseCount(kWhat, key, value);
        } else if (key == "all") {
            noDuration();
            double v = parseRate(key, value);
            s.dropWake = s.dupWake = s.delayWake = v;
            s.timerDrift = s.timerFail = v;
            s.linkStall = s.msgDelay = v;
            s.flushDelay = s.preempt = v;
        } else if (key == "drop-wake") {
            noDuration();
            s.dropWake = parseRate(key, value);
        } else if (key == "dup-wake") {
            s.dupWake = parseRate(key, value);
            if (!dur.empty())
                s.dupWakeDelay = parseDuration(key, dur);
        } else if (key == "delay-wake") {
            s.delayWake = parseRate(key, value);
            if (!dur.empty())
                s.delayWakeDelay = parseDuration(key, dur);
        } else if (key == "timer-drift") {
            noDuration();
            // Drift is a CV, not a probability, but values above 1
            // model a hopeless timer and stay meaningful; allow any
            // non-negative finite number.
            errno = 0;
            char* end = nullptr;
            double v = std::strtod(value.c_str(), &end);
            if (end == value.c_str() || *end != '\0' || errno == ERANGE ||
                v < 0.0)
                fatal("fault spec: bad value '", value,
                      "' for timer-drift");
            s.timerDrift = v;
        } else if (key == "timer-fail") {
            noDuration();
            s.timerFail = parseRate(key, value);
        } else if (key == "link-stall") {
            s.linkStall = parseRate(key, value);
            if (!dur.empty())
                s.linkStallTicks = parseDuration(key, dur);
        } else if (key == "msg-delay") {
            s.msgDelay = parseRate(key, value);
            if (!dur.empty())
                s.msgDelayTicks = parseDuration(key, dur);
        } else if (key == "flush-delay") {
            s.flushDelay = parseRate(key, value);
            if (!dur.empty())
                s.flushDelayTicks = parseDuration(key, dur);
        } else if (key == "preempt") {
            s.preempt = parseRate(key, value);
            if (!dur.empty())
                s.preemptBurst = parseDuration(key, dur);
        } else {
            fatal("fault spec: unknown key '", key,
                  "' (see docs/ROBUSTNESS.md for the spec grammar)");
        }
    }
    return s;
}

} // namespace tb::fault
