/**
 * @file
 * Seeded realization of a FaultSpec against one experiment.
 *
 * The injector owns a private Random stream (decoupled from the
 * workload's stream) and draws from it in the deterministic order the
 * single-threaded event loop consults the hooks, so a campaign replays
 * bit-identically from (spec, seed). Each hook only draws when its
 * rate is non-zero, keeping the draw sequences of unrelated fault
 * kinds independent: adding `link-stall` to a spec does not reshuffle
 * the wake-delivery faults.
 */

#ifndef TB_FAULT_FAULT_INJECTOR_HH_
#define TB_FAULT_FAULT_INJECTOR_HH_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "fault/fault_spec.hh"
#include "sim/fault_hooks.hh"
#include "sim/random.hh"

namespace tb::fault {

/** FaultHooks implementation driven by a FaultSpec. */
class FaultInjector : public FaultHooks
{
  public:
    explicit FaultInjector(const FaultSpec& spec)
        : s(spec), rng(spec.seed)
    {}

    const FaultSpec& spec() const { return s; }

    Tick linkStall(NodeId at, unsigned dim) override;
    Tick messageDelay(NodeId src, NodeId dst) override;
    WakeDeliveryFault wakeDelivery(NodeId node) override;
    bool wakeTimerFails(NodeId node) override;
    Tick wakeTimerSkew(NodeId node, Tick delta) override;
    Tick flushDelay(NodeId node, std::size_t lines) override;
    Tick preemptionBurst(NodeId node) override;

    /** Injected-fault counts by kind, in a stable report order. */
    std::vector<std::pair<std::string, std::uint64_t>> counters() const;

    /** Total faults injected across all kinds. */
    std::uint64_t total() const;

  private:
    FaultSpec s;
    Random rng;

    std::uint64_t nDropWake = 0;
    std::uint64_t nDupWake = 0;
    std::uint64_t nDelayWake = 0;
    std::uint64_t nTimerDrift = 0;
    std::uint64_t nTimerFail = 0;
    std::uint64_t nLinkStall = 0;
    std::uint64_t nMsgDelay = 0;
    std::uint64_t nFlushDelay = 0;
    std::uint64_t nPreempt = 0;
};

} // namespace tb::fault

#endif // TB_FAULT_FAULT_INJECTOR_HH_
