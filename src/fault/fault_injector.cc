#include "fault/fault_injector.hh"

namespace tb::fault {

Tick
FaultInjector::linkStall(NodeId at, unsigned dim)
{
    (void)at; (void)dim;
    if (s.linkStall <= 0.0 || !rng.chance(s.linkStall))
        return 0;
    ++nLinkStall;
    return s.linkStallTicks;
}

Tick
FaultInjector::messageDelay(NodeId src, NodeId dst)
{
    (void)src; (void)dst;
    if (s.msgDelay <= 0.0 || !rng.chance(s.msgDelay))
        return 0;
    ++nMsgDelay;
    return s.msgDelayTicks;
}

WakeDeliveryFault
FaultInjector::wakeDelivery(NodeId node)
{
    (void)node;
    WakeDeliveryFault f;
    // One perturbation per delivery, checked in severity order: a
    // dropped notification subsumes a duplicated or delayed one.
    if (s.dropWake > 0.0 && rng.chance(s.dropWake)) {
        ++nDropWake;
        f.drop = true;
        return f;
    }
    if (s.dupWake > 0.0 && rng.chance(s.dupWake)) {
        ++nDupWake;
        f.duplicate = true;
        f.delay = s.dupWakeDelay;
        return f;
    }
    if (s.delayWake > 0.0 && rng.chance(s.delayWake)) {
        ++nDelayWake;
        f.delay = s.delayWakeDelay;
        return f;
    }
    return f;
}

bool
FaultInjector::wakeTimerFails(NodeId node)
{
    (void)node;
    if (s.timerFail <= 0.0 || !rng.chance(s.timerFail))
        return false;
    ++nTimerFail;
    return true;
}

Tick
FaultInjector::wakeTimerSkew(NodeId node, Tick delta)
{
    (void)node;
    if (s.timerDrift <= 0.0)
        return delta;
    double factor = rng.lognormalMeanCv(1.0, s.timerDrift);
    Tick skewed = static_cast<Tick>(static_cast<double>(delta) * factor);
    if (skewed != delta)
        ++nTimerDrift;
    return skewed;
}

Tick
FaultInjector::flushDelay(NodeId node, std::size_t lines)
{
    (void)node;
    if (lines == 0 || s.flushDelay <= 0.0 || !rng.chance(s.flushDelay))
        return 0;
    ++nFlushDelay;
    return s.flushDelayTicks;
}

Tick
FaultInjector::preemptionBurst(NodeId node)
{
    (void)node;
    if (s.preempt <= 0.0 || !rng.chance(s.preempt))
        return 0;
    ++nPreempt;
    return s.preemptBurst;
}

std::vector<std::pair<std::string, std::uint64_t>>
FaultInjector::counters() const
{
    return {
        {"drop-wake", nDropWake},     {"dup-wake", nDupWake},
        {"delay-wake", nDelayWake},   {"timer-drift", nTimerDrift},
        {"timer-fail", nTimerFail},   {"link-stall", nLinkStall},
        {"msg-delay", nMsgDelay},     {"flush-delay", nFlushDelay},
        {"preempt", nPreempt},
    };
}

std::uint64_t
FaultInjector::total() const
{
    return nDropWake + nDupWake + nDelayWake + nTimerDrift + nTimerFail +
           nLinkStall + nMsgDelay + nFlushDelay + nPreempt;
}

} // namespace tb::fault
