/**
 * @file
 * Declarative description of a fault-injection campaign.
 *
 * A FaultSpec names the per-seam fault rates and magnitudes that a
 * FaultInjector realizes against one experiment. Specs round-trip
 * through a compact `key=value[:duration]` string so a failing seed
 * can be reproduced verbatim from a report or CI log:
 *
 *     seed=7,drop-wake=0.3,timer-drift=0.5,link-stall=0.05:2us
 *
 * See docs/ROBUSTNESS.md for the full grammar and fault model.
 */

#ifndef TB_FAULT_FAULT_SPEC_HH_
#define TB_FAULT_FAULT_SPEC_HH_

#include <cstdint>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace tb::fault {

/**
 * Shared primitives of the `key=value[:arg]` spec grammar, exposed so
 * other comma-separated spec strings (e.g. the service layer's
 * `--net-faults`) parse and diagnose exactly like `--faults` does.
 * Every function calls fatal() on malformed input; @p what names the
 * grammar in diagnostics ("fault spec", "net-faults spec", ...).
 */
namespace spec {

/** One `key=value[:arg]` entry of a comma-separated spec string. */
struct Pair
{
    std::string key;   ///< text before '='
    std::string value; ///< text between '=' and the optional ':'
    std::string arg;   ///< text after ':'; empty when absent
};

/** Split a spec string into pairs; fatal() on malformed entries. */
std::vector<Pair> splitPairs(const std::string& what,
                             const std::string& text);

/** Parse a rate in [0, 1]; fatal() on junk or out-of-range values. */
double parseRate(const std::string& what, const std::string& key,
                 const std::string& text);

/** Parse a non-negative decimal integer; fatal() on junk. */
std::uint64_t parseCount(const std::string& what, const std::string& key,
                         const std::string& text);

/** Render a rate the way summary() strings do (shortest %g form). */
std::string renderRate(double v);

} // namespace spec

/** Rates (probability per opportunity) and magnitudes of each fault. */
struct FaultSpec
{
    /** Seed of the injector's private random stream. */
    std::uint64_t seed = 1;

    /** Probability a flag-monitor wake-up notification is swallowed. */
    double dropWake = 0.0;
    /** Probability a wake-up notification is delivered twice. */
    double dupWake = 0.0;
    /** Gap between the original and the duplicated delivery. */
    Tick dupWakeDelay = 5 * kMicrosecond;
    /** Probability a wake-up notification is delayed. */
    double delayWake = 0.0;
    /** Amount a delayed wake-up notification is late by. */
    Tick delayWakeDelay = 20 * kMicrosecond;

    /** Wake-timer drift as a lognormal coefficient of variation of
     *  the programmed countdown (0 = perfect timer). */
    double timerDrift = 0.0;
    /** Probability an armed wake timer fails outright (never fires). */
    double timerFail = 0.0;

    /** Probability a link traversal hits an injected stall. */
    double linkStall = 0.0;
    /** Duration of one injected link stall. */
    Tick linkStallTicks = 2 * kMicrosecond;
    /** Probability a message suffers an end-to-end delay spike. */
    double msgDelay = 0.0;
    /** Size of one injected message-delay spike. */
    Tick msgDelayTicks = 5 * kMicrosecond;

    /** Probability a pre-sleep dirty-shared flush is slowed down. */
    double flushDelay = 0.0;
    /** Extra duration added to a slowed flush. */
    Tick flushDelayTicks = 10 * kMicrosecond;

    /** Probability of an OS-preemption burst at sleep exit. */
    double preempt = 0.0;
    /** Duration of one preemption burst. */
    Tick preemptBurst = 200 * kMicrosecond;

    /** True if any fault rate is non-zero. */
    bool enabled() const;

    /** Canonical spec string (parses back to an identical spec). */
    std::string summary() const;

    /**
     * Parse a spec string. Grammar: comma-separated `key=value` pairs
     * where rate-carrying keys accept an optional `:duration` suffix
     * (e.g.\ `link-stall=0.1:2us`). Durations take ns/us/ms suffixes
     * or raw ticks. `all=<rate>` sets every rate at once. Calls
     * fatal() on unknown keys, malformed numbers, or rates outside
     * [0, 1].
     */
    static FaultSpec parse(const std::string& text);
};

} // namespace tb::fault

#endif // TB_FAULT_FAULT_SPEC_HH_
