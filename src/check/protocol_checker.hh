/**
 * @file
 * Machine-checked global invariants over the coherence protocol.
 *
 * The thrifty barrier's correctness argument (Section 3.1 of the
 * paper) rests on the memory system staying live and coherent while
 * CPUs sleep in non-snooping states. The ProtocolChecker turns that
 * argument into continuously-enforced invariants by subscribing to
 * the observation hooks of the event queue, fabric, cache controllers,
 * directories and CPUs:
 *
 *  - SWMR: at most one node holds a line Exclusive/Modified, and never
 *    concurrently with a Shared copy elsewhere.
 *  - Directory-cache agreement: whenever a line's home closes a
 *    transaction, the sharer vector covers every cache-side copy
 *    (stale *extra* bits are legal -- clean lines drop silently), an
 *    Exclusive registration admits no foreign copy, and an Uncached
 *    line is cached nowhere.
 *  - Value consistency: a shadow memory image is advanced only at the
 *    protocol's serialization points (local write hit, directory
 *    grant, 3-hop owner serve, at-home fetch-op); every completed load
 *    and every fetch-op's read value must match it.
 *  - Event-queue discipline: nothing is scheduled in the past and
 *    events execute in strictly increasing (tick, priority, seq)
 *    order; schedule/execute/cancel accounting balances by the end of
 *    the run.
 *  - Sleep safety: entering a non-snooping state with a dirty
 *    shared-page line still cached is a violation (the pre-sleep
 *    flush must have drained them), and every intervention must be
 *    answered within a bounded tick budget even if the sleeping CPU
 *    has to be woken first.
 *  - Wake-up exclusivity: within one sleep episode the external
 *    (flag-invalidation) and internal (timer) wake-up mechanisms are
 *    mutually canceling -- both firing is a violation (Section 3.3.2).
 *
 * A violation panics with a ring-buffered trace of the protocol
 * events touching the offending line (or node), so a failure reads as
 * a transaction history rather than a bare assert. See
 * docs/CHECKING.md.
 *
 * The checker costs nothing unless attached: all hook sites in the
 * model are null-pointer branches.
 */

#ifndef TB_CHECK_PROTOCOL_CHECKER_HH_
#define TB_CHECK_PROTOCOL_CHECKER_HH_

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "mem/address_map.hh"
#include "mem/cache_controller.hh"
#include "mem/directory.hh"
#include "mem/mem_types.hh"
#include "mem/protocol_observer.hh"
#include "sim/event_queue.hh"
#include "sim/hooks.hh"
#include "sim/types.hh"

namespace tb {
namespace check {

/** Tuning knobs of one ProtocolChecker instance. */
struct CheckerConfig
{
    /** Nodes in the machine (bounds the sharer masks; <= 64). */
    unsigned numNodes = 1;
    /** Entries kept in the violation-trace ring buffer. */
    std::size_t traceDepth = 256;
    /**
     * Longest tolerated gap between an intervention reaching a
     * controller and its reply, covering a worst-case wake-up of the
     * deepest sleep state. Liveness bound for Section 3.1.
     */
    Tick interventionBudget = 2 * kMillisecond;
    /** Enforce the shadow-image value checks (on unless a workload
     *  writes the backend outside the protocol). */
    bool checkValues = true;
    /**
     * Liveness watchdog (docs/ROBUSTNESS.md): longest tolerated gap
     * between a dynamic barrier instance arming (first check-in) and
     * its release. 0 disables the per-instance budget; the end-of-run
     * armed-but-never-released audit always runs.
     */
    Tick barrierBudget = 0;
    /**
     * Longest tolerated sleep episode (enter to Active again).
     * 0 disables the budget; the end-of-run never-woke audit always
     * runs.
     */
    Tick sleepBudget = 0;
};

/** True when the build (TB_CHECK=ON) arms the checker by default. */
bool checkedByDefault();

/** One entry of the violation-trace ring buffer. */
struct TraceEntry
{
    enum class Kind : std::uint8_t
    {
        Send,    ///< message left a node
        Deliver, ///< message arrived
        Cache,   ///< cache-side line state change
        Dir,     ///< directory stable-state report
        Store,   ///< store serialized
        Rmw,     ///< fetch-op executed at home
        Wake,    ///< wake trigger fired
        Sleep,   ///< sleep episode opened/closed
        Barrier, ///< dynamic barrier instance armed/released
    };

    Tick tick = 0;
    Kind kind = Kind::Send;
    NodeId a = kInvalidNode; ///< acting node
    NodeId b = kInvalidNode; ///< peer node (messages only)
    mem::MsgType type = mem::MsgType::GetS;
    Addr line = 0;           ///< line (or word) address
    std::uint8_t state = 0;  ///< LineState / DirState / WakeReason
    std::uint64_t aux = 0;   ///< sharers / value / flags
};

/** The pluggable invariant checker. Attach with Machine::attachChecker
 *  (or setObserver/setCheckObserver on individual components). */
class ProtocolChecker : public mem::ProtocolObserver,
                        public EventQueueObserver,
                        public NocDeliveryAudit
{
  public:
    explicit ProtocolChecker(const CheckerConfig& config);

    /** Timestamp source for trace entries (optional but recommended). */
    void bindClock(const EventQueue* queue) { clock = queue; }

    /** Placement map enabling the dirty-shared sleep check. */
    void bindAddressMap(const mem::AddressMap* address_map)
    {
        map = address_map;
    }

    /**
     * End-of-run liveness audit: every intervention answered, event
     * accounting balanced. Call after the event queue drained.
     */
    void finalCheck();

    /** Messages observed through the fabric (send + deliver). */
    std::uint64_t messagesObserved() const { return messages; }

    /** Individual invariant evaluations performed so far. */
    std::uint64_t checksPerformed() const { return checks; }

    /** Render the ring-buffered trace for @p line (newest last). */
    std::string traceFor(Addr line) const;

    /** Render the ring-buffered trace for @p node's activity. */
    std::string traceForNode(NodeId node) const;

    // ------------------------------------------------------------------
    // mem::ProtocolObserver
    // ------------------------------------------------------------------

    void onMessageSent(NodeId from, NodeId to, const mem::Msg& msg,
                       bool to_directory) override;
    void onMessageDelivered(NodeId at, const mem::Msg& msg,
                            bool at_directory) override;
    void onCacheLineState(NodeId node, Addr line,
                          mem::LineState state) override;
    void onLoadValue(NodeId node, Addr addr,
                     std::uint64_t value) override;
    void onStoreSerialized(NodeId node, Addr addr,
                           std::uint64_t value) override;
    void onRmwSerialized(NodeId node, Addr addr, std::uint64_t old,
                         std::uint64_t now) override;
    void onInterventionReceived(NodeId node, Addr line) override;
    void onInterventionServed(NodeId node, Addr line) override;
    void onSnoopableChange(NodeId node, bool snoopable) override;
    void onWakeTrigger(NodeId node, mem::WakeReason reason) override;
    void onSleepEnter(NodeId node, bool snoopable_state) override;
    void onSleepExit(NodeId node) override;
    void onBarrierArmed(Addr flag_line, std::uint64_t instance) override;
    void onBarrierReleased(Addr flag_line,
                           std::uint64_t instance) override;
    void onDirStable(Addr line, mem::DirState state,
                     std::uint64_t sharers, NodeId owner) override;

    // ------------------------------------------------------------------
    // NocDeliveryAudit
    // ------------------------------------------------------------------

    /** Invariant: a delivery can never beat the network's own
     *  contention-free bound — the per-hop path only ever *adds*
     *  stalls to zeroLoadLatency. */
    void onNocDelivered(NodeId src, NodeId dst, unsigned bytes,
                        Tick sendTick, Tick deliverTick,
                        Tick zeroLoad) override;

    // ------------------------------------------------------------------
    // EventQueueObserver
    // ------------------------------------------------------------------

    void onSchedule(Tick when, int priority, std::uint64_t seq,
                    Tick now) override;
    void onExecute(Tick when, int priority, std::uint64_t seq) override;
    void onCancel(Tick when, std::uint64_t seq) override;
    void onDropDead(Tick when, std::uint64_t seq) override;

  private:
    /** Cache-side view of one line across all nodes (bit vectors). */
    struct LineShadow
    {
        std::uint64_t valid = 0; ///< nodes holding any copy
        std::uint64_t excl = 0;  ///< nodes holding E or M
        std::uint64_t mod = 0;   ///< nodes holding M
    };

    /** Per-node sleep/wake episode state. */
    struct NodeShadow
    {
        bool snoopable = true;
        bool inEpisode = false;
        bool externalFired = false;
        bool timerFired = false;
        Tick episodeStart = 0;
    };

    static std::uint64_t bit(NodeId n) { return std::uint64_t{1} << n; }

    Tick now() const { return clock ? clock->now() : 0; }

    void record(TraceEntry e);

    [[noreturn]] void lineViolation(Addr line, const std::string& what);
    [[noreturn]] void nodeViolation(NodeId node,
                                    const std::string& what);

    std::string renderEntry(const TraceEntry& e) const;

    CheckerConfig cfg;
    const EventQueue* clock = nullptr;
    const mem::AddressMap* map = nullptr;

    std::unordered_map<Addr, LineShadow> lines;
    std::unordered_map<Addr, std::uint64_t> shadowWords;
    std::vector<NodeShadow> nodes;
    std::map<std::pair<NodeId, Addr>, Tick> outstandingFwds;
    /** Armed-but-unreleased dynamic barrier instances -> arm tick. */
    std::map<std::pair<Addr, std::uint64_t>, Tick> armedBarriers;

    // Event-queue discipline.
    Tick lastExecWhen = 0;
    int lastExecPrio = 0;
    std::uint64_t lastExecSeq = 0;
    bool anyExecuted = false;
    std::int64_t liveEvents = 0;
    /** Canceled events whose dead heap entry has not been reaped yet
     *  (onCancel increments, onDropDead decrements). */
    std::int64_t canceledInFlight = 0;

    // Trace ring.
    std::vector<TraceEntry> ring;
    std::size_t ringNext = 0;
    bool ringWrapped = false;

    std::uint64_t messages = 0;
    std::uint64_t checks = 0;
};

} // namespace check
} // namespace tb

#endif // TB_CHECK_PROTOCOL_CHECKER_HH_
