#include "check/protocol_checker.hh"

#include <algorithm>
#include <iomanip>
#include <sstream>
#include <vector>

#include "sim/logging.hh"

namespace tb {
namespace check {

bool
checkedByDefault()
{
#ifdef TB_CHECK_DEFAULT_ON
    return true;
#else
    return false;
#endif
}

namespace {

const char*
dirStateName(mem::DirState s)
{
    switch (s) {
      case mem::DirState::Uncached:  return "Uncached";
      case mem::DirState::Shared:    return "Shared";
      case mem::DirState::Exclusive: return "Exclusive";
    }
    return "?";
}

std::string
hex(std::uint64_t v)
{
    std::ostringstream os;
    os << "0x" << std::hex << v;
    return os.str();
}

std::string
nodeName(NodeId n)
{
    return n == kInvalidNode ? std::string("-")
                             : "node" + std::to_string(n);
}

} // namespace

ProtocolChecker::ProtocolChecker(const CheckerConfig& config)
    : cfg(config)
{
    if (cfg.numNodes == 0 || cfg.numNodes > 64)
        fatal("ProtocolChecker supports 1..64 nodes, got ",
              cfg.numNodes);
    if (cfg.traceDepth == 0)
        cfg.traceDepth = 1;
    nodes.resize(cfg.numNodes);
    ring.resize(cfg.traceDepth);
}

void
ProtocolChecker::record(TraceEntry e)
{
    e.tick = now();
    ring[ringNext] = e;
    if (++ringNext == ring.size()) {
        ringNext = 0;
        ringWrapped = true;
    }
}

std::string
ProtocolChecker::renderEntry(const TraceEntry& e) const
{
    std::ostringstream os;
    os << "  [" << std::setw(12) << e.tick << "] ";
    switch (e.kind) {
      case TraceEntry::Kind::Send:
        os << "send    " << nodeName(e.a) << " -> " << nodeName(e.b)
           << (e.aux ? " (dir)" : "") << " "
           << mem::msgTypeName(e.type) << " line " << hex(e.line);
        break;
      case TraceEntry::Kind::Deliver:
        os << "deliver at " << nodeName(e.a)
           << (e.aux ? " (dir)" : "") << " "
           << mem::msgTypeName(e.type) << " line " << hex(e.line);
        break;
      case TraceEntry::Kind::Cache:
        os << "cache   " << nodeName(e.a) << " line " << hex(e.line)
           << " -> "
           << mem::lineStateName(static_cast<mem::LineState>(e.state));
        break;
      case TraceEntry::Kind::Dir:
        os << "dir     line " << hex(e.line) << " stable "
           << dirStateName(static_cast<mem::DirState>(e.state))
           << " sharers=" << hex(e.aux) << " owner=" << nodeName(e.b);
        break;
      case TraceEntry::Kind::Store:
        os << "store   " << nodeName(e.a) << " word " << hex(e.line)
           << " := " << e.aux;
        break;
      case TraceEntry::Kind::Rmw:
        os << "rmw     " << nodeName(e.a) << " word " << hex(e.line)
           << " := " << e.aux;
        break;
      case TraceEntry::Kind::Wake:
        os << "wake    " << nodeName(e.a) << " reason="
           << mem::wakeReasonName(
                  static_cast<mem::WakeReason>(e.state));
        break;
      case TraceEntry::Kind::Sleep:
        os << "sleep   " << nodeName(e.a)
           << (e.aux ? " enter" : " exit")
           << (e.kind == TraceEntry::Kind::Sleep && e.aux
                   ? (e.state ? " (snoopable)" : " (non-snooping)")
                   : "");
        break;
      case TraceEntry::Kind::Barrier:
        os << "barrier flag " << hex(e.line) << " instance " << e.aux
           << (e.state ? " released" : " armed");
        break;
    }
    return os.str();
}

std::string
ProtocolChecker::traceFor(Addr line) const
{
    const Addr l = mem::lineAddr(line);
    std::ostringstream os;
    os << "protocol trace for line " << hex(l) << ":\n";
    const std::size_t n = ring.size();
    const std::size_t count = ringWrapped ? n : ringNext;
    const std::size_t start = ringWrapped ? ringNext : 0;
    bool any = false;
    for (std::size_t i = 0; i < count; ++i) {
        const TraceEntry& e = ring[(start + i) % n];
        if (mem::lineAddr(e.line) != l)
            continue;
        os << renderEntry(e) << "\n";
        any = true;
    }
    if (!any)
        os << "  (no recorded events)\n";
    return os.str();
}

std::string
ProtocolChecker::traceForNode(NodeId node) const
{
    std::ostringstream os;
    os << "protocol trace for " << nodeName(node) << ":\n";
    const std::size_t n = ring.size();
    const std::size_t count = ringWrapped ? n : ringNext;
    const std::size_t start = ringWrapped ? ringNext : 0;
    bool any = false;
    for (std::size_t i = 0; i < count; ++i) {
        const TraceEntry& e = ring[(start + i) % n];
        if (e.a != node && e.b != node)
            continue;
        os << renderEntry(e) << "\n";
        any = true;
    }
    if (!any)
        os << "  (no recorded events)\n";
    return os.str();
}

void
ProtocolChecker::lineViolation(Addr line, const std::string& what)
{
    panic("protocol invariant violated at tick ", now(), ": ", what,
          "\n", traceFor(line));
}

void
ProtocolChecker::nodeViolation(NodeId node, const std::string& what)
{
    panic("protocol invariant violated at tick ", now(), ": ", what,
          "\n", traceForNode(node));
}

// ----------------------------------------------------------------------
// Fabric hooks
// ----------------------------------------------------------------------

void
ProtocolChecker::onMessageSent(NodeId from, NodeId to,
                               const mem::Msg& msg, bool to_directory)
{
    ++messages;
    TraceEntry e;
    e.kind = TraceEntry::Kind::Send;
    e.a = from;
    e.b = to;
    e.type = msg.type;
    e.line = msg.line;
    e.aux = to_directory ? 1 : 0;
    record(e);
}

void
ProtocolChecker::onMessageDelivered(NodeId at, const mem::Msg& msg,
                                    bool at_directory)
{
    ++messages;
    TraceEntry e;
    e.kind = TraceEntry::Kind::Deliver;
    e.a = at;
    e.type = msg.type;
    e.line = msg.line;
    e.aux = at_directory ? 1 : 0;
    record(e);
}

// ----------------------------------------------------------------------
// SWMR and directory agreement
// ----------------------------------------------------------------------

void
ProtocolChecker::onCacheLineState(NodeId node, Addr line,
                                  mem::LineState state)
{
    TraceEntry e;
    e.kind = TraceEntry::Kind::Cache;
    e.a = node;
    e.line = line;
    e.state = static_cast<std::uint8_t>(state);
    record(e);

    LineShadow& sh = lines[mem::lineAddr(line)];
    const std::uint64_t b = bit(node);
    if (state == mem::LineState::Invalid) {
        sh.valid &= ~b;
        sh.excl &= ~b;
        sh.mod &= ~b;
    } else {
        sh.valid |= b;
        if (state == mem::LineState::Exclusive ||
            state == mem::LineState::Modified) {
            sh.excl |= b;
        } else {
            sh.excl &= ~b;
        }
        if (state == mem::LineState::Modified)
            sh.mod |= b;
        else
            sh.mod &= ~b;
    }

    ++checks;
    if (sh.excl & (sh.excl - 1)) {
        lineViolation(line,
                      "SWMR: multiple exclusive owners of line " +
                          hex(mem::lineAddr(line)) + " (mask " +
                          hex(sh.excl) + ")");
    }
    if (sh.excl && (sh.valid & ~sh.excl)) {
        lineViolation(
            line, "SWMR: exclusive copy of line " +
                      hex(mem::lineAddr(line)) +
                      " coexists with shared copies (valid " +
                      hex(sh.valid) + ", exclusive " + hex(sh.excl) +
                      ")");
    }
}

void
ProtocolChecker::onDirStable(Addr line, mem::DirState state,
                             std::uint64_t sharers, NodeId owner)
{
    TraceEntry e;
    e.kind = TraceEntry::Kind::Dir;
    e.b = owner;
    e.line = line;
    e.state = static_cast<std::uint8_t>(state);
    e.aux = sharers;
    record(e);

    auto it = lines.find(mem::lineAddr(line));
    const LineShadow sh = it == lines.end() ? LineShadow{} : it->second;

    ++checks;
    switch (state) {
      case mem::DirState::Uncached:
        if (sh.valid) {
            lineViolation(line, "directory closed line " +
                                    hex(mem::lineAddr(line)) +
                                    " as Uncached but copies remain "
                                    "cached (mask " +
                                    hex(sh.valid) + ")");
        }
        break;
      case mem::DirState::Shared:
        if (sh.valid & ~sharers) {
            lineViolation(
                line, "stale sharer vector for line " +
                          hex(mem::lineAddr(line)) + ": cached mask " +
                          hex(sh.valid) +
                          " not covered by directory sharers " +
                          hex(sharers));
        }
        if (sh.excl) {
            lineViolation(line,
                          "directory believes line " +
                              hex(mem::lineAddr(line)) +
                              " is Shared but an exclusive copy "
                              "exists (mask " +
                              hex(sh.excl) + ")");
        }
        break;
      case mem::DirState::Exclusive:
        if (owner == kInvalidNode || owner >= cfg.numNodes) {
            lineViolation(line, "directory Exclusive registration of "
                                "line " +
                                    hex(mem::lineAddr(line)) +
                                    " names invalid owner");
        }
        if (sh.valid & ~bit(owner)) {
            lineViolation(
                line, "directory registered line " +
                          hex(mem::lineAddr(line)) + " Exclusive at " +
                          nodeName(owner) +
                          " but foreign copies exist (mask " +
                          hex(sh.valid) + ")");
        }
        break;
    }
}

// ----------------------------------------------------------------------
// Value consistency against the shadow image
// ----------------------------------------------------------------------

void
ProtocolChecker::onLoadValue(NodeId node, Addr addr,
                             std::uint64_t value)
{
    if (!cfg.checkValues)
        return;
    ++checks;
    const auto it = shadowWords.find(addr);
    const std::uint64_t expected =
        it == shadowWords.end() ? 0 : it->second;
    if (value != expected) {
        lineViolation(addr,
                      "load at " + nodeName(node) + " of word " +
                          hex(addr) + " returned " +
                          std::to_string(value) +
                          " but the last serialized write left " +
                          std::to_string(expected));
    }
}

void
ProtocolChecker::onStoreSerialized(NodeId node, Addr addr,
                                   std::uint64_t value)
{
    TraceEntry e;
    e.kind = TraceEntry::Kind::Store;
    e.a = node;
    e.line = addr;
    e.aux = value;
    record(e);
    if (cfg.checkValues)
        shadowWords[addr] = value;
}

void
ProtocolChecker::onRmwSerialized(NodeId node, Addr addr,
                                 std::uint64_t old, std::uint64_t now_v)
{
    TraceEntry e;
    e.kind = TraceEntry::Kind::Rmw;
    e.a = node;
    e.line = addr;
    e.aux = now_v;
    record(e);

    if (!cfg.checkValues)
        return;
    ++checks;
    const auto it = shadowWords.find(addr);
    const std::uint64_t expected =
        it == shadowWords.end() ? 0 : it->second;
    if (old != expected) {
        lineViolation(addr,
                      "atomic at " + nodeName(node) + " on word " +
                          hex(addr) + " observed " +
                          std::to_string(old) +
                          " but the last serialized write left " +
                          std::to_string(expected));
    }
    shadowWords[addr] = now_v;
}

// ----------------------------------------------------------------------
// Sleep safety
// ----------------------------------------------------------------------

void
ProtocolChecker::onInterventionReceived(NodeId node, Addr line)
{
    ++checks;
    const auto key = std::make_pair(node, mem::lineAddr(line));
    if (outstandingFwds.count(key)) {
        lineViolation(line, "overlapping interventions for line " +
                                hex(mem::lineAddr(line)) + " at " +
                                nodeName(node) +
                                " (home failed to serialize)");
    }
    outstandingFwds[key] = now();
}

void
ProtocolChecker::onInterventionServed(NodeId node, Addr line)
{
    ++checks;
    const auto key = std::make_pair(node, mem::lineAddr(line));
    const auto it = outstandingFwds.find(key);
    if (it == outstandingFwds.end()) {
        lineViolation(line, "intervention reply for line " +
                                hex(mem::lineAddr(line)) + " at " +
                                nodeName(node) +
                                " without a pending intervention");
    }
    const Tick waited = now() - it->second;
    outstandingFwds.erase(it);
    if (waited > cfg.interventionBudget) {
        lineViolation(
            line, "intervention for line " + hex(mem::lineAddr(line)) +
                      " at " + nodeName(node) + " took " +
                      std::to_string(waited) +
                      " ticks, beyond the liveness budget of " +
                      std::to_string(cfg.interventionBudget));
    }
}

void
ProtocolChecker::onSnoopableChange(NodeId node, bool snoopable)
{
    nodes.at(node).snoopable = snoopable;
    if (snoopable)
        return;
    // Entering a non-snooping state: the pre-sleep flush must have
    // written back every dirty line of a *shared* page -- a remote
    // GetS would otherwise stall on a core that cannot answer.
    if (!map)
        return;
    ++checks;
    const std::uint64_t b = bit(node);
    // Violations reach the report verbatim, so collect the offending
    // addresses and sort before emitting — the shadow map's traversal
    // order must not leak into artifacts.
    std::vector<Addr> dirty;
    // tblint-allow(TBL001): order laundered by the sort below
    for (const auto& [line, sh] : lines) {
        if ((sh.mod & b) && map->isShared(line))
            dirty.push_back(line);
    }
    std::sort(dirty.begin(), dirty.end());
    for (const Addr line : dirty) {
        lineViolation(line,
                      nodeName(node) +
                          " entered a non-snooping sleep state "
                          "still holding dirty shared line " +
                          hex(line));
    }
}

// ----------------------------------------------------------------------
// Wake-up exclusivity (paper Section 3.3.2)
// ----------------------------------------------------------------------

void
ProtocolChecker::onWakeTrigger(NodeId node, mem::WakeReason reason)
{
    TraceEntry e;
    e.kind = TraceEntry::Kind::Wake;
    e.a = node;
    e.state = static_cast<std::uint8_t>(reason);
    record(e);

    NodeShadow& ns = nodes.at(node);
    if (!ns.inEpisode)
        return;
    ++checks;
    if (reason == mem::WakeReason::ExternalFlag) {
        if (ns.timerFired) {
            nodeViolation(node,
                          "hybrid wake-up exclusivity: external flag "
                          "wake-up fired after the internal timer in "
                          "the same sleep episode of " +
                              nodeName(node));
        }
        ns.externalFired = true;
    } else if (reason == mem::WakeReason::Timer) {
        if (ns.externalFired) {
            nodeViolation(node,
                          "hybrid wake-up exclusivity: internal timer "
                          "fired after the external flag wake-up in "
                          "the same sleep episode of " +
                              nodeName(node));
        }
        ns.timerFired = true;
    }
}

void
ProtocolChecker::onSleepEnter(NodeId node, bool snoopable_state)
{
    TraceEntry e;
    e.kind = TraceEntry::Kind::Sleep;
    e.a = node;
    e.state = snoopable_state ? 1 : 0;
    e.aux = 1;
    record(e);

    NodeShadow& ns = nodes.at(node);
    ns.inEpisode = true;
    ns.externalFired = false;
    ns.timerFired = false;
    ns.episodeStart = now();
}

void
ProtocolChecker::onSleepExit(NodeId node)
{
    TraceEntry e;
    e.kind = TraceEntry::Kind::Sleep;
    e.a = node;
    e.aux = 0;
    record(e);

    NodeShadow& ns = nodes.at(node);
    if (ns.inEpisode && cfg.sleepBudget > 0) {
        ++checks;
        const Tick slept = now() - ns.episodeStart;
        if (slept > cfg.sleepBudget) {
            nodeViolation(node,
                          "liveness: sleep episode of " +
                              nodeName(node) + " lasted " +
                              std::to_string(slept) +
                              " ticks, beyond the budget of " +
                              std::to_string(cfg.sleepBudget));
        }
    }
    ns.inEpisode = false;
}

// ----------------------------------------------------------------------
// Barrier liveness (docs/ROBUSTNESS.md)
// ----------------------------------------------------------------------

void
ProtocolChecker::onBarrierArmed(Addr flag_line, std::uint64_t instance)
{
    TraceEntry e;
    e.kind = TraceEntry::Kind::Barrier;
    e.line = flag_line;
    e.aux = instance;
    e.state = 0;
    record(e);

    ++checks;
    const auto key = std::make_pair(mem::lineAddr(flag_line), instance);
    if (armedBarriers.count(key)) {
        lineViolation(flag_line,
                      "barrier instance " + std::to_string(instance) +
                          " on flag line " +
                          hex(mem::lineAddr(flag_line)) +
                          " armed twice");
    }
    armedBarriers[key] = now();
}

void
ProtocolChecker::onBarrierReleased(Addr flag_line, std::uint64_t instance)
{
    TraceEntry e;
    e.kind = TraceEntry::Kind::Barrier;
    e.line = flag_line;
    e.aux = instance;
    e.state = 1;
    record(e);

    ++checks;
    const auto key = std::make_pair(mem::lineAddr(flag_line), instance);
    const auto it = armedBarriers.find(key);
    if (it == armedBarriers.end()) {
        lineViolation(flag_line,
                      "barrier instance " + std::to_string(instance) +
                          " on flag line " +
                          hex(mem::lineAddr(flag_line)) +
                          " released without being armed");
    }
    const Tick waited = now() - it->second;
    armedBarriers.erase(it);
    if (cfg.barrierBudget > 0 && waited > cfg.barrierBudget) {
        lineViolation(
            flag_line,
            "liveness: barrier instance " + std::to_string(instance) +
                " on flag line " + hex(mem::lineAddr(flag_line)) +
                " took " + std::to_string(waited) +
                " ticks from arm to release, beyond the budget of " +
                std::to_string(cfg.barrierBudget));
    }
}

// ----------------------------------------------------------------------
// Event-queue discipline
// ----------------------------------------------------------------------

void
ProtocolChecker::onNocDelivered(NodeId src, NodeId dst, unsigned bytes,
                                Tick sendTick, Tick deliverTick,
                                Tick zeroLoad)
{
    ++checks;
    if (deliverTick < sendTick ||
        deliverTick - sendTick < zeroLoad) {
        nodeViolation(dst,
                      "NoC delivered a " + std::to_string(bytes) +
                          "-byte message from node " +
                          std::to_string(src) + " in " +
                          std::to_string(deliverTick - sendTick) +
                          " ticks, below its zero-load bound of " +
                          std::to_string(zeroLoad) +
                          " (per-hop routing lost latency)");
    }
}

void
ProtocolChecker::onSchedule(Tick when, int priority, std::uint64_t seq,
                            Tick now_t)
{
    ++checks;
    if (when < now_t) {
        panic("event-queue discipline: event seq ", seq,
              " scheduled at tick ", when,
              ", in the past of current tick ", now_t);
    }
    (void)priority;
    ++liveEvents;
}

void
ProtocolChecker::onExecute(Tick when, int priority, std::uint64_t seq)
{
    ++checks;
    if (anyExecuted) {
        const bool ordered =
            when > lastExecWhen ||
            (when == lastExecWhen &&
             (priority != lastExecPrio || seq > lastExecSeq));
        if (!ordered) {
            panic("event-queue discipline: event (tick ", when,
                  ", prio ", priority, ", seq ", seq,
                  ") executed after (tick ", lastExecWhen, ", prio ",
                  lastExecPrio, ", seq ", lastExecSeq,
                  ") -- total order broken");
        }
    }
    anyExecuted = true;
    lastExecWhen = when;
    lastExecPrio = priority;
    lastExecSeq = seq;
    --liveEvents;
}

void
ProtocolChecker::onCancel(Tick when, std::uint64_t seq)
{
    (void)when;
    (void)seq;
    --liveEvents;
    ++canceledInFlight;
}

void
ProtocolChecker::onDropDead(Tick when, std::uint64_t seq)
{
    ++checks;
    --canceledInFlight;
    if (canceledInFlight < 0) {
        panic("event-queue discipline: dead event (tick ", when,
              ", seq ", seq,
              ") dropped without a matching cancelation");
    }
}

// ----------------------------------------------------------------------
// End-of-run audit
// ----------------------------------------------------------------------

void
ProtocolChecker::finalCheck()
{
    ++checks;
    if (!armedBarriers.empty()) {
        const auto& [key, since] = *armedBarriers.begin();
        lineViolation(key.first,
                      "liveness: barrier instance " +
                          std::to_string(key.second) +
                          " on flag line " + hex(key.first) +
                          " (armed at tick " + std::to_string(since) +
                          ") was never released");
    }
    for (NodeId n = 0; n < nodes.size(); ++n) {
        if (nodes[n].inEpisode) {
            nodeViolation(n, "liveness: " + nodeName(n) +
                                 " entered a sleep episode at tick " +
                                 std::to_string(nodes[n].episodeStart) +
                                 " and never woke");
        }
    }
    if (!outstandingFwds.empty()) {
        const auto& [key, since] = *outstandingFwds.begin();
        lineViolation(key.second,
                      "liveness: intervention for line " +
                          hex(key.second) + " at " +
                          nodeName(key.first) +
                          " (received at tick " +
                          std::to_string(since) +
                          ") was never answered");
    }
    if (liveEvents != 0) {
        panic("event-queue discipline: ", liveEvents,
              " event(s) unaccounted for after the queue drained "
              "(schedule/execute/cancel imbalance)");
    }
    if (canceledInFlight != 0) {
        panic("event-queue discipline: ", canceledInFlight,
              " canceled event(s) never reaped from the queue "
              "(cancel/drop imbalance after drain)");
    }
}

} // namespace check
} // namespace tb
