/**
 * @file
 * Streaming JSON writer shared by every machine-readable emitter.
 *
 * Before the observability layer, three hand-rolled JSON emitters had
 * quietly diverged (result serde, campaign JSON, bench reports), each
 * with its own escaping and number-precision policy. JsonWriter is the
 * single policy point:
 *
 *  - escaping matches the campaign journal's historical policy
 *    (backslash-escape `"` `\` `\n` `\r` `\t`, \u00XX for other
 *    control characters), so existing journal files keep their bytes;
 *  - doubles render with the shortest decimal form that round-trips
 *    to the exact same bits (%.15g, widening to %.17g only when
 *    needed), so serialize/deserialize cycles are lossless without
 *    paying 17 digits for values like 0.25;
 *  - separators follow the repo-wide style: `"key": value, "k2": v2`.
 *
 * The writer is a thin state machine over an std::ostream — it tracks
 * only "does the next element need a comma" per nesting level, and
 * never buffers. Emitters that need whole-line atomicity (the journal)
 * render into an std::ostringstream first.
 */

#ifndef TB_OBS_JSON_WRITER_HH_
#define TB_OBS_JSON_WRITER_HH_

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

namespace tb {
namespace obs {

/** Shortest decimal form of @p v that strtod parses back bit-exact. */
std::string formatDouble(double v);

class JsonWriter
{
  public:
    explicit JsonWriter(std::ostream& os) : out(os) {}

    JsonWriter(const JsonWriter&) = delete;
    JsonWriter& operator=(const JsonWriter&) = delete;

    JsonWriter&
    beginObject()
    {
        sep();
        out << '{';
        needComma.push_back(false);
        return *this;
    }

    JsonWriter&
    endObject()
    {
        needComma.pop_back();
        out << '}';
        return *this;
    }

    JsonWriter&
    beginArray()
    {
        sep();
        out << '[';
        needComma.push_back(false);
        return *this;
    }

    JsonWriter&
    endArray()
    {
        needComma.pop_back();
        out << ']';
        return *this;
    }

    /** Emit a member key; the next value call supplies its value. */
    JsonWriter&
    key(std::string_view k)
    {
        sep();
        out << '"' << escape(k) << "\": ";
        afterKey = true;
        return *this;
    }

    JsonWriter&
    value(std::string_view v)
    {
        sep();
        out << '"' << escape(v) << '"';
        return *this;
    }

    JsonWriter& value(const char* v) { return value(std::string_view(v)); }

    JsonWriter&
    value(const std::string& v)
    {
        return value(std::string_view(v));
    }

    JsonWriter&
    value(bool v)
    {
        sep();
        out << (v ? "true" : "false");
        return *this;
    }

    /** Doubles use the shared shortest-round-trip policy; non-finite
     *  values (which JSON cannot represent) become null. */
    JsonWriter& value(double v);

    template <typename T,
              typename = std::enable_if_t<std::is_integral_v<T> &&
                                          !std::is_same_v<T, bool>>>
    JsonWriter&
    value(T v)
    {
        sep();
        if constexpr (std::is_signed_v<T>)
            out << static_cast<long long>(v);
        else
            out << static_cast<unsigned long long>(v);
        return *this;
    }

    JsonWriter&
    null()
    {
        sep();
        out << "null";
        return *this;
    }

    /** Emit @p text verbatim as one value (caller guarantees validity). */
    JsonWriter&
    raw(std::string_view text)
    {
        sep();
        out << text;
        return *this;
    }

    /** key() + value() in one call. */
    template <typename T>
    JsonWriter&
    field(std::string_view k, T&& v)
    {
        key(k);
        return value(std::forward<T>(v));
    }

    /**
     * Escape @p s for a JSON string body. Same policy the campaign
     * journal has always used: `"` `\` `\n` `\r` `\t` get two-char
     * escapes, other bytes below 0x20 become \u00XX.
     */
    static std::string escape(std::string_view s);

  private:
    void
    sep()
    {
        if (afterKey) {
            afterKey = false;
            return;
        }
        if (needComma.empty())
            return;
        if (needComma.back())
            out << ", ";
        else
            needComma.back() = true;
    }

    std::ostream& out;
    std::vector<char> needComma;
    bool afterKey = false;
};

} // namespace obs
} // namespace tb

#endif // TB_OBS_JSON_WRITER_HH_
