/**
 * @file
 * Structured tracing: typed events from the simulator's layers,
 * exported as Chrome trace_event JSON (viewable in Perfetto or
 * chrome://tracing).
 *
 * Each simulated layer owns one trace category:
 *
 *   sim      event-queue schedule / fire / cancel
 *   mem      coherence transactions (demand misses, RMWs, flushes)
 *   noc      network message hops
 *   thrifty  barrier episodes (arrive, sleep span, release)
 *
 * A TraceSink buffers rendered events in memory — one sink per
 * campaign point, with the point index as the Chrome `pid`, so a whole
 * campaign lands in one trace file with one "process" per point. The
 * per-run buffering is what keeps traces deterministic under
 * `--jobs N`: sinks are written out in point order after the campaign,
 * so the file bytes never depend on thread interleaving.
 *
 * Instrumentation seams hold a `TraceSink*` that is null when tracing
 * is off; the hot-path cost is one predicted-not-taken branch. When
 * the build disables tracing (`-DTB_TRACING=OFF`), `TB_TRACED()`
 * folds to `false` and the compiler drops the instrumentation blocks
 * entirely.
 *
 * Event volume is bounded per sink *per category* (sim events alone
 * can reach tens of millions in a figure-scale run): once a category
 * hits its cap, further events in that category are counted but
 * dropped, deterministically, and the exported trace carries a
 * `trace.truncated` marker with the drop count.
 */

#ifndef TB_OBS_TRACE_HH_
#define TB_OBS_TRACE_HH_

#include <cstdint>
#include <initializer_list>
#include <ostream>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/types.hh"

#ifndef TB_TRACING
#define TB_TRACING 1
#endif

/**
 * True when @p sink (a TraceSink*) is attached and has @p cat enabled.
 * Compiles to `false` when tracing is compiled out, letting the
 * optimizer delete the guarded block.
 */
#if TB_TRACING
#define TB_TRACED(sink, cat) ((sink) != nullptr && (sink)->enabled(cat))
#else
#define TB_TRACED(sink, cat) false
#endif

namespace tb {
namespace obs {

enum class TraceCategory : unsigned {
    Sim = 1u << 0,
    Mem = 1u << 1,
    Noc = 1u << 2,
    Thrifty = 1u << 3,
};

constexpr unsigned kAllTraceCategories = 0xF;

/** Lower-case category name as used in `--trace=FILE:cat,cat`. */
const char* categoryName(TraceCategory cat);

/**
 * Parse a comma-separated category list ("sim,thrifty") into a mask.
 * @return false (leaving @p mask untouched) on any unknown or empty
 *         category name.
 */
bool parseCategories(std::string_view spec, unsigned* mask);

/** One key/value pair in an event's `args` object. */
struct TraceArg
{
    enum class Kind : std::uint8_t { U64, F64, Str };

    template <typename T,
              typename = std::enable_if_t<std::is_integral_v<T>>>
    TraceArg(const char* k, T v)
        : key(k), kind(Kind::U64), u64(static_cast<std::uint64_t>(v))
    {}

    TraceArg(const char* k, double v) : key(k), kind(Kind::F64), f64(v) {}

    TraceArg(const char* k, const char* v)
        : key(k), kind(Kind::Str), str(v)
    {}

    TraceArg(const char* k, const std::string& v)
        : key(k), kind(Kind::Str), str(v)
    {}

    const char* key;
    Kind kind;
    std::uint64_t u64 = 0;
    double f64 = 0.0;
    std::string str;
};

/**
 * Buffers rendered trace events for one simulation run.
 *
 * Not thread-safe *by confinement*: like the EventQueue, one sink
 * belongs to one single-threaded simulation, so it carries no lock and
 * no TB_GUARDED_BY annotations (sim/thread_safety.hh) — parallel
 * campaigns give every point its own sink and merge under
 * ObsCapture's lock at deposit time. Ticks are picoseconds; Chrome
 * timestamps are microseconds, so events render `ts`/`dur` as
 * tick/1e6 with six decimals (exact at tick resolution).
 */
class TraceSink
{
  public:
    /** Default per-category event cap (see file comment). */
    static constexpr std::uint64_t kDefaultMaxEventsPerCategory =
        1u << 18;

    explicit TraceSink(unsigned categoryMask = kAllTraceCategories,
                       std::uint32_t pid = 0,
                       std::uint64_t maxEventsPerCategory =
                           kDefaultMaxEventsPerCategory)
        : mask(categoryMask), pid_(pid), maxPerCategory(
              maxEventsPerCategory)
    {}

    bool
    enabled(TraceCategory cat) const
    {
        return (mask & static_cast<unsigned>(cat)) != 0;
    }

    /** Instant event ("i" phase) at @p ts. */
    void
    instant(TraceCategory cat, const char* name, Tick ts,
            std::uint32_t tid, std::initializer_list<TraceArg> args = {})
    {
        event('i', cat, name, ts, 0, tid, args);
    }

    /** Complete event ("X" phase): a span [@p start, @p start+@p dur]. */
    void
    complete(TraceCategory cat, const char* name, Tick start, Tick dur,
             std::uint32_t tid,
             std::initializer_list<TraceArg> args = {})
    {
        event('X', cat, name, start, dur, tid, args);
    }

    std::uint32_t pid() const { return pid_; }

    /** Events buffered (post-cap). */
    std::uint64_t eventCount() const { return count; }

    /** Events dropped by the per-category cap. */
    std::uint64_t dropped() const { return droppedCount; }

    /** Rendered events, joined with ",\n" (no enclosing brackets). */
    const std::string& events() const { return buf; }

  private:
    void event(char ph, TraceCategory cat, const char* name, Tick ts,
               Tick dur, std::uint32_t tid,
               std::initializer_list<TraceArg> args);

    unsigned mask;
    std::uint32_t pid_;
    std::uint64_t maxPerCategory;
    std::uint64_t perCategory[4] = {0, 0, 0, 0};
    std::uint64_t count = 0;
    std::uint64_t droppedCount = 0;
    std::string buf;
};

/**
 * EventQueueObserver adapter emitting sim-category events, forwarding
 * every hook to an optional downstream observer (the protocol checker)
 * so tracing and checking compose.
 */
class TraceQueueObserver : public EventQueueObserver
{
  public:
    explicit TraceQueueObserver(TraceSink& s,
                                EventQueueObserver* chain = nullptr)
        : sink(&s), next(chain)
    {}

    void setNext(EventQueueObserver* chain) { next = chain; }

    void
    onSchedule(Tick when, int priority, std::uint64_t seq,
               Tick now) override
    {
        if (TB_TRACED(sink, TraceCategory::Sim)) {
            sink->instant(TraceCategory::Sim, "eq.schedule", now, 0,
                          {{"when", when}, {"seq", seq},
                           {"prio", static_cast<double>(priority)}});
        }
        if (next)
            next->onSchedule(when, priority, seq, now);
    }

    void
    onExecute(Tick when, int priority, std::uint64_t seq) override
    {
        if (TB_TRACED(sink, TraceCategory::Sim)) {
            sink->instant(TraceCategory::Sim, "eq.fire", when, 0,
                          {{"seq", seq}});
        }
        if (next)
            next->onExecute(when, priority, seq);
    }

    void
    onCancel(Tick when, std::uint64_t seq) override
    {
        if (TB_TRACED(sink, TraceCategory::Sim)) {
            sink->instant(TraceCategory::Sim, "eq.cancel", when, 0,
                          {{"seq", seq}});
        }
        if (next)
            next->onCancel(when, seq);
    }

    void
    onDropDead(Tick when, std::uint64_t seq) override
    {
        if (next)
            next->onDropDead(when, seq);
    }

  private:
    TraceSink* sink;
    EventQueueObserver* next;
};

/** One campaign point's worth of events for writeChromeTrace(). */
struct TraceChunk
{
    std::uint32_t pid = 0;
    std::string label;
    std::string events;
    std::uint64_t dropped = 0;
};

/**
 * Assemble chunks into one Chrome trace_event JSON document. Each
 * chunk gets a process_name metadata record so Perfetto shows its
 * label; a truncated chunk gets a `trace.truncated` marker carrying
 * the drop count.
 */
void writeChromeTrace(std::ostream& os,
                      const std::vector<TraceChunk>& chunks);

} // namespace obs
} // namespace tb

#endif // TB_OBS_TRACE_HH_
