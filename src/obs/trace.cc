#include "obs/trace.hh"

#include <cstdio>

#include "obs/json_writer.hh"

namespace tb {
namespace obs {

namespace {

/** Dense index of a (single-bit) category for the per-category caps. */
unsigned
categoryIndex(TraceCategory cat)
{
    switch (cat) {
      case TraceCategory::Sim:
        return 0;
      case TraceCategory::Mem:
        return 1;
      case TraceCategory::Noc:
        return 2;
      case TraceCategory::Thrifty:
        return 3;
    }
    return 0;
}

} // namespace

const char*
categoryName(TraceCategory cat)
{
    switch (cat) {
      case TraceCategory::Sim:
        return "sim";
      case TraceCategory::Mem:
        return "mem";
      case TraceCategory::Noc:
        return "noc";
      case TraceCategory::Thrifty:
        return "thrifty";
    }
    return "?";
}

bool
parseCategories(std::string_view spec, unsigned* mask)
{
    unsigned m = 0;
    std::size_t pos = 0;
    while (pos <= spec.size()) {
        const std::size_t comma = spec.find(',', pos);
        const std::string_view name = spec.substr(
            pos, comma == std::string_view::npos ? spec.size() - pos
                                                 : comma - pos);
        if (name == "sim")
            m |= static_cast<unsigned>(TraceCategory::Sim);
        else if (name == "mem")
            m |= static_cast<unsigned>(TraceCategory::Mem);
        else if (name == "noc")
            m |= static_cast<unsigned>(TraceCategory::Noc);
        else if (name == "thrifty")
            m |= static_cast<unsigned>(TraceCategory::Thrifty);
        else if (name == "all")
            m |= kAllTraceCategories;
        else
            return false;
        if (comma == std::string_view::npos)
            break;
        pos = comma + 1;
    }
    if (m == 0)
        return false;
    *mask = m;
    return true;
}

void
TraceSink::event(char ph, TraceCategory cat, const char* name, Tick ts,
                 Tick dur, std::uint32_t tid,
                 std::initializer_list<TraceArg> args)
{
    if (!enabled(cat))
        return;
    const unsigned idx = categoryIndex(cat);
    if (perCategory[idx] >= maxPerCategory) {
        ++droppedCount;
        return;
    }
    ++perCategory[idx];
    ++count;

    char head[192];
    int n = std::snprintf(
        head, sizeof(head),
        "{\"name\": \"%s\", \"cat\": \"%s\", \"ph\": \"%c\", "
        "\"ts\": %.6f, ",
        name, categoryName(cat), ph,
        static_cast<double>(ts) / 1e6);
    if (!buf.empty())
        buf += ",\n";
    buf.append(head, static_cast<std::size_t>(n));
    if (ph == 'X') {
        n = std::snprintf(head, sizeof(head), "\"dur\": %.6f, ",
                          static_cast<double>(dur) / 1e6);
        buf.append(head, static_cast<std::size_t>(n));
    }
    n = std::snprintf(head, sizeof(head), "\"pid\": %u, \"tid\": %u",
                      pid_, tid);
    buf.append(head, static_cast<std::size_t>(n));
    if (args.size() != 0) {
        buf += ", \"args\": {";
        bool first = true;
        for (const TraceArg& a : args) {
            if (!first)
                buf += ", ";
            first = false;
            buf += '"';
            buf += a.key;
            buf += "\": ";
            switch (a.kind) {
              case TraceArg::Kind::U64:
                n = std::snprintf(head, sizeof(head), "%llu",
                                  static_cast<unsigned long long>(
                                      a.u64));
                buf.append(head, static_cast<std::size_t>(n));
                break;
              case TraceArg::Kind::F64:
                buf += formatDouble(a.f64);
                break;
              case TraceArg::Kind::Str:
                buf += '"';
                buf += JsonWriter::escape(a.str);
                buf += '"';
                break;
            }
        }
        buf += '}';
    }
    buf += '}';
}

void
writeChromeTrace(std::ostream& os, const std::vector<TraceChunk>& chunks)
{
    os << "{\"displayTimeUnit\": \"ns\", \"traceEvents\": [\n";
    bool first = true;
    const auto emit = [&](const std::string& text) {
        if (!first)
            os << ",\n";
        first = false;
        os << text;
    };
    for (const TraceChunk& c : chunks) {
        char meta[160];
        std::snprintf(meta, sizeof(meta),
                      "{\"name\": \"process_name\", \"ph\": \"M\", "
                      "\"pid\": %u, \"tid\": 0, \"args\": {\"name\": "
                      "\"%s\"}}",
                      c.pid, JsonWriter::escape(c.label).c_str());
        emit(meta);
        if (!c.events.empty())
            emit(c.events);
        if (c.dropped != 0) {
            char note[160];
            std::snprintf(note, sizeof(note),
                          "{\"name\": \"trace.truncated\", \"ph\": "
                          "\"i\", \"ts\": 0, \"pid\": %u, \"tid\": 0, "
                          "\"s\": \"g\", \"args\": {\"dropped\": %llu}}",
                          c.pid,
                          static_cast<unsigned long long>(c.dropped));
            emit(note);
        }
    }
    os << "\n]}\n";
}

} // namespace obs
} // namespace tb
