#include "obs/json_writer.hh"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace tb {
namespace obs {

std::string
formatDouble(double v)
{
    char buf[40];
    for (int prec = 15; prec <= 17; ++prec) {
        std::snprintf(buf, sizeof(buf), "%.*g", prec, v);
        if (std::strtod(buf, nullptr) == v)
            break;
    }
    return buf;
}

JsonWriter&
JsonWriter::value(double v)
{
    if (!std::isfinite(v))
        return null();
    sep();
    out << formatDouble(v);
    return *this;
}

std::string
JsonWriter::escape(std::string_view s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned char>(c));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

} // namespace obs
} // namespace tb
