#include "obs/stat_writers.hh"

#include <iomanip>

namespace tb {
namespace obs {

void
TextStatWriter::beginGroup(const std::string& name)
{
    out << "---------- " << name << " ----------\n";
}

void
TextStatWriter::line(const std::string& name, double value)
{
    out << std::left << std::setw(44) << name << ' '
        << std::setprecision(12) << value << '\n';
}

void
TextStatWriter::scalar(const std::string& name, double value)
{
    line(name, value);
}

void
TextStatWriter::distribution(const std::string& name,
                             const stats::Distribution& d)
{
    out << std::left << std::setw(44) << (name + ".count") << ' '
        << d.count() << '\n';
    line(name + ".mean", d.mean());
    line(name + ".stddev", d.stddev());
    // Text convention: empty distributions report min/max as 0 (the
    // accessors' documented behaviour); JSON reports null instead.
    line(name + ".min", d.min());
    line(name + ".max", d.max());
}

void
JsonStatWriter::beginGroup(const std::string& name)
{
    json.key(name).beginObject();
}

void
JsonStatWriter::endGroup()
{
    json.endObject();
}

void
JsonStatWriter::scalar(const std::string& name, double value)
{
    json.field(name, value);
}

void
JsonStatWriter::distribution(const std::string& name,
                             const stats::Distribution& d)
{
    json.key(name).beginObject();
    json.field("count", d.count());
    json.field("total", d.total());
    json.field("mean", d.mean());
    json.field("stddev", d.stddev());
    if (d.count() == 0) {
        json.key("min").null();
        json.key("max").null();
    } else {
        json.field("min", d.min());
        json.field("max", d.max());
    }
    json.endObject();
}

} // namespace obs
} // namespace tb
