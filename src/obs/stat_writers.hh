/**
 * @file
 * Stat exporters built on the StatVisitor seam (sim/stats.hh).
 *
 * The stats package itself no longer renders anything; StatGroup only
 * exposes `visit(StatVisitor&)`, and these writers are the consumers:
 *
 *  - TextStatWriter reproduces the historical human-oriented report
 *    (left-aligned 44-column names, 12 significant digits, empty
 *    distributions print min/max as 0 — see docs/OBSERVABILITY.md);
 *  - JsonStatWriter emits machine-readable stats through a shared
 *    JsonWriter, where an empty distribution's min/max are `null`
 *    (0.0 would be indistinguishable from a real zero sample).
 */

#ifndef TB_OBS_STAT_WRITERS_HH_
#define TB_OBS_STAT_WRITERS_HH_

#include <ostream>
#include <string>
#include <vector>

#include "obs/json_writer.hh"
#include "sim/stats.hh"

namespace tb {
namespace obs {

/** Renders the classic text stat report. */
class TextStatWriter : public stats::StatVisitor
{
  public:
    explicit TextStatWriter(std::ostream& os) : out(os) {}

    void beginGroup(const std::string& name) override;
    void scalar(const std::string& name, double value) override;
    void distribution(const std::string& name,
                      const stats::Distribution& d) override;

  private:
    void line(const std::string& name, double value);

    std::ostream& out;
};

/**
 * Emits stats as JSON members on a caller-positioned JsonWriter: the
 * caller opens the enclosing object (and closes it afterwards), so
 * stats can be embedded in any larger document. Each group becomes a
 * nested object keyed by its name; each distribution an object with
 * count/total/mean/stddev/min/max.
 */
class JsonStatWriter : public stats::StatVisitor
{
  public:
    explicit JsonStatWriter(JsonWriter& w) : json(w) {}

    void beginGroup(const std::string& name) override;
    void endGroup() override;
    void scalar(const std::string& name, double value) override;
    void distribution(const std::string& name,
                      const stats::Distribution& d) override;

  private:
    JsonWriter& json;
};

/** Forwards every visit to each sink in turn (e.g. text + JSON). */
class TeeStatVisitor : public stats::StatVisitor
{
  public:
    explicit TeeStatVisitor(std::vector<stats::StatVisitor*> vs)
        : sinks(std::move(vs))
    {}

    void
    beginGroup(const std::string& name) override
    {
        for (auto* v : sinks)
            v->beginGroup(name);
    }

    void
    endGroup() override
    {
        for (auto* v : sinks)
            v->endGroup();
    }

    void
    scalar(const std::string& name, double value) override
    {
        for (auto* v : sinks)
            v->scalar(name, value);
    }

    void
    distribution(const std::string& name,
                 const stats::Distribution& d) override
    {
        for (auto* v : sinks)
            v->distribution(name, d);
    }

  private:
    std::vector<stats::StatVisitor*> sinks;
};

} // namespace obs
} // namespace tb

#endif // TB_OBS_STAT_WRITERS_HH_
