/**
 * @file
 * Append-only campaign journal: checkpoint/resume for sweep campaigns.
 *
 * A campaign writes one JSONL record per *completed* point — point
 * index, a caller-supplied config hash, the workload seed, an FNV-1a
 * checksum of the serialized result, and the result itself. An
 * interrupted campaign resumes by loading the journal and skipping
 * every point whose (index, config hash) matches a recorded entry;
 * the stored result is replayed verbatim, so the resumed final
 * artifact is byte-identical to an uninterrupted run.
 *
 * Records are flushed line-by-line as points complete, so a crash or
 * SIGKILL loses at most the in-flight points. A torn trailing line
 * (partial write) fails its checksum or parse and is simply ignored
 * on load — that point reruns.
 */

#ifndef TB_HARNESS_CAMPAIGN_JOURNAL_HH_
#define TB_HARNESS_CAMPAIGN_JOURNAL_HH_

#include <cstdint>
#include <cstdio>
#include <map>
#include <string>

#include "sim/thread_safety.hh"

namespace tb {
namespace harness {

/** FNV-1a 64-bit hash of @p data (config hashes, result checksums). */
std::uint64_t fnv1a64(const std::string& data);

/**
 * Write @p content to @p path atomically: write to `path.tmp`, flush,
 * then rename over the destination. Readers never observe a partial
 * artifact. Throws FatalError on I/O failure.
 */
void writeFileAtomic(const std::string& path, const std::string& content);

/** One completed point as recorded in the journal. */
struct JournalEntry
{
    std::uint64_t configHash = 0;
    std::uint64_t seed = 0;
    std::string result;
};

/** Append-only JSONL checkpoint of completed campaign points. */
class CampaignJournal
{
  public:
    CampaignJournal() = default;
    ~CampaignJournal();

    CampaignJournal(const CampaignJournal&) = delete;
    CampaignJournal& operator=(const CampaignJournal&) = delete;

    /**
     * Open the journal at @p path. With @p resume, existing records
     * are loaded (unparseable or checksum-failing lines are skipped)
     * and subsequent records append; without it any previous journal
     * is truncated. Throws FatalError when the file cannot be opened.
     */
    void open(const std::string& path, bool resume);

    /** Whether open() succeeded (journalling is optional). */
    bool active() const
    {
        LockGuard lock(mu_);
        return out_ != nullptr;
    }

    /** Journal file path ("" when inactive). */
    std::string path() const
    {
        LockGuard lock(mu_);
        return path_;
    }

    /**
     * Look up the recorded result of point @p index. Returns true and
     * fills @p result only when an entry exists *and* its config hash
     * matches — a journal written by a differently-configured campaign
     * (other sweep shape, other --quick) never satisfies a lookup.
     */
    bool lookup(std::size_t index, std::uint64_t configHash,
                std::string* result) const;

    /**
     * Record a completed point and flush it to disk. Thread-safe:
     * workers record concurrently, one line per call.
     */
    void record(std::size_t index, std::uint64_t configHash,
                std::uint64_t seed, const std::string& result);

    /** Entries loaded from a resumed journal. */
    std::size_t loaded() const
    {
        LockGuard lock(mu_);
        return loaded_;
    }

    /** Flush buffered records to disk (SIGINT path; also per-record). */
    void flush();

    /** Escape @p s for embedding in a JSON string literal. */
    static std::string escapeJson(const std::string& s);

  private:
    mutable Mutex mu_;
    std::string path_ TB_GUARDED_BY(mu_);
    std::FILE* out_ TB_GUARDED_BY(mu_) = nullptr;
    std::map<std::size_t, JournalEntry> entries_ TB_GUARDED_BY(mu_);
    std::size_t loaded_ TB_GUARDED_BY(mu_) = 0;
};

} // namespace harness
} // namespace tb

#endif // TB_HARNESS_CAMPAIGN_JOURNAL_HH_
