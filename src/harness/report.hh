/**
 * @file
 * Text rendering of the paper's tables and figures.
 *
 * Figures 5 and 6 are stacked normalized bars (energy / execution
 * time, five configurations per application, four segments per bar);
 * here they render as aligned tables plus ASCII stacked bars so the
 * bench binaries reproduce the same rows/series on a terminal.
 */

#ifndef TB_HARNESS_REPORT_HH_
#define TB_HARNESS_REPORT_HH_

#include <ostream>
#include <string>
#include <vector>

#include "harness/experiment.hh"
#include "obs/json_writer.hh"

namespace tb {
namespace harness {
namespace report {

/** Print the Table 1 architecture banner for @p sys. */
void printArchitecture(std::ostream& os, const SystemConfig& sys);

/**
 * Print one application's normalized breakdown (one row per
 * configuration). @p results must contain the Baseline run; every
 * row is normalized to it. @p use_energy selects Figure 5 (energy)
 * vs Figure 6 (time).
 */
void printBreakdownGroup(std::ostream& os,
                         const std::vector<ExperimentResult>& results,
                         bool use_energy);

/** ASCII stacked bar (#=Compute %=Spin +=Transition .=Sleep). */
void printStackedBars(std::ostream& os,
                      const std::vector<ExperimentResult>& results,
                      bool use_energy, unsigned width = 60);

/**
 * Headline summary (Section 5.1): average energy saving and slowdown
 * vs Baseline per configuration, over the given apps.
 * @p groups is one vector of results (including Baseline) per app.
 */
void printSummary(
    std::ostream& os,
    const std::vector<std::vector<ExperimentResult>>& groups,
    const std::vector<std::string>& apps_included);

/** Normalized total (percent of Baseline) for one result. */
double normalizedTotal(const ExperimentResult& r,
                       const ExperimentResult& baseline,
                       bool use_energy);

/** Find the Baseline entry in a result group. */
const ExperimentResult&
baselineOf(const std::vector<ExperimentResult>& results);

/**
 * Emit one result as a JSON object (machine-readable output for the
 * CLI tool and external plotting scripts). Runs with fault injection
 * carry a "faults" object (spec + per-kind injection counts) and the
 * degradation counters appear under "sync".
 */
void printJson(std::ostream& os, const ExperimentResult& r);

/**
 * Emit @p r's members into a caller-opened JSON object on @p w (the
 * body of printJson, reusable inside larger documents).
 */
void writeResultJson(obs::JsonWriter& w, const ExperimentResult& r);

/** Emit the synchronization counters as a `"sync"` member object. */
void writeSyncJson(obs::JsonWriter& w, const thrifty::SyncStats& s);

/**
 * Emit one barrier sleep episode (the --stats-json prediction ledger,
 * docs/OBSERVABILITY.md) as a JSON object.
 */
void writeEpisodeJson(obs::JsonWriter& w,
                      const thrifty::BarrierEpisode& ep);

/**
 * Human-readable fault/degradation summary for one injected run:
 * the realized spec, per-kind injection counts and how far down the
 * degradation ladder (docs/ROBUSTNESS.md) the runtime had to go.
 * No-op when the run had no fault injection.
 */
void printFaultSummary(std::ostream& os, const ExperimentResult& r);

} // namespace report
} // namespace harness
} // namespace tb

#endif // TB_HARNESS_REPORT_HH_
