/**
 * @file
 * Experiment runner: executes one (application, configuration) pair on
 * a fresh machine and collects the measurements that Figures 5/6 and
 * Table 2 are built from.
 */

#ifndef TB_HARNESS_EXPERIMENT_HH_
#define TB_HARNESS_EXPERIMENT_HH_

#include <array>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "fault/fault_spec.hh"
#include "harness/machine.hh"
#include "thrifty/barrier.hh"
#include "thrifty/thrifty_config.hh"
#include "thrifty/thrifty_runtime.hh"
#include "workloads/app_profile.hh"
#include "workloads/synthetic_program.hh"

namespace tb {
namespace harness {

/** The five evaluated configurations of Section 5.1. */
enum class ConfigKind
{
    Baseline,    ///< conventional barriers (B)
    ThriftyHalt, ///< thrifty, Halt only (H)
    OracleHalt,  ///< perfect prediction, Halt only (O)
    Thrifty,     ///< thrifty, all three states (T)
    Ideal,       ///< perfect prediction, all states, no flush (I)
};

/** Long name ("Thrifty-Halt") of a configuration. */
const char* configName(ConfigKind k);

/** One-letter label used in the figures (B/H/O/T/I). */
const char* configLetter(ConfigKind k);

/** Thrifty configuration backing @p k (not valid for Baseline). */
thrifty::ThriftyConfig thriftyConfigFor(ConfigKind k);

/** Measurements from one run. */
struct ExperimentResult
{
    std::string app;
    std::string config;
    /** Wall-clock of the parallel section (last thread finish). */
    Tick execTime = 0;
    /** Machine-wide energy per bucket, joules. */
    std::array<double, power::kNumBuckets> energy{};
    /** Machine-wide CPU-time per bucket, ticks. */
    std::array<Tick, power::kNumBuckets> time{};
    /** Synchronization statistics (and optional trace). */
    thrifty::SyncStats sync;
    /** Participating threads. */
    unsigned threads = 0;
    /** Canonical fault spec of the run (empty: no injection). */
    std::string faultSpec;
    /** Faults injected by kind (empty: no injection). */
    std::vector<std::pair<std::string, std::uint64_t>> faultCounts;

    /** Total faults injected across all kinds. */
    std::uint64_t
    faultsInjected() const
    {
        std::uint64_t t = 0;
        for (const auto& [kind_, n] : faultCounts)
            t += n;
        return t;
    }

    double
    totalEnergy() const
    {
        double t = 0;
        for (double e : energy)
            t += e;
        return t;
    }

    /**
     * Barrier imbalance: aggregate stall time over aggregate thread
     * execution time (the Table 2 metric).
     */
    double
    imbalance() const
    {
        if (execTime == 0 || threads == 0)
            return 0.0;
        return sync.totalStallTicks /
               (static_cast<double>(execTime) * threads);
    }
};

/**
 * BarrierProvider creating Baseline or thrifty barriers on demand,
 * one per static PC, all sharing one runtime.
 */
class ConfigBarrierProvider : public workloads::BarrierProvider
{
  public:
    /**
     * @param machine Machine to build barriers in.
     * @param kind    Which configuration's barriers to produce.
     * @param custom  When non-null, overrides the preset thrifty
     *                configuration (ablations); ignored for Baseline.
     * @param stats   Stats sink shared by all barriers.
     */
    ConfigBarrierProvider(Machine& machine, ConfigKind kind,
                          const thrifty::ThriftyConfig* custom,
                          thrifty::SyncStats& stats);

    thrifty::Barrier& barrierFor(thrifty::BarrierPc pc) override;

    /**
     * Fold every barrier's per-thread stat shards into the shared
     * SyncStats. Call after the machine's queues are drained, before
     * reading the stats.
     */
    void mergeStats();

    /** The shared thrifty runtime (null for Baseline). */
    thrifty::ThriftyRuntime* runtime() { return rt.get(); }

  private:
    Machine& m;
    ConfigKind kind;
    thrifty::SyncStats& stats;
    std::unique_ptr<thrifty::ThriftyRuntime> rt;
    std::map<thrifty::BarrierPc, std::unique_ptr<thrifty::Barrier>>
        barriers;
};

/** Options for one experiment run. */
struct RunOptions
{
    bool trace = false; ///< record the per-departure barrier trace
    /**
     * Arm the protocol invariant checker for this run (forced on;
     * TB_CHECK=ON builds arm it even when false). Violations panic
     * with a protocol trace.
     */
    bool check = false;
    /** Override the preset thrifty configuration (ablations). */
    const thrifty::ThriftyConfig* customConfig = nullptr;
    /**
     * When set, walk all component statistics through this visitor
     * after the run (renderers live in src/obs/stat_writers.hh).
     */
    stats::StatVisitor* statsVisitor = nullptr;
    /**
     * When set, attach this structured-trace sink to the machine
     * (network, cache controllers, event queue) and the thrifty
     * runtime for the duration of the run. Must outlive the call.
     */
    obs::TraceSink* traceSink = nullptr;
    /**
     * Record one BarrierEpisode per completed sleep episode into
     * ExperimentResult::sync.episodes (predicted vs. actual BIT,
     * chosen state, flush cost, wake source).
     */
    bool episodeLedger = false;
    /**
     * When set (and enabled), realize this fault spec against the
     * machine. Unless a custom config is supplied, the thrifty
     * runtime's hardening guard rails are switched on automatically —
     * faults without graceful degradation deadlock by design.
     */
    const fault::FaultSpec* faults = nullptr;
    /**
     * Liveness budget for the checker's barrier/sleep watchdogs, in
     * ticks (0 = end-of-run audits only). Only meaningful when the
     * checker is armed.
     */
    Tick livenessBudget = 0;
    /**
     * Worker threads driving this one simulation through the
     * conservative PDES engine (harness/parallel_sim.hh); 1 = the
     * serial reference engine. Never affects results — stats, traces
     * and artifacts are byte-identical at any value — so it is NOT
     * part of the experiment's identity (config hashes, journals and
     * result caches ignore it, exactly like --jobs).
     */
    unsigned simThreads = 1;
    /**
     * Cluster partitions the machine is split into for PDES execution
     * (harness/machine.hh); 0 picks the default for the node count
     * (nodes/8 for machines of 16+ nodes, else 1). Unlike simThreads,
     * the partition count IS part of the simulation plan: serial and
     * partitioned plans order some bookkeeping differently (see
     * docs/PERFORMANCE.md), so runs only promise byte-identical
     * results across simThreads *within* one partition count. Runs
     * that need the serial plan (checker, fault injection, structured
     * tracing, hardening) force 1 regardless.
     */
    unsigned simPartitions = 0;
};

/**
 * Run @p app under configuration @p kind on a fresh machine built
 * from @p sys.
 */
ExperimentResult runExperiment(const SystemConfig& sys,
                               const workloads::AppProfile& app,
                               ConfigKind kind,
                               const RunOptions& options = {});

} // namespace harness
} // namespace tb

#endif // TB_HARNESS_EXPERIMENT_HH_
