#include "harness/campaign_journal.hh"

#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <fstream>

#include "obs/json_writer.hh"
#include "sim/logging.hh"

namespace tb {
namespace harness {

std::uint64_t
fnv1a64(const std::string& data)
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (unsigned char c : data) {
        h ^= c;
        h *= 0x100000001b3ull;
    }
    return h;
}

void
writeFileAtomic(const std::string& path, const std::string& content)
{
    const std::string tmp = path + ".tmp";
    {
        std::FILE* f = std::fopen(tmp.c_str(), "wb");
        if (!f)
            fatal("cannot write ", tmp, ": ", errnoMessage(errno));
        const bool ok =
            std::fwrite(content.data(), 1, content.size(), f) ==
                content.size() &&
            std::fflush(f) == 0;
        std::fclose(f);
        if (!ok)
            fatal("short write to ", tmp, ": ", errnoMessage(errno));
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0)
        fatal("cannot rename ", tmp, " -> ", path, ": ",
              errnoMessage(errno));
}

std::string
CampaignJournal::escapeJson(const std::string& s)
{
    // The journal's historical escape policy is the repo-wide one now:
    // obs::JsonWriter adopted it verbatim, so existing journal files
    // keep their bytes.
    return obs::JsonWriter::escape(s);
}

namespace {

/** Unescape a JSON string body; false on a malformed escape. */
bool
unescapeJson(const std::string& s, std::string* out)
{
    out->clear();
    out->reserve(s.size());
    for (std::size_t i = 0; i < s.size(); ++i) {
        if (s[i] != '\\') {
            *out += s[i];
            continue;
        }
        if (++i >= s.size())
            return false;
        switch (s[i]) {
          case '"':  *out += '"'; break;
          case '\\': *out += '\\'; break;
          case 'n':  *out += '\n'; break;
          case 'r':  *out += '\r'; break;
          case 't':  *out += '\t'; break;
          case 'u': {
            if (i + 4 >= s.size())
                return false;
            unsigned v = 0;
            for (int k = 0; k < 4; ++k) {
                const char c = s[++i];
                v <<= 4;
                if (c >= '0' && c <= '9')
                    v |= static_cast<unsigned>(c - '0');
                else if (c >= 'a' && c <= 'f')
                    v |= static_cast<unsigned>(c - 'a' + 10);
                else if (c >= 'A' && c <= 'F')
                    v |= static_cast<unsigned>(c - 'A' + 10);
                else
                    return false;
            }
            *out += static_cast<char>(v);
            break;
          }
          default:
            return false;
        }
    }
    return true;
}

/**
 * Pull one field out of a journal line we wrote ourselves. Numbers
 * are matched after `"key": `; strings additionally skip the opening
 * quote. Returns the offset just past the key prelude, or npos.
 */
std::size_t
fieldStart(const std::string& line, const char* key, bool string_field)
{
    const std::string pat = std::string("\"") + key + "\": ";
    const std::size_t at = line.find(pat);
    if (at == std::string::npos)
        return std::string::npos;
    std::size_t off = at + pat.size();
    if (string_field) {
        if (off >= line.size() || line[off] != '"')
            return std::string::npos;
        ++off;
    }
    return off;
}

bool
parseU64Field(const std::string& line, const char* key, int base,
              std::uint64_t* out)
{
    const std::size_t off = fieldStart(line, key, base == 16);
    if (off == std::string::npos)
        return false;
    errno = 0;
    char* end = nullptr;
    const unsigned long long v =
        std::strtoull(line.c_str() + off, &end, base);
    if (end == line.c_str() + off || errno == ERANGE)
        return false;
    *out = v;
    return true;
}

/** Parse one journal line; false (= skip it) on any malformation. */
bool
parseLine(const std::string& line, std::size_t* index, JournalEntry* e)
{
    std::uint64_t point = 0, cfg = 0, seed = 0, sum = 0;
    if (!parseU64Field(line, "point", 10, &point) ||
        !parseU64Field(line, "config", 16, &cfg) ||
        !parseU64Field(line, "seed", 10, &seed) ||
        !parseU64Field(line, "checksum", 16, &sum))
        return false;
    const std::size_t off = fieldStart(line, "result", true);
    // The result string is the last field: the line must end `"}`.
    if (off == std::string::npos || line.size() < off + 2 ||
        line.compare(line.size() - 2, 2, "\"}") != 0)
        return false;
    std::string body;
    if (!unescapeJson(line.substr(off, line.size() - 2 - off), &body))
        return false;
    if (fnv1a64(body) != sum)
        return false;
    *index = static_cast<std::size_t>(point);
    e->configHash = cfg;
    e->seed = seed;
    e->result = std::move(body);
    return true;
}

} // namespace

CampaignJournal::~CampaignJournal()
{
    LockGuard lock(mu_);
    if (out_)
        std::fclose(out_);
}

void
CampaignJournal::open(const std::string& path, bool resume)
{
    LockGuard lock(mu_);
    path_ = path;
    entries_.clear();
    loaded_ = 0;

    if (resume) {
        std::ifstream in(path);
        std::string line;
        while (in && std::getline(in, line)) {
            std::size_t index = 0;
            JournalEntry e;
            if (!parseLine(line, &index, &e))
                continue; // torn/partial line: not yet recorded
            // A point may legitimately appear twice (crash between
            // write and rename, journal shared across resumes) but
            // only with identical content. Conflicting entries mean
            // two campaigns — or two concurrent daemons — shared this
            // journal file, and silently keeping either one would
            // poison every later resume.
            const auto it = entries_.find(index);
            if (it != entries_.end()) {
                char a[17], b[17];
                std::snprintf(a, sizeof(a), "%016" PRIx64,
                              it->second.configHash);
                std::snprintf(b, sizeof(b), "%016" PRIx64,
                              e.configHash);
                if (it->second.configHash != e.configHash) {
                    fatal("journal ", path, ": point ", index,
                          " recorded under conflicting config hashes ",
                          a, " and ", b,
                          " — this journal was shared by two "
                          "different campaigns (concurrent writers?); "
                          "delete it or give each campaign its own "
                          "--journal file");
                }
                if (it->second.result != e.result) {
                    fatal("journal ", path, ": point ", index,
                          " (config ", a,
                          ") recorded twice with different results — "
                          "concurrent writers or a nondeterministic "
                          "point; this journal cannot be trusted for "
                          "--resume");
                }
            }
            if (it == entries_.end())
                ++loaded_;
            entries_[index] = std::move(e);
        }
    }

    // Append on resume; truncate otherwise. Loaded entries stay on
    // disk untouched — the journal only ever grows within one run.
    out_ = std::fopen(path.c_str(), resume ? "ab" : "wb");
    if (!out_)
        fatal("cannot open journal ", path, ": ",
              errnoMessage(errno));
}

bool
CampaignJournal::lookup(std::size_t index, std::uint64_t configHash,
                        std::string* result) const
{
    LockGuard lock(mu_);
    const auto it = entries_.find(index);
    if (it == entries_.end() || it->second.configHash != configHash)
        return false;
    *result = it->second.result;
    return true;
}

void
CampaignJournal::record(std::size_t index, std::uint64_t configHash,
                        std::uint64_t seed, const std::string& result)
{
    LockGuard lock(mu_);
    if (!out_)
        return;
    entries_[index] = JournalEntry{configHash, seed, result};
    std::fprintf(
        out_,
        "{\"point\": %zu, \"config\": \"%016" PRIx64
        "\", \"seed\": %" PRIu64 ", \"checksum\": \"%016" PRIx64
        "\", \"result\": \"%s\"}\n",
        index, configHash, seed, fnv1a64(result),
        escapeJson(result).c_str());
    std::fflush(out_);
}

void
CampaignJournal::flush()
{
    LockGuard lock(mu_);
    if (out_)
        std::fflush(out_);
}

} // namespace harness
} // namespace tb
