/**
 * @file
 * Multi-threaded single-simulation driver: runs one Machine under the
 * conservative PDES engine (sim/pdes.hh), selected by --sim-threads N
 * (workers) and --sim-partitions P (clusters) in thrifty_sim and the
 * campaign CLI.
 *
 * A partitioned Machine (harness/machine.hh) splits its nodes into
 * contiguous power-of-two clusters, one event queue each; this driver
 * wraps every cluster queue as a *managed* engine partition and
 * connects hypercube-adjacent cluster pairs with the NoC's pin-to-pin
 * hop latency as the conservative lookahead. That bound is real: the
 * network routes per hop, and a hop leaving cluster A cannot land in
 * cluster B sooner than one pin-to-pin traversal after it was issued
 * (noc/network.cc, Network::forward). The machine's PartitionBinding
 * gets the engine's channel send installed as crossSchedule for the
 * duration of the run — the only legal way an event crosses clusters.
 *
 * Contract: within one partition plan, any worker thread count
 * produces byte-identical stats, traces and campaign artifacts — the
 * per-simulation analogue of what --jobs guarantees per sweep point.
 * Cluster queues run keyed (cluster, local order) event ordering, so
 * merge timing and host scheduling cannot reorder anything. The CI
 * pdes-determinism job diffs partitioned-machine artifacts at 1/2/4/8
 * threads. The partition count itself IS part of the plan: the serial
 * (1-partition) and partitioned plans order some barrier bookkeeping
 * differently (docs/PERFORMANCE.md), so artifacts are compared across
 * threads, never across partition counts.
 */

#ifndef TB_HARNESS_PARALLEL_SIM_HH_
#define TB_HARNESS_PARALLEL_SIM_HH_

#include "sim/pdes.hh"
#include "sim/types.hh"

namespace tb {
namespace harness {

class Machine;

/** Outcome of driving one Machine under the PDES engine. */
struct PdesRunReport
{
    Tick finalTick = 0;
    /** Worker threads actually used. */
    unsigned threads = 1;
    /** Engine partitions the machine ran as (1 = serial plan). */
    unsigned partitions = 1;
    /** The conservative lookahead of the run's channels: the NoC
     *  pin-to-pin hop latency for a partitioned machine, the fabric's
     *  minimum end-to-end message latency for the single-partition
     *  fallback. Recorded so diagnostics state the real number. */
    Tick modelLookahead = 0;
    /** Engine counters (empty when threads == 1 ran serially). */
    pdes::EngineStats engine;
};

/**
 * Drain @p machine's event queue(s) with @p threads workers and close
 * its accounting intervals. A serial (1-partition) machine with
 * threads <= 1 is exactly Machine::run(); a partitioned machine is
 * always engine-driven — its per-cluster queues must be drained
 * together under the LBTS protocol even with one worker. Results are
 * byte-identical at any thread count (see file comment).
 */
PdesRunReport runMachinePdes(Machine& machine, unsigned threads);

/**
 * Strict --sim-threads option scan, same contract as
 * ParallelCampaignRunner::parseJobsArg: accepts `--sim-threads N` and
 * `--sim-threads=N`, rejects anything that is not one whole integer
 * >= 1 with a usage message and exit 2, and returns 1 when the option
 * is absent.
 */
unsigned parseSimThreadsArg(int argc, char** argv);

/**
 * Strict --sim-partitions option scan, same parsing contract as
 * parseSimThreadsArg (N >= 1, exit 2 on malformed input). Returns 0
 * when the option is absent, meaning "pick the default for the node
 * count" (harness/experiment.cc). The value must be a power of two
 * dividing the machine's node count — the Machine constructor
 * enforces that, since only it knows the node count.
 */
unsigned parseSimPartitionsArg(int argc, char** argv);

} // namespace harness
} // namespace tb

#endif // TB_HARNESS_PARALLEL_SIM_HH_
