/**
 * @file
 * Multi-threaded single-simulation driver: runs one Machine under the
 * conservative PDES engine (sim/pdes.hh), selected by --sim-threads N
 * in thrifty_sim and the campaign CLI.
 *
 * Contract: any thread count produces byte-identical stats, traces
 * and campaign artifacts to the serial engine — the per-simulation
 * analogue of what --jobs guarantees per sweep point. The CI
 * pdes-determinism job diffs the artifacts at 1/2/4/8 threads.
 *
 * Today the whole machine model executes as ONE engine partition:
 * the coherence fabric reserves every link along a route at send
 * time in global event order, and the thrifty runtime's barrier
 * bookkeeping (predictor, BRTS, quarantine) mutates shared state
 * with zero modeled latency — both give a per-node split zero
 * conservative lookahead, so a per-node partitioning cannot yet be
 * bit-exact. The engine, its channels and the lookahead bound the
 * model WILL use (Fabric::minMessageLatency, 48 ns) are in place and
 * exercised at full parallelism by the engine tests and the
 * micro_simcore PDES workload; moving the NoC link reservation to
 * per-hop timing so node clusters become real partitions is ROADMAP
 * item 2. See docs/PERFORMANCE.md "Parallel simulation (PDES)".
 */

#ifndef TB_HARNESS_PARALLEL_SIM_HH_
#define TB_HARNESS_PARALLEL_SIM_HH_

#include "sim/pdes.hh"
#include "sim/types.hh"

namespace tb {
namespace harness {

class Machine;

/** Outcome of driving one Machine under the PDES engine. */
struct PdesRunReport
{
    Tick finalTick = 0;
    /** Worker threads actually used. */
    unsigned threads = 1;
    /** The model's conservative lookahead bound (48 ns NoC minimum),
     *  recorded so diagnostics and docs state the real number. */
    Tick modelLookahead = 0;
    /** Engine counters (empty when threads == 1 ran serially). */
    pdes::EngineStats engine;
};

/**
 * Drain @p machine's event queue with @p threads workers and close
 * its accounting intervals. threads <= 1 is exactly Machine::run();
 * threads > 1 drives the queue through a pdes::Engine. Results are
 * byte-identical either way (see file comment).
 */
PdesRunReport runMachinePdes(Machine& machine, unsigned threads);

/**
 * Strict --sim-threads option scan, same contract as
 * ParallelCampaignRunner::parseJobsArg: accepts `--sim-threads N` and
 * `--sim-threads=N`, rejects anything that is not one whole integer
 * >= 1 with a usage message and exit 2, and returns 1 when the option
 * is absent.
 */
unsigned parseSimThreadsArg(int argc, char** argv);

} // namespace harness
} // namespace tb

#endif // TB_HARNESS_PARALLEL_SIM_HH_
