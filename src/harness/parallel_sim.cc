/**
 * @file
 * Multi-threaded single-simulation driver (see parallel_sim.hh).
 */

#include "harness/parallel_sim.hh"

#include <bit>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "harness/machine.hh"

namespace tb {
namespace harness {

PdesRunReport
runMachinePdes(Machine& machine, unsigned threads)
{
    PdesRunReport report;
    report.threads = threads < 1 ? 1u : threads;
    report.partitions = machine.partitions();

    if (machine.partitions() <= 1) {
        report.modelLookahead =
            machine.memory().fabric().minMessageLatency();
        if (report.threads <= 1) {
            report.finalTick = machine.run();
            return report;
        }
        // Serial plan under the engine umbrella: the whole model is
        // one external partition, so the executed event order is the
        // serial order by construction.
        pdes::Engine::Config cfg;
        cfg.threads = report.threads;
        pdes::Engine engine(cfg);
        engine.addExternalPartition("machine", machine.eventQueue());
        engine.run();
        report.finalTick = machine.finalize();
        report.engine = engine.stats();
        return report;
    }

    // Partitioned machine: every cluster queue becomes a managed
    // engine partition. This path is taken even with one worker — the
    // cluster queues must be drained together under the LBTS protocol
    // regardless of host parallelism, which is also what makes the
    // one-worker run the plan's bit-exact reference.
    const unsigned parts = machine.partitions();
    pdes::Engine::Config cfg;
    cfg.threads = report.threads;
    pdes::Engine engine(cfg);
    for (unsigned c = 0; c < parts; ++c) {
        engine.addManagedPartition("cluster" + std::to_string(c),
                                   machine.clusterQueue(c));
    }

    // Clusters are contiguous power-of-two node blocks, so a hop
    // between hypercube-adjacent nodes either stays inside a cluster
    // or crosses to a hypercube-adjacent cluster (the cluster indices
    // differ in exactly one bit). Each such crossing is scheduled at
    // least one pin-to-pin latency ahead (Network::forward), giving
    // every channel a real, nonzero conservative lookahead.
    const Tick lookahead = machine.config().noc.pinToPin;
    for (unsigned a = 0; a < parts; ++a)
        for (unsigned b = 0; b < parts; ++b)
            if (std::popcount(a ^ b) == 1)
                engine.connect(static_cast<pdes::PartitionId>(a),
                               static_cast<pdes::PartitionId>(b),
                               lookahead);
    report.modelLookahead = lookahead;

    noc::PartitionBinding& binding = machine.partitionBinding();
    binding.crossSchedule = [&engine](unsigned src, unsigned dst,
                                      Tick when,
                                      EventQueue::Callback fn) {
        engine.partition(static_cast<pdes::PartitionId>(src))
            .send(static_cast<pdes::PartitionId>(dst), when,
                  std::move(fn));
    };
    engine.run();
    binding.crossSchedule = nullptr;

    report.finalTick = machine.finalize();
    report.engine = engine.stats();
    return report;
}

namespace {

/**
 * Shared strict scan for one `--<name> N` / `--<name>=N` integer
 * option: rejects anything that is not one whole integer >= 1 with a
 * usage message and exit 2; returns @p absent when the option never
 * appears.
 */
unsigned
parsePositiveIntArg(int argc, char** argv, const char* name,
                    unsigned absent)
{
    const std::string flag = std::string("--") + name;
    const std::string flag_eq = flag + "=";
    const auto usage = [&](const char* text) {
        std::fprintf(stderr,
                     "%s: %s: '%s' is not a positive "
                     "integer\nusage: %s [%s N]\n",
                     argv[0], flag.c_str(), text, argv[0],
                     flag.c_str());
        std::exit(2);
    };
    unsigned value = absent;
    for (int i = 1; i < argc; ++i) {
        const char* text = nullptr;
        if (flag == argv[i] && i + 1 < argc)
            text = argv[++i];
        else if (std::strncmp(argv[i], flag_eq.c_str(),
                              flag_eq.size()) == 0)
            text = argv[i] + flag_eq.size();
        if (!text)
            continue;
        // Strict: `--sim-threads 4x` must not silently serialize.
        errno = 0;
        char* end = nullptr;
        const long v = std::strtol(text, &end, 10);
        if (end == text || *end != '\0' || errno == ERANGE || v < 1)
            usage(text);
        value = static_cast<unsigned>(v);
    }
    return value;
}

} // namespace

unsigned
parseSimThreadsArg(int argc, char** argv)
{
    return parsePositiveIntArg(argc, argv, "sim-threads", 1);
}

unsigned
parseSimPartitionsArg(int argc, char** argv)
{
    return parsePositiveIntArg(argc, argv, "sim-partitions", 0);
}

} // namespace harness
} // namespace tb
