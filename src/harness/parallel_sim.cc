/**
 * @file
 * Multi-threaded single-simulation driver (see parallel_sim.hh).
 */

#include "harness/parallel_sim.hh"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "harness/machine.hh"

namespace tb {
namespace harness {

PdesRunReport
runMachinePdes(Machine& machine, unsigned threads)
{
    PdesRunReport report;
    report.threads = threads < 1 ? 1u : threads;
    report.modelLookahead =
        machine.memory().fabric().minMessageLatency();

    if (report.threads <= 1) {
        report.finalTick = machine.run();
        return report;
    }

    pdes::Engine::Config cfg;
    cfg.threads = report.threads;
    pdes::Engine engine(cfg);
    // The whole model is one external partition (see the header for
    // why per-node partitions need the per-hop NoC rework first), so
    // the queue keeps its plain insertion-order scheduling and the
    // executed event order is the serial order by construction.
    engine.addExternalPartition("machine", machine.eventQueue());
    engine.run();
    report.finalTick = machine.finalize();
    report.engine = engine.stats();
    return report;
}

unsigned
parseSimThreadsArg(int argc, char** argv)
{
    const auto usage = [&](const char* text) {
        std::fprintf(stderr,
                     "%s: --sim-threads: '%s' is not a positive "
                     "integer\nusage: %s [--sim-threads N]\n",
                     argv[0], text, argv[0]);
        std::exit(2);
    };
    unsigned threads = 1;
    for (int i = 1; i < argc; ++i) {
        const char* text = nullptr;
        if (std::strcmp(argv[i], "--sim-threads") == 0 && i + 1 < argc)
            text = argv[++i];
        else if (std::strncmp(argv[i], "--sim-threads=", 14) == 0)
            text = argv[i] + 14;
        if (!text)
            continue;
        // Strict: `--sim-threads 4x` must not silently serialize.
        errno = 0;
        char* end = nullptr;
        const long v = std::strtol(text, &end, 10);
        if (end == text || *end != '\0' || errno == ERANGE || v < 1)
            usage(text);
        threads = static_cast<unsigned>(v);
    }
    return threads;
}

} // namespace harness
} // namespace tb
