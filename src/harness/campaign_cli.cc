#include "harness/campaign_cli.hh"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace tb {
namespace harness {

namespace {

[[noreturn]] void
usage(const char* prog, const char* complaint, bool allowQuick)
{
    std::fprintf(
        stderr,
        "%s: %s\n"
        "usage: %s %s[--jobs N] [--sim-threads N] [--sim-partitions P]\n"
        "       [--deadline-ms N] [--retries N]\n"
        "       [--backoff-ms N] [--isolate] [--journal FILE] "
        "[--resume]\n"
        "       [--out FILE] [--manifest FILE] [--only-point I]\n"
        "       [--trace FILE[:categories]] [--stats-json FILE]\n"
        "       [--serve ADDR | --worker ADDR] [--cache DIR]\n"
        "       [--lease-ms N] [--heartbeat-ms N] [--worker-name S]\n"
        "       [--net-faults SPEC] [--reconnect-ms N]\n",
        prog, complaint, prog, allowQuick ? "[--quick] " : "");
    std::exit(2);
}

std::uint64_t
parseU64(const char* prog, const char* opt, const char* text,
         bool allowQuick)
{
    errno = 0;
    char* end = nullptr;
    const unsigned long long v = std::strtoull(text, &end, 10);
    if (end == text || *end != '\0' || errno == ERANGE ||
        std::strchr(text, '-') != nullptr) {
        char buf[128];
        std::snprintf(buf, sizeof(buf),
                      "option %s: '%s' is not a non-negative integer",
                      opt, text);
        usage(prog, buf, allowQuick);
    }
    return v;
}

} // namespace

CampaignOptions
CampaignOptions::parse(int argc, char** argv, bool allowQuick)
{
    CampaignOptions o;
    const char* prog = argc > 0 ? argv[0] : "campaign";

    const auto operand = [&](int& i, const char* opt) -> const char* {
        if (i + 1 >= argc) {
            char buf[64];
            std::snprintf(buf, sizeof(buf),
                          "option %s needs a value", opt);
            usage(prog, buf, allowQuick);
        }
        return argv[++i];
    };

    for (int i = 1; i < argc; ++i) {
        const char* arg = argv[i];
        // Accept --opt=value by splitting in place.
        std::string opt = arg;
        const char* inline_val = nullptr;
        const std::size_t eq = opt.find('=');
        if (eq != std::string::npos && opt.compare(0, 2, "--") == 0) {
            inline_val = arg + eq + 1;
            opt.resize(eq);
        }
        const auto value = [&](int& idx) {
            return inline_val ? inline_val
                              : operand(idx, opt.c_str());
        };

        if (opt == "--jobs") {
            o.policy.jobs = static_cast<unsigned>(
                parseU64(prog, "--jobs", value(i), allowQuick));
            if (o.policy.jobs == 0)
                usage(prog, "option --jobs: must be >= 1", allowQuick);
        } else if (opt == "--sim-threads") {
            o.simThreads = static_cast<unsigned>(
                parseU64(prog, "--sim-threads", value(i), allowQuick));
            if (o.simThreads == 0) {
                usage(prog, "option --sim-threads: must be >= 1",
                      allowQuick);
            }
        } else if (opt == "--sim-partitions") {
            o.simPartitions = static_cast<unsigned>(parseU64(
                prog, "--sim-partitions", value(i), allowQuick));
            if (o.simPartitions == 0) {
                usage(prog, "option --sim-partitions: must be >= 1",
                      allowQuick);
            }
        } else if (opt == "--deadline-ms") {
            o.policy.deadlineMs =
                parseU64(prog, "--deadline-ms", value(i), allowQuick);
        } else if (opt == "--retries") {
            o.policy.maxAttempts =
                1 + static_cast<unsigned>(
                        parseU64(prog, "--retries", value(i), allowQuick));
        } else if (opt == "--backoff-ms") {
            o.policy.backoffBaseMs =
                parseU64(prog, "--backoff-ms", value(i), allowQuick);
        } else if (opt == "--isolate") {
            o.policy.isolate = true;
        } else if (opt == "--journal") {
            o.journalPath = value(i);
        } else if (opt == "--resume") {
            o.resume = true;
        } else if (opt == "--out") {
            o.outPath = value(i);
        } else if (opt == "--manifest") {
            o.manifestPath = value(i);
        } else if (opt == "--only-point") {
            o.onlyPoint = static_cast<long>(
                parseU64(prog, "--only-point", value(i), allowQuick));
        } else if (opt == "--trace") {
            // FILE[:categories] — the first ':' splits the two.
            const std::string spec = value(i);
            const std::size_t colon = spec.find(':');
            o.tracePath = spec.substr(0, colon);
            if (o.tracePath.empty()) {
                usage(prog, "option --trace needs a file name",
                      allowQuick);
            }
            if (colon != std::string::npos &&
                !obs::parseCategories(spec.substr(colon + 1),
                                      &o.traceMask)) {
                char buf[160];
                std::snprintf(
                    buf, sizeof(buf),
                    "option --trace: bad category list '%s' "
                    "(known: sim,mem,noc,thrifty,all)",
                    spec.substr(colon + 1).c_str());
                usage(prog, buf, allowQuick);
            }
        } else if (opt == "--stats-json") {
            o.statsJsonPath = value(i);
            if (o.statsJsonPath.empty()) {
                usage(prog, "option --stats-json needs a file name",
                      allowQuick);
            }
        } else if (opt == "--serve") {
            o.serveAddr = value(i);
            if (o.serveAddr.empty())
                usage(prog, "option --serve needs an address",
                      allowQuick);
        } else if (opt == "--worker") {
            o.workerAddr = value(i);
            if (o.workerAddr.empty())
                usage(prog, "option --worker needs an address",
                      allowQuick);
        } else if (opt == "--cache") {
            o.cacheDir = value(i);
            if (o.cacheDir.empty())
                usage(prog, "option --cache needs a directory",
                      allowQuick);
        } else if (opt == "--lease-ms") {
            o.leaseMs =
                parseU64(prog, "--lease-ms", value(i), allowQuick);
        } else if (opt == "--heartbeat-ms") {
            o.heartbeatMs = parseU64(prog, "--heartbeat-ms", value(i),
                                     allowQuick);
            if (o.heartbeatMs == 0) {
                usage(prog, "option --heartbeat-ms: must be >= 1",
                      allowQuick);
            }
        } else if (opt == "--worker-name") {
            o.workerName = value(i);
        } else if (opt == "--net-faults") {
            o.netFaultsSpec = value(i);
            if (o.netFaultsSpec.empty()) {
                usage(prog, "option --net-faults needs a spec",
                      allowQuick);
            }
        } else if (opt == "--reconnect-ms") {
            o.reconnectMs =
                parseU64(prog, "--reconnect-ms", value(i), allowQuick);
        } else if (opt == "--quick" && allowQuick) {
            o.quick = true;
        } else {
            char buf[128];
            std::snprintf(buf, sizeof(buf), "unknown option '%s'",
                          arg);
            usage(prog, buf, allowQuick);
        }
    }

    if (o.resume && o.journalPath.empty())
        usage(prog, "--resume requires --journal FILE", allowQuick);
    if (!o.serveAddr.empty() && !o.workerAddr.empty()) {
        usage(prog, "--serve and --worker are mutually exclusive",
              allowQuick);
    }
    if (!o.workerAddr.empty() && o.onlyPoint >= 0) {
        usage(prog, "--worker and --only-point are mutually exclusive",
              allowQuick);
    }
    if (!o.netFaultsSpec.empty() && o.workerAddr.empty()) {
        usage(prog, "--net-faults requires --worker ADDR",
              allowQuick);
    }
    return o;
}

std::string
CampaignOptions::reproFlags() const
{
    std::string flags;
    if (quick)
        flags += " --quick";
    if (policy.isolate)
        flags += " --isolate";
    // Unlike --sim-threads, the partition count selects the
    // simulation plan and so shapes results: a repro command must
    // carry it.
    if (simPartitions != 0)
        flags += " --sim-partitions " + std::to_string(simPartitions);
    return flags;
}

} // namespace harness
} // namespace tb
