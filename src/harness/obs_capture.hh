/**
 * @file
 * Campaign-level observability capture: `--trace` / `--stats-json`.
 *
 * ObsCapture owns the campaign-wide trace and stats artifacts and
 * hands each point a PointScope to record into:
 *
 *  - arm() wires a per-point TraceSink (Chrome pid = point index) and
 *    a JsonStatWriter into the point's RunOptions, and switches the
 *    per-sleep-episode ledger on;
 *  - deposit() collects the point's rendered events, machine stats
 *    and barrier-episode ledger under the point index (thread-safe:
 *    workers deposit concurrently);
 *  - render/writeFiles() assemble the artifacts *in point order*, so
 *    the files are byte-identical no matter how `--jobs N` interleaved
 *    the points.
 *
 * The trace file is one Chrome trace_event JSON document (one
 * "process" per point, docs/OBSERVABILITY.md); the stats file is
 * JSONL, one `"kind": "stats"` object per point carrying the sync
 * counters, the full per-component machine statistics (through the
 * StatVisitor seam) and the per-episode prediction ledger.
 *
 * Coverage caveat: only points simulated in this process are captured.
 * Points replayed from a resume journal or run in `--isolate` children
 * carry their result across the boundary but not their trace/stats.
 */

#ifndef TB_HARNESS_OBS_CAPTURE_HH_
#define TB_HARNESS_OBS_CAPTURE_HH_

#include <cstdint>
#include <map>
#include <memory>
#include <sstream>
#include <string>

#include "sim/thread_safety.hh"

#include "harness/campaign_cli.hh"
#include "harness/experiment.hh"
#include "obs/json_writer.hh"
#include "obs/stat_writers.hh"
#include "obs/trace.hh"

namespace tb {
namespace harness {

/** Collects `--trace` / `--stats-json` artifacts for one campaign. */
class ObsCapture
{
  public:
    /** Per-point recording state; must outlive the point's run. */
    struct PointScope
    {
        std::unique_ptr<obs::TraceSink> sink;
        std::ostringstream machineJson;
        std::unique_ptr<obs::JsonWriter> writer;
        std::unique_ptr<obs::JsonStatWriter> visitor;
    };

    ObsCapture(const CampaignOptions& opts, std::string campaign);

    bool traceEnabled() const { return !tracePath_.empty(); }
    bool statsEnabled() const { return !statsPath_.empty(); }
    bool active() const { return traceEnabled() || statsEnabled(); }

    /**
     * Wire @p scope into @p ro for point @p index: trace sink,
     * episode ledger and machine-stats visitor, as configured.
     */
    void arm(std::size_t index, RunOptions* ro, PointScope* scope);

    /**
     * Record point @p index's artifacts from @p scope and @p r.
     * @p label names the point in the trace ("Ocean/Thrifty").
     */
    void deposit(std::size_t index, const ExperimentResult& r,
                 PointScope* scope, const std::string& label);

    /** The assembled Chrome trace document ("" when tracing is off). */
    std::string renderTraceFile() const;

    /** The assembled stats JSONL ("" when --stats-json is off). */
    std::string renderStatsFile() const;

    /**
     * Aggregate prediction-accuracy line (`"kind": "prediction"`)
     * over every deposited episode; "" when --stats-json is off.
     * Stdout-only: resumed campaigns skip replayed points, so the
     * line is not part of the deterministic artifact.
     */
    std::string predictionSummaryJson() const;

    /** Atomically write the configured trace/stats files. */
    void writeFiles() const;

  private:
    struct Entry
    {
        std::string label;
        std::string traceEvents;
        std::uint64_t dropped = 0;
        std::string statsLine;
        std::uint64_t episodes = 0;
        std::uint64_t earlyWakes = 0;
        std::uint64_t lateWakes = 0;
        double absErrTicks = 0.0;
    };

    // Set once in the constructor, read-only afterwards — safe to
    // read without the lock.
    std::string campaign_;
    std::string tracePath_;
    unsigned traceMask_ = obs::kAllTraceCategories;
    std::string statsPath_;

    mutable Mutex mu_;
    /// Deposited per-point artifacts; workers insert concurrently,
    /// renderers walk in point order (std::map keeps artifacts
    /// byte-identical regardless of --jobs interleaving).
    std::map<std::size_t, Entry> entries_ TB_GUARDED_BY(mu_);
};

} // namespace harness
} // namespace tb

#endif // TB_HARNESS_OBS_CAPTURE_HH_
