/**
 * @file
 * EINTR-safe POSIX I/O helpers shared by every harness-layer process
 * boundary: the --isolate fork pipe in campaign_supervisor.cc and the
 * socket transport of the distributed campaign service (src/svc).
 *
 * Two failure modes keep recurring around pipes and sockets:
 *
 *  - **EINTR**: any signal (SIGINT from the campaign handler, SIGCHLD
 *    from a reaped worker) can interrupt a blocking read/write/poll
 *    mid-call. Every loop here retries transparently.
 *  - **SIGPIPE**: writing to a pipe or socket whose reader died kills
 *    the whole process by default. A supervisor or daemon must never
 *    die because one of its children/workers did, so process setup
 *    calls ignoreSigpipe() once and write failures surface as EPIPE
 *    return values instead.
 */

#ifndef TB_HARNESS_POSIX_IO_HH_
#define TB_HARNESS_POSIX_IO_HH_

#include <cstddef>
#include <string>

#include <sys/types.h>

struct pollfd; // from <poll.h>; completed by callers that build fd sets

namespace tb {
namespace harness {

/**
 * Ignore SIGPIPE process-wide (idempotent). After this, a write to a
 * dead reader fails with EPIPE instead of terminating the process —
 * the only behaviour a multi-client daemon or a forking supervisor
 * can live with.
 */
void ignoreSigpipe();

/**
 * Write all @p n bytes of @p buf to @p fd, retrying on EINTR and on
 * short writes. Returns true when everything was written; false on
 * any other error (errno is preserved, EPIPE included).
 */
bool writeFull(int fd, const void* buf, std::size_t n);

/**
 * Read exactly @p n bytes into @p buf, retrying on EINTR and short
 * reads. Returns @p n on success, 0 on clean EOF before the first
 * byte, and -1 on error or on EOF mid-record (errno 0 in the
 * truncated-record case).
 */
ssize_t readFull(int fd, void* buf, std::size_t n);

/**
 * One read(2) attempt that retries EINTR only. Returns the byte
 * count, 0 on EOF, and -1 with errno EAGAIN/EWOULDBLOCK untouched so
 * non-blocking callers can distinguish "no data yet" from errors.
 */
ssize_t readSome(int fd, void* buf, std::size_t n);

/**
 * poll(2) a single descriptor for @p events, retrying on EINTR with
 * the timeout re-armed. Returns the revents mask (0 on timeout), or
 * -1 on a real poll error. Passing @p fd = -1 (poll ignores negative
 * descriptors) turns this into a plain interruptible sleep.
 */
int pollOne(int fd, short events, int timeoutMs);

/**
 * poll(2) an array of descriptors once. EINTR is reported as a
 * timeout (return 0) rather than retried with the full timeout
 * re-armed: multi-fd callers are event loops that recompute their
 * deadline-derived timeout every round, so "pretend nothing was
 * ready" converges while "retry for another full timeout" can starve
 * the deadline bookkeeping. Returns the ready count, 0 on
 * timeout/EINTR, -1 on a real poll error.
 */
int pollMany(struct pollfd* fds, std::size_t n, int timeoutMs);

/**
 * accept(2) one connection from @p listenFd, retrying on EINTR.
 * Returns the connected descriptor, or -1 with errno preserved
 * (EAGAIN/EWOULDBLOCK = nothing pending on a non-blocking socket).
 */
int acceptOne(int listenFd);

/** Drain @p fd to @p out until EOF (EINTR-safe); false on error. */
bool readToEof(int fd, std::string* out);

} // namespace harness
} // namespace tb

#endif // TB_HARNESS_POSIX_IO_HH_
