/**
 * @file
 * Lossless one-line serialization of ExperimentResult.
 *
 * The campaign supervisor moves point results across two boundaries a
 * C++ object cannot cross: the process boundary of `--isolate` (the
 * point runs in a forked child and reports through a pipe) and the
 * disk boundary of the campaign journal (a resumed campaign replays
 * completed points from disk). Both require the full result — every
 * field the report renderers consume — to round-trip exactly, so
 * doubles are emitted with max_digits10 precision and ticks verbatim:
 * deserialize(serialize(r)) reproduces bit-identical report output.
 *
 * The format is a single `TBRESULT1 key=value ...` line with quoted,
 * backslash-escaped strings — self-describing enough to survive in a
 * JSONL journal as an embedded string, cheap enough to parse without
 * a JSON library. The per-departure trace is intentionally not
 * carried: campaigns never enable it.
 */

#ifndef TB_HARNESS_RESULT_SERDE_HH_
#define TB_HARNESS_RESULT_SERDE_HH_

#include <string>

#include "harness/experiment.hh"

namespace tb {
namespace harness {

/** Serialize @p r to one self-contained line (no trailing newline). */
std::string serializeResult(const ExperimentResult& r);

/**
 * Rebuild a result from serializeResult() output. Throws FatalError
 * on malformed input (wrong magic, missing field, bad number).
 */
ExperimentResult deserializeResult(const std::string& line);

} // namespace harness
} // namespace tb

#endif // TB_HARNESS_RESULT_SERDE_HH_
