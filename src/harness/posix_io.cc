#include "harness/posix_io.hh"

#include <cerrno>
#include <csignal>

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

namespace tb {
namespace harness {

void
ignoreSigpipe()
{
    // std::signal is async-signal-safe to install and idempotent;
    // calling it from daemon, worker and supervisor setup alike is
    // deliberate (whichever runs first wins, all want SIG_IGN).
    std::signal(SIGPIPE, SIG_IGN);
}

bool
writeFull(int fd, const void* buf, std::size_t n)
{
    const char* p = static_cast<const char*>(buf);
    while (n > 0) {
        const ssize_t w = ::write(fd, p, n);
        if (w < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        p += w;
        n -= static_cast<std::size_t>(w);
    }
    return true;
}

ssize_t
readFull(int fd, void* buf, std::size_t n)
{
    char* p = static_cast<char*>(buf);
    std::size_t got = 0;
    while (got < n) {
        const ssize_t r = ::read(fd, p + got, n - got);
        if (r < 0) {
            if (errno == EINTR)
                continue;
            return -1;
        }
        if (r == 0) {
            if (got == 0)
                return 0;
            errno = 0; // EOF mid-record: truncated frame
            return -1;
        }
        got += static_cast<std::size_t>(r);
    }
    return static_cast<ssize_t>(got);
}

ssize_t
readSome(int fd, void* buf, std::size_t n)
{
    for (;;) {
        const ssize_t r = ::read(fd, buf, n);
        if (r < 0 && errno == EINTR)
            continue;
        return r;
    }
}

int
pollOne(int fd, short events, int timeoutMs)
{
    struct pollfd pfd;
    pfd.fd = fd;
    pfd.events = events;
    pfd.revents = 0;
    for (;;) {
        const int rc = ::poll(&pfd, 1, timeoutMs);
        if (rc < 0) {
            if (errno == EINTR)
                return 0; // treat like a timeout; callers re-poll
            return -1;
        }
        return rc == 0 ? 0 : pfd.revents;
    }
}

int
pollMany(struct pollfd* fds, std::size_t n, int timeoutMs)
{
    const int rc = ::poll(fds, static_cast<nfds_t>(n), timeoutMs);
    if (rc < 0 && errno == EINTR)
        return 0; // treat like a timeout; callers re-poll
    return rc;
}

int
acceptOne(int listenFd)
{
    for (;;) {
        const int fd = ::accept(listenFd, nullptr, nullptr);
        if (fd < 0 && errno == EINTR)
            continue;
        return fd;
    }
}

bool
readToEof(int fd, std::string* out)
{
    char buf[4096];
    for (;;) {
        const ssize_t r = readSome(fd, buf, sizeof(buf));
        if (r < 0)
            return false;
        if (r == 0)
            return true;
        out->append(buf, static_cast<std::size_t>(r));
    }
}

} // namespace harness
} // namespace tb
