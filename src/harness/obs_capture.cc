#include "harness/obs_capture.hh"

#include <utility>
#include <vector>

#include "harness/campaign_journal.hh"
#include "harness/report.hh"
#include "sim/types.hh"

namespace tb {
namespace harness {

ObsCapture::ObsCapture(const CampaignOptions& opts, std::string campaign)
    : campaign_(std::move(campaign)), tracePath_(opts.tracePath),
      traceMask_(opts.traceMask), statsPath_(opts.statsJsonPath)
{}

void
ObsCapture::arm(std::size_t index, RunOptions* ro, PointScope* scope)
{
    if (traceEnabled()) {
        scope->sink = std::make_unique<obs::TraceSink>(
            traceMask_, static_cast<std::uint32_t>(index));
        ro->traceSink = scope->sink.get();
    }
    if (statsEnabled()) {
        ro->episodeLedger = true;
        scope->writer =
            std::make_unique<obs::JsonWriter>(scope->machineJson);
        scope->writer->beginObject();
        scope->visitor =
            std::make_unique<obs::JsonStatWriter>(*scope->writer);
        ro->statsVisitor = scope->visitor.get();
    }
}

void
ObsCapture::deposit(std::size_t index, const ExperimentResult& r,
                    PointScope* scope, const std::string& label)
{
    if (!active())
        return;

    Entry e;
    e.label = label;
    if (scope->sink) {
        e.traceEvents = scope->sink->events();
        e.dropped = scope->sink->dropped();
    }
    if (scope->writer) {
        scope->writer->endObject();

        std::ostringstream line;
        obs::JsonWriter w(line);
        w.beginObject();
        w.field("campaign", campaign_)
            .field("kind", "stats")
            .field("point", index)
            .field("app", r.app)
            .field("config", r.config)
            .field("threads", r.threads)
            .field("exec_time_s", ticksToSeconds(r.execTime))
            .field("energy_j", r.totalEnergy());
        report::writeSyncJson(w, r.sync);
        w.key("machine").raw(scope->machineJson.str());
        w.key("episodes").beginArray();
        for (const auto& ep : r.sync.episodes) {
            report::writeEpisodeJson(w, ep);
            ++e.episodes;
            e.earlyWakes += ep.earlyWake() ? 1 : 0;
            e.lateWakes += ep.lateWake() ? 1 : 0;
            const Tick err = ep.predictedBit > ep.actualBit
                                 ? ep.predictedBit - ep.actualBit
                                 : ep.actualBit - ep.predictedBit;
            e.absErrTicks += static_cast<double>(err);
        }
        w.endArray();
        w.endObject();
        e.statsLine = line.str() + "\n";
    }

    LockGuard lock(mu_);
    entries_[index] = std::move(e);
}

std::string
ObsCapture::renderTraceFile() const
{
    if (!traceEnabled())
        return "";
    std::vector<obs::TraceChunk> chunks;
    {
        LockGuard lock(mu_);
        for (const auto& [index, e] : entries_) {
            obs::TraceChunk c;
            c.pid = static_cast<std::uint32_t>(index);
            c.label = e.label;
            c.events = e.traceEvents;
            c.dropped = e.dropped;
            chunks.push_back(std::move(c));
        }
    }
    std::ostringstream os;
    obs::writeChromeTrace(os, chunks);
    return os.str();
}

std::string
ObsCapture::renderStatsFile() const
{
    if (!statsEnabled())
        return "";
    std::string out;
    LockGuard lock(mu_);
    for (const auto& [index, e] : entries_)
        out += e.statsLine;
    return out;
}

std::string
ObsCapture::predictionSummaryJson() const
{
    if (!statsEnabled())
        return "";
    std::uint64_t episodes = 0, early = 0, late = 0;
    double abs_err = 0.0;
    {
        LockGuard lock(mu_);
        for (const auto& [index, e] : entries_) {
            episodes += e.episodes;
            early += e.earlyWakes;
            late += e.lateWakes;
            abs_err += e.absErrTicks;
        }
    }
    std::ostringstream line;
    obs::JsonWriter w(line);
    w.beginObject();
    w.field("campaign", campaign_)
        .field("kind", "prediction")
        .field("episodes", episodes)
        .field("early_wakes", early)
        .field("late_wakes", late)
        .field("mean_abs_err_ticks",
               episodes ? abs_err / static_cast<double>(episodes) : 0.0);
    w.endObject();
    return line.str() + "\n";
}

void
ObsCapture::writeFiles() const
{
    if (traceEnabled())
        writeFileAtomic(tracePath_, renderTraceFile());
    if (statsEnabled())
        writeFileAtomic(statsPath_, renderStatsFile());
}

} // namespace harness
} // namespace tb
