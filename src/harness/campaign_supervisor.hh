/**
 * @file
 * Campaign supervisor: production-job-runner semantics for sweep
 * campaigns.
 *
 * ParallelCampaignRunner shards independent points across threads but
 * treats every point as infallible: the first exception aborts the
 * campaign, a hung point blocks it forever, and a crashing point kills
 * the process. The supervisor wraps the same claim-from-a-counter
 * execution model with the machinery a long campaign actually needs:
 *
 *  - a per-point wall-clock **deadline** enforced by a watchdog, so a
 *    hung point is classified and the campaign moves on;
 *  - a **retry policy** (max attempts, exponential backoff with
 *    deterministic seed-derived jitter);
 *  - **continue-on-error** execution that classifies every point
 *    outcome (ok / exception / checker-violation / timeout / crash)
 *    into a failure manifest with a one-line repro command;
 *  - optional **crash isolation** (`--isolate`): each point forks into
 *    a child process, so a SIGSEGV/abort is recorded as a point
 *    failure instead of taking down the campaign;
 *  - journaled **checkpoint/resume** via CampaignJournal: completed
 *    points are skipped on resume and their stored results replayed,
 *    keeping the final artifact byte-identical to an unbroken run.
 *
 * Points return their artifact as a string (deposited by index,
 * emitted in order by the caller) because that is the only result
 * shape that survives both the process boundary of --isolate and the
 * disk boundary of resume.
 *
 * Caveats, by mode: without --isolate a timed-out point's thread is
 * *abandoned* (it cannot be killed portably) — the memory it may
 * still touch is kept alive by the supervisor, but a truly wedged
 * point still burns a core until process exit, and a crashing point
 * still kills the process. `--isolate` bounds both: the child is
 * SIGKILLed on deadline and dies alone on a crash.
 */

#ifndef TB_HARNESS_CAMPAIGN_SUPERVISOR_HH_
#define TB_HARNESS_CAMPAIGN_SUPERVISOR_HH_

#include <atomic>
#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <thread>
#include <vector>

#include "sim/thread_safety.hh"

#include "harness/campaign_journal.hh"

namespace tb {
namespace harness {

/** Classification of one supervised point. */
enum class PointOutcome
{
    Ok,               ///< point completed, result deposited
    Journaled,        ///< skipped: result replayed from the journal
    Cached,           ///< skipped: artifact served by the result cache
    Exception,        ///< threw (FatalError or other std::exception)
    CheckerViolation, ///< threw PanicError (protocol/liveness checker)
    Timeout,          ///< exceeded the per-point deadline
    Crash,            ///< child died on a signal / unknown exit (--isolate)
    NotRun,           ///< never attempted (campaign interrupted)
};

/** Short lower-case name ("ok", "timeout", ...) of @p o. */
const char* outcomeName(PointOutcome o);

/** Knobs of one supervised campaign. */
struct SupervisorPolicy
{
    /** Worker threads; 0 and 1 both mean "run inline". */
    unsigned jobs = 1;
    /** Attempts per point (1 = no retry). */
    unsigned maxAttempts = 1;
    /** First-retry backoff; doubles per attempt. 0 disables waiting. */
    std::uint64_t backoffBaseMs = 100;
    /** Upper bound on any single backoff delay. */
    std::uint64_t backoffCapMs = 10000;
    /** Per-point wall-clock deadline; 0 = none. */
    std::uint64_t deadlineMs = 0;
    /** Fork every point into a child process. */
    bool isolate = false;
    /** Seed for the deterministic backoff jitter. */
    std::uint64_t seed = 1;
};

/** What happened to one point (indexed like the campaign). */
struct PointRecord
{
    PointOutcome outcome = PointOutcome::NotRun;
    unsigned attempts = 0;    ///< attempts actually executed
    std::string message;      ///< failure diagnostic ("" when ok)
    std::string repro;        ///< one-line repro command ("" if none)
};

/** Aggregated result of a supervised campaign. */
struct SupervisorReport
{
    std::vector<PointRecord> points;
    std::uint64_t retries = 0; ///< attempts beyond each point's first
    bool interrupted = false;  ///< SIGINT stopped the campaign early

    /** Points with the given outcome. */
    std::size_t count(PointOutcome o) const;
    /** Failed points (exception/checker/timeout/crash). */
    std::size_t failures() const;
    /** No failures and not interrupted. */
    bool ok() const { return failures() == 0 && !interrupted; }

    /**
     * Failure manifest: one JSON line per non-ok point with its
     * outcome, attempt count, diagnostic and repro command, plus a
     * trailing line when the campaign was interrupted.
     */
    void writeManifest(std::ostream& os,
                       const std::string& campaign) const;

    /**
     * Supervisor counters as a single campaign-JSON line
     * (`"kind": "supervisor"`), the shape scripts/compare_bench.py
     * surfaces next to the benchmark metrics.
     */
    std::string summaryJson(const std::string& campaign) const;
};

/** The work and metadata of one campaign's points. */
struct PointTask
{
    /** Run point i, return its serialized artifact. Required. */
    std::function<std::string(std::size_t)> run;
    /**
     * Config hash of point i for journal validity (sweep shape,
     * flags, workload knobs). Optional; defaults to hashing the
     * index only.
     */
    std::function<std::uint64_t(std::size_t)> key;
    /** Workload seed of point i (recorded in the journal). Optional. */
    std::function<std::uint64_t(std::size_t)> seed;
    /** One-line repro command for point i. Optional. */
    std::function<std::string(std::size_t)> repro;
};

/** Supervised executor for a fixed-size set of independent points. */
class CampaignSupervisor
{
  public:
    explicit CampaignSupervisor(SupervisorPolicy policy = {})
        : policy_(policy)
    {}
    ~CampaignSupervisor();

    CampaignSupervisor(const CampaignSupervisor&) = delete;
    CampaignSupervisor& operator=(const CampaignSupervisor&) = delete;

    /** Journal to consult/append; may be inactive or null. */
    void attachJournal(CampaignJournal* journal) { journal_ = journal; }

    /**
     * Content-addressed result cache hooks (svc::ResultCache, passed
     * as functions to keep harness free of a svc dependency). The
     * lookup is consulted after the journal; a hit classifies the
     * point Cached and skips the simulation. Successful points are
     * offered to @p store. Both run on the supervising thread of the
     * point (callers must supply thread-safe hooks when jobs > 1).
     */
    void
    attachCache(
        std::function<bool(std::uint64_t, std::string*)> lookup,
        std::function<void(std::uint64_t, const std::string&)> store)
    {
        cacheLookup_ = std::move(lookup);
        cacheStore_ = std::move(store);
    }

    /**
     * Run all @p count points under the policy. Never throws for
     * point failures — every point is classified in the returned
     * report and successful results are available via results().
     */
    SupervisorReport run(std::size_t count, const PointTask& task);

    /** Artifacts of ok/journaled points, by index ("" otherwise). */
    const std::vector<std::string>& results() const { return results_; }

    /**
     * Backoff before retry @p attempt (the one about to run, >= 2) of
     * point @p index: base << (attempt-2), capped, plus deterministic
     * jitter in [0, delay/2] derived from (policy.seed, index,
     * attempt). Pure function — tests assert exact sequences.
     */
    static std::uint64_t backoffDelayMs(const SupervisorPolicy& p,
                                        std::size_t index,
                                        unsigned attempt);

    /**
     * Install the campaign SIGINT handler: first ^C requests a stop
     * (workers finish their current attempt, the journal is already
     * on disk, the caller emits the manifest), a second ^C falls back
     * to default handling.
     */
    static void installSigintHandler();

    /** Whether a stop was requested (SIGINT). */
    static bool interruptRequested();

    /** Reset the interrupt flag (tests). */
    static void clearInterruptForTest();

    /** Join abandoned timed-out attempt threads (tests only). */
    void joinAbandonedForTest();

    /** One attempt's classification (exposed for the executor fns). */
    struct Attempt
    {
        PointOutcome outcome = PointOutcome::Exception;
        std::string payload; ///< result (ok) or diagnostic
    };

  private:
    Attempt runAttemptInProcess(const PointTask& task, std::size_t i);
    Attempt runAttemptForked(const PointTask& task, std::size_t i);
    void supervisePoint(const PointTask& task, std::size_t i,
                        SupervisorReport* report);

    SupervisorPolicy policy_;
    CampaignJournal* journal_ = nullptr;
    std::function<bool(std::uint64_t, std::string*)> cacheLookup_;
    std::function<void(std::uint64_t, const std::string&)> cacheStore_;
    std::vector<std::string> results_;
    Mutex mu_;
    /// Timed-out attempt threads, kept alive until process exit.
    std::vector<std::thread> abandoned_ TB_GUARDED_BY(mu_);
    std::atomic<std::uint64_t> retries_{0};
};

} // namespace harness
} // namespace tb

#endif // TB_HARNESS_CAMPAIGN_SUPERVISOR_HH_
