#include "harness/report.hh"

#include <algorithm>
#include <cmath>
#include <iomanip>

#include "sim/logging.hh"

namespace tb {
namespace harness {
namespace report {

namespace {

double
totalOf(const ExperimentResult& r, bool use_energy)
{
    double t = 0.0;
    for (std::size_t i = 0; i < power::kNumBuckets; ++i) {
        t += use_energy ? r.energy[i]
                        : static_cast<double>(r.time[i]);
    }
    return t;
}

double
partOf(const ExperimentResult& r, std::size_t i, bool use_energy)
{
    return use_energy ? r.energy[i] : static_cast<double>(r.time[i]);
}

} // namespace

const ExperimentResult&
baselineOf(const std::vector<ExperimentResult>& results)
{
    for (const auto& r : results) {
        if (r.config == "Baseline")
            return r;
    }
    fatal("result group has no Baseline run");
}

double
normalizedTotal(const ExperimentResult& r,
                const ExperimentResult& baseline, bool use_energy)
{
    const double base = totalOf(baseline, use_energy);
    if (base <= 0.0)
        return 0.0;
    return 100.0 * totalOf(r, use_energy) / base;
}

void
printArchitecture(std::ostream& os, const SystemConfig& sys)
{
    const auto& mc = sys.memory.controller;
    os << "Architecture (Table 1): " << sys.numNodes()
       << "-node CC-NUMA, hypercube dim " << sys.noc.dimension << "\n"
       << "  L1 " << mc.l1.sizeBytes / 1024 << "kB/" << mc.l1.assoc
       << "-way, L2 " << mc.l2.sizeBytes / 1024 << "kB/" << mc.l2.assoc
       << "-way, " << mc.l1.lineBytes << "B lines; RT "
       << mc.l1Rt / kNanosecond << "ns/" << mc.l2Rt / kNanosecond
       << "ns\n"
       << "  DRAM "
       << sys.memory.dram.accessLatency / kNanosecond
       << "ns row miss; NoC pin-to-pin "
       << sys.noc.pinToPin / kNanosecond << "ns, marshal "
       << sys.noc.marshal / kNanosecond << "ns\n"
       << "  CPU TDPmax " << sys.power.tdpMax << "W, active "
       << sys.power.activeWatts() << "W, spin "
       << sys.power.spinWatts() << "W\n";
}

void
printBreakdownGroup(std::ostream& os,
                    const std::vector<ExperimentResult>& results,
                    bool use_energy)
{
    if (results.empty())
        return;
    const ExperimentResult& base = baselineOf(results);
    const double base_total = totalOf(base, use_energy);

    os << results.front().app << " — normalized "
       << (use_energy ? "energy" : "execution time")
       << " (% of Baseline)\n";
    os << "  " << std::left << std::setw(14) << "config"
       << std::right << std::setw(9) << "total";
    for (std::size_t i = 0; i < power::kNumBuckets; ++i) {
        os << std::setw(11)
           << power::bucketName(static_cast<power::Bucket>(i));
    }
    os << '\n';

    for (const auto& r : results) {
        os << "  " << std::left << std::setw(14) << r.config
           << std::right << std::fixed << std::setprecision(1)
           << std::setw(8) << normalizedTotal(r, base, use_energy)
           << '%';
        for (std::size_t i = 0; i < power::kNumBuckets; ++i) {
            const double pct =
                base_total > 0.0
                    ? 100.0 * partOf(r, i, use_energy) / base_total
                    : 0.0;
            os << std::setw(10) << pct << '%';
        }
        os << '\n';
    }
}

void
printStackedBars(std::ostream& os,
                 const std::vector<ExperimentResult>& results,
                 bool use_energy, unsigned width)
{
    if (results.empty())
        return;
    const ExperimentResult& base = baselineOf(results);
    const double base_total = totalOf(base, use_energy);
    if (base_total <= 0.0)
        return;
    static const char glyph[power::kNumBuckets] = {'#', '%', '+', '.'};

    for (const auto& r : results) {
        os << "  " << std::left << std::setw(14) << r.config << " |";
        unsigned printed = 0;
        for (std::size_t i = 0; i < power::kNumBuckets; ++i) {
            const double frac = partOf(r, i, use_energy) / base_total;
            const unsigned cells = static_cast<unsigned>(
                std::lround(frac * width));
            for (unsigned c = 0; c < cells; ++c)
                os << glyph[i];
            printed += cells;
        }
        os << "  " << std::fixed << std::setprecision(1)
           << 100.0 * totalOf(r, use_energy) / base_total << "%\n";
        (void)printed;
    }
    os << "  legend: # Compute  % Spin  + Transition  . Sleep\n";
}

void
printSummary(std::ostream& os,
             const std::vector<std::vector<ExperimentResult>>& groups,
             const std::vector<std::string>& apps_included)
{
    // config name -> (sum of normalized energy, sum of normalized
    // time, count)
    struct Acc
    {
        double energy = 0.0;
        double time = 0.0;
        unsigned n = 0;
    };
    std::vector<std::pair<std::string, Acc>> accs;

    auto acc_for = [&](const std::string& cfg) -> Acc& {
        for (auto& [name, a] : accs) {
            if (name == cfg)
                return a;
        }
        accs.emplace_back(cfg, Acc{});
        return accs.back().second;
    };

    for (const auto& group : groups) {
        if (group.empty())
            continue;
        if (std::find(apps_included.begin(), apps_included.end(),
                      group.front().app) == apps_included.end()) {
            continue;
        }
        const ExperimentResult& base = baselineOf(group);
        for (const auto& r : group) {
            Acc& a = acc_for(r.config);
            a.energy += normalizedTotal(r, base, true);
            a.time += normalizedTotal(r, base, false);
            ++a.n;
        }
    }

    os << "Averages over {";
    for (std::size_t i = 0; i < apps_included.size(); ++i)
        os << (i ? ", " : "") << apps_included[i];
    os << "}:\n";
    for (const auto& [name, a] : accs) {
        if (a.n == 0)
            continue;
        const double e = a.energy / a.n;
        const double t = a.time / a.n;
        os << "  " << std::left << std::setw(14) << name << std::fixed
           << std::setprecision(1) << "energy " << std::setw(5) << e
           << "% (saving " << std::setw(5) << 100.0 - e
           << "%)   time " << std::setw(5) << t << "% (slowdown "
           << std::setw(5) << t - 100.0 << "%)\n";
    }
}

void
writeSyncJson(obs::JsonWriter& w, const thrifty::SyncStats& s)
{
    w.key("sync").beginObject();
    w.field("instances", s.instances)
        .field("arrivals", s.arrivals)
        .field("sleeps", s.sleeps)
        .field("spins", s.spins)
        .field("cutoffs", s.cutoffs)
        .field("filtered_updates", s.filteredUpdates)
        .field("residual_spins", s.residualSpins)
        .field("watchdog_fires", s.watchdogFires)
        .field("residual_escalations", s.residualEscalations)
        .field("quarantines", s.quarantines)
        .field("fallback_episodes", s.fallbackEpisodes)
        .field("total_stall_s",
               ticksToSeconds(static_cast<Tick>(s.totalStallTicks)));
    w.endObject();
}

void
writeEpisodeJson(obs::JsonWriter& w, const thrifty::BarrierEpisode& ep)
{
    w.beginObject();
    w.field("pc", ep.pc)
        .field("instance", ep.instance)
        .field("tid", ep.tid)
        .field("predicted_bit", ep.predictedBit)
        .field("actual_bit", ep.actualBit)
        .field("sleep_tick", ep.sleepTick)
        .field("wake_tick", ep.wakeTick)
        .field("release_ts", ep.releaseTs)
        .field("flush_ticks", ep.flushTicks)
        .field("residual_ticks", ep.residualTicks)
        .field("state", ep.sleepState)
        .field("wake", ep.wakeReason)
        .field("early", ep.earlyWake())
        .field("late", ep.lateWake());
    w.endObject();
}

void
writeResultJson(obs::JsonWriter& w, const ExperimentResult& r)
{
    w.field("app", r.app)
        .field("config", r.config)
        .field("threads", r.threads)
        .field("exec_time_s", ticksToSeconds(r.execTime))
        .field("imbalance", r.imbalance());
    w.key("energy_j").beginObject();
    for (std::size_t i = 0; i < power::kNumBuckets; ++i) {
        w.field(power::bucketName(static_cast<power::Bucket>(i)),
                r.energy[i]);
    }
    w.endObject();
    w.key("time_s").beginObject();
    for (std::size_t i = 0; i < power::kNumBuckets; ++i) {
        w.field(power::bucketName(static_cast<power::Bucket>(i)),
                ticksToSeconds(r.time[i]));
    }
    w.endObject();
    writeSyncJson(w, r.sync);
    if (!r.faultSpec.empty()) {
        w.key("faults").beginObject();
        w.field("spec", r.faultSpec)
            .field("injected", r.faultsInjected());
        w.key("by_kind").beginObject();
        for (const auto& [kind, n] : r.faultCounts)
            w.field(kind, n);
        w.endObject();
        w.endObject();
    }
}

void
printJson(std::ostream& os, const ExperimentResult& r)
{
    obs::JsonWriter w(os);
    w.beginObject();
    writeResultJson(w, r);
    w.endObject();
    os << '\n';
}

void
printFaultSummary(std::ostream& os, const ExperimentResult& r)
{
    if (r.faultSpec.empty())
        return;
    os << "Fault injection (" << r.faultSpec << "): "
       << r.faultsInjected() << " fault(s) injected\n";
    for (const auto& [kind, n] : r.faultCounts) {
        if (n > 0)
            os << "  " << std::left << std::setw(14) << kind
               << std::right << std::setw(8) << n << '\n';
    }
    os << "Degradation: " << r.sync.watchdogFires
       << " watchdog fire(s), " << r.sync.residualEscalations
       << " spin escalation(s), " << r.sync.quarantines
       << " quarantine(s), " << r.sync.fallbackEpisodes
       << " fallback episode(s)\n";
}

} // namespace report
} // namespace harness
} // namespace tb
