/**
 * @file
 * Whole-machine assembly: Table 1's 64-node CC-NUMA multiprocessor as
 * one object — event queue, hypercube network, coherent memory
 * system, one CPU + thread context per node.
 */

#ifndef TB_HARNESS_MACHINE_HH_
#define TB_HARNESS_MACHINE_HH_

#include <memory>
#include <vector>

#include "cpu/cpu.hh"
#include "cpu/thread_context.hh"
#include "mem/memory_system.hh"
#include "noc/network.hh"
#include "power/energy_model.hh"
#include "sim/event_queue.hh"

namespace tb {

class FaultHooks;

namespace check { class ProtocolChecker; }

namespace obs { class TraceSink; }

namespace harness {

/** Full-system configuration (defaults reproduce Table 1). */
struct SystemConfig
{
    noc::NetworkConfig noc;       ///< 6-cube (64 nodes) by default
    mem::MemoryConfig memory;     ///< caches/DRAM per Table 1
    power::PowerParams power;     ///< TDPmax-relative power model
    std::uint64_t seed = 1;       ///< workload randomness seed

    unsigned numNodes() const { return noc.nodes(); }

    /** The paper's machine (Table 1): 64 nodes. */
    static SystemConfig paperDefault();

    /** A small machine for tests (2^dimension nodes). */
    static SystemConfig small(unsigned dimension);
};

/** One simulated multiprocessor. */
class Machine
{
  public:
    explicit Machine(const SystemConfig& config);

    const SystemConfig& config() const { return cfg; }
    EventQueue& eventQueue() { return eq; }
    noc::Network& network() { return *net; }
    mem::MemorySystem& memory() { return *mem_; }

    cpu::Cpu& cpu(NodeId n) { return *cpus.at(n); }
    cpu::ThreadContext& thread(ThreadId t) { return *threads.at(t); }

    /** All thread contexts, in thread-id order. */
    std::vector<cpu::ThreadContext*> threadPtrs();

    /**
     * Arm @p checker over the whole machine: event queue, fabric and
     * every controller/directory slice. The checker must outlive the
     * machine (destructors cancel pending events through it).
     */
    void attachChecker(check::ProtocolChecker& checker);

    /**
     * Arm fault-injection hooks over the whole machine: network,
     * every cache controller and every CPU. The hooks must outlive
     * the machine.
     */
    void attachFaultHooks(FaultHooks& hooks);

    /**
     * Attach a structured-trace sink to the network and every cache
     * controller (nullptr detaches). The sink must outlive the
     * machine. Event-queue tracing is wired separately through a
     * TraceQueueObserver by the experiment runner, so tracing
     * composes with an attached checker.
     */
    void attachTraceSink(obs::TraceSink* sink);

    /**
     * Drain the event queue and close every CPU's accounting
     * interval.
     * @return the final simulated tick.
     */
    Tick run();

    /**
     * Close every CPU's accounting interval after the event queue was
     * drained by an external driver — the conservative PDES runner
     * (harness/parallel_sim.hh) drives eq through a pdes::Engine and
     * then calls this. run() is exactly drain + finalize().
     * @return the final simulated tick.
     */
    Tick finalize();

    /** Machine-wide energy/time ledger (valid after run()). */
    power::EnergyAccount totalEnergy() const;

    /**
     * Walk every component's statistics (network, DRAM, directories,
     * controllers, CPUs) through @p v, one begin/endGroup bracket per
     * component. Renderers live in src/obs/stat_writers.hh.
     */
    void visitStats(stats::StatVisitor& v);

  private:
    SystemConfig cfg;
    EventQueue eq;
    std::unique_ptr<noc::Network> net;
    std::unique_ptr<mem::MemorySystem> mem_;
    std::vector<std::unique_ptr<cpu::Cpu>> cpus;
    std::vector<std::unique_ptr<cpu::ThreadContext>> threads;
};

} // namespace harness
} // namespace tb

#endif // TB_HARNESS_MACHINE_HH_
