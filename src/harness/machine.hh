/**
 * @file
 * Whole-machine assembly: Table 1's 64-node CC-NUMA multiprocessor as
 * one object — event queue(s), hypercube network, coherent memory
 * system, one CPU + thread context per node.
 *
 * A machine can be built *partitioned*: its nodes are split into
 * 2^j contiguous clusters, each with its own event queue, so a
 * conservative PDES engine (sim/pdes.hh) can run the clusters on
 * different host threads within ONE simulation. Cluster queues are put
 * in keyed mode at construction — before any component schedules —
 * which makes event ordering independent of which host thread merges
 * what when; a partitioned run produces byte-identical artifacts at
 * any --sim-threads count. Partitioned machines must be driven by
 * harness::runMachinePdes (run() refuses), and serial-only instruments
 * (protocol checker) refuse to attach to them.
 */

#ifndef TB_HARNESS_MACHINE_HH_
#define TB_HARNESS_MACHINE_HH_

#include <memory>
#include <vector>

#include "cpu/cpu.hh"
#include "cpu/thread_context.hh"
#include "mem/memory_system.hh"
#include "noc/network.hh"
#include "power/energy_model.hh"
#include "sim/event_queue.hh"
#include "sim/hooks.hh"

namespace tb {

class FaultHooks;

namespace check { class ProtocolChecker; }

namespace obs { class TraceSink; }

namespace harness {

/** Full-system configuration (defaults reproduce Table 1). */
struct SystemConfig
{
    noc::NetworkConfig noc;       ///< 6-cube (64 nodes) by default
    mem::MemoryConfig memory;     ///< caches/DRAM per Table 1
    power::PowerParams power;     ///< TDPmax-relative power model
    std::uint64_t seed = 1;       ///< workload randomness seed

    unsigned numNodes() const { return noc.nodes(); }

    /** The paper's machine (Table 1): 64 nodes. */
    static SystemConfig paperDefault();

    /** A small machine for tests (2^dimension nodes). */
    static SystemConfig small(unsigned dimension);
};

/** One simulated multiprocessor. */
class Machine
{
  public:
    /**
     * @param partitions split the nodes into this many contiguous
     *        clusters, each on its own event queue (power of two
     *        dividing the node count; 1 = classic serial machine).
     */
    explicit Machine(const SystemConfig& config, unsigned partitions = 1);

    const SystemConfig& config() const { return cfg; }

    /**
     * The machine's root event queue: the single queue of a serial
     * machine, cluster 0's queue of a partitioned one. Component code
     * must not use this to schedule onto other clusters' nodes.
     */
    EventQueue& eventQueue() { return rootQueue(); }

    noc::Network& network() { return *net; }
    mem::MemorySystem& memory() { return *mem_; }

    cpu::Cpu& cpu(NodeId n) { return *cpus.at(n); }
    cpu::ThreadContext& thread(ThreadId t) { return *threads.at(t); }

    /** All thread contexts, in thread-id order. */
    std::vector<cpu::ThreadContext*> threadPtrs();

    /** Number of clusters this machine was built with (>= 1). */
    unsigned partitions() const { return parts_; }

    /** Cluster @p c's event queue (partitioned machines only). */
    EventQueue& clusterQueue(unsigned c);

    /** Cluster of node @p n (0 on a serial machine). */
    unsigned cluster(NodeId n) const { return binding.nodeCluster[n]; }

    /**
     * The node-to-queue map shared with the network. runMachinePdes
     * installs (and uninstalls) the engine's crossSchedule channel
     * here around a partitioned run.
     */
    noc::PartitionBinding& partitionBinding() { return binding; }

    /**
     * Arm @p checker over the whole machine: event queue, fabric,
     * every controller/directory slice, and the NoC delivery audit.
     * The checker must outlive the machine (destructors cancel pending
     * events through it). Serial machines only — the checker's global
     * bookkeeping assumes one totally-ordered event stream.
     */
    void attachChecker(check::ProtocolChecker& checker);

    /**
     * Arm fault-injection hooks over the whole machine: network,
     * every cache controller and every CPU. The hooks must outlive
     * the machine.
     */
    void attachFaultHooks(FaultHooks& hooks);

    /**
     * Attach a structured-trace sink to the network and every cache
     * controller (nullptr detaches). The sink must outlive the
     * machine. Event-queue tracing is wired separately through a
     * TraceQueueObserver by the experiment runner, so tracing
     * composes with an attached checker.
     */
    void attachTraceSink(obs::TraceSink* sink);

    /**
     * Drain the event queue and close every CPU's accounting
     * interval. Serial machines only — a partitioned machine's queues
     * must be driven together by runMachinePdes.
     * @return the final simulated tick.
     */
    Tick run();

    /**
     * Close every CPU's accounting interval after the queue(s) were
     * drained by an external driver — the conservative PDES runner
     * (harness/parallel_sim.hh) drives the machine through a
     * pdes::Engine and then calls this. run() is exactly drain +
     * finalize().
     * @return the final simulated tick (max over all queues).
     */
    Tick finalize();

    /** Machine-wide energy/time ledger (valid after run()). */
    power::EnergyAccount totalEnergy() const;

    /**
     * Walk every component's statistics (network, DRAM, directories,
     * controllers, CPUs) through @p v, one begin/endGroup bracket per
     * component. Renderers live in src/obs/stat_writers.hh.
     */
    void visitStats(stats::StatVisitor& v);

  private:
    EventQueue& rootQueue() { return parts_ > 1 ? *clusterQs[0] : eq; }

    SystemConfig cfg;
    unsigned parts_ = 1;
    EventQueue eq;
    /** Per-cluster queues (empty on a serial machine). */
    std::vector<std::unique_ptr<EventQueue>> clusterQs;
    /**
     * Machine-wide instrumentation seams. Components hold a pointer to
     * this one struct; attach* methods mutate its fields in place.
     */
    Hooks hooks;
    noc::PartitionBinding binding;
    std::unique_ptr<noc::Network> net;
    std::unique_ptr<mem::MemorySystem> mem_;
    std::vector<std::unique_ptr<cpu::Cpu>> cpus;
    std::vector<std::unique_ptr<cpu::ThreadContext>> threads;
};

} // namespace harness
} // namespace tb

#endif // TB_HARNESS_MACHINE_HH_
