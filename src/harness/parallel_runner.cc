#include "harness/parallel_runner.hh"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

namespace tb {
namespace harness {

void
ParallelCampaignRunner::run(
    std::size_t count,
    const std::function<void(std::size_t)>& point) const
{
    if (count == 0)
        return;

    const unsigned workers =
        static_cast<unsigned>(std::min<std::size_t>(jobs_, count));

    std::vector<std::exception_ptr> errors(count);

    if (workers <= 1) {
        for (std::size_t i = 0; i < count; ++i) {
            try {
                point(i);
            } catch (...) {
                errors[i] = std::current_exception();
            }
        }
        rethrowAggregated(errors);
        return;
    }

    // Concurrency discipline (not expressible to -Wthread-safety, see
    // sim/thread_safety.hh): there is no mutex here by design. `next`
    // is a lock-free claim counter, each claimed index is owned by
    // exactly one worker, and `errors[i]` is only ever written by the
    // worker that claimed i — writes are index-disjoint. The join
    // below is the sole synchronization edge; after it the caller
    // thread reads `errors` exclusively.
    std::atomic<std::size_t> next{0};

    const auto worker = [&]() {
        for (;;) {
            const std::size_t i =
                next.fetch_add(1, std::memory_order_relaxed);
            if (i >= count)
                return;
            try {
                point(i);
            } catch (...) {
                errors[i] = std::current_exception();
            }
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (unsigned w = 0; w < workers; ++w)
        pool.emplace_back(worker);
    for (auto& t : pool)
        t.join();

    rethrowAggregated(errors);
}

void
ParallelCampaignRunner::rethrowAggregated(
    const std::vector<std::exception_ptr>& errors)
{
    std::vector<std::size_t> failed;
    std::string first_what;
    for (std::size_t i = 0; i < errors.size(); ++i) {
        if (!errors[i])
            continue;
        if (failed.empty()) {
            try {
                std::rethrow_exception(errors[i]);
            } catch (const std::exception& e) {
                first_what = e.what();
            } catch (...) {
                first_what = "unknown exception";
            }
        }
        failed.push_back(i);
    }
    if (failed.empty())
        return;
    if (failed.size() == 1) {
        // A single failure rethrows unchanged so callers can still
        // catch the concrete type.
        std::rethrow_exception(errors[failed.front()]);
    }
    std::string msg = std::to_string(failed.size()) +
                      " campaign points failed (indices";
    for (std::size_t i : failed)
        msg += ' ' + std::to_string(i);
    msg += "); first: " + first_what;
    throw std::runtime_error(msg);
}

unsigned
ParallelCampaignRunner::parseJobsArg(int argc, char** argv)
{
    const auto usage = [&](const char* text) {
        std::fprintf(stderr,
                     "%s: --jobs: '%s' is not a positive integer\n"
                     "usage: %s [--jobs N]\n",
                     argv[0], text, argv[0]);
        std::exit(2);
    };
    unsigned jobs = 1;
    for (int i = 1; i < argc; ++i) {
        const char* text = nullptr;
        if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc)
            text = argv[++i];
        else if (std::strncmp(argv[i], "--jobs=", 7) == 0)
            text = argv[i] + 7;
        if (!text)
            continue;
        // Strict: the whole operand must be one integer >= 1 —
        // `--jobs 4x` or `--jobs garbage` must not silently
        // serialize the campaign.
        errno = 0;
        char* end = nullptr;
        const long v = std::strtol(text, &end, 10);
        if (end == text || *end != '\0' || errno == ERANGE || v < 1)
            usage(text);
        jobs = static_cast<unsigned>(v);
    }
    return jobs;
}

} // namespace harness
} // namespace tb
