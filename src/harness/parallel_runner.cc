#include "harness/parallel_runner.hh"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <thread>
#include <vector>

namespace tb {
namespace harness {

void
ParallelCampaignRunner::run(
    std::size_t count,
    const std::function<void(std::size_t)>& point) const
{
    if (count == 0)
        return;

    const unsigned workers =
        static_cast<unsigned>(std::min<std::size_t>(jobs_, count));

    std::vector<std::exception_ptr> errors(count);

    if (workers <= 1) {
        for (std::size_t i = 0; i < count; ++i) {
            try {
                point(i);
            } catch (...) {
                errors[i] = std::current_exception();
            }
        }
        for (auto& e : errors) {
            if (e)
                std::rethrow_exception(e);
        }
        return;
    }

    std::atomic<std::size_t> next{0};

    const auto worker = [&]() {
        for (;;) {
            const std::size_t i =
                next.fetch_add(1, std::memory_order_relaxed);
            if (i >= count)
                return;
            try {
                point(i);
            } catch (...) {
                errors[i] = std::current_exception();
            }
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (unsigned w = 0; w < workers; ++w)
        pool.emplace_back(worker);
    for (auto& t : pool)
        t.join();

    for (auto& e : errors) {
        if (e)
            std::rethrow_exception(e);
    }
}

unsigned
ParallelCampaignRunner::parseJobsArg(int argc, char** argv)
{
    long jobs = 1;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc)
            jobs = std::strtol(argv[i + 1], nullptr, 10);
        else if (std::strncmp(argv[i], "--jobs=", 7) == 0)
            jobs = std::strtol(argv[i] + 7, nullptr, 10);
    }
    if (jobs < 1)
        jobs = 1;
    return static_cast<unsigned>(jobs);
}

} // namespace harness
} // namespace tb
