#include "harness/campaign_supervisor.hh"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstring>
#include <memory>
#include <mutex>
#include <sstream>

#include <fcntl.h>
#include <sys/wait.h>
#include <unistd.h>

#include "harness/posix_io.hh"
#include "obs/json_writer.hh"
#include "sim/logging.hh"

namespace tb {
namespace harness {

namespace {

volatile std::sig_atomic_t g_stop_requested = 0;

void
sigintHandler(int)
{
    // Second ^C: the user really means it — restore default handling
    // and die on the spot (the journal is flushed per record anyway).
    if (g_stop_requested) {
        std::signal(SIGINT, SIG_DFL);
        std::raise(SIGINT);
        return;
    }
    g_stop_requested = 1;
}

std::uint64_t
splitmix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

/** Sleep @p ms, polling the stop flag so ^C cuts a backoff short. */
void
sleepInterruptible(std::uint64_t ms)
{
    using namespace std::chrono;
    const auto now = [] {
        // tblint-allow(TBL002): genuine wall-clock — retry backoff
        return steady_clock::now();
    };
    const auto until = now() + milliseconds(ms);
    while (!g_stop_requested && now() < until) {
        const auto left = duration_cast<milliseconds>(until - now());
        // tblint-allow(TBL002): retry backoff runs on host time
        std::this_thread::sleep_for(
            std::min<milliseconds>(left, milliseconds(10)));
    }
}

} // namespace

const char*
outcomeName(PointOutcome o)
{
    switch (o) {
      case PointOutcome::Ok:               return "ok";
      case PointOutcome::Journaled:        return "journaled";
      case PointOutcome::Cached:           return "cached";
      case PointOutcome::Exception:        return "exception";
      case PointOutcome::CheckerViolation: return "checker-violation";
      case PointOutcome::Timeout:          return "timeout";
      case PointOutcome::Crash:            return "crash";
      case PointOutcome::NotRun:           return "not-run";
    }
    return "?";
}

std::size_t
SupervisorReport::count(PointOutcome o) const
{
    std::size_t n = 0;
    for (const PointRecord& r : points)
        n += r.outcome == o;
    return n;
}

std::size_t
SupervisorReport::failures() const
{
    return count(PointOutcome::Exception) +
           count(PointOutcome::CheckerViolation) +
           count(PointOutcome::Timeout) + count(PointOutcome::Crash);
}

void
SupervisorReport::writeManifest(std::ostream& os,
                                const std::string& campaign) const
{
    for (std::size_t i = 0; i < points.size(); ++i) {
        const PointRecord& r = points[i];
        if (r.outcome == PointOutcome::Ok ||
            r.outcome == PointOutcome::Journaled ||
            r.outcome == PointOutcome::Cached)
            continue;
        if (r.outcome == PointOutcome::NotRun && !interrupted)
            continue;
        obs::JsonWriter w(os);
        w.beginObject();
        w.field("campaign", campaign)
            .field("kind", "manifest")
            .field("point", i)
            .field("outcome", outcomeName(r.outcome))
            .field("attempts", r.attempts)
            .field("error", r.message)
            .field("repro", r.repro);
        w.endObject();
        os << '\n';
    }
    if (interrupted) {
        obs::JsonWriter w(os);
        w.beginObject();
        w.field("campaign", campaign)
            .field("kind", "manifest")
            .field("outcome", "interrupted");
        w.endObject();
        os << '\n';
    }
}

std::string
SupervisorReport::summaryJson(const std::string& campaign) const
{
    std::ostringstream os;
    obs::JsonWriter w(os);
    w.beginObject();
    w.field("campaign", campaign)
        .field("kind", "supervisor")
        .field("points", points.size())
        .field("ok", count(PointOutcome::Ok))
        .field("journaled", count(PointOutcome::Journaled))
        .field("cached", count(PointOutcome::Cached))
        .field("retries", retries)
        .field("timeouts", count(PointOutcome::Timeout))
        .field("crashes", count(PointOutcome::Crash))
        .field("exceptions", count(PointOutcome::Exception))
        .field("checker_violations",
               count(PointOutcome::CheckerViolation))
        .field("not_run", count(PointOutcome::NotRun))
        .field("interrupted", interrupted);
    w.endObject();
    os << '\n';
    return os.str();
}

std::uint64_t
CampaignSupervisor::backoffDelayMs(const SupervisorPolicy& p,
                                   std::size_t index, unsigned attempt)
{
    if (p.backoffBaseMs == 0 || attempt < 2)
        return 0;
    const unsigned shift = std::min(attempt - 2u, 20u);
    std::uint64_t delay = p.backoffBaseMs << shift;
    delay = std::min(delay, p.backoffCapMs);
    const std::uint64_t jitter =
        splitmix64(p.seed ^ splitmix64(index) ^
                   splitmix64(0x5eedull + attempt)) %
        (delay / 2 + 1);
    return std::min(delay + jitter, p.backoffCapMs);
}

void
CampaignSupervisor::installSigintHandler()
{
    std::signal(SIGINT, sigintHandler);
}

bool
CampaignSupervisor::interruptRequested()
{
    return g_stop_requested != 0;
}

void
CampaignSupervisor::clearInterruptForTest()
{
    g_stop_requested = 0;
}

CampaignSupervisor::~CampaignSupervisor()
{
    LockGuard lock(mu_);
    for (std::thread& t : abandoned_) {
        if (t.joinable())
            t.detach();
    }
}

void
CampaignSupervisor::joinAbandonedForTest()
{
    LockGuard lock(mu_);
    for (std::thread& t : abandoned_) {
        if (t.joinable())
            t.join();
    }
    abandoned_.clear();
}

namespace {

/** Run one attempt on the calling thread and classify the outcome. */
CampaignSupervisor::Attempt
classifyRun(const std::function<std::string(std::size_t)>& fn,
            std::size_t i)
{
    CampaignSupervisor::Attempt a;
    try {
        a.payload = fn(i);
        a.outcome = PointOutcome::Ok;
    } catch (const PanicError& e) {
        a.outcome = PointOutcome::CheckerViolation;
        a.payload = e.what();
    } catch (const std::exception& e) {
        a.outcome = PointOutcome::Exception;
        a.payload = e.what();
    } catch (...) {
        a.outcome = PointOutcome::Exception;
        a.payload = "unknown exception";
    }
    return a;
}

} // namespace

CampaignSupervisor::Attempt
CampaignSupervisor::runAttemptInProcess(const PointTask& task,
                                        std::size_t i)
{
    if (policy_.deadlineMs == 0)
        return classifyRun(task.run, i);

    // Deadline mode: run the attempt on its own thread and wait with
    // a timeout. A timed-out thread cannot be killed — it is moved to
    // abandoned_ (kept alive until process exit) and the point is
    // classified Timeout. The control block is shared so the
    // abandoned attempt never touches freed supervisor state.
    struct Box
    {
        std::mutex mu;
        std::condition_variable cv;
        bool done = false;
        Attempt a;
    };
    auto box = std::make_shared<Box>();
    const std::function<std::string(std::size_t)> fn = task.run;
    std::thread th([box, fn, i]() {
        Attempt a = classifyRun(fn, i);
        {
            std::lock_guard<std::mutex> lock(box->mu);
            box->a = std::move(a);
            box->done = true;
        }
        box->cv.notify_all();
    });

    std::unique_lock<std::mutex> lock(box->mu);
    const bool done = box->cv.wait_for(
        lock, std::chrono::milliseconds(policy_.deadlineMs),
        [&]() { return box->done; });
    lock.unlock();
    if (done) {
        th.join();
        return box->a;
    }
    {
        LockGuard g(mu_);
        abandoned_.push_back(std::move(th));
    }
    Attempt a;
    a.outcome = PointOutcome::Timeout;
    a.payload = "deadline of " + std::to_string(policy_.deadlineMs) +
                " ms exceeded (attempt thread abandoned; use "
                "--isolate to kill hung points)";
    return a;
}

CampaignSupervisor::Attempt
CampaignSupervisor::runAttemptForked(const PointTask& task,
                                     std::size_t i)
{
    using namespace std::chrono;
    Attempt a;

    int fds[2];
    if (::pipe(fds) != 0) {
        a.payload = std::string("pipe: ") + errnoMessage(errno);
        return a;
    }
    const pid_t pid = ::fork();
    if (pid < 0) {
        ::close(fds[0]);
        ::close(fds[1]);
        a.payload = std::string("fork: ") + errnoMessage(errno);
        return a;
    }
    if (pid == 0) {
        // Child: run the point, stream the artifact (or diagnostic)
        // back, and _exit with a classification code — no atexit, no
        // stdio flush (inherited buffers would duplicate output).
        // writeFull retries EINTR; with SIGPIPE ignored, a parent that
        // died mid-transfer surfaces as EPIPE and the child just
        // exits — either way the parent side classifies the point.
        ::close(fds[0]);
        const Attempt child = classifyRun(task.run, i);
        writeFull(fds[1], child.payload.data(), child.payload.size());
        ::close(fds[1]);
        int code = 3;
        if (child.outcome == PointOutcome::Ok)
            code = 0;
        else if (child.outcome == PointOutcome::CheckerViolation)
            code = 4;
        ::_exit(code);
    }

    // Parent: drain the pipe while waiting (a large artifact must not
    // deadlock against a full pipe buffer), enforce the deadline with
    // SIGKILL, then classify by exit status.
    ::close(fds[1]);
    ::fcntl(fds[0], F_SETFL, O_NONBLOCK);
    std::string payload;
    char buf[4096];
    // tblint-allow(TBL002): genuine wall-clock — attempt deadline
    const auto start = steady_clock::now();
    int status = 0;
    bool timed_out = false;
    for (;;) {
        // readSome retries EINTR (SIGINT/SIGCHLD must not abort the
        // drain) but passes EAGAIN through — the pipe is non-blocking.
        for (;;) {
            const ssize_t r = readSome(fds[0], buf, sizeof(buf));
            if (r > 0)
                payload.append(buf, static_cast<std::size_t>(r));
            else
                break;
        }
        pid_t w;
        do {
            w = ::waitpid(pid, &status, WNOHANG);
        } while (w < 0 && errno == EINTR);
        if (w == pid)
            break;
        if (policy_.deadlineMs != 0 &&
            // tblint-allow(TBL002): genuine wall-clock — deadline
            duration_cast<milliseconds>(steady_clock::now() - start)
                    .count() >=
                static_cast<long long>(policy_.deadlineMs)) {
            ::kill(pid, SIGKILL);
            pid_t rw;
            do {
                rw = ::waitpid(pid, &status, 0);
            } while (rw < 0 && errno == EINTR);
            timed_out = true;
            break;
        }
        // tblint-allow(TBL002): deadline watch on the forked child
        std::this_thread::sleep_for(milliseconds(1));
    }
    for (;;) {
        const ssize_t r = readSome(fds[0], buf, sizeof(buf));
        if (r > 0)
            payload.append(buf, static_cast<std::size_t>(r));
        else
            break;
    }
    ::close(fds[0]);

    if (timed_out) {
        a.outcome = PointOutcome::Timeout;
        a.payload = "deadline of " +
                    std::to_string(policy_.deadlineMs) +
                    " ms exceeded (child killed)";
        return a;
    }
    if (WIFEXITED(status)) {
        const int code = WEXITSTATUS(status);
        if (code == 0) {
            a.outcome = PointOutcome::Ok;
            a.payload = std::move(payload);
        } else if (code == 3) {
            a.outcome = PointOutcome::Exception;
            a.payload = payload.empty() ? "(no diagnostic)" : payload;
        } else if (code == 4) {
            a.outcome = PointOutcome::CheckerViolation;
            a.payload = payload.empty() ? "(no diagnostic)" : payload;
        } else {
            // Not one of ours: the child died some other way (e.g. a
            // sanitizer abort) — contained, but still a crash.
            a.outcome = PointOutcome::Crash;
            a.payload =
                "child exited with status " + std::to_string(code);
            if (!payload.empty())
                a.payload += ": " + payload;
        }
        return a;
    }
    if (WIFSIGNALED(status)) {
        const int sig = WTERMSIG(status);
        a.outcome = PointOutcome::Crash;
        a.payload = "child killed by signal " + std::to_string(sig) +
                    " (" + signalName(sig) + ")";
        return a;
    }
    a.outcome = PointOutcome::Crash;
    a.payload = "child vanished (unparseable wait status)";
    return a;
}

void
CampaignSupervisor::supervisePoint(const PointTask& task,
                                   std::size_t i,
                                   SupervisorReport* report)
{
    PointRecord& rec = report->points[i];
    const std::uint64_t key =
        task.key ? task.key(i)
                 : fnv1a64("point:" + std::to_string(i));

    if (journal_ && journal_->active()) {
        std::string stored;
        if (journal_->lookup(i, key, &stored)) {
            results_[i] = std::move(stored);
            rec.outcome = PointOutcome::Journaled;
            return;
        }
    }
    if (cacheLookup_) {
        std::string stored;
        if (cacheLookup_(key, &stored)) {
            results_[i] = std::move(stored);
            rec.outcome = PointOutcome::Cached;
            // A cache hit still lands in the journal so a later
            // --resume of this campaign replays it without the cache.
            if (journal_ && journal_->active()) {
                journal_->record(i, key,
                                 task.seed ? task.seed(i) : 0,
                                 results_[i]);
            }
            return;
        }
    }

    Attempt last;
    last.outcome = PointOutcome::NotRun;
    for (unsigned attempt = 1; attempt <= policy_.maxAttempts;
         ++attempt) {
        if (attempt > 1) {
            retries_.fetch_add(1, std::memory_order_relaxed);
            sleepInterruptible(backoffDelayMs(policy_, i, attempt));
            if (interruptRequested())
                break;
        }
        rec.attempts = attempt;
        last = policy_.isolate ? runAttemptForked(task, i)
                               : runAttemptInProcess(task, i);
        if (last.outcome == PointOutcome::Ok) {
            results_[i] = std::move(last.payload);
            rec.outcome = PointOutcome::Ok;
            if (journal_ && journal_->active()) {
                journal_->record(i, key,
                                 task.seed ? task.seed(i) : 0,
                                 results_[i]);
            }
            if (cacheStore_)
                cacheStore_(key, results_[i]);
            return;
        }
        if (interruptRequested())
            break;
    }
    rec.outcome = last.outcome;
    rec.message = std::move(last.payload);
    rec.repro = task.repro ? task.repro(i) : "";
}

SupervisorReport
CampaignSupervisor::run(std::size_t count, const PointTask& task)
{
    // A child of --isolate may write its artifact into a pipe whose
    // parent-side reader is gone (campaign interrupted): EPIPE, not
    // process death.
    ignoreSigpipe();

    SupervisorReport report;
    report.points.assign(count, PointRecord{});
    results_.assign(count, std::string());
    retries_.store(0, std::memory_order_relaxed);
    if (count == 0) {
        report.interrupted = interruptRequested();
        return report;
    }

    const unsigned workers = static_cast<unsigned>(
        std::min<std::size_t>(policy_.jobs == 0 ? 1 : policy_.jobs,
                              count));
    std::atomic<std::size_t> next{0};
    const auto worker = [&]() {
        for (;;) {
            if (interruptRequested())
                return;
            const std::size_t i =
                next.fetch_add(1, std::memory_order_relaxed);
            if (i >= count)
                return;
            supervisePoint(task, i, &report);
        }
    };

    if (workers <= 1) {
        worker();
    } else {
        std::vector<std::thread> pool;
        pool.reserve(workers);
        for (unsigned w = 0; w < workers; ++w)
            pool.emplace_back(worker);
        for (auto& t : pool)
            t.join();
    }

    report.retries = retries_.load(std::memory_order_relaxed);
    report.interrupted = interruptRequested();
    if (report.interrupted && task.repro) {
        for (std::size_t i = 0; i < count; ++i) {
            if (report.points[i].outcome == PointOutcome::NotRun)
                report.points[i].repro = task.repro(i);
        }
    }
    return report;
}

} // namespace harness
} // namespace tb
