/**
 * @file
 * Parallel campaign runner: shards independent sweep points across
 * host threads.
 *
 * Every simulation in this codebase is single-threaded by design (one
 * EventQueue per Machine, no shared mutable state between machines —
 * see docs/PERFORMANCE.md for the audit), so a campaign of independent
 * points parallelizes trivially: each worker builds its own Machine
 * from the point's seed and runs it to completion. Determinism is
 * preserved by construction — a point's result depends only on its
 * (config, seed), never on scheduling — and output stays byte-identical
 * to a serial run because callers deposit results by point index and
 * emit them in index order after the join.
 */

#ifndef TB_HARNESS_PARALLEL_RUNNER_HH_
#define TB_HARNESS_PARALLEL_RUNNER_HH_

#include <cstddef>
#include <exception>
#include <functional>
#include <vector>

namespace tb {
namespace harness {

/** Executes a fixed-size set of independent points on worker threads. */
class ParallelCampaignRunner
{
  public:
    /** @param jobs Worker threads; 0 and 1 both mean "run inline". */
    explicit ParallelCampaignRunner(unsigned jobs = 1)
        : jobs_(jobs == 0 ? 1 : jobs)
    {}

    /** Configured worker count. */
    unsigned jobs() const { return jobs_; }

    /**
     * Run @p point(i) for every i in [0, count). Points are claimed
     * from a shared counter, so workers stay busy regardless of how
     * unevenly the points are sized. With jobs() == 1 (or count <= 1)
     * everything runs inline on the caller thread — bit-identical to
     * the parallel path as long as each point only touches its own
     * state.
     *
     * A point that throws does not stop the others; after all points
     * finish, a single failure rethrows that point's exception
     * unchanged, while multiple failures throw one std::runtime_error
     * aggregating *every* failed index plus the first diagnostic —
     * the campaign never hides how much of it failed.
     *
     * (CampaignSupervisor wraps this model with deadlines, retries,
     * crash isolation and journaled resume — prefer it for long
     * campaigns.)
     */
    void run(std::size_t count,
             const std::function<void(std::size_t)>& point) const;

    /**
     * Parse a trailing `--jobs N` / `--jobs=N` option. Absent means
     * 1; a malformed or non-positive value prints a usage error and
     * exits with status 2 (never silently serializes the campaign).
     */
    static unsigned parseJobsArg(int argc, char** argv);

  private:
    static void rethrowAggregated(
        const std::vector<std::exception_ptr>& errors);

    unsigned jobs_;
};

} // namespace harness
} // namespace tb

#endif // TB_HARNESS_PARALLEL_RUNNER_HH_
