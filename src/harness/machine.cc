#include "harness/machine.hh"

#include <string>

#include "check/protocol_checker.hh"

namespace tb {
namespace harness {

SystemConfig
SystemConfig::paperDefault()
{
    SystemConfig c;
    c.noc.dimension = 6; // 64 nodes
    return c;
}

SystemConfig
SystemConfig::small(unsigned dimension)
{
    SystemConfig c;
    c.noc.dimension = dimension;
    return c;
}

Machine::Machine(const SystemConfig& config)
    : cfg(config)
{
    net = std::make_unique<noc::Network>(eq, cfg.noc);
    mem_ = std::make_unique<mem::MemorySystem>(eq, *net, cfg.memory);
    const unsigned n = cfg.numNodes();
    cpus.reserve(n);
    threads.reserve(n);
    for (NodeId i = 0; i < n; ++i) {
        const std::string prefix = "node" + std::to_string(i);
        cpus.push_back(std::make_unique<cpu::Cpu>(
            eq, i, mem_->controller(i), cfg.power, prefix + ".cpu"));
        threads.push_back(std::make_unique<cpu::ThreadContext>(
            eq, i, *cpus.back(), mem_->controller(i),
            prefix + ".thread"));
    }
}

void
Machine::attachChecker(check::ProtocolChecker& checker)
{
    checker.bindClock(&eq);
    checker.bindAddressMap(&mem_->addressMap());
    eq.setObserver(&checker);
    mem_->attachObserver(&checker);
}

void
Machine::attachFaultHooks(FaultHooks& hooks)
{
    net->setFaultHooks(&hooks);
    for (NodeId n = 0; n < cfg.numNodes(); ++n) {
        mem_->controller(n).setFaultHooks(&hooks);
        cpus[n]->setFaultHooks(&hooks);
    }
}

void
Machine::attachTraceSink(obs::TraceSink* sink)
{
    net->setTraceSink(sink);
    for (NodeId n = 0; n < cfg.numNodes(); ++n)
        mem_->controller(n).setTraceSink(sink);
}

std::vector<cpu::ThreadContext*>
Machine::threadPtrs()
{
    std::vector<cpu::ThreadContext*> out;
    out.reserve(threads.size());
    for (auto& t : threads)
        out.push_back(t.get());
    return out;
}

Tick
Machine::run()
{
    eq.run();
    return finalize();
}

Tick
Machine::finalize()
{
    for (auto& c : cpus)
        c->finalize();
    return eq.now();
}

power::EnergyAccount
Machine::totalEnergy() const
{
    power::EnergyAccount total;
    for (const auto& c : cpus)
        total.add(c->energy());
    return total;
}

void
Machine::visitStats(stats::StatVisitor& v)
{
    const auto group = [&v](const std::string& name,
                            const stats::StatGroup& g) {
        v.beginGroup(name);
        g.visit(v);
        v.endGroup();
    };
    group(net->name(), net->statistics());
    for (NodeId n = 0; n < cfg.numNodes(); ++n) {
        group(mem_->controller(n).name(),
              mem_->controller(n).statistics());
        group(mem_->directory(n).name(), mem_->directory(n).statistics());
        group(mem_->dram(n).name(), mem_->dram(n).statistics());
        group(cpus[n]->name(), cpus[n]->statistics());
    }
}

} // namespace harness
} // namespace tb
