#include "harness/machine.hh"

#include <algorithm>
#include <string>

#include "check/protocol_checker.hh"
#include "sim/logging.hh"

namespace tb {
namespace harness {

SystemConfig
SystemConfig::paperDefault()
{
    SystemConfig c;
    c.noc.dimension = 6; // 64 nodes
    return c;
}

SystemConfig
SystemConfig::small(unsigned dimension)
{
    SystemConfig c;
    c.noc.dimension = dimension;
    return c;
}

Machine::Machine(const SystemConfig& config, unsigned partitions)
    : cfg(config), parts_(partitions == 0 ? 1 : partitions)
{
    const unsigned n = cfg.numNodes();
    if ((parts_ & (parts_ - 1)) != 0 || parts_ > n)
        fatal("machine partitions must be a power of two dividing the "
              "node count; got ", parts_, " for ", n, " nodes");
    if (parts_ > 1) {
        clusterQs.reserve(parts_);
        for (unsigned c = 0; c < parts_; ++c) {
            clusterQs.push_back(std::make_unique<EventQueue>());
            // Keyed mode must be set before ANY event is scheduled on
            // the queue: every event then ties by (cluster, local
            // order) instead of global insertion order, which is what
            // makes partitioned runs byte-identical at any host
            // thread count.
            clusterQs.back()->setKeyedStream(
                static_cast<std::uint16_t>(c));
        }
    }

    const unsigned nodes_per_cluster = n / parts_;
    binding.clusters = parts_;
    binding.nodeQueue.resize(n);
    binding.nodeCluster.resize(n);
    for (NodeId i = 0; i < n; ++i) {
        const unsigned c = i / nodes_per_cluster;
        binding.nodeCluster[i] = static_cast<std::uint16_t>(c);
        binding.nodeQueue[i] = parts_ > 1 ? clusterQs[c].get() : &eq;
    }

    net = std::make_unique<noc::Network>(rootQueue(), cfg.noc, "noc",
                                         &hooks);
    net->bindPartitions(&binding);
    auto queue_for = [this](NodeId node) -> EventQueue& {
        return *binding.nodeQueue[node];
    };
    mem_ = std::make_unique<mem::MemorySystem>(rootQueue(), *net,
                                               cfg.memory, &hooks,
                                               queue_for);
    cpus.reserve(n);
    threads.reserve(n);
    for (NodeId i = 0; i < n; ++i) {
        EventQueue& q = queue_for(i);
        const std::string prefix = "node" + std::to_string(i);
        cpus.push_back(std::make_unique<cpu::Cpu>(
            q, i, mem_->controller(i), cfg.power, prefix + ".cpu"));
        threads.push_back(std::make_unique<cpu::ThreadContext>(
            q, i, *cpus.back(), mem_->controller(i),
            prefix + ".thread"));
    }
}

EventQueue&
Machine::clusterQueue(unsigned c)
{
    if (parts_ <= 1) {
        if (c != 0)
            panic("serial machine has only cluster 0");
        return eq;
    }
    return *clusterQs.at(c);
}

void
Machine::attachChecker(check::ProtocolChecker& checker)
{
    if (parts_ > 1)
        panic("the protocol checker requires a serial machine (its "
              "global bookkeeping assumes one totally-ordered event "
              "stream); build the Machine with partitions = 1");
    checker.bindClock(&eq);
    checker.bindAddressMap(&mem_->addressMap());
    eq.setObserver(&checker);
    hooks.check = &checker;
    hooks.nocAudit = &checker;
}

void
Machine::attachFaultHooks(FaultHooks& fault_hooks)
{
    hooks.faults = &fault_hooks;
    for (NodeId n = 0; n < cfg.numNodes(); ++n)
        cpus[n]->setFaultHooks(&fault_hooks);
}

void
Machine::attachTraceSink(obs::TraceSink* sink)
{
    hooks.trace = sink;
}

std::vector<cpu::ThreadContext*>
Machine::threadPtrs()
{
    std::vector<cpu::ThreadContext*> out;
    out.reserve(threads.size());
    for (auto& t : threads)
        out.push_back(t.get());
    return out;
}

Tick
Machine::run()
{
    if (parts_ > 1)
        panic("a partitioned machine cannot be drained serially; "
              "drive it with harness::runMachinePdes");
    eq.run();
    return finalize();
}

Tick
Machine::finalize()
{
    for (auto& c : cpus)
        c->finalize();
    Tick end = eq.now();
    for (auto& q : clusterQs)
        end = std::max(end, q->now());
    return end;
}

power::EnergyAccount
Machine::totalEnergy() const
{
    power::EnergyAccount total;
    for (const auto& c : cpus)
        total.add(c->energy());
    return total;
}

void
Machine::visitStats(stats::StatVisitor& v)
{
    const auto group = [&v](const std::string& name,
                            const stats::StatGroup& g) {
        v.beginGroup(name);
        g.visit(v);
        v.endGroup();
    };
    group(net->name(), net->statistics());
    for (NodeId n = 0; n < cfg.numNodes(); ++n) {
        group(mem_->controller(n).name(),
              mem_->controller(n).statistics());
        group(mem_->directory(n).name(), mem_->directory(n).statistics());
        group(mem_->dram(n).name(), mem_->dram(n).statistics());
        group(cpus[n]->name(), cpus[n]->statistics());
    }
}

} // namespace harness
} // namespace tb
