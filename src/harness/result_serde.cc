#include "harness/result_serde.hh"

#include <cerrno>
#include <cinttypes>
#include <cstdlib>
#include <cstring>
#include <map>
#include <sstream>
#include <vector>

#include "obs/json_writer.hh"
#include "sim/logging.hh"

namespace tb {
namespace harness {

namespace {

constexpr const char* kMagic = "TBRESULT1";

/** Strings use the shared JSON escape policy (obs::JsonWriter). */
std::string
quote(const std::string& s)
{
    return "\"" + obs::JsonWriter::escape(s) + "\"";
}

/** Doubles use the shared shortest-round-trip policy: strtod parses
 *  the exact bits back without paying 17 digits for simple values. */
std::string
num(double v)
{
    return obs::formatDouble(v);
}

/** Split one serialized line into key -> raw value (strings
 *  unquoted/unescaped). */
std::map<std::string, std::string>
fields(const std::string& line)
{
    std::map<std::string, std::string> out;
    std::size_t i = 0;
    const std::size_t n = line.size();
    while (i < n) {
        while (i < n && line[i] == ' ')
            ++i;
        const std::size_t eq = line.find('=', i);
        if (eq == std::string::npos)
            break;
        const std::string key = line.substr(i, eq - i);
        i = eq + 1;
        std::string value;
        if (i < n && line[i] == '"') {
            ++i;
            while (i < n && line[i] != '"') {
                if (line[i] == '\\' && i + 1 < n) {
                    // Full inverse of the shared escape policy.
                    ++i;
                    switch (line[i]) {
                      case 'n': value += '\n'; ++i; break;
                      case 'r': value += '\r'; ++i; break;
                      case 't': value += '\t'; ++i; break;
                      case 'u': {
                        if (i + 4 >= n)
                            fatal("result serde: bad \\u escape for '",
                                  key, "'");
                        unsigned v = 0;
                        for (int k = 0; k < 4; ++k) {
                            const char c = line[++i];
                            v <<= 4;
                            if (c >= '0' && c <= '9')
                                v |= static_cast<unsigned>(c - '0');
                            else if (c >= 'a' && c <= 'f')
                                v |= static_cast<unsigned>(c - 'a' + 10);
                            else if (c >= 'A' && c <= 'F')
                                v |= static_cast<unsigned>(c - 'A' + 10);
                            else
                                fatal("result serde: bad \\u escape "
                                      "for '", key, "'");
                        }
                        value += static_cast<char>(v);
                        ++i;
                        break;
                      }
                      // default: the literal char (quote, backslash)
                      default: value += line[i++]; break;
                    }
                    continue;
                }
                value += line[i++];
            }
            if (i >= n)
                fatal("result serde: unterminated string for '", key,
                      "'");
            ++i; // closing quote
        } else {
            const std::size_t end = line.find(' ', i);
            value = line.substr(
                i, end == std::string::npos ? end : end - i);
            i = end == std::string::npos ? n : end;
        }
        out[key] = std::move(value);
    }
    return out;
}

const std::string&
need(const std::map<std::string, std::string>& f, const char* key)
{
    const auto it = f.find(key);
    if (it == f.end())
        fatal("result serde: missing field '", key, "'");
    return it->second;
}

std::uint64_t
toU64(const std::string& s, const char* key)
{
    errno = 0;
    char* end = nullptr;
    const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
    if (end == s.c_str() || *end != '\0' || errno == ERANGE)
        fatal("result serde: bad integer for '", key, "': ", s);
    return v;
}

double
toF64(const std::string& s, const char* key)
{
    errno = 0;
    char* end = nullptr;
    const double v = std::strtod(s.c_str(), &end);
    if (end == s.c_str() || *end != '\0')
        fatal("result serde: bad number for '", key, "': ", s);
    return v;
}

std::vector<std::string>
splitCommas(const std::string& s)
{
    std::vector<std::string> out;
    std::size_t at = 0;
    while (at <= s.size()) {
        const std::size_t c = s.find(',', at);
        if (c == std::string::npos) {
            out.push_back(s.substr(at));
            break;
        }
        out.push_back(s.substr(at, c - at));
        at = c + 1;
    }
    return out;
}

} // namespace

std::string
serializeResult(const ExperimentResult& r)
{
    std::ostringstream os;
    os << kMagic << " app=" << quote(r.app)
       << " config=" << quote(r.config) << " exec=" << r.execTime
       << " threads=" << r.threads;

    os << " energy=";
    for (std::size_t b = 0; b < r.energy.size(); ++b)
        os << (b ? "," : "") << num(r.energy[b]);
    os << " time=";
    for (std::size_t b = 0; b < r.time.size(); ++b)
        os << (b ? "," : "") << r.time[b];

    const thrifty::SyncStats& s = r.sync;
    os << " stall=" << num(s.totalStallTicks)
       << " inst=" << s.instances << " arr=" << s.arrivals
       << " sleeps=" << s.sleeps << " spins=" << s.spins
       << " cutoffs=" << s.cutoffs << " filt=" << s.filteredUpdates
       << " rticks=" << num(s.residualSpinTicks)
       << " rspins=" << s.residualSpins << " wdog=" << s.watchdogFires
       << " resc=" << s.residualEscalations
       << " quar=" << s.quarantines << " fall=" << s.fallbackEpisodes;

    os << " spec=" << quote(r.faultSpec);
    std::string fc;
    for (const auto& [kind, count] : r.faultCounts) {
        if (!fc.empty())
            fc += ',';
        fc += kind + ':' + std::to_string(count);
    }
    os << " faults=" << quote(fc);
    return os.str();
}

ExperimentResult
deserializeResult(const std::string& line)
{
    if (line.compare(0, std::strlen(kMagic), kMagic) != 0)
        fatal("result serde: missing ", kMagic, " magic");
    const auto f = fields(line.substr(std::strlen(kMagic)));

    ExperimentResult r;
    r.app = need(f, "app");
    r.config = need(f, "config");
    r.execTime = toU64(need(f, "exec"), "exec");
    r.threads =
        static_cast<unsigned>(toU64(need(f, "threads"), "threads"));

    const auto energies = splitCommas(need(f, "energy"));
    const auto times = splitCommas(need(f, "time"));
    if (energies.size() != r.energy.size() ||
        times.size() != r.time.size())
        fatal("result serde: expected ", r.energy.size(),
              " energy/time buckets");
    for (std::size_t b = 0; b < r.energy.size(); ++b) {
        r.energy[b] = toF64(energies[b], "energy");
        r.time[b] = toU64(times[b], "time");
    }

    thrifty::SyncStats& s = r.sync;
    s.totalStallTicks = toF64(need(f, "stall"), "stall");
    s.instances = toU64(need(f, "inst"), "inst");
    s.arrivals = toU64(need(f, "arr"), "arr");
    s.sleeps = toU64(need(f, "sleeps"), "sleeps");
    s.spins = toU64(need(f, "spins"), "spins");
    s.cutoffs = toU64(need(f, "cutoffs"), "cutoffs");
    s.filteredUpdates = toU64(need(f, "filt"), "filt");
    s.residualSpinTicks = toF64(need(f, "rticks"), "rticks");
    s.residualSpins = toU64(need(f, "rspins"), "rspins");
    s.watchdogFires = toU64(need(f, "wdog"), "wdog");
    s.residualEscalations = toU64(need(f, "resc"), "resc");
    s.quarantines = toU64(need(f, "quar"), "quar");
    s.fallbackEpisodes = toU64(need(f, "fall"), "fall");

    r.faultSpec = need(f, "spec");
    const std::string& fc = need(f, "faults");
    if (!fc.empty()) {
        for (const std::string& pair : splitCommas(fc)) {
            const std::size_t colon = pair.rfind(':');
            if (colon == std::string::npos)
                fatal("result serde: bad fault count '", pair, "'");
            r.faultCounts.emplace_back(
                pair.substr(0, colon),
                toU64(pair.substr(colon + 1), "faults"));
        }
    }
    return r;
}

} // namespace harness
} // namespace tb
