#include "harness/experiment.hh"

#include <memory>
#include <utility>

#include "check/protocol_checker.hh"
#include "fault/fault_injector.hh"
#include "harness/parallel_sim.hh"
#include "obs/trace.hh"
#include "sim/logging.hh"
#include "thrifty/conventional_barrier.hh"
#include "thrifty/thrifty_barrier.hh"

namespace tb {
namespace harness {

const char*
configName(ConfigKind k)
{
    switch (k) {
      case ConfigKind::Baseline:    return "Baseline";
      case ConfigKind::ThriftyHalt: return "Thrifty-Halt";
      case ConfigKind::OracleHalt:  return "Oracle-Halt";
      case ConfigKind::Thrifty:     return "Thrifty";
      case ConfigKind::Ideal:       return "Ideal";
    }
    return "?";
}

const char*
configLetter(ConfigKind k)
{
    switch (k) {
      case ConfigKind::Baseline:    return "B";
      case ConfigKind::ThriftyHalt: return "H";
      case ConfigKind::OracleHalt:  return "O";
      case ConfigKind::Thrifty:     return "T";
      case ConfigKind::Ideal:       return "I";
    }
    return "?";
}

thrifty::ThriftyConfig
thriftyConfigFor(ConfigKind k)
{
    switch (k) {
      case ConfigKind::ThriftyHalt:
        return thrifty::ThriftyConfig::thriftyHalt();
      case ConfigKind::OracleHalt:
        return thrifty::ThriftyConfig::oracleHalt();
      case ConfigKind::Thrifty:
        return thrifty::ThriftyConfig::thrifty();
      case ConfigKind::Ideal:
        return thrifty::ThriftyConfig::idealConfig();
      case ConfigKind::Baseline:
        break;
    }
    panic("no thrifty configuration for ", configName(k));
}

ConfigBarrierProvider::ConfigBarrierProvider(
    Machine& machine, ConfigKind k, const thrifty::ThriftyConfig* custom,
    thrifty::SyncStats& sync_stats)
    : m(machine), kind(k), stats(sync_stats)
{
    if (kind != ConfigKind::Baseline) {
        const thrifty::ThriftyConfig cfg =
            custom ? *custom : thriftyConfigFor(kind);
        rt = std::make_unique<thrifty::ThriftyRuntime>(
            m.config().numNodes(), cfg, stats);
    }
}

thrifty::Barrier&
ConfigBarrierProvider::barrierFor(thrifty::BarrierPc pc)
{
    auto it = barriers.find(pc);
    if (it != barriers.end())
        return *it->second;

    std::unique_ptr<thrifty::Barrier> b;
    const std::string name = "barrier" + std::to_string(pc);
    if (kind == ConfigKind::Baseline) {
        b = std::make_unique<thrifty::ConventionalBarrier>(
            m.eventQueue(), pc, m.config().numNodes(), m.memory(),
            stats, name);
    } else {
        b = std::make_unique<thrifty::ThriftyBarrier>(
            m.eventQueue(), pc, *rt, m.memory(), name);
    }
    auto [pos, inserted] = barriers.emplace(pc, std::move(b));
    (void)inserted;
    return *pos->second;
}

void
ConfigBarrierProvider::mergeStats()
{
    // Thrifty barriers share the runtime's ledger, so repeated merges
    // are harmless (a merged shard is left empty); conventional
    // barriers each fold their own ledger.
    for (auto& [pc, b] : barriers)
        b->mergeStats();
}

ExperimentResult
runExperiment(const SystemConfig& sys, const workloads::AppProfile& app,
              ConfigKind kind, const RunOptions& options)
{
    // Declared before the machine: component destructors cancel
    // pending events through the queue's observer, so the checker has
    // to die last.
    std::unique_ptr<check::ProtocolChecker> checker;
    if (options.check || check::checkedByDefault()) {
        check::CheckerConfig ccfg;
        ccfg.numNodes = sys.numNodes();
        ccfg.barrierBudget = options.livenessBudget;
        ccfg.sleepBudget = options.livenessBudget;
        checker = std::make_unique<check::ProtocolChecker>(ccfg);
    }

    std::unique_ptr<fault::FaultInjector> injector;
    if (options.faults && options.faults->enabled())
        injector = std::make_unique<fault::FaultInjector>(*options.faults);

    // Same lifetime rule as the checker: the queue observer must die
    // after the machine.
    std::unique_ptr<obs::TraceQueueObserver> traceObs;

    // Fault injection without graceful degradation deadlocks by
    // design (a dropped wake-up is unrecoverable), so unless the
    // caller supplied an explicit custom configuration, switch the
    // preset's hardening guard rails on for the run.
    thrifty::ThriftyConfig hardened;
    const thrifty::ThriftyConfig* custom = options.customConfig;
    if (injector && !custom && kind != ConfigKind::Baseline) {
        hardened = thriftyConfigFor(kind);
        hardened.hardening.enabled = true;
        custom = &hardened;
    }

    // Pick the simulation plan. Serial-only features — the checker's
    // totally-ordered event stream, fault hooks, structured tracing,
    // the hardening ladder's shared quarantine map — force one
    // partition; everything else runs the partitioned plan so a
    // single simulation can use multiple host threads.
    const bool force_serial =
        checker || injector || options.traceSink ||
        (custom && custom->hardening.enabled);
    const unsigned default_parts =
        sys.numNodes() >= 16 ? sys.numNodes() / 8 : 1;
    const unsigned parts =
        force_serial ? 1
                     : (options.simPartitions ? options.simPartitions
                                              : default_parts);

    Machine machine(sys, parts);
    if (checker)
        machine.attachChecker(*checker);
    if (injector)
        machine.attachFaultHooks(*injector);
    if (options.traceSink) {
        // Chain in front of whatever observer (checker) is installed
        // so tracing composes with invariant checking.
        traceObs = std::make_unique<obs::TraceQueueObserver>(
            *options.traceSink, machine.eventQueue().observer());
        machine.eventQueue().setObserver(traceObs.get());
        machine.attachTraceSink(options.traceSink);
    }

    thrifty::SyncStats sync;
    sync.traceEnabled = options.trace;
    sync.episodesEnabled = options.episodeLedger;

    ConfigBarrierProvider provider(machine, kind, custom, sync);
    if (options.traceSink && provider.runtime())
        provider.runtime()->setTraceSink(options.traceSink);
    workloads::SyntheticProgram program(
        machine.eventQueue(), machine.memory(), machine.threadPtrs(),
        app, provider, sys.seed);

    // Every allocation has happened (program regions and, eagerly,
    // all barrier pages): freeze the address map and backend page
    // table so no partition ever mutates their structure mid-run.
    machine.memory().addressMap().seal();

    program.start();
    // Host thread count never affects results — stats, traces and
    // artifacts are byte-identical at any simThreads value within the
    // chosen partition plan (parallel_sim.hh).
    runMachinePdes(machine, options.simThreads);

    provider.mergeStats();
    if (!program.finished())
        panic("experiment deadlocked: ", app.name, " under ",
              configName(kind));
    if (checker)
        checker->finalCheck();

    ExperimentResult r;
    r.app = app.name;
    r.config = configName(kind);
    r.execTime = program.finishTick();
    r.threads = machine.config().numNodes();
    r.sync = std::move(sync);
    if (injector) {
        r.faultSpec = injector->spec().summary();
        r.faultCounts = injector->counters();
    }

    const power::EnergyAccount total = machine.totalEnergy();
    for (std::size_t i = 0; i < power::kNumBuckets; ++i) {
        const auto b = static_cast<power::Bucket>(i);
        r.energy[i] = total.energy(b);
        r.time[i] = total.time(b);
    }
    if (options.statsVisitor)
        machine.visitStats(*options.statsVisitor);
    return r;
}

} // namespace harness
} // namespace tb
