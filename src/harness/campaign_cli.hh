/**
 * @file
 * Shared command line of the supervised campaign benches.
 *
 * Every campaign binary (figure5_energy, figure6_time,
 * robustness_faults, robustness_seeds) accepts the same supervisor
 * surface, parsed strictly — a malformed value prints a usage error
 * and exits 2, never a silent fallback:
 *
 *   --jobs N          shard points over N worker threads
 *   --sim-threads N   PDES worker threads inside each simulation
 *                     (byte-identical results at any N; default 1)
 *   --sim-partitions P cluster partitions per simulation (selects the
 *                     simulation plan, so it IS part of each point's
 *                     identity; default: by node count)
 *   --deadline-ms N   per-point wall-clock deadline (0 = none)
 *   --retries N       extra attempts per failed point
 *   --backoff-ms N    base of the exponential retry backoff
 *   --isolate         fork each point (crash containment)
 *   --journal FILE    append completed points to FILE (JSONL)
 *   --resume          skip points already in the journal
 *   --out FILE        atomically write the final artifact to FILE
 *   --manifest FILE   atomically write the failure manifest to FILE
 *   --only-point I    run just point I inline (repro mode)
 *   --quick           CI-sized subset (benches that support it)
 *
 * plus the distributed surface (docs/ROBUSTNESS.md, "Distributed
 * campaigns"):
 *
 *   --serve ADDR      run as the campaign daemon on unix:PATH or
 *                     tcp:HOST:PORT; points execute on workers
 *   --worker ADDR     run as a worker of the daemon at ADDR
 *   --cache DIR       content-addressed result cache directory
 *   --lease-ms N      per-lease deadline on the daemon (default 60000)
 *   --heartbeat-ms N  worker heartbeat interval (default 1000)
 *   --worker-name S   announced worker identity (default pid@host)
 *   --net-faults SPEC deterministic network fault injection on this
 *                     worker's socket (requires --worker; grammar in
 *                     docs/ROBUSTNESS.md, "Network fault injection")
 *   --reconnect-ms N  budget for transparent reconnection after
 *                     losing the daemon socket (default 5000)
 *
 * plus the observability surface (docs/OBSERVABILITY.md):
 *
 *   --trace FILE[:categories]   write a Chrome trace_event JSON file
 *                               (categories: sim,mem,noc,thrifty; all
 *                               by default)
 *   --stats-json FILE           write per-point machine stats and the
 *                               barrier-episode ledger as JSONL
 */

#ifndef TB_HARNESS_CAMPAIGN_CLI_HH_
#define TB_HARNESS_CAMPAIGN_CLI_HH_

#include <string>

#include "harness/campaign_supervisor.hh"
#include "obs/trace.hh"

namespace tb {
namespace harness {

/** Parsed campaign command line. */
struct CampaignOptions
{
    SupervisorPolicy policy;
    /**
     * PDES worker threads per simulation (--sim-threads,
     * harness/parallel_sim.hh). Like --jobs it never changes results,
     * so it is excluded from config hashes, journals, caches and
     * reproFlags().
     */
    unsigned simThreads = 1;
    /**
     * Cluster partitions per simulation (--sim-partitions,
     * RunOptions::simPartitions); 0 = default for the node count.
     * Unlike simThreads this selects the simulation *plan* and can
     * change results, so it IS part of config hashes, journal keys,
     * cache keys and reproFlags().
     */
    unsigned simPartitions = 0;
    std::string journalPath; ///< "" = no journal
    bool resume = false;
    std::string outPath;      ///< "" = stdout only
    std::string manifestPath; ///< "" = stderr only
    long onlyPoint = -1;      ///< >= 0: run one point and exit
    bool quick = false;
    std::string tracePath;    ///< "" = no trace capture
    /** Category mask for --trace (defaults to every category). */
    unsigned traceMask = obs::kAllTraceCategories;
    std::string statsJsonPath; ///< "" = no stats JSONL
    std::string serveAddr;     ///< "" = not a daemon
    std::string workerAddr;    ///< "" = not a worker
    std::string cacheDir;      ///< "" = no result cache
    std::uint64_t leaseMs = 60000;
    std::uint64_t heartbeatMs = 1000;
    std::string workerName;    ///< "" = pid@host
    /**
     * Raw --net-faults spec, parsed at the point of use (the harness
     * layer cannot depend on svc's NetFaultSpec); "" = clean
     * transport. Only valid with --worker.
     */
    std::string netFaultsSpec;
    /** Worker reconnect budget after daemon loss (--reconnect-ms). */
    std::uint64_t reconnectMs = 5000;

    /** Any distributed role selected (--serve / --worker). */
    bool distributed() const
    {
        return !serveAddr.empty() || !workerAddr.empty();
    }

    /**
     * Parse @p argv strictly. Unknown options, malformed numbers,
     * `--quick` when @p allowQuick is false, and `--resume` without
     * `--journal` all print a usage error and exit 2.
     */
    static CampaignOptions parse(int argc, char** argv,
                                 bool allowQuick);

    /**
     * The flags needed to reproduce this invocation's point space
     * in a repro command (currently `--quick` plus `--isolate`),
     * with a leading space when non-empty.
     */
    std::string reproFlags() const;
};

} // namespace harness
} // namespace tb

#endif // TB_HARNESS_CAMPAIGN_CLI_HH_
