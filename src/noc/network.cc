#include "noc/network.hh"

#include <algorithm>
#include <bit>
#include <utility>

#include "obs/trace.hh"
#include "sim/fault_hooks.hh"
#include "sim/logging.hh"

namespace tb {
namespace noc {

Network::Network(EventQueue& queue, const NetworkConfig& config,
                 std::string name)
    : SimObject(queue, std::move(name)), cfg(config)
{
    if (cfg.dimension == 0 || cfg.dimension > 16)
        fatal("network dimension must be in [1,16], got ", cfg.dimension);
    if (cfg.flitBytes == 0)
        fatal("network flitBytes must be nonzero");
    linkFreeAt.assign(static_cast<std::size_t>(cfg.nodes()) *
                          cfg.dimension,
                      0);
    pairLastDelivery.assign(
        static_cast<std::size_t>(cfg.nodes()) * cfg.nodes(), 0);
}

unsigned
Network::hops(NodeId a, NodeId b) const
{
    return static_cast<unsigned>(std::popcount(a ^ b));
}

unsigned
Network::flits(unsigned bytes) const
{
    return std::max(1u, (bytes + cfg.flitBytes - 1) / cfg.flitBytes);
}

std::size_t
Network::linkIndex(NodeId node, unsigned dim) const
{
    return static_cast<std::size_t>(node) * cfg.dimension + dim;
}

Tick
Network::zeroLoadLatency(unsigned n_hops, unsigned bytes) const
{
    const Tick body = static_cast<Tick>(flits(bytes) - 1) *
                      cfg.routerPeriod;
    return 2 * cfg.marshal +
           static_cast<Tick>(n_hops) * cfg.pinToPin + body;
}

Tick
Network::deliveryTick(NodeId src, NodeId dst, unsigned bytes)
{
    const unsigned n = cfg.nodes();
    if (src >= n || dst >= n)
        panic("network send outside topology: src=", src, " dst=", dst);

    const unsigned n_flits = flits(bytes);
    const Tick ser_time = static_cast<Tick>(n_flits) * cfg.routerPeriod;

    Tick t = curTick() + cfg.marshal;
    NodeId at = src;
    // Dimension-order routing: correct differing address bits from the
    // lowest dimension up, reserving each directed link on the way.
    const NodeId diff = src ^ dst;
    for (unsigned dim = 0; dim < cfg.dimension; ++dim) {
        if (!((diff >> dim) & 1u))
            continue;
        if (faults) {
            // An injected stall occupies the head of the worm on this
            // link, so it lands before the contention accounting and
            // naturally back-pressures messages queued behind it.
            Tick stall = faults->linkStall(at, dim);
            if (stall > 0) {
                statsGroup.scalar("faultLinkStallTicks") +=
                    static_cast<double>(stall);
                t += stall;
            }
        }
        if (cfg.modelContention) {
            Tick& free_at = linkFreeAt[linkIndex(at, dim)];
            if (free_at > t) {
                hot.linkStallTicks +=
                    static_cast<double>(free_at - t);
                t = free_at;
            }
            free_at = t + ser_time;
        }
        t += cfg.pinToPin;
        at ^= (NodeId{1} << dim);
    }
    // Body flits pipeline behind the header on the final link.
    t += static_cast<Tick>(n_flits - 1) * cfg.routerPeriod;
    t += cfg.marshal; // unmarshal at the destination

    if (faults) {
        // End-to-end delay spikes land *before* the ordering clamp so
        // a delayed message still cannot overtake an earlier one on
        // the same (src, dst) pair — the protocol's point-to-point
        // ordering assumption survives the fault.
        Tick delay = faults->messageDelay(src, dst);
        if (delay > 0) {
            statsGroup.scalar("faultDelayTicks") +=
                static_cast<double>(delay);
            t += delay;
        }
    }

    // Preserve point-to-point ordering: never deliver before an
    // earlier message between the same endpoints (ties keep send
    // order through the event queue's insertion sequence).
    Tick& pair_last =
        pairLastDelivery[static_cast<std::size_t>(src) * n + dst];
    if (t < pair_last) {
        hot.orderingStallTicks +=
            static_cast<double>(pair_last - t);
        t = pair_last;
    }
    pair_last = t;

    hot.messages.inc();
    hot.bytes += bytes;
    hot.latency.sample(static_cast<double>(t - curTick()));
    hot.hops.sample(hops(src, dst));
    if (TB_TRACED(trace, obs::TraceCategory::Noc)) {
        trace->complete(obs::TraceCategory::Noc, "msg", curTick(),
                        t - curTick(), src,
                        {{"dst", dst}, {"bytes", bytes},
                         {"hops", hops(src, dst)}});
    }
    return t;
}

} // namespace noc
} // namespace tb
