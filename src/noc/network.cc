#include "noc/network.hh"

#include <algorithm>
#include <bit>
#include <utility>

#include "obs/trace.hh"
#include "sim/fault_hooks.hh"
#include "sim/logging.hh"

namespace tb {
namespace noc {

Network::Network(EventQueue& queue, const NetworkConfig& config,
                 std::string name, const Hooks* machine_hooks)
    : SimObject(queue, std::move(name)), cfg(config), hooks(machine_hooks)
{
    if (cfg.dimension == 0 || cfg.dimension > 16)
        fatal("network dimension must be in [1,16], got ", cfg.dimension);
    if (cfg.flitBytes == 0)
        fatal("network flitBytes must be nonzero");
    linkFreeAt.assign(static_cast<std::size_t>(cfg.nodes()) *
                          cfg.dimension,
                      0);
    const std::size_t pairs =
        static_cast<std::size_t>(cfg.nodes()) * cfg.nodes();
    nextPairSeq.assign(pairs, 0);
    expectedSeq.assign(pairs, 0);
    pairLastDelivery.assign(pairs, 0);
    oooStash.resize(pairs);
    shards.resize(1);
}

void
Network::bindPartitions(const PartitionBinding* binding)
{
    if (binding) {
        if (binding->nodeQueue.size() != cfg.nodes() ||
            binding->nodeCluster.size() != cfg.nodes())
            fatal("partition binding does not cover the topology");
        if (binding->clusters == 0)
            fatal("partition binding needs at least one cluster");
        for (auto c : binding->nodeCluster)
            if (c >= binding->clusters)
                fatal("node mapped to nonexistent cluster ", c);
    }
    foldStats(); // keep anything already recorded before resharding
    parts = binding;
    shards.assign(parts ? parts->clusters : 1, Shard{});
}

EventQueue&
Network::queueOf(NodeId n) const
{
    return parts ? *parts->nodeQueue[n] : eq;
}

unsigned
Network::clusterOf(NodeId n) const
{
    return parts ? parts->nodeCluster[n] : 0;
}

Network::Shard&
Network::shardOf(NodeId n) const
{
    return shards[clusterOf(n)];
}

unsigned
Network::hops(NodeId a, NodeId b) const
{
    return static_cast<unsigned>(std::popcount(a ^ b));
}

unsigned
Network::flits(unsigned bytes) const
{
    return std::max(1u, (bytes + cfg.flitBytes - 1) / cfg.flitBytes);
}

std::size_t
Network::linkIndex(NodeId node, unsigned dim) const
{
    return static_cast<std::size_t>(node) * cfg.dimension + dim;
}

Tick
Network::zeroLoadLatency(unsigned n_hops, unsigned bytes) const
{
    const Tick body = static_cast<Tick>(flits(bytes) - 1) *
                      cfg.routerPeriod;
    return 2 * cfg.marshal +
           static_cast<Tick>(n_hops) * cfg.pinToPin + body;
}

void
Network::inject(NodeId src, NodeId dst, unsigned bytes, Deliver fn)
{
    const unsigned n = cfg.nodes();
    if (src >= n || dst >= n)
        panic("network send outside topology: src=", src, " dst=", dst);
    if (!fn)
        panic("network send without delivery callback");

    EventQueue& q = queueOf(src);
    const Tick t0 = q.now();
    auto f = std::make_shared<Flight>(
        Flight{src, dst, bytes, nextPairSeq[pairIndex(src, dst)]++, t0,
               std::move(fn)});
    Shard& sh = shardOf(src);
    sh.messages += 1.0;
    sh.bytes += static_cast<double>(bytes);

    // Marshaling happens at the source endpoint; the message reaches
    // its first router (src's own, hence a local event) afterwards. A
    // loopback message never enters a router at all.
    const Tick entry = t0 + cfg.marshal;
    if (src == dst) {
        q.schedule(entry, [this, f]() {
            arrivalEvent(f, queueOf(f->dst).now());
        });
        return;
    }
    q.schedule(entry, [this, f]() { hopEvent(f->src, f); });
}

void
Network::hopEvent(NodeId at, const std::shared_ptr<Flight>& f)
{
    Tick t = queueOf(at).now();
    // Dimension-order routing: correct the lowest differing address
    // bit; the hop leaves through this router's link along that dim.
    const unsigned dim =
        static_cast<unsigned>(std::countr_zero(at ^ f->dst));
    FaultHooks* faults = hooks ? hooks->faults : nullptr;
    if (faults) {
        // An injected stall occupies the head of the worm on this
        // link, so it lands before the contention accounting and
        // naturally back-pressures messages queued behind it.
        Tick stall = faults->linkStall(at, dim);
        if (stall > 0) {
            shardOf(at).faultLinkStallTicks +=
                static_cast<double>(stall);
            t += stall;
        }
    }
    if (cfg.modelContention) {
        const Tick ser_time =
            static_cast<Tick>(flits(f->bytes)) * cfg.routerPeriod;
        Tick& free_at = linkFreeAt[linkIndex(at, dim)];
        if (free_at > t) {
            shardOf(at).linkStallTicks +=
                static_cast<double>(free_at - t);
            t = free_at;
        }
        free_at = t + ser_time;
    }
    const NodeId next = at ^ (NodeId{1} << dim);
    const Tick when = t + cfg.pinToPin;
    if (next == f->dst) {
        forward(at, next, when,
                [this, f, when]() { arrivalEvent(f, when); });
    } else {
        forward(at, next, when,
                [this, f, next]() { hopEvent(next, f); });
    }
}

void
Network::forward(NodeId from, NodeId to, Tick when,
                 EventQueue::Callback fn)
{
    const unsigned cfrom = clusterOf(from);
    const unsigned cto = clusterOf(to);
    if (cfrom == cto) {
        queueOf(to).schedule(when, std::move(fn));
        return;
    }
    if (!parts || !parts->crossSchedule)
        panic("cross-cluster hop without an engine channel (cluster ",
              cfrom, " -> ", cto,
              "); partitioned machines must run under runMachinePdes");
    parts->crossSchedule(cfrom, cto, when, std::move(fn));
}

void
Network::arrivalEvent(const std::shared_ptr<Flight>& f, Tick t_arr)
{
    // Body flits pipeline behind the header on the final link, then
    // the destination unmarshals.
    Tick tail = t_arr +
                static_cast<Tick>(flits(f->bytes) - 1) *
                    cfg.routerPeriod +
                cfg.marshal;
    FaultHooks* faults = hooks ? hooks->faults : nullptr;
    if (faults) {
        // End-to-end delay spikes land *before* the ordering clamp so
        // a delayed message still cannot overtake an earlier one on
        // the same (src, dst) pair — the protocol's point-to-point
        // ordering assumption survives the fault.
        Tick delay = faults->messageDelay(f->src, f->dst);
        if (delay > 0) {
            shardOf(f->dst).faultDelayTicks +=
                static_cast<double>(delay);
            tail += delay;
        }
    }
    const std::size_t pair = pairIndex(f->src, f->dst);
    if (f->seq != expectedSeq[pair]) {
        // Arrived before a predecessor (a short message drains its
        // tail faster than a long one): hold it until the pair's
        // in-order point catches up.
        oooStash[pair].emplace(f->seq, Stash{tail, f});
        return;
    }
    deliverInOrder(f, tail);
    auto& stash = oooStash[pair];
    for (auto it = stash.find(expectedSeq[pair]); it != stash.end();
         it = stash.find(expectedSeq[pair])) {
        auto held = std::move(it->second);
        stash.erase(it);
        deliverInOrder(held.flight, held.tail);
    }
}

void
Network::deliverInOrder(const std::shared_ptr<Flight>& f, Tick tail)
{
    const std::size_t pair = pairIndex(f->src, f->dst);
    Shard& sh = shardOf(f->dst);
    // Preserve point-to-point ordering: never deliver before an
    // earlier message between the same endpoints. Also lifts a stashed
    // message's tail to at least the current tick, since its
    // predecessor was just delivered at now or later.
    Tick& pair_last = pairLastDelivery[pair];
    if (tail < pair_last) {
        sh.orderingStallTicks += static_cast<double>(pair_last - tail);
        tail = pair_last;
    }
    pair_last = tail;
    expectedSeq[pair] = f->seq + 1;

    sh.latency.sample(static_cast<double>(tail - f->t0));
    sh.hops.sample(static_cast<double>(hops(f->src, f->dst)));
    obs::TraceSink* trace = hooks ? hooks->trace : nullptr;
    if (TB_TRACED(trace, obs::TraceCategory::Noc)) {
        trace->complete(obs::TraceCategory::Noc, "msg", f->t0,
                        tail - f->t0, f->src,
                        {{"dst", f->dst}, {"bytes", f->bytes},
                         {"hops", hops(f->src, f->dst)}});
    }
    if (hooks && hooks->nocAudit) {
        hooks->nocAudit->onNocDelivered(
            f->src, f->dst, f->bytes, f->t0, tail,
            zeroLoadLatency(hops(f->src, f->dst), f->bytes));
    }
    queueOf(f->dst).schedule(tail, std::move(f->fn));
}

void
Network::foldStats() const
{
    stats::Scalar& messages = statsGroup.scalar("messages");
    stats::Scalar& bytes = statsGroup.scalar("bytes");
    stats::Scalar& link_stall = statsGroup.scalar("linkStallTicks");
    stats::Scalar& order_stall =
        statsGroup.scalar("orderingStallTicks");
    stats::Distribution& latency = statsGroup.distribution("latency");
    stats::Distribution& hop_dist = statsGroup.distribution("hops");
    // Fixed cluster order: tick values are integers, so the sums are
    // exact either way, but keep the fold deterministic regardless.
    for (Shard& sh : shards) {
        messages += sh.messages;
        bytes += sh.bytes;
        link_stall += sh.linkStallTicks;
        order_stall += sh.orderingStallTicks;
        // Fault scalars appear only when a fault actually fired,
        // matching the lazy creation of the eager implementation (the
        // stat report's name set is part of the artifact format).
        if (sh.faultLinkStallTicks != 0.0)
            statsGroup.scalar("faultLinkStallTicks") +=
                sh.faultLinkStallTicks;
        if (sh.faultDelayTicks != 0.0)
            statsGroup.scalar("faultDelayTicks") += sh.faultDelayTicks;
        latency.merge(sh.latency);
        hop_dist.merge(sh.hops);
        sh = Shard{};
    }
}

const stats::StatGroup&
Network::statistics() const
{
    foldStats();
    return statsGroup;
}

} // namespace noc
} // namespace tb
