/**
 * @file
 * Hypercube wormhole interconnect model (Table 1 of the paper).
 *
 * The modeled machine connects 2^k nodes in a k-cube with pipelined
 * 250 MHz routers, 16 ns pin-to-pin latency per hop, and 16 ns of
 * (un)marshaling at each endpoint. Routing is deterministic
 * dimension-order (e-cube), so paths are unique and deadlock-free.
 *
 * Wormhole timing approximation for a message of B bytes over h hops:
 *
 *   marshal(16 ns)
 *   + per hop: wait for the output link, then header pin-to-pin (16 ns)
 *   + (flits - 1) * flit cycle  (body pipelines behind the header)
 *   + unmarshal(16 ns)
 *
 * Each directed link is reserved for the message's serialization time,
 * which is how contention appears (subsequent messages on the same link
 * queue behind it, like blocked worms holding the channel).
 */

#ifndef TB_NOC_NETWORK_HH_
#define TB_NOC_NETWORK_HH_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/sim_object.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace tb {

class FaultHooks;

namespace obs {
class TraceSink;
} // namespace obs

namespace noc {

/** Static configuration of the interconnect. */
struct NetworkConfig
{
    /** Hypercube dimension; node count is 2^dimension. */
    unsigned dimension = 6;
    /** Header latency across one hop (pin-to-pin), in ticks. */
    Tick pinToPin = 16 * kNanosecond;
    /** Marshaling cost at each endpoint (applied twice), in ticks. */
    Tick marshal = 16 * kNanosecond;
    /** Router clock period (250 MHz => 4 ns), in ticks. */
    Tick routerPeriod = 4 * kNanosecond;
    /** Bytes moved per router cycle per link (flit width). */
    unsigned flitBytes = 16;
    /** Model per-link contention (disable for latency-only studies). */
    bool modelContention = true;

    /** Number of nodes (2^dimension). */
    unsigned nodes() const { return 1u << dimension; }

    /**
     * Minimum latency of any cross-node message: marshal + one
     * pin-to-pin hop + unmarshal, with zero contention and a
     * single-flit payload. Nothing a node sends can affect another
     * node sooner, which makes this the machine's natural
     * conservative lookahead for per-node PDES partitioning
     * (sim/pdes.hh, docs/PERFORMANCE.md).
     */
    Tick minCrossNodeLatency() const { return marshal + pinToPin + marshal; }
};

/**
 * The interconnection network.
 *
 * Endpoints register a delivery handler; senders hand the network a
 * completion closure that runs, at the destination's side, when the
 * last flit arrives. Payloads live in the closure, which keeps this
 * module independent of the coherence-protocol message types.
 */
class Network : public SimObject
{
  public:
    /** Callback invoked at the destination when a message arrives. */
    using Deliver = std::function<void()>;

    Network(EventQueue& queue, const NetworkConfig& config,
            std::string name = "noc");

    /** Static configuration. */
    const NetworkConfig& config() const { return cfg; }

    /**
     * Send @p bytes from @p src to @p dst; @p on_deliver runs when the
     * message fully arrives. src == dst is allowed (local loopback,
     * charged marshal + unmarshal only). The callable goes straight
     * into the event queue — no std::function wrapper on the message
     * path.
     */
    template <typename F>
    void
    send(NodeId src, NodeId dst, unsigned bytes, F&& on_deliver)
    {
        if constexpr (std::is_same_v<std::decay_t<F>, Deliver>) {
            if (!on_deliver)
                panic("network send without delivery callback");
        }
        eq.schedule(deliveryTick(src, dst, bytes),
                    std::forward<F>(on_deliver));
    }

    /** Hamming distance — number of hops between two nodes. */
    unsigned hops(NodeId a, NodeId b) const;

    /**
     * Contention-free latency of a @p bytes message over @p n_hops
     * hops. Useful for tests and analytic sanity checks.
     */
    Tick zeroLoadLatency(unsigned n_hops, unsigned bytes) const;

    /** Aggregate statistics for this network. */
    const stats::StatGroup& statistics() const { return statsGroup; }

    /** Attach fault-injection hooks (nullptr detaches). */
    void setFaultHooks(FaultHooks* hooks) { faults = hooks; }

    /** Attach a structured-trace sink (nullptr detaches). */
    void setTraceSink(obs::TraceSink* sink) { trace = sink; }

  private:
    /**
     * Route one message: reserve links, charge contention/fault
     * stalls and statistics, and return the tick the last flit
     * reaches @p dst.
     */
    Tick deliveryTick(NodeId src, NodeId dst, unsigned bytes);

    /** Number of router cycles needed to serialize @p bytes. */
    unsigned flits(unsigned bytes) const;

    /** Index of the directed link leaving @p node along @p dim. */
    std::size_t linkIndex(NodeId node, unsigned dim) const;

    NetworkConfig cfg;
    /** Earliest tick each directed link is free again. */
    std::vector<Tick> linkFreeAt;
    /**
     * Last delivery tick per (src, dst) pair. Messages between the
     * same endpoints are delivered in send order (single-virtual-
     * channel wormhole networks preserve point-to-point ordering; the
     * directory protocol relies on it: a forwarded intervention must
     * not overtake the data grant that precedes it).
     */
    std::vector<Tick> pairLastDelivery;
    /** Optional fault injection (link stalls, message-delay spikes). */
    FaultHooks* faults = nullptr;
    /** Optional structured tracing of message deliveries. */
    obs::TraceSink* trace = nullptr;
    stats::StatGroup statsGroup;

    /** Cached references into statsGroup (resolved once; node-stable
     *  storage) so hot paths skip the name lookup. Declared after
     *  statsGroup. */
    struct HotStats
    {
        explicit HotStats(stats::StatGroup& g)
            : messages(g.scalar("messages")),
              bytes(g.scalar("bytes")),
              linkStallTicks(g.scalar("linkStallTicks")),
              orderingStallTicks(g.scalar("orderingStallTicks")),
              latency(g.distribution("latency")),
              hops(g.distribution("hops"))
        {}

        stats::Scalar& messages;
        stats::Scalar& bytes;
        stats::Scalar& linkStallTicks;
        stats::Scalar& orderingStallTicks;
        stats::Distribution& latency;
        stats::Distribution& hops;
    } hot{statsGroup};
};

} // namespace noc
} // namespace tb

#endif // TB_NOC_NETWORK_HH_
