/**
 * @file
 * Hypercube wormhole interconnect model (Table 1 of the paper).
 *
 * The modeled machine connects 2^k nodes in a k-cube with pipelined
 * 250 MHz routers, 16 ns pin-to-pin latency per hop, and 16 ns of
 * (un)marshaling at each endpoint. Routing is deterministic
 * dimension-order (e-cube), so paths are unique and deadlock-free.
 *
 * Wormhole timing approximation for a message of B bytes over h hops:
 *
 *   marshal(16 ns)
 *   + per hop: wait for the output link, then header pin-to-pin (16 ns)
 *   + (flits - 1) * flit cycle  (body pipelines behind the header)
 *   + unmarshal(16 ns)
 *
 * Each directed link is reserved for the message's serialization time,
 * which is how contention appears (subsequent messages on the same link
 * queue behind it, like blocked worms holding the channel).
 *
 * Routing is *hop-granular*: injection schedules an event at the
 * message's first router, and every hop is its own event on the queue
 * owning that router — it charges fault/contention stalls against its
 * outgoing link, reserves it, and schedules the next hop (or the
 * destination arrival). The old implementation walked the whole route
 * eagerly at send time, reserving every link of the path in one go;
 * that reads the far end's link state at the *send* tick, which is
 * both physically wrong for wormhole contention (a worm cannot reserve
 * a link it has not reached) and impossible to partition, since the
 * route crosses queue ownership boundaries. With per-hop events, every
 * piece of mutable state has exactly one owning cluster:
 *
 *   linkFreeAt[link]        — the cluster of the router the link leaves
 *   nextPairSeq[src*n+dst]  — src's cluster (stamped at injection)
 *   expectedSeq / pairLast /
 *   out-of-order stash      — dst's cluster (checked at arrival)
 *   stat shards             — one per cluster, folded on demand
 *
 * so a partitioned machine (harness/machine.hh) can run node clusters
 * on different PDES partitions and the only cross-cluster traffic is
 * the hop events themselves, which always lie >= pinToPin in the
 * future — the engine's conservative lookahead.
 */

#ifndef TB_NOC_NETWORK_HH_
#define TB_NOC_NETWORK_HH_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "sim/hooks.hh"
#include "sim/sim_object.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace tb {
namespace noc {

/** Static configuration of the interconnect. */
struct NetworkConfig
{
    /** Hypercube dimension; node count is 2^dimension. */
    unsigned dimension = 6;
    /** Header latency across one hop (pin-to-pin), in ticks. */
    Tick pinToPin = 16 * kNanosecond;
    /** Marshaling cost at each endpoint (applied twice), in ticks. */
    Tick marshal = 16 * kNanosecond;
    /** Router clock period (250 MHz => 4 ns), in ticks. */
    Tick routerPeriod = 4 * kNanosecond;
    /** Bytes moved per router cycle per link (flit width). */
    unsigned flitBytes = 16;
    /** Model per-link contention (disable for latency-only studies). */
    bool modelContention = true;

    /** Number of nodes (2^dimension). */
    unsigned nodes() const { return 1u << dimension; }

    /**
     * Minimum latency of any cross-node message: marshal + one
     * pin-to-pin hop + unmarshal, with zero contention and a
     * single-flit payload. Nothing a node sends can affect another
     * node sooner, which makes this the machine's natural
     * conservative lookahead for per-node PDES partitioning
     * (sim/pdes.hh, docs/PERFORMANCE.md).
     */
    Tick minCrossNodeLatency() const { return marshal + pinToPin + marshal; }
};

/**
 * How the machine's nodes map onto event queues. The machine always
 * installs one of these (a serial machine maps every node to the one
 * queue of cluster 0); a standalone Network without a binding behaves
 * as a single cluster on its own queue. crossSchedule is only set
 * while a PDES engine is driving the queues — it routes an event onto
 * another cluster's queue through the engine's partition channels,
 * which is the only legal way to touch a foreign queue mid-run.
 */
struct PartitionBinding
{
    /** Queue that owns each node's events. */
    std::vector<EventQueue*> nodeQueue;
    /** Cluster (= partition id) of each node. */
    std::vector<std::uint16_t> nodeCluster;
    /** Number of clusters; stat shards are folded in this order. */
    unsigned clusters = 1;
    /**
     * Schedule @p fn at @p when on @p dstCluster's queue from
     * @p srcCluster's worker. Null outside an engine-driven run.
     */
    std::function<void(unsigned srcCluster, unsigned dstCluster,
                       Tick when, EventQueue::Callback fn)>
        crossSchedule;
};

/**
 * The interconnection network.
 *
 * Endpoints register a delivery handler; senders hand the network a
 * completion closure that runs, at the destination's side, when the
 * last flit arrives. Payloads live in the closure, which keeps this
 * module independent of the coherence-protocol message types.
 */
class Network : public SimObject
{
  public:
    /** Callback invoked at the destination when a message arrives. */
    using Deliver = std::function<void()>;

    /**
     * @param hooks machine-wide instrumentation seams (fault
     *        injection, tracing, delivery audit); may be null for
     *        standalone use. Fields are read at use time, so the
     *        machine can attach instruments after construction.
     */
    Network(EventQueue& queue, const NetworkConfig& config,
            std::string name = "noc", const Hooks* hooks = nullptr);

    /** Static configuration. */
    const NetworkConfig& config() const { return cfg; }

    /**
     * Inject a message of @p bytes from @p src to @p dst; @p fn runs
     * on @p dst's queue when the last flit arrives. src == dst is
     * allowed (local loopback, charged marshal + unmarshal only).
     * Must be called from an event running on @p src's queue.
     */
    void inject(NodeId src, NodeId dst, unsigned bytes, Deliver fn);

    /**
     * Legacy entry point, kept as a thin shim over inject(). Protocol
     * and runtime code must go through mem::Fabric (tools/tblint rule
     * TBL024) so every coherence message gets observer/audit coverage;
     * direct send() is for the network's own tests and benchmarks.
     */
    template <typename F>
    void
    send(NodeId src, NodeId dst, unsigned bytes, F&& on_deliver)
    {
        inject(src, dst, bytes, Deliver(std::forward<F>(on_deliver)));
    }

    /**
     * Map nodes onto event queues (see PartitionBinding). Must be
     * called before any traffic; pass nullptr to revert to the
     * standalone single-cluster default.
     */
    void bindPartitions(const PartitionBinding* binding);

    /** Hamming distance — number of hops between two nodes. */
    unsigned hops(NodeId a, NodeId b) const;

    /**
     * Contention-free latency of a @p bytes message over @p n_hops
     * hops. This is an exact lower bound of per-hop delivery: the
     * per-hop path adds only non-negative stalls to it, and the
     * protocol checker audits every delivery against it
     * (NocDeliveryAudit).
     */
    Tick zeroLoadLatency(unsigned n_hops, unsigned bytes) const;

    /**
     * Aggregate statistics for this network. Folds the per-cluster
     * shards first; only call when the queues are quiescent.
     */
    const stats::StatGroup& statistics() const;

  private:
    /**
     * One message in flight. Held by whichever hop event currently
     * carries it; shared_ptr because cross-cluster forwarding rides
     * std::function channels, which need copyable closures.
     */
    struct Flight
    {
        NodeId src;
        NodeId dst;
        unsigned bytes;
        /** Send-order stamp within the (src, dst) pair. */
        std::uint64_t seq;
        /** Injection tick (for latency stats and the audit). */
        Tick t0;
        Deliver fn;
    };

    /** A message that arrived before its (src, dst) predecessors. */
    struct Stash
    {
        Tick tail;
        std::shared_ptr<Flight> flight;
    };

    /**
     * Per-cluster statistics shard. Hop events write the shard of the
     * cluster they run on; foldStats() drains every shard into
     * statsGroup in cluster order, so the published stats are
     * identical for any partitioning of the same traffic.
     */
    struct Shard
    {
        double messages = 0;
        double bytes = 0;
        double linkStallTicks = 0;
        double orderingStallTicks = 0;
        double faultLinkStallTicks = 0;
        double faultDelayTicks = 0;
        stats::Distribution latency;
        stats::Distribution hops;
    };

    /** One hop: charge the outgoing link at @p at, forward. */
    void hopEvent(NodeId at, const std::shared_ptr<Flight>& f);

    /** Last flit reached @p f->dst at @p t_arr: finish delivery. */
    void arrivalEvent(const std::shared_ptr<Flight>& f, Tick t_arr);

    /** In-order delivery: clamp against the pair's last delivery,
     *  record stats, run the payload, then flush stashed successors. */
    void deliverInOrder(const std::shared_ptr<Flight>& f, Tick tail);

    /** Schedule @p fn at @p when on @p to's queue (cross-cluster hops
     *  go through the engine channel). @p from is the node whose queue
     *  the caller is running on. */
    void forward(NodeId from, NodeId to, Tick when,
                 EventQueue::Callback fn);

    /** Drain all per-cluster shards into statsGroup. */
    void foldStats() const;

    EventQueue& queueOf(NodeId n) const;
    unsigned clusterOf(NodeId n) const;
    Shard& shardOf(NodeId n) const;

    /** Number of router cycles needed to serialize @p bytes. */
    unsigned flits(unsigned bytes) const;

    /** Index of the directed link leaving @p node along @p dim. */
    std::size_t linkIndex(NodeId node, unsigned dim) const;

    std::size_t
    pairIndex(NodeId src, NodeId dst) const
    {
        return static_cast<std::size_t>(src) * cfg.nodes() + dst;
    }

    NetworkConfig cfg;
    const Hooks* hooks;
    const PartitionBinding* parts = nullptr;
    /** Earliest tick each directed link is free again. Owned by the
     *  cluster of the router the link leaves. */
    std::vector<Tick> linkFreeAt;
    /** Next send-order stamp per (src, dst) pair. Owned by src's
     *  cluster: stamped at injection, before the first hop departs. */
    std::vector<std::uint64_t> nextPairSeq;
    /** Next expected arrival stamp per (src, dst) pair. Owned by
     *  dst's cluster. */
    std::vector<std::uint64_t> expectedSeq;
    /**
     * Last delivery tick per (src, dst) pair. Messages between the
     * same endpoints are delivered in send order (single-virtual-
     * channel wormhole networks preserve point-to-point ordering; the
     * directory protocol relies on it: a forwarded intervention must
     * not overtake the data grant that precedes it). Owned by dst's
     * cluster.
     */
    std::vector<Tick> pairLastDelivery;
    /**
     * Early arrivals waiting for their (src, dst) predecessors, keyed
     * by seq. Per pair so each entry is owned by dst's cluster. A
     * small message can physically catch up with a large predecessor
     * on the shared tail (its last-hop body drains faster), so the
     * clamp alone is not enough — delivery order must be restored
     * explicitly.
     */
    std::vector<std::map<std::uint64_t, Stash>> oooStash;
    mutable std::vector<Shard> shards;
    mutable stats::StatGroup statsGroup;
};

} // namespace noc
} // namespace tb

#endif // TB_NOC_NETWORK_HH_
