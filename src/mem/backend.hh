/**
 * @file
 * Global memory value backend.
 *
 * The simulator moves *timing*, not data, through the network; the
 * coherent value of every word lives here. Loads read the backend when
 * they complete; stores and atomics update it when the directory (the
 * serialization point) grants them. Conflicting accesses to one word
 * are serialized at the line's home directory, so per-word accesses
 * never race even when the machine is partitioned across host threads.
 *
 * Storage is page-granular: the address map pre-faults every allocated
 * page (ensureRange) and then seals the backend before the simulated
 * program starts, so the page table never rehashes mid-run. That is
 * what makes the image safe under partitioned execution — concurrent
 * partitions touch disjoint words of pre-existing pages, never the map
 * structure itself. The only same-page shared state is the written
 * bitmap, which uses relaxed atomic fetch_or because two causally
 * unrelated stores to different words of one page may land from
 * different host threads.
 */

#ifndef TB_MEM_BACKEND_HH_
#define TB_MEM_BACKEND_HH_

#include <atomic>
#include <bit>
#include <cstdint>
#include <memory>
#include <unordered_map>

#include "mem/mem_types.hh"
#include "sim/logging.hh"
#include "sim/types.hh"

namespace tb {
namespace mem {

/** Sparse page-granular memory image (zero-initialized). */
class Backend
{
  public:
    /** Read the 64-bit word at @p a (must be 8-byte aligned). */
    std::uint64_t
    read(Addr a) const
    {
        auto it = pages.find(pageAddr(a));
        if (it == pages.end())
            return 0;
        return it->second->w[wordIndex(a)];
    }

    /** Write the 64-bit word at @p a. */
    void
    write(Addr a, std::uint64_t v)
    {
        Page& p = pageFor(a);
        const std::size_t i = wordIndex(a);
        p.w[i] = v;
        p.written[i / 64].fetch_or(std::uint64_t{1} << (i % 64),
                                   std::memory_order_relaxed);
    }

    /** Add @p delta to the word at @p a; returns the *old* value. */
    std::uint64_t
    fetchAdd(Addr a, std::uint64_t delta)
    {
        std::uint64_t old = read(a);
        write(a, old + delta);
        return old;
    }

    /**
     * Pre-fault every page overlapping [@p base, @p base + @p bytes).
     * The address map calls this at allocation time; after seal() it is
     * an error for a write to touch a page that was never faulted.
     */
    void
    ensureRange(Addr base, std::size_t bytes)
    {
        if (sealed_)
            panic("backend ensureRange after seal");
        const Addr last = pageAddr(base + (bytes ? bytes - 1 : 0));
        for (Addr p = pageAddr(base); p <= last; p += kPageBytes)
            if (pages.find(p) == pages.end())
                pages.emplace(p, std::make_unique<Page>());
    }

    /**
     * Freeze the page table. Reads of never-faulted pages still return
     * zero; writes to them panic (a sealed map mutation would race with
     * concurrent partition lookups).
     */
    void seal() { sealed_ = true; }

    bool sealed() const { return sealed_; }

    /** Number of distinct words ever written. */
    std::size_t
    footprint() const
    {
        std::size_t n = 0;
        // tblint-allow(TBL001): popcount sum is order-independent
        for (const auto& [base, p] : pages)
            for (const auto& bm : p->written)
                n += static_cast<std::size_t>(std::popcount(
                    bm.load(std::memory_order_relaxed)));
        return n;
    }

  private:
    static constexpr std::size_t kWordsPerPage = kPageBytes / 8;

    struct Page
    {
        std::uint64_t w[kWordsPerPage]{};
        std::atomic<std::uint64_t> written[kWordsPerPage / 64];

        Page()
        {
            for (auto& bm : written)
                bm.store(0, std::memory_order_relaxed);
        }
    };

    static std::size_t
    wordIndex(Addr a)
    {
        return static_cast<std::size_t>((a - pageAddr(a)) / 8);
    }

    Page&
    pageFor(Addr a)
    {
        const Addr base = pageAddr(a);
        auto it = pages.find(base);
        if (it == pages.end()) {
            if (sealed_)
                panic("write to unfaulted page ", base,
                      " after backend seal");
            it = pages.emplace(base, std::make_unique<Page>()).first;
        }
        return *it->second;
    }

    std::unordered_map<Addr, std::unique_ptr<Page>> pages;
    bool sealed_ = false;
};

} // namespace mem
} // namespace tb

#endif // TB_MEM_BACKEND_HH_
