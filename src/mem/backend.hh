/**
 * @file
 * Global memory value backend.
 *
 * The simulator moves *timing*, not data, through the network; the
 * coherent value of every word lives here. Loads read the backend when
 * they complete; stores and atomics update it when the directory (the
 * serialization point) grants them. Because the whole machine runs in
 * one host thread and every conflicting access is serialized at the
 * line's home directory, this is an accurate model of the coherent
 * memory image.
 */

#ifndef TB_MEM_BACKEND_HH_
#define TB_MEM_BACKEND_HH_

#include <cstdint>
#include <unordered_map>

#include "sim/types.hh"

namespace tb {
namespace mem {

/** Sparse word-granular memory image (zero-initialized). */
class Backend
{
  public:
    /** Read the 64-bit word at @p a (must be 8-byte aligned). */
    std::uint64_t
    read(Addr a) const
    {
        auto it = words.find(a);
        return it == words.end() ? 0 : it->second;
    }

    /** Write the 64-bit word at @p a. */
    void write(Addr a, std::uint64_t v) { words[a] = v; }

    /** Add @p delta to the word at @p a; returns the *old* value. */
    std::uint64_t
    fetchAdd(Addr a, std::uint64_t delta)
    {
        std::uint64_t old = read(a);
        write(a, old + delta);
        return old;
    }

    /** Number of distinct words ever written. */
    std::size_t footprint() const { return words.size(); }

  private:
    std::unordered_map<Addr, std::uint64_t> words;
};

} // namespace mem
} // namespace tb

#endif // TB_MEM_BACKEND_HH_
