#include "mem/address_map.hh"

#include "mem/backend.hh"
#include "sim/logging.hh"

namespace tb {
namespace mem {

AddressMap::AddressMap(unsigned num_nodes)
    : numNodes(num_nodes)
{
    if (num_nodes == 0)
        fatal("address map needs at least one node");
}

void
AddressMap::seal()
{
    sealed_ = true;
    if (backend)
        backend->seal();
}

Addr
AddressMap::allocPages(std::size_t bytes, bool shared, NodeId fixed_home)
{
    if (bytes == 0)
        fatal("zero-byte allocation");
    if (sealed_)
        panic("allocation after the address map was sealed; workloads "
              "must allocate all memory before the program starts");
    const std::size_t n_pages = (bytes + kPageBytes - 1) / kPageBytes;
    const Addr base = nextPage;
    for (std::size_t i = 0; i < n_pages; ++i) {
        NodeId h = shared
                       ? static_cast<NodeId>(nextSharedHome++ % numNodes)
                       : fixed_home;
        pages.emplace(nextPage, PageInfo{h, shared});
        nextPage += kPageBytes;
    }
    if (backend)
        backend->ensureRange(base, n_pages * kPageBytes);
    return base;
}

Addr
AddressMap::allocShared(std::size_t bytes)
{
    return allocPages(bytes, true, 0);
}

Addr
AddressMap::allocPrivate(NodeId owner, std::size_t bytes)
{
    if (owner >= numNodes)
        fatal("private allocation for nonexistent node ", owner);
    return allocPages(bytes, false, owner);
}

NodeId
AddressMap::home(Addr a) const
{
    auto it = pages.find(pageAddr(a));
    if (it == pages.end())
        panic("home lookup of unmapped address ", a);
    return it->second.home;
}

bool
AddressMap::isShared(Addr a) const
{
    auto it = pages.find(pageAddr(a));
    if (it == pages.end())
        panic("isShared lookup of unmapped address ", a);
    return it->second.shared;
}

bool
AddressMap::isMapped(Addr a) const
{
    return pages.count(pageAddr(a)) != 0;
}

} // namespace mem
} // namespace tb
