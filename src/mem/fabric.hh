/**
 * @file
 * Coherence-message routing layer over the interconnect.
 *
 * Controllers and directories register themselves per node; the fabric
 * computes the home node of each request from the address map, charges
 * the message to the NoC, and delivers it to the registered sink when
 * it arrives. This keeps protocol agents ignorant of topology and the
 * network ignorant of protocol payloads.
 */

#ifndef TB_MEM_FABRIC_HH_
#define TB_MEM_FABRIC_HH_

#include <vector>

#include "mem/address_map.hh"
#include "mem/mem_types.hh"
#include "mem/protocol_observer.hh"
#include "noc/network.hh"
#include "sim/hooks.hh"

namespace tb {
namespace mem {

/** Routes coherence messages between per-node agents over the NoC. */
class Fabric
{
  public:
    /**
     * @param hooks machine-wide instrumentation seams (nullable);
     *        fields are read at use time.
     */
    Fabric(noc::Network& network, AddressMap& address_map,
           const Hooks* hooks = nullptr);

    /** Register the cache controller for @p node. */
    void registerController(NodeId node, MsgSink& sink);

    /** Register the directory slice for @p node. */
    void registerDirectory(NodeId node, MsgSink& sink);

    /** Send @p msg from @p from to the directory homing msg.line. */
    void toDirectory(NodeId from, Msg msg);

    /** Send @p msg from @p from to node @p dst's cache controller. */
    void toController(NodeId from, NodeId dst, Msg msg);

    /**
     * Raw timed control message outside the coherence protocol: @p fn
     * runs on @p to's queue after the network latency of a @p bytes
     * message. The thrifty runtime uses this for cross-node barrier
     * bookkeeping (predictor updates, oracle releases), so that state
     * rides the NoC with real cost and point-to-point ordering instead
     * of teleporting. Not observer-visible — the protocol checker
     * tracks coherence messages only.
     */
    void sendControl(NodeId from, NodeId to, unsigned bytes,
                     noc::Network::Deliver fn);

    /** Home node of the line @p a belongs to. */
    NodeId home(Addr a) const { return map.home(a); }

    /**
     * Minimum latency of any coherence message between two distinct
     * nodes. Every fabric hop rides the NoC, so this is exactly the
     * network's minimum cross-node latency — the conservative
     * lookahead bound a per-node PDES partitioning of the memory
     * system would use (docs/PERFORMANCE.md "Parallel simulation").
     */
    Tick minMessageLatency() const;

    /** The placement map (for shared/private queries). */
    const AddressMap& addressMap() const { return map; }

    /** The attached observer, or null. */
    ProtocolObserver*
    observer() const
    {
        return hooks_ ? hooks_->check : nullptr;
    }

  private:
    noc::Network& net;
    AddressMap& map;
    std::vector<MsgSink*> controllers;
    std::vector<MsgSink*> directories;
    /** Machine-wide instrumentation seams (may be null). */
    const Hooks* hooks_;
};

} // namespace mem
} // namespace tb

#endif // TB_MEM_FABRIC_HH_
