/**
 * @file
 * Coherence-message routing layer over the interconnect.
 *
 * Controllers and directories register themselves per node; the fabric
 * computes the home node of each request from the address map, charges
 * the message to the NoC, and delivers it to the registered sink when
 * it arrives. This keeps protocol agents ignorant of topology and the
 * network ignorant of protocol payloads.
 */

#ifndef TB_MEM_FABRIC_HH_
#define TB_MEM_FABRIC_HH_

#include <vector>

#include "mem/address_map.hh"
#include "mem/mem_types.hh"
#include "mem/protocol_observer.hh"
#include "noc/network.hh"

namespace tb {
namespace mem {

/** Routes coherence messages between per-node agents over the NoC. */
class Fabric
{
  public:
    Fabric(noc::Network& network, AddressMap& address_map);

    /** Register the cache controller for @p node. */
    void registerController(NodeId node, MsgSink& sink);

    /** Register the directory slice for @p node. */
    void registerDirectory(NodeId node, MsgSink& sink);

    /** Send @p msg from @p from to the directory homing msg.line. */
    void toDirectory(NodeId from, Msg msg);

    /** Send @p msg from @p from to node @p dst's cache controller. */
    void toController(NodeId from, NodeId dst, Msg msg);

    /** Home node of the line @p a belongs to. */
    NodeId home(Addr a) const { return map.home(a); }

    /**
     * Minimum latency of any coherence message between two distinct
     * nodes. Every fabric hop rides the NoC, so this is exactly the
     * network's minimum cross-node latency — the conservative
     * lookahead bound a per-node PDES partitioning of the memory
     * system would use (docs/PERFORMANCE.md "Parallel simulation").
     */
    Tick minMessageLatency() const;

    /** The placement map (for shared/private queries). */
    const AddressMap& addressMap() const { return map; }

    /** Attach (or with nullptr detach) a protocol observer. */
    void setObserver(ProtocolObserver* observer) { obs = observer; }

    /** The attached observer, or null. */
    ProtocolObserver* observer() const { return obs; }

  private:
    noc::Network& net;
    AddressMap& map;
    std::vector<MsgSink*> controllers;
    std::vector<MsgSink*> directories;
    ProtocolObserver* obs = nullptr;
};

} // namespace mem
} // namespace tb

#endif // TB_MEM_FABRIC_HH_
