/**
 * @file
 * Observation interface for the coherence protocol.
 *
 * Every protocol agent (fabric, cache controller, directory) and the
 * CPU sleep machinery carries an optional ProtocolObserver pointer,
 * null by default. When one is attached, the agents report every
 * message, cache-line state change, store serialization and sleep /
 * wake transition through it; when none is attached the hook sites
 * reduce to a single predicted-not-taken branch, so the simulation's
 * hot path is unaffected (no virtual dispatch, no hash lookups).
 *
 * The canonical implementation is check::ProtocolChecker, which turns
 * this event stream into machine-checked global invariants (SWMR,
 * directory-cache agreement, value consistency, sleep safety -- see
 * docs/CHECKING.md). The interface lives in mem/ rather than check/ so
 * that the model libraries never depend on the checking library.
 */

#ifndef TB_MEM_PROTOCOL_OBSERVER_HH_
#define TB_MEM_PROTOCOL_OBSERVER_HH_

#include <cstdint>

#include "mem/mem_types.hh"
#include "sim/types.hh"

namespace tb {
namespace mem {

enum class DirState : std::uint8_t;
enum class WakeReason : std::uint8_t;

/** Passive observer of protocol-level events. All hooks default to
 *  no-ops so implementations can subscribe selectively. */
class ProtocolObserver
{
  public:
    virtual ~ProtocolObserver() = default;

    // ------------------------------------------------------------------
    // Fabric: message traffic (feeds the violation trace).
    // ------------------------------------------------------------------

    /** @p msg leaves @p from towards @p to (a directory slice when
     *  @p to_directory, a cache controller otherwise). */
    virtual void
    onMessageSent(NodeId from, NodeId to, const Msg& msg,
                  bool to_directory)
    {
        (void)from; (void)to; (void)msg; (void)to_directory;
    }

    /** @p msg arrives at @p at's directory slice / controller. */
    virtual void
    onMessageDelivered(NodeId at, const Msg& msg, bool at_directory)
    {
        (void)at; (void)msg; (void)at_directory;
    }

    // ------------------------------------------------------------------
    // Cache controller: per-line state, values, interventions, sleep.
    // ------------------------------------------------------------------

    /** Node @p node's L2 (the coherence endpoint) now holds @p line in
     *  @p state; Invalid reports drops and evictions. */
    virtual void
    onCacheLineState(NodeId node, Addr line, LineState state)
    {
        (void)node; (void)line; (void)state;
    }

    /** A demand load on @p node completed with @p value. */
    virtual void
    onLoadValue(NodeId node, Addr addr, std::uint64_t value)
    {
        (void)node; (void)addr; (void)value;
    }

    /** A store by @p node to @p addr was globally serialized with
     *  @p value (local write hit, directory grant, or 3-hop serve). */
    virtual void
    onStoreSerialized(NodeId node, Addr addr, std::uint64_t value)
    {
        (void)node; (void)addr; (void)value;
    }

    /** An atomic fetch-op by @p node executed at @p addr's home,
     *  reading @p old and leaving @p now. */
    virtual void
    onRmwSerialized(NodeId node, Addr addr, std::uint64_t old,
                    std::uint64_t now)
    {
        (void)node; (void)addr; (void)old; (void)now;
    }

    /** An intervention (FwdGetS/FwdGetX) reached @p node for @p line. */
    virtual void
    onInterventionReceived(NodeId node, Addr line)
    {
        (void)node; (void)line;
    }

    /** Node @p node answered the outstanding intervention on @p line. */
    virtual void
    onInterventionServed(NodeId node, Addr line)
    {
        (void)node; (void)line;
    }

    /** Node @p node's cache arrays became (in)accessible to snoops. */
    virtual void
    onSnoopableChange(NodeId node, bool snoopable)
    {
        (void)node; (void)snoopable;
    }

    /** A wake trigger fired on @p node's controller. */
    virtual void
    onWakeTrigger(NodeId node, WakeReason reason)
    {
        (void)node; (void)reason;
    }

    // ------------------------------------------------------------------
    // CPU: sleep episodes.
    // ------------------------------------------------------------------

    /** Node @p node starts a sleep episode (snoopable state or not). */
    virtual void
    onSleepEnter(NodeId node, bool snoopable_state)
    {
        (void)node; (void)snoopable_state;
    }

    /** Node @p node is Active again; the episode is over. */
    virtual void
    onSleepExit(NodeId node)
    {
        (void)node;
    }

    // ------------------------------------------------------------------
    // Synchronization runtime: barrier liveness.
    // ------------------------------------------------------------------

    /** The first thread checked in to dynamic barrier @p instance of
     *  the barrier whose flag lives on @p flag_line. */
    virtual void
    onBarrierArmed(Addr flag_line, std::uint64_t instance)
    {
        (void)flag_line; (void)instance;
    }

    /** Dynamic barrier @p instance on @p flag_line was released (the
     *  last thread flipped the flag). */
    virtual void
    onBarrierReleased(Addr flag_line, std::uint64_t instance)
    {
        (void)flag_line; (void)instance;
    }

    // ------------------------------------------------------------------
    // Directory: stable-state reports.
    // ------------------------------------------------------------------

    /** The home of @p line closed a transaction; the line is no longer
     *  busy and its directory state is (@p state, @p sharers, @p owner). */
    virtual void
    onDirStable(Addr line, DirState state, std::uint64_t sharers,
                NodeId owner)
    {
        (void)line; (void)state; (void)sharers; (void)owner;
    }
};

} // namespace mem
} // namespace tb

#endif // TB_MEM_PROTOCOL_OBSERVER_HH_
