/**
 * @file
 * Full-bit-vector home directory (one slice per node).
 *
 * Every line has a unique home; all transactions on a line serialize
 * in FIFO order at its home slice. While a transaction is in flight
 * (waiting for owner interventions, invalidation acks, or DRAM), the
 * line is busy and later requests queue behind it. This makes the
 * protocol deadlock-free by construction: controllers always answer
 * interventions and invalidations without blocking (including while
 * their CPU sleeps — the key property Section 3.1 of the paper relies
 * on), so every transaction terminates.
 *
 * Directory states: Uncached, Shared(sharer vector), Exclusive(owner).
 * Exclusive covers both the E (clean) and M (dirty) cache states, as
 * in standard MESI directories.
 */

#ifndef TB_MEM_DIRECTORY_HH_
#define TB_MEM_DIRECTORY_HH_

#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>

#include "mem/backend.hh"
#include "mem/dram.hh"
#include "mem/fabric.hh"
#include "mem/mem_types.hh"
#include "mem/protocol_observer.hh"
#include "sim/hooks.hh"
#include "sim/sim_object.hh"
#include "sim/stats.hh"

namespace tb {
namespace mem {

/** Maximum nodes representable in the sharer bit vector. */
inline constexpr unsigned kMaxNodes = 64;

/** Directory-side line state. */
enum class DirState : std::uint8_t
{
    Uncached,
    Shared,
    Exclusive,
};

/** One node's directory slice. */
class Directory : public SimObject, public MsgSink
{
  public:
    /**
     * @param queue     Simulation event queue.
     * @param node      This slice's node id.
     * @param num_nodes Total nodes in the machine (<= kMaxNodes).
     * @param fabric    Message routing layer.
     * @param backend   Global memory image (for AtomicRmw execution).
     * @param dram      This node's memory timing model.
     * @param hooks     Machine-wide instrumentation seams (nullable).
     */
    Directory(EventQueue& queue, NodeId node, unsigned num_nodes,
              Fabric& fabric, Backend& backend, Dram& dram,
              std::string name, bool three_hop_forwarding = false,
              const Hooks* hooks = nullptr);

    /** Fabric delivery entry point. */
    void receive(const Msg& msg) override;

    /** Directory state of @p line (for tests/debug). */
    DirState lineState(Addr line) const;

    /** Sharer bit vector of @p line (for tests/debug). */
    std::uint64_t lineSharers(Addr line) const;

    /** Owner of @p line; kInvalidNode unless Exclusive. */
    NodeId lineOwner(Addr line) const;

    /** True if a transaction is in flight on @p line. */
    bool lineBusy(Addr line) const;

    const stats::StatGroup& statistics() const { return statsGroup; }

  private:
    struct LineDir
    {
        DirState state = DirState::Uncached;
        std::uint64_t sharers = 0;
        NodeId owner = kInvalidNode;

        bool busy = false;
        std::deque<Msg> waiting;

        // In-flight transaction context.
        Msg cur;
        unsigned pendingAcks = 0;
        bool waitingOwner = false;
        bool waitingMem = false;
        bool ownerKeptCopy = false;
        bool grantUpgrade = false;
    };

    static std::uint64_t bit(NodeId n) { return std::uint64_t{1} << n; }

    /** Start the next queued transaction if the line is idle. */
    void tryStart(Addr line);

    /** Dispatch the transaction at the head of @p ld's queue. */
    void start(Addr line, LineDir& ld);

    void startGetS(Addr line, LineDir& ld);
    void startWrite(Addr line, LineDir& ld); ///< GetX/Upgrade/AtomicRmw
    void startPutM(Addr line, LineDir& ld);

    /** Issue a DRAM read and mark the transaction waiting on it. */
    void readMem(Addr line, LineDir& ld);

    /** Complete a write-class transaction if nothing is pending. */
    void maybeFinishWrite(Addr line, LineDir& ld);

    /** Close the current transaction and start the next. */
    void finish(Addr line, LineDir& ld);

    void handleOwnerData(const Msg& msg, LineDir& ld);
    void handleOwnerHandled(const Msg& msg, LineDir& ld);
    void handleOwnerStale(const Msg& msg, LineDir& ld);
    void handleInvAck(Addr line, LineDir& ld);

    void send(NodeId dst, Msg msg);

    /** The attached protocol observer, or null. */
    ProtocolObserver*
    checkObs() const
    {
        return hooks_ ? hooks_->check : nullptr;
    }

    NodeId nodeId;
    unsigned numNodes;
    /**
     * Three-hop (DASH-style) forwarding: interventions carry the
     * requester id and the owner replies with data *directly* to the
     * requester, sending only a control message (OwnerHandled) home.
     * Saves one network traversal on every remote intervention at the
     * cost of a hairier protocol. Off by default (hub-and-spoke).
     */
    bool threeHop;
    Fabric& fabric;
    Backend& backend;
    Dram& dram;
    std::unordered_map<Addr, LineDir> lines;
    /** Machine-wide instrumentation seams (may be null). */
    const Hooks* hooks_;
    stats::StatGroup statsGroup;

    /** Cached references into statsGroup (resolved once; node-stable
     *  storage) so hot paths skip the name lookup. Declared after
     *  statsGroup. */
    struct HotStats
    {
        explicit HotStats(stats::StatGroup& g)
            : requests(g.scalar("requests")),
              rmws(g.scalar("rmws")),
              writebacks(g.scalar("writebacks")),
              staleWritebacks(g.scalar("staleWritebacks")),
              threeHopInterventions(g.scalar("threeHopInterventions"))
        {}

        stats::Scalar& requests;
        stats::Scalar& rmws;
        stats::Scalar& writebacks;
        stats::Scalar& staleWritebacks;
        stats::Scalar& threeHopInterventions;
    } hot{statsGroup};
};

} // namespace mem
} // namespace tb

#endif // TB_MEM_DIRECTORY_HH_
