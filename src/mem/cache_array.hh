/**
 * @file
 * Set-associative cache tag/state array with true-LRU replacement.
 *
 * Purely structural: no timing, no protocol. The CacheController
 * composes two of these (L1, L2) with the coherence engine and the
 * clocked access latencies from Table 1.
 */

#ifndef TB_MEM_CACHE_ARRAY_HH_
#define TB_MEM_CACHE_ARRAY_HH_

#include <cstdint>
#include <vector>

#include "mem/mem_types.hh"
#include "sim/types.hh"

namespace tb {
namespace mem {

/** Geometry of one cache level. */
struct CacheGeometry
{
    unsigned sizeBytes = 16 * 1024;
    unsigned assoc = 2;
    unsigned lineBytes = kLineBytes;

    unsigned
    numSets() const
    {
        return sizeBytes / (assoc * lineBytes);
    }
};

/** Tag + MESI state array. */
class CacheArray
{
  public:
    /** One way of one set. */
    struct Line
    {
        Addr addr = 0; ///< line-aligned address
        LineState state = LineState::Invalid;
        std::uint64_t lru = 0; ///< larger == more recently used
    };

    /** Evicted line descriptor returned by insert(). */
    struct Victim
    {
        bool valid = false;
        Addr addr = 0;
        LineState state = LineState::Invalid;
    };

    explicit CacheArray(const CacheGeometry& geometry);

    /** Geometry this array was built with. */
    const CacheGeometry& geometry() const { return geom; }

    /**
     * Look up @p line (line-aligned). Returns the entry or nullptr.
     * Does not touch LRU; call touch() on a real access.
     */
    Line* find(Addr line);
    const Line* find(Addr line) const;

    /** Mark @p entry most-recently used. */
    void touch(Line& entry) { entry.lru = ++lruClock; }

    /**
     * Allocate a way for @p line in state @p st, evicting the LRU
     * victim if the set is full. @p line must not already be present.
     * @return the victim descriptor (valid==false if a free way
     *         existed).
     */
    Victim insert(Addr line, LineState st);

    /** Drop @p line if present. @return true if it was present. */
    bool invalidate(Addr line);

    /** Visit every valid line (used by the sleep flush). */
    template <typename Fn>
    void
    forEachValid(Fn&& fn)
    {
        for (auto& l : lines) {
            if (l.state != LineState::Invalid)
                fn(l);
        }
    }

    /** Count of valid lines. */
    unsigned validCount() const;

  private:
    /** Set index via the precomputed shift/mask — the geometry is
     *  validated power-of-two in the constructor, so no division sits
     *  on the lookup path. */
    std::size_t
    setBase(Addr line) const
    {
        return ((line >> lineShift) & setMask) * geom.assoc;
    }

    CacheGeometry geom;
    unsigned lineShift = 0;      ///< log2(lineBytes)
    std::size_t setMask = 0;     ///< numSets - 1
    std::vector<Line> lines; ///< numSets * assoc, set-major
    std::uint64_t lruClock = 0;
};

} // namespace mem
} // namespace tb

#endif // TB_MEM_CACHE_ARRAY_HH_
