#include "mem/directory.hh"

#include <bit>
#include <cstdio>
#include <utility>

#include "sim/logging.hh"

namespace tb {
namespace mem {

Directory::Directory(EventQueue& queue, NodeId node, unsigned num_nodes,
                     Fabric& fabric_, Backend& backend_, Dram& dram_,
                     std::string name, bool three_hop_forwarding,
                     const Hooks* hooks)
    : SimObject(queue, std::move(name)),
      nodeId(node),
      numNodes(num_nodes),
      threeHop(three_hop_forwarding),
      fabric(fabric_),
      backend(backend_),
      dram(dram_),
      hooks_(hooks)
{
    if (num_nodes == 0 || num_nodes > kMaxNodes)
        fatal("directory supports 1..", kMaxNodes, " nodes, got ",
              num_nodes);
}

DirState
Directory::lineState(Addr line) const
{
    auto it = lines.find(line);
    return it == lines.end() ? DirState::Uncached : it->second.state;
}

std::uint64_t
Directory::lineSharers(Addr line) const
{
    auto it = lines.find(line);
    return it == lines.end() ? 0 : it->second.sharers;
}

NodeId
Directory::lineOwner(Addr line) const
{
    auto it = lines.find(line);
    if (it == lines.end() || it->second.state != DirState::Exclusive)
        return kInvalidNode;
    return it->second.owner;
}

bool
Directory::lineBusy(Addr line) const
{
    auto it = lines.find(line);
    return it != lines.end() && it->second.busy;
}

void
Directory::send(NodeId dst, Msg msg)
{
    fabric.toController(nodeId, dst, std::move(msg));
}

void
Directory::receive(const Msg& msg)
{
    if (protocolTraced(msg.line)) {
        fprintf(stderr,
                "[%12lu] dir%u  <- %-13s from %u (state=%d sharers=%lx "
                "owner=%d busy=%d queue=%zu)\n",
                curTick(), nodeId, msgTypeName(msg.type), msg.src,
                static_cast<int>(lines[msg.line].state),
                lines[msg.line].sharers,
                static_cast<int>(lines[msg.line].owner),
                static_cast<int>(lines[msg.line].busy),
                lines[msg.line].waiting.size());
    }
    LineDir& ld = lines[msg.line];
    switch (msg.type) {
      case MsgType::GetS:
      case MsgType::GetX:
      case MsgType::Upgrade:
      case MsgType::PutM:
      case MsgType::AtomicRmw:
        hot.requests.inc();
        ld.waiting.push_back(msg);
        tryStart(msg.line);
        break;

      case MsgType::OwnerData:
        handleOwnerData(msg, ld);
        break;
      case MsgType::OwnerStale:
        handleOwnerStale(msg, ld);
        break;
      case MsgType::OwnerHandled:
        handleOwnerHandled(msg, ld);
        break;
      case MsgType::InvAck:
        handleInvAck(msg.line, ld);
        break;

      default:
        panic("directory received unexpected message ",
              msgTypeName(msg.type));
    }
}

void
Directory::tryStart(Addr line)
{
    // Iterative so back-to-back zero-latency completions (e.g.\ stale
    // PutMs) do not recurse.
    for (;;) {
        LineDir& ld = lines[line];
        if (ld.busy || ld.waiting.empty())
            return;
        ld.busy = true;
        ld.cur = std::move(ld.waiting.front());
        ld.waiting.pop_front();
        ld.pendingAcks = 0;
        ld.waitingOwner = false;
        ld.waitingMem = false;
        ld.ownerKeptCopy = false;
        ld.grantUpgrade = false;
        start(line, ld);
        // If start() completed synchronously, busy was cleared and the
        // loop dispatches the next queued request; otherwise we are
        // waiting on a response and return here.
        if (lines[line].busy)
            return;
    }
}

void
Directory::start(Addr line, LineDir& ld)
{
    switch (ld.cur.type) {
      case MsgType::GetS:
        startGetS(line, ld);
        break;
      case MsgType::GetX:
      case MsgType::Upgrade:
      case MsgType::AtomicRmw:
        startWrite(line, ld);
        break;
      case MsgType::PutM:
        startPutM(line, ld);
        break;
      default:
        panic("directory cannot start transaction ",
              msgTypeName(ld.cur.type));
    }
}

void
Directory::readMem(Addr line, LineDir& ld)
{
    ld.waitingMem = true;
    dram.read([this, line]() {
        LineDir& l = lines[line];
        l.waitingMem = false;
        if (l.cur.type == MsgType::GetS) {
            // Memory read on the GetS path only happens when the
            // requester ends up with the only copy (Uncached, stale
            // owner) or joins an existing sharer set.
            const NodeId r = l.cur.src;
            if (l.state == DirState::Shared) {
                l.sharers |= bit(r);
                send(r, makeMsg(MsgType::DataShared, line, nodeId, 0));
            } else {
                l.state = DirState::Exclusive;
                l.owner = r;
                l.sharers = 0;
                send(r,
                     makeMsg(MsgType::DataExclusive, line, nodeId, 0));
            }
            finish(line, l);
        } else {
            maybeFinishWrite(line, l);
        }
    });
}

void
Directory::startGetS(Addr line, LineDir& ld)
{
    const NodeId r = ld.cur.src;
    switch (ld.state) {
      case DirState::Exclusive:
        if (ld.owner != r) {
            ld.waitingOwner = true;
            Msg fwd = makeMsg(MsgType::FwdGetS, line, nodeId, 0);
            if (threeHop)
                fwd.requester = r;
            send(ld.owner, std::move(fwd));
        } else {
            // Owner silently dropped its clean-exclusive copy and is
            // re-requesting; refresh from memory, stay Exclusive(r).
            readMem(line, ld);
        }
        break;
      case DirState::Shared:
      case DirState::Uncached:
        readMem(line, ld);
        break;
    }
}

void
Directory::startWrite(Addr line, LineDir& ld)
{
    const NodeId r = ld.cur.src;
    bool need_mem = false;

    switch (ld.state) {
      case DirState::Exclusive:
        if (ld.owner != r) {
            ld.waitingOwner = true;
            Msg fwd = makeMsg(MsgType::FwdGetX, line, nodeId, 0);
            // AtomicRmw data must come home (the fetch-op executes
            // here), so it always stays hub-and-spoke.
            if (threeHop && ld.cur.type != MsgType::AtomicRmw) {
                fwd.requester = r;
                // The owner applies the store when it serves the
                // intervention (3-hop serialization point).
                fwd.storeAddr = ld.cur.storeAddr;
                fwd.storeValue = ld.cur.storeValue;
                fwd.hasStore = ld.cur.hasStore;
            }
            send(ld.owner, std::move(fwd));
        } else if (ld.cur.type == MsgType::AtomicRmw) {
            // Atomics bypass the requester's cache, so the requester
            // may well still hold the line (e.g.\ a lock retry after
            // spinning on the lock word). Intervene on its own
            // controller so no stale copy survives the fetch-op.
            ld.waitingOwner = true;
            send(r, makeMsg(MsgType::FwdGetX, line, nodeId, 0));
        } else {
            // GetX/Upgrade from the registered owner can only mean it
            // silently dropped a clean-exclusive copy (a hit would
            // not have reached the directory).
            need_mem = true;
        }
        break;
      case DirState::Shared: {
        std::uint64_t to_inv = ld.sharers & ~bit(r);
        // AtomicRmw lines must end uncached everywhere, including at
        // the requester.
        if (ld.cur.type == MsgType::AtomicRmw)
            to_inv = ld.sharers;
        const bool requester_has_copy =
            (ld.sharers & bit(r)) != 0 &&
            ld.cur.type != MsgType::AtomicRmw;
        for (NodeId n = 0; n < numNodes; ++n) {
            if (to_inv & bit(n)) {
                ++ld.pendingAcks;
                send(n, makeMsg(MsgType::Inv, line, nodeId, 0));
            }
        }
        ld.grantUpgrade = requester_has_copy;
        need_mem = !requester_has_copy &&
                   ld.cur.type != MsgType::AtomicRmw;
        break;
      }
      case DirState::Uncached:
        need_mem = ld.cur.type != MsgType::AtomicRmw;
        break;
    }

    // AtomicRmw always pays one memory access at execution time (the
    // fetch-op runs at the home memory); chain it in maybeFinishWrite.
    if (need_mem)
        readMem(line, ld);
    else
        maybeFinishWrite(line, ld);
}

void
Directory::maybeFinishWrite(Addr line, LineDir& ld)
{
    if (ld.waitingOwner || ld.waitingMem || ld.pendingAcks > 0)
        return;

    const NodeId r = ld.cur.src;
    if (ld.cur.type == MsgType::AtomicRmw) {
        // All copies are gone; execute the fetch-op at home memory.
        dram.read([this, line]() {
            LineDir& l = lines[line];
            const NodeId req = l.cur.src;
            std::uint64_t old = 0;
            if (l.cur.rmwOp)
                old = l.cur.rmwOp(curTick());
            if (auto* ob = checkObs())
                ob->onRmwSerialized(req, l.cur.storeAddr, old,
                                     backend.read(l.cur.storeAddr));
            l.state = DirState::Uncached;
            l.sharers = 0;
            l.owner = kInvalidNode;
            send(req, makeMsg(MsgType::RmwResult, line, nodeId, old));
            hot.rmws.inc();
            finish(line, l);
        });
        return;
    }

    ld.state = DirState::Exclusive;
    ld.owner = r;
    ld.sharers = 0;
    // Apply the store at the serialization point so requests queued
    // behind this transaction observe the new value.
    if (ld.cur.hasStore) {
        backend.write(ld.cur.storeAddr, ld.cur.storeValue);
        if (auto* ob = checkObs())
            ob->onStoreSerialized(r, ld.cur.storeAddr,
                                   ld.cur.storeValue);
    }
    send(r, makeMsg(ld.grantUpgrade ? MsgType::UpgradeAck
                                    : MsgType::DataModified,
                    line, nodeId, 0));
    finish(line, ld);
}

void
Directory::startPutM(Addr line, LineDir& ld)
{
    const NodeId s = ld.cur.src;
    if (ld.state == DirState::Exclusive && ld.owner == s) {
        dram.write();
        ld.state = DirState::Uncached;
        ld.owner = kInvalidNode;
        hot.writebacks.inc();
    } else {
        // Stale writeback: an intervention already transferred the
        // line; discard the data.
        hot.staleWritebacks.inc();
    }
    send(s, makeMsg(MsgType::WbAck, line, nodeId, 0));
    finish(line, ld);
}

void
Directory::handleOwnerData(const Msg& msg, LineDir& ld)
{
    const Addr line = msg.line;
    if (!ld.busy || !ld.waitingOwner)
        panic("unexpected OwnerData for line ", line);
    ld.waitingOwner = false;
    // Whether the old owner retained a Shared copy travels in the
    // rmwOld field of the OwnerData message (1 = kept).
    ld.ownerKeptCopy = msg.rmwOld != 0;
    dram.write(); // the dirty line is written back through home

    const NodeId r = ld.cur.src;
    if (ld.cur.type == MsgType::GetS) {
        const NodeId old_owner = ld.owner;
        ld.state = DirState::Shared;
        ld.sharers = bit(r);
        if (ld.ownerKeptCopy)
            ld.sharers |= bit(old_owner);
        ld.owner = kInvalidNode;
        send(r, makeMsg(MsgType::DataShared, line, nodeId, 0));
        finish(line, ld);
    } else {
        // Write-class transaction: old owner's copy is gone.
        maybeFinishWrite(line, ld);
    }
}

void
Directory::handleOwnerHandled(const Msg& msg, LineDir& ld)
{
    const Addr line = msg.line;
    if (!ld.busy || !ld.waitingOwner)
        panic("unexpected OwnerHandled for line ", line);
    ld.waitingOwner = false;
    hot.threeHopInterventions.inc();

    // The owner already sent the data straight to the requester; the
    // home only updates state (plus the sharing writeback for dirty
    // lines, as in DASH).
    if (msg.ownerWasDirty)
        dram.write();

    const NodeId r = ld.cur.src;
    if (ld.cur.type == MsgType::GetS) {
        const NodeId old_owner = ld.owner;
        ld.state = DirState::Shared;
        ld.sharers = bit(r);
        if (msg.ownerKept)
            ld.sharers |= bit(old_owner);
        ld.owner = kInvalidNode;
    } else {
        // The store value was applied by the owner when it served the
        // forwarded request (the transaction's serialization point in
        // 3-hop mode), so anything queued here already observes it —
        // and the home never risks clobbering a *newer* local store
        // the requester may have performed since.
        ld.state = DirState::Exclusive;
        ld.owner = r;
        ld.sharers = 0;
    }
    finish(line, ld);
}

void
Directory::handleOwnerStale(const Msg& msg, LineDir& ld)
{
    const Addr line = msg.line;
    if (!ld.busy || !ld.waitingOwner)
        panic("unexpected OwnerStale for line ", line);
    ld.waitingOwner = false;
    // Memory is current. The old owner may have kept a downgraded
    // Shared copy (FwdGetS to a clean-exclusive line); the kept flag
    // travels in rmwOld.
    const bool kept = msg.rmwOld != 0;
    if (ld.cur.type == MsgType::GetS) {
        if (kept) {
            // readMem's Shared branch adds the requester.
            ld.state = DirState::Shared;
            ld.sharers = bit(ld.owner);
        } else {
            ld.state = DirState::Uncached; // readMem grants E(r)
            ld.sharers = 0;
        }
        ld.owner = kInvalidNode;
        readMem(line, ld);
    } else if (ld.cur.type == MsgType::AtomicRmw) {
        ld.state = DirState::Uncached;
        ld.owner = kInvalidNode;
        ld.sharers = 0;
        maybeFinishWrite(line, ld);
    } else {
        // Write-class: the owner relinquished its copy (FwdGetX never
        // leaves one behind); fetch the data from memory.
        readMem(line, ld);
    }
}

void
Directory::handleInvAck(Addr line, LineDir& ld)
{
    if (!ld.busy || ld.pendingAcks == 0)
        panic("unexpected InvAck for line ", line);
    --ld.pendingAcks;
    maybeFinishWrite(line, ld);
}

void
Directory::finish(Addr line, LineDir& ld)
{
    ld.busy = false;
    ld.cur = Msg{};
    if (auto* ob = checkObs())
        ob->onDirStable(line, ld.state, ld.sharers, ld.owner);
    tryStart(line);
}

} // namespace mem
} // namespace tb
