#include "mem/cache_array.hh"

#include "sim/logging.hh"

namespace tb {
namespace mem {

CacheArray::CacheArray(const CacheGeometry& geometry)
    : geom(geometry)
{
    if (geom.lineBytes == 0 || (geom.lineBytes & (geom.lineBytes - 1)))
        fatal("cache line size must be a power of two");
    if (geom.assoc == 0)
        fatal("cache associativity must be nonzero");
    if (geom.sizeBytes % (geom.assoc * geom.lineBytes) != 0)
        fatal("cache size ", geom.sizeBytes,
              " not divisible into sets of ", geom.assoc, " x ",
              geom.lineBytes, "B lines");
    const unsigned sets = geom.numSets();
    if (sets == 0 || (sets & (sets - 1)))
        fatal("cache set count must be a nonzero power of two, got ",
              sets);
    lines.resize(static_cast<std::size_t>(sets) * geom.assoc);
    while ((1u << lineShift) < geom.lineBytes)
        ++lineShift;
    setMask = sets - 1;
}

CacheArray::Line*
CacheArray::find(Addr line)
{
    const std::size_t base = setBase(line);
    for (unsigned w = 0; w < geom.assoc; ++w) {
        Line& l = lines[base + w];
        if (l.state != LineState::Invalid && l.addr == line)
            return &l;
    }
    return nullptr;
}

const CacheArray::Line*
CacheArray::find(Addr line) const
{
    return const_cast<CacheArray*>(this)->find(line);
}

CacheArray::Victim
CacheArray::insert(Addr line, LineState st)
{
    if (st == LineState::Invalid)
        panic("inserting invalid line");
    if (find(line))
        panic("inserting already-present line ", line);

    const std::size_t base = setBase(line);
    Line* target = nullptr;
    for (unsigned w = 0; w < geom.assoc; ++w) {
        Line& l = lines[base + w];
        if (l.state == LineState::Invalid) {
            target = &l;
            break;
        }
    }

    Victim victim;
    if (!target) {
        // Evict true-LRU.
        target = &lines[base];
        for (unsigned w = 1; w < geom.assoc; ++w) {
            if (lines[base + w].lru < target->lru)
                target = &lines[base + w];
        }
        victim.valid = true;
        victim.addr = target->addr;
        victim.state = target->state;
    }

    target->addr = line;
    target->state = st;
    touch(*target);
    return victim;
}

bool
CacheArray::invalidate(Addr line)
{
    Line* l = find(line);
    if (!l)
        return false;
    l->state = LineState::Invalid;
    return true;
}

unsigned
CacheArray::validCount() const
{
    unsigned n = 0;
    for (const auto& l : lines) {
        if (l.state != LineState::Invalid)
            ++n;
    }
    return n;
}

} // namespace mem
} // namespace tb
