/**
 * @file
 * Assembly of the full coherent memory hierarchy: one cache
 * controller, directory slice and DRAM per node, wired through the
 * fabric over the interconnect, sharing one address map and one value
 * backend.
 */

#ifndef TB_MEM_MEMORY_SYSTEM_HH_
#define TB_MEM_MEMORY_SYSTEM_HH_

#include <memory>
#include <vector>

#include "mem/address_map.hh"
#include "mem/backend.hh"
#include "mem/cache_controller.hh"
#include "mem/directory.hh"
#include "mem/dram.hh"
#include "mem/fabric.hh"
#include "noc/network.hh"
#include "sim/event_queue.hh"
#include "sim/hooks.hh"

namespace tb {
namespace mem {

/** Timing/geometry configuration shared by all nodes. */
struct MemoryConfig
{
    ControllerConfig controller;
    DramConfig dram;
    /**
     * DASH-style three-hop forwarding: owners reply with data
     * directly to requesters (saves one traversal per intervention).
     * Default is the simpler hub-and-spoke protocol (DESIGN.md §6).
     */
    bool threeHopForwarding = false;
};

/** The machine's complete memory system. */
class MemorySystem
{
  public:
    /**
     * Build controllers/directories/DRAM for every node of
     * @p network and register them with a new fabric.
     *
     * @param hooks    Machine-wide instrumentation seams, wired into
     *                 every component (nullable).
     * @param queueFor Event queue owning each node's components; when
     *                 empty every node runs on @p queue. A partitioned
     *                 machine maps node clusters to different queues.
     */
    MemorySystem(EventQueue& queue, noc::Network& network,
                 const MemoryConfig& config,
                 const Hooks* hooks = nullptr,
                 std::function<EventQueue&(NodeId)> queueFor = {});

    unsigned numNodes() const { return nodes; }

    CacheController& controller(NodeId n) { return *controllers.at(n); }
    Directory& directory(NodeId n) { return *directories.at(n); }
    Dram& dram(NodeId n) { return *drams.at(n); }

    AddressMap& addressMap() { return map; }
    const AddressMap& addressMap() const { return map; }
    Backend& backend() { return values; }
    Fabric& fabric() { return fab; }

  private:
    unsigned nodes;
    AddressMap map;
    Backend values;
    Fabric fab;
    std::vector<std::unique_ptr<Dram>> drams;
    std::vector<std::unique_ptr<Directory>> directories;
    std::vector<std::unique_ptr<CacheController>> controllers;
};

} // namespace mem
} // namespace tb

#endif // TB_MEM_MEMORY_SYSTEM_HH_
