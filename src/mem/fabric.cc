#include "mem/fabric.hh"

#include <utility>

#include "sim/logging.hh"

namespace tb {
namespace mem {

Fabric::Fabric(noc::Network& network, AddressMap& address_map,
               const Hooks* hooks)
    : net(network), map(address_map), hooks_(hooks)
{
    controllers.assign(net.config().nodes(), nullptr);
    directories.assign(net.config().nodes(), nullptr);
}

void
Fabric::registerController(NodeId node, MsgSink& sink)
{
    if (node >= controllers.size())
        fatal("controller registration outside topology: ", node);
    controllers[node] = &sink;
}

void
Fabric::registerDirectory(NodeId node, MsgSink& sink)
{
    if (node >= directories.size())
        fatal("directory registration outside topology: ", node);
    directories[node] = &sink;
}

void
Fabric::toDirectory(NodeId from, Msg msg)
{
    const NodeId dst = map.home(msg.line);
    MsgSink* sink = directories.at(dst);
    if (!sink)
        panic("no directory registered at node ", dst);
    if (auto* ob = observer())
        ob->onMessageSent(from, dst, msg, true);
    const unsigned bytes = msg.bytes();
    // Everything above the fabric must come through these wrappers.
    // tblint-allow(TBL024): the fabric IS the sanctioned send wrapper
    net.send(from, dst, bytes, [this, dst, sink, m = std::move(msg)]() {
        if (auto* ob = observer())
            ob->onMessageDelivered(dst, m, true);
        sink->receive(m);
    });
}

void
Fabric::sendControl(NodeId from, NodeId to, unsigned bytes,
                    noc::Network::Deliver fn)
{
    // tblint-allow(TBL024): sanctioned wrapper (see toDirectory).
    net.send(from, to, bytes, std::move(fn));
}

Tick
Fabric::minMessageLatency() const
{
    return net.config().minCrossNodeLatency();
}

void
Fabric::toController(NodeId from, NodeId dst, Msg msg)
{
    MsgSink* sink = controllers.at(dst);
    if (!sink)
        panic("no controller registered at node ", dst);
    if (auto* ob = observer())
        ob->onMessageSent(from, dst, msg, false);
    const unsigned bytes = msg.bytes();
    // tblint-allow(TBL024): sanctioned wrapper (see toDirectory).
    net.send(from, dst, bytes, [this, dst, sink, m = std::move(msg)]() {
        if (auto* ob = observer())
            ob->onMessageDelivered(dst, m, false);
        sink->receive(m);
    });
}

} // namespace mem
} // namespace tb
