/**
 * @file
 * Per-node cache controller: L1 + L2 arrays, the requester side of the
 * directory protocol, and the thrifty-barrier hardware hooks.
 *
 * The controller is the component the paper extends (Section 3.3): it
 * hosts the *flag monitor* (external wake-up), the *wake-up timer*
 * (internal wake-up), and the pending-invalidation buffer that lets a
 * non-snooping sleeping CPU keep acknowledging invalidations to clean
 * lines. The controller itself is never power-gated.
 *
 * CPU interface discipline: each CPU is a blocking requester — exactly
 * one outstanding demand access (load/store/atomic) at a time. All
 * protocol *responses* (interventions, invalidations) are handled
 * reactively and never block, which keeps the directory protocol
 * deadlock-free even when the CPU sleeps.
 *
 * State discipline across levels: L1 is a latency filter strictly
 * included in L2, and both arrays always agree on the MESI state of a
 * line present in L1. The pair (controller tags are never gated) acts
 * as the coherence endpoint.
 */

#ifndef TB_MEM_CACHE_CONTROLLER_HH_
#define TB_MEM_CACHE_CONTROLLER_HH_

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "mem/backend.hh"
#include "mem/cache_array.hh"
#include "mem/fabric.hh"
#include "mem/mem_types.hh"
#include "mem/protocol_observer.hh"
#include "sim/event_queue.hh"
#include "sim/hooks.hh"
#include "sim/sim_object.hh"
#include "sim/stats.hh"

namespace tb {

class FaultHooks;

namespace obs {
class TraceSink;
} // namespace obs

namespace mem {

/** Why the controller is waking the CPU up. */
enum class WakeReason : std::uint8_t
{
    ExternalFlag,   ///< invalidation hit the monitored barrier flag
    Timer,          ///< internal wake-up timer expired
    BufferOverflow, ///< pending-invalidation buffer ran out of entries
    Intervention,   ///< a dirty line needed servicing (safety wake)
    Watchdog,       ///< runtime safety watchdog bounded the episode
};

/** Human-readable wake reason. */
const char* wakeReasonName(WakeReason r);

/** Static configuration of one node's cache controller. */
struct ControllerConfig
{
    CacheGeometry l1{16 * 1024, 2, kLineBytes};
    CacheGeometry l2{64 * 1024, 8, kLineBytes};
    /** Processor round trip to L1 / L2 (Table 1: 2 ns / 12 ns). */
    Tick l1Rt = 2 * kNanosecond;
    Tick l2Rt = 12 * kNanosecond;
    /** L2 cycles spent streaming out one line during a sleep flush. */
    Tick flushPerLine = 2 * kNanosecond;
    /** Entries in the sleeping-CPU pending-invalidation buffer. */
    unsigned invalBufferEntries = 16;
};

/** One node's cache controller. */
class CacheController : public SimObject, public MsgSink
{
  public:
    using LoadCallback = std::function<void(std::uint64_t)>;
    using DoneCallback = std::function<void()>;
    /**
     * Wake request handler installed by the CPU model. Must initiate
     * a wake-up (idempotent) and return the tick at which the cache
     * becomes accessible again (== now if already awake).
     */
    using WakeHandler = std::function<Tick(WakeReason)>;

    /**
     * @param hooks machine-wide instrumentation seams (checker, fault
     *        injection, tracing); may be null for standalone use.
     *        Fields are read at use time, so instruments can attach
     *        after construction.
     */
    CacheController(EventQueue& queue, NodeId node, Fabric& fabric,
                    Backend& backend, const ControllerConfig& config,
                    std::string name, const Hooks* hooks = nullptr);

    /** Cancels the wake timer so no dead callback can fire. */
    ~CacheController() override;

    /** Node this controller belongs to. */
    NodeId node() const { return nodeId; }

    /** The attached protocol observer, or null. */
    ProtocolObserver*
    checkObserver() const
    {
        return hooks_ ? hooks_->check : nullptr;
    }

    // ------------------------------------------------------------------
    // CPU-facing demand interface (blocking: one outstanding access).
    // ------------------------------------------------------------------

    /** Coherent load of the word at @p a. */
    void load(Addr a, LoadCallback done);

    /** Coherent store of @p v to the word at @p a. */
    void store(Addr a, std::uint64_t v, DoneCallback done);

    /**
     * Atomic read-modify-write executed at the home memory of @p a
     * (models a fetch-op). @p op runs exactly once at the
     * serialization point; @p done receives the pre-op value.
     */
    void atomicRmw(Addr a, std::function<std::uint64_t(Tick)> op,
                   LoadCallback done);

    /** True while a demand access is outstanding. */
    bool busy() const { return pending.has_value(); }

    // ------------------------------------------------------------------
    // Spin support.
    // ------------------------------------------------------------------

    /**
     * One-shot watch: @p on_inval fires when @p a's line is
     * invalidated (external Inv) or locally evicted. This models a
     * spinloop that hits in the cache until the coherence protocol
     * yanks the line. Multiple watchers per line are allowed.
     */
    void watchLine(Addr a, std::function<void()> on_inval);

    /** Remove all watches on @p a's line. */
    void clearWatches(Addr a);

    // ------------------------------------------------------------------
    // Thrifty-barrier hardware hooks (Section 3.3 of the paper).
    // ------------------------------------------------------------------

    /**
     * Program the flag monitor: coherently reads the flag (installing
     * a shared copy so the release's invalidation reaches this node),
     * then calls @p done(already_flipped). If already_flipped the CPU
     * must not sleep; otherwise the monitor stays armed and an
     * invalidation of the flag line triggers wakeUp(ExternalFlag).
     */
    void armFlagMonitor(Addr a, std::uint64_t want,
                        std::function<void(bool)> done);

    /** Disarm the flag monitor (no-op if not armed). */
    void disarmFlagMonitor();

    /** True while the flag monitor is armed. */
    bool flagMonitorArmed() const { return flagMon.armed; }

    /** Arm the internal wake-up timer to fire in @p delta ticks. */
    void armWakeTimer(Tick delta);

    /** Disarm the wake-up timer (no-op if not armed). */
    void disarmWakeTimer();

    /** Install the CPU's wake handler. */
    void setWakeHandler(WakeHandler handler) { wake = std::move(handler); }

    /**
     * Force a wake-up from outside the controller's own mechanisms
     * (the thrifty runtime's safety watchdog). Disarms the monitor
     * and timer like any other wake; returns the tick at which the
     * cache is accessible again.
     */
    Tick forceWake(WakeReason reason) { return triggerWake(reason); }

    /**
     * Fault injection: deliver a spurious invalidation for @p a's
     * line, as an unfortunate exclusive prefetch by another thread
     * would (Section 3.3.1's false wake-up). Drops any local copy,
     * fires watches and the flag monitor, but does not involve the
     * directory. Test-only.
     */
    void injectSpuriousInvalidation(Addr a);

    // ------------------------------------------------------------------
    // Sleep coordination.
    // ------------------------------------------------------------------

    /**
     * Write back and invalidate every *dirty, shared-page* line (the
     * paper's pre-deep-sleep flush). @p done runs when the flush
     * stream has been issued; writebacks drain asynchronously through
     * the writeback buffer.
     */
    void flushDirtyShared(DoneCallback done);

    /**
     * Inform the controller whether the cache data arrays can service
     * protocol requests (false while the CPU is in Sleep2/Sleep3).
     * Re-enabling applies all deferred invalidations.
     */
    void setSnoopable(bool snoopable);

    /** True if the cache currently services protocol requests. */
    bool snoopable() const { return snoopable_; }

    // ------------------------------------------------------------------
    // Fabric entry point and introspection.
    // ------------------------------------------------------------------

    /** Fabric delivery entry point. */
    void receive(const Msg& msg) override;

    /** L1 / L2 state of @p a's line (Invalid if absent). For tests. */
    LineState l1State(Addr a) const;
    LineState l2State(Addr a) const;

    /** Number of deferred (buffered) invalidations. For tests. */
    std::size_t deferredInvalidations() const { return deferred.size(); }

    /** True if @p a's line sits in the writeback buffer. For tests. */
    bool
    inWritebackBuffer(Addr a) const
    {
        return wbBuffer.count(lineAddr(a)) != 0;
    }

    const stats::StatGroup& statistics() const { return statsGroup; }
    stats::StatGroup& statistics() { return statsGroup; }

  private:
    /** Outstanding demand access. */
    struct Pending
    {
        enum class Kind { Load, Store, Rmw } kind = Kind::Load;
        Addr addr = 0;
        Addr line = 0;
        /** Tick the access was issued (trace span start). */
        Tick startTick = 0;
        std::uint64_t storeValue = 0;
        std::function<std::uint64_t(Tick)> rmwOp;
        LoadCallback loadDone;
        DoneCallback storeDone;
    };

    /** Armed flag-monitor state. */
    struct FlagMonitor
    {
        bool armed = false;
        Addr line = 0;
        Addr addr = 0;
        std::uint64_t want = 0;
    };

    void startAccess(Pending p);
    void lookupL2(Addr line);
    void sendToDir(Msg msg);

    /** Install @p line at @p state in L2+L1, handling evictions. */
    void fillBoth(Addr line, LineState state);

    /** Install @p line in L1 only (L2 already has it). */
    void fillL1(Addr line, LineState state);

    /** Finish the outstanding demand access. */
    void completePending();

    /** Evict bookkeeping for an L2 victim. */
    void handleL2Victim(const CacheArray::Victim& victim);

    /** Run one-shot watches for @p line. */
    void fireWatches(Addr line);

    /** Locally drop @p line from both arrays. */
    void dropLine(Addr line);

    /** Invalidation arriving from the fabric. */
    void handleInv(const Msg& msg);

    /** Intervention (FwdGetS / FwdGetX) arriving from the fabric. */
    void handleFwd(const Msg& msg);

    /** Perform the cache-side effects + reply of an intervention. */
    void serveFwd(const Msg& msg);

    /** 3-hop variant: reply with data directly to the requester. */
    void serveFwdThreeHop(const Msg& msg);

    /** Trigger a wake-up through the installed handler. */
    Tick triggerWake(WakeReason reason);

    /** Fault-injection seam, or null. */
    FaultHooks*
    faultHooks() const
    {
        return hooks_ ? hooks_->faults : nullptr;
    }

    /** Structured-trace seam, or null. */
    obs::TraceSink*
    traceSink() const
    {
        return hooks_ ? hooks_->trace : nullptr;
    }

    /**
     * Fire the flag monitor for @p line if armed, consulting the
     * fault hooks: the notification can be dropped, duplicated, or
     * delayed on its way to the wake logic.
     */
    void maybeFireFlagMonitor(Addr line);

    /** Deliver a delayed/duplicated flag-monitor notification. */
    void replayFlagWake(Addr line);

    /** Report @p line's L2 state to the attached observer, if any. */
    void
    noteLine(Addr line, LineState state)
    {
        if (auto* ob = checkObserver())
            ob->onCacheLineState(nodeId, line, state);
    }

    NodeId nodeId;
    Fabric& fabric;
    Backend& backend;
    ControllerConfig cfg;

    CacheArray l1;
    CacheArray l2;

    std::optional<Pending> pending;
    /** Dirty lines evicted/flushed, awaiting WbAck from home. */
    std::unordered_set<Addr> wbBuffer;
    std::unordered_map<Addr, std::vector<std::function<void()>>> watches;

    FlagMonitor flagMon;
    EventHandle wakeTimer;
    WakeHandler wake;

    bool snoopable_ = true;
    std::vector<Addr> deferred; ///< invalidations buffered during sleep

    /** Machine-wide instrumentation seams (may be null). */
    const Hooks* hooks_;

    stats::StatGroup statsGroup;

    /**
     * References into statsGroup resolved once at construction, so the
     * per-access paths bump a counter without a name lookup. StatGroup
     * storage is node-stable, and this member is declared after
     * statsGroup so the references outlive nothing.
     */
    struct HotStats
    {
        explicit HotStats(stats::StatGroup& g)
            : l1Hits(g.scalar("l1Hits")),
              l1Misses(g.scalar("l1Misses")),
              l2Hits(g.scalar("l2Hits")),
              l2Misses(g.scalar("l2Misses")),
              upgrades(g.scalar("upgrades")),
              l2Evictions(g.scalar("l2Evictions")),
              rmwIssued(g.scalar("rmwIssued")),
              invsReceived(g.scalar("invsReceived")),
              invsDeferred(g.scalar("invsDeferred")),
              fwdsReceived(g.scalar("fwdsReceived")),
              threeHopServes(g.scalar("threeHopServes")),
              spuriousInvals(g.scalar("spuriousInvals")),
              flushedLines(g.scalar("flushedLines"))
        {}

        stats::Scalar& l1Hits;
        stats::Scalar& l1Misses;
        stats::Scalar& l2Hits;
        stats::Scalar& l2Misses;
        stats::Scalar& upgrades;
        stats::Scalar& l2Evictions;
        stats::Scalar& rmwIssued;
        stats::Scalar& invsReceived;
        stats::Scalar& invsDeferred;
        stats::Scalar& fwdsReceived;
        stats::Scalar& threeHopServes;
        stats::Scalar& spuriousInvals;
        stats::Scalar& flushedLines;
    } hot{statsGroup};
};

} // namespace mem
} // namespace tb

#endif // TB_MEM_CACHE_CONTROLLER_HH_
