#include "mem/mem_types.hh"

namespace tb {
namespace mem {

const char*
lineStateName(LineState s)
{
    switch (s) {
      case LineState::Invalid:   return "I";
      case LineState::Shared:    return "S";
      case LineState::Exclusive: return "E";
      case LineState::Modified:  return "M";
    }
    return "?";
}

const char*
msgTypeName(MsgType t)
{
    switch (t) {
      case MsgType::GetS:          return "GetS";
      case MsgType::GetX:          return "GetX";
      case MsgType::Upgrade:       return "Upgrade";
      case MsgType::PutM:          return "PutM";
      case MsgType::AtomicRmw:     return "AtomicRmw";
      case MsgType::FwdGetS:       return "FwdGetS";
      case MsgType::FwdGetX:       return "FwdGetX";
      case MsgType::Inv:           return "Inv";
      case MsgType::OwnerData:     return "OwnerData";
      case MsgType::OwnerStale:    return "OwnerStale";
      case MsgType::OwnerHandled:  return "OwnerHandled";
      case MsgType::InvAck:        return "InvAck";
      case MsgType::DataShared:    return "DataShared";
      case MsgType::DataExclusive: return "DataExclusive";
      case MsgType::DataModified:  return "DataModified";
      case MsgType::UpgradeAck:    return "UpgradeAck";
      case MsgType::RmwResult:     return "RmwResult";
      case MsgType::WbAck:         return "WbAck";
    }
    return "?";
}

namespace {
Addr g_trace_line = ~Addr{0};
bool g_trace_on = false;
} // namespace

void
setProtocolTraceLine(Addr line)
{
    g_trace_line = lineAddr(line);
    g_trace_on = true;
}

void
clearProtocolTrace()
{
    g_trace_on = false;
}

bool
protocolTraced(Addr line)
{
    return g_trace_on && lineAddr(line) == g_trace_line;
}

unsigned
Msg::bytes() const
{
    switch (type) {
      case MsgType::PutM:
      case MsgType::OwnerData:
      case MsgType::DataShared:
      case MsgType::DataExclusive:
      case MsgType::DataModified:
        return kDataBytes;
      default:
        return kCtrlBytes;
    }
}

} // namespace mem
} // namespace tb
