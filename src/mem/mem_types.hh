/**
 * @file
 * Shared definitions for the coherent memory hierarchy: line
 * geometry helpers, MESI line states, and the coherence message
 * vocabulary exchanged between cache controllers and directories.
 *
 * The protocol is a hub-and-spoke directory MESI along the lines of
 * DASH: every transaction is serialized at the line's home directory,
 * which queues requests while a line is busy, collects invalidation
 * acknowledgments, and forwards interventions to exclusive owners.
 * (DASH proper collects acks at the requester and forwards data
 * owner->requester; we centralize both at the home, which has the same
 * aggregate cost within one network traversal and is far simpler to
 * verify. See DESIGN.md section 6.)
 */

#ifndef TB_MEM_MEM_TYPES_HH_
#define TB_MEM_MEM_TYPES_HH_

#include <cstdint>
#include <functional>
#include <string>

#include "sim/types.hh"

namespace tb {
namespace mem {

/** Cache line size in bytes (Table 1). */
inline constexpr unsigned kLineBytes = 64;

/** Page size used by the placement policy. */
inline constexpr unsigned kPageBytes = 4096;

/** Align an address down to its line base. */
inline constexpr Addr
lineAddr(Addr a)
{
    return a & ~static_cast<Addr>(kLineBytes - 1);
}

/** Align an address down to its page base. */
inline constexpr Addr
pageAddr(Addr a)
{
    return a & ~static_cast<Addr>(kPageBytes - 1);
}

/** MESI stable states for a cached line. */
enum class LineState : std::uint8_t
{
    Invalid,
    Shared,
    Exclusive, ///< exclusive clean
    Modified,
};

/** True if the state permits silently satisfying a store. */
inline constexpr bool
writable(LineState s)
{
    return s == LineState::Exclusive || s == LineState::Modified;
}

/** True if the state holds valid data. */
inline constexpr bool
valid(LineState s)
{
    return s != LineState::Invalid;
}

/** Human-readable state name. */
const char* lineStateName(LineState s);

/** Coherence message types. */
enum class MsgType : std::uint8_t
{
    // requester -> home
    GetS,      ///< read miss: want a shared (or exclusive-clean) copy
    GetX,      ///< write miss: want an exclusive copy
    Upgrade,   ///< have Shared, want Modified (no data needed)
    PutM,      ///< dirty eviction / flush writeback
    AtomicRmw, ///< at-home-memory read-modify-write (barrier counters)

    // home -> remote caches
    FwdGetS,   ///< intervention: owner must supply data, go Shared
    FwdGetX,   ///< intervention: owner must supply data, go Invalid
    Inv,       ///< invalidate a shared copy

    // remote caches -> home
    OwnerData,  ///< intervention response carrying the dirty line
    OwnerStale, ///< intervention response: line was silently dropped
    OwnerHandled, ///< 3-hop mode: owner sent the data directly to the
                  ///< requester; this closes the home transaction
    InvAck,     ///< invalidation acknowledged

    // home -> requester (transaction completion)
    DataShared,    ///< fill, install Shared
    DataExclusive, ///< fill, install Exclusive (clean)
    DataModified,  ///< fill, install Modified (GetX grant)
    UpgradeAck,    ///< upgrade grant, install Modified in place
    RmwResult,     ///< atomic result (old value)
    WbAck,         ///< writeback accepted (or discarded as stale)
};

/** Human-readable message-type name. */
const char* msgTypeName(MsgType t);

/** One coherence message. Data never travels (a global value backend
 *  holds memory contents); only the size is charged to the network. */
struct Msg
{
    MsgType type = MsgType::GetS;
    Addr line = 0;
    NodeId src = kInvalidNode;
    /** For RmwResult: the pre-op value at the home memory. */
    std::uint64_t rmwOld = 0;
    /**
     * For GetX/Upgrade: the store's word address and value. The home
     * directory applies the store to the value backend at the grant —
     * the transaction's serialization point — so that later requests
     * on the line (e.g.\ a spinner's reload queued behind the flag
     * flip) are guaranteed to observe it.
     */
    Addr storeAddr = 0;
    std::uint64_t storeValue = 0;
    bool hasStore = false;
    /**
     * For FwdGetS/FwdGetX in three-hop forwarding mode: the original
     * requester the owner should reply to directly (kInvalidNode in
     * hub-and-spoke mode, where the owner replies to home).
     */
    NodeId requester = kInvalidNode;
    /** For OwnerHandled: did the owner retain a Shared copy? */
    bool ownerKept = false;
    /** For OwnerHandled: was the line dirty (home must write back)? */
    bool ownerWasDirty = false;

    /**
     * For AtomicRmw: the operation, executed exactly once at the home
     * directory at the transaction's serialization point, receiving
     * the home's current tick. Returns the pre-op value, which travels
     * back in RmwResult::rmwOld. The tick parameter lets fetch-op
     * users (the barriers) timestamp per-thread bookkeeping with the
     * serialization time itself — on a partitioned machine the home's
     * clock is the only one the op may legally read. Modeling note:
     * this stands in for a fetch-op executed at the home memory
     * controller (DESIGN.md section 6).
     */
    std::function<std::uint64_t(Tick)> rmwOp;

    /** Network payload size in bytes for this message type. */
    unsigned bytes() const;
};

/** Build a control message (no store payload, no fetch-op). */
inline Msg
makeMsg(MsgType type, Addr line, NodeId src, std::uint64_t rmw_old = 0)
{
    Msg m;
    m.type = type;
    m.line = line;
    m.src = src;
    m.rmwOld = rmw_old;
    return m;
}

/** Receiver of coherence messages (cache controller or directory). */
class MsgSink
{
  public:
    virtual ~MsgSink() = default;

    /** Deliver one message; called by the fabric at arrival time. */
    virtual void receive(const Msg& msg) = 0;
};

/** Control-message size on the network. */
inline constexpr unsigned kCtrlBytes = 8;
/** Data-message size on the network (line + header). */
inline constexpr unsigned kDataBytes = kLineBytes + kCtrlBytes;

/**
 * Protocol debug trace: when enabled for a line, controllers and
 * directories log every message touching it to stderr. Development
 * aid; off by default.
 */
void setProtocolTraceLine(Addr line);
/** Disable protocol tracing. */
void clearProtocolTrace();
/** True if @p line is being traced. */
bool protocolTraced(Addr line);

} // namespace mem
} // namespace tb

#endif // TB_MEM_MEM_TYPES_HH_
