/**
 * @file
 * CC-NUMA page placement and address allocation.
 *
 * Following the paper's setup: "Shared data pages are distributed in a
 * round-robin fashion among the nodes, and private data pages are
 * allocated locally." Workloads allocate regions through this map; the
 * coherence fabric asks it for the home node of every line.
 */

#ifndef TB_MEM_ADDRESS_MAP_HH_
#define TB_MEM_ADDRESS_MAP_HH_

#include <cstddef>
#include <unordered_map>
#include <vector>

#include "mem/mem_types.hh"
#include "sim/types.hh"

namespace tb {
namespace mem {

class Backend;

/** Page-granular NUMA placement directory. */
class AddressMap
{
  public:
    /** @param num_nodes number of home nodes in the machine. */
    explicit AddressMap(unsigned num_nodes);

    /**
     * Bind the value backend: every subsequent allocation pre-faults
     * its pages there, so the backend's page table is fully built
     * before the simulation starts (a partitioned run must never
     * rehash it mid-flight).
     */
    void bindBackend(Backend* b) { backend = b; }

    /**
     * Freeze the map (and the bound backend). Further allocations
     * panic — workloads must allocate everything up front, which is
     * what makes lock-free concurrent home() lookups safe.
     */
    void seal();

    /**
     * Allocate @p bytes of shared memory (page-aligned); the pages are
     * homed round-robin across all nodes.
     * @return base address of the region.
     */
    Addr allocShared(std::size_t bytes);

    /**
     * Allocate @p bytes of private memory homed entirely at
     * @p owner's node.
     */
    Addr allocPrivate(NodeId owner, std::size_t bytes);

    /** Home node of the page containing @p a. */
    NodeId home(Addr a) const;

    /** True if @p a lies in a shared region. */
    bool isShared(Addr a) const;

    /** True if @p a has been allocated at all. */
    bool isMapped(Addr a) const;

    /** Total bytes allocated so far (page-rounded). */
    std::size_t allocatedBytes() const { return nextPage - kBaseAddr; }

  private:
    struct PageInfo
    {
        NodeId home;
        bool shared;
    };

    /** Keep address 0 unmapped so it can act as a null value. */
    static constexpr Addr kBaseAddr = kPageBytes;

    Addr allocPages(std::size_t bytes, bool shared, NodeId fixed_home);

    unsigned numNodes;
    Addr nextPage = kBaseAddr;
    unsigned nextSharedHome = 0;
    Backend* backend = nullptr;
    bool sealed_ = false;
    std::unordered_map<Addr, PageInfo> pages; ///< keyed by page base
};

} // namespace mem
} // namespace tb

#endif // TB_MEM_ADDRESS_MAP_HH_
