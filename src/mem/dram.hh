/**
 * @file
 * Per-node main-memory (DRAM) timing model.
 *
 * Table 1: interleaved main memory with a 60 ns row-miss access and a
 * 250 MHz, 16 B-wide split-transaction memory bus. Interleaving means
 * the array access latencies of concurrent requests overlap; only the
 * bus transfer serializes. A 64 B line occupies the bus for 4 bus
 * cycles (16 ns).
 */

#ifndef TB_MEM_DRAM_HH_
#define TB_MEM_DRAM_HH_

#include <functional>

#include "sim/hooks.hh"
#include "sim/sim_object.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace tb {
namespace mem {

/** Timing configuration of one node's memory. */
struct DramConfig
{
    /** Array access (row miss) latency. */
    Tick accessLatency = 60 * kNanosecond;
    /** Bus occupancy to move one cache line (64 B over 16 B @250MHz). */
    Tick busTransfer = 16 * kNanosecond;
};

/** One node's DRAM + memory bus. */
class Dram : public SimObject
{
  public:
    Dram(EventQueue& queue, const DramConfig& config, std::string name,
         const Hooks* hooks = nullptr);

    /**
     * Perform a line read; @p done runs when the data is on its way
     * (array access + bus transfer, with bus contention).
     */
    void read(std::function<void()> done);

    /**
     * Perform a line write (fire and forget): occupies the bus but
     * nobody waits for it.
     */
    void write();

    const stats::StatGroup& statistics() const { return statsGroup; }

  private:
    /** Reserve the bus at or after @p earliest; returns transfer end. */
    Tick reserveBus(Tick earliest);

    DramConfig cfg;
    /** Machine-wide instrumentation seams (may be null; DRAM has no
     *  active seams today, but takes the struct like every other
     *  component so future ones need no plumbing). */
    const Hooks* hooks_;
    Tick busFreeAt = 0;
    stats::StatGroup statsGroup;

    /** Cached references into statsGroup (resolved once; node-stable
     *  storage) so hot paths skip the name lookup. Declared after
     *  statsGroup. */
    struct HotStats
    {
        explicit HotStats(stats::StatGroup& g)
            : busStallTicks(g.scalar("busStallTicks")),
              reads(g.scalar("reads")),
              writes(g.scalar("writes"))
        {}

        stats::Scalar& busStallTicks;
        stats::Scalar& reads;
        stats::Scalar& writes;
    } hot{statsGroup};
};

} // namespace mem
} // namespace tb

#endif // TB_MEM_DRAM_HH_
