#include "mem/dram.hh"

#include <utility>

namespace tb {
namespace mem {

Dram::Dram(EventQueue& queue, const DramConfig& config, std::string name,
           const Hooks* hooks)
    : SimObject(queue, std::move(name)), cfg(config), hooks_(hooks)
{}

Tick
Dram::reserveBus(Tick earliest)
{
    Tick start = std::max(earliest, busFreeAt);
    if (start > earliest) {
        hot.busStallTicks +=
            static_cast<double>(start - earliest);
    }
    busFreeAt = start + cfg.busTransfer;
    return busFreeAt;
}

void
Dram::read(std::function<void()> done)
{
    hot.reads.inc();
    const Tick data_ready = curTick() + cfg.accessLatency;
    const Tick finish = reserveBus(data_ready);
    eq.schedule(finish, std::move(done));
}

void
Dram::write()
{
    hot.writes.inc();
    reserveBus(curTick());
}

} // namespace mem
} // namespace tb
