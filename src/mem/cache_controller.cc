#include "mem/cache_controller.hh"

#include <cstdio>
#include <utility>

#include "obs/trace.hh"
#include "sim/fault_hooks.hh"
#include "sim/logging.hh"

namespace tb {
namespace mem {

const char*
wakeReasonName(WakeReason r)
{
    switch (r) {
      case WakeReason::ExternalFlag:   return "external-flag";
      case WakeReason::Timer:          return "timer";
      case WakeReason::BufferOverflow: return "buffer-overflow";
      case WakeReason::Intervention:   return "intervention";
      case WakeReason::Watchdog:       return "watchdog";
    }
    return "?";
}

CacheController::CacheController(EventQueue& queue, NodeId node,
                                 Fabric& fabric_, Backend& backend_,
                                 const ControllerConfig& config,
                                 std::string name, const Hooks* hooks)
    : SimObject(queue, std::move(name)),
      nodeId(node),
      fabric(fabric_),
      backend(backend_),
      cfg(config),
      l1(config.l1),
      l2(config.l2),
      hooks_(hooks)
{
    if (cfg.l2Rt < cfg.l1Rt)
        fatal("L2 round trip must not be shorter than L1's");
}

CacheController::~CacheController()
{
    // The timer callback captures `this`; never let it outlive us.
    wakeTimer.cancel();
}

// ----------------------------------------------------------------------
// Demand path.
// ----------------------------------------------------------------------

void
CacheController::load(Addr a, LoadCallback done)
{
    Pending p;
    p.kind = Pending::Kind::Load;
    p.addr = a;
    p.line = lineAddr(a);
    p.loadDone = std::move(done);
    startAccess(std::move(p));
}

void
CacheController::store(Addr a, std::uint64_t v, DoneCallback done)
{
    Pending p;
    p.kind = Pending::Kind::Store;
    p.addr = a;
    p.line = lineAddr(a);
    p.storeValue = v;
    p.storeDone = std::move(done);
    startAccess(std::move(p));
}

void
CacheController::atomicRmw(Addr a, std::function<std::uint64_t(Tick)> op,
                           LoadCallback done)
{
    Pending p;
    p.kind = Pending::Kind::Rmw;
    p.addr = a;
    p.line = lineAddr(a);
    p.rmwOp = std::move(op);
    p.loadDone = std::move(done);
    startAccess(std::move(p));
}

void
CacheController::startAccess(Pending p)
{
    if (pending)
        panic(name(), ": demand access while another is outstanding");
    if (!snoopable_)
        panic(name(), ": demand access while cache is asleep");
    p.startTick = curTick();
    pending = std::move(p);

    // Atomics bypass the local hierarchy entirely (fetch-op at home).
    if (pending->kind == Pending::Kind::Rmw) {
        hot.rmwIssued.inc();
        eq.scheduleIn(cfg.l1Rt, [this]() {
            Msg m;
            m.type = MsgType::AtomicRmw;
            m.line = pending->line;
            m.src = nodeId;
            // The word address rides along so the home (and an attached
            // checker) can attribute the fetch-op's effect.
            m.storeAddr = pending->addr;
            m.rmwOp = pending->rmwOp;
            sendToDir(std::move(m));
        });
        return;
    }

    eq.scheduleIn(cfg.l1Rt, [this]() {
        const Addr line = pending->line;
        CacheArray::Line* e1 = l1.find(line);
        const bool is_store = pending->kind == Pending::Kind::Store;
        if (e1 && (!is_store || writable(e1->state))) {
            hot.l1Hits.inc();
            l1.touch(*e1);
            if (is_store && e1->state == LineState::Exclusive) {
                // Silent E -> M upgrade, mirrored in L2.
                e1->state = LineState::Modified;
                CacheArray::Line* e2 = l2.find(line);
                if (!e2)
                    panic(name(), ": inclusion violated for line ", line);
                e2->state = LineState::Modified;
            } else if (is_store) {
                CacheArray::Line* e2 = l2.find(line);
                if (!e2)
                    panic(name(), ": inclusion violated for line ", line);
                e2->state = LineState::Modified;
            }
            if (is_store)
                noteLine(line, LineState::Modified);
            completePending();
            return;
        }
        hot.l1Misses.inc();
        eq.scheduleIn(cfg.l2Rt - cfg.l1Rt,
                      [this, line]() { lookupL2(line); });
    });
}

void
CacheController::lookupL2(Addr line)
{
    CacheArray::Line* e2 = l2.find(line);
    const bool is_store = pending->kind == Pending::Kind::Store;

    if (e2 && (!is_store || writable(e2->state))) {
        hot.l2Hits.inc();
        l2.touch(*e2);
        if (is_store) {
            e2->state = LineState::Modified;
            noteLine(line, LineState::Modified);
        }
        fillL1(line, e2->state);
        completePending();
        return;
    }
    hot.l2Misses.inc();

    Msg m;
    m.line = line;
    m.src = nodeId;
    if (is_store) {
        m.storeAddr = pending->addr;
        m.storeValue = pending->storeValue;
        m.hasStore = true;
        if (e2) {
            // Shared copy present: request ownership only.
            hot.upgrades.inc();
            m.type = MsgType::Upgrade;
        } else {
            m.type = MsgType::GetX;
        }
    } else {
        m.type = MsgType::GetS;
    }
    sendToDir(std::move(m));
}

void
CacheController::sendToDir(Msg msg)
{
    fabric.toDirectory(nodeId, std::move(msg));
}

void
CacheController::fillL1(Addr line, LineState state)
{
    if (CacheArray::Line* e1 = l1.find(line)) {
        e1->state = state;
        l1.touch(*e1);
        return;
    }
    // L1 victims need no action: inclusion keeps their state in L2.
    (void)l1.insert(line, state);
}

void
CacheController::handleL2Victim(const CacheArray::Victim& victim)
{
    if (!victim.valid)
        return;
    hot.l2Evictions.inc();
    noteLine(victim.addr, LineState::Invalid);
    l1.invalidate(victim.addr);
    fireWatches(victim.addr);
    if (victim.state == LineState::Modified) {
        wbBuffer.insert(victim.addr);
        sendToDir(makeMsg(MsgType::PutM, victim.addr, nodeId, 0));
    }
    // Shared / Exclusive-clean victims drop silently; the directory
    // copes with stale sharer bits (controllers ack Inv for absent
    // lines) and stale owners (OwnerStale).
}

void
CacheController::fillBoth(Addr line, LineState state)
{
    if (l2.find(line)) {
        // Only reachable for UpgradeAck races; refresh the state.
        CacheArray::Line* e2 = l2.find(line);
        e2->state = state;
        l2.touch(*e2);
    } else {
        handleL2Victim(l2.insert(line, state));
    }
    noteLine(line, state);
    fillL1(line, state);
}

void
CacheController::completePending()
{
    if (!pending)
        panic(name(), ": completing with no pending access");
    Pending p = std::move(*pending);
    pending.reset();

    if (TB_TRACED(traceSink(), obs::TraceCategory::Mem)) {
        traceSink()->complete(
            obs::TraceCategory::Mem,
            p.kind == Pending::Kind::Load ? "load" : "store",
            p.startTick, curTick() - p.startTick, nodeId,
            {{"line", p.line}});
    }
    switch (p.kind) {
      case Pending::Kind::Load: {
        const std::uint64_t v = backend.read(p.addr);
        if (auto* ob = checkObserver())
            ob->onLoadValue(nodeId, p.addr, v);
        p.loadDone(v);
        break;
      }
      case Pending::Kind::Store:
        backend.write(p.addr, p.storeValue);
        if (auto* ob = checkObserver())
            ob->onStoreSerialized(nodeId, p.addr, p.storeValue);
        p.storeDone();
        break;
      case Pending::Kind::Rmw:
        panic("RMW must complete through RmwResult");
    }
}

// ----------------------------------------------------------------------
// Fabric message handling.
// ----------------------------------------------------------------------

void
CacheController::receive(const Msg& msg)
{
    if (protocolTraced(msg.line)) {
        fprintf(stderr,
                "[%12lu] ctrl%u <- %-13s (l2=%s pending=%d)\n",
                curTick(), nodeId, msgTypeName(msg.type),
                lineStateName(l2State(msg.line)),
                static_cast<int>(pending.has_value()));
    }
    switch (msg.type) {
      case MsgType::DataShared:
        fillBoth(msg.line, LineState::Shared);
        completePending();
        break;
      case MsgType::DataExclusive:
        fillBoth(msg.line, LineState::Exclusive);
        completePending();
        break;
      case MsgType::DataModified:
        fillBoth(msg.line, LineState::Modified);
        completePending();
        break;
      case MsgType::UpgradeAck:
        // Our Shared copy may have been invalidated while the upgrade
        // was queued at the directory; (re)install Modified either way.
        fillBoth(msg.line, LineState::Modified);
        completePending();
        break;
      case MsgType::RmwResult: {
        if (!pending || pending->kind != Pending::Kind::Rmw)
            panic(name(), ": stray RmwResult");
        Pending p = std::move(*pending);
        pending.reset();
        if (TB_TRACED(traceSink(), obs::TraceCategory::Mem)) {
            traceSink()->complete(obs::TraceCategory::Mem, "rmw",
                            p.startTick, curTick() - p.startTick,
                            nodeId, {{"line", p.line}});
        }
        p.loadDone(msg.rmwOld);
        break;
      }
      case MsgType::WbAck:
        wbBuffer.erase(msg.line);
        break;
      case MsgType::Inv:
        handleInv(msg);
        break;
      case MsgType::FwdGetS:
      case MsgType::FwdGetX:
        handleFwd(msg);
        break;
      default:
        panic(name(), ": unexpected message ", msgTypeName(msg.type));
    }
}

void
CacheController::handleInv(const Msg& msg)
{
    hot.invsReceived.inc();
    const Addr line = msg.line;
    const NodeId home = msg.src;

    // Invalidations only ever target clean (Shared) or absent lines in
    // this protocol, so the controller can acknowledge immediately even
    // while the CPU sleeps (Section 3.1 of the paper).
    fabric.toDirectory(nodeId, makeMsg(MsgType::InvAck, line, nodeId, 0));
    (void)home;

    if (snoopable_) {
        dropLine(line);
    } else if (l2.find(line)) {
        // The ack above is the invalidation's linearization point: the
        // copy is logically dead from here on, the array bits are just
        // unreachable until wake-up.
        noteLine(line, LineState::Invalid);
        deferred.push_back(line);
        hot.invsDeferred.inc();
        if (deferred.size() > cfg.invalBufferEntries) {
            statsGroup.scalar("bufferOverflowWakes").inc();
            triggerWake(WakeReason::BufferOverflow);
        }
    }

    fireWatches(line);

    maybeFireFlagMonitor(line);
}

void
CacheController::handleFwd(const Msg& msg)
{
    hot.fwdsReceived.inc();
    if (auto* ob = checkObserver())
        ob->onInterventionReceived(nodeId, msg.line);
    if (snoopable_) {
        serveFwd(msg);
        return;
    }

    // CPU asleep in a non-snooping state. Clean data can be handled
    // from the (never-gated) controller tags; dirty data requires the
    // cache array, so wake the CPU and serve when it is accessible.
    const CacheArray::Line* e2 = l2.find(msg.line);
    const bool dirty_in_cache = e2 && e2->state == LineState::Modified;
    if (!dirty_in_cache) {
        serveFwd(msg);
        return;
    }
    statsGroup.scalar("interventionWakes").inc();
    const Tick ready = triggerWake(WakeReason::Intervention);
    Msg copy = msg;
    eq.schedule(ready, [this, copy]() { serveFwd(copy); });
}

void
CacheController::serveFwd(const Msg& msg)
{
    if (auto* ob = checkObserver())
        ob->onInterventionServed(nodeId, msg.line);
    if (msg.requester != kInvalidNode) {
        serveFwdThreeHop(msg);
        return;
    }
    const Addr line = msg.line;
    const bool is_gets = msg.type == MsgType::FwdGetS;
    CacheArray::Line* e2 = l2.find(line);

    if (e2 && e2->state == LineState::Modified) {
        std::uint64_t kept = 0;
        if (is_gets) {
            // Owner keeps a Shared copy and supplies the data.
            e2->state = LineState::Shared;
            if (CacheArray::Line* e1 = l1.find(line))
                e1->state = LineState::Shared;
            noteLine(line, LineState::Shared);
            kept = 1;
        } else {
            dropLine(line);
        }
        fabric.toDirectory(nodeId,
                           makeMsg(MsgType::OwnerData, line, nodeId, kept));
        return;
    }

    if (wbBuffer.count(line)) {
        // The dirty line is in flight to home; serve from the buffer
        // (data already coherent in the backend), copy not retained.
        fabric.toDirectory(nodeId,
                           makeMsg(MsgType::OwnerData, line, nodeId, 0));
        return;
    }

    if (e2 && e2->state == LineState::Exclusive) {
        // Clean exclusive: memory is current. On FwdGetS downgrade to
        // Shared and keep the copy (kept flag travels in rmwOld); on
        // FwdGetX relinquish it.
        std::uint64_t kept = 0;
        if (is_gets) {
            e2->state = LineState::Shared;
            if (CacheArray::Line* e1 = l1.find(line))
                e1->state = LineState::Shared;
            noteLine(line, LineState::Shared);
            kept = 1;
        } else {
            dropLine(line);
        }
        fabric.toDirectory(nodeId, makeMsg(MsgType::OwnerStale, line, nodeId, kept));
        return;
    }

    // Silently dropped: memory is current, nothing retained.
    fabric.toDirectory(nodeId,
                       makeMsg(MsgType::OwnerStale, line, nodeId, 0));
}

void
CacheController::serveFwdThreeHop(const Msg& msg)
{
    const Addr line = msg.line;
    const bool is_gets = msg.type == MsgType::FwdGetS;
    CacheArray::Line* e2 = l2.find(line);
    const bool in_wb = wbBuffer.count(line) != 0;

    if (!e2 && !in_wb) {
        // Silently dropped clean line: fall back to the home path
        // (memory is current there).
        fabric.toDirectory(
            nodeId, makeMsg(MsgType::OwnerStale, line, nodeId, 0));
        return;
    }

    const bool dirty =
        in_wb || (e2 && e2->state == LineState::Modified);
    bool kept = false;
    if (e2) {
        if (is_gets) {
            e2->state = LineState::Shared;
            if (CacheArray::Line* e1 = l1.find(line))
                e1->state = LineState::Shared;
            noteLine(line, LineState::Shared);
            kept = true;
        } else {
            dropLine(line);
        }
    }

    // 3-hop serialization point: a forwarded store commits here, so
    // the direct data grant and anything later serialized at home
    // both observe it.
    if (!is_gets && msg.hasStore) {
        backend.write(msg.storeAddr, msg.storeValue);
        if (auto* ob = checkObserver())
            ob->onStoreSerialized(msg.requester, msg.storeAddr,
                                   msg.storeValue);
    }

    hot.threeHopServes.inc();
    fabric.toController(nodeId, msg.requester,
                        makeMsg(is_gets ? MsgType::DataShared
                                        : MsgType::DataModified,
                                line, nodeId, 0));
    Msg done = makeMsg(MsgType::OwnerHandled, line, nodeId, 0);
    done.ownerKept = kept;
    done.ownerWasDirty = dirty;
    fabric.toDirectory(nodeId, std::move(done));
}

void
CacheController::dropLine(Addr line)
{
    noteLine(line, LineState::Invalid);
    l1.invalidate(line);
    l2.invalidate(line);
    // Anyone spinning on this line must reload (and would, in
    // hardware: the next spin iteration misses).
    fireWatches(line);
    // The flag monitor triggers on any coherence action that removes
    // the monitored line: plain invalidations, but also interventions
    // (another thread writing the flag while we hold it exclusive).
    maybeFireFlagMonitor(line);
}

// ----------------------------------------------------------------------
// Spin watches.
// ----------------------------------------------------------------------

void
CacheController::watchLine(Addr a, std::function<void()> on_inval)
{
    watches[lineAddr(a)].push_back(std::move(on_inval));
}

void
CacheController::clearWatches(Addr a)
{
    watches.erase(lineAddr(a));
}

void
CacheController::fireWatches(Addr line)
{
    auto it = watches.find(line);
    if (it == watches.end())
        return;
    std::vector<std::function<void()>> cbs = std::move(it->second);
    watches.erase(it);
    for (auto& cb : cbs)
        cb();
}

// ----------------------------------------------------------------------
// Thrifty hooks.
// ----------------------------------------------------------------------

void
CacheController::armFlagMonitor(Addr a, std::uint64_t want,
                                std::function<void(bool)> done)
{
    // The monitor logic reads the flag through the cache, installing a
    // shared copy; the release's invalidation then reaches this node.
    load(a, [this, a, want, done = std::move(done)](std::uint64_t v) {
        if (v == want) {
            done(true); // already flipped: the CPU must not sleep
            return;
        }
        flagMon.armed = true;
        flagMon.addr = a;
        flagMon.line = lineAddr(a);
        flagMon.want = want;
        done(false);
    });
}

void
CacheController::disarmFlagMonitor()
{
    flagMon.armed = false;
}

void
CacheController::injectSpuriousInvalidation(Addr a)
{
    const Addr line = lineAddr(a);
    hot.spuriousInvals.inc();
    if (flagMon.armed && flagMon.line == line)
        statsGroup.scalar("falseWakes").inc();
    if (snoopable_) {
        dropLine(line); // fires watches and the flag monitor
        return;
    }
    if (l2.find(line)) {
        noteLine(line, LineState::Invalid);
        deferred.push_back(line);
    }
    fireWatches(line);
    maybeFireFlagMonitor(line);
}

void
CacheController::maybeFireFlagMonitor(Addr line)
{
    if (!flagMon.armed || flagMon.line != line)
        return;
    if (auto* faults = faultHooks()) {
        WakeDeliveryFault f = faults->wakeDelivery(nodeId);
        if (f.drop) {
            // The wake-up notification is swallowed between the
            // monitor's match logic and the wake pin. The monitor
            // disarms (the match consumed the event), so only the
            // timer, a buffer overflow, or the runtime's watchdog can
            // still end this sleep episode.
            flagMon.armed = false;
            statsGroup.scalar("faultDroppedWakes").inc();
            return;
        }
        if (f.duplicate) {
            // Deliver now and replay later; the replay re-checks the
            // monitor so it can only wake a *future* episode early
            // (a spurious wake), never double-fire this one.
            statsGroup.scalar("faultDupWakes").inc();
            eq.scheduleIn(f.delay,
                          [this, line]() { replayFlagWake(line); });
        } else if (f.delay > 0) {
            statsGroup.scalar("faultDelayedWakes").inc();
            eq.scheduleIn(f.delay,
                          [this, line]() { replayFlagWake(line); });
            return;
        }
    }
    flagMon.armed = false;
    statsGroup.scalar("externalWakes").inc();
    triggerWake(WakeReason::ExternalFlag);
}

void
CacheController::replayFlagWake(Addr line)
{
    // Guarded redelivery: the episode may have ended meanwhile (timer
    // or watchdog won the race and disarmed the monitor).
    if (!flagMon.armed || flagMon.line != line)
        return;
    flagMon.armed = false;
    statsGroup.scalar("externalWakes").inc();
    triggerWake(WakeReason::ExternalFlag);
}

void
CacheController::armWakeTimer(Tick delta)
{
    wakeTimer.cancel();
    if (auto* faults = faultHooks()) {
        if (faults->wakeTimerFails(nodeId)) {
            // The timer hardware fails to arm: nothing will fire.
            statsGroup.scalar("faultTimerFailures").inc();
            return;
        }
        Tick skewed = faults->wakeTimerSkew(nodeId, delta);
        if (skewed != delta) {
            statsGroup.scalar("faultTimerDrifts").inc();
            delta = skewed;
        }
    }
    wakeTimer = eq.scheduleIn(delta, [this]() {
        statsGroup.scalar("timerWakes").inc();
        triggerWake(WakeReason::Timer);
    });
}

void
CacheController::disarmWakeTimer()
{
    wakeTimer.cancel();
}

Tick
CacheController::triggerWake(WakeReason reason)
{
    if (auto* ob = checkObserver())
        ob->onWakeTrigger(nodeId, reason);
    // Whichever mechanism fires first cancels the other (hybrid
    // wake-up, Section 3.3.2).
    disarmWakeTimer();
    flagMon.armed = false;
    if (!wake)
        return curTick();
    return wake(reason);
}

// ----------------------------------------------------------------------
// Sleep coordination.
// ----------------------------------------------------------------------

void
CacheController::flushDirtyShared(DoneCallback done)
{
    std::vector<Addr> to_flush;
    l2.forEachValid([&](CacheArray::Line& e) {
        if (e.state == LineState::Modified &&
            fabric.addressMap().isShared(e.addr)) {
            to_flush.push_back(e.addr);
        }
    });

    for (Addr line : to_flush) {
        dropLine(line);
        wbBuffer.insert(line);
        sendToDir(makeMsg(MsgType::PutM, line, nodeId, 0));
        hot.flushedLines.inc();
    }

    Tick duration =
        static_cast<Tick>(to_flush.size()) * cfg.flushPerLine;
    if (auto* faults = faultHooks()) {
        Tick extra = faults->flushDelay(nodeId, to_flush.size());
        if (extra > 0) {
            statsGroup.scalar("faultFlushDelayTicks") +=
                static_cast<double>(extra);
            duration += extra;
        }
    }
    if (TB_TRACED(traceSink(), obs::TraceCategory::Mem)) {
        traceSink()->complete(obs::TraceCategory::Mem, "flush", curTick(),
                        duration, nodeId,
                        {{"lines", to_flush.size()}});
    }
    eq.scheduleIn(duration, std::move(done));
}

void
CacheController::setSnoopable(bool snoopable)
{
    if (snoopable && !snoopable_) {
        // Apply buffered invalidations before the CPU resumes.
        for (Addr line : deferred)
            dropLine(line);
        deferred.clear();
    }
    const bool changed = snoopable_ != snoopable;
    snoopable_ = snoopable;
    if (auto* ob = changed ? checkObserver() : nullptr)
        ob->onSnoopableChange(nodeId, snoopable);
}

// ----------------------------------------------------------------------
// Introspection.
// ----------------------------------------------------------------------

LineState
CacheController::l1State(Addr a) const
{
    const CacheArray::Line* e = l1.find(lineAddr(a));
    return e ? e->state : LineState::Invalid;
}

LineState
CacheController::l2State(Addr a) const
{
    const CacheArray::Line* e = l2.find(lineAddr(a));
    return e ? e->state : LineState::Invalid;
}

} // namespace mem
} // namespace tb
