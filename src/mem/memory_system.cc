#include "mem/memory_system.hh"

#include <string>

namespace tb {
namespace mem {

MemorySystem::MemorySystem(EventQueue& queue, noc::Network& network,
                           const MemoryConfig& config)
    : nodes(network.config().nodes()),
      map(nodes),
      fab(network, map)
{
    drams.reserve(nodes);
    directories.reserve(nodes);
    controllers.reserve(nodes);
    for (NodeId n = 0; n < nodes; ++n) {
        const std::string prefix = "node" + std::to_string(n);
        drams.push_back(std::make_unique<Dram>(queue, config.dram,
                                               prefix + ".dram"));
        directories.push_back(std::make_unique<Directory>(
            queue, n, nodes, fab, values, *drams.back(),
            prefix + ".dir", config.threeHopForwarding));
        controllers.push_back(std::make_unique<CacheController>(
            queue, n, fab, values, config.controller,
            prefix + ".ctrl"));
        fab.registerDirectory(n, *directories.back());
        fab.registerController(n, *controllers.back());
    }
}

void
MemorySystem::attachObserver(ProtocolObserver* observer)
{
    fab.setObserver(observer);
    for (auto& d : directories)
        d->setCheckObserver(observer);
    for (auto& c : controllers)
        c->setCheckObserver(observer);
}

} // namespace mem
} // namespace tb
