#include "mem/memory_system.hh"

#include <string>

namespace tb {
namespace mem {

MemorySystem::MemorySystem(EventQueue& queue, noc::Network& network,
                           const MemoryConfig& config, const Hooks* hooks,
                           std::function<EventQueue&(NodeId)> queueFor)
    : nodes(network.config().nodes()),
      map(nodes),
      fab(network, map, hooks)
{
    // Every allocation pre-faults its backend pages, so the value
    // image never rehashes once the harness seals the map.
    map.bindBackend(&values);
    drams.reserve(nodes);
    directories.reserve(nodes);
    controllers.reserve(nodes);
    for (NodeId n = 0; n < nodes; ++n) {
        EventQueue& q = queueFor ? queueFor(n) : queue;
        const std::string prefix = "node" + std::to_string(n);
        drams.push_back(std::make_unique<Dram>(q, config.dram,
                                               prefix + ".dram", hooks));
        directories.push_back(std::make_unique<Directory>(
            q, n, nodes, fab, values, *drams.back(),
            prefix + ".dir", config.threeHopForwarding, hooks));
        controllers.push_back(std::make_unique<CacheController>(
            q, n, fab, values, config.controller,
            prefix + ".ctrl", hooks));
        fab.registerDirectory(n, *directories.back());
        fab.registerController(n, *controllers.back());
    }
}

} // namespace mem
} // namespace tb
