#include "workloads/synthetic_program.hh"

#include <algorithm>
#include <utility>

#include "sim/logging.hh"

namespace tb {
namespace workloads {

namespace {

/** SplitMix-style combiner for deterministic sub-stream seeds. */
std::uint64_t
mix(std::uint64_t h, std::uint64_t v)
{
    h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    std::uint64_t z = h;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

} // namespace

SyntheticProgram::SyntheticProgram(EventQueue& queue,
                                   mem::MemorySystem& memory_,
                                   std::vector<cpu::ThreadContext*> threads,
                                   const AppProfile& profile,
                                   BarrierProvider& barriers,
                                   std::uint64_t seed_)
    : eq(queue),
      memory(memory_),
      tcs(std::move(threads)),
      app(profile),
      provider(barriers),
      seed(seed_)
{
    if (tcs.empty())
        fatal("synthetic program needs at least one thread");
    if (app.totalInstances() == 0)
        fatal("application profile '", app.name, "' has no barriers");

    // The Step pointers reference this object's own profile copy, so
    // they remain valid for the program's lifetime.
    for (const auto& spec : app.prologue)
        sequence.push_back(Step{&spec, 0});
    for (unsigned it = 0; it < app.iterations; ++it) {
        for (const auto& spec : app.loop)
            sequence.push_back(Step{&spec, it});
    }

    sharedBase = memory.addressMap().allocShared(app.sharedBytes);
    privateBase.reserve(tcs.size());
    for (std::size_t t = 0; t < tcs.size(); ++t) {
        privateBase.push_back(memory.addressMap().allocPrivate(
            static_cast<NodeId>(t), app.privateBytes));
    }

    stepIdx.assign(tcs.size(), 0);
    finishTick_.assign(tcs.size(), 0);

    // Materialize every barrier up front: on a partitioned machine
    // threads reach first arrivals concurrently from different host
    // threads, and barrier construction (provider map insert, shared-
    // page allocation) must not race — nor happen after the address
    // map is sealed.
    for (const Step& s : sequence)
        provider.barrierFor(s.spec->pc);
}

Random
SyntheticProgram::streamFor(std::uint64_t a, std::uint64_t b,
                            std::uint64_t c) const
{
    std::uint64_t h = mix(seed, a);
    h = mix(h, b);
    h = mix(h, c);
    return Random(h);
}

double
SyntheticProgram::instanceFactor(const PhaseSpec& spec,
                                 std::uint64_t instance) const
{
    Random rng = streamFor(spec.pc, instance, 0x1157);
    double f = rng.lognormalMeanCv(1.0, spec.instanceJitterCv);
    if (spec.swingProbability > 0.0 &&
        rng.chance(spec.swingProbability)) {
        f *= rng.chance(0.5) ? spec.swingFactor
                             : 1.0 / spec.swingFactor;
    }
    return f;
}

Tick
SyntheticProgram::drawBusy(ThreadId tid, const Step& step) const
{
    const PhaseSpec& spec = *step.spec;
    // Persistent partition skew: one draw per (barrier, thread).
    Random base_rng = streamFor(spec.pc, 0x5eed, tid);
    const double base = base_rng.lognormalMeanCv(1.0, spec.imbalanceCv);
    // Instance-to-instance wobble per thread.
    Random rng = streamFor(spec.pc, step.instance, 0xbeef + tid);
    const double wobble =
        rng.lognormalMeanCv(1.0, spec.threadWobbleCv);
    double busy = static_cast<double>(spec.meanCompute) *
                  instanceFactor(spec, step.instance) * base * wobble;

    // OS interference (Section 3.4.2): one random thread of an
    // affected instance is "preempted" and arrives inordinately late.
    if (spec.spikeProbability > 0.0) {
        Random spike_rng = streamFor(spec.pc, step.instance, 0x5b1ce);
        if (spike_rng.chance(spec.spikeProbability) &&
            spike_rng.uniformInt(tcs.size()) == tid) {
            busy *= spec.spikeFactor;
        }
    }
    return static_cast<Tick>(std::max(busy, 1.0));
}

void
SyntheticProgram::start()
{
    for (std::size_t t = 0; t < tcs.size(); ++t)
        runStep(static_cast<ThreadId>(t), 0);
}

void
SyntheticProgram::runStep(ThreadId tid, std::size_t step_idx)
{
    stepIdx[tid] = step_idx;
    if (step_idx >= sequence.size()) {
        threadFinished(tid);
        return;
    }
    const Step& step = sequence[step_idx];
    const PhaseSpec& spec = *step.spec;
    const Tick busy = drawBusy(tid, step);
    const unsigned accesses = spec.memAccesses;
    const Tick chunk = busy / (accesses + 1);

    Random rng = streamFor(spec.pc, step.instance, 0xacce55 + tid);
    runPhaseChunks(tid, step_idx, chunk == 0 ? 1 : chunk, accesses,
                   rng);
}

void
SyntheticProgram::runPhaseChunks(ThreadId tid, std::size_t step_idx,
                                 Tick chunk, unsigned accesses_left,
                                 Random rng)
{
    cpu::ThreadContext& tc = *tcs[tid];
    tc.compute(chunk, [this, tid, step_idx, chunk, accesses_left,
                       rng]() mutable {
        if (accesses_left == 0) {
            const Step& step = sequence[step_idx];
            thrifty::Barrier& b = provider.barrierFor(step.spec->pc);
            b.arrive(*tcs[tid], [this, tid, step_idx]() {
                runStep(tid, step_idx + 1);
            });
            return;
        }
        issueAccess(tid, *sequence[step_idx].spec, rng,
                    [this, tid, step_idx, chunk, accesses_left,
                     rng]() mutable {
                        runPhaseChunks(tid, step_idx, chunk,
                                       accesses_left - 1, rng);
                    });
    });
}

void
SyntheticProgram::issueAccess(ThreadId tid, const PhaseSpec& spec,
                              Random& rng, std::function<void()> cont)
{
    cpu::ThreadContext& tc = *tcs[tid];
    const bool shared = rng.chance(spec.sharedFraction);
    const bool write = rng.chance(spec.writeFraction);
    Addr base;
    std::size_t span;
    if (shared) {
        base = sharedBase;
        span = app.sharedBytes;
    } else {
        base = privateBase[tid];
        span = app.privateBytes;
    }
    const Addr a = base + (rng.uniformInt(span / 8) * 8);

    if (write) {
        tc.store(a, rng.next(),
                 [cont = std::move(cont)]() { cont(); });
    } else {
        tc.load(a, [cont = std::move(cont)](std::uint64_t) { cont(); });
    }
}

void
SyntheticProgram::threadFinished(ThreadId tid)
{
    // Per-thread bookkeeping only: threads of a partitioned machine
    // finish on different host threads, so there is no shared counter
    // to bump and no root clock to consult — the thread's own tick is
    // its finish time.
    tcs[tid]->markDone();
    finishTick_[tid] = tcs[tid]->curTick();
}

bool
SyntheticProgram::finished() const
{
    for (const cpu::ThreadContext* tc : tcs)
        if (!tc->isDone())
            return false;
    return true;
}

Tick
SyntheticProgram::finishTick() const
{
    Tick last = 0;
    for (Tick t : finishTick_)
        last = std::max(last, t);
    return last;
}

} // namespace workloads
} // namespace tb
