/**
 * @file
 * Synthetic SPLASH-2-like application profiles.
 *
 * We cannot run the SPLASH-2 binaries themselves (that would require a
 * full ISA-level execution-driven simulator and the original inputs);
 * what the thrifty barrier actually responds to is the *barrier
 * structure* of an application: how many static barriers it has, how
 * often they execute, how long the intervals between releases are, how
 * much those intervals vary across instances, and how skewed the
 * per-thread arrival times are (the imbalance). Each profile encodes
 * those properties for one studied application, calibrated so the
 * Baseline barrier imbalance lands near Table 2 of the paper and the
 * qualitative per-app behaviours the evaluation discusses are present:
 *
 *  - Volrend: few big, badly imbalanced intervals (ideal for deep
 *    sleep states);
 *  - Ocean: many frequent barriers whose interval times swing hard
 *    across instances (defeats last-value prediction; the cutoff
 *    rescue case);
 *  - FFT / Cholesky: a handful of *non-repeating* barriers, so the
 *    PC-indexed predictor never warms up and Thrifty == Baseline.
 */

#ifndef TB_WORKLOADS_APP_PROFILE_HH_
#define TB_WORKLOADS_APP_PROFILE_HH_

#include <string>
#include <vector>

#include "sim/types.hh"
#include "thrifty/bit_predictor.hh"

namespace tb {
namespace workloads {

/** One static barrier and the computation phase preceding it. */
struct PhaseSpec
{
    thrifty::BarrierPc pc = 0;
    /** Mean per-thread compute time of the phase. */
    Tick meanCompute = 500 * kMicrosecond;
    /**
     * Coefficient of variation of *persistent* per-thread compute-time
     * skew (lognormal, drawn once per thread per barrier). This is
     * the imbalance knob: the stall of an early thread is (max over
     * threads) - (its own draw). Persistence mirrors SPMD reality —
     * the same thread owns the same data partition every iteration —
     * and is what makes the barrier interval time predictable
     * (Section 3.2 of the paper).
     */
    double imbalanceCv = 0.10;
    /**
     * Per-(thread, instance) wobble on top of the persistent skew
     * ("computation and data access costs shift among threads across
     * instances", Section 3.2). Expressed as lognormal CV.
     */
    double threadWobbleCv = 0.01;
    /**
     * Instance-to-instance multiplicative jitter (lognormal cv),
     * common to all threads of one instance: shifts the interval
     * without changing the imbalance.
     */
    double instanceJitterCv = 0.02;
    /** Probability an instance's interval swings (Ocean pattern). */
    double swingProbability = 0.0;
    /** Multiplier applied on a swing (alternating shrink/grow). */
    double swingFactor = 1.0;
    /**
     * Probability that one (random) thread of an instance gets
     * preempted — its compute time is multiplied by spikeFactor.
     * Models the context-switch / I/O interference of Section 3.4.2
     * that the underprediction filter exists to absorb.
     */
    double spikeProbability = 0.0;
    /** Compute-time multiplier applied to the preempted thread. */
    double spikeFactor = 40.0;
    /** Memory accesses issued per thread during the phase. */
    unsigned memAccesses = 24;
    /** Fraction of accesses that target the shared region. */
    double sharedFraction = 0.3;
    /** Fraction of accesses that are stores. */
    double writeFraction = 0.3;
};

/** A complete synthetic application. */
struct AppProfile
{
    std::string name;
    /** Table 2 barrier imbalance (fraction), for reference/reports. */
    double paperImbalance = 0.0;
    /** Barriers executed once, in order, before the main loop
     *  (FFT/Cholesky style: unique PCs, no repetition). */
    std::vector<PhaseSpec> prologue;
    /** Barriers executed every iteration of the main loop. */
    std::vector<PhaseSpec> loop;
    /** Main-loop iterations. */
    unsigned iterations = 16;
    /** Bytes of shared data per application. */
    std::size_t sharedBytes = 512 * 1024;
    /** Bytes of private data per thread. */
    std::size_t privateBytes = 32 * 1024;

    /** Total dynamic barrier instances this profile produces. */
    std::size_t
    totalInstances() const
    {
        return prologue.size() + loop.size() * iterations;
    }
};

/** The ten studied applications in Table 2 order. */
std::vector<AppProfile> paperApps();

/** Look up one profile by (case-sensitive) name. */
AppProfile appByName(const std::string& name);

/** The five "target" applications (imbalance >= 10%). */
std::vector<std::string> targetAppNames();

} // namespace workloads
} // namespace tb

#endif // TB_WORKLOADS_APP_PROFILE_HH_
