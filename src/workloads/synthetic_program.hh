/**
 * @file
 * Driver that expands an AppProfile into per-thread activity.
 *
 * Every thread repeatedly: computes for a drawn busy time (split into
 * chunks interleaved with coherent memory accesses against shared and
 * private regions), then arrives at the phase's barrier. All draws are
 * deterministic functions of (seed, barrier PC, instance, thread), so
 * two configurations run *identical* workloads — the paper's
 * apples-to-apples comparison across Baseline/Thrifty/... depends on
 * this.
 */

#ifndef TB_WORKLOADS_SYNTHETIC_PROGRAM_HH_
#define TB_WORKLOADS_SYNTHETIC_PROGRAM_HH_

#include <cstdint>
#include <vector>

#include "cpu/thread_context.hh"
#include "mem/memory_system.hh"
#include "sim/event_queue.hh"
#include "sim/random.hh"
#include "thrifty/barrier.hh"
#include "workloads/app_profile.hh"

namespace tb {
namespace workloads {

/** Supplies the Barrier object backing each static barrier PC. */
class BarrierProvider
{
  public:
    virtual ~BarrierProvider() = default;

    /** The barrier for call site @p pc (created on first use). */
    virtual thrifty::Barrier& barrierFor(thrifty::BarrierPc pc) = 0;
};

/** One running instance of a synthetic application. */
class SyntheticProgram
{
  public:
    SyntheticProgram(EventQueue& queue, mem::MemorySystem& memory,
                     std::vector<cpu::ThreadContext*> threads,
                     const AppProfile& profile,
                     BarrierProvider& barriers, std::uint64_t seed);

    /** Kick off every thread at the current tick. */
    void start();

    /** True once every thread has finished its program. */
    bool finished() const;

    /** Tick at which the last thread finished (finished() first). */
    Tick finishTick() const;

    /** The profile this program was built from. */
    const AppProfile& profile() const { return app; }

    /** Program step thread @p tid is currently executing (or, once
     *  finished, one past the last). For tests and diagnostics. */
    std::size_t currentStep(ThreadId tid) const { return stepIdx.at(tid); }

    /** Total steps (barrier arrivals) in each thread's program. */
    std::size_t totalSteps() const { return sequence.size(); }

  private:
    struct Step
    {
        const PhaseSpec* spec;
        std::uint64_t instance; ///< dynamic instance index of spec->pc
    };

    /** Deterministic sub-stream for a (context-dependent) key. */
    Random streamFor(std::uint64_t a, std::uint64_t b,
                     std::uint64_t c) const;

    /** Interval factor common to all threads of one instance. */
    double instanceFactor(const PhaseSpec& spec,
                          std::uint64_t instance) const;

    /** Busy time drawn for (thread, instance) of a phase. */
    Tick drawBusy(ThreadId tid, const Step& step) const;

    void runStep(ThreadId tid, std::size_t step_idx);
    void runPhaseChunks(ThreadId tid, std::size_t step_idx, Tick chunk,
                        unsigned accesses_left, Random rng);
    void issueAccess(ThreadId tid, const PhaseSpec& spec, Random& rng,
                     std::function<void()> cont);
    void threadFinished(ThreadId tid);

    EventQueue& eq;
    mem::MemorySystem& memory;
    std::vector<cpu::ThreadContext*> tcs;
    AppProfile app;
    BarrierProvider& provider;
    std::uint64_t seed;

    std::vector<Step> sequence; ///< prologue + loop x iterations
    Addr sharedBase = 0;
    std::vector<Addr> privateBase;
    /** Per-thread finish ticks (thread-local clocks; no shared state). */
    std::vector<Tick> finishTick_;
    std::vector<std::size_t> stepIdx;
};

} // namespace workloads
} // namespace tb

#endif // TB_WORKLOADS_SYNTHETIC_PROGRAM_HH_
