#include "workloads/app_profile.hh"

#include "sim/logging.hh"

namespace tb {
namespace workloads {

namespace {

/**
 * Imbalance -> compute-time CV calibration. For n threads drawing
 * lognormal compute times with coefficient of variation c, the
 * expected max across threads is roughly mean * (1 + z*c) with z the
 * expected maximum of n standard normals (z ~ 2.4 for n = 64). The
 * barrier imbalance I = E[stall]/E[interval] then satisfies
 * I ~ z*c / (1 + z*c), i.e. c = I / (z * (1 - I)). Check-in
 * serialization and release fan-out add a little more stall on top;
 * the Table 2 regression test pins the measured result.
 */
double
cvForImbalance(double imbalance)
{
    constexpr double z = 2.4;
    const double c = imbalance / (z * (1.0 - imbalance));
    // The lognormal upper tail grows faster than the normal-max
    // approximation at large CV, and check-in serialization adds
    // stall on top; damp the first-order estimate (fit empirically
    // against the measured Table 2 regression).
    return c * (1.0 - 0.45 * imbalance);
}

PhaseSpec
phase(thrifty::BarrierPc pc, Tick mean_compute, double imbalance)
{
    PhaseSpec p;
    p.pc = pc;
    p.meanCompute = mean_compute;
    p.imbalanceCv = cvForImbalance(imbalance);
    // Instance wobble scales with the skew: heavily imbalanced codes
    // also shift more work between threads across iterations.
    p.threadWobbleCv = 0.08 * p.imbalanceCv + 0.002;
    return p;
}

} // namespace

std::vector<AppProfile>
paperApps()
{
    std::vector<AppProfile> apps;

    {
        // Volrend ("head"): the showcase — huge, badly imbalanced
        // intervals; deep sleep states pay off in full.
        AppProfile a;
        a.name = "Volrend";
        a.paperImbalance = 0.482;
        // Inputs are nudged off the Table 2 targets where the single
        // persistent-skew draw lands high or low (measured, seed 1).
        const double imb = 0.448;
        a.loop = {
            phase(0x100, 1200 * kMicrosecond, imb),
            phase(0x101, 900 * kMicrosecond, imb),
            phase(0x102, 1500 * kMicrosecond, imb),
        };
        a.iterations = 28;
        apps.push_back(a);
    }
    {
        // Radix (1M integers): regular sort phases, solid imbalance.
        AppProfile a;
        a.name = "Radix";
        a.paperImbalance = 0.195;
        const double imb = 0.195;
        a.loop = {
            phase(0x200, 700 * kMicrosecond, imb),
            phase(0x201, 550 * kMicrosecond, imb),
            phase(0x202, 800 * kMicrosecond, imb),
            phase(0x203, 600 * kMicrosecond, imb),
        };
        a.iterations = 36;
        apps.push_back(a);
    }
    {
        // FMM (16k particles): the Figure 3 subject — three main-loop
        // barriers with clearly distinct interval times.
        AppProfile a;
        a.name = "FMM";
        a.paperImbalance = 0.1656;
        const double imb = 0.180;
        a.loop = {
            phase(0x300, 1400 * kMicrosecond, imb),
            phase(0x301, 850 * kMicrosecond, imb),
            phase(0x302, 420 * kMicrosecond, imb),
        };
        a.iterations = 36;
        apps.push_back(a);
    }
    {
        // Barnes (16k particles).
        AppProfile a;
        a.name = "Barnes";
        a.paperImbalance = 0.1593;
        const double imb = 0.1593;
        a.loop = {
            phase(0x400, 900 * kMicrosecond, imb),
            phase(0x401, 700 * kMicrosecond, imb),
            phase(0x402, 1000 * kMicrosecond, imb),
            phase(0x403, 600 * kMicrosecond, imb),
        };
        a.iterations = 28;
        apps.push_back(a);
    }
    {
        // Water-Nsq (512 molecules).
        AppProfile a;
        a.name = "Water-Nsq";
        a.paperImbalance = 0.129;
        const double imb = 0.106;
        a.loop = {
            phase(0x500, 800 * kMicrosecond, imb),
            phase(0x501, 650 * kMicrosecond, imb),
            phase(0x502, 900 * kMicrosecond, imb),
        };
        a.iterations = 28;
        apps.push_back(a);
    }
    {
        // Water-Sp (512 molecules): just below the 10% target cut.
        AppProfile a;
        a.name = "Water-Sp";
        a.paperImbalance = 0.0979;
        const double imb = 0.0979;
        a.loop = {
            phase(0x600, 700 * kMicrosecond, imb),
            phase(0x601, 550 * kMicrosecond, imb),
            phase(0x602, 800 * kMicrosecond, imb),
        };
        a.iterations = 28;
        apps.push_back(a);
    }
    {
        // Ocean (514x514): many short, frequently-invoked barriers
        // whose interval times swing hard across instances — the
        // last-value predictor's nemesis and the cutoff's rescue case.
        AppProfile a;
        a.name = "Ocean";
        a.paperImbalance = 0.076;
        // Short, frequent barriers: check-in serialization already
        // contributes ~2pp of stall, so the skew knob targets less.
        const double imb = 0.055;
        auto mk = [&](thrifty::BarrierPc pc, Tick mean, bool swings) {
            PhaseSpec p = phase(pc, mean, imb);
            if (swings) {
                p.swingProbability = 0.45;
                p.swingFactor = 6.0;
            }
            return p;
        };
        a.loop = {
            mk(0x700, 140 * kMicrosecond, true),
            mk(0x701, 110 * kMicrosecond, false),
            mk(0x702, 150 * kMicrosecond, true),
            mk(0x703, 120 * kMicrosecond, false),
            mk(0x704, 100 * kMicrosecond, true),
            mk(0x705, 130 * kMicrosecond, false),
        };
        a.iterations = 36;
        apps.push_back(a);
    }
    {
        // FFT (64k points): a handful of non-repeating barriers; the
        // PC-indexed predictor never warms up, so Thrifty == Baseline.
        AppProfile a;
        a.name = "FFT";
        a.paperImbalance = 0.0382;
        const double imb = 0.0382;
        for (unsigned i = 0; i < 8; ++i) {
            a.prologue.push_back(
                phase(0x800 + i, 600 * kMicrosecond, imb));
        }
        a.iterations = 0;
        apps.push_back(a);
    }
    {
        // Cholesky (tk15): same story as FFT, even better balanced.
        AppProfile a;
        a.name = "Cholesky";
        a.paperImbalance = 0.0164;
        const double imb = 0.0164;
        for (unsigned i = 0; i < 10; ++i) {
            a.prologue.push_back(
                phase(0x900 + i, 500 * kMicrosecond, imb));
        }
        a.iterations = 0;
        apps.push_back(a);
    }
    {
        // Radiosity (room): repeating but nearly perfectly balanced.
        AppProfile a;
        a.name = "Radiosity";
        a.paperImbalance = 0.0104;
        const double imb = 0.0104;
        a.loop = {
            phase(0xa00, 450 * kMicrosecond, imb),
            phase(0xa01, 380 * kMicrosecond, imb),
        };
        a.iterations = 30;
        apps.push_back(a);
    }

    return apps;
}

AppProfile
appByName(const std::string& name)
{
    for (auto& a : paperApps()) {
        if (a.name == name)
            return a;
    }
    fatal("unknown application profile '", name, "'");
}

std::vector<std::string>
targetAppNames()
{
    return {"Volrend", "Radix", "FMM", "Barnes", "Water-Nsq"};
}

} // namespace workloads
} // namespace tb
