/**
 * @file
 * Combining-tree thrifty barrier.
 *
 * The paper's barrier (like SPLASH-2's) is *central*: one count line
 * and one flag line. At 64 threads the check-in fetch-ops serialize
 * at a single home and the release invalidates 63 sharers of one
 * line — measurable stall that even perfectly balanced applications
 * pay (the Table 2 "floor" our EXPERIMENTS.md documents). The classic
 * remedy is a combining tree (Yew/Tzeng/Lawrie-style): threads check
 * in at small groups; each group's last arriver ascends; the root
 * completer releases downward through per-group flags.
 *
 * This implementation makes the tree *thrifty*: waiting threads — at
 * every level, not just the leaves — run the full Section 3
 * machinery: PC-indexed BIT prediction (one entry for the whole
 * barrier; the interval is a property of the program phase, not of
 * the tree), conditional multi-state sleep with the flag monitor
 * armed on their *own group's* flag line, hybrid wake-up, residual
 * spin, overprediction cutoff. The published BIT propagates down the
 * release wave: each group's releaser copies it from the parent
 * group's BIT line into its own before flipping the group flag,
 * giving every thread its BRTS update exactly as in Section 3.2.1.
 *
 * Group lines are spread round-robin across the machine (they sit on
 * distinct shared pages), so both the check-in fetch-ops and the
 * release invalidations fan out across homes instead of hammering
 * one.
 */

#ifndef TB_THRIFTY_TREE_BARRIER_HH_
#define TB_THRIFTY_TREE_BARRIER_HH_

#include <functional>
#include <string>
#include <vector>

#include "cpu/thread_context.hh"
#include "mem/memory_system.hh"
#include "sim/sim_object.hh"
#include "thrifty/barrier.hh"
#include "thrifty/thrifty_runtime.hh"

namespace tb {
namespace thrifty {

/** One static combining-tree barrier. */
class TreeBarrier : public Barrier, public SimObject
{
  public:
    /**
     * @param queue   Simulation event queue.
     * @param pc      Static identifier of this barrier call site.
     * @param runtime Shared thrifty runtime (oracle mode unsupported).
     * @param memory  Memory system to allocate group lines in.
     * @param radix   Group size (children per tree node), >= 2.
     */
    TreeBarrier(EventQueue& queue, BarrierPc pc,
                ThriftyRuntime& runtime, mem::MemorySystem& memory,
                unsigned radix, std::string name);

    void arrive(cpu::ThreadContext& tc,
                std::function<void()> cont) override;

    BarrierPc pc() const override { return barrierPc; }

    /** Dynamic instances completed so far. */
    std::uint64_t instances() const { return instanceIdx; }

    /** Tree height (levels of groups). */
    unsigned levels() const
    {
        return static_cast<unsigned>(groups.size());
    }

  private:
    struct Group
    {
        Addr count = 0;
        Addr flag = 0;
        Addr bit = 0;
        unsigned size = 0; ///< members checking in at this group
        std::vector<std::uint8_t> sense; ///< per member slot
    };

    Group& groupAt(unsigned level, unsigned index);

    /**
     * Check in at (level, index); slot is the member position.
     * @p released runs once this thread has been released from this
     * level (including releasing its own group on the way down, if it
     * was the ascender), carrying the published BIT.
     */
    void ascend(cpu::ThreadContext& tc, ThreadId tid, unsigned level,
                unsigned index, unsigned slot,
                std::function<void(Tick)> released);

    /**
     * Wait (thrifty: predict, maybe sleep, residual spin) on
     * @p group's flag for value @p want, then continue.
     */
    void thriftyWait(cpu::ThreadContext& tc, ThreadId tid,
                     Group& group, std::uint64_t want,
                     std::function<void()> cont);

    /**
     * Release wave: write @p bit into the group's BIT line, flip its
     * flag, then continue (used by each level's releaser on the way
     * down).
     */
    void releaseGroup(cpu::ThreadContext& tc, Group& group,
                      std::uint64_t want, Tick bit,
                      std::function<void()> cont);

    /** Final per-thread bookkeeping (BRTS, cutoff, stats, trace). */
    void finishThread(cpu::ThreadContext& tc, ThreadId tid, Tick bit,
                      std::function<void()> cont);

    BarrierPc barrierPc;
    ThriftyRuntime& runtime;
    mem::Backend& backend;
    unsigned radix;
    unsigned total;

    /** groups[level][index]; level 0 holds the threads. */
    std::vector<std::vector<Group>> groups;

    std::vector<Tick> arrivalTick;
    std::vector<Tick> computeTime;
    std::vector<Tick> wakeTick;
    std::vector<std::uint64_t> arrivalInstance;
    std::uint64_t instanceIdx = 0;
};

} // namespace thrifty
} // namespace tb

#endif // TB_THRIFTY_TREE_BARRIER_HH_
