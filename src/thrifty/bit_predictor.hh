/**
 * @file
 * Barrier-interval-time (BIT) predictors (Section 3.2 of the paper).
 *
 * The thrifty barrier estimates a thread's stall time indirectly: it
 * predicts the thread-independent *barrier interval time* (release of
 * instance b-1 to release of instance b) and subtracts the thread's
 * own compute time. The paper finds PC-indexed *last-value* prediction
 * accurate for most applications; alternatives are provided for the
 * ablation benches.
 *
 * Each predictor entry carries one *disable bit per thread* — the
 * overprediction-threshold cutoff of Section 3.3.3 sets it to stop a
 * thread from sleeping at a barrier that keeps burning it.
 */

#ifndef TB_THRIFTY_BIT_PREDICTOR_HH_
#define TB_THRIFTY_BIT_PREDICTOR_HH_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>

#include "sim/types.hh"

namespace tb {
namespace thrifty {

/** Static-barrier identifier — the PC of the barrier call site. */
using BarrierPc = std::uint64_t;

/** Interface of a PC-indexed BIT predictor. */
class BitPredictor
{
  public:
    virtual ~BitPredictor() = default;

    /**
     * Pre-insert barrier @p pc's table entry (idempotent; keeps any
     * recorded state). Called at barrier construction so that runtime
     * predictor access never mutates the table *structure* — on a
     * partitioned machine different barriers' entries are touched from
     * different host threads, which is only safe against a frozen
     * table.
     */
    virtual void prepare(BarrierPc pc) = 0;

    /**
     * Predict the interval time of the upcoming instance of barrier
     * @p pc for thread @p tid. Empty if there is no history yet or
     * prediction is disabled for this (pc, tid) — the thread then
     * spins conventionally (this is also how the first instance of
     * every barrier warms up).
     */
    virtual std::optional<Tick> predict(BarrierPc pc,
                                        ThreadId tid) const = 0;

    /** Record the measured interval time of the completed instance. */
    virtual void update(BarrierPc pc, Tick actual_bit) = 0;

    /** Stored (pre-update) value for @p pc, if any; used by the
     *  underprediction filter. */
    virtual std::optional<Tick> stored(BarrierPc pc) const = 0;

    /** Set the per-thread disable bit (overprediction cutoff). */
    virtual void disable(BarrierPc pc, ThreadId tid) = 0;

    /** Read the per-thread disable bit. */
    virtual bool disabled(BarrierPc pc, ThreadId tid) const = 0;

    /** Predictor family name (for reports). */
    virtual std::string name() const = 0;
};

/** The paper's predictor: last value, indexed by barrier PC. */
class LastValuePredictor : public BitPredictor
{
  public:
    void prepare(BarrierPc pc) override;
    std::optional<Tick> predict(BarrierPc pc,
                                ThreadId tid) const override;
    void update(BarrierPc pc, Tick actual_bit) override;
    std::optional<Tick> stored(BarrierPc pc) const override;
    void disable(BarrierPc pc, ThreadId tid) override;
    bool disabled(BarrierPc pc, ThreadId tid) const override;
    std::string name() const override { return "last-value"; }

  private:
    struct Entry
    {
        Tick lastBit = 0;
        bool hasValue = false;
        std::uint64_t disabledThreads = 0;
    };
    std::unordered_map<BarrierPc, Entry> table;
};

/**
 * Exponentially-weighted moving average predictor (ablation A2):
 * smoother than last-value, slower to track swings.
 */
class MovingAveragePredictor : public BitPredictor
{
  public:
    /** @param alpha weight of the newest sample, in (0, 1]. */
    explicit MovingAveragePredictor(double alpha = 0.5);

    void prepare(BarrierPc pc) override;
    std::optional<Tick> predict(BarrierPc pc,
                                ThreadId tid) const override;
    void update(BarrierPc pc, Tick actual_bit) override;
    std::optional<Tick> stored(BarrierPc pc) const override;
    void disable(BarrierPc pc, ThreadId tid) override;
    bool disabled(BarrierPc pc, ThreadId tid) const override;
    std::string name() const override { return "moving-average"; }

  private:
    struct Entry
    {
        double avg = 0.0;
        bool hasValue = false;
        std::uint64_t disabledThreads = 0;
    };
    double alpha;
    std::unordered_map<BarrierPc, Entry> table;
};

/** Construct a predictor by family name ("last-value" etc.). */
std::unique_ptr<BitPredictor> makePredictor(const std::string& kind);

} // namespace thrifty
} // namespace tb

#endif // TB_THRIFTY_BIT_PREDICTOR_HH_
