#include "thrifty/thrifty_config.hh"

namespace tb {
namespace thrifty {

const char*
wakeupPolicyName(WakeupPolicy p)
{
    switch (p) {
      case WakeupPolicy::External: return "external";
      case WakeupPolicy::Internal: return "internal";
      case WakeupPolicy::Hybrid:   return "hybrid";
    }
    return "?";
}

ThriftyConfig
ThriftyConfig::thrifty()
{
    return ThriftyConfig{};
}

ThriftyConfig
ThriftyConfig::thriftyHalt()
{
    ThriftyConfig c;
    c.states = power::SleepStateTable::haltOnly();
    return c;
}

ThriftyConfig
ThriftyConfig::oracleHalt()
{
    ThriftyConfig c;
    c.states = power::SleepStateTable::haltOnly();
    c.oracle = true;
    return c;
}

ThriftyConfig
ThriftyConfig::idealConfig()
{
    ThriftyConfig c;
    c.oracle = true;
    c.ideal = true;
    return c;
}

} // namespace thrifty
} // namespace tb
