#include "thrifty/thrifty_barrier.hh"

#include <algorithm>
#include <utility>

#include "obs/trace.hh"
#include "sim/logging.hh"
#include "thrifty/spin_wait.hh"

namespace tb {
namespace thrifty {

ThriftyBarrier::ThriftyBarrier(EventQueue& queue, BarrierPc pc,
                               ThriftyRuntime& rt,
                               mem::MemorySystem& memory,
                               std::string name)
    : SimObject(queue, std::move(name)),
      barrierPc(pc),
      runtime(rt),
      backend(memory.backend()),
      fab(memory.fabric()),
      total(rt.numThreads()),
      localSense(total, 0),
      arrivalTick(total, 0),
      computeTime(total, 0),
      wakeTick(total, kTickNever),
      snap(total),
      parkedTc(total, nullptr),
      parkedCont(total),
      releaseReady(total, 0),
      releaseBit(total, 0),
      watchdog(total),
      episodeFaulty(total, 0),
      pendingEpisode(total),
      episodeOpen(total, 0)
{
    // Count, flag and published-BIT live on three distinct lines of a
    // shared page: check-in traffic and BIT reads must not disturb
    // the spinners'/monitors' flag copies.
    const Addr base = memory.addressMap().allocShared(mem::kPageBytes);
    countAddr = base;
    flagAddr = base + mem::kLineBytes;
    bitAddr = base + 2 * mem::kLineBytes;
    homeNode = memory.addressMap().home(countAddr);
    // Pre-insert this PC's predictor entry: runtime accesses (all at
    // homeNode) then never mutate the table structure, so barriers
    // whose homes land in different partitions touch disjoint entries.
    runtime.predictor().prepare(pc);
}

ThriftyBarrier::~ThriftyBarrier()
{
    for (auto& h : watchdog)
        h.cancel();
}

void
ThriftyBarrier::arrive(cpu::ThreadContext& tc, std::function<void()> cont)
{
    const ThreadId tid = tc.tid();
    if (tid >= total)
        panic(name(), ": thread ", tid, " outside barrier population");

    SyncStats& st = runtime.stats(tid);
    ++st.arrivals;
    const Tick now = tc.curTick();
    const Tick brts_tid = runtime.brts(tid);
    arrivalTick[tid] = now;
    computeTime[tid] = now - brts_tid;
    wakeTick[tid] = kTickNever;

    const std::uint64_t want = localSense[tid] ^ 1u;
    localSense[tid] = static_cast<std::uint8_t>(want);
    episodeFaulty[tid] = 0;
    episodeOpen[tid] = 0;

    obs::TraceSink* trace = runtime.traceSink();
    if (TB_TRACED(trace, obs::TraceCategory::Thrifty)) {
        // instanceIdx is home-confined state; reading it here is only
        // safe because structured tracing forces the serial plan
        // (harness/experiment.cc).
        trace->instant(obs::TraceCategory::Thrifty, "arrive",
                       now, tid,
                       {{"pc", barrierPc}, {"instance", instanceIdx}});
    }

    tc.atomic(
        countAddr,
        [this, &tc, tid, brts_tid](Tick home_now) {
            const std::uint64_t old = backend.read(countAddr);
            backend.write(countAddr, old + 1 == total ? 0 : old + 1);
            // First check-in arms this dynamic instance, at the
            // count's serialization point: the arm is then strictly
            // ordered before the release even when the completion
            // reply is delayed in the fabric (fault injection).
            if (old == 0) {
                if (auto* o = tc.controller().checkObserver())
                    o->onBarrierArmed(mem::lineAddr(flagAddr),
                                      instanceIdx);
            }
            homeCheckIn(tid, old, brts_tid, home_now);
            return old;
        },
        [this, &tc, tid, want,
         cont = std::move(cont)](std::uint64_t old) mutable {
            if (old + 1 == total)
                lastArrival(tc, tid, want, std::move(cont));
            else
                earlyArrival(tc, tid, want, std::move(cont));
        });
}

void
ThriftyBarrier::homeCheckIn(ThreadId tid, std::uint64_t old,
                            Tick brts_tid, Tick home_now)
{
    const ThriftyConfig& cfg = runtime.config();
    Snap& sn = snap[tid];
    sn = Snap{};
    sn.instance = instanceIdx;

    if (old + 1 != total) {
        // Early check-in: snapshot the prediction here, at the count's
        // serialization point — the only place the home-confined
        // predictor table may be read.
        if (cfg.oracle) {
            arrivedEarly.push_back(tid);
            return;
        }
        if (auto bit = runtime.predictor().predict(barrierPc, tid)) {
            sn.hasPrediction = 1;
            sn.predictedBit = *bit;
        }
        return;
    }

    // Last check-in: the serialization point of the count *is* the
    // release point, so the actual interval time is measured here
    // against the closer's own release timestamp (Section 3.2.1).
    const Tick actual_bit = home_now - brts_tid;
    sn.last = 1;
    sn.actualBit = actual_bit;

    // Feed the predictor, unless the sample is inordinately large
    // (context switch / I/O filter, Section 3.4.2).
    bool skip_update = false;
    if (cfg.underpredictionFilter > 0.0) {
        if (auto prev = runtime.predictor().stored(barrierPc)) {
            if (static_cast<double>(actual_bit) >
                cfg.underpredictionFilter * static_cast<double>(*prev)) {
                skip_update = true;
                ++runtime.stats(tid).filteredUpdates;
            }
        }
    }
    if (!skip_update)
        runtime.predictor().update(barrierPc, actual_bit);

    ++instanceIdx;
    ++runtime.stats(tid).instances;

    if (cfg.oracle && !arrivedEarly.empty()) {
        // The release notification to each parked thread is real
        // cross-node bookkeeping: it rides the NoC from the count's
        // home and pays the latency of a control message.
        std::vector<ThreadId> batch = std::move(arrivedEarly);
        arrivedEarly.clear();
        for (ThreadId etid : batch) {
            fab.sendControl(homeNode, static_cast<NodeId>(etid),
                            mem::kCtrlBytes,
                            [this, etid, actual_bit]() {
                                oracleRelease(etid, actual_bit);
                            });
        }
    }
}

void
ThriftyBarrier::lastArrival(cpu::ThreadContext& tc, ThreadId tid,
                            std::uint64_t want,
                            std::function<void()> cont)
{
    // The BIT and the instance index were fixed at the home's
    // serialization point; the reply carried them back in this
    // thread's Snap slot.
    const Tick actual_bit = snap[tid].actualBit;
    const std::uint64_t instance = snap[tid].instance;

    // Publish the BIT, and only then flip the flag (the sequencing
    // models the write fence of the paper's footnote 1).
    tc.store(bitAddr, actual_bit, [this, &tc, tid, want, actual_bit,
                                   instance,
                                   cont = std::move(cont)]() mutable {
        tc.store(flagAddr, want,
                 [this, &tc, tid, actual_bit, instance,
                  cont = std::move(cont)]() {
                     if (auto* o = tc.controller().checkObserver())
                         o->onBarrierReleased(mem::lineAddr(flagAddr),
                                              instance);
                     obs::TraceSink* trace = runtime.traceSink();
                     if (TB_TRACED(trace,
                                   obs::TraceCategory::Thrifty)) {
                         trace->instant(
                             obs::TraceCategory::Thrifty, "release",
                             tc.curTick(), tid,
                             {{"pc", barrierPc},
                              {"instance", instance},
                              {"bit", actual_bit}});
                     }
                     runtime.advanceBrts(tid, actual_bit);
                     runtime.stats(tid).totalStallTicks +=
                         static_cast<double>(tc.curTick() -
                                             arrivalTick[tid]);
                     traceDeparture(tid, actual_bit);
                     cont();
                 });
    });
}

void
ThriftyBarrier::earlyArrival(cpu::ThreadContext& tc, ThreadId tid,
                             std::uint64_t want,
                             std::function<void()> cont)
{
    const ThriftyConfig& cfg = runtime.config();
    SyncStats& st = runtime.stats(tid);

    if (cfg.oracle) {
        park(tc, tid, std::move(cont));
        return;
    }

    if (cfg.hardening.enabled && runtime.quarantined(tid, barrierPc)) {
        // Bottom of the degradation ladder: this (thread, barrier)
        // pair burned through its faulty-episode allowance, so it
        // takes the conventional sense-reversal spin until the
        // exponential backoff re-enables prediction. (Hardening
        // forces the serial plan, so the shared quarantine map is
        // safe here.)
        ++st.spins;
        spinOnFlag(tc, flagAddr, want,
                   [this, &tc, tid, cont = std::move(cont)]() mutable {
                       depart(tc, tid, std::move(cont));
                   });
        return;
    }

    // The prediction was snapshotted at the home's serialization
    // point; estimated wake-up = BRTS + predicted BIT, stall =
    // wake-up - now (Section 3.2.1).
    const power::SleepState* state = nullptr;
    Tick predicted_wake = 0;
    if (snap[tid].hasPrediction) {
        predicted_wake = runtime.brts(tid) + snap[tid].predictedBit;
        if (predicted_wake > tc.curTick())
            state = cfg.states.select(predicted_wake - tc.curTick());
    }

    if (!state) {
        // No/insufficient prediction, cutoff in force, or stall too
        // short for any state: the sleep() call returns immediately
        // and the thread spins the traditional way.
        ++st.spins;
        spinOnFlag(tc, flagAddr, want, [this, &tc, tid,
                                        cont = std::move(cont)]() mutable {
            depart(tc, tid, std::move(cont));
        });
        return;
    }

    // Program the flag monitor. It reads the flag in (making this node
    // a sharer so the release's invalidation reaches it) and refuses
    // the sleep if the flag already flipped.
    tc.controller().armFlagMonitor(
        flagAddr, want,
        [this, &tc, tid, want, state, predicted_wake,
         cont = std::move(cont)](bool already_flipped) mutable {
            SyncStats& stats = runtime.stats(tid);
            if (already_flipped) {
                // The thread never slept, so no wake-up timestamp is
                // recorded (the cutoff only judges actual sleepers).
                depart(tc, tid, std::move(cont));
                return;
            }

            const ThriftyConfig& conf = runtime.config();
            if (conf.wakeup != WakeupPolicy::External) {
                // Fire early enough that the upward transition
                // completes right at the predicted release.
                const Tick lead = state->transitionLatency;
                const Tick target =
                    predicted_wake > tc.curTick() + lead
                        ? predicted_wake - lead
                        : tc.curTick();
                tc.controller().armWakeTimer(target - tc.curTick());
            }
            if (conf.wakeup == WakeupPolicy::Internal)
                tc.controller().disarmFlagMonitor();

            ++stats.sleeps;
            if (stats.episodesEnabled ||
                TB_TRACED(runtime.traceSink(),
                          obs::TraceCategory::Thrifty)) {
                BarrierEpisode& ep = pendingEpisode[tid];
                ep = BarrierEpisode{};
                ep.pc = barrierPc;
                ep.instance = snap[tid].instance;
                ep.tid = tid;
                ep.predictedBit = predicted_wake - runtime.brts(tid);
                ep.sleepTick = tc.curTick();
                ep.sleepState = state->name;
                episodeOpen[tid] = 1;
            }
            if (conf.hardening.enabled) {
                // Safety watchdog: no sleep episode outlives a bounded
                // multiple of its own prediction, even if both wake-up
                // mechanisms fail (lost invalidation + dead timer).
                const Tick stall = predicted_wake > tc.curTick()
                                       ? predicted_wake - tc.curTick()
                                       : 0;
                const Tick bound = std::max(
                    static_cast<Tick>(
                        conf.hardening.watchdogFactor *
                        static_cast<double>(stall)),
                    conf.hardening.watchdogMin);
                watchdog[tid] = tc.eventQueue().scheduleIn(
                    bound, [this, &tc, tid]() {
                        ++runtime.stats(tid).watchdogFires;
                        episodeFaulty[tid] = 1;
                        tc.controller().forceWake(
                            mem::WakeReason::Watchdog);
                    });
            }
            tc.cpu().enterSleep(
                *state,
                [this, &tc, tid, want,
                 cont = std::move(cont)](mem::WakeReason reason) mutable {
                    watchdog[tid].cancel();
                    wakeTick[tid] = tc.curTick();
                    if (episodeOpen[tid]) {
                        BarrierEpisode& ep = pendingEpisode[tid];
                        ep.wakeTick = tc.curTick();
                        ep.wakeReason = mem::wakeReasonName(reason);
                        ep.flushTicks = tc.cpu().episodeFlushTicks();
                        obs::TraceSink* trace = runtime.traceSink();
                        if (TB_TRACED(trace,
                                      obs::TraceCategory::Thrifty)) {
                            trace->complete(
                                obs::TraceCategory::Thrifty, "sleep",
                                ep.sleepTick,
                                tc.curTick() - ep.sleepTick, tid,
                                {{"state", ep.sleepState},
                                 {"predicted_bit", ep.predictedBit},
                                 {"wake", ep.wakeReason}});
                        }
                    }
                    // Residual spin: verify the flag actually flipped
                    // (guards early wake-ups and false wake-ups).
                    std::function<void()> finish =
                        [this, &tc, tid,
                         cont = std::move(cont)]() mutable {
                            SyncStats& stf = runtime.stats(tid);
                            stf.residualSpinTicks +=
                                static_cast<double>(tc.curTick() -
                                                    wakeTick[tid]);
                            ++stf.residualSpins;
                            if (episodeOpen[tid]) {
                                pendingEpisode[tid].residualTicks =
                                    tc.curTick() - wakeTick[tid];
                            }
                            const ThriftyConfig& c = runtime.config();
                            if (c.hardening.enabled)
                                runtime.noteSleepEpisode(
                                    tid, barrierPc,
                                    episodeFaulty[tid] != 0);
                            depart(tc, tid, std::move(cont));
                        };
                    const ThriftyConfig& c = runtime.config();
                    if (c.hardening.enabled) {
                        // Bounded residual spin: trust the quiet
                        // cache-hit loop only so long, then escalate
                        // to periodic coherent re-reads of the flag.
                        spinOnFlagBounded(
                            tc.eventQueue(), tc, flagAddr, want,
                            c.hardening.residualSpinBudget,
                            c.hardening.recheckInterval,
                            [this, tid]() {
                                ++runtime.stats(tid)
                                      .residualEscalations;
                                episodeFaulty[tid] = 1;
                            },
                            std::move(finish));
                    } else {
                        spinOnFlag(tc, flagAddr, want,
                                   std::move(finish));
                    }
                });
        });
}

void
ThriftyBarrier::depart(cpu::ThreadContext& tc, ThreadId tid,
                       std::function<void()> cont)
{
    // Load the published BIT and advance the local release timestamp;
    // then check how late the wake-up was (Section 3.3.3).
    tc.load(bitAddr, [this, &tc, tid, cont = std::move(cont)](
                         std::uint64_t bit_val) mutable {
        runtime.advanceBrts(tid, bit_val);
        const Tick release_ts = runtime.brts(tid);
        const ThriftyConfig& cfg = runtime.config();
        if (wakeTick[tid] != kTickNever &&
            cfg.overpredictionThreshold >= 0.0 &&
            wakeTick[tid] > release_ts) {
            const Tick penalty = wakeTick[tid] - release_ts;
            if (static_cast<double>(penalty) >
                cfg.overpredictionThreshold *
                    static_cast<double>(bit_val)) {
                ++runtime.stats(tid).cutoffs;
                // The cutoff flips home-confined predictor state, so
                // the disable rides to the PC's home as a control
                // message with real NoC cost; predictions snapshotted
                // before it lands still count as enabled.
                fab.sendControl(static_cast<NodeId>(tid), homeNode,
                                mem::kCtrlBytes, [this, tid]() {
                                    runtime.predictor().disable(
                                        barrierPc, tid);
                                });
            }
        }
        if (episodeOpen[tid]) {
            episodeOpen[tid] = 0;
            SyncStats& st = runtime.stats(tid);
            if (st.episodesEnabled) {
                BarrierEpisode ep = std::move(pendingEpisode[tid]);
                ep.actualBit = bit_val;
                ep.releaseTs = release_ts;
                st.episodes.push_back(std::move(ep));
            }
        }
        runtime.stats(tid).totalStallTicks +=
            static_cast<double>(tc.curTick() - arrivalTick[tid]);
        traceDeparture(tid, bit_val);
        cont();
    });
}

void
ThriftyBarrier::park(cpu::ThreadContext& tc, ThreadId tid,
                     std::function<void()> cont)
{
    if (releaseReady[tid]) {
        // The release notification overtook this thread's own check-in
        // reply (same home->node channel, but the reply pays extra
        // controller completion latency): depart immediately.
        releaseReady[tid] = 0;
        const Tick bit = releaseBit[tid];
        const Tick stall = tc.curTick() - arrivalTick[tid];
        accrueOracleDwell(tc.cpu(), stall, tid);
        runtime.advanceBrts(tid, bit);
        runtime.stats(tid).totalStallTicks +=
            static_cast<double>(stall);
        traceDeparture(tid, bit);
        tc.eventQueue().scheduleIn(0, std::move(cont));
        return;
    }
    tc.cpu().suspendAccounting();
    parkedTc[tid] = &tc;
    parkedCont[tid] = std::move(cont);
}

void
ThriftyBarrier::oracleRelease(ThreadId tid, Tick actual_bit)
{
    if (!parkedCont[tid]) {
        // The notification raced ahead of the thread's check-in
        // completion; leave it for park() to consume.
        releaseReady[tid] = 1;
        releaseBit[tid] = actual_bit;
        return;
    }
    cpu::ThreadContext& tc = *parkedTc[tid];
    std::function<void()> cont = std::move(parkedCont[tid]);
    parkedTc[tid] = nullptr;
    parkedCont[tid] = nullptr;
    const Tick stall = tc.curTick() - arrivalTick[tid];
    accrueOracleDwell(tc.cpu(), stall, tid);
    runtime.advanceBrts(tid, actual_bit);
    runtime.stats(tid).totalStallTicks += static_cast<double>(stall);
    traceDeparture(tid, actual_bit);
    tc.cpu().resumeAccounting();
    // Perfect wake-up: the thread resumes at the notification.
    tc.eventQueue().scheduleIn(0, std::move(cont));
}

void
ThriftyBarrier::accrueOracleDwell(cpu::Cpu& cpu, Tick stall,
                                  ThreadId tid)
{
    const power::PowerParams& pp = cpu.powerParams();
    const ThriftyConfig& cfg = runtime.config();
    SyncStats& st = runtime.stats(tid);

    // Perfect knowledge: pick the minimum-energy option between
    // spinning the whole stall and each sleep state that fits.
    double best_energy = pp.spinWatts() * ticksToSeconds(stall);
    const power::SleepState* best = nullptr;
    for (std::size_t i = 0; i < cfg.states.size(); ++i) {
        const power::SleepState& s = cfg.states.at(i);
        if (2 * s.transitionLatency > stall)
            continue;
        const double sleep_w = pp.sleepWatts(s.powerFraction);
        const double trans_w = 0.5 * (pp.activeWatts() + sleep_w);
        const double e =
            trans_w * ticksToSeconds(2 * s.transitionLatency) +
            sleep_w * ticksToSeconds(stall - 2 * s.transitionLatency);
        if (e < best_energy) {
            best_energy = e;
            best = &s;
        }
    }

    if (!best) {
        cpu.accrueManual(power::Bucket::Spin, stall, pp.spinWatts());
        ++st.spins;
        return;
    }
    const double sleep_w = pp.sleepWatts(best->powerFraction);
    const double trans_w = 0.5 * (pp.activeWatts() + sleep_w);
    cpu.accrueManual(power::Bucket::Transition,
                     2 * best->transitionLatency, trans_w);
    cpu.accrueManual(power::Bucket::Sleep,
                     stall - 2 * best->transitionLatency, sleep_w);
    ++st.sleeps;
}

void
ThriftyBarrier::traceDeparture(ThreadId tid, Tick bit)
{
    SyncStats& st = runtime.stats(tid);
    if (!st.traceEnabled)
        return;
    BarrierTraceEntry e;
    e.pc = barrierPc;
    e.instance = snap[tid].instance;
    e.tid = tid;
    e.bit = bit;
    e.compute = std::min(computeTime[tid], bit);
    e.stall = bit - e.compute;
    st.trace.push_back(e);
}

} // namespace thrifty
} // namespace tb
