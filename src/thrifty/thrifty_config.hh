/**
 * @file
 * Configuration of the thrifty barrier mechanism.
 *
 * The five evaluated configurations of Section 5.1 are expressible as
 * presets of this structure (plus ConventionalBarrier for Baseline):
 *
 *   Baseline      - ConventionalBarrier
 *   Thrifty-Halt  - states = {Halt}, hybrid wake-up
 *   Oracle-Halt   - states = {Halt}, oracle (perfect BIT prediction)
 *   Thrifty       - states = {Halt, Sleep2, Sleep3}, hybrid wake-up
 *   Ideal         - all states, oracle, no flush overhead
 */

#ifndef TB_THRIFTY_THRIFTY_CONFIG_HH_
#define TB_THRIFTY_THRIFTY_CONFIG_HH_

#include <string>

#include "power/sleep_states.hh"

namespace tb {
namespace thrifty {

/** How a dormant CPU is woken (Section 3.3). */
enum class WakeupPolicy : std::uint8_t
{
    External, ///< coherence invalidation of the flag line only
    Internal, ///< predicted-stall countdown timer only
    Hybrid,   ///< both armed; first to fire cancels the other
};

/** Human-readable policy name. */
const char* wakeupPolicyName(WakeupPolicy p);

/** Tunables of the thrifty barrier. */
struct ThriftyConfig
{
    /** Available low-power sleep states; empty means "always spin". */
    power::SleepStateTable states = power::SleepStateTable::paperDefault();

    /** Wake-up mechanism. */
    WakeupPolicy wakeup = WakeupPolicy::Hybrid;

    /**
     * Overprediction threshold (Section 3.3.3): if a thread's
     * wake-up lands later than this fraction of BIT past the release,
     * prediction is disabled for that (thread, barrier). Negative
     * disables the cutoff (the Ocean ablation). Paper default: 10%.
     */
    double overpredictionThreshold = 0.10;

    /**
     * Underprediction filter (Section 3.4.2): a measured BIT more
     * than this factor above the stored value (context switch, I/O)
     * does not update the predictor. <= 0 disables the filter.
     */
    double underpredictionFilter = 10.0;

    /** Predictor family: "last-value" (paper) or "moving-average". */
    std::string predictorKind = "last-value";

    /**
     * Oracle mode: BIT prediction is perfect and wake-up is exactly
     * on time (Oracle-Halt / Ideal configurations). Implemented by
     * parking early threads and accounting their dwell analytically.
     */
    bool oracle = false;

    /** Ideal mode: oracle + no flushing overhead for any sleep state. */
    bool ideal = false;

    // ---- presets matching Section 5.1 -------------------------------

    static ThriftyConfig thrifty();    ///< full mechanism (T)
    static ThriftyConfig thriftyHalt(); ///< Halt only (H)
    static ThriftyConfig oracleHalt(); ///< perfect-prediction Halt (O)
    static ThriftyConfig idealConfig(); ///< theoretical bound (I)
};

} // namespace thrifty
} // namespace tb

#endif // TB_THRIFTY_THRIFTY_CONFIG_HH_
