/**
 * @file
 * Configuration of the thrifty barrier mechanism.
 *
 * The five evaluated configurations of Section 5.1 are expressible as
 * presets of this structure (plus ConventionalBarrier for Baseline):
 *
 *   Baseline      - ConventionalBarrier
 *   Thrifty-Halt  - states = {Halt}, hybrid wake-up
 *   Oracle-Halt   - states = {Halt}, oracle (perfect BIT prediction)
 *   Thrifty       - states = {Halt, Sleep2, Sleep3}, hybrid wake-up
 *   Ideal         - all states, oracle, no flush overhead
 */

#ifndef TB_THRIFTY_THRIFTY_CONFIG_HH_
#define TB_THRIFTY_THRIFTY_CONFIG_HH_

#include <string>

#include "power/sleep_states.hh"
#include "sim/types.hh"

namespace tb {
namespace thrifty {

/** How a dormant CPU is woken (Section 3.3). */
enum class WakeupPolicy : std::uint8_t
{
    External, ///< coherence invalidation of the flag line only
    Internal, ///< predicted-stall countdown timer only
    Hybrid,   ///< both armed; first to fire cancels the other
};

/** Human-readable policy name. */
const char* wakeupPolicyName(WakeupPolicy p);

/**
 * Graceful-degradation guard rails for faulty machines (see
 * docs/ROBUSTNESS.md). Disabled by default so a healthy machine's
 * behavior — and the paper's reproduced numbers — are untouched; the
 * harness enables them automatically when fault injection is active.
 *
 * The degradation ladder per sleep episode:
 *   sleep (watchdog-bounded) -> bounded residual spin -> full spin
 *   with periodic protocol re-checks -> per-(thread, barrier)
 *   quarantine to the conventional sense-reversal path.
 */
struct HardeningConfig
{
    /** Master switch for all guard rails below. */
    bool enabled = false;

    /**
     * Safety watchdog bounding every sleep episode: fires at
     * max(watchdogFactor * predicted stall, watchdogMin) after sleep
     * entry and forces a wake-up if nothing else did.
     */
    double watchdogFactor = 8.0;
    Tick watchdogMin = 500 * kMicrosecond;

    /**
     * Budget for the post-wake residual spin. When it expires the
     * spin escalates: the flag is re-read through the coherence
     * protocol every recheckInterval instead of trusting a (possibly
     * lost) invalidation to end a cache-hit loop.
     */
    Tick residualSpinBudget = 100 * kMicrosecond;
    Tick recheckInterval = 25 * kMicrosecond;

    /**
     * After this many consecutive faulty sleep episodes, a
     * (thread, barrier) pair is quarantined to the conventional spin
     * path for quarantineBase * 2^k instances (k grows per
     * quarantine, capped by quarantineMaxExponent), then re-enabled.
     */
    unsigned quarantineThreshold = 3;
    unsigned quarantineBase = 4;
    unsigned quarantineMaxExponent = 6;
};

/** Tunables of the thrifty barrier. */
struct ThriftyConfig
{
    /** Available low-power sleep states; empty means "always spin". */
    power::SleepStateTable states = power::SleepStateTable::paperDefault();

    /** Wake-up mechanism. */
    WakeupPolicy wakeup = WakeupPolicy::Hybrid;

    /**
     * Overprediction threshold (Section 3.3.3): if a thread's
     * wake-up lands later than this fraction of BIT past the release,
     * prediction is disabled for that (thread, barrier). Negative
     * disables the cutoff (the Ocean ablation). Paper default: 10%.
     */
    double overpredictionThreshold = 0.10;

    /**
     * Underprediction filter (Section 3.4.2): a measured BIT more
     * than this factor above the stored value (context switch, I/O)
     * does not update the predictor. <= 0 disables the filter.
     */
    double underpredictionFilter = 10.0;

    /** Predictor family: "last-value" (paper) or "moving-average". */
    std::string predictorKind = "last-value";

    /**
     * Oracle mode: BIT prediction is perfect and wake-up is exactly
     * on time (Oracle-Halt / Ideal configurations). Implemented by
     * parking early threads and accounting their dwell analytically.
     */
    bool oracle = false;

    /** Ideal mode: oracle + no flushing overhead for any sleep state. */
    bool ideal = false;

    /** Graceful-degradation guard rails (off on healthy machines). */
    HardeningConfig hardening;

    // ---- presets matching Section 5.1 -------------------------------

    static ThriftyConfig thrifty();    ///< full mechanism (T)
    static ThriftyConfig thriftyHalt(); ///< Halt only (H)
    static ThriftyConfig oracleHalt(); ///< perfect-prediction Halt (O)
    static ThriftyConfig idealConfig(); ///< theoretical bound (I)
};

} // namespace thrifty
} // namespace tb

#endif // TB_THRIFTY_THRIFTY_CONFIG_HH_
