#include "thrifty/bit_predictor.hh"

#include "sim/logging.hh"

namespace tb {
namespace thrifty {

namespace {

std::uint64_t
threadBit(ThreadId tid)
{
    if (tid >= 64)
        fatal("predictor disable bits support up to 64 threads");
    return std::uint64_t{1} << tid;
}

} // namespace

// ----------------------------------------------------------------------
// LastValuePredictor
// ----------------------------------------------------------------------

void
LastValuePredictor::prepare(BarrierPc pc)
{
    table[pc]; // default entry: no value, nothing disabled
}

std::optional<Tick>
LastValuePredictor::predict(BarrierPc pc, ThreadId tid) const
{
    auto it = table.find(pc);
    if (it == table.end() || !it->second.hasValue)
        return std::nullopt;
    if (it->second.disabledThreads & threadBit(tid))
        return std::nullopt;
    return it->second.lastBit;
}

void
LastValuePredictor::update(BarrierPc pc, Tick actual_bit)
{
    Entry& e = table[pc];
    e.lastBit = actual_bit;
    e.hasValue = true;
}

std::optional<Tick>
LastValuePredictor::stored(BarrierPc pc) const
{
    auto it = table.find(pc);
    if (it == table.end() || !it->second.hasValue)
        return std::nullopt;
    return it->second.lastBit;
}

void
LastValuePredictor::disable(BarrierPc pc, ThreadId tid)
{
    table[pc].disabledThreads |= threadBit(tid);
}

bool
LastValuePredictor::disabled(BarrierPc pc, ThreadId tid) const
{
    auto it = table.find(pc);
    return it != table.end() &&
           (it->second.disabledThreads & threadBit(tid)) != 0;
}

// ----------------------------------------------------------------------
// MovingAveragePredictor
// ----------------------------------------------------------------------

MovingAveragePredictor::MovingAveragePredictor(double a)
    : alpha(a)
{
    if (alpha <= 0.0 || alpha > 1.0)
        fatal("moving-average alpha must be in (0,1], got ", alpha);
}

void
MovingAveragePredictor::prepare(BarrierPc pc)
{
    table[pc];
}

std::optional<Tick>
MovingAveragePredictor::predict(BarrierPc pc, ThreadId tid) const
{
    auto it = table.find(pc);
    if (it == table.end() || !it->second.hasValue)
        return std::nullopt;
    if (it->second.disabledThreads & threadBit(tid))
        return std::nullopt;
    return static_cast<Tick>(it->second.avg);
}

void
MovingAveragePredictor::update(BarrierPc pc, Tick actual_bit)
{
    Entry& e = table[pc];
    if (!e.hasValue) {
        e.avg = static_cast<double>(actual_bit);
        e.hasValue = true;
    } else {
        e.avg = alpha * static_cast<double>(actual_bit) +
                (1.0 - alpha) * e.avg;
    }
}

std::optional<Tick>
MovingAveragePredictor::stored(BarrierPc pc) const
{
    auto it = table.find(pc);
    if (it == table.end() || !it->second.hasValue)
        return std::nullopt;
    return static_cast<Tick>(it->second.avg);
}

void
MovingAveragePredictor::disable(BarrierPc pc, ThreadId tid)
{
    table[pc].disabledThreads |= threadBit(tid);
}

bool
MovingAveragePredictor::disabled(BarrierPc pc, ThreadId tid) const
{
    auto it = table.find(pc);
    return it != table.end() &&
           (it->second.disabledThreads & threadBit(tid)) != 0;
}

std::unique_ptr<BitPredictor>
makePredictor(const std::string& kind)
{
    if (kind == "last-value")
        return std::make_unique<LastValuePredictor>();
    if (kind == "moving-average")
        return std::make_unique<MovingAveragePredictor>();
    fatal("unknown predictor kind '", kind, "'");
}

} // namespace thrifty
} // namespace tb
