/**
 * @file
 * Conventional sense-reversal barrier (Figure 2 of the paper) — the
 * Baseline configuration.
 *
 * Check-in (lock + count increment + conditional reset) is modeled as
 * one atomic fetch-op at the count line's home directory; early
 * threads then spin on the flag line through the coherence protocol.
 * The count and flag live on distinct lines of shared pages, as any
 * competent barrier implementation arranges.
 *
 * Partitioning discipline: the dynamic instance index is home-confined
 * — it advances only inside the check-in fetch-op at the count's home,
 * and each thread reads back the instance it checked into from its own
 * Snap slot. Statistics are charged to per-thread shards (SyncLedger)
 * and folded after the run by mergeStats().
 */

#ifndef TB_THRIFTY_CONVENTIONAL_BARRIER_HH_
#define TB_THRIFTY_CONVENTIONAL_BARRIER_HH_

#include <functional>
#include <string>
#include <vector>

#include "cpu/thread_context.hh"
#include "mem/memory_system.hh"
#include "sim/sim_object.hh"
#include "thrifty/barrier.hh"

namespace tb {
namespace thrifty {

/** Baseline spin barrier. */
class ConventionalBarrier : public Barrier, public SimObject
{
  public:
    /**
     * @param queue       Simulation event queue.
     * @param pc          Static identifier of this barrier call site.
     * @param num_threads Participants per instance.
     * @param memory      Memory system to allocate barrier data in.
     * @param stats       Experiment-wide synchronization statistics.
     */
    ConventionalBarrier(EventQueue& queue, BarrierPc pc,
                        unsigned num_threads, mem::MemorySystem& memory,
                        SyncStats& stats, std::string name);

    void arrive(cpu::ThreadContext& tc,
                std::function<void()> cont) override;

    BarrierPc pc() const override { return barrierPc; }

    void mergeStats() override { ledger_.merge(); }

    /** Dynamic instances completed so far (stable once drained). */
    std::uint64_t instances() const { return instanceIdx; }

    /** Address of the barrier flag (tests inspect its cache state). */
    Addr flagAddress() const { return flagAddr; }

    /** Address of the check-in counter. */
    Addr countAddress() const { return countAddr; }

  private:
    BarrierPc barrierPc;
    unsigned total;
    mem::Backend& backend;
    SyncLedger ledger_;

    Addr countAddr;
    Addr flagAddr;

    std::vector<std::uint8_t> localSense;
    std::vector<Tick> arrivalTick;
    /** Instance each thread checked into: written at the count's home
     *  inside the fetch-op, read by the owner after the reply. */
    std::vector<std::uint64_t> snapInstance;
    /** Home-confined: advanced only inside the check-in fetch-op. */
    std::uint64_t instanceIdx = 0;
};

} // namespace thrifty
} // namespace tb

#endif // TB_THRIFTY_CONVENTIONAL_BARRIER_HH_
