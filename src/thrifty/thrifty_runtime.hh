/**
 * @file
 * Per-application thrifty-barrier runtime state.
 *
 * The BIT predictor table and the per-thread barrier release
 * timestamps (BRTS) span *all* barriers of a program: BIT is the time
 * between consecutive barrier releases regardless of which static
 * barrier they belong to, and each thread's BRTS advances at every
 * release (Section 3.2.1). All ThriftyBarrier instances of one
 * program therefore share one runtime.
 */

#ifndef TB_THRIFTY_THRIFTY_RUNTIME_HH_
#define TB_THRIFTY_THRIFTY_RUNTIME_HH_

#include <memory>
#include <vector>

#include "sim/types.hh"
#include "thrifty/barrier.hh"
#include "thrifty/bit_predictor.hh"
#include "thrifty/thrifty_config.hh"

namespace tb {
namespace thrifty {

/** Shared state of all thrifty barriers in one program. */
class ThriftyRuntime
{
  public:
    /**
     * @param num_threads Thread count of the program.
     * @param config      Mechanism configuration.
     * @param stats       Experiment-wide synchronization statistics.
     */
    ThriftyRuntime(unsigned num_threads, const ThriftyConfig& config,
                   SyncStats& stats);

    unsigned numThreads() const { return threads; }
    const ThriftyConfig& config() const { return cfg; }
    BitPredictor& predictor() { return *pred; }
    const BitPredictor& predictor() const { return *pred; }
    SyncStats& stats() { return syncStats; }

    /** Thread @p tid's local release timestamp of the last barrier. */
    Tick brts(ThreadId tid) const { return brts_.at(tid); }

    /** Advance @p tid's release timestamp by a published BIT. */
    void
    advanceBrts(ThreadId tid, Tick bit)
    {
        brts_.at(tid) += bit;
    }

  private:
    unsigned threads;
    ThriftyConfig cfg;
    std::unique_ptr<BitPredictor> pred;
    SyncStats& syncStats;
    std::vector<Tick> brts_;
};

} // namespace thrifty
} // namespace tb

#endif // TB_THRIFTY_THRIFTY_RUNTIME_HH_
