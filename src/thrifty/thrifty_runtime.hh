/**
 * @file
 * Per-application thrifty-barrier runtime state.
 *
 * The BIT predictor table and the per-thread barrier release
 * timestamps (BRTS) span *all* barriers of a program: BIT is the time
 * between consecutive barrier releases regardless of which static
 * barrier they belong to, and each thread's BRTS advances at every
 * release (Section 3.2.1). All ThriftyBarrier instances of one
 * program therefore share one runtime.
 */

#ifndef TB_THRIFTY_THRIFTY_RUNTIME_HH_
#define TB_THRIFTY_THRIFTY_RUNTIME_HH_

#include <algorithm>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "sim/types.hh"
#include "thrifty/barrier.hh"
#include "thrifty/bit_predictor.hh"
#include "thrifty/thrifty_config.hh"

namespace tb {

namespace obs {
class TraceSink;
} // namespace obs

namespace thrifty {

/** Shared state of all thrifty barriers in one program. */
class ThriftyRuntime
{
  public:
    /**
     * @param num_threads Thread count of the program.
     * @param config      Mechanism configuration.
     * @param stats       Experiment-wide synchronization statistics.
     */
    ThriftyRuntime(unsigned num_threads, const ThriftyConfig& config,
                   SyncStats& stats);

    unsigned numThreads() const { return threads; }
    const ThriftyConfig& config() const { return cfg; }
    /**
     * The shared BIT predictor. On a partitioned machine the predictor
     * table is *home-confined*: every read or write of barrier @p pc's
     * entry must execute on the event queue of pc's count-line home
     * node (ThriftyBarrier routes all predictor traffic through the
     * check-in fetch-op and control messages to home). prepare() in
     * the barrier constructor pre-inserts entries so runtime access
     * never mutates the table structure.
     */
    BitPredictor& predictor() { return *pred; }
    const BitPredictor& predictor() const { return *pred; }

    /**
     * Thread @p tid's synchronization-stat shard. Barrier code must
     * charge counters here from the thread's own execution context;
     * mergeStats() folds the shards into the experiment's SyncStats
     * after the run (see SyncLedger).
     */
    SyncStats& stats(ThreadId tid) { return ledger_.shard(tid); }

    /** The experiment's merge sink (== thread 0's shard). */
    SyncStats& stats() { return ledger_.target(); }

    /** Fold all per-thread shards into the target (post-run). */
    void mergeStats() { ledger_.merge(); }

    /** Attach a structured-trace sink shared by all barriers of the
     *  program (nullptr detaches). */
    void setTraceSink(obs::TraceSink* sink) { trace_ = sink; }

    /** The attached trace sink, or null. */
    obs::TraceSink* traceSink() const { return trace_; }

    /** Thread @p tid's local release timestamp of the last barrier. */
    Tick brts(ThreadId tid) const { return brts_.at(tid); }

    /** Advance @p tid's release timestamp by a published BIT. */
    void
    advanceBrts(ThreadId tid, Tick bit)
    {
        brts_.at(tid) += bit;
    }

    // ------------------------------------------------------------------
    // Quarantine (graceful degradation, docs/ROBUSTNESS.md).
    //
    // A (thread, barrier) pair that keeps hitting faulty sleep
    // episodes — watchdog fires, residual-spin escalations — is sent
    // back to the conventional spin path for a while, with the
    // penalty doubling on each repeat (exponential backoff) so a
    // persistently broken wake-up path converges to plain spinning.
    // ------------------------------------------------------------------

    /**
     * True if (tid, pc) is currently quarantined; consumes one
     * quarantined barrier instance and counts a fallback episode.
     */
    bool
    quarantined(ThreadId tid, BarrierPc pc)
    {
        auto it = quarantine_.find({tid, pc});
        if (it == quarantine_.end() || it->second.remaining == 0)
            return false;
        --it->second.remaining;
        ++ledger_.shard(tid).fallbackEpisodes;
        return true;
    }

    /** Record the outcome of one completed sleep episode of (tid, pc). */
    void
    noteSleepEpisode(ThreadId tid, BarrierPc pc, bool faulty)
    {
        const HardeningConfig& h = cfg.hardening;
        QuarantineState& q = quarantine_[{tid, pc}];
        if (!faulty) {
            q.faultyStreak = 0;
            if (q.exponent > 0)
                --q.exponent; // healthy episodes walk the backoff down
            return;
        }
        if (++q.faultyStreak < h.quarantineThreshold)
            return;
        q.faultyStreak = 0;
        q.remaining = h.quarantineBase
                      << std::min(q.exponent, h.quarantineMaxExponent);
        ++q.exponent;
        ++ledger_.shard(tid).quarantines;
    }

    /** Number of (thread, barrier) pairs currently quarantined. */
    unsigned
    quarantinedPairs() const
    {
        unsigned n = 0;
        for (const auto& [key, q] : quarantine_)
            n += q.remaining > 0 ? 1 : 0;
        return n;
    }

  private:
    struct QuarantineState
    {
        unsigned faultyStreak = 0; ///< consecutive faulty episodes
        unsigned remaining = 0;    ///< instances left on conventional path
        unsigned exponent = 0;     ///< backoff doubling count
    };

    unsigned threads;
    ThriftyConfig cfg;
    std::unique_ptr<BitPredictor> pred;
    SyncLedger ledger_;
    obs::TraceSink* trace_ = nullptr;
    std::vector<Tick> brts_;
    std::map<std::pair<ThreadId, BarrierPc>, QuarantineState> quarantine_;
};

} // namespace thrifty
} // namespace tb

#endif // TB_THRIFTY_THRIFTY_RUNTIME_HH_
