#include "thrifty/spin_wait.hh"

#include <memory>
#include <utility>

namespace tb {
namespace thrifty {

namespace {

/** Self-rescheduling spin step shared through a small control block. */
struct SpinLoop : std::enable_shared_from_this<SpinLoop>
{
    cpu::ThreadContext& tc;
    Addr flag;
    std::uint64_t want;
    std::function<void()> cont;

    SpinLoop(cpu::ThreadContext& t, Addr f, std::uint64_t w,
             std::function<void()> c)
        : tc(t), flag(f), want(w), cont(std::move(c))
    {}

    void
    step()
    {
        auto self = shared_from_this();
        tc.load(flag, [self](std::uint64_t v) {
            if (v == self->want) {
                self->tc.cpu().endSpin();
                self->cont();
                return;
            }
            // Cache hit loop until the protocol yanks the line.
            self->tc.controller().watchLine(self->flag,
                                            [self]() { self->step(); });
        });
    }
};

} // namespace

void
spinOnFlag(cpu::ThreadContext& tc, Addr flag, std::uint64_t want,
           std::function<void()> cont)
{
    tc.cpu().beginSpin();
    auto loop =
        std::make_shared<SpinLoop>(tc, flag, want, std::move(cont));
    loop->step();
}

} // namespace thrifty
} // namespace tb
