#include "thrifty/spin_wait.hh"

#include <algorithm>
#include <memory>
#include <utility>

namespace tb {
namespace thrifty {

namespace {

/** Self-rescheduling spin step shared through a small control block. */
struct SpinLoop : std::enable_shared_from_this<SpinLoop>
{
    cpu::ThreadContext& tc;
    Addr flag;
    std::uint64_t want;
    std::function<void()> cont;

    SpinLoop(cpu::ThreadContext& t, Addr f, std::uint64_t w,
             std::function<void()> c)
        : tc(t), flag(f), want(w), cont(std::move(c))
    {}

    void
    step()
    {
        auto self = shared_from_this();
        tc.load(flag, [self](std::uint64_t v) {
            if (v == self->want) {
                self->tc.cpu().endSpin();
                self->cont();
                return;
            }
            // Cache hit loop until the protocol yanks the line.
            self->tc.controller().watchLine(self->flag,
                                            [self]() { self->step(); });
        });
    }
};

/**
 * Bounded spin step. The quiet cache-hit loop is only trusted until
 * `deadline`; past it every wait is a short `recheck` period followed
 * by a fresh coherent load, so progress no longer depends on an
 * invalidation arriving. `gen` stamps the armed watch + timeout pair:
 * whichever fires first bumps it, turning the loser into a no-op.
 */
struct BoundedSpin : std::enable_shared_from_this<BoundedSpin>
{
    EventQueue& eq;
    cpu::ThreadContext& tc;
    Addr flag;
    std::uint64_t want;
    Tick deadline;
    Tick recheck;
    std::function<void()> onEscalate;
    std::function<void()> cont;

    bool escalated = false;
    std::uint64_t gen = 0;
    EventHandle timeout;

    BoundedSpin(EventQueue& q, cpu::ThreadContext& t, Addr f,
                std::uint64_t w, Tick dl, Tick rc,
                std::function<void()> esc, std::function<void()> c)
        : eq(q), tc(t), flag(f), want(w), deadline(dl), recheck(rc),
          onEscalate(std::move(esc)), cont(std::move(c))
    {}

    void
    step()
    {
        auto self = shared_from_this();
        tc.load(flag, [self](std::uint64_t v) {
            if (v == self->want) {
                self->finish();
                return;
            }
            self->arm();
        });
    }

    void
    arm()
    {
        auto self = shared_from_this();
        const std::uint64_t g = ++gen;
        tc.controller().watchLine(flag, [self, g]() {
            if (g != self->gen)
                return;
            self->timeout.cancel();
            self->step();
        });
        const Tick when =
            std::max(escalated ? eq.now() + recheck : deadline,
                     eq.now());
        timeout = eq.schedule(when, [self, g]() {
            if (g != self->gen)
                return;
            self->expire();
        });
    }

    void
    expire()
    {
        ++gen; // orphan the armed watch before clearing it
        // Each node runs one thread, so the only watch on this line at
        // this controller is ours.
        tc.controller().clearWatches(flag);
        if (!escalated) {
            escalated = true;
            if (onEscalate)
                onEscalate();
        }
        step();
    }

    void
    finish()
    {
        ++gen;
        timeout.cancel();
        tc.cpu().endSpin();
        cont();
    }
};

} // namespace

void
spinOnFlag(cpu::ThreadContext& tc, Addr flag, std::uint64_t want,
           std::function<void()> cont)
{
    tc.cpu().beginSpin();
    auto loop =
        std::make_shared<SpinLoop>(tc, flag, want, std::move(cont));
    loop->step();
}

void
spinOnFlagBounded(EventQueue& eq, cpu::ThreadContext& tc, Addr flag,
                  std::uint64_t want, Tick budget, Tick recheck,
                  std::function<void()> on_escalate,
                  std::function<void()> cont)
{
    tc.cpu().beginSpin();
    auto loop = std::make_shared<BoundedSpin>(
        eq, tc, flag, want, eq.now() + budget, recheck,
        std::move(on_escalate), std::move(cont));
    loop->step();
}

} // namespace thrifty
} // namespace tb
