/**
 * @file
 * Public barrier interface and synchronization instrumentation.
 *
 * A Barrier object models one *static* barrier in the program (one
 * call site / PC). Threads call arrive() and are continued past the
 * barrier when every participant has checked in. Conventional and
 * thrifty barriers implement the same interface and may coexist in
 * one program, mirroring the paper's drop-in-macro deployment story.
 */

#ifndef TB_THRIFTY_BARRIER_HH_
#define TB_THRIFTY_BARRIER_HH_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "cpu/thread_context.hh"
#include "sim/types.hh"
#include "thrifty/bit_predictor.hh"

namespace tb {
namespace thrifty {

/** Per-departure trace record (drives Figure 3 and debugging). */
struct BarrierTraceEntry
{
    BarrierPc pc = 0;
    std::uint64_t instance = 0; ///< dynamic instance index of this PC
    ThreadId tid = 0;
    Tick bit = 0;     ///< interval time of this instance (published)
    Tick compute = 0; ///< thread's compute time within the interval
    Tick stall = 0;   ///< thread's barrier stall time (bit - compute)
};

/**
 * One completed sleep episode at a thrifty barrier: everything the
 * paper's prediction story turns on (predicted vs. actual BIT, chosen
 * sleep state, flush cost, which mechanism woke the thread and whether
 * the wake was early or late relative to the release). Recorded only
 * for arrivals that actually slept; exported via --stats-json
 * (docs/OBSERVABILITY.md).
 */
struct BarrierEpisode
{
    BarrierPc pc = 0;
    std::uint64_t instance = 0; ///< dynamic instance index of this PC
    ThreadId tid = 0;
    Tick predictedBit = 0; ///< predictor's BIT at sleep time
    Tick actualBit = 0;    ///< published BIT of this instance
    Tick sleepTick = 0;    ///< when the sleep was committed
    Tick wakeTick = 0;     ///< when the CPU was Active again
    Tick releaseTs = 0;    ///< thread-local release timestamp (BRTS')
    Tick flushTicks = 0;   ///< pre-sleep flush cost (0 if snoopable)
    Tick residualTicks = 0; ///< post-wake residual spin
    std::string sleepState; ///< chosen low-power state
    std::string wakeReason; ///< wake source (mem::wakeReasonName)

    /** Woke before the release (internal timer undershot). */
    bool earlyWake() const { return wakeTick < releaseTs; }

    /** Woke after the release (paid transition latency on the tail). */
    bool lateWake() const { return wakeTick > releaseTs; }
};

/** Aggregate synchronization statistics shared by an experiment. */
struct SyncStats
{
    /** Sum over (thread, instance) of time from arrival to release. */
    double totalStallTicks = 0.0;
    /** Dynamic barrier instances completed (all PCs). */
    std::uint64_t instances = 0;
    /** Thread arrivals processed. */
    std::uint64_t arrivals = 0;
    /** Sleep attempts that actually entered a low-power state. */
    std::uint64_t sleeps = 0;
    /** Arrivals that spun (no/insufficient prediction, cutoff, last). */
    std::uint64_t spins = 0;
    /** Times the overprediction cutoff disabled a (pc, thread). */
    std::uint64_t cutoffs = 0;
    /** BIT samples rejected by the underprediction filter. */
    std::uint64_t filteredUpdates = 0;
    /** Ticks spent in residual spin after a sleep's wake-up. */
    double residualSpinTicks = 0.0;
    /** Residual-spin episodes (== sleeps that had to verify the flag). */
    std::uint64_t residualSpins = 0;
    /** Safety-watchdog expirations that forced a wake-up. */
    std::uint64_t watchdogFires = 0;
    /** Residual spins whose budget expired (escalated to full spin). */
    std::uint64_t residualEscalations = 0;
    /** (thread, barrier) pairs placed in quarantine. */
    std::uint64_t quarantines = 0;
    /** Arrivals served by the conventional path due to quarantine. */
    std::uint64_t fallbackEpisodes = 0;

    /** Optional per-departure trace. */
    bool traceEnabled = false;
    std::vector<BarrierTraceEntry> trace;

    /** Optional per-sleep-episode ledger (--stats-json). */
    bool episodesEnabled = false;
    std::vector<BarrierEpisode> episodes;
};

/**
 * Per-thread sharding of one SyncStats sink.
 *
 * On a partitioned machine (harness/machine.hh) different threads'
 * barrier bookkeeping executes on different host threads, so they must
 * not bump one shared counter set. Each thread gets its own shard —
 * shard 0 aliases the experiment's target SyncStats — and merge()
 * folds the extras back after the run, in thread order, so the merged
 * totals are identical at any host thread count. A thread only ever
 * touches its own shard from its own execution context; merge() runs
 * after the queues are drained.
 */
class SyncLedger
{
  public:
    /** @param num_threads shard count; @p target shard 0 / merge sink. */
    SyncLedger(unsigned num_threads, SyncStats& target)
        : target_(target), extras_(num_threads ? num_threads - 1 : 0)
    {}

    /** Thread @p tid's shard (tid 0 gets the target itself). */
    SyncStats&
    shard(ThreadId tid)
    {
        if (tid == 0)
            return target_;
        SyncStats& s = extras_.at(tid - 1);
        // Recording options live on the target; mirror them so a
        // shard taken before or after the run sees the same switches.
        s.traceEnabled = target_.traceEnabled;
        s.episodesEnabled = target_.episodesEnabled;
        return s;
    }

    /** The merge sink (== shard 0). */
    SyncStats& target() { return target_; }

    /** Fold every extra shard into the target and clear it. */
    void
    merge()
    {
        for (SyncStats& s : extras_) {
            target_.totalStallTicks += s.totalStallTicks;
            target_.instances += s.instances;
            target_.arrivals += s.arrivals;
            target_.sleeps += s.sleeps;
            target_.spins += s.spins;
            target_.cutoffs += s.cutoffs;
            target_.filteredUpdates += s.filteredUpdates;
            target_.residualSpinTicks += s.residualSpinTicks;
            target_.residualSpins += s.residualSpins;
            target_.watchdogFires += s.watchdogFires;
            target_.residualEscalations += s.residualEscalations;
            target_.quarantines += s.quarantines;
            target_.fallbackEpisodes += s.fallbackEpisodes;
            for (BarrierTraceEntry& e : s.trace)
                target_.trace.push_back(e);
            for (BarrierEpisode& e : s.episodes)
                target_.episodes.push_back(std::move(e));
            s = SyncStats{};
        }
    }

  private:
    SyncStats& target_;
    std::vector<SyncStats> extras_;
};

/** Abstract barrier (one static call site). */
class Barrier
{
  public:
    virtual ~Barrier() = default;

    /**
     * Thread @p tc arrives at this barrier; @p cont runs when the
     * thread departs past it.
     */
    virtual void arrive(cpu::ThreadContext& tc,
                        std::function<void()> cont) = 0;

    /** The static identifier (PC) of this barrier. */
    virtual BarrierPc pc() const = 0;

    /**
     * Fold per-thread stat shards into the experiment's SyncStats.
     * Must be called after the machine's queues are drained and before
     * the stats are read; a no-op for barriers that do not shard.
     */
    virtual void mergeStats() {}
};

} // namespace thrifty
} // namespace tb

#endif // TB_THRIFTY_BARRIER_HH_
