#include "thrifty/tree_barrier.hh"

#include <algorithm>
#include <utility>

#include "sim/logging.hh"
#include "thrifty/spin_wait.hh"

namespace tb {
namespace thrifty {

TreeBarrier::TreeBarrier(EventQueue& queue, BarrierPc pc,
                         ThriftyRuntime& rt, mem::MemorySystem& memory,
                         unsigned radix_, std::string name)
    : SimObject(queue, std::move(name)),
      barrierPc(pc),
      runtime(rt),
      backend(memory.backend()),
      radix(radix_),
      total(rt.numThreads()),
      arrivalTick(total, 0),
      computeTime(total, 0),
      wakeTick(total, kTickNever),
      arrivalInstance(total, 0)
{
    if (radix < 2)
        fatal(this->name(), ": tree radix must be >= 2");
    if (runtime.config().oracle)
        fatal(this->name(), ": oracle mode unsupported for the tree");

    // Build levels bottom-up until a single group remains.
    unsigned members = total;
    for (;;) {
        const unsigned n_groups = (members + radix - 1) / radix;
        std::vector<Group> level(n_groups);
        for (unsigned g = 0; g < n_groups; ++g) {
            Group& grp = level[g];
            grp.size = std::min(radix, members - g * radix);
            grp.sense.assign(grp.size, 0);
            const Addr base =
                memory.addressMap().allocShared(mem::kPageBytes);
            grp.count = base;
            grp.flag = base + mem::kLineBytes;
            grp.bit = base + 2 * mem::kLineBytes;
        }
        groups.push_back(std::move(level));
        if (n_groups == 1)
            break;
        members = n_groups;
    }
}

TreeBarrier::Group&
TreeBarrier::groupAt(unsigned level, unsigned index)
{
    return groups.at(level).at(index);
}

void
TreeBarrier::arrive(cpu::ThreadContext& tc, std::function<void()> cont)
{
    const ThreadId tid = tc.tid();
    if (tid >= total)
        panic(name(), ": thread ", tid, " outside barrier population");
    SyncStats& st = runtime.stats();
    ++st.arrivals;
    arrivalTick[tid] = curTick();
    computeTime[tid] = curTick() - runtime.brts(tid);
    wakeTick[tid] = kTickNever;
    arrivalInstance[tid] = instanceIdx;

    ascend(tc, tid, 0, tid / radix, tid % radix,
           [this, &tc, tid, cont = std::move(cont)](Tick bit) mutable {
               finishThread(tc, tid, bit, std::move(cont));
           });
}

void
TreeBarrier::ascend(cpu::ThreadContext& tc, ThreadId tid,
                    unsigned level, unsigned index, unsigned slot,
                    std::function<void(Tick)> released)
{
    Group& g = groupAt(level, index);
    const std::uint64_t want = g.sense.at(slot) ^ 1u;
    g.sense[slot] = static_cast<std::uint8_t>(want);

    tc.atomic(
        g.count,
        [this, &g](Tick) {
            const std::uint64_t old = backend.read(g.count);
            backend.write(g.count, old + 1 == g.size ? 0 : old + 1);
            return old;
        },
        [this, &tc, tid, level, index, want, &g,
         released = std::move(released)](std::uint64_t old) mutable {
            if (old + 1 < g.size) {
                // Early in this group: thrifty-wait on the group
                // flag, then pick up the propagated BIT.
                thriftyWait(
                    tc, tid, g, want,
                    [this, &tc, &g,
                     released = std::move(released)]() mutable {
                        tc.load(g.bit,
                                [released = std::move(released)](
                                    std::uint64_t bit) mutable {
                                    released(static_cast<Tick>(bit));
                                });
                    });
                return;
            }

            // Last in this group: carry the check-in upward; when the
            // release wave reaches us, flip this group's flag (after
            // publishing the BIT) before continuing down.
            auto release_down = [this, &tc, &g, want,
                                 released = std::move(released)](
                                    Tick bit) mutable {
                releaseGroup(tc, g, want, bit,
                             [released = std::move(released),
                              bit]() mutable { released(bit); });
            };

            if (level + 1 < groups.size()) {
                ascend(tc, tid, level + 1, index / radix,
                       index % radix, std::move(release_down));
                return;
            }

            // This group IS the root: its last arriver is the
            // paper's "last thread".
            const Tick actual_bit = curTick() - runtime.brts(tid);
            const ThriftyConfig& cfg = runtime.config();
            bool skip = false;
            if (cfg.underpredictionFilter > 0.0) {
                if (auto prev =
                        runtime.predictor().stored(barrierPc)) {
                    if (static_cast<double>(actual_bit) >
                        cfg.underpredictionFilter *
                            static_cast<double>(*prev)) {
                        skip = true;
                        ++runtime.stats().filteredUpdates;
                    }
                }
            }
            if (!skip)
                runtime.predictor().update(barrierPc, actual_bit);
            ++instanceIdx;
            ++runtime.stats().instances;
            release_down(actual_bit);
        });
}

void
TreeBarrier::thriftyWait(cpu::ThreadContext& tc, ThreadId tid,
                         Group& group, std::uint64_t want,
                         std::function<void()> cont)
{
    const ThriftyConfig& cfg = runtime.config();
    SyncStats& st = runtime.stats();

    const power::SleepState* state = nullptr;
    Tick predicted_wake = 0;
    if (auto bit = runtime.predictor().predict(barrierPc, tid)) {
        predicted_wake = runtime.brts(tid) + *bit;
        if (predicted_wake > curTick())
            state = cfg.states.select(predicted_wake - curTick());
    }

    if (!state) {
        ++st.spins;
        spinOnFlag(tc, group.flag, want, std::move(cont));
        return;
    }

    tc.controller().armFlagMonitor(
        group.flag, want,
        [this, &tc, tid, &group, want, state, predicted_wake,
         cont = std::move(cont)](bool already_flipped) mutable {
            if (already_flipped) {
                cont();
                return;
            }
            const ThriftyConfig& conf = runtime.config();
            if (conf.wakeup != WakeupPolicy::External) {
                const Tick lead = state->transitionLatency;
                const Tick target =
                    predicted_wake > curTick() + lead
                        ? predicted_wake - lead
                        : curTick();
                tc.controller().armWakeTimer(target - curTick());
            }
            if (conf.wakeup == WakeupPolicy::Internal)
                tc.controller().disarmFlagMonitor();
            ++runtime.stats().sleeps;
            tc.cpu().enterSleep(
                *state, [this, &tc, tid, &group, want,
                         cont = std::move(cont)](mem::WakeReason) mutable {
                    wakeTick[tid] = curTick();
                    spinOnFlag(tc, group.flag, want, std::move(cont));
                });
        });
}

void
TreeBarrier::releaseGroup(cpu::ThreadContext& tc, Group& group,
                          std::uint64_t want, Tick bit,
                          std::function<void()> cont)
{
    tc.store(group.bit, bit,
             [this, &tc, &group, want, cont = std::move(cont)]() mutable {
                 tc.store(group.flag, want, std::move(cont));
             });
}

void
TreeBarrier::finishThread(cpu::ThreadContext& tc, ThreadId tid,
                          Tick bit, std::function<void()> cont)
{
    (void)tc;
    runtime.advanceBrts(tid, bit);
    const Tick release_ts = runtime.brts(tid);
    const ThriftyConfig& cfg = runtime.config();
    if (wakeTick[tid] != kTickNever &&
        cfg.overpredictionThreshold >= 0.0 &&
        wakeTick[tid] > release_ts) {
        const Tick penalty = wakeTick[tid] - release_ts;
        if (static_cast<double>(penalty) >
            cfg.overpredictionThreshold * static_cast<double>(bit)) {
            runtime.predictor().disable(barrierPc, tid);
            ++runtime.stats().cutoffs;
        }
    }
    runtime.stats().totalStallTicks +=
        static_cast<double>(curTick() - arrivalTick[tid]);

    SyncStats& st = runtime.stats();
    if (st.traceEnabled) {
        BarrierTraceEntry e;
        e.pc = barrierPc;
        e.instance = arrivalInstance[tid];
        e.tid = tid;
        e.bit = bit;
        e.compute = std::min(computeTime[tid], bit);
        e.stall = e.bit - e.compute;
        st.trace.push_back(e);
    }
    cont();
}

} // namespace thrifty
} // namespace tb
