/**
 * @file
 * The thrifty barrier (Sections 2-3 of the paper).
 *
 * An early-arriving thread:
 *   1. checks in (atomic count at the home directory),
 *   2. predicts the barrier interval time (PC-indexed), derives its
 *      stall time by subtracting its compute time,
 *   3. scans the sleep-state table for the deepest state whose
 *      round-trip transition fits in the predicted stall,
 *   4. arms the flag monitor in the cache controller (which reads the
 *      flag in, refusing sleep if it already flipped), arms the
 *      wake-up timer (internal/hybrid policy), flushes dirty shared
 *      lines if the state cannot snoop, and transitions down,
 *   5. on wake-up (external invalidation / timer / safety), verifies
 *      the flag in a residual spin, then departs: it loads the
 *      published BIT, advances its local BRTS, and applies the
 *      overprediction cutoff if its wake-up was too late.
 *
 * The last thread's check-in measures the actual BIT and feeds the
 * predictor (unless the underprediction filter rejects the sample);
 * the thread then publishes BIT and flips the flag — whose
 * invalidations are the external wake-up signal.
 *
 * Oracle/Ideal configurations (Section 5.1) replace steps 2-5 with
 * perfect knowledge: early threads park until the release and their
 * dwell is accounted analytically with zero mispredictions (and, for
 * Ideal, zero flush overhead).
 *
 * Partitioning discipline (harness/machine.hh): every piece of
 * cross-thread runtime state — the predictor table, the dynamic
 * instance index, the oracle's early-arriver list — is *home-
 * confined*: it is only touched inside the check-in fetch-op (which
 * the directory executes at the count line's home node) or in control
 * messages delivered to that node. Everything the arriving thread
 * needs back (its prediction, the measured BIT, the instance index)
 * is written into its own per-thread Snap slot at home and read after
 * the check-in reply returns — the reply's network traversal is the
 * ordering edge. Cross-node notifications (oracle release, the
 * overprediction cutoff's predictor disable) ride the NoC as fabric
 * control messages and pay the real latency instead of mutating
 * remote state at a distance.
 */

#ifndef TB_THRIFTY_THRIFTY_BARRIER_HH_
#define TB_THRIFTY_THRIFTY_BARRIER_HH_

#include <functional>
#include <string>
#include <vector>

#include "cpu/thread_context.hh"
#include "mem/memory_system.hh"
#include "sim/sim_object.hh"
#include "thrifty/barrier.hh"
#include "thrifty/thrifty_runtime.hh"

namespace tb {
namespace thrifty {

/** One static thrifty barrier. */
class ThriftyBarrier : public Barrier, public SimObject
{
  public:
    /**
     * @param queue   Simulation event queue.
     * @param pc      Static identifier of this barrier call site.
     * @param runtime Shared thrifty runtime (predictor, BRTS, config).
     * @param memory  Memory system to allocate barrier data in.
     */
    ThriftyBarrier(EventQueue& queue, BarrierPc pc,
                   ThriftyRuntime& runtime, mem::MemorySystem& memory,
                   std::string name);

    /** Cancels pending safety watchdogs so no dead callback fires. */
    ~ThriftyBarrier() override;

    void arrive(cpu::ThreadContext& tc,
                std::function<void()> cont) override;

    BarrierPc pc() const override { return barrierPc; }

    void mergeStats() override { runtime.mergeStats(); }

    /** Dynamic instances completed so far (stable once drained). */
    std::uint64_t instances() const { return instanceIdx; }

    /** Address of the barrier flag (tests arm monitors against it). */
    Addr flagAddress() const { return flagAddr; }

  private:
    /**
     * Per-thread snapshot written at the count line's home inside the
     * check-in fetch-op, read by the thread once its check-in reply
     * arrives. The reply's traversal of the network is what orders
     * the home-side write before the requester-side read.
     */
    struct Snap
    {
        std::uint64_t instance = 0; ///< dynamic instance checked into
        Tick predictedBit = 0;      ///< predictor's BIT (early arrivals)
        Tick actualBit = 0;         ///< measured BIT (last arrival)
        std::uint8_t hasPrediction = 0;
        std::uint8_t last = 0;      ///< this check-in closed the count
    };

    /**
     * Home-side completion of one check-in: snapshot the prediction or
     * (for the last arrival) measure the BIT, train the predictor and
     * advance the instance index. Runs inside the fetch-op at the
     * count's serialization point; @p home_now is the home's tick.
     */
    void homeCheckIn(ThreadId tid, std::uint64_t old, Tick brts_tid,
                     Tick home_now);

    /** Path of the last thread to check in (requester side). */
    void lastArrival(cpu::ThreadContext& tc, ThreadId tid,
                     std::uint64_t want, std::function<void()> cont);

    /** Path of an early thread (requester side). */
    void earlyArrival(cpu::ThreadContext& tc, ThreadId tid,
                      std::uint64_t want, std::function<void()> cont);

    /** Early thread after the flag flipped: bookkeeping + continue. */
    void depart(cpu::ThreadContext& tc, ThreadId tid,
                std::function<void()> cont);

    /** Oracle mode: park until the release notification. */
    void park(cpu::ThreadContext& tc, ThreadId tid,
              std::function<void()> cont);

    /** Oracle mode: handle the release notification at @p tid's node. */
    void oracleRelease(ThreadId tid, Tick actual_bit);

    /** Oracle mode: analytic energy accounting of one parked dwell. */
    void accrueOracleDwell(cpu::Cpu& cpu, Tick stall, ThreadId tid);

    /** Append a trace record if tracing is on. */
    void traceDeparture(ThreadId tid, Tick bit);

    BarrierPc barrierPc;
    ThriftyRuntime& runtime;
    mem::Backend& backend;
    mem::Fabric& fab;

    Addr countAddr;
    Addr flagAddr;
    Addr bitAddr;
    /** Home node of the count line — the serialization point that all
     *  home-confined state below belongs to. */
    NodeId homeNode;

    unsigned total;
    std::vector<std::uint8_t> localSense;
    std::vector<Tick> arrivalTick;
    std::vector<Tick> computeTime;  ///< arrival - BRTS at arrival
    std::vector<Tick> wakeTick;     ///< kTickNever if the thread spun
    std::vector<Snap> snap;         ///< written at home, read by owner

    // Home-confined: touched only inside the check-in fetch-op or in
    // control messages delivered to homeNode.
    std::uint64_t instanceIdx = 0;
    std::vector<ThreadId> arrivedEarly; ///< oracle: parked check-ins

    // Requester-confined oracle parking state, per thread.
    std::vector<cpu::ThreadContext*> parkedTc;
    std::vector<std::function<void()>> parkedCont;
    /** Release notification that overtook the thread's own check-in
     *  reply; park() departs immediately when set. */
    std::vector<std::uint8_t> releaseReady;
    std::vector<Tick> releaseBit;

    /** Per-thread safety watchdog bounding the current sleep episode. */
    std::vector<EventHandle> watchdog;
    /** Whether the thread's current episode hit a degradation event. */
    std::vector<std::uint8_t> episodeFaulty;
    /** In-flight episode-ledger record per thread (episodeOpen set
     *  between sleep commit and departure). */
    std::vector<BarrierEpisode> pendingEpisode;
    std::vector<std::uint8_t> episodeOpen;
};

} // namespace thrifty
} // namespace tb

#endif // TB_THRIFTY_THRIFTY_BARRIER_HH_
