/**
 * @file
 * The thrifty barrier (Sections 2-3 of the paper).
 *
 * An early-arriving thread:
 *   1. checks in (atomic count at the home directory),
 *   2. predicts the barrier interval time (PC-indexed), derives its
 *      stall time by subtracting its compute time,
 *   3. scans the sleep-state table for the deepest state whose
 *      round-trip transition fits in the predicted stall,
 *   4. arms the flag monitor in the cache controller (which reads the
 *      flag in, refusing sleep if it already flipped), arms the
 *      wake-up timer (internal/hybrid policy), flushes dirty shared
 *      lines if the state cannot snoop, and transitions down,
 *   5. on wake-up (external invalidation / timer / safety), verifies
 *      the flag in a residual spin, then departs: it loads the
 *      published BIT, advances its local BRTS, and applies the
 *      overprediction cutoff if its wake-up was too late.
 *
 * The last thread computes the actual BIT from its own BRTS, feeds
 * the predictor (unless the underprediction filter rejects the
 * sample), publishes BIT, and flips the flag — whose invalidations
 * are the external wake-up signal.
 *
 * Oracle/Ideal configurations (Section 5.1) replace steps 2-5 with
 * perfect knowledge: early threads park until the release and their
 * dwell is accounted analytically with zero mispredictions (and, for
 * Ideal, zero flush overhead).
 */

#ifndef TB_THRIFTY_THRIFTY_BARRIER_HH_
#define TB_THRIFTY_THRIFTY_BARRIER_HH_

#include <functional>
#include <string>
#include <vector>

#include "cpu/thread_context.hh"
#include "mem/memory_system.hh"
#include "sim/sim_object.hh"
#include "thrifty/barrier.hh"
#include "thrifty/thrifty_runtime.hh"

namespace tb {
namespace thrifty {

/** One static thrifty barrier. */
class ThriftyBarrier : public Barrier, public SimObject
{
  public:
    /**
     * @param queue   Simulation event queue.
     * @param pc      Static identifier of this barrier call site.
     * @param runtime Shared thrifty runtime (predictor, BRTS, config).
     * @param memory  Memory system to allocate barrier data in.
     */
    ThriftyBarrier(EventQueue& queue, BarrierPc pc,
                   ThriftyRuntime& runtime, mem::MemorySystem& memory,
                   std::string name);

    /** Cancels pending safety watchdogs so no dead callback fires. */
    ~ThriftyBarrier() override;

    void arrive(cpu::ThreadContext& tc,
                std::function<void()> cont) override;

    BarrierPc pc() const override { return barrierPc; }

    /** Dynamic instances completed so far. */
    std::uint64_t instances() const { return instanceIdx; }

    /** Address of the barrier flag (tests arm monitors against it). */
    Addr flagAddress() const { return flagAddr; }

  private:
    struct Parked
    {
        cpu::ThreadContext* tc;
        std::function<void()> cont;
        ThreadId tid;
        Tick arrival;
    };

    /** Path of the last thread to check in. */
    void lastArrival(cpu::ThreadContext& tc, ThreadId tid,
                     std::uint64_t want, std::function<void()> cont);

    /** Path of an early thread. */
    void earlyArrival(cpu::ThreadContext& tc, ThreadId tid,
                      std::uint64_t want, std::function<void()> cont);

    /** Early thread after the flag flipped: bookkeeping + continue. */
    void depart(cpu::ThreadContext& tc, ThreadId tid,
                std::function<void()> cont);

    /** Oracle mode: park until release. */
    void park(cpu::ThreadContext& tc, ThreadId tid,
              std::function<void()> cont);

    /** Oracle mode: analytic energy accounting of one parked dwell. */
    void accrueOracleDwell(cpu::Cpu& cpu, Tick stall);

    /** Release all parked threads at the current tick. */
    void releaseParked(Tick actual_bit);

    /** Append a trace record if tracing is on. */
    void traceDeparture(ThreadId tid, Tick bit);

    BarrierPc barrierPc;
    ThriftyRuntime& runtime;
    mem::Backend& backend;

    Addr countAddr;
    Addr flagAddr;
    Addr bitAddr;

    unsigned total;
    std::vector<std::uint8_t> localSense;
    std::vector<Tick> arrivalTick;
    std::vector<Tick> computeTime;  ///< arrival - BRTS at arrival
    std::vector<Tick> wakeTick;     ///< kTickNever if the thread spun
    std::vector<std::uint64_t> arrivalInstance;
    std::uint64_t instanceIdx = 0;
    std::vector<Parked> parked;
    /** Per-thread safety watchdog bounding the current sleep episode. */
    std::vector<EventHandle> watchdog;
    /** Whether the thread's current episode hit a degradation event. */
    std::vector<std::uint8_t> episodeFaulty;
    /** In-flight episode-ledger record per thread (episodeOpen set
     *  between sleep commit and departure). */
    std::vector<BarrierEpisode> pendingEpisode;
    std::vector<std::uint8_t> episodeOpen;
};

} // namespace thrifty
} // namespace tb

#endif // TB_THRIFTY_THRIFTY_BARRIER_HH_
