#include "thrifty/thrifty_lock.hh"

#include <utility>

#include "sim/logging.hh"
#include "thrifty/spin_wait.hh"

namespace tb {
namespace thrifty {

ThriftyLock::ThriftyLock(EventQueue& queue, unsigned num_threads,
                         mem::MemorySystem& memory,
                         power::SleepStateTable sleep_states,
                         std::string name)
    : SimObject(queue, std::move(name)),
      backend(memory.backend()),
      states(std::move(sleep_states)),
      lastWait(num_threads, 0),
      waitStart(num_threads, kTickNever)
{
    if (num_threads == 0)
        fatal("thrifty lock needs at least one thread");
    lockAddr = memory.addressMap().allocShared(mem::kPageBytes);
}

bool
ThriftyLock::held() const
{
    return backend.read(lockAddr) != 0;
}

void
ThriftyLock::acquire(cpu::ThreadContext& tc, std::function<void()> cont)
{
    const ThreadId tid = tc.tid();
    if (tid >= lastWait.size())
        panic(name(), ": thread ", tid, " outside lock population");
    waitStart[tid] = kTickNever;
    tryAcquire(tc, tid, std::move(cont));
}

void
ThriftyLock::tryAcquire(cpu::ThreadContext& tc, ThreadId tid,
                        std::function<void()> cont)
{
    tc.atomic(
        lockAddr,
        [this](Tick) {
            // Test-and-set at the home memory.
            const std::uint64_t old = backend.read(lockAddr);
            if (old == 0)
                backend.write(lockAddr, 1);
            return old;
        },
        [this, &tc, tid,
         cont = std::move(cont)](std::uint64_t old) mutable {
            if (old == 0) {
                // Acquired.
                ++stats.acquisitions;
                if (waitStart[tid] == kTickNever) {
                    ++stats.immediateAcquires;
                } else {
                    const Tick wait = curTick() - waitStart[tid];
                    stats.waitTicks += static_cast<double>(wait);
                    lastWait[tid] = wait; // train the predictor
                }
                cont();
                return;
            }
            if (waitStart[tid] == kTickNever)
                waitStart[tid] = curTick();
            waitForRelease(tc, tid, std::move(cont));
        });
}

void
ThriftyLock::waitForRelease(cpu::ThreadContext& tc, ThreadId tid,
                            std::function<void()> cont)
{
    // Remaining-wait prediction: last observed wait at this lock for
    // this thread, minus what has already elapsed.
    const Tick elapsed = curTick() - waitStart[tid];
    const Tick predicted = lastWait[tid];
    const Tick remaining = predicted > elapsed ? predicted - elapsed : 0;
    const power::SleepState* state = states.select(remaining);
    bool use_timer = state != nullptr;

    if (!state) {
        // No (useful) prediction: fall back to competitive
        // spin-then-sleep — only enter a state whose round trip fits
        // in *half* the wait already endured, bounding the overhead
        // added to any single wait at 50%. Wake-up is then
        // external-only (the release's invalidation); a timer has
        // nothing to aim at.
        state = states.select(elapsed / 2);
    }

    if (!state) {
        // Spin until the lock word reads 0, then race for it.
        ++stats.spinWaits;
        spinOnFlag(tc, lockAddr, 0,
                   [this, &tc, tid, cont = std::move(cont)]() mutable {
                       tryAcquire(tc, tid, std::move(cont));
                   });
        return;
    }

    tc.controller().armFlagMonitor(
        lockAddr, 0,
        [this, &tc, tid, state, remaining, use_timer,
         cont = std::move(cont)](bool already_free) mutable {
            if (already_free) {
                tryAcquire(tc, tid, std::move(cont));
                return;
            }
            if (use_timer) {
                const Tick lead = state->transitionLatency;
                tc.controller().armWakeTimer(
                    remaining > lead ? remaining - lead : 0);
            }
            ++stats.sleeps;
            tc.cpu().enterSleep(
                *state, [this, &tc, tid,
                         cont = std::move(cont)](mem::WakeReason) mutable {
                    // The retry re-decides spin-vs-sleep if it loses.
                    tryAcquire(tc, tid, std::move(cont));
                });
        });
}

void
ThriftyLock::release(cpu::ThreadContext& tc, std::function<void()> cont)
{
    if (!held())
        panic(name(), ": release of a free lock");
    tc.store(lockAddr, 0, std::move(cont));
}

} // namespace thrifty
} // namespace tb
