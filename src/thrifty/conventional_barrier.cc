#include "thrifty/conventional_barrier.hh"

#include <utility>

#include "sim/logging.hh"
#include "thrifty/spin_wait.hh"

namespace tb {
namespace thrifty {

ConventionalBarrier::ConventionalBarrier(EventQueue& queue, BarrierPc pc,
                                         unsigned num_threads,
                                         mem::MemorySystem& memory,
                                         SyncStats& stats,
                                         std::string name)
    : SimObject(queue, std::move(name)),
      barrierPc(pc),
      total(num_threads),
      backend(memory.backend()),
      ledger_(num_threads, stats),
      localSense(num_threads, 0),
      arrivalTick(num_threads, 0),
      snapInstance(num_threads, 0)
{
    if (num_threads == 0)
        fatal("barrier needs at least one thread");
    // One shared page carrying the count line and the flag line; the
    // two must not share a line lest the check-in traffic disturb the
    // spinners' flag copies.
    const Addr base = memory.addressMap().allocShared(mem::kPageBytes);
    countAddr = base;
    flagAddr = base + mem::kLineBytes;
}

void
ConventionalBarrier::arrive(cpu::ThreadContext& tc,
                            std::function<void()> cont)
{
    const ThreadId tid = tc.tid();
    if (tid >= total)
        panic(name(), ": thread ", tid, " outside barrier population");
    ++ledger_.shard(tid).arrivals;
    arrivalTick[tid] = tc.curTick();
    const std::uint64_t want = localSense[tid] ^ 1u;
    localSense[tid] = static_cast<std::uint8_t>(want);

    tc.atomic(
        countAddr,
        [this, &tc, tid](Tick) {
            const std::uint64_t old = backend.read(countAddr);
            backend.write(countAddr,
                          old + 1 == total ? 0 : old + 1);
            // Arm at the count's serialization point: the first
            // check-in is then strictly ordered before the release,
            // no matter how long its completion reply is in flight.
            if (old == 0) {
                if (auto* o = tc.controller().checkObserver())
                    o->onBarrierArmed(mem::lineAddr(flagAddr),
                                      instanceIdx);
            }
            // Snapshot the instance this thread checked into, and for
            // the closer advance it here — a spinner can observe the
            // flag flip before the closer's completion reply returns,
            // so the increment must happen at the serialization point,
            // not in the completion callback.
            snapInstance[tid] = instanceIdx;
            if (old + 1 == total) {
                ++instanceIdx;
                ++ledger_.shard(tid).instances;
            }
            return old;
        },
        [this, &tc, tid, want, cont = std::move(cont)](
            std::uint64_t old) mutable {
            if (old + 1 == total) {
                // Last thread: toggle the flag, releasing everyone.
                tc.store(flagAddr, want,
                         [this, &tc, tid, cont = std::move(cont)]() {
                             if (auto* o = tc.controller().checkObserver())
                                 o->onBarrierReleased(
                                     mem::lineAddr(flagAddr),
                                     snapInstance[tid]);
                             ledger_.shard(tid).totalStallTicks +=
                                 static_cast<double>(tc.curTick() -
                                                     arrivalTick[tid]);
                             cont();
                         });
                return;
            }
            ++ledger_.shard(tid).spins;
            spinOnFlag(tc, flagAddr, want,
                       [this, &tc, tid, cont = std::move(cont)]() {
                           ledger_.shard(tid).totalStallTicks +=
                               static_cast<double>(tc.curTick() -
                                                   arrivalTick[tid]);
                           cont();
                       });
        });
}

} // namespace thrifty
} // namespace tb
