/**
 * @file
 * Event-driven model of a cache-coherent spinloop.
 *
 * A spinning thread loads the flag once (installing a shared copy),
 * then hits in its cache on every iteration; nothing observable
 * happens until the coherence protocol invalidates the line, at which
 * point the next "iteration" misses and fetches the fresh value. The
 * simulator therefore models the spin as: load -> (value mismatch) ->
 * watch the line -> on invalidation reload -> recheck. Timing and
 * traffic are identical to iterating the loop; the CPU accrues spin
 * power for the whole dwell through Cpu::beginSpin()/endSpin().
 */

#ifndef TB_THRIFTY_SPIN_WAIT_HH_
#define TB_THRIFTY_SPIN_WAIT_HH_

#include <cstdint>
#include <functional>

#include "cpu/thread_context.hh"
#include "sim/event_queue.hh"
#include "sim/types.hh"

namespace tb {
namespace thrifty {

/**
 * Spin until the word at @p flag reads @p want, then continue.
 * Assumes the CPU is Active on entry; it is Active again when
 * @p cont runs.
 */
void spinOnFlag(cpu::ThreadContext& tc, Addr flag, std::uint64_t want,
                std::function<void()> cont);

/**
 * Bounded variant for faulty machines (docs/ROBUSTNESS.md): spin on
 * @p flag like spinOnFlag, but give the cache-hit loop only @p budget
 * ticks of trust. If the budget expires without the flag flipping,
 * @p on_escalate runs once and the loop escalates to re-reading the
 * flag through the coherence protocol every @p recheck ticks — making
 * progress even if the invalidation that should end the quiet
 * cache-hit loop was lost. @p cont still runs exactly once, when the
 * flag finally reads @p want.
 */
void spinOnFlagBounded(EventQueue& eq, cpu::ThreadContext& tc, Addr flag,
                       std::uint64_t want, Tick budget, Tick recheck,
                       std::function<void()> on_escalate,
                       std::function<void()> cont);

} // namespace thrifty
} // namespace tb

#endif // TB_THRIFTY_SPIN_WAIT_HH_
