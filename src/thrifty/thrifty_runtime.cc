#include "thrifty/thrifty_runtime.hh"

#include "sim/logging.hh"

namespace tb {
namespace thrifty {

ThriftyRuntime::ThriftyRuntime(unsigned num_threads,
                               const ThriftyConfig& config,
                               SyncStats& stats)
    : threads(num_threads),
      cfg(config),
      pred(makePredictor(config.predictorKind)),
      ledger_(num_threads, stats),
      brts_(num_threads, 0)
{
    if (num_threads == 0)
        fatal("thrifty runtime needs at least one thread");
    if (cfg.ideal && !cfg.oracle)
        fatal("ideal mode implies oracle mode");
}

} // namespace thrifty
} // namespace tb
