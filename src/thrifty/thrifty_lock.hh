/**
 * @file
 * Thrifty lock — the paper's stated future work ("extending this
 * concept ... to other synchronization constructs, such as locks"),
 * implemented with the same ingredients as the thrifty barrier.
 *
 * A conventional test-and-test-and-set lock spins on the lock word;
 * under contention with long critical sections that spinning burns
 * energy exactly like barrier spinning does. The thrifty lock:
 *
 *  1. attempts the acquire with one fetch-op at the lock word's home
 *     (test-and-set);
 *  2. on failure, predicts its *wait time* with a per-lock last-value
 *     predictor (trained on this thread's previously observed waits,
 *     the lock analogue of the PC-indexed BIT table);
 *  3. if the predicted wait fits a sleep state's round trip, arms the
 *     flag monitor on the lock word (want == 0, i.e.\ "released") and
 *     sleeps — the releasing store's invalidation is the external
 *     wake-up; a timer provides the internal wake-up, hybrid-style;
 *  4. on wake it *retries* the fetch-op: lock handoff is racy (other
 *     waiters may win), so the loop re-decides spin-vs-sleep on every
 *     failed attempt. Mutual exclusion derives from the atomic
 *     fetch-op alone; the sleeping machinery only affects timing and
 *     energy.
 *
 * Unlike the barrier there is no release timestamp bookkeeping: wait
 * times are observed directly (failed attempt -> acquisition), so no
 * BRTS chain is needed. Fairness is that of the underlying
 * test-and-set lock (none guaranteed).
 */

#ifndef TB_THRIFTY_THRIFTY_LOCK_HH_
#define TB_THRIFTY_THRIFTY_LOCK_HH_

#include <functional>
#include <string>
#include <vector>

#include "cpu/thread_context.hh"
#include "mem/memory_system.hh"
#include "power/sleep_states.hh"
#include "sim/sim_object.hh"
#include "sim/types.hh"

namespace tb {
namespace thrifty {

/** Aggregate statistics for one lock. */
struct LockStats
{
    std::uint64_t acquisitions = 0;
    std::uint64_t immediateAcquires = 0; ///< free at first attempt
    std::uint64_t sleeps = 0;
    std::uint64_t spinWaits = 0;
    double waitTicks = 0.0; ///< total time between first attempt and
                            ///< acquisition
};

/** A mutual-exclusion lock with thrifty (sleep-on-wait) semantics. */
class ThriftyLock : public SimObject
{
  public:
    /**
     * @param queue       Simulation event queue.
     * @param num_threads Threads that may contend (for per-thread
     *                    predictor state).
     * @param memory      Memory system to allocate the lock word in.
     * @param states      Sleep states available to waiters; pass an
     *                    empty table for a conventional spin lock.
     */
    ThriftyLock(EventQueue& queue, unsigned num_threads,
                mem::MemorySystem& memory,
                power::SleepStateTable states, std::string name);

    /**
     * Acquire the lock for @p tc's thread; @p cont runs in the
     * critical section. Threads must not acquire recursively.
     */
    void acquire(cpu::ThreadContext& tc, std::function<void()> cont);

    /** Release the lock (must be held by @p tc's thread). */
    void release(cpu::ThreadContext& tc, std::function<void()> cont);

    /** True while some thread holds the lock (for tests). */
    bool held() const;

    /** Address of the lock word (tests inspect its cache state). */
    Addr lockAddress() const { return lockAddr; }

    const LockStats& statistics() const { return stats; }

  private:
    /** One acquisition attempt; retries until it wins. */
    void tryAcquire(cpu::ThreadContext& tc, ThreadId tid,
                    std::function<void()> cont);

    /** Failed attempt: decide between spinning and sleeping. */
    void waitForRelease(cpu::ThreadContext& tc, ThreadId tid,
                        std::function<void()> cont);

    mem::Backend& backend;
    power::SleepStateTable states;
    Addr lockAddr;

    /** Last observed wait per thread (the lock-wait predictor). */
    std::vector<Tick> lastWait;
    /** First failed-attempt tick of the in-flight wait per thread. */
    std::vector<Tick> waitStart;

    LockStats stats;
};

} // namespace thrifty
} // namespace tb

#endif // TB_THRIFTY_THRIFTY_LOCK_HH_
