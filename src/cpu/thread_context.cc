#include "cpu/thread_context.hh"

#include <utility>

namespace tb {
namespace cpu {

ThreadContext::ThreadContext(EventQueue& queue, ThreadId tid, Cpu& cpu,
                             mem::CacheController& controller,
                             std::string name)
    : SimObject(queue, std::move(name)),
      threadId(tid),
      theCpu(cpu),
      ctrl(controller)
{}

void
ThreadContext::compute(Tick duration, std::function<void()> cont)
{
    eq.scheduleIn(duration, std::move(cont));
}

void
ThreadContext::load(Addr a, std::function<void(std::uint64_t)> cont)
{
    ctrl.load(a, std::move(cont));
}

void
ThreadContext::store(Addr a, std::uint64_t v, std::function<void()> cont)
{
    ctrl.store(a, v, std::move(cont));
}

void
ThreadContext::atomic(Addr a, std::function<std::uint64_t(Tick)> op,
                      std::function<void(std::uint64_t)> cont)
{
    ctrl.atomicRmw(a, std::move(op), std::move(cont));
}

} // namespace cpu
} // namespace tb
