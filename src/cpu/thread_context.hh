/**
 * @file
 * Software thread executing on one CPU.
 *
 * The simulator is timing-directed rather than instruction-driven: a
 * thread's program is a chain of continuations issuing compute
 * intervals, coherent memory accesses and barrier arrivals. Compute
 * intervals occupy the CPU at active power; memory accesses traverse
 * the real cache/directory/NoC models and stall the thread for their
 * true latency (memory stalls land in the Compute bucket, as in the
 * paper).
 */

#ifndef TB_CPU_THREAD_CONTEXT_HH_
#define TB_CPU_THREAD_CONTEXT_HH_

#include <functional>
#include <string>

#include "cpu/cpu.hh"
#include "mem/cache_controller.hh"
#include "sim/sim_object.hh"
#include "sim/types.hh"

namespace tb {
namespace cpu {

/** One software thread bound to one CPU (dedicated environment). */
class ThreadContext : public SimObject
{
  public:
    ThreadContext(EventQueue& queue, ThreadId tid, Cpu& cpu,
                  mem::CacheController& controller, std::string name);

    ThreadId tid() const { return threadId; }
    Cpu& cpu() { return theCpu; }
    mem::CacheController& controller() { return ctrl; }

    /** Busy-compute for @p duration ticks, then continue. */
    void compute(Tick duration, std::function<void()> cont);

    /** Coherent load; @p cont receives the value. */
    void load(Addr a, std::function<void(std::uint64_t)> cont);

    /** Coherent store. */
    void store(Addr a, std::uint64_t v, std::function<void()> cont);

    /**
     * Atomic fetch-op at @p a's home; @p op receives the home's tick
     * at the serialization point, @p cont gets the old value.
     */
    void atomic(Addr a, std::function<std::uint64_t(Tick)> op,
                std::function<void(std::uint64_t)> cont);

    /**
     * Mark this thread finished; used by the run loop to detect
     * program completion.
     */
    void markDone() { done = true; }
    bool isDone() const { return done; }

  private:
    ThreadId threadId;
    Cpu& theCpu;
    mem::CacheController& ctrl;
    bool done = false;
};

} // namespace cpu
} // namespace tb

#endif // TB_CPU_THREAD_CONTEXT_HH_
