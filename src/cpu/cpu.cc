#include "cpu/cpu.hh"

#include <utility>

#include "sim/fault_hooks.hh"
#include "sim/logging.hh"

namespace tb {
namespace cpu {

const char*
cpuStateName(CpuState s)
{
    switch (s) {
      case CpuState::Active:         return "Active";
      case CpuState::Spinning:       return "Spinning";
      case CpuState::Flushing:       return "Flushing";
      case CpuState::TransitionDown: return "TransitionDown";
      case CpuState::Sleeping:       return "Sleeping";
      case CpuState::TransitionUp:   return "TransitionUp";
    }
    return "?";
}

Cpu::Cpu(EventQueue& queue, NodeId node,
         mem::CacheController& controller,
         const power::PowerParams& power_params, std::string name)
    : SimObject(queue, std::move(name)),
      nodeId(node),
      ctrl(controller),
      params(power_params)
{
    ctrl.setWakeHandler(
        [this](mem::WakeReason r) { return wakeRequest(r); });
}

power::Bucket
Cpu::bucketOf(CpuState s)
{
    switch (s) {
      case CpuState::Active:
      case CpuState::Flushing:
        // Flush overhead lands in Compute, matching the paper's
        // observation that Thrifty's Compute segment grows under deep
        // sleep states (Section 5.2).
        return power::Bucket::Compute;
      case CpuState::Spinning:
        return power::Bucket::Spin;
      case CpuState::TransitionDown:
      case CpuState::TransitionUp:
        return power::Bucket::Transition;
      case CpuState::Sleeping:
        return power::Bucket::Sleep;
    }
    return power::Bucket::Compute;
}

double
Cpu::powerOf(CpuState s) const
{
    const double sleep_watts =
        episode ? params.sleepWatts(episode->powerFraction)
                : params.activeWatts();
    switch (s) {
      case CpuState::Active:
      case CpuState::Flushing:
        return params.activeWatts();
      case CpuState::Spinning:
        return params.spinWatts();
      case CpuState::TransitionDown:
        // Linear ramp active -> sleep accrues at the average power.
        return 0.5 * (params.activeWatts() + sleep_watts);
      case CpuState::TransitionUp:
        return 0.5 * (sleep_watts + params.activeWatts());
      case CpuState::Sleeping:
        return sleep_watts;
    }
    return params.activeWatts();
}

void
Cpu::switchTo(CpuState next)
{
    if (!accountingSuspended)
        account.accrue(bucketOf(cur), curTick() - lastEdge, powerOf(cur));
    cur = next;
    lastEdge = curTick();
}

void
Cpu::suspendAccounting()
{
    if (accountingSuspended)
        return;
    // Close the open interval, then stop integrating.
    account.accrue(bucketOf(cur), curTick() - lastEdge, powerOf(cur));
    lastEdge = curTick();
    accountingSuspended = true;
}

void
Cpu::resumeAccounting()
{
    accountingSuspended = false;
    lastEdge = curTick();
}

void
Cpu::accrueManual(power::Bucket b, Tick duration, double watts)
{
    account.accrue(b, duration, watts);
}

void
Cpu::beginSpin()
{
    if (cur != CpuState::Active)
        panic(name(), ": beginSpin in state ", cpuStateName(cur));
    switchTo(CpuState::Spinning);
}

void
Cpu::endSpin()
{
    if (cur != CpuState::Spinning)
        panic(name(), ": endSpin in state ", cpuStateName(cur));
    switchTo(CpuState::Active);
}

void
Cpu::enterSleep(const power::SleepState& s, OnWake on_wake)
{
    if (cur != CpuState::Active && cur != CpuState::Spinning)
        panic(name(), ": enterSleep in state ", cpuStateName(cur));

    episode = &s;
    onWake = std::move(on_wake);
    wakePending = false;
    abortEntry = false;
    flushTicks = 0;
    statsGroup.scalar("sleepEntries." + s.name).inc();
    if (auto* o = ctrl.checkObserver())
        o->onSleepEnter(nodeId, s.snoopable);

    if (!s.snoopable) {
        switchTo(CpuState::Flushing);
        statsGroup.scalar("flushes").inc();
        const Tick flush_start = curTick();
        ctrl.flushDirtyShared([this, flush_start]() {
            flushTicks = curTick() - flush_start;
            if (abortEntry) {
                // A wake trigger (e.g.\ the barrier released) arrived
                // mid-flush: abandon the sleep attempt.
                becomeActive();
                return;
            }
            startTransitionDown();
        });
        return;
    }
    startTransitionDown();
}

void
Cpu::startTransitionDown()
{
    switchTo(CpuState::TransitionDown);
    if (!episode->snoopable)
        ctrl.setSnoopable(false);
    transitionEnd = curTick() + episode->transitionLatency;
    eq.schedule(transitionEnd, [this]() {
        switchTo(CpuState::Sleeping);
        if (wakePending) {
            wakePending = false;
            startTransitionUp();
        }
    });
}

void
Cpu::startTransitionUp()
{
    switchTo(CpuState::TransitionUp);
    transitionEnd = curTick() + episode->transitionLatency;
    eq.schedule(transitionEnd, [this]() { becomeActive(); });
}

void
Cpu::becomeActive()
{
    switchTo(CpuState::Active);
    ctrl.setSnoopable(true);
    if (auto* o = ctrl.checkObserver())
        o->onSleepExit(nodeId);
    if (onWake) {
        OnWake cb = std::move(onWake);
        onWake = nullptr;
        if (faults) {
            // OS-preemption burst (Section 3.4.2 generalized): the CPU
            // is Active — and accrues active power — but the barrier
            // thread does not get the core back until the burst ends.
            Tick burst = faults->preemptionBurst(nodeId);
            if (burst > 0) {
                statsGroup.scalar("faultPreemptionBursts").inc();
                eq.scheduleIn(burst, [this, cb = std::move(cb)]() {
                    cb(wakeReason);
                });
                return;
            }
        }
        cb(wakeReason);
    }
}

Tick
Cpu::wakeRequest(mem::WakeReason reason)
{
    statsGroup.scalar(std::string("wakes.") + wakeReasonName(reason))
        .inc();
    switch (cur) {
      case CpuState::Active:
      case CpuState::Spinning:
        return curTick();

      case CpuState::Flushing:
        if (!abortEntry) {
            abortEntry = true;
            wakeReason = reason;
        }
        // The flush stream finishes, then the entry aborts; the cache
        // stays accessible the whole time.
        return curTick();

      case CpuState::TransitionDown:
        if (!wakePending) {
            wakePending = true;
            wakeReason = reason;
        }
        return transitionEnd + episode->transitionLatency;

      case CpuState::Sleeping:
        wakeReason = reason;
        startTransitionUp();
        return transitionEnd;

      case CpuState::TransitionUp:
        return transitionEnd;
    }
    return curTick();
}

void
Cpu::finalize()
{
    switchTo(cur);
}

} // namespace cpu
} // namespace tb
