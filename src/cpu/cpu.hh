/**
 * @file
 * Processor power-state machine with integrated energy accounting.
 *
 * States:
 *
 *   Active -- beginSpin/endSpin --> Spinning
 *   Active|Spinning -- enterSleep --> [Flushing] -> TransitionDown
 *       -> Sleeping -- wake trigger --> TransitionUp -> Active
 *
 * Wake triggers arrive through the cache controller (external flag
 * invalidation, internal timer, buffer overflow, intervention safety
 * wake) and are funneled into wakeRequest(), which is safe to call in
 * any state: a wake during Flushing aborts the sleep attempt, a wake
 * during TransitionDown completes the downward transition first (a PLL
 * relock cannot be aborted) and immediately turns around.
 *
 * Every state dwell is integrated into the owning EnergyAccount under
 * the paper's four buckets; transition power ramps linearly between
 * the endpoint powers, i.e.\ it accrues at their average.
 */

#ifndef TB_CPU_CPU_HH_
#define TB_CPU_CPU_HH_

#include <functional>
#include <string>

#include "mem/cache_controller.hh"
#include "power/energy_model.hh"
#include "power/sleep_states.hh"
#include "sim/sim_object.hh"
#include "sim/stats.hh"

namespace tb {
namespace cpu {

/** Processor power/activity state. */
enum class CpuState : std::uint8_t
{
    Active,
    Spinning,
    Flushing,       ///< writing back dirty shared lines pre-deep-sleep
    TransitionDown,
    Sleeping,
    TransitionUp,
};

/** Human-readable CPU state name. */
const char* cpuStateName(CpuState s);

/** One processor's power-state machine. */
class Cpu : public SimObject
{
  public:
    /** Callback invoked when the CPU is Active again after a sleep
     *  episode (exactly once per episode). */
    using OnWake = std::function<void(mem::WakeReason)>;

    Cpu(EventQueue& queue, NodeId node, mem::CacheController& controller,
        const power::PowerParams& params, std::string name);

    NodeId node() const { return nodeId; }
    CpuState state() const { return cur; }
    const power::PowerParams& powerParams() const { return params; }

    /** The sleep state of the current/most recent episode. */
    const power::SleepState* sleepState() const { return episode; }

    /**
     * Ticks the current/most recent sleep episode spent flushing dirty
     * shared lines before transitioning down (0 for snoopable states,
     * which skip the flush). Feeds the barrier episode ledger.
     */
    Tick episodeFlushTicks() const { return flushTicks; }

    // ------------------------------------------------------------------
    // Activity notifications (from the software model).
    // ------------------------------------------------------------------

    /** The thread starts spinning at a barrier. */
    void beginSpin();

    /** The thread leaves the spinloop. */
    void endSpin();

    // ------------------------------------------------------------------
    // Sleep orchestration.
    // ------------------------------------------------------------------

    /**
     * Enter low-power state @p s: flush dirty shared lines first when
     * @p s cannot snoop, then transition down. The CPU stays down
     * until a wake trigger arrives through the controller; when it is
     * Active again, @p on_wake runs.
     *
     * Precondition: state is Active or Spinning.
     */
    void enterSleep(const power::SleepState& s, OnWake on_wake);

    /**
     * Wake trigger (installed as the controller's wake handler).
     * Idempotent; callable in any state.
     * @return the tick at which the CPU (and its cache) is Active.
     */
    Tick wakeRequest(mem::WakeReason reason);

    // ------------------------------------------------------------------
    // Accounting.
    // ------------------------------------------------------------------

    /** Close the open accounting interval (call at end of simulation). */
    void finalize();

    /**
     * Pause the state-machine energy integration (the oracle barrier
     * configurations account the parked interval analytically instead;
     * see ThriftyBarrier). Idempotent.
     */
    void suspendAccounting();

    /** Resume state-machine energy integration from the current tick. */
    void resumeAccounting();

    /** Directly accrue @p duration at @p watts into @p bucket (oracle
     *  accounting). */
    void accrueManual(power::Bucket b, Tick duration, double watts);

    /** Energy/time ledger (finalize() first for exact totals). */
    const power::EnergyAccount& energy() const { return account; }

    /** Attach fault-injection hooks (nullptr detaches). */
    void setFaultHooks(FaultHooks* hooks) { faults = hooks; }

    const stats::StatGroup& statistics() const { return statsGroup; }

  private:
    /** Accrue the open interval and switch to @p next. */
    void switchTo(CpuState next);

    /** Power drawn in @p s given the current episode's sleep state. */
    double powerOf(CpuState s) const;

    /** Bucket that @p s accrues into. */
    static power::Bucket bucketOf(CpuState s);

    void startTransitionDown();
    void startTransitionUp();
    void becomeActive();

    NodeId nodeId;
    mem::CacheController& ctrl;
    power::PowerParams params;

    CpuState cur = CpuState::Active;
    Tick lastEdge = 0;
    bool accountingSuspended = false;
    power::EnergyAccount account;

    const power::SleepState* episode = nullptr;
    OnWake onWake;
    mem::WakeReason wakeReason = mem::WakeReason::Timer;
    bool wakePending = false;  ///< wake arrived during down transition
    bool abortEntry = false;   ///< wake arrived during flush
    Tick transitionEnd = 0;    ///< end tick of the in-flight transition
    Tick flushTicks = 0;       ///< flush cost of the current episode
    /** Optional fault injection (OS-preemption bursts at wake-up). */
    FaultHooks* faults = nullptr;

    stats::StatGroup statsGroup;
};

} // namespace cpu
} // namespace tb

#endif // TB_CPU_CPU_HH_
