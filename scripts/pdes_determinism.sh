#!/usr/bin/env bash
# PDES determinism matrix (docs/PERFORMANCE.md, "Parallel simulation"):
# two sweeps over --sim-threads 1, 2, 4 and 8, requiring every artifact
# to be byte-identical to the serial (--sim-threads 1) reference.
#
# Sweep 1 — serial plan: one representative single simulation
# (thrifty_sim with --trace/--stats-json, which force the serial plan)
# and one full supervised campaign (figure6_time) with observability
# artifacts attached. Compares result JSON, --stats-json, --trace and
# the campaign's TBRESULT1 --out file.
#
# Sweep 2 — partitioned plan: the same binaries WITHOUT trace capture,
# with an explicit --sim-partitions so the machine really decomposes
# into cluster partitions (8 on the 64-node figure6 machine, 4 on the
# 16-node thrifty_sim run). Worker threads drain real engine channels
# here, so this is the sweep that proves the partitioned machine —
# not just the one-partition umbrella — is deterministic.
#
# This is the per-simulation analogue of the --jobs determinism diffs:
# worker threads inside the engine must never be observable in any
# output.
#
#   BUILD_DIR=build OUT_DIR=pdes_determinism scripts/pdes_determinism.sh
#
# The binaries (tools/thrifty_sim, bench/figure6_time) must already be
# built in $BUILD_DIR. Artifacts stay in $OUT_DIR for upload on
# failure. Exit 0 = all thread counts identical, 1 = divergence.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build}
OUT_DIR=${OUT_DIR:-pdes_determinism}
THREADS=${THREADS:-1 2 4 8}

sim=$BUILD_DIR/tools/thrifty_sim
fig=$BUILD_DIR/bench/figure6_time
for bin in "$sim" "$fig"; do
    if [ ! -x "$bin" ]; then
        echo "pdes_determinism: $bin not built" >&2
        exit 2
    fi
done

rm -rf "$OUT_DIR"
mkdir -p "$OUT_DIR"

for t in $THREADS; do
    d=$OUT_DIR/t$t
    mkdir -p "$d"
    echo "==== --sim-threads $t (serial plan) ===="
    "$sim" --app Volrend --config T --dim 4 --sim-threads "$t" --json \
        --stats-json "$d/sim_stats.json" --trace "$d/sim_trace.json" \
        > "$d/sim_result.json"
    "$fig" --sim-threads "$t" --out "$d/figure6.out" \
        --stats-json "$d/figure6_stats.jsonl" \
        --trace "$d/figure6_trace.json" > /dev/null
    echo "==== --sim-threads $t (partitioned plan) ===="
    "$sim" --app Volrend --config T --dim 4 --sim-partitions 4 \
        --sim-threads "$t" --json > "$d/sim_partitioned.json"
    "$fig" --sim-threads "$t" --sim-partitions 8 \
        --out "$d/figure6_partitioned.out" > /dev/null
done

ref=$OUT_DIR/t${THREADS%% *}
fail=0
for t in $THREADS; do
    d=$OUT_DIR/t$t
    [ "$d" = "$ref" ] && continue
    for f in sim_result.json sim_stats.json sim_trace.json \
             figure6.out figure6_stats.jsonl figure6_trace.json \
             sim_partitioned.json figure6_partitioned.out; do
        if ! cmp -s "$ref/$f" "$d/$f"; then
            echo "MISMATCH: $f differs between --sim-threads" \
                 "${ref#"$OUT_DIR"/t} and --sim-threads $t" >&2
            fail=1
        fi
    done
done

if [ "$fail" -ne 0 ]; then
    echo "pdes_determinism: FAILED — artifacts in $OUT_DIR" >&2
    exit 1
fi
echo "pdes_determinism: all artifacts byte-identical at" \
     "--sim-threads $THREADS (serial and partitioned plans)"
