#!/usr/bin/env bash
# End-to-end fault-tolerance smoke test for the distributed campaign
# service (docs/ROBUSTNESS.md, "Distributed campaigns"):
#
#   1. run a campaign bench serially -> reference artifact;
#   2. run the same bench as daemon + N workers, SIGKILL one worker
#      mid-campaign: the daemon must finish with exit 0, the artifact
#      must be byte-identical to the serial run, and the failure
#      manifest must record the kill in the crash ledger;
#   3. re-serve the same campaign against the now-warm result cache
#      with no workers at all: every point must resolve from the
#      cache (zero leases, zero simulations) and the artifact must
#      again be byte-identical.
#
#   scripts/distributed_smoke.sh [--bench NAME] [--workers N]
#
# Default bench is figure6_time: long enough (~4 s serial) that a
# kill at t+1 s reliably lands mid-lease, short enough for CI.
set -euo pipefail
cd "$(dirname "$0")/.."

BENCH=figure6_time
WORKERS=3
while [ $# -gt 0 ]; do
    case "$1" in
        --bench)     BENCH="$2"; shift 2 ;;
        --bench=*)   BENCH="${1#--bench=}"; shift ;;
        --workers)   WORKERS="$2"; shift 2 ;;
        --workers=*) WORKERS="${1#--workers=}"; shift ;;
        *)
            echo "usage: $0 [--bench NAME] [--workers N]" >&2
            exit 2 ;;
    esac
done

BUILD_DIR="${BUILD_DIR:-build}"
BIN="$BUILD_DIR/bench/$BENCH"
if [ ! -x "$BIN" ]; then
    echo "distributed_smoke: $BIN not built" >&2
    echo "  cmake -B $BUILD_DIR && cmake --build $BUILD_DIR -j" >&2
    exit 2
fi

D=$(mktemp -d)
trap 'rm -rf "$D"' EXIT

fail() {
    echo "distributed_smoke: FAIL: $*" >&2
    exit 1
}

echo "== serial reference ($BENCH)"
"$BIN" --out "$D/serial.json" > /dev/null

# --- Phase 2: daemon + workers, one worker SIGKILLed mid-campaign ---
#
# The kill only lands in the crash ledger if the victim holds a lease
# at that instant. Workers spend almost all their time mid-lease, but
# a fast campaign can finish before t+1s or the victim can be between
# points, so retry the whole phase a few times before declaring
# failure.
run_with_kill() {
    local attempt="$1"
    local sock="unix:$D/$BENCH.$attempt.sock"
    rm -f "$D/dist.json" "$D/dist.manifest.json"

    "$BIN" --serve "$sock" --cache "$D/cache" \
        --out "$D/dist.json" --manifest "$D/dist.manifest.json" \
        > "$D/daemon.$attempt.txt" 2>&1 &
    local daemon=$!

    local pids=()
    for i in $(seq 1 "$WORKERS"); do
        "$BIN" --worker "$sock" --worker-name "w$i" \
            > /dev/null 2>&1 &
        pids+=($!)
    done

    sleep 1
    local victim="${pids[0]}"
    kill -9 "$victim" 2> /dev/null || true
    echo "   killed worker w1 (pid $victim) at t+1s"

    local rc=0
    wait "$daemon" || rc=$?
    wait "${pids[@]}" 2> /dev/null || true
    [ "$rc" -eq 0 ] || fail "daemon exited $rc (attempt $attempt)"
    cmp "$D/serial.json" "$D/dist.json" ||
        fail "distributed artifact differs from serial (attempt $attempt)"

    # The ledger records the kill: the daemon saw the dead socket (or
    # missed heartbeats) and reassigned the victim's lease.
    [ -s "$D/dist.manifest.json" ] || return 1
    grep -q '"kind": "crash-ledger"' "$D/dist.manifest.json" || return 1
    grep -Eq '"reason": "(disconnect|heartbeat-timeout)"' \
        "$D/dist.manifest.json" || return 1
    return 0
}

echo "== distributed run: $WORKERS workers, SIGKILL one mid-campaign"
ok=0
for attempt in 1 2 3; do
    # Cold cache each attempt so every phase-2 pass actually leases.
    rm -rf "$D/cache"
    if run_with_kill "$attempt"; then
        ok=1
        break
    fi
    echo "   kill missed the lease window, retrying ($attempt/3)"
done
[ "$ok" -eq 1 ] ||
    fail "no attempt recorded the worker kill in the crash ledger"
echo "   artifact byte-identical to serial; kill in crash ledger"

# --- Phase 3: warm cache, no workers: zero simulations ---
echo "== warm-cache re-serve (no workers)"
"$BIN" --serve "unix:$D/$BENCH.warm.sock" --cache "$D/cache" \
    --out "$D/warm.json" > "$D/warm.txt" 2>&1 ||
    fail "warm-cache daemon exited nonzero"
cmp "$D/serial.json" "$D/warm.json" ||
    fail "warm-cache artifact differs from serial"
grep -q '"leases": 0' "$D/warm.txt" ||
    fail "warm-cache run leased points (expected zero leases)"
grep -q '"ok": 0' "$D/warm.txt" ||
    fail "warm-cache run simulated points (expected all cached)"
grep -Eq '"cache_hits": [1-9]' "$D/warm.txt" ||
    fail "warm-cache run reports no cache hits"
echo "   zero leases, zero simulations, artifact byte-identical"

echo "distributed_smoke: OK ($BENCH, $WORKERS workers)"
