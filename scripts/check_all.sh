#!/usr/bin/env bash
# Correctness gauntlet: build and run the full test suite under every
# sanitizer preset and with the protocol invariant checker armed by
# default (TB_CHECK=ON), plus the fault-injection campaign
# (docs/ROBUSTNESS.md). Each configuration builds into its own tree
# under build-check/ so the presets never contaminate each other.
#
#   scripts/check_all.sh             # all presets
#   scripts/check_all.sh address     # just one
#   scripts/check_all.sh faults      # fault campaign only
#   scripts/check_all.sh lint        # tblint static analysis only
#   scripts/check_all.sh distributed # daemon/worker kill smoke test
#   scripts/check_all.sh chaos       # daemon SIGKILL+resume under net faults
#   scripts/check_all.sh pdes        # --sim-threads determinism matrix
set -euo pipefail
cd "$(dirname "$0")/.."

if [ "${1:-}" = "--help" ] || [ "${1:-}" = "-h" ]; then
    cat <<'EOF'
usage: scripts/check_all.sh [preset ...]

Presets (default: all of them, in this order):
  lint         tblint static analysis + clang -Wthread-safety build
  check        Debug + TB_CHECK=ON test suite (docs/CHECKING.md)
  faults       multi-seed fault campaign (docs/ROBUSTNESS.md)
  address      AddressSanitizer test suite
  undefined    UBSanitizer test suite
  thread       ThreadSanitizer test suite
  distributed  daemon/worker SIGKILL smoke test (docs/ROBUSTNESS.md)
  chaos        daemon SIGKILL + --serve --resume recovery under
               injected network faults (docs/ROBUSTNESS.md)
  pdes         --sim-threads 1/2/4/8 determinism matrix
               (docs/PERFORMANCE.md, "Parallel simulation (PDES)")
EOF
    exit 0
fi

presets=("$@")
if [ ${#presets[@]} -eq 0 ]; then
    presets=(lint check faults address undefined thread distributed
             chaos pdes)
fi

run_preset() {
    local preset=$1
    local dir=build-check/$preset
    local -a flags

    case $preset in
      check|faults)
        # Debug + TB_CHECK=ON: every experiment in the suite runs
        # with the invariant checker attached.
        flags=(-DCMAKE_BUILD_TYPE=Debug -DTB_CHECK=ON)
        ;;
      address|undefined|thread)
        flags=(-DCMAKE_BUILD_TYPE=RelWithDebInfo
               -DTB_SANITIZE=$preset)
        ;;
      lint|distributed|chaos)
        flags=(-DCMAKE_BUILD_TYPE=RelWithDebInfo)
        ;;
      pdes)
        flags=(-DCMAKE_BUILD_TYPE=Release)
        ;;
      *)
        echo "unknown preset '$preset'" >&2
        echo "expected: lint, check, faults, address, undefined," \
             "thread, distributed, chaos or pdes" >&2
        return 1
        ;;
    esac

    echo "==== preset $preset ===="
    if [ "$preset" = lint ]; then
        # Static analysis (docs/CHECKING.md): build tblint and sweep
        # the whole tree; any finding fails the preset. With clang
        # available, also prove the TB_GUARDED_BY annotations under
        # -Wthread-safety (compile-only).
        cmake -B "$dir" -G Ninja "${flags[@]}"
        cmake --build "$dir" -j --target tblint
        "$dir/tools/tblint/tblint" src tools bench
        if command -v clang++ >/dev/null 2>&1; then
            cmake -B "$dir-tsa" -G Ninja "${flags[@]}" \
                -DCMAKE_CXX_COMPILER=clang++ -DTB_THREAD_SAFETY=ON
            cmake --build "$dir-tsa" -j
        else
            echo "clang++ not found: skipping TB_THREAD_SAFETY build"
        fi
        return 0
    fi
    if [ "$preset" = pdes ]; then
        # PDES determinism matrix (docs/PERFORMANCE.md): the same
        # simulations at --sim-threads 1/2/4/8 must write
        # byte-identical artifacts.
        cmake -B "$dir" -G Ninja "${flags[@]}"
        cmake --build "$dir" -j --target thrifty_sim figure6_time
        BUILD_DIR="$dir" OUT_DIR="$dir/pdes_determinism" \
            scripts/pdes_determinism.sh
        return 0
    fi
    if [ "$preset" = distributed ]; then
        # Fault-tolerance smoke test of the work-queue service: a
        # campaign survives a SIGKILLed worker byte-identically, and
        # a warm result cache replays it with zero simulations.
        cmake -B "$dir" -G Ninja "${flags[@]}"
        cmake --build "$dir" -j --target figure6_time
        BUILD_DIR="$dir" scripts/distributed_smoke.sh
        return 0
    fi
    if [ "$preset" = chaos ]; then
        # Crash-recovery chaos: daemon SIGKILLed mid-campaign and
        # restarted with --serve --resume while every worker socket
        # runs under deterministic network fault injection, plus one
        # worker SIGKILL. Artifacts must stay byte-identical.
        cmake -B "$dir" -G Ninja "${flags[@]}"
        cmake --build "$dir" -j --target figure6_time
        BUILD_DIR="$dir" scripts/chaos_smoke.sh
        return 0
    fi
    cmake -B "$dir" -G Ninja "${flags[@]}"
    cmake --build "$dir" -j
    if [ "$preset" = faults ]; then
        # Multi-seed fault campaign with the liveness watchdogs armed:
        # every barrier must release under every injected fault kind.
        "$dir/bench/robustness_faults" --quick
    else
        ctest --test-dir "$dir" --output-on-failure -j "$(nproc)"
    fi
}

for p in "${presets[@]}"; do
    run_preset "$p"
done

echo "All presets clean: ${presets[*]}"
