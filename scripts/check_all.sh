#!/usr/bin/env bash
# Correctness gauntlet: build and run the full test suite under every
# sanitizer preset and with the protocol invariant checker armed by
# default (TB_CHECK=ON), plus the fault-injection campaign
# (docs/ROBUSTNESS.md). Each configuration builds into its own tree
# under build-check/ so the presets never contaminate each other.
#
#   scripts/check_all.sh             # all presets
#   scripts/check_all.sh address     # just one
#   scripts/check_all.sh faults      # fault campaign only
set -euo pipefail
cd "$(dirname "$0")/.."

presets=("$@")
if [ ${#presets[@]} -eq 0 ]; then
    presets=(check faults address undefined thread)
fi

run_preset() {
    local preset=$1
    local dir=build-check/$preset
    local -a flags

    case $preset in
      check|faults)
        # Debug + TB_CHECK=ON: every experiment in the suite runs
        # with the invariant checker attached.
        flags=(-DCMAKE_BUILD_TYPE=Debug -DTB_CHECK=ON)
        ;;
      address|undefined|thread)
        flags=(-DCMAKE_BUILD_TYPE=RelWithDebInfo
               -DTB_SANITIZE=$preset)
        ;;
      *)
        echo "unknown preset '$preset'" >&2
        echo "expected: check, faults, address, undefined or thread" >&2
        return 1
        ;;
    esac

    echo "==== preset $preset ===="
    cmake -B "$dir" -G Ninja "${flags[@]}"
    cmake --build "$dir" -j
    if [ "$preset" = faults ]; then
        # Multi-seed fault campaign with the liveness watchdogs armed:
        # every barrier must release under every injected fault kind.
        "$dir/bench/robustness_faults" --quick
    else
        ctest --test-dir "$dir" --output-on-failure -j "$(nproc)"
    fi
}

for p in "${presets[@]}"; do
    run_preset "$p"
done

echo "All presets clean: ${presets[*]}"
