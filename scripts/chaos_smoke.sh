#!/usr/bin/env bash
# Crash-recovery chaos smoke test for the distributed campaign service
# (docs/ROBUSTNESS.md, "Daemon crash recovery" and "Network fault
# injection"):
#
#   1. run a campaign bench serially -> reference artifact;
#   2. run the same bench as daemon + N workers with deterministic
#      network faults injected on every worker socket, SIGKILL the
#      daemon mid-campaign, restart it with `--serve --resume` on the
#      same socket, then SIGKILL one worker: the restarted daemon must
#      finish with exit 0 and an artifact byte-identical to the serial
#      run, the manifest must record both the restart and the worker
#      death in the crash ledger, and the surviving workers must
#      report non-zero injected-fault counters.
#
#   scripts/chaos_smoke.sh [--bench NAME] [--workers N] [--faults SPEC]
#
# Default bench is figure6_time: long enough (~4 s serial) that a
# daemon kill at t+1 s reliably lands mid-campaign, short enough for
# CI. The whole phase retries a few times: on a fast machine the kill
# can miss the campaign window, which proves nothing either way.
set -euo pipefail
cd "$(dirname "$0")/.."

BENCH=figure6_time
WORKERS=3
FAULTS="seed=7,corrupt=0.02,disconnect=0.05,short-write=0.3,split-read=0.3,delay=0.05:5"
while [ $# -gt 0 ]; do
    case "$1" in
        --bench)     BENCH="$2"; shift 2 ;;
        --bench=*)   BENCH="${1#--bench=}"; shift ;;
        --workers)   WORKERS="$2"; shift 2 ;;
        --workers=*) WORKERS="${1#--workers=}"; shift ;;
        --faults)    FAULTS="$2"; shift 2 ;;
        --faults=*)  FAULTS="${1#--faults=}"; shift ;;
        *)
            echo "usage: $0 [--bench NAME] [--workers N] [--faults SPEC]" >&2
            exit 2 ;;
    esac
done

BUILD_DIR="${BUILD_DIR:-build}"
BIN="$BUILD_DIR/bench/$BENCH"
if [ ! -x "$BIN" ]; then
    echo "chaos_smoke: $BIN not built" >&2
    echo "  cmake -B $BUILD_DIR && cmake --build $BUILD_DIR -j" >&2
    exit 2
fi

D=$(mktemp -d)
trap 'rm -rf "$D"' EXIT

fail() {
    echo "chaos_smoke: FAIL: $*" >&2
    exit 1
}

echo "== serial reference ($BENCH)"
"$BIN" --out "$D/serial.json" > /dev/null

# --- Chaos phase: faulty transports, daemon SIGKILL + resume, worker
# SIGKILL. Returns non-zero (-> retry) when the kills missed the
# campaign window and the evidence is incomplete; hard-fails on any
# correctness violation (exit code, artifact bytes).
run_chaos() {
    local attempt="$1"
    local sock="unix:$D/$BENCH.$attempt.sock"
    rm -f "$D/dist.json" "$D/dist.manifest.json" \
        "$D/journal.jsonl" "$D/journal.jsonl.svc"
    rm -rf "$D/cache" # cold cache each attempt so points actually lease

    "$BIN" --serve "$sock" --journal "$D/journal.jsonl" \
        --cache "$D/cache" --retries 9 \
        --out "$D/dist.json" --manifest "$D/dist.manifest.json" \
        > "$D/daemon1.$attempt.txt" 2>&1 &
    local daemon=$!

    local pids=()
    for i in $(seq 1 "$WORKERS"); do
        "$BIN" --worker "$sock" --worker-name "w$i" \
            --net-faults "$FAULTS" --reconnect-ms 30000 \
            > /dev/null 2> "$D/worker$i.$attempt.txt" &
        pids+=($!)
    done

    sleep 1
    if ! kill -9 "$daemon" 2> /dev/null; then
        echo "   daemon finished before the t+1s kill; retrying"
        wait "${pids[@]}" 2> /dev/null || true
        return 1
    fi
    wait "$daemon" 2> /dev/null || true
    echo "   SIGKILLed daemon (pid $daemon) at t+1s"

    # Restart on the same socket: the service journal restores the
    # queue (outstanding leases, attempt counts), the completion
    # journal replays finished points, and the workers' reconnect
    # budget rides out the gap.
    "$BIN" --serve "$sock" --journal "$D/journal.jsonl" --resume \
        --cache "$D/cache" --retries 9 \
        --out "$D/dist.json" --manifest "$D/dist.manifest.json" \
        > "$D/daemon2.$attempt.txt" 2>&1 &
    daemon=$!

    sleep 0.3
    local victim="${pids[0]}"
    if kill -9 "$victim" 2> /dev/null; then
        echo "   SIGKILLed worker w1 (pid $victim)"
    fi

    local rc=0
    wait "$daemon" || rc=$?
    wait "${pids[@]}" 2> /dev/null || true
    [ "$rc" -eq 0 ] ||
        fail "restarted daemon exited $rc (attempt $attempt)"
    cmp "$D/serial.json" "$D/dist.json" ||
        fail "chaos artifact differs from serial (attempt $attempt)"

    # Evidence: the restart and the worker death are both in the
    # crash ledger, and the injected faults actually fired.
    [ -s "$D/dist.manifest.json" ] || return 1
    grep -q '"kind": "crash-ledger"' "$D/dist.manifest.json" || return 1
    grep -q '"reason": "daemon-restart"' "$D/dist.manifest.json" ||
        return 1
    grep -Eq '"reason": "(disconnect|heartbeat-timeout)"' \
        "$D/dist.manifest.json" || return 1
    cat "$D"/worker*."$attempt".txt |
        grep -q '"kind": "net-faults"' || return 1
    cat "$D"/worker*."$attempt".txt |
        grep -Eq '"total": [1-9]' || return 1
    return 0
}

echo "== chaos run: $WORKERS faulty workers, daemon SIGKILL + resume," \
    "worker SIGKILL"
ok=0
for attempt in 1 2 3; do
    if run_chaos "$attempt"; then
        ok=1
        break
    fi
    echo "   evidence incomplete, retrying ($attempt/3)"
done
[ "$ok" -eq 1 ] ||
    fail "no attempt produced complete chaos evidence (restart +" \
        "worker kill in the ledger, faults fired)"
echo "   artifact byte-identical to serial; restart + kill in ledger;" \
    "faults fired"
echo "chaos_smoke: OK ($BENCH, $WORKERS workers, faults: $FAULTS)"
