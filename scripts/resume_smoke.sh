#!/usr/bin/env bash
# Resume-equivalence smoke test (docs/ROBUSTNESS.md, "Supervised
# campaigns"): kill a journaled fault campaign mid-run, resume it,
# and require the resumed final artifact to be byte-identical to an
# uninterrupted run's.
#
#   scripts/resume_smoke.sh [BENCH_BINARY] [WORKDIR]
#
# Defaults: build/bench/robustness_faults, a fresh temp directory.
# Exit 0 when the resumed artifact matches; non-zero (with the diff
# and the journal kept for inspection) otherwise.
set -euo pipefail
cd "$(dirname "$0")/.."

BENCH="${1:-build/bench/robustness_faults}"
WORK="${2:-$(mktemp -d)}"
mkdir -p "$WORK"

[ -x "$BENCH" ] || { echo "resume_smoke: $BENCH not built" >&2; exit 2; }

echo "== straight run (reference artifact)"
"$BENCH" --quick --jobs 2 --out "$WORK/straight.json" \
    > "$WORK/straight.stdout" 2> "$WORK/straight.stderr"

echo "== interrupted run (SIGINT mid-campaign)"
rm -f "$WORK/journal.jsonl" "$WORK/resumed.json"
set +e
"$BENCH" --quick --jobs 2 --journal "$WORK/journal.jsonl" \
    --out "$WORK/resumed.json" \
    > "$WORK/interrupted.stdout" 2> "$WORK/interrupted.stderr" &
PID=$!
# Land the ^C mid-campaign if we can; a campaign that finishes first
# still exercises the full-journal resume path below.
sleep 0.2
kill -INT "$PID" 2>/dev/null
wait "$PID"
RC=$?
set -e
JOURNALED=$(wc -l < "$WORK/journal.jsonl" 2>/dev/null || echo 0)
echo "   interrupted rc=$RC, journaled points=$JOURNALED"

echo "== resumed run"
"$BENCH" --quick --jobs 2 --journal "$WORK/journal.jsonl" --resume \
    --out "$WORK/resumed.json" \
    > "$WORK/resumed.stdout" 2> "$WORK/resumed.stderr"
grep '"kind": "supervisor"' "$WORK/resumed.stdout" || true

echo "== diff (straight vs resumed artifact)"
if ! cmp "$WORK/straight.json" "$WORK/resumed.json"; then
    echo "FAIL: resumed artifact differs from straight run" >&2
    diff -u "$WORK/straight.json" "$WORK/resumed.json" | head -40 >&2
    echo "workdir kept: $WORK" >&2
    exit 1
fi
echo "PASS: resumed artifact byte-identical ($WORK)"
