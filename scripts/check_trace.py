#!/usr/bin/env python3
"""Validate a Chrome trace_event JSON file emitted by ``--trace``.

Usage:
    check_trace.py TRACE.json [--require-categories sim,mem,noc,thrifty]
                   [--require-names arrive,sleep,release]

Checks, in order:

1. The file parses as JSON and has the object form
   (``{"traceEvents": [...], ...}``) that Perfetto and chrome://tracing
   load directly.
2. Every event record is well-formed: a known phase (``X``/``i``/``M``),
   numeric ``ts`` (and ``dur`` for complete events), and integer
   ``pid``/``tid``.
3. Each category listed in ``--require-categories`` appears on at least
   one event — a missing category means an instrumentation seam went
   dead.
4. Each name in ``--require-names`` appears on at least one event;
   the default set is the thrifty barrier-episode markers.

Exit status: 0 on pass, 1 on validation failure, 2 on usage errors.
"""

import argparse
import json
import sys


KNOWN_PHASES = {"X", "i", "M"}
DEFAULT_CATEGORIES = "sim,mem,noc,thrifty"
DEFAULT_NAMES = "arrive,sleep,release"


def main():
    ap = argparse.ArgumentParser(
        description="Validate a --trace Chrome trace_event file.")
    ap.add_argument("trace")
    ap.add_argument("--require-categories", default=DEFAULT_CATEGORIES,
                    help="comma list of categories that must appear "
                         f"(default {DEFAULT_CATEGORIES})")
    ap.add_argument("--require-names", default=DEFAULT_NAMES,
                    help="comma list of event names that must appear "
                         f"(default {DEFAULT_NAMES})")
    args = ap.parse_args()

    try:
        with open(args.trace, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
    except OSError as e:
        sys.exit(f"check_trace: cannot read {args.trace}: {e}")
    except json.JSONDecodeError as e:
        print(f"check_trace: {args.trace} is not valid JSON: {e}")
        return 1

    failures = []
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        print("check_trace: document is not the "
              '{"traceEvents": [...]} object form')
        return 1
    events = doc["traceEvents"]
    if not isinstance(events, list) or not events:
        failures.append("traceEvents is empty")
        events = []

    seen_categories = set()
    seen_names = set()
    counts = {}
    dropped = 0
    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            failures.append(f"{where}: not an object")
            continue
        ph = ev.get("ph")
        if ph not in KNOWN_PHASES:
            failures.append(f"{where}: unknown phase {ph!r}")
            continue
        if ph == "M":
            continue
        if not isinstance(ev.get("ts"), (int, float)):
            failures.append(f"{where}: missing numeric 'ts'")
        if ph == "X" and not isinstance(ev.get("dur"), (int, float)):
            failures.append(f"{where}: complete event without 'dur'")
        for key in ("pid", "tid"):
            if not isinstance(ev.get(key), int):
                failures.append(f"{where}: missing integer {key!r}")
        cat = ev.get("cat")
        if cat:
            seen_categories.add(cat)
            counts[cat] = counts.get(cat, 0) + 1
        name = ev.get("name")
        if name:
            seen_names.add(name)
        if name == "trace.truncated":
            dropped += ev.get("args", {}).get("dropped", 0)

    for cat in filter(None, args.require_categories.split(",")):
        if cat not in seen_categories:
            failures.append(f"required category '{cat}' never appears")
    for name in filter(None, args.require_names.split(",")):
        if name not in seen_names:
            failures.append(f"required event name '{name}' never "
                            "appears")

    total = sum(counts.values())
    print(f"{args.trace}: {total} events "
          f"({', '.join(f'{c}={n}' for c, n in sorted(counts.items()))})"
          + (f", {dropped} dropped by per-category caps" if dropped
             else ""))
    if failures:
        print("FAIL:")
        for f in failures:
            print(f"  - {f}")
        return 1
    print("PASS: trace well-formed, all required categories and "
          "barrier-episode markers present.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
