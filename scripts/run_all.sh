#!/usr/bin/env bash
# Rebuild everything, run the test suite, and regenerate every table,
# figure, ablation and extension result into results/.
#
#   scripts/run_all.sh [--jobs N] [--sim-threads N] [--resume]
#                      [--distributed [N]]
#
# --jobs N shards the campaign-style benches (figure5_energy,
# figure6_time, robustness_faults, robustness_seeds) across N host
# threads. Their output is byte-identical to a serial run, so N only
# affects wall time.
#
# --sim-threads N drives each individual simulation through the
# conservative PDES engine with N worker threads (docs/PERFORMANCE.md,
# "Parallel simulation (PDES)"). Like --jobs, results are
# byte-identical at any N.
#
# --distributed [N] runs the campaign benches through the distributed
# work queue instead: each bench binary runs once as the daemon
# (--serve) and N worker processes (default 3) lease points from it
# over a unix socket, with a shared content-addressed result cache
# under results/.cache/. Output stays byte-identical to a serial run
# at any worker count (docs/ROBUSTNESS.md, "Distributed campaigns").
#
# --resume continues an interrupted invocation: partial results/ are
# kept, campaign benches skip the points already recorded in their
# journals under results/.journal/, and the regenerated artifacts are
# byte-identical to an uninterrupted run. Campaign failures no longer
# zero out the sweep: each campaign writes a failure manifest
# (results/<bench>.manifest.json) with one repro command per failed
# point.
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS=1
SIM_THREADS=1
RESUME=0
DISTRIBUTED=0
WORKERS=3
while [ $# -gt 0 ]; do
    case "$1" in
        --jobs)   JOBS="$2"; shift 2 ;;
        --jobs=*) JOBS="${1#--jobs=}"; shift ;;
        --sim-threads)   SIM_THREADS="$2"; shift 2 ;;
        --sim-threads=*) SIM_THREADS="${1#--sim-threads=}"; shift ;;
        --resume) RESUME=1; shift ;;
        --distributed)
            DISTRIBUTED=1; shift
            case "${1:-}" in [0-9]*) WORKERS="$1"; shift ;; esac ;;
        --distributed=*) DISTRIBUTED=1; WORKERS="${1#--distributed=}"; shift ;;
        *)
            echo "usage: $0 [--jobs N] [--sim-threads N] [--resume]" \
                 "[--distributed [N]]" >&2
            exit 2 ;;
    esac
done

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure

mkdir -p results results/.journal

# Supervised campaign benches: journaled (resumable), final artifact
# emitted by atomic rename, failure manifest on any failed point.
campaign_args() {
    local name="$1"
    local args="--jobs $JOBS --sim-threads $SIM_THREADS"
    args="$args --journal results/.journal/$name.jsonl"
    args="$args --out results/$name.json"
    args="$args --manifest results/$name.manifest.json"
    [ "$RESUME" = 1 ] && args="$args --resume"
    echo "$args"
}

# Distributed mode: the bench binary itself is the daemon (it owns
# the journal, cache, aggregation and rendering); N copies of the same
# binary lease points from it as workers. The unix socket lives in a
# private tmpdir so concurrent invocations cannot collide.
run_distributed() {
    local name="$1"; shift
    local sockdir sock rc=0
    sockdir=$(mktemp -d)
    sock="unix:$sockdir/$name.sock"
    mkdir -p results/.cache
    # shellcheck disable=SC2046,SC2086
    "build/bench/$name" $(campaign_args "$name") \
        --serve "$sock" --cache results/.cache \
        | tee "results/$name.txt" &
    local daemon=$!
    local pids=()
    for i in $(seq 1 "$WORKERS"); do
        "build/bench/$name" --worker "$sock" --worker-name "w$i" \
            >/dev/null 2>&1 &
        pids+=($!)
    done
    wait "$daemon" || rc=$?
    wait "${pids[@]}" || true
    rm -rf "$sockdir"
    return "$rc"
}

for b in build/bench/*; do
    [ -x "$b" ] || continue
    name=$(basename "$b")
    echo "== $name"
    case "$name" in
        micro_primitives)
            "$b" --benchmark_min_time=0.1 | tee "results/$name.txt" ;;
        figure5_energy|figure6_time|robustness_faults|robustness_seeds)
            if [ "$DISTRIBUTED" = 1 ]; then
                run_distributed "$name"
            else
                # shellcheck disable=SC2046
                "$b" $(campaign_args "$name") | tee "results/$name.txt"
            fi ;;
        *)
            "$b" | tee "results/$name.txt" ;;
    esac
done

echo "All outputs in results/."
