#!/usr/bin/env bash
# Rebuild everything, run the test suite, and regenerate every table,
# figure, ablation and extension result into results/.
#
#   scripts/run_all.sh [--jobs N]
#
# --jobs N shards the campaign-style benches (figure5_energy,
# figure6_time, robustness_faults) across N host threads. Their output
# is byte-identical to a serial run, so N only affects wall time.
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS=1
while [ $# -gt 0 ]; do
    case "$1" in
        --jobs)   JOBS="$2"; shift 2 ;;
        --jobs=*) JOBS="${1#--jobs=}"; shift ;;
        *) echo "usage: $0 [--jobs N]" >&2; exit 2 ;;
    esac
done

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure

mkdir -p results
for b in build/bench/*; do
    [ -x "$b" ] || continue
    name=$(basename "$b")
    echo "== $name"
    case "$name" in
        micro_primitives)
            "$b" --benchmark_min_time=0.1 | tee "results/$name.txt" ;;
        figure5_energy|figure6_time|robustness_faults)
            "$b" --jobs "$JOBS" | tee "results/$name.txt" ;;
        *)
            "$b" | tee "results/$name.txt" ;;
    esac
done

echo "All outputs in results/."
