#!/usr/bin/env bash
# Rebuild everything, run the test suite, and regenerate every table,
# figure, ablation and extension result into results/.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure

mkdir -p results
for b in build/bench/*; do
    [ -x "$b" ] || continue
    name=$(basename "$b")
    echo "== $name"
    if [ "$name" = micro_primitives ]; then
        "$b" --benchmark_min_time=0.1 | tee "results/$name.txt"
    else
        "$b" | tee "results/$name.txt"
    fi
done

echo "All outputs in results/."
