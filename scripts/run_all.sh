#!/usr/bin/env bash
# Rebuild everything, run the test suite, and regenerate every table,
# figure, ablation and extension result into results/.
#
#   scripts/run_all.sh [--jobs N] [--resume]
#
# --jobs N shards the campaign-style benches (figure5_energy,
# figure6_time, robustness_faults, robustness_seeds) across N host
# threads. Their output is byte-identical to a serial run, so N only
# affects wall time.
#
# --resume continues an interrupted invocation: partial results/ are
# kept, campaign benches skip the points already recorded in their
# journals under results/.journal/, and the regenerated artifacts are
# byte-identical to an uninterrupted run. Campaign failures no longer
# zero out the sweep: each campaign writes a failure manifest
# (results/<bench>.manifest.json) with one repro command per failed
# point.
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS=1
RESUME=0
while [ $# -gt 0 ]; do
    case "$1" in
        --jobs)   JOBS="$2"; shift 2 ;;
        --jobs=*) JOBS="${1#--jobs=}"; shift ;;
        --resume) RESUME=1; shift ;;
        *) echo "usage: $0 [--jobs N] [--resume]" >&2; exit 2 ;;
    esac
done

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure

mkdir -p results results/.journal

# Supervised campaign benches: journaled (resumable), final artifact
# emitted by atomic rename, failure manifest on any failed point.
campaign_args() {
    local name="$1"
    local args="--jobs $JOBS --journal results/.journal/$name.jsonl"
    args="$args --out results/$name.json"
    args="$args --manifest results/$name.manifest.json"
    [ "$RESUME" = 1 ] && args="$args --resume"
    echo "$args"
}

for b in build/bench/*; do
    [ -x "$b" ] || continue
    name=$(basename "$b")
    echo "== $name"
    case "$name" in
        micro_primitives)
            "$b" --benchmark_min_time=0.1 | tee "results/$name.txt" ;;
        figure5_energy|figure6_time|robustness_faults|robustness_seeds)
            # shellcheck disable=SC2046
            "$b" $(campaign_args "$name") | tee "results/$name.txt" ;;
        *)
            "$b" | tee "results/$name.txt" ;;
    esac
done

echo "All outputs in results/."
