#!/usr/bin/env python3
"""Compare a micro_simcore campaign-JSON run against a checked-in baseline.

Usage:
    compare_bench.py BASELINE.json CURRENT.json [--threshold 0.25]

Both files hold one JSON object per line in the shared campaign shape
emitted by bench/micro_simcore (``"campaign": "simcore"``; other lines
are ignored), so the output of ``micro_simcore --quick | tee`` can be
fed in directly.

Policy:

* The ``calibration`` benchmark measures raw host arithmetic
  throughput. The ratio current/baseline calibration estimates how much
  faster or slower the current host/runner is than the baseline host,
  and every throughput metric is normalized by it before comparison.
  This keeps the gate meaningful on shared CI runners of varying speed.
* Throughput metrics (unit ending in "/s") fail the comparison when the
  normalized value regresses by more than ``--threshold`` (default 25%).
  Improvements never fail; a large improvement is a hint to refresh the
  baseline (see docs/PERFORMANCE.md).
* Metrics with unit "ticks" or "count" are simulated quantities and
  must be bit-identical per seed: any difference is a determinism
  failure, not a perf regression, and always fails regardless of
  threshold.
* Metrics with unit "x" (the PDES fire-loop speedup and the full
  partitioned-machine speedup, machine_pdes_speedup) are host-relative
  ratios: they are never calibration-normalized and never compared
  against the baseline value (a 1-core baseline host legitimately
  records ~1.0x). Instead they gate on an absolute floor
  (``--speedup-floor``, default 1.5) — enforced only when the metric
  line reports ``threads >= 4``, because the target cannot hold on
  smaller hosts.
* Metrics with unit "ratio" (null-message/stall overhead) are
  host-timing diagnostics: printed for the reviewer, never gated.
* Supervised campaigns emit one counter line per run
  (``"kind": "supervisor"``: retries, timeouts, isolated crashes,
  journaled resumes — see docs/ROBUSTNESS.md). Counters found in the
  current file are printed next to the metrics; a supervisor line
  reporting failed or unfinished points fails the comparison, since
  metrics from a partially-failed campaign are not trustworthy.
* Campaigns run with ``--stats-json`` also print one
  ``"kind": "prediction"`` line summarizing barrier-prediction
  accuracy (episodes, early/late wake split, mean absolute BIT error —
  see docs/OBSERVABILITY.md). These are surfaced for the reviewer but
  never gate: prediction accuracy is a property of the modeled
  predictor, not of the host.

Exit status: 0 on pass, 1 on regression/mismatch, 2 on usage errors.
"""

import argparse
import json
import sys


def load_metrics(path):
    """Return {benchmark: (unit, value, threads)} for simcore lines.

    ``threads`` is 0 for thread-independent metrics (field absent).
    """
    metrics = {}
    try:
        with open(path, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line.startswith("{"):
                    continue
                try:
                    obj = json.loads(line)
                except json.JSONDecodeError:
                    continue
                if obj.get("campaign") != "simcore":
                    continue
                metrics[obj["benchmark"]] = (obj["unit"], obj["value"],
                                             obj.get("threads", 0))
    except OSError as e:
        sys.exit(f"compare_bench: cannot read {path}: {e}")
    if not metrics:
        sys.exit(f"compare_bench: no simcore metrics found in {path}")
    return metrics


def load_kind_lines(path, kind):
    """Return the JSONL objects in *path* whose ``kind`` is *kind*."""
    lines = []
    try:
        with open(path, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line.startswith("{"):
                    continue
                try:
                    obj = json.loads(line)
                except json.JSONDecodeError:
                    continue
                if obj.get("kind") == kind:
                    lines.append(obj)
    except OSError:
        pass
    return lines


def report_prediction(lines):
    """Print ``--stats-json`` prediction-accuracy summaries.

    Informational only: prediction accuracy is a property of the
    modeled predictor, not of the host, so it never gates.
    """
    if not lines:
        return
    print("barrier prediction accuracy (from --stats-json runs):")
    for obj in lines:
        episodes = obj.get("episodes", 0)
        early = obj.get("early_wakes", 0)
        late = obj.get("late_wakes", 0)
        err = obj.get("mean_abs_err_ticks", 0.0)
        frac = (f" ({early / episodes:.1%} early, "
                f"{late / episodes:.1%} late)" if episodes else "")
        print(f"  {obj.get('campaign', '?')}: {episodes} episodes"
              f"{frac}, mean |BIT error| {err:.3g} ticks")
    print()


def report_supervisor(lines):
    """Print campaign supervisor counters; return failure strings."""
    failures = []
    if not lines:
        return failures
    print("campaign supervisor counters:")
    for obj in lines:
        campaign = obj.get("campaign", "?")
        counters = ", ".join(
            f"{key}={obj[key]}"
            for key in ("points", "ok", "journaled", "retries",
                        "timeouts", "crashes", "exceptions",
                        "checker_violations", "not_run")
            if key in obj)
        print(f"  {campaign}: {counters} "
              f"interrupted={obj.get('interrupted', False)}")
        failed = sum(
            obj.get(key, 0)
            for key in ("timeouts", "crashes", "exceptions",
                        "checker_violations"))
        if failed:
            failures.append(
                f"supervisor[{campaign}]: {failed} failed point(s)")
        if obj.get("interrupted") or obj.get("not_run", 0):
            failures.append(
                f"supervisor[{campaign}]: campaign did not finish "
                f"(interrupted={obj.get('interrupted', False)}, "
                f"not_run={obj.get('not_run', 0)})")
    print()
    return failures


def main():
    ap = argparse.ArgumentParser(
        description="Gate micro_simcore results against a baseline.")
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--threshold", type=float, default=0.25,
                    help="max fractional throughput regression "
                         "(default 0.25)")
    ap.add_argument("--speedup-floor", type=float, default=1.5,
                    help="absolute floor for unit-'x' metrics measured "
                         "with threads >= 4 (default 1.5)")
    args = ap.parse_args()

    base = load_metrics(args.baseline)
    cur = load_metrics(args.current)
    supervisor_failures = report_supervisor(
        load_kind_lines(args.current, "supervisor"))
    report_prediction(load_kind_lines(args.current, "prediction"))

    if "calibration" not in base or "calibration" not in cur:
        sys.exit("compare_bench: both files need a 'calibration' metric")
    calib = cur["calibration"][1] / base["calibration"][1]
    print(f"host calibration ratio (current/baseline): {calib:.3f}")
    print(f"regression threshold: {args.threshold:.0%}\n")

    header = (f"{'benchmark':<28} {'baseline':>12} {'current':>12} "
              f"{'normalized':>12} {'delta':>8}  status")
    print(header)
    print("-" * len(header))

    failures = list(supervisor_failures)
    for name, (unit, base_val, _base_thr) in sorted(base.items()):
        if name == "calibration":
            continue
        if name not in cur:
            failures.append(f"{name}: missing from current run")
            print(f"{name:<28} {base_val:>12.4g} {'--':>12} {'--':>12} "
                  f"{'--':>8}  MISSING")
            continue
        cur_unit, cur_val, cur_thr = cur[name]
        if cur_unit != unit:
            failures.append(
                f"{name}: unit changed {unit} -> {cur_unit}")
            continue
        if unit in ("ticks", "count"):
            ok = cur_val == base_val
            status = "ok (exact)" if ok else "DETERMINISM MISMATCH"
            if not ok:
                failures.append(
                    f"{name}: simulated {unit} changed "
                    f"{base_val:g} -> {cur_val:g} (must be bit-stable)")
            print(f"{name:<28} {base_val:>12.6g} {cur_val:>12.6g} "
                  f"{cur_val:>12.6g} {'--':>8}  {status}")
            continue
        if unit == "x":
            # Host-relative speedup: no calibration, no baseline
            # delta (the baseline host's core count sets its value).
            # Gate on the absolute floor when measured with >= 4
            # threads; report-only below that.
            if cur_thr >= 4:
                ok = cur_val >= args.speedup_floor
                status = ("ok (floor)" if ok else "BELOW SPEEDUP FLOOR")
                if not ok:
                    failures.append(
                        f"{name}: {cur_val:.2f}x at {cur_thr} threads "
                        f"is below the {args.speedup_floor:.2f}x floor")
            else:
                status = f"info ({cur_thr} thread(s), floor waived)"
            print(f"{name:<28} {base_val:>12.4g} {cur_val:>12.4g} "
                  f"{cur_val:>12.4g} {'--':>8}  {status}")
            continue
        if unit == "ratio":
            # Host-timing diagnostic (null-message/stall overhead):
            # informational only.
            print(f"{name:<28} {base_val:>12.4g} {cur_val:>12.4g} "
                  f"{cur_val:>12.4g} {'--':>8}  info (not gated)")
            continue
        norm = cur_val / calib if calib > 0 else cur_val
        delta = norm / base_val - 1.0
        ok = delta >= -args.threshold
        status = "ok" if ok else "REGRESSION"
        if not ok:
            failures.append(
                f"{name}: {-delta:.1%} below baseline "
                f"(threshold {args.threshold:.0%})")
        print(f"{name:<28} {base_val:>12.4g} {cur_val:>12.4g} "
              f"{norm:>12.4g} {delta:>+7.1%}  {status}")

    for name in sorted(set(cur) - set(base)):
        print(f"{name:<28} {'--':>12} {cur[name][1]:>12.4g} "
              f"{'--':>12} {'--':>8}  new (no baseline)")

    print()
    if failures:
        print("FAIL:")
        for f in failures:
            print(f"  - {f}")
        return 1
    print("PASS: no throughput regression beyond threshold; "
          "simulated metrics bit-stable.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
