/**
 * @file
 * Reproduces Figure 3: barrier interval time (BIT) broken into
 * Compute and BST for the three important barriers of FMM's main
 * loop, as observed by one (fixed) thread over four consecutive
 * iterations — plus the variability statistics that justify
 * PC-indexed BIT prediction (Section 3.2).
 *
 * Measurement configuration: thrifty bookkeeping enabled but the
 * sleep-state table empty, i.e.\ a conventional machine with the
 * interval instrumentation — matching how the paper observed a
 * baseline system.
 */

#include <cmath>
#include <cstdio>
#include <map>

#include "bench_util.hh"

int
main()
{
    using namespace tb;
    harness::SystemConfig sys = harness::SystemConfig::paperDefault();
    bench::banner(
        "Figure 3 — BIT/BST variability, FMM main-loop barriers", sys);

    workloads::AppProfile app = workloads::appByName("FMM");

    thrifty::ThriftyConfig cfg = thrifty::ThriftyConfig::thrifty();
    cfg.states = power::SleepStateTable(); // measure-only: always spin
    harness::RunOptions opt;
    opt.trace = true;
    opt.customConfig = &cfg;
    const auto r = harness::runExperiment(
        sys, app, harness::ConfigKind::Thrifty, opt);

    // One arbitrary, fixed thread — "a randomly picked thread (the
    // same one in all twelve barrier instances)".
    const ThreadId tid = 13;

    // Collect per-(pc, instance) records of the chosen thread.
    std::map<std::pair<thrifty::BarrierPc, std::uint64_t>,
             thrifty::BarrierTraceEntry>
        byKey;
    std::map<thrifty::BarrierPc, std::vector<double>> bits, bsts;
    for (const auto& e : r.sync.trace) {
        if (e.tid != tid)
            continue;
        byKey[{e.pc, e.instance}] = e;
        bits[e.pc].push_back(static_cast<double>(e.bit));
        bsts[e.pc].push_back(static_cast<double>(e.stall));
    }

    // Average BIT across the twelve plotted instances normalizes the
    // bars, exactly like the figure.
    const std::vector<thrifty::BarrierPc> pcs = {0x300, 0x301, 0x302};
    const unsigned first_iter = 4, n_iters = 4;
    double avg_bit = 0.0;
    unsigned n_bars = 0;
    for (unsigned it = first_iter; it < first_iter + n_iters; ++it) {
        for (auto pc : pcs) {
            avg_bit += static_cast<double>(byKey.at({pc, it}).bit);
            ++n_bars;
        }
    }
    avg_bit /= n_bars;

    std::printf("Normalized to the average BIT (%.0f us) across the "
                "twelve instances;\nthread %u, iterations %u..%u, "
                "barriers labeled 1-3.\n\n",
                avg_bit / kMicrosecond, tid, first_iter,
                first_iter + n_iters - 1);
    std::printf("%-10s %-8s %10s %10s %10s\n", "iteration", "barrier",
                "Compute", "BST", "BIT");
    for (unsigned it = first_iter; it < first_iter + n_iters; ++it) {
        for (unsigned b = 0; b < pcs.size(); ++b) {
            const auto& e = byKey.at({pcs[b], it});
            std::printf("%-10u %-8u %10.3f %10.3f %10.3f   |", it,
                        b + 1, e.compute / avg_bit, e.stall / avg_bit,
                        e.bit / avg_bit);
            const unsigned cw = static_cast<unsigned>(
                30.0 * e.compute / avg_bit + 0.5);
            const unsigned sw = static_cast<unsigned>(
                30.0 * e.stall / avg_bit + 0.5);
            for (unsigned i = 0; i < cw; ++i)
                std::putchar('#');
            for (unsigned i = 0; i < sw; ++i)
                std::putchar('%');
            std::putchar('\n');
        }
    }
    std::printf("  legend: # Compute  %% BST\n\n");

    // The quantitative argument for PC-indexed BIT prediction: per-PC
    // BIT varies far less than per-PC BST (and than BIT across PCs).
    auto cv = [](const std::vector<double>& v) {
        double m = 0.0;
        for (double x : v)
            m += x;
        m /= v.size();
        double s2 = 0.0;
        for (double x : v)
            s2 += (x - m) * (x - m);
        return m > 0.0 ? std::sqrt(s2 / v.size()) / m : 0.0;
    };

    std::printf("Variability (coefficient of variation across all "
                "instances of each PC):\n");
    std::printf("%-8s %12s %12s\n", "barrier", "cv(BIT)", "cv(BST)");
    std::vector<double> all_bits;
    for (unsigned b = 0; b < pcs.size(); ++b) {
        std::printf("%-8u %11.2f%% %11.2f%%\n", b + 1,
                    100.0 * cv(bits[pcs[b]]),
                    100.0 * cv(bsts[pcs[b]]));
        for (double x : bits[pcs[b]])
            all_bits.push_back(x);
    }
    std::printf("%-8s %11.2f%%  (mixing PCs destroys the "
                "predictability)\n",
                "all-PCs", 100.0 * cv(all_bits));
    return 0;
}
