/**
 * @file
 * Extension bench: central vs combining-tree thrifty barrier at 64
 * nodes. The central barrier serializes 64 check-in fetch-ops at one
 * home and invalidates 63 sharers of one flag line on release — the
 * overhead floor that even perfectly balanced apps pay (see the
 * Table 2 notes in EXPERIMENTS.md). The tree spreads both across
 * groups. Measures raw barrier overhead (balanced threads: the whole
 * interval is overhead) and the thrifty story on an imbalanced
 * workload, across radices.
 */

#include <cstdio>
#include <functional>

#include "bench_util.hh"
#include "sim/random.hh"
#include "thrifty/thrifty_barrier.hh"
#include "thrifty/tree_barrier.hh"

namespace {

using namespace tb;

struct Outcome
{
    Tick span;
    double energy;
    std::uint64_t sleeps;
};

/** Run `iters` rounds; delay 0 => perfectly balanced arrivals. */
Outcome
run(unsigned radix /* 0 = central */, double skew_cv, unsigned iters,
    const thrifty::ThriftyConfig& cfg)
{
    harness::Machine m(harness::SystemConfig::paperDefault());
    const unsigned n = m.config().numNodes();
    thrifty::SyncStats stats;
    thrifty::ThriftyRuntime rt(n, cfg, stats);

    std::unique_ptr<thrifty::Barrier> barrier;
    if (radix == 0) {
        barrier = std::make_unique<thrifty::ThriftyBarrier>(
            m.eventQueue(), 0x1, rt, m.memory(), "central");
    } else {
        barrier = std::make_unique<thrifty::TreeBarrier>(
            m.eventQueue(), 0x1, rt, m.memory(), radix, "tree");
    }

    Random rng(7);
    std::vector<double> skew(n, 1.0);
    for (auto& s : skew)
        s = rng.lognormalMeanCv(1.0, skew_cv);

    std::function<void(ThreadId, unsigned)> round = [&](ThreadId tid,
                                                        unsigned it) {
        if (it >= iters)
            return;
        const Tick busy = static_cast<Tick>(
            500.0 * kMicrosecond * skew[tid]);
        m.thread(tid).compute(busy, [&, tid, it]() {
            barrier->arrive(m.thread(tid),
                            [&, tid, it]() { round(tid, it + 1); });
        });
    };
    for (ThreadId t = 0; t < n; ++t)
        round(t, 0);
    const Tick span = m.run();
    return Outcome{span, m.totalEnergy().totalEnergy(), stats.sleeps};
}

} // namespace

int
main()
{
    const harness::SystemConfig sys =
        harness::SystemConfig::paperDefault();
    tb::bench::banner(
        "Extension — central vs combining-tree thrifty barrier", sys);

    const unsigned iters = 20;
    thrifty::ThriftyConfig cfg = thrifty::ThriftyConfig::thrifty();

    std::printf("1) Pure barrier overhead (perfectly balanced "
                "threads, 64 nodes):\n");
    std::printf("   %-12s %14s\n", "barrier", "per-instance");
    {
        const Outcome central = run(0, 0.0, iters, cfg);
        const Tick base_compute = 500 * kMicrosecond * iters;
        std::printf("   %-12s %11.2f us\n", "central",
                    static_cast<double>(central.span - base_compute) /
                        iters / kMicrosecond);
        for (unsigned radix : {2u, 4u, 8u}) {
            const Outcome tree = run(radix, 0.0, iters, cfg);
            char label[16];
            std::snprintf(label, sizeof(label), "tree r=%u", radix);
            std::printf("   %-12s %11.2f us\n", label,
                        static_cast<double>(tree.span - base_compute) /
                            iters / kMicrosecond);
            std::fflush(stdout);
        }
    }

    std::printf("\n2) Thrifty story on an imbalanced workload "
                "(skew cv 0.25):\n");
    std::printf("   %-12s %10s %12s %10s\n", "barrier", "time",
                "energy", "sleeps");
    thrifty::ThriftyConfig spin = cfg;
    spin.states = power::SleepStateTable();
    const Outcome base = run(0, 0.25, iters, spin); // central, spin
    std::printf("   %-12s %9.2f%% %11.2fJ %10s\n", "central-spin",
                100.0, base.energy, "-");
    for (unsigned radix : {0u, 4u}) {
        const Outcome t = run(radix, 0.25, iters, cfg);
        std::printf("   %-12s %9.2f%% %11.2fJ %10llu\n",
                    radix == 0 ? "central-T" : "tree4-T",
                    100.0 * static_cast<double>(t.span) /
                        static_cast<double>(base.span),
                    t.energy,
                    static_cast<unsigned long long>(t.sleeps));
        std::fflush(stdout);
    }

    std::printf("\nThe tree cuts the fixed barrier overhead (check-in "
                "serialization + release\nfan-out); thrifty sleeping "
                "composes with it unchanged — waiters at every tree\n"
                "level predict and sleep on their own group's flag.\n");
    return 0;
}
