/**
 * @file
 * Scaling study (ours): how the thrifty barrier's savings move with
 * machine size. Barrier imbalance grows with the thread count (the
 * stall of an average thread is set by the *maximum* of N compute
 * draws), so larger machines waste more spin energy and the thrifty
 * barrier recovers more — while the prediction problem stays exactly
 * as easy (BIT remains thread-independent).
 */

#include <cstdio>

#include "bench_util.hh"

int
main()
{
    using namespace tb;
    tb::bench::banner("Scaling — savings vs machine size",
                      harness::SystemConfig::paperDefault());

    workloads::AppProfile app = workloads::appByName("Barnes");

    std::printf("%8s %12s %10s %10s %10s\n", "nodes", "imbalance",
                "T energy", "T time", "sleeps");
    for (unsigned dim : {2u, 3u, 4u, 5u, 6u}) {
        harness::SystemConfig sys = harness::SystemConfig::small(dim);
        const auto base = harness::runExperiment(
            sys, app, harness::ConfigKind::Baseline);
        const auto t = harness::runExperiment(
            sys, app, harness::ConfigKind::Thrifty);
        std::printf("%8u %11.2f%% %9.1f%% %9.2f%% %10llu\n",
                    sys.numNodes(), 100.0 * base.imbalance(),
                    100.0 * t.totalEnergy() / base.totalEnergy(),
                    100.0 * static_cast<double>(t.execTime) /
                        static_cast<double>(base.execTime),
                    static_cast<unsigned long long>(t.sync.sleeps));
        std::fflush(stdout);
    }

    std::printf("\nImbalance (and with it the recoverable spin "
                "energy) grows with the machine:\nenergy-aware "
                "synchronization matters more, not less, at scale.\n");
    return 0;
}
