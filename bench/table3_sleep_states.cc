/**
 * @file
 * Reproduces Table 3: the low-power sleep states, their derived
 * absolute powers under the TDPmax normalization, and a demonstration
 * of the sleep() library call's best-fit selection.
 */

#include <cstdio>

#include "bench_util.hh"
#include "power/sleep_states.hh"

int
main()
{
    using namespace tb;
    const harness::SystemConfig sys =
        harness::SystemConfig::paperDefault();
    bench::banner("Table 3 — low-power sleep states", sys);

    const power::SleepStateTable table =
        power::SleepStateTable::paperDefault();
    const power::PowerParams& pp = sys.power;

    std::printf("%-14s %10s %12s %7s %8s %10s\n", "State",
                "P.savings", "Tr.latency", "Snoop?", "V.red.?",
                "watts");
    for (std::size_t i = 0; i < table.size(); ++i) {
        const power::SleepState& s = table.at(i);
        std::printf("%-14s %9.1f%% %9llu us %7s %8s %9.2fW\n",
                    s.name.c_str(), 100.0 * (1.0 - s.powerFraction),
                    static_cast<unsigned long long>(
                        s.transitionLatency / kMicrosecond),
                    s.snoopable ? "Yes" : "No",
                    s.voltageReduced ? "Yes" : "No",
                    pp.sleepWatts(s.powerFraction));
    }
    std::printf("\nFor reference: active compute %.2fW, spinloop "
                "%.2fW (85%% of active).\n\n",
                pp.activeWatts(), pp.spinWatts());

    std::printf("sleep() best-fit selection vs predicted stall:\n");
    for (Tick stall :
         {Tick{5 * kMicrosecond}, Tick{20 * kMicrosecond},
          Tick{30 * kMicrosecond}, Tick{50 * kMicrosecond},
          Tick{70 * kMicrosecond}, Tick{200 * kMicrosecond},
          Tick{2 * kMillisecond}}) {
        const power::SleepState* s = table.select(stall);
        std::printf("  stall %8llu us -> %s\n",
                    static_cast<unsigned long long>(stall /
                                                    kMicrosecond),
                    s ? s->name.c_str() : "(spin: no state fits)");
    }
    return 0;
}
