/**
 * @file
 * Ablation of the underprediction filter (Section 3.4.2): barrier
 * intervals occasionally stretched by OS interference (a context
 * switch or I/O preempts one thread). The last arriver detects the
 * inordinate interval and skips the predictor update, so the next
 * instance still uses the clean, shorter prediction. Without the
 * filter the spiked sample poisons the table: the following instance
 * oversleeps, wakes late through the external mechanism, and the
 * overprediction cutoff then disables prediction permanently —
 * sacrificing all future savings at those barriers.
 */

#include <cstdio>

#include "bench_util.hh"

int
main()
{
    using namespace tb;
    const harness::SystemConfig sys =
        harness::SystemConfig::paperDefault();
    bench::banner(
        "Ablation — underprediction filter under OS interference",
        sys);

    // Short-interval barriers (where a 35us-late wake-up is a large
    // fraction of the interval) with occasional one-thread preemption
    // spikes: a poisoned prediction makes the next instance oversleep
    // badly enough to trip the permanent cutoff.
    workloads::AppProfile app;
    app.name = "short+OS";
    for (unsigned i = 0; i < 4; ++i) {
        workloads::PhaseSpec p;
        p.pc = 0xf00 + i;
        p.meanCompute = (150 + 30 * i) * kMicrosecond;
        p.imbalanceCv = 0.06;
        p.memAccesses = 16;
        p.spikeProbability = 0.10; // ~10% of instances disturbed
        p.spikeFactor = 40.0;
        app.loop.push_back(p);
    }
    app.iterations = 40;

    const auto base =
        harness::runExperiment(sys, app, harness::ConfigKind::Baseline);

    std::printf("%-18s %9s %9s %10s %9s %9s\n", "filter", "time",
                "energy", "filtered", "cutoffs", "sleeps");
    for (double filter : {-1.0, 3.0, 10.0}) {
        thrifty::ThriftyConfig cfg = thrifty::ThriftyConfig::thrifty();
        cfg.underpredictionFilter = filter;
        harness::RunOptions opt;
        opt.customConfig = &cfg;
        const auto r = harness::runExperiment(
            sys, app, harness::ConfigKind::Thrifty, opt);
        char label[32];
        if (filter <= 0)
            std::snprintf(label, sizeof(label), "disabled");
        else
            std::snprintf(label, sizeof(label), ">%.0fx stored BIT",
                          filter);
        std::printf("%-18s %8.1f%% %8.1f%% %10llu %9llu %9llu\n",
                    label,
                    100.0 * static_cast<double>(r.execTime) /
                        static_cast<double>(base.execTime),
                    100.0 * r.totalEnergy() / base.totalEnergy(),
                    static_cast<unsigned long long>(
                        r.sync.filteredUpdates),
                    static_cast<unsigned long long>(r.sync.cutoffs),
                    static_cast<unsigned long long>(r.sync.sleeps));
        std::fflush(stdout);
    }

    std::printf("\nPaper reference (Section 3.4.2): barrier intervals "
                "disturbed by context\nswitches or I/O 'can be "
                "trivially detected by the last thread ... by\n"
                "observing an inordinate increase in the barrier "
                "interval time. In this case,\nthe barrier interval "
                "time is not updated in the prediction table.'\n");
    return 0;
}
