/**
 * @file
 * Ablation of the coherence protocol's forwarding style: the
 * hub-and-spoke simplification documented in DESIGN.md §6 (owner
 * replies through the home, our default) versus DASH-style three-hop
 * forwarding (owner replies directly to the requester, as in the
 * paper's reference protocol). Verifies that the simplification does
 * not distort the thrifty-barrier results, and quantifies the raw
 * intervention-latency difference.
 */

#include <cstdio>
#include <optional>

#include "bench_util.hh"
#include "mem/memory_system.hh"

namespace {

using namespace tb;

Tick
dirtyMissLatency(bool three_hop)
{
    EventQueue eq;
    noc::NetworkConfig nc;
    nc.dimension = 6;
    noc::Network net(eq, nc);
    mem::MemoryConfig mc;
    mc.threeHopForwarding = three_hop;
    mem::MemorySystem mem(eq, net, mc);

    // requester 1, owner 21, home = wherever this page landed; with
    // 64 nodes all three are typically distinct and distant.
    Addr a = mem.addressMap().allocShared(4096);
    bool stored = false;
    mem.controller(21).store(a, 7, [&]() { stored = true; });
    eq.run();

    const Tick start = eq.now();
    std::optional<Tick> done;
    mem.controller(1).load(a, [&](std::uint64_t) { done = eq.now(); });
    eq.run();
    return stored && done ? *done - start : 0;
}

} // namespace

int
main()
{
    using namespace tb::harness;
    const SystemConfig base_sys = SystemConfig::paperDefault();
    tb::bench::banner(
        "Ablation — directory forwarding: hub-and-spoke vs 3-hop",
        base_sys);

    std::printf("Remote dirty-miss latency (64 nodes):\n");
    std::printf("  hub-and-spoke : %6.0f ns\n",
                static_cast<double>(dirtyMissLatency(false)) /
                    tb::kNanosecond);
    std::printf("  three-hop     : %6.0f ns\n\n",
                static_cast<double>(dirtyMissLatency(true)) /
                    tb::kNanosecond);

    std::printf("Thrifty-barrier results under both protocols:\n");
    std::printf("%-10s %-14s %10s %10s\n", "app", "protocol",
                "T energy", "T time");
    for (const char* name : {"Volrend", "FMM", "Ocean"}) {
        const workloads::AppProfile app = workloads::appByName(name);
        for (bool three_hop : {false, true}) {
            SystemConfig sys = base_sys;
            sys.memory.threeHopForwarding = three_hop;
            const auto base =
                runExperiment(sys, app, ConfigKind::Baseline);
            const auto t =
                runExperiment(sys, app, ConfigKind::Thrifty);
            std::printf("%-10s %-14s %9.1f%% %9.2f%%\n",
                        three_hop ? "" : name,
                        three_hop ? "three-hop" : "hub-and-spoke",
                        100.0 * t.totalEnergy() / base.totalEnergy(),
                        100.0 * static_cast<double>(t.execTime) /
                            static_cast<double>(base.execTime));
            std::fflush(stdout);
        }
    }

    std::printf("\nThe forwarding style moves intervention latency "
                "by one traversal but leaves\nthe thrifty barrier's "
                "energy/performance story unchanged — the "
                "hub-and-spoke\nsimplification (DESIGN.md §6) is "
                "sound for this study.\n");
    return 0;
}
