/**
 * @file
 * Shared plumbing for the table/figure reproduction binaries.
 */

#ifndef TB_BENCH_BENCH_UTIL_HH_
#define TB_BENCH_BENCH_UTIL_HH_

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "harness/campaign_cli.hh"
#include "harness/campaign_supervisor.hh"
#include "harness/experiment.hh"
#include "harness/obs_capture.hh"
#include "harness/result_serde.hh"
#include "harness/parallel_runner.hh"
#include "harness/report.hh"
#include "obs/json_writer.hh"
#include "svc/distributed.hh"
#include "workloads/app_profile.hh"

namespace tb {
namespace bench {

/** The five configurations in figure order (B, H, O, T, I). */
inline std::vector<harness::ConfigKind>
figureConfigs()
{
    return {harness::ConfigKind::Baseline,
            harness::ConfigKind::ThriftyHalt,
            harness::ConfigKind::OracleHalt,
            harness::ConfigKind::Thrifty, harness::ConfigKind::Ideal};
}

/** Run every figure configuration of @p app on @p sys. */
inline std::vector<harness::ExperimentResult>
runAllConfigs(const harness::SystemConfig& sys,
              const workloads::AppProfile& app)
{
    std::vector<harness::ExperimentResult> out;
    for (harness::ConfigKind k : figureConfigs())
        out.push_back(harness::runExperiment(sys, app, k));
    return out;
}

/**
 * Run the full (app x configuration) matrix, sharding the independent
 * simulations across @p jobs host threads. Results come back grouped
 * per app in figure order — identical to looping runAllConfigs over
 * the apps serially, regardless of jobs.
 */
inline std::vector<std::vector<harness::ExperimentResult>>
runAppConfigMatrix(const harness::SystemConfig& sys,
                   const std::vector<workloads::AppProfile>& apps,
                   unsigned jobs)
{
    const std::vector<harness::ConfigKind> kinds = figureConfigs();
    std::vector<std::vector<harness::ExperimentResult>> groups(
        apps.size());
    for (auto& g : groups)
        g.resize(kinds.size());
    const harness::ParallelCampaignRunner runner(jobs);
    runner.run(apps.size() * kinds.size(), [&](std::size_t i) {
        const std::size_t a = i / kinds.size();
        const std::size_t k = i % kinds.size();
        groups[a][k] = harness::runExperiment(sys, apps[a], kinds[k]);
    });
    return groups;
}

/**
 * The (app x configuration) matrix as a supervised PointTask. The
 * closures reference @p sys, @p apps, @p opts and @p capture — all
 * must outlive the returned task. The config hash covers everything
 * that shapes a point's result, so journal and result-cache entries
 * never satisfy a differently-configured campaign.
 */
inline harness::PointTask
matrixPointTask(const harness::SystemConfig& sys,
                const std::vector<workloads::AppProfile>& apps,
                const harness::CampaignOptions& opts,
                const char* prog,
                harness::ObsCapture* capture = nullptr)
{
    const std::vector<harness::ConfigKind> kinds = figureConfigs();
    harness::PointTask task;
    task.run = [&sys, &apps, &opts, capture, kinds](std::size_t i) {
        const std::size_t a = i / kinds.size();
        const std::size_t k = i % kinds.size();
        harness::RunOptions ro;
        // Like --jobs, --sim-threads never changes a point's result
        // (parallel_sim.hh), so it stays out of task.key below. The
        // partition count selects the simulation plan and therefore
        // DOES enter the key.
        ro.simThreads = opts.simThreads;
        ro.simPartitions = opts.simPartitions;
        harness::ObsCapture::PointScope scope;
        if (capture)
            capture->arm(i, &ro, &scope);
        const harness::ExperimentResult r =
            harness::runExperiment(sys, apps[a], kinds[k], ro);
        if (capture) {
            capture->deposit(i, r, &scope,
                             apps[a].name + "/" +
                                 harness::configName(kinds[k]));
        }
        return harness::serializeResult(r);
    };
    task.key = [&sys, &apps, &opts, prog, kinds](std::size_t i) {
        const std::size_t a = i / kinds.size();
        const std::size_t k = i % kinds.size();
        std::ostringstream id;
        id << prog << '|' << apps[a].name << '|'
           << harness::configName(kinds[k]) << "|dim="
           << sys.noc.dimension << "|seed=" << sys.seed
           << "|three=" << sys.memory.threeHopForwarding
           << "|iters=" << apps[a].iterations;
        // 0 means "the default plan for this node count" and hashes
        // distinctly from an explicit count on purpose: cheap and
        // always conservative.
        if (opts.simPartitions != 0)
            id << "|parts=" << opts.simPartitions;
        return harness::fnv1a64(id.str());
    };
    task.seed = [&sys](std::size_t) { return sys.seed; };
    task.repro = [&opts, prog](std::size_t i) {
        return std::string(prog) + " --only-point " +
               std::to_string(i) + opts.reproFlags();
    };
    return task;
}

/**
 * Supervised variant of runAppConfigMatrix for the figure campaigns:
 * the same (app x configuration) point space run under whatever
 * execution mode the command line selected — the local
 * CampaignSupervisor by default, the distributed work-queue daemon
 * with --serve (docs/ROBUSTNESS.md, "Distributed campaigns") — with
 * each point's full ExperimentResult serialized losslessly so it
 * survives --isolate's process boundary, the journal's disk boundary
 * and the daemon's socket boundary alike. @p groups is filled exactly
 * like runAppConfigMatrix for every resolved point; consult the
 * returned run's report before rendering — failed points leave
 * default-constructed entries. A non-null @p capture records each
 * in-process point's trace and stats (--trace / --stats-json).
 */
inline svc::CampaignRun
runAppConfigMatrixSupervised(
    const harness::SystemConfig& sys,
    const std::vector<workloads::AppProfile>& apps,
    const harness::CampaignOptions& opts, const char* prog,
    harness::CampaignJournal* journal,
    std::vector<std::vector<harness::ExperimentResult>>* groups,
    harness::ObsCapture* capture = nullptr)
{
    const std::vector<harness::ConfigKind> kinds = figureConfigs();
    const std::size_t count = apps.size() * kinds.size();
    const harness::PointTask task =
        matrixPointTask(sys, apps, opts, prog, capture);

    svc::CampaignRun run =
        svc::runCampaignPoints(opts, count, task, journal, prog);

    groups->assign(apps.size(),
                   std::vector<harness::ExperimentResult>(
                       kinds.size()));
    for (std::size_t i = 0; i < count; ++i) {
        if (run.results[i].empty())
            continue;
        (*groups)[i / kinds.size()][i % kinds.size()] =
            harness::deserializeResult(run.results[i]);
    }
    return run;
}

/**
 * Worker-mode entry of the figure campaigns (--worker ADDR): lease
 * matrix points from the daemon until it reports Done. Returns the
 * process exit code; the caller must not print the banner or touch
 * artifact files in this mode — the daemon owns all campaign output.
 */
inline int
runAppConfigMatrixWorker(
    const harness::SystemConfig& sys,
    const std::vector<workloads::AppProfile>& apps,
    const harness::CampaignOptions& opts, const char* prog)
{
    const harness::PointTask task =
        matrixPointTask(sys, apps, opts, prog);
    return svc::runCampaignWorker(
        opts, apps.size() * figureConfigs().size(), task);
}

/** One point of a robustness campaign (seeds or faults sweep). */
struct CampaignPoint
{
    std::string campaign;  ///< "seeds" or "faults"
    unsigned dim = 0;      ///< hypercube dimension (2^dim nodes)
    std::uint64_t seed = 0;
    std::string protocol;  ///< "hub" or "three-hop"
    std::string wakeup;    ///< wake-up policy ("" = preset default)
};

/**
 * Emit one campaign result as a single JSON line. Both robustness
 * campaigns (seed sweep, fault sweep) share this shape, so their
 * outputs are directly comparable: grep for `"campaign"` and compare
 * any metric across sweeps.
 */
inline void
printCampaignJson(std::ostream& os, const CampaignPoint& p,
                  const harness::ExperimentResult& r)
{
    obs::JsonWriter w(os);
    w.beginObject();
    w.field("campaign", p.campaign)
        .field("app", r.app)
        .field("config", r.config)
        .field("dim", p.dim)
        .field("seed", p.seed)
        .field("protocol", p.protocol);
    if (!p.wakeup.empty())
        w.field("wakeup", p.wakeup);
    w.field("exec_time_s", ticksToSeconds(r.execTime))
        .field("energy_j", r.totalEnergy())
        .field("sleeps", r.sync.sleeps)
        .field("watchdog_fires", r.sync.watchdogFires)
        .field("residual_escalations", r.sync.residualEscalations)
        .field("quarantines", r.sync.quarantines)
        .field("fallback_episodes", r.sync.fallbackEpisodes);
    if (!r.faultSpec.empty()) {
        w.field("faults_injected", r.faultsInjected())
            .field("spec", r.faultSpec);
    }
    w.endObject();
    os << '\n';
}

/**
 * One metric of the simulator-core microbenchmark campaign, in the
 * same one-JSON-object-per-line shape as printCampaignJson so all
 * campaign outputs stay greppable/comparable the same way. Throughput
 * metrics (unit ending in "/s") are host-dependent; "ticks"-unit
 * metrics are simulated quantities and must be bit-stable per seed.
 */
struct MicroMetric
{
    std::string benchmark; ///< e.g. "eq_schedule_fire"
    std::string unit;      ///< "events/s", "txns/s", "ticks", ...
    double value = 0.0;
    std::uint64_t ops = 0; ///< operations contributing to the value
    double wallSeconds = 0.0;
    /**
     * Host worker threads the metric was measured with (PDES
     * benchmarks); 0 = thread-independent metric, field omitted.
     * compare_bench.py only enforces absolute speedup floors on
     * lines that actually ran multi-threaded (threads >= 4).
     */
    unsigned threads = 0;
};

/** Emit one microbenchmark metric as a single campaign-JSON line. */
inline void
printMicroJson(std::ostream& os, const MicroMetric& m)
{
    obs::JsonWriter w(os);
    w.beginObject();
    w.field("campaign", "simcore")
        .field("benchmark", m.benchmark)
        .field("unit", m.unit)
        .field("value", m.value)
        .field("ops", m.ops)
        .field("wall_s", m.wallSeconds);
    if (m.threads != 0)
        w.field("threads", m.threads);
    w.endObject();
    os << '\n';
}

/**
 * Extract an unsigned integer field (`"key": N`) from one of our own
 * campaign-JSON lines; 0 when absent. Campaign summaries aggregate
 * counters from result lines this way so journaled (replayed) points
 * count exactly like freshly-run ones.
 */
inline std::uint64_t
extractJsonU64(const std::string& line, const std::string& key)
{
    const std::string pat = "\"" + key + "\": ";
    const std::size_t at = line.find(pat);
    if (at == std::string::npos)
        return 0;
    return std::strtoull(line.c_str() + at + pat.size(), nullptr, 10);
}

/**
 * Emit a supervised campaign's epilogue: the failure manifest (repro
 * command per failed point) to stderr plus optional atomic artifact
 * files, and map the report to the process exit code. @p artifact is
 * the campaign's canonical deterministic output — already printed to
 * stdout by the caller — which `--out` persists via atomic rename so
 * a resumed campaign can be diffed byte-for-byte against a straight
 * run. The supervisor counter line (kind "supervisor") goes to stdout
 * only: it legitimately differs between a straight and a resumed run
 * (journaled/retries counts), so it must not pollute the artifact.
 * A distributed campaign adds its daemon counters (@p serviceSummary,
 * kind "service") to stdout and its crash ledger (@p ledgerJsonl,
 * kind "crash-ledger") to the manifest — the manifest file persists
 * whenever the ledger is non-empty, even for a campaign that
 * ultimately succeeded, because "a worker died and the queue
 * recovered" is exactly what the ledger exists to record.
 */
inline int
finishSupervisedCampaign(const harness::CampaignOptions& opts,
                         const harness::SupervisorReport& report,
                         const std::string& campaign,
                         const std::string& artifact,
                         const harness::ObsCapture* capture = nullptr,
                         const std::string& serviceSummary = "",
                         const std::string& ledgerJsonl = "")
{
    std::cout << report.summaryJson(campaign);
    if (!serviceSummary.empty())
        std::cout << serviceSummary;
    std::cout << std::flush;
    if (capture && capture->statsEnabled())
        std::cout << capture->predictionSummaryJson() << std::flush;
    if (capture)
        capture->writeFiles();

    std::ostringstream manifest;
    report.writeManifest(manifest, campaign);
    manifest << ledgerJsonl;
    if (!manifest.str().empty())
        std::cerr << manifest.str() << std::flush;
    if (!opts.manifestPath.empty()) {
        if (!report.ok() || !ledgerJsonl.empty())
            harness::writeFileAtomic(opts.manifestPath,
                                     manifest.str());
        else
            std::remove(opts.manifestPath.c_str());
    }
    if (!opts.outPath.empty() && !report.interrupted)
        harness::writeFileAtomic(opts.outPath, artifact);

    if (report.interrupted)
        return 130;
    return report.failures() == 0 ? 0 : 1;
}

/** finishSupervisedCampaign over a full CampaignRun (any mode). */
inline int
finishSupervisedCampaign(const harness::CampaignOptions& opts,
                         const svc::CampaignRun& run,
                         const std::string& campaign,
                         const std::string& artifact,
                         const harness::ObsCapture* capture = nullptr)
{
    return finishSupervisedCampaign(opts, run.report, campaign,
                                    artifact, capture,
                                    run.serviceSummary,
                                    run.ledgerJsonl);
}

/** Standard banner for every bench binary. */
inline void
banner(const std::string& title, const harness::SystemConfig& sys)
{
    std::cout << "==============================================="
                 "=====================\n"
              << title << "\n"
              << "The Thrifty Barrier (HPCA 2004) reproduction\n"
              << "==============================================="
                 "=====================\n";
    harness::report::printArchitecture(std::cout, sys);
    std::cout << '\n';
}

} // namespace bench
} // namespace tb

#endif // TB_BENCH_BENCH_UTIL_HH_
