/**
 * @file
 * Shared plumbing for the table/figure reproduction binaries.
 */

#ifndef TB_BENCH_BENCH_UTIL_HH_
#define TB_BENCH_BENCH_UTIL_HH_

#include <iostream>
#include <string>
#include <vector>

#include "harness/experiment.hh"
#include "harness/report.hh"
#include "workloads/app_profile.hh"

namespace tb {
namespace bench {

/** The five configurations in figure order (B, H, O, T, I). */
inline std::vector<harness::ConfigKind>
figureConfigs()
{
    return {harness::ConfigKind::Baseline,
            harness::ConfigKind::ThriftyHalt,
            harness::ConfigKind::OracleHalt,
            harness::ConfigKind::Thrifty, harness::ConfigKind::Ideal};
}

/** Run every figure configuration of @p app on @p sys. */
inline std::vector<harness::ExperimentResult>
runAllConfigs(const harness::SystemConfig& sys,
              const workloads::AppProfile& app)
{
    std::vector<harness::ExperimentResult> out;
    for (harness::ConfigKind k : figureConfigs())
        out.push_back(harness::runExperiment(sys, app, k));
    return out;
}

/** One point of a robustness campaign (seeds or faults sweep). */
struct CampaignPoint
{
    std::string campaign;  ///< "seeds" or "faults"
    unsigned dim = 0;      ///< hypercube dimension (2^dim nodes)
    std::uint64_t seed = 0;
    std::string protocol;  ///< "hub" or "three-hop"
    std::string wakeup;    ///< wake-up policy ("" = preset default)
};

/**
 * Emit one campaign result as a single JSON line. Both robustness
 * campaigns (seed sweep, fault sweep) share this shape, so their
 * outputs are directly comparable: grep for `"campaign"` and compare
 * any metric across sweeps.
 */
inline void
printCampaignJson(std::ostream& os, const CampaignPoint& p,
                  const harness::ExperimentResult& r)
{
    os << "{\"campaign\": \"" << p.campaign << "\", \"app\": \""
       << r.app << "\", \"config\": \"" << r.config
       << "\", \"dim\": " << p.dim << ", \"seed\": " << p.seed
       << ", \"protocol\": \"" << p.protocol << "\"";
    if (!p.wakeup.empty())
        os << ", \"wakeup\": \"" << p.wakeup << "\"";
    os << ", \"exec_time_s\": " << ticksToSeconds(r.execTime)
       << ", \"energy_j\": " << r.totalEnergy()
       << ", \"sleeps\": " << r.sync.sleeps
       << ", \"watchdog_fires\": " << r.sync.watchdogFires
       << ", \"residual_escalations\": " << r.sync.residualEscalations
       << ", \"quarantines\": " << r.sync.quarantines
       << ", \"fallback_episodes\": " << r.sync.fallbackEpisodes;
    if (!r.faultSpec.empty()) {
        os << ", \"faults_injected\": " << r.faultsInjected()
           << ", \"spec\": \"" << r.faultSpec << "\"";
    }
    os << "}\n";
}

/** Standard banner for every bench binary. */
inline void
banner(const std::string& title, const harness::SystemConfig& sys)
{
    std::cout << "==============================================="
                 "=====================\n"
              << title << "\n"
              << "The Thrifty Barrier (HPCA 2004) reproduction\n"
              << "==============================================="
                 "=====================\n";
    harness::report::printArchitecture(std::cout, sys);
    std::cout << '\n';
}

} // namespace bench
} // namespace tb

#endif // TB_BENCH_BENCH_UTIL_HH_
