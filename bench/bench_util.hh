/**
 * @file
 * Shared plumbing for the table/figure reproduction binaries.
 */

#ifndef TB_BENCH_BENCH_UTIL_HH_
#define TB_BENCH_BENCH_UTIL_HH_

#include <iostream>
#include <string>
#include <vector>

#include "harness/experiment.hh"
#include "harness/report.hh"
#include "workloads/app_profile.hh"

namespace tb {
namespace bench {

/** The five configurations in figure order (B, H, O, T, I). */
inline std::vector<harness::ConfigKind>
figureConfigs()
{
    return {harness::ConfigKind::Baseline,
            harness::ConfigKind::ThriftyHalt,
            harness::ConfigKind::OracleHalt,
            harness::ConfigKind::Thrifty, harness::ConfigKind::Ideal};
}

/** Run every figure configuration of @p app on @p sys. */
inline std::vector<harness::ExperimentResult>
runAllConfigs(const harness::SystemConfig& sys,
              const workloads::AppProfile& app)
{
    std::vector<harness::ExperimentResult> out;
    for (harness::ConfigKind k : figureConfigs())
        out.push_back(harness::runExperiment(sys, app, k));
    return out;
}

/** Standard banner for every bench binary. */
inline void
banner(const std::string& title, const harness::SystemConfig& sys)
{
    std::cout << "==============================================="
                 "=====================\n"
              << title << "\n"
              << "The Thrifty Barrier (HPCA 2004) reproduction\n"
              << "==============================================="
                 "=====================\n";
    harness::report::printArchitecture(std::cout, sys);
    std::cout << '\n';
}

} // namespace bench
} // namespace tb

#endif // TB_BENCH_BENCH_UTIL_HH_
