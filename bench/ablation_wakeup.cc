/**
 * @file
 * Ablation of the wake-up mechanism (Section 3.3): external-only
 * (invalidation of the flag; guarantees late wake-up by one upward
 * transition), internal-only (timer; unbounded lateness under
 * overprediction), and the paper's hybrid.
 */

#include <cstdio>

#include "bench_util.hh"

int
main()
{
    using namespace tb;
    const harness::SystemConfig sys =
        harness::SystemConfig::paperDefault();
    bench::banner("Ablation — wake-up policy (Section 3.3)", sys);

    const thrifty::WakeupPolicy policies[] = {
        thrifty::WakeupPolicy::External,
        thrifty::WakeupPolicy::Internal,
        thrifty::WakeupPolicy::Hybrid,
    };

    for (const char* name :
         {"Volrend", "FMM", "Water-Nsq", "Ocean"}) {
        const workloads::AppProfile app = workloads::appByName(name);
        const auto base = harness::runExperiment(
            sys, app, harness::ConfigKind::Baseline);
        std::printf("%s\n", name);
        std::printf("  %-10s %9s %9s %11s %12s\n", "policy", "time",
                    "energy", "residual", "cutoffs");
        for (auto p : policies) {
            thrifty::ThriftyConfig cfg =
                thrifty::ThriftyConfig::thrifty();
            cfg.wakeup = p;
            harness::RunOptions opt;
            opt.customConfig = &cfg;
            const auto r = harness::runExperiment(
                sys, app, harness::ConfigKind::Thrifty, opt);
            const double resid_us =
                r.sync.residualSpins
                    ? r.sync.residualSpinTicks /
                          r.sync.residualSpins / kMicrosecond
                    : 0.0;
            std::printf("  %-10s %8.1f%% %8.1f%% %8.1fus/wk %12llu\n",
                        thrifty::wakeupPolicyName(p),
                        100.0 * static_cast<double>(r.execTime) /
                            static_cast<double>(base.execTime),
                        100.0 * r.totalEnergy() / base.totalEnergy(),
                        resid_us,
                        static_cast<unsigned long long>(
                            r.sync.cutoffs));
            std::fflush(stdout);
        }
        std::printf("\n");
    }
    std::printf("Expected shape: external pays the full upward "
                "transition on the critical\npath (slower); internal "
                "risks late wake-ups on swinging intervals (Ocean);\n"
                "hybrid gets the best of both (Section 3.3.2).\n");
    return 0;
}
