/**
 * @file
 * Ablation of sleep-state availability: {Halt}, {Halt, Sleep2},
 * {Halt, Sleep2, Sleep3}. Demonstrates the paper's claim that
 * exploiting multiple (deeper) sleep states is what pushes savings
 * beyond Thrifty-Halt's ceiling — most dramatically on Volrend.
 */

#include <cstdio>

#include "bench_util.hh"

int
main()
{
    using namespace tb;
    const harness::SystemConfig sys =
        harness::SystemConfig::paperDefault();
    bench::banner("Ablation — available sleep states", sys);

    struct TableChoice
    {
        const char* label;
        power::SleepStateTable table;
    };
    const TableChoice tables[] = {
        {"Halt only", power::SleepStateTable::haltOnly()},
        {"Halt+Sleep2", power::SleepStateTable::haltPlusSleep2()},
        {"all three", power::SleepStateTable::paperDefault()},
    };

    for (const char* name :
         {"Volrend", "Radix", "FMM", "Barnes", "Water-Nsq"}) {
        const workloads::AppProfile app = workloads::appByName(name);
        const auto base = harness::runExperiment(
            sys, app, harness::ConfigKind::Baseline);
        std::printf("%s\n", name);
        std::printf("  %-12s %9s %9s\n", "states", "time", "energy");
        for (const auto& [label, table] : tables) {
            thrifty::ThriftyConfig cfg =
                thrifty::ThriftyConfig::thrifty();
            cfg.states = table;
            harness::RunOptions opt;
            opt.customConfig = &cfg;
            const auto r = harness::runExperiment(
                sys, app, harness::ConfigKind::Thrifty, opt);
            std::printf("  %-12s %8.1f%% %8.1f%%\n", label,
                        100.0 * static_cast<double>(r.execTime) /
                            static_cast<double>(base.execTime),
                        100.0 * r.totalEnergy() / base.totalEnergy());
            std::fflush(stdout);
        }
        std::printf("\n");
    }
    std::printf("Paper reference: 'exploiting multiple sleep states "
                "is indeed beneficial'; the\napplication benefiting "
                "most from deeper states is Volrend, whose large\n"
                "intervals and imbalance let Thrifty match Ideal "
                "(Section 5.2).\n");
    return 0;
}
