/**
 * @file
 * Google-benchmark microbenchmarks of the simulator's primitives:
 * event queue throughput, cache-array operations, predictor lookups,
 * network sends, coherent accesses, and a full barrier round. These
 * gate the host-side cost of the simulation itself (the figure
 * benches run tens of millions of events).
 */

#include <benchmark/benchmark.h>

#include "harness/machine.hh"
#include "mem/cache_array.hh"
#include "mem/memory_system.hh"
#include "noc/network.hh"
#include "sim/event_queue.hh"
#include "sim/random.hh"
#include "thrifty/conventional_barrier.hh"
#include "thrifty/thrifty_barrier.hh"

namespace {

using namespace tb;

void
BM_EventQueueScheduleRun(benchmark::State& state)
{
    EventQueue eq;
    int sink = 0;
    for (auto _ : state) {
        for (int i = 0; i < 64; ++i)
            eq.scheduleIn(static_cast<Tick>(i * 13 % 97),
                          [&]() { ++sink; });
        eq.run();
    }
    benchmark::DoNotOptimize(sink);
    state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_EventQueueScheduleRun);

void
BM_EventQueueCancel(benchmark::State& state)
{
    EventQueue eq;
    for (auto _ : state) {
        EventHandle h = eq.scheduleIn(1000, []() {});
        h.cancel();
        eq.run();
    }
}
BENCHMARK(BM_EventQueueCancel);

void
BM_CacheArrayLookup(benchmark::State& state)
{
    mem::CacheArray c(mem::CacheGeometry{64 * 1024, 8, 64});
    for (unsigned i = 0; i < 512; ++i) {
        const Addr a =
            ((static_cast<Addr>(i) * 64 * 17 + (i << 13)) % (1 << 20)) &
            ~Addr{63};
        if (!c.find(a))
            c.insert(a, mem::LineState::Shared);
    }
    Addr probe = 0;
    for (auto _ : state) {
        probe = (probe + 4096 + 64) & ((1 << 20) - 1);
        benchmark::DoNotOptimize(c.find(probe & ~Addr{63}));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheArrayLookup);

void
BM_CacheArrayInsertEvict(benchmark::State& state)
{
    mem::CacheArray c(mem::CacheGeometry{16 * 1024, 2, 64});
    Addr a = 0;
    for (auto _ : state) {
        a += 64;
        if (!c.find(a))
            benchmark::DoNotOptimize(
                c.insert(a, mem::LineState::Modified));
    }
}
BENCHMARK(BM_CacheArrayInsertEvict);

void
BM_PredictorLookupUpdate(benchmark::State& state)
{
    thrifty::LastValuePredictor p;
    for (unsigned pc = 0; pc < 64; ++pc)
        p.update(pc, pc * 1000);
    unsigned pc = 0;
    for (auto _ : state) {
        pc = (pc + 1) % 64;
        benchmark::DoNotOptimize(p.predict(pc, pc % 64));
        p.update(pc, pc * 999);
    }
}
BENCHMARK(BM_PredictorLookupUpdate);

void
BM_NetworkSend(benchmark::State& state)
{
    EventQueue eq;
    noc::NetworkConfig cfg;
    cfg.dimension = 6;
    noc::Network net(eq, cfg);
    Random rng(3);
    for (auto _ : state) {
        const NodeId s = static_cast<NodeId>(rng.uniformInt(64));
        const NodeId d = static_cast<NodeId>(rng.uniformInt(64));
        net.send(s, d, 72, []() {});
        eq.run();
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NetworkSend);

void
BM_CoherentRemoteLoad(benchmark::State& state)
{
    EventQueue eq;
    noc::NetworkConfig ncfg;
    ncfg.dimension = 3;
    noc::Network net(eq, ncfg);
    mem::MemorySystem mem(eq, net, mem::MemoryConfig{});
    const Addr base = mem.addressMap().allocShared(1 << 20);
    Addr a = base;
    NodeId n = 0;
    for (auto _ : state) {
        a = base + ((a - base + 64) & ((1 << 20) - 64));
        n = (n + 1) % 8;
        bool done = false;
        mem.controller(n).load(a, [&](std::uint64_t) { done = true; });
        eq.run();
        benchmark::DoNotOptimize(done);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CoherentRemoteLoad);

void
BM_FullBarrierRound(benchmark::State& state)
{
    const unsigned dim = static_cast<unsigned>(state.range(0));
    harness::Machine m(harness::SystemConfig::small(dim));
    const unsigned n = m.config().numNodes();
    thrifty::SyncStats stats;
    thrifty::ConventionalBarrier b(m.eventQueue(), 0x1, n, m.memory(),
                                   stats, "b");
    for (auto _ : state) {
        for (ThreadId t = 0; t < n; ++t) {
            m.thread(t).compute((t + 1) * 1000, [&, t]() {
                b.arrive(m.thread(t), []() {});
            });
        }
        m.eventQueue().run();
    }
    state.SetItemsProcessed(state.iterations() * n);
    state.SetLabel(std::to_string(n) + " threads");
}
BENCHMARK(BM_FullBarrierRound)->Arg(2)->Arg(3)->Arg(6);

void
BM_ThriftyBarrierRound(benchmark::State& state)
{
    harness::Machine m(harness::SystemConfig::small(3));
    const unsigned n = m.config().numNodes();
    thrifty::SyncStats stats;
    thrifty::ThriftyRuntime rt(n, thrifty::ThriftyConfig::thrifty(),
                               stats);
    thrifty::ThriftyBarrier b(m.eventQueue(), 0x1, rt, m.memory(),
                              "b");
    for (auto _ : state) {
        for (ThreadId t = 0; t < n; ++t) {
            m.thread(t).compute(t == 0 ? 500000 : 1000, [&, t]() {
                b.arrive(m.thread(t), []() {});
            });
        }
        m.eventQueue().run();
    }
    state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ThriftyBarrierRound);

} // namespace

BENCHMARK_MAIN();
