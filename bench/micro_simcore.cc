/**
 * @file
 * Simulator-core microbenchmarks: the throughput numbers the CI
 * perf-smoke job gates on (scripts/compare_bench.py vs
 * BENCH_baseline.json; see docs/PERFORMANCE.md).
 *
 *   micro_simcore [--quick] [--json FILE]
 *
 * Measures, in order:
 *   - calibration       fixed integer workload, normalizes host speed
 *   - eq_schedule_fire  event-queue schedule+fire throughput
 *   - eq_schedule_cancel cancel-heavy schedule/cancel/drain throughput
 *   - coherence_txn     end-to-end coherent store ping-pong rate
 *   - barriers          end-to-end thrifty-barrier instances per second
 * plus the *simulated* latency of one coherence transaction in ticks,
 * which is seed-deterministic and must never drift.
 *
 * Every metric is one JSON line in the shared campaign shape
 * (bench_util.hh), so the output greps and diffs like the robustness
 * campaigns do.
 */

#include <chrono>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "mem/memory_system.hh"
#include "noc/network.hh"
#include "sim/event_queue.hh"

namespace {

using namespace tb;

// tblint-allow(TBL002): genuine wall-clock — benchmark timing
using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point t0)
{
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

/**
 * Host-speed calibration: a fixed xorshift64* chain. The perf gate
 * normalizes throughput metrics by the baseline/current calibration
 * ratio, so a slower CI runner does not read as a code regression.
 */
bench::MicroMetric
calibrate(bool quick)
{
    const std::uint64_t iters = quick ? 40'000'000ull : 200'000'000ull;
    std::uint64_t x = 0x9e3779b97f4a7c15ull;
    const auto t0 = Clock::now();
    for (std::uint64_t i = 0; i < iters; ++i) {
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        x *= 0x2545f4914f6cdd1dull;
    }
    const double wall = secondsSince(t0);
    // Keep the chain observable so the loop cannot be folded away.
    if (x == 0)
        std::cerr << "calibration degenerated\n";
    bench::MicroMetric m;
    m.benchmark = "calibration";
    m.unit = "ops/s";
    m.ops = iters;
    m.wallSeconds = wall;
    m.value = static_cast<double>(iters) / wall;
    return m;
}

/** Schedule/fire throughput: batches of short-lived events with mixed
 *  ticks and priorities, queue drained between batches. */
bench::MicroMetric
eqScheduleFire(bool quick)
{
    const unsigned rounds = quick ? 12800 : 64000;
    const unsigned batch = 128;
    EventQueue eq;
    std::uint64_t fired = 0;
    const auto t0 = Clock::now();
    for (unsigned r = 0; r < rounds; ++r) {
        const Tick base = eq.now();
        for (unsigned i = 0; i < batch; ++i) {
            eq.schedule(base + 1 + (i * 7) % 97,
                        [&fired]() { ++fired; },
                        static_cast<int>(i & 3));
        }
        eq.run();
    }
    const double wall = secondsSince(t0);
    bench::MicroMetric m;
    m.benchmark = "eq_schedule_fire";
    m.unit = "events/s";
    m.ops = fired;
    m.wallSeconds = wall;
    m.value = static_cast<double>(fired) / wall;
    return m;
}

/** Cancel-heavy mix: half of each batch is canceled before the drain,
 *  exercising lazy cancelation and slot reuse. Ops counts schedules,
 *  cancels and fires. */
bench::MicroMetric
eqScheduleCancel(bool quick)
{
    const unsigned rounds = quick ? 400 : 2000;
    const unsigned batch = 4096;
    EventQueue eq;
    std::uint64_t fired = 0;
    std::uint64_t ops = 0;
    std::vector<EventHandle> handles;
    handles.reserve(batch);
    const auto t0 = Clock::now();
    for (unsigned r = 0; r < rounds; ++r) {
        handles.clear();
        const Tick base = eq.now();
        for (unsigned i = 0; i < batch; ++i) {
            handles.push_back(
                eq.schedule(base + 1 + (i * 13) % 61,
                            [&fired]() { ++fired; }));
        }
        for (unsigned i = 0; i < batch; i += 2)
            handles[i].cancel();
        ops += batch + batch / 2;
        eq.run();
    }
    ops += fired;
    const double wall = secondsSince(t0);
    bench::MicroMetric m;
    m.benchmark = "eq_schedule_cancel";
    m.unit = "events/s";
    m.ops = ops;
    m.wallSeconds = wall;
    m.value = static_cast<double>(ops) / wall;
    return m;
}

/** Coherent-store ping-pong between two nodes over the real network:
 *  every transaction is an Upgrade/GetX + invalidation round trip. */
struct CoherenceResult
{
    bench::MicroMetric throughput;
    bench::MicroMetric simLatency;
};

CoherenceResult
coherenceTxn(bool quick)
{
    const std::uint64_t txns = quick ? 20'000 : 100'000;

    EventQueue eq;
    noc::NetworkConfig nc;
    nc.dimension = 1; // two nodes
    noc::Network net(eq, nc);
    mem::MemorySystem mem(eq, net, mem::MemoryConfig{});
    const Addr flag = mem.addressMap().allocShared(mem::kPageBytes);

    std::uint64_t done = 0;
    std::function<void()> next = [&]() {
        if (done >= txns)
            return;
        const NodeId n = static_cast<NodeId>(done & 1);
        mem.controller(n).store(flag, done, [&]() {
            ++done;
            next();
        });
    };

    const auto t0 = Clock::now();
    next();
    eq.run();
    const double wall = secondsSince(t0);

    CoherenceResult r;
    r.throughput.benchmark = "coherence_txn";
    r.throughput.unit = "txns/s";
    r.throughput.ops = done;
    r.throughput.wallSeconds = wall;
    r.throughput.value = static_cast<double>(done) / wall;

    // Simulated end-to-end latency: deterministic, must never drift.
    r.simLatency.benchmark = "coherence_txn_sim_latency";
    r.simLatency.unit = "ticks";
    r.simLatency.ops = done;
    r.simLatency.wallSeconds = wall;
    r.simLatency.value =
        static_cast<double>(eq.now()) / static_cast<double>(done);
    return r;
}

/** End-to-end barriers per second: a full thrifty experiment on a
 *  small machine, measured by completed dynamic barrier instances. */
bench::MicroMetric
barriersPerSecond(bool quick)
{
    workloads::AppProfile app = workloads::appByName("Radiosity");
    app.iterations = 50;

    harness::SystemConfig sys = harness::SystemConfig::small(2);
    sys.seed = 1;

    // One experiment lasts ~a millisecond of host time; repeat until
    // the sample is long enough to be stable.
    const double minWall = quick ? 0.25 : 1.0;
    std::uint64_t instances = 0;
    const auto t0 = Clock::now();
    double wall = 0.0;
    do {
        const harness::ExperimentResult r = harness::runExperiment(
            sys, app, harness::ConfigKind::Thrifty);
        instances += r.sync.instances;
        wall = secondsSince(t0);
    } while (wall < minWall);

    bench::MicroMetric m;
    m.benchmark = "barriers";
    m.unit = "barriers/s";
    m.ops = instances;
    m.wallSeconds = wall;
    m.value = static_cast<double>(instances) / wall;
    return m;
}

/**
 * Best-of-N wrapper: transient host load only ever slows a
 * measurement down, so the max over a few repetitions is a far more
 * stable throughput estimate than any single run — that stability is
 * what lets the CI gate use a tight regression threshold.
 */
template <typename F>
bench::MicroMetric
bestOf(unsigned reps, F&& measure)
{
    bench::MicroMetric best = measure();
    for (unsigned i = 1; i < reps; ++i) {
        const bench::MicroMetric m = measure();
        if (m.value > best.value)
            best = m;
    }
    return best;
}

} // namespace

int
main(int argc, char** argv)
{
    bool quick = false;
    std::string jsonPath;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0) {
            quick = true;
        } else if (std::strcmp(argv[i], "--json") == 0 &&
                   i + 1 < argc) {
            jsonPath = argv[++i];
        } else {
            std::cerr << "usage: " << argv[0]
                      << " [--quick] [--json FILE]\n";
            return 2;
        }
    }

    const unsigned reps = 3;
    std::vector<bench::MicroMetric> metrics;
    metrics.push_back(bestOf(reps, [&] { return calibrate(quick); }));
    metrics.push_back(
        bestOf(reps, [&] { return eqScheduleFire(quick); }));
    metrics.push_back(
        bestOf(reps, [&] { return eqScheduleCancel(quick); }));
    {
        CoherenceResult best = coherenceTxn(quick);
        for (unsigned i = 1; i < reps; ++i) {
            const CoherenceResult c = coherenceTxn(quick);
            if (c.simLatency.value != best.simLatency.value) {
                std::cerr << "coherence_txn_sim_latency drifted "
                             "between repetitions\n";
                return 1;
            }
            if (c.throughput.value > best.throughput.value)
                best.throughput = c.throughput;
        }
        metrics.push_back(best.throughput);
        metrics.push_back(best.simLatency);
    }
    metrics.push_back(
        bestOf(reps, [&] { return barriersPerSecond(quick); }));

    std::ostringstream out;
    for (const auto& m : metrics)
        bench::printMicroJson(out, m);
    std::cout << out.str();

    if (!jsonPath.empty()) {
        std::ofstream f(jsonPath);
        if (!f) {
            std::cerr << "cannot write " << jsonPath << "\n";
            return 1;
        }
        f << out.str();
    }
    return 0;
}
