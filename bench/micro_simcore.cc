/**
 * @file
 * Simulator-core microbenchmarks: the throughput numbers the CI
 * perf-smoke job gates on (scripts/compare_bench.py vs
 * BENCH_baseline.json; see docs/PERFORMANCE.md).
 *
 *   micro_simcore [--quick] [--json FILE]
 *
 * Measures, in order:
 *   - calibration       fixed integer workload, normalizes host speed
 *   - eq_schedule_fire  event-queue schedule+fire throughput
 *   - eq_schedule_cancel cancel-heavy schedule/cancel/drain throughput
 *   - coherence_txn     end-to-end coherent store ping-pong rate
 *   - barriers          end-to-end thrifty-barrier instances per second
 *   - pdes_fire_*       conservative-PDES fire-loop throughput on a
 *                       64-partition hypercube workload, serial and at
 *                       min(4, host cores) workers, plus the speedup,
 *                       the null-message/stall overhead ratios and the
 *                       deterministic total event count
 *   - machine_pdes_*    the same speedup question asked of the real
 *                       model: one full 64-node thrifty experiment,
 *                       partitioned into 8 clusters, at 1 worker vs
 *                       min(4, host cores) workers — the "does a single
 *                       simulation actually get faster" number, gated
 *                       on the 1.5x floor when measured with >= 4
 *                       workers
 * plus the *simulated* latency of one coherence transaction in ticks,
 * which is seed-deterministic and must never drift.
 *
 * Every metric is one JSON line in the shared campaign shape
 * (bench_util.hh), so the output greps and diffs like the robustness
 * campaigns do.
 */

#include <chrono>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <functional>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hh"
#include "mem/memory_system.hh"
#include "noc/network.hh"
#include "sim/event_queue.hh"
#include "sim/pdes.hh"

namespace {

using namespace tb;

// tblint-allow(TBL002): genuine wall-clock — benchmark timing
using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point t0)
{
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

/**
 * Host-speed calibration: a fixed xorshift64* chain. The perf gate
 * normalizes throughput metrics by the baseline/current calibration
 * ratio, so a slower CI runner does not read as a code regression.
 */
bench::MicroMetric
calibrate(bool quick)
{
    const std::uint64_t iters = quick ? 40'000'000ull : 200'000'000ull;
    std::uint64_t x = 0x9e3779b97f4a7c15ull;
    const auto t0 = Clock::now();
    for (std::uint64_t i = 0; i < iters; ++i) {
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        x *= 0x2545f4914f6cdd1dull;
    }
    const double wall = secondsSince(t0);
    // Keep the chain observable so the loop cannot be folded away.
    if (x == 0)
        std::cerr << "calibration degenerated\n";
    bench::MicroMetric m;
    m.benchmark = "calibration";
    m.unit = "ops/s";
    m.ops = iters;
    m.wallSeconds = wall;
    m.value = static_cast<double>(iters) / wall;
    return m;
}

/** Schedule/fire throughput: batches of short-lived events with mixed
 *  ticks and priorities, queue drained between batches. */
bench::MicroMetric
eqScheduleFire(bool quick)
{
    const unsigned rounds = quick ? 12800 : 64000;
    const unsigned batch = 128;
    EventQueue eq;
    std::uint64_t fired = 0;
    const auto t0 = Clock::now();
    for (unsigned r = 0; r < rounds; ++r) {
        const Tick base = eq.now();
        for (unsigned i = 0; i < batch; ++i) {
            eq.schedule(base + 1 + (i * 7) % 97,
                        [&fired]() { ++fired; },
                        static_cast<int>(i & 3));
        }
        eq.run();
    }
    const double wall = secondsSince(t0);
    bench::MicroMetric m;
    m.benchmark = "eq_schedule_fire";
    m.unit = "events/s";
    m.ops = fired;
    m.wallSeconds = wall;
    m.value = static_cast<double>(fired) / wall;
    return m;
}

/** Cancel-heavy mix: half of each batch is canceled before the drain,
 *  exercising lazy cancelation and slot reuse. Ops counts schedules,
 *  cancels and fires. */
bench::MicroMetric
eqScheduleCancel(bool quick)
{
    const unsigned rounds = quick ? 400 : 2000;
    const unsigned batch = 4096;
    EventQueue eq;
    std::uint64_t fired = 0;
    std::uint64_t ops = 0;
    std::vector<EventHandle> handles;
    handles.reserve(batch);
    const auto t0 = Clock::now();
    for (unsigned r = 0; r < rounds; ++r) {
        handles.clear();
        const Tick base = eq.now();
        for (unsigned i = 0; i < batch; ++i) {
            handles.push_back(
                eq.schedule(base + 1 + (i * 13) % 61,
                            [&fired]() { ++fired; }));
        }
        for (unsigned i = 0; i < batch; i += 2)
            handles[i].cancel();
        ops += batch + batch / 2;
        eq.run();
    }
    ops += fired;
    const double wall = secondsSince(t0);
    bench::MicroMetric m;
    m.benchmark = "eq_schedule_cancel";
    m.unit = "events/s";
    m.ops = ops;
    m.wallSeconds = wall;
    m.value = static_cast<double>(ops) / wall;
    return m;
}

/** Coherent-store ping-pong between two nodes over the real network:
 *  every transaction is an Upgrade/GetX + invalidation round trip. */
struct CoherenceResult
{
    bench::MicroMetric throughput;
    bench::MicroMetric simLatency;
};

CoherenceResult
coherenceTxn(bool quick)
{
    const std::uint64_t txns = quick ? 20'000 : 100'000;

    EventQueue eq;
    noc::NetworkConfig nc;
    nc.dimension = 1; // two nodes
    noc::Network net(eq, nc);
    mem::MemorySystem mem(eq, net, mem::MemoryConfig{});
    const Addr flag = mem.addressMap().allocShared(mem::kPageBytes);

    std::uint64_t done = 0;
    std::function<void()> next = [&]() {
        if (done >= txns)
            return;
        const NodeId n = static_cast<NodeId>(done & 1);
        mem.controller(n).store(flag, done, [&]() {
            ++done;
            next();
        });
    };

    const auto t0 = Clock::now();
    next();
    eq.run();
    const double wall = secondsSince(t0);

    CoherenceResult r;
    r.throughput.benchmark = "coherence_txn";
    r.throughput.unit = "txns/s";
    r.throughput.ops = done;
    r.throughput.wallSeconds = wall;
    r.throughput.value = static_cast<double>(done) / wall;

    // Simulated end-to-end latency: deterministic, must never drift.
    r.simLatency.benchmark = "coherence_txn_sim_latency";
    r.simLatency.unit = "ticks";
    r.simLatency.ops = done;
    r.simLatency.wallSeconds = wall;
    r.simLatency.value =
        static_cast<double>(eq.now()) / static_cast<double>(done);
    return r;
}

/** End-to-end barriers per second: a full thrifty experiment on a
 *  small machine, measured by completed dynamic barrier instances. */
bench::MicroMetric
barriersPerSecond(bool quick)
{
    workloads::AppProfile app = workloads::appByName("Radiosity");
    app.iterations = 50;

    harness::SystemConfig sys = harness::SystemConfig::small(2);
    sys.seed = 1;

    // One experiment lasts ~a millisecond of host time; repeat until
    // the sample is long enough to be stable.
    const double minWall = quick ? 0.25 : 1.0;
    std::uint64_t instances = 0;
    const auto t0 = Clock::now();
    double wall = 0.0;
    do {
        const harness::ExperimentResult r = harness::runExperiment(
            sys, app, harness::ConfigKind::Thrifty);
        instances += r.sync.instances;
        wall = secondsSince(t0);
    } while (wall < minWall);

    bench::MicroMetric m;
    m.benchmark = "barriers";
    m.unit = "barriers/s";
    m.ops = instances;
    m.wallSeconds = wall;
    m.value = static_cast<double>(instances) / wall;
    return m;
}

/** One measured run of the PDES hypercube workload. */
struct PdesRun
{
    pdes::EngineStats stats;
    double wall = 0.0;
};

/**
 * The PDES fire-loop workload: PHOLD on a 6-cube. 64 partitions (the
 * node count of the full machine), channel lookahead = the NoC's
 * minimum cross-node latency (48 ns — the bound the partitioned
 * machine model will use), and a fixed population of jobs, eight per
 * partition. Each fired job burns a fixed xorshift grain and then
 * schedules exactly ONE successor: usually a short local hop, one in
 * sixteen times a hop across a random cube edge — a constant-
 * population load with the communication/computation mix of a real
 * model, never a fork bomb. The total event count is a pure function
 * of the seeds — the serial/threaded runs must agree on it exactly,
 * and the perf gate compares it bit-for-bit.
 */
PdesRun
runPdesCube(unsigned threads, bool quick)
{
    const unsigned dim = 6;
    const unsigned n = 1u << dim;
    const unsigned jobsPerPart = 8;
    const Tick lookahead = noc::NetworkConfig{}.minCrossNodeLatency();
    const Tick horizon = lookahead * (quick ? 96 : 384);

    pdes::Engine::Config cfg;
    cfg.threads = threads;
    pdes::Engine engine(cfg);
    std::vector<pdes::Partition*> parts;
    parts.reserve(n);
    for (unsigned i = 0; i < n; ++i)
        parts.push_back(&engine.addPartition("cube" + std::to_string(i)));
    for (unsigned i = 0; i < n; ++i)
        for (unsigned b = 0; b < dim; ++b)
            engine.connect(parts[i]->id(), parts[i ^ (1u << b)]->id(),
                           lookahead);

    // Per-partition grain state; owner-confined like the partitions
    // themselves (only partition i's events touch rng[i]). Padded to
    // cache-line stride so neighboring partitions on different
    // workers don't false-share their hot state.
    struct alignas(64) PartState
    {
        std::uint64_t x;
    };
    std::vector<PartState> rng(n);
    for (unsigned i = 0; i < n; ++i)
        rng[i].x = 0x9e3779b97f4a7c15ull ^ (i * 0xbf58476d1ce4e5b9ull);

    std::function<void(unsigned)> hop = [&](unsigned i) {
        pdes::Partition& p = *parts[i];
        std::uint64_t x = rng[i].x;
        for (int r = 0; r < 32; ++r) {
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            x *= 0x2545f4914f6cdd1dull;
        }
        rng[i].x = x;
        if (p.now() >= horizon)
            return; // job retires; population only ever shrinks
        if ((x & 15u) == 0) {
            const unsigned dst = i ^ (1u << ((x >> 8) % dim));
            p.send(parts[dst]->id(),
                   p.now() + lookahead + (x % 257),
                   [&hop, dst] { hop(dst); });
        } else {
            p.scheduleIn(1 + (x % 1024), [&hop, i] { hop(i); });
        }
    };

    for (unsigned i = 0; i < n; ++i)
        for (unsigned j = 0; j < jobsPerPart; ++j)
            parts[i]->schedule(1 + ((i + 7u * j) % 97), [&hop, i] {
                hop(i);
            });

    const auto t0 = Clock::now();
    engine.run();
    PdesRun r;
    r.wall = secondsSince(t0);
    r.stats = engine.stats();
    return r;
}

/**
 * The PDES metric family. Throughput is best-of-N per thread count;
 * the deterministic event count is cross-checked between every run
 * before anything is reported — a serial/threaded mismatch is a
 * determinism bug, not a perf number, and fails the benchmark.
 */
std::vector<bench::MicroMetric>
pdesMetrics(bool quick, unsigned reps, bool* ok)
{
    const unsigned hw = std::thread::hardware_concurrency();
    const unsigned par = hw > 1 ? (hw < 4 ? hw : 4u) : 1u;

    const auto bestAt = [&](unsigned threads) {
        PdesRun best = runPdesCube(threads, quick);
        for (unsigned i = 1; i < reps; ++i) {
            const PdesRun r = runPdesCube(threads, quick);
            if (r.stats.fired != best.stats.fired) {
                std::cerr << "pdes event count drifted between "
                             "repetitions\n";
                *ok = false;
            }
            if (r.wall < best.wall)
                best = r;
        }
        return best;
    };

    const PdesRun serial = bestAt(1);
    const PdesRun threaded = bestAt(par);
    if (serial.stats.fired != threaded.stats.fired ||
        serial.stats.finalTick != threaded.stats.finalTick) {
        std::cerr << "pdes serial/threaded runs diverged\n";
        *ok = false;
    }

    std::vector<bench::MicroMetric> ms;
    bench::MicroMetric fire1;
    fire1.benchmark = "pdes_fire_1t";
    fire1.unit = "events/s";
    fire1.ops = serial.stats.fired;
    fire1.wallSeconds = serial.wall;
    fire1.value = static_cast<double>(serial.stats.fired) / serial.wall;
    fire1.threads = 1;
    ms.push_back(fire1);

    bench::MicroMetric fireN;
    fireN.benchmark = "pdes_fire_4t";
    fireN.unit = "events/s";
    fireN.ops = threaded.stats.fired;
    fireN.wallSeconds = threaded.wall;
    fireN.value =
        static_cast<double>(threaded.stats.fired) / threaded.wall;
    fireN.threads = par;
    ms.push_back(fireN);

    // Host-relative, so no calibration: the gate enforces its
    // absolute >= 1.5x floor only when threads >= 4 (compare_bench.py
    // skips the floor on smaller hosts, where the target cannot hold).
    bench::MicroMetric speedup;
    speedup.benchmark = "pdes_speedup_4t";
    speedup.unit = "x";
    speedup.ops = threaded.stats.fired;
    speedup.wallSeconds = threaded.wall;
    speedup.value = fireN.value / fire1.value;
    speedup.threads = par;
    ms.push_back(speedup);

    // Conservative-sync overhead diagnostics (informational: these
    // vary with host timing and are never gated).
    bench::MicroMetric nulls;
    nulls.benchmark = "pdes_null_ratio";
    nulls.unit = "ratio";
    nulls.ops = threaded.stats.nullPublishes;
    nulls.wallSeconds = threaded.wall;
    nulls.value = static_cast<double>(threaded.stats.nullPublishes) /
                  static_cast<double>(threaded.stats.fired);
    nulls.threads = par;
    ms.push_back(nulls);

    bench::MicroMetric stalls;
    stalls.benchmark = "pdes_stall_ratio";
    stalls.unit = "ratio";
    stalls.ops = threaded.stats.stallRounds;
    stalls.wallSeconds = threaded.wall;
    stalls.value = static_cast<double>(threaded.stats.stallRounds) /
                   static_cast<double>(threaded.stats.fired);
    stalls.threads = par;
    ms.push_back(stalls);

    // Simulated quantity: bit-stable at any thread count, any host.
    bench::MicroMetric events;
    events.benchmark = "pdes_events";
    events.unit = "count";
    events.ops = serial.stats.fired;
    events.wallSeconds = serial.wall;
    events.value = static_cast<double>(serial.stats.fired);
    ms.push_back(events);
    return ms;
}

/** One measured run of the full partitioned-machine experiment. */
struct MachineRun
{
    std::string serialized;
    Tick execTicks = 0;
    double wall = 0.0;
};

/**
 * One complete thrifty experiment on the paper's 64-node machine,
 * split into 8 cluster partitions and driven by @p threads engine
 * workers. This is the end-to-end answer the PHOLD fire-loop only
 * approximates: coherence traffic, barrier episodes, per-hop NoC
 * events and all.
 */
MachineRun
runMachineExperiment(unsigned threads, bool quick)
{
    harness::SystemConfig sys = harness::SystemConfig::paperDefault();
    sys.seed = 1;
    workloads::AppProfile app = workloads::appByName("Volrend");
    app.iterations = quick ? 6 : 24;

    harness::RunOptions ro;
    ro.simThreads = threads;
    ro.simPartitions = 8;

    const auto t0 = Clock::now();
    const harness::ExperimentResult r = harness::runExperiment(
        sys, app, harness::ConfigKind::Thrifty, ro);
    MachineRun out;
    out.wall = secondsSince(t0);
    out.execTicks = r.execTime;
    out.serialized = harness::serializeResult(r);
    return out;
}

/**
 * The machine-level PDES metric family. As with the fire loop, the
 * serialized result is cross-checked between every run and thread
 * count first — a mismatch is a determinism bug and fails the
 * benchmark, not the perf gate.
 */
std::vector<bench::MicroMetric>
machineMetrics(bool quick, unsigned reps, bool* ok)
{
    const unsigned hw = std::thread::hardware_concurrency();
    const unsigned par = hw > 1 ? (hw < 4 ? hw : 4u) : 1u;

    const auto bestAt = [&](unsigned threads,
                            const std::string* reference) {
        MachineRun best = runMachineExperiment(threads, quick);
        for (unsigned i = 1; i < reps; ++i) {
            const MachineRun r = runMachineExperiment(threads, quick);
            if (r.serialized != best.serialized) {
                std::cerr << "machine result drifted between "
                             "repetitions\n";
                *ok = false;
            }
            if (r.wall < best.wall)
                best = r;
        }
        if (reference && best.serialized != *reference) {
            std::cerr << "machine serial/threaded results diverged\n";
            *ok = false;
        }
        return best;
    };

    const MachineRun serial = bestAt(1, nullptr);
    const MachineRun threaded = bestAt(par, &serial.serialized);

    std::vector<bench::MicroMetric> ms;
    bench::MicroMetric speedup;
    speedup.benchmark = "machine_pdes_speedup";
    speedup.unit = "x";
    speedup.ops = 1;
    speedup.wallSeconds = threaded.wall;
    speedup.value = serial.wall / threaded.wall;
    speedup.threads = par;
    ms.push_back(speedup);

    // Simulated quantity: bit-stable at any thread count, any host.
    bench::MicroMetric exec;
    exec.benchmark = "machine_pdes_exec_ticks";
    exec.unit = "ticks";
    exec.ops = 1;
    exec.wallSeconds = serial.wall;
    exec.value = static_cast<double>(serial.execTicks);
    ms.push_back(exec);
    return ms;
}

/**
 * Best-of-N wrapper: transient host load only ever slows a
 * measurement down, so the max over a few repetitions is a far more
 * stable throughput estimate than any single run — that stability is
 * what lets the CI gate use a tight regression threshold.
 */
template <typename F>
bench::MicroMetric
bestOf(unsigned reps, F&& measure)
{
    bench::MicroMetric best = measure();
    for (unsigned i = 1; i < reps; ++i) {
        const bench::MicroMetric m = measure();
        if (m.value > best.value)
            best = m;
    }
    return best;
}

} // namespace

int
main(int argc, char** argv)
{
    bool quick = false;
    std::string jsonPath;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0) {
            quick = true;
        } else if (std::strcmp(argv[i], "--json") == 0 &&
                   i + 1 < argc) {
            jsonPath = argv[++i];
        } else {
            std::cerr << "usage: " << argv[0]
                      << " [--quick] [--json FILE]\n";
            return 2;
        }
    }

    const unsigned reps = 3;
    std::vector<bench::MicroMetric> metrics;
    metrics.push_back(bestOf(reps, [&] { return calibrate(quick); }));
    metrics.push_back(
        bestOf(reps, [&] { return eqScheduleFire(quick); }));
    metrics.push_back(
        bestOf(reps, [&] { return eqScheduleCancel(quick); }));
    {
        CoherenceResult best = coherenceTxn(quick);
        for (unsigned i = 1; i < reps; ++i) {
            const CoherenceResult c = coherenceTxn(quick);
            if (c.simLatency.value != best.simLatency.value) {
                std::cerr << "coherence_txn_sim_latency drifted "
                             "between repetitions\n";
                return 1;
            }
            if (c.throughput.value > best.throughput.value)
                best.throughput = c.throughput;
        }
        metrics.push_back(best.throughput);
        metrics.push_back(best.simLatency);
    }
    metrics.push_back(
        bestOf(reps, [&] { return barriersPerSecond(quick); }));
    bool pdesOk = true;
    for (const auto& m : pdesMetrics(quick, reps, &pdesOk))
        metrics.push_back(m);
    for (const auto& m : machineMetrics(quick, reps, &pdesOk))
        metrics.push_back(m);
    if (!pdesOk)
        return 1;

    std::ostringstream out;
    for (const auto& m : metrics)
        bench::printMicroJson(out, m);
    std::cout << out.str();

    if (!jsonPath.empty()) {
        std::ofstream f(jsonPath);
        if (!f) {
            std::cerr << "cannot write " << jsonPath << "\n";
            return 1;
        }
        f << out.str();
    }
    return 0;
}
