/**
 * @file
 * Reproduces Figure 6: normalized execution time of the ten
 * applications under the five configurations, broken into
 * Compute / Spin / Transition / Sleep per-CPU time.
 *
 *   figure6_time [--jobs N]   # shard the 50 simulations over N threads
 */

#include <iostream>

#include "bench_util.hh"

int
main(int argc, char** argv)
{
    using namespace tb;
    const unsigned jobs =
        harness::ParallelCampaignRunner::parseJobsArg(argc, argv);
    const harness::SystemConfig sys =
        harness::SystemConfig::paperDefault();
    bench::banner("Figure 6 — normalized execution time", sys);

    const auto groups =
        bench::runAppConfigMatrix(sys, workloads::paperApps(), jobs);
    for (const auto& group : groups) {
        harness::report::printBreakdownGroup(std::cout, group,
                                             /*use_energy=*/false);
        harness::report::printStackedBars(std::cout, group,
                                          /*use_energy=*/false);
        std::cout << '\n' << std::flush;
    }

    harness::report::printSummary(std::cout, groups,
                                  workloads::targetAppNames());
    std::cout << "\nPaper reference (Section 5.1): performance "
                 "degradation well bounded — about 2%\non average for "
                 "the target applications, virtually zero elsewhere "
                 "except Ocean\n(contained within 3.5% by the "
                 "overprediction cutoff).\n";
    return 0;
}
