/**
 * @file
 * Reproduces Figure 6: normalized execution time of the ten
 * applications under the five configurations, broken into
 * Compute / Spin / Transition / Sleep per-CPU time.
 *
 *   figure6_time [--jobs N] [--deadline-ms N] [--retries N]
 *                [--backoff-ms N] [--isolate] [--journal FILE]
 *                [--resume] [--out FILE] [--manifest FILE]
 *                [--only-point I] [--serve ADDR | --worker ADDR]
 *                [--cache DIR]
 *
 * The 50 (app x configuration) simulations run under the campaign
 * supervisor — same surface as figure5_energy (docs/ROBUSTNESS.md,
 * "Supervised campaigns" and "Distributed campaigns").
 */

#include <iostream>
#include <sstream>

#include "bench_util.hh"

int
main(int argc, char** argv)
{
    using namespace tb;
    const harness::CampaignOptions opts =
        harness::CampaignOptions::parse(argc, argv,
                                        /*allowQuick=*/false);
    harness::CampaignSupervisor::installSigintHandler();
    const harness::SystemConfig sys =
        harness::SystemConfig::paperDefault();
    const auto apps = workloads::paperApps();
    harness::ObsCapture capture(opts, "figure6_time");

    if (opts.onlyPoint >= 0) {
        const auto kinds = bench::figureConfigs();
        const std::size_t count = apps.size() * kinds.size();
        if (static_cast<std::size_t>(opts.onlyPoint) >= count) {
            std::cerr << "--only-point " << opts.onlyPoint
                      << " out of range [0, " << count << ")\n";
            return 2;
        }
        const std::size_t a = opts.onlyPoint / kinds.size();
        const std::size_t k = opts.onlyPoint % kinds.size();
        harness::RunOptions ro;
        harness::ObsCapture::PointScope scope;
        capture.arm(opts.onlyPoint, &ro, &scope);
        const harness::ExperimentResult r =
            harness::runExperiment(sys, apps[a], kinds[k], ro);
        capture.deposit(opts.onlyPoint, r, &scope,
                        apps[a].name + "/" +
                            harness::configName(kinds[k]));
        std::cout << harness::serializeResult(r) << '\n';
        if (capture.statsEnabled())
            std::cout << capture.predictionSummaryJson();
        capture.writeFiles();
        return 0;
    }

    if (!opts.workerAddr.empty()) {
        return bench::runAppConfigMatrixWorker(sys, apps, opts,
                                               "figure6_time");
    }

    bench::banner("Figure 6 — normalized execution time", sys);

    harness::CampaignJournal journal;
    if (!opts.journalPath.empty())
        journal.open(opts.journalPath, opts.resume);

    std::vector<std::vector<harness::ExperimentResult>> groups;
    const svc::CampaignRun run = bench::runAppConfigMatrixSupervised(
        sys, apps, opts, "figure6_time", &journal, &groups,
        &capture);
    const harness::SupervisorReport& report = run.report;
    journal.flush();

    std::ostringstream artifact;
    if (report.failures() == 0 && !report.interrupted) {
        for (const auto& group : groups) {
            harness::report::printBreakdownGroup(artifact, group,
                                                 /*use_energy=*/false);
            harness::report::printStackedBars(artifact, group,
                                              /*use_energy=*/false);
            artifact << '\n';
        }
        harness::report::printSummary(artifact, groups,
                                      workloads::targetAppNames());
        artifact
            << "\nPaper reference (Section 5.1): performance "
               "degradation well bounded — about 2%\non average for "
               "the target applications, virtually zero elsewhere "
               "except Ocean\n(contained within 3.5% by the "
               "overprediction cutoff).\n";
        std::cout << artifact.str() << std::flush;
    } else {
        std::cout << "figure withheld: " << report.failures()
                  << " point failure(s)"
                  << (report.interrupted ? ", interrupted" : "")
                  << " — see the failure manifest\n";
    }

    return bench::finishSupervisedCampaign(opts, run,
                                           "figure6_time",
                                           artifact.str(), &capture);
}
