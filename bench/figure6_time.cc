/**
 * @file
 * Reproduces Figure 6: normalized execution time of the ten
 * applications under the five configurations, broken into
 * Compute / Spin / Transition / Sleep per-CPU time.
 */

#include <iostream>

#include "bench_util.hh"

int
main()
{
    using namespace tb;
    const harness::SystemConfig sys =
        harness::SystemConfig::paperDefault();
    bench::banner("Figure 6 — normalized execution time", sys);

    std::vector<std::vector<harness::ExperimentResult>> groups;
    for (const auto& app : workloads::paperApps()) {
        groups.push_back(bench::runAllConfigs(sys, app));
        harness::report::printBreakdownGroup(std::cout, groups.back(),
                                             /*use_energy=*/false);
        harness::report::printStackedBars(std::cout, groups.back(),
                                          /*use_energy=*/false);
        std::cout << '\n' << std::flush;
    }

    harness::report::printSummary(std::cout, groups,
                                  workloads::targetAppNames());
    std::cout << "\nPaper reference (Section 5.1): performance "
                 "degradation well bounded — about 2%\non average for "
                 "the target applications, virtually zero elsewhere "
                 "except Ocean\n(contained within 3.5% by the "
                 "overprediction cutoff).\n";
    return 0;
}
