/**
 * @file
 * Reproduces the Section 5.2 / 3.3.3 overprediction-cutoff result:
 * Ocean's swinging barrier intervals defeat last-value prediction;
 * without the cutoff, external wake-ups (plus flush and compulsory
 * misses from overkill sleep states) degrade performance by up to
 * ~12% in the paper; the 10% threshold contains the loss within
 * ~3.5%. Sweeps the threshold.
 */

#include <cstdio>

#include "bench_util.hh"

int
main()
{
    using namespace tb;
    const harness::SystemConfig sys =
        harness::SystemConfig::paperDefault();
    bench::banner(
        "Ablation — overprediction cutoff threshold (Ocean)", sys);

    const workloads::AppProfile app = workloads::appByName("Ocean");
    const auto base =
        harness::runExperiment(sys, app, harness::ConfigKind::Baseline);

    std::printf("%-12s %10s %10s %9s %9s %9s\n", "threshold", "time",
                "energy", "cutoffs", "sleeps", "spins");
    std::printf("%-12s %9.1f%% %9.1f%% %9s %9s %9s\n", "baseline",
                100.0, 100.0, "-", "-", "-");

    const double thresholds[] = {-1.0, 0.05, 0.10, 0.20, 0.50};
    for (double th : thresholds) {
        thrifty::ThriftyConfig cfg = thrifty::ThriftyConfig::thrifty();
        cfg.overpredictionThreshold = th;
        harness::RunOptions opt;
        opt.customConfig = &cfg;
        const auto r = harness::runExperiment(
            sys, app, harness::ConfigKind::Thrifty, opt);
        char label[32];
        if (th < 0)
            std::snprintf(label, sizeof(label), "disabled");
        else
            std::snprintf(label, sizeof(label), "%.0f%% of BIT",
                          100.0 * th);
        std::printf("%-12s %9.1f%% %9.1f%% %9llu %9llu %9llu\n",
                    label,
                    100.0 * static_cast<double>(r.execTime) /
                        static_cast<double>(base.execTime),
                    100.0 * r.totalEnergy() / base.totalEnergy(),
                    static_cast<unsigned long long>(r.sync.cutoffs),
                    static_cast<unsigned long long>(r.sync.sleeps),
                    static_cast<unsigned long long>(r.sync.spins));
        std::fflush(stdout);
    }

    std::printf("\nPaper reference: without the cutoff Ocean degrades "
                "by up to ~12%%; the 10%%\nthreshold contains losses "
                "within ~3.5%% (and Ocean 'ends up spinning quite a "
                "bit\nat these barriers').\n");
    return 0;
}
