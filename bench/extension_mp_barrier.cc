/**
 * @file
 * Extension bench: the thrifty barrier on a message-passing machine
 * (Section 1: "the idea is conceptually viable in other environments
 * such as message-passing machines"). Coordinator-based MP barrier on
 * the same 64-node hypercube; waiters poll the NIC (baseline) or
 * predict-and-sleep with NIC wake-on-message as the external
 * mechanism (thrifty). Reproduces the shared-memory shape: savings
 * scale with imbalance, bounded slowdown, hybrid beats its parts.
 */

#include <cstdio>
#include <functional>

#include "bench_util.hh"
#include "mp/mp_barrier.hh"
#include "sim/random.hh"

namespace {

using namespace tb;

struct Outcome
{
    double energy;
    Tick span;
    std::uint64_t sleeps;
    std::uint64_t cutoffs;
};

Outcome
run(double imbalance_cv, const thrifty::ThriftyConfig& cfg,
    unsigned iterations)
{
    harness::Machine m(harness::SystemConfig::paperDefault());
    const unsigned n = m.config().numNodes();

    mp::MpFabric fabric(m.eventQueue(), m.network());
    thrifty::SyncStats stats;
    mp::MpRuntime rt(n, cfg, stats);
    std::vector<cpu::Cpu*> cpus;
    for (NodeId i = 0; i < n; ++i)
        cpus.push_back(&m.cpu(i));
    mp::MpBarrier barrier(m.eventQueue(), 0x1, rt, fabric, cpus, 0,
                          "mpb");

    Random skew_rng(42);
    std::vector<double> skew(n);
    for (auto& s : skew)
        s = skew_rng.lognormalMeanCv(1.0, imbalance_cv);

    std::function<void(ThreadId, unsigned)> round = [&](ThreadId tid,
                                                        unsigned it) {
        if (it >= iterations)
            return;
        const Tick busy = static_cast<Tick>(
            800.0 * kMicrosecond * skew[tid]);
        m.thread(tid).compute(busy, [&, tid, it]() {
            barrier.arrive(tid,
                           [&, tid, it]() { round(tid, it + 1); });
        });
    };
    for (ThreadId t = 0; t < n; ++t)
        round(t, 0);
    const Tick span = m.run();
    return Outcome{m.totalEnergy().totalEnergy(), span, stats.sleeps,
                   stats.cutoffs};
}

} // namespace

int
main()
{
    const harness::SystemConfig sys =
        harness::SystemConfig::paperDefault();
    tb::bench::banner(
        "Extension — thrifty barrier on a message-passing machine",
        sys);

    std::printf("64 nodes, coordinator-based MP barrier, 20 "
                "iterations, 800us mean phase.\n\n");
    std::printf("%12s %12s %12s %9s %9s\n", "imbalanceCv",
                "poll energy", "thrifty", "saving", "time");
    for (double cv : {0.05, 0.15, 0.30, 0.45}) {
        thrifty::ThriftyConfig poll = thrifty::ThriftyConfig::thrifty();
        poll.states = power::SleepStateTable();
        const Outcome base = run(cv, poll, 20);
        const Outcome t =
            run(cv, thrifty::ThriftyConfig::thrifty(), 20);
        std::printf("%12.2f %11.2fJ %11.2fJ %8.1f%% %8.2f%%\n", cv,
                    base.energy, t.energy,
                    100.0 * (1.0 - t.energy / base.energy),
                    100.0 * static_cast<double>(t.span) /
                        static_cast<double>(base.span));
        std::fflush(stdout);
    }

    std::printf("\nSame shape as the shared-memory design (Figure "
                "5): savings grow with the\nimbalance while execution "
                "time stays within a couple of percent — the NIC\n"
                "wake-on-message plays the flag invalidation's role.\n");
    return 0;
}
