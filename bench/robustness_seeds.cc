/**
 * @file
 * Robustness of the headline result across workload seeds: the Figure
 * 5/6 averages for the five target applications, re-measured with
 * five different synthetic-workload seeds. The paper's claim should
 * not hinge on one draw of the random streams.
 *
 *   robustness_seeds [--jobs N] [--deadline-ms N] [--retries N]
 *                    [--backoff-ms N] [--isolate] [--journal FILE]
 *                    [--resume] [--out FILE] [--manifest FILE]
 *                    [--only-point I]
 *                    [--serve ADDR | --worker ADDR] [--cache DIR]
 *
 * Each (seed, application) pair is one supervised campaign point
 * running the Baseline / Thrifty-Halt / Thrifty triple; points are
 * independent, so the campaign shards, retries, isolates and resumes
 * exactly like robustness_faults (docs/ROBUSTNESS.md, "Supervised
 * campaigns").
 *
 * Each run emits one JSON line in the shared campaign shape
 * (bench_util.hh), directly comparable with the fault-injection
 * campaign's output (robustness_faults).
 */

#include <cmath>
#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.hh"

namespace {

using namespace tb;

const std::vector<std::uint64_t> kSeeds = {1, 2, 3, 5, 8};

/** One (seed, application) point. */
struct Point
{
    std::uint64_t seed = 1;
    std::string app;
};

std::vector<Point>
pointSpace()
{
    std::vector<Point> points;
    for (std::uint64_t seed : kSeeds) {
        for (const auto& name : workloads::targetAppNames())
            points.push_back(Point{seed, name});
    }
    return points;
}

/**
 * Run one point's Baseline/Halt/Thrifty triple. The artifact is the
 * three campaign JSON lines followed by one `#metrics` trailer
 * carrying the savings/slowdown at full double precision, so the
 * cross-seed aggregation reproduces exactly from a journal replay.
 */
std::string
runPoint(const Point& p, std::size_t index,
         harness::ObsCapture* capture)
{
    using harness::ConfigKind;
    harness::SystemConfig sys = harness::SystemConfig::paperDefault();
    sys.seed = p.seed;

    tb::bench::CampaignPoint pt;
    pt.campaign = "seeds";
    pt.dim = sys.noc.dimension;
    pt.seed = p.seed;
    pt.protocol =
        sys.memory.threeHopForwarding ? "three-hop" : "hub";

    const auto app = workloads::appByName(p.app);
    // Three runs per point: each gets its own capture slot so trace
    // pids stay unique (point index * 3 + config).
    const auto run_one = [&](ConfigKind k, std::size_t sub) {
        harness::RunOptions ro;
        harness::ObsCapture::PointScope scope;
        if (capture)
            capture->arm(index * 3 + sub, &ro, &scope);
        const auto r = runExperiment(sys, app, k, ro);
        if (capture) {
            capture->deposit(index * 3 + sub, r, &scope,
                             "seed=" + std::to_string(p.seed) + "/" +
                                 p.app + "/" + r.config);
        }
        return r;
    };
    const auto base = run_one(ConfigKind::Baseline, 0);
    const auto h = run_one(ConfigKind::ThriftyHalt, 1);
    const auto t = run_one(ConfigKind::Thrifty, 2);

    std::ostringstream os;
    tb::bench::printCampaignJson(os, pt, base);
    tb::bench::printCampaignJson(os, pt, h);
    tb::bench::printCampaignJson(os, pt, t);

    const double h_sav = 1.0 - h.totalEnergy() / base.totalEnergy();
    const double t_sav = 1.0 - t.totalEnergy() / base.totalEnergy();
    const double slow = static_cast<double>(t.execTime) /
                            static_cast<double>(base.execTime) -
                        1.0;
    char buf[128];
    std::snprintf(buf, sizeof(buf),
                  "#metrics %.17g %.17g %.17g\n", h_sav, t_sav,
                  slow);
    os << buf;
    return os.str();
}

/** Split an artifact into (JSON lines, metrics triple). */
bool
parseArtifact(const std::string& artifact, std::string* json,
              double* h, double* t, double* slow)
{
    const std::size_t at = artifact.rfind("#metrics ");
    if (at == std::string::npos)
        return false;
    *json = artifact.substr(0, at);
    return std::sscanf(artifact.c_str() + at,
                       "#metrics %lg %lg %lg", h, t, slow) == 3;
}

} // namespace

int
main(int argc, char** argv)
{
    const harness::CampaignOptions opts =
        harness::CampaignOptions::parse(argc, argv,
                                        /*allowQuick=*/false);
    harness::CampaignSupervisor::installSigintHandler();
    const std::vector<Point> points = pointSpace();

    if (opts.onlyPoint >= 0) {
        if (static_cast<std::size_t>(opts.onlyPoint) >=
            points.size()) {
            std::fprintf(stderr,
                         "--only-point %ld out of range [0, %zu)\n",
                         opts.onlyPoint, points.size());
            return 2;
        }
        const Point& p = points[opts.onlyPoint];
        std::fprintf(stderr, "point %ld: seed=%llu app=%s\n",
                     opts.onlyPoint,
                     static_cast<unsigned long long>(p.seed),
                     p.app.c_str());
        harness::ObsCapture capture(opts, "seeds");
        std::fputs(runPoint(p,
                            static_cast<std::size_t>(opts.onlyPoint),
                            capture.active() ? &capture : nullptr)
                       .c_str(),
                   stdout);
        if (capture.statsEnabled())
            std::fputs(capture.predictionSummaryJson().c_str(),
                       stdout);
        capture.writeFiles();
        return 0;
    }

    harness::ObsCapture capture(opts, "seeds");
    harness::PointTask task;
    task.run = [&](std::size_t i) {
        return runPoint(points[i], i,
                        capture.active() ? &capture : nullptr);
    };
    task.key = [&](std::size_t i) {
        return harness::fnv1a64(
            "seeds|" + std::to_string(points[i].seed) + '|' +
            points[i].app);
    };
    task.seed = [&](std::size_t i) { return points[i].seed; };
    task.repro = [&](std::size_t i) {
        return "robustness_seeds --only-point " + std::to_string(i) +
               opts.reproFlags() + "   # seed=" +
               std::to_string(points[i].seed) + " app=" +
               points[i].app;
    };

    if (!opts.workerAddr.empty())
        return tb::svc::runCampaignWorker(opts, points.size(), task);

    tb::bench::banner("Robustness — headline averages across seeds",
                      harness::SystemConfig::paperDefault());

    harness::CampaignJournal journal;
    if (!opts.journalPath.empty())
        journal.open(opts.journalPath, opts.resume);

    const tb::svc::CampaignRun crun = tb::svc::runCampaignPoints(
        opts, points.size(), task, &journal, "seeds");
    const harness::SupervisorReport& report = crun.report;
    journal.flush();

    std::ostringstream artifact;
    const std::size_t apps_per_seed =
        workloads::targetAppNames().size();
    std::vector<double> halt_savings, thrifty_savings,
        thrifty_slowdowns;
    bool complete = report.failures() == 0 && !report.interrupted;

    if (complete) {
        char row[128];
        std::snprintf(row, sizeof(row), "%6s %16s %16s %14s\n",
                      "seed", "H saving", "T saving", "T slowdown");
        std::string table = row;
        for (std::size_t s = 0; s < kSeeds.size(); ++s) {
            double h_sum = 0.0, t_sum = 0.0, slow_sum = 0.0;
            for (std::size_t a = 0; a < apps_per_seed; ++a) {
                const std::string& art =
                    crun.results[s * apps_per_seed + a];
                std::string json;
                double h = 0.0, t = 0.0, slow = 0.0;
                if (!parseArtifact(art, &json, &h, &t, &slow)) {
                    std::fprintf(stderr,
                                 "FAIL: malformed point artifact\n");
                    return 1;
                }
                artifact << json;
                h_sum += h;
                t_sum += t;
                slow_sum += slow;
            }
            const double n = static_cast<double>(apps_per_seed);
            halt_savings.push_back(100.0 * h_sum / n);
            thrifty_savings.push_back(100.0 * t_sum / n);
            thrifty_slowdowns.push_back(100.0 * slow_sum / n);
            std::snprintf(row, sizeof(row),
                          "%6llu %15.1f%% %15.1f%% %13.2f%%\n",
                          static_cast<unsigned long long>(kSeeds[s]),
                          halt_savings.back(),
                          thrifty_savings.back(),
                          thrifty_slowdowns.back());
            table += row;
        }
        artifact << table;

        const auto mean_sd = [](const std::vector<double>& v) {
            double m = 0.0;
            for (double x : v)
                m += x;
            m /= static_cast<double>(v.size());
            double s2 = 0.0;
            for (double x : v)
                s2 += (x - m) * (x - m);
            return std::pair<double, double>(
                m, std::sqrt(s2 / static_cast<double>(v.size())));
        };
        const auto [hm, hs] = mean_sd(halt_savings);
        const auto [tm, ts] = mean_sd(thrifty_savings);
        const auto [sm, ss] = mean_sd(thrifty_slowdowns);

        char buf[256];
        std::snprintf(buf, sizeof(buf),
                      "\nacross seeds (mean +/- sd):\n"
                      "  Thrifty-Halt saving : %5.1f%% +/- %.1f\n"
                      "  Thrifty saving      : %5.1f%% +/- %.1f  "
                      "(paper ~17%%)\n"
                      "  Thrifty slowdown    : %5.2f%% +/- %.2f  "
                      "(paper ~2%%)\n",
                      hm, hs, tm, ts, sm, ss);
        artifact << buf;
        std::fputs(artifact.str().c_str(), stdout);
        std::fflush(stdout);
    } else {
        std::printf("summary withheld: %zu point failure(s)%s — see "
                    "the failure manifest\n",
                    report.failures(),
                    report.interrupted ? ", interrupted" : "");
    }

    return tb::bench::finishSupervisedCampaign(opts, crun, "seeds",
                                               artifact.str(),
                                               &capture);
}
