/**
 * @file
 * Robustness of the headline result across workload seeds: the Figure
 * 5/6 averages for the five target applications, re-measured with
 * five different synthetic-workload seeds. The paper's claim should
 * not hinge on one draw of the random streams.
 *
 * Each run also emits one JSON line in the shared campaign shape
 * (bench_util.hh), directly comparable with the fault-injection
 * campaign's output (robustness_faults).
 */

#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_util.hh"

int
main()
{
    using namespace tb;
    using harness::ConfigKind;
    tb::bench::banner("Robustness — headline averages across seeds",
                      harness::SystemConfig::paperDefault());

    const std::vector<std::uint64_t> seeds = {1, 2, 3, 5, 8};
    std::vector<double> halt_savings, thrifty_savings,
        thrifty_slowdowns;

    std::printf("%6s %16s %16s %14s\n", "seed", "H saving",
                "T saving", "T slowdown");
    for (std::uint64_t seed : seeds) {
        harness::SystemConfig sys =
            harness::SystemConfig::paperDefault();
        sys.seed = seed;
        double h_sum = 0.0, t_sum = 0.0, slow_sum = 0.0;
        unsigned n = 0;
        tb::bench::CampaignPoint pt;
        pt.campaign = "seeds";
        pt.dim = sys.noc.dimension;
        pt.seed = seed;
        pt.protocol = sys.memory.threeHopForwarding ? "three-hop"
                                                    : "hub";
        for (const auto& name : workloads::targetAppNames()) {
            const auto app = workloads::appByName(name);
            const auto base =
                runExperiment(sys, app, ConfigKind::Baseline);
            const auto h =
                runExperiment(sys, app, ConfigKind::ThriftyHalt);
            const auto t =
                runExperiment(sys, app, ConfigKind::Thrifty);
            tb::bench::printCampaignJson(std::cout, pt, base);
            tb::bench::printCampaignJson(std::cout, pt, h);
            tb::bench::printCampaignJson(std::cout, pt, t);
            h_sum += 1.0 - h.totalEnergy() / base.totalEnergy();
            t_sum += 1.0 - t.totalEnergy() / base.totalEnergy();
            slow_sum += static_cast<double>(t.execTime) /
                            static_cast<double>(base.execTime) -
                        1.0;
            ++n;
        }
        halt_savings.push_back(100.0 * h_sum / n);
        thrifty_savings.push_back(100.0 * t_sum / n);
        thrifty_slowdowns.push_back(100.0 * slow_sum / n);
        std::printf("%6llu %15.1f%% %15.1f%% %13.2f%%\n",
                    static_cast<unsigned long long>(seed),
                    halt_savings.back(), thrifty_savings.back(),
                    thrifty_slowdowns.back());
        std::fflush(stdout);
    }

    auto mean_sd = [](const std::vector<double>& v) {
        double m = 0.0;
        for (double x : v)
            m += x;
        m /= v.size();
        double s2 = 0.0;
        for (double x : v)
            s2 += (x - m) * (x - m);
        return std::pair<double, double>(
            m, std::sqrt(s2 / v.size()));
    };
    const auto [hm, hs] = mean_sd(halt_savings);
    const auto [tm, ts] = mean_sd(thrifty_savings);
    const auto [sm, ss] = mean_sd(thrifty_slowdowns);

    std::printf("\nacross seeds (mean +/- sd):\n");
    std::printf("  Thrifty-Halt saving : %5.1f%% +/- %.1f\n", hm, hs);
    std::printf("  Thrifty saving      : %5.1f%% +/- %.1f  (paper "
                "~17%%)\n",
                tm, ts);
    std::printf("  Thrifty slowdown    : %5.2f%% +/- %.2f  (paper "
                "~2%%)\n",
                sm, ss);
    return 0;
}
