/**
 * @file
 * Fault-injection campaign: graceful degradation of the thrifty
 * runtime under deterministic adversarial conditions
 * (docs/ROBUSTNESS.md).
 *
 * Sweeps all fault kinds at two intensities across machine sizes
 * (2..16 nodes), both forwarding protocols (hub routing and DASH-style
 * three-hop), all three wake-up policies and eight injection seeds,
 * with the protocol checker and its liveness watchdogs armed. A run
 * passes when every barrier releases, every sleeper wakes and no
 * invariant trips; failed points are classified (exception /
 * checker-violation / timeout / crash) in the failure manifest with a
 * one-line repro command each. One point is replayed to prove
 * bit-identical determinism from (spec, seed).
 *
 *   robustness_faults [--quick] [--jobs N] [--deadline-ms N]
 *                     [--retries N] [--backoff-ms N] [--isolate]
 *                     [--journal FILE] [--resume] [--out FILE]
 *                     [--manifest FILE] [--only-point I]
 *                     [--serve ADDR | --worker ADDR] [--cache DIR]
 *
 * Points are independent simulations supervised by
 * harness::CampaignSupervisor: sharded over --jobs threads, bounded
 * by per-point deadlines, retried with deterministic backoff,
 * optionally forked (--isolate) so a crashing point cannot take the
 * campaign down, and journaled so an interrupted campaign resumes
 * with byte-identical final output (--journal/--resume; Ctrl-C
 * flushes the journal and emits the manifest before exiting).
 *
 * Emits one JSON line per run in the shared campaign shape (see
 * bench_util.hh), comparable with robustness_seeds output, plus one
 * supervisor-counter line (kind "supervisor").
 */

#include <cstdio>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "fault/fault_spec.hh"

namespace {

using namespace tb;

/** Canonical all-kinds spec at @p scale of the base rates. */
std::string
specFor(std::uint64_t seed, double scale)
{
    char buf[256];
    std::snprintf(
        buf, sizeof(buf),
        "seed=%llu,drop-wake=%.3f,dup-wake=%.3f,delay-wake=%.3f,"
        "timer-drift=%.3f,timer-fail=%.3f,link-stall=%.3f,"
        "msg-delay=%.3f,flush-delay=%.3f,preempt=%.3f",
        static_cast<unsigned long long>(seed), 0.3 * scale,
        0.2 * scale, 0.2 * scale, 0.5 * scale, 0.3 * scale,
        0.05 * scale, 0.05 * scale, 0.3 * scale, 0.1 * scale);
    return buf;
}

const char*
wakeupName(thrifty::WakeupPolicy p)
{
    switch (p) {
      case thrifty::WakeupPolicy::External: return "external";
      case thrifty::WakeupPolicy::Internal: return "internal";
      case thrifty::WakeupPolicy::Hybrid:   return "hybrid";
    }
    return "?";
}

/** One sweep point of the campaign. */
struct Point
{
    unsigned dim = 1;
    bool threeHop = false;
    thrifty::WakeupPolicy wakeup = thrifty::WakeupPolicy::Hybrid;
    double scale = 1.0;
    std::uint64_t seed = 1;
};

std::string pointLabel(const Point& p);

/** Run one point and return its campaign JSON line (throws on any
 *  simulation/checker failure; the supervisor classifies it). A
 *  non-null @p capture records the point's trace/stats artifacts. */
std::string
runPoint(const Point& p, const workloads::AppProfile& app,
         std::size_t index, harness::ObsCapture* capture)
{
    using harness::ConfigKind;

    harness::SystemConfig sys = harness::SystemConfig::small(p.dim);
    sys.seed = p.seed;
    sys.memory.threeHopForwarding = p.threeHop;

    thrifty::ThriftyConfig custom = thrifty::ThriftyConfig::thrifty();
    custom.wakeup = p.wakeup;
    custom.hardening.enabled = true;

    const fault::FaultSpec spec =
        fault::FaultSpec::parse(specFor(p.seed, p.scale));

    harness::RunOptions opt;
    opt.check = true;
    opt.customConfig = &custom;
    opt.faults = &spec;
    opt.livenessBudget = 200 * kMillisecond;

    harness::ObsCapture::PointScope scope;
    if (capture)
        capture->arm(index, &opt, &scope);

    tb::bench::CampaignPoint pt;
    pt.campaign = "faults";
    pt.dim = p.dim;
    pt.seed = p.seed;
    pt.protocol = p.threeHop ? "three-hop" : "hub";
    pt.wakeup = wakeupName(p.wakeup);

    const auto r =
        harness::runExperiment(sys, app, ConfigKind::Thrifty, opt);
    if (capture)
        capture->deposit(index, r, &scope, pointLabel(p));
    std::ostringstream os;
    tb::bench::printCampaignJson(os, pt, r);
    return os.str();
}

/** Human-readable identity of a point (manifest context). */
std::string
pointLabel(const Point& p)
{
    char buf[128];
    std::snprintf(buf, sizeof(buf),
                  "dim=%u %s %s seed=%llu scale=%.1f", p.dim,
                  p.threeHop ? "three-hop" : "hub",
                  wakeupName(p.wakeup),
                  static_cast<unsigned long long>(p.seed), p.scale);
    return buf;
}

} // namespace

int
main(int argc, char** argv)
{
    using harness::ConfigKind;
    const harness::CampaignOptions opts =
        harness::CampaignOptions::parse(argc, argv,
                                        /*allowQuick=*/true);
    harness::CampaignSupervisor::installSigintHandler();

    // Shrunk workload: the campaign is about surviving faults, not
    // about the headline numbers, so a few barrier instances per run
    // suffice.
    workloads::AppProfile app = workloads::appByName("Radiosity");
    if (app.iterations > 6)
        app.iterations = 6;

    const bool quick = opts.quick;
    const std::vector<unsigned> dims =
        quick ? std::vector<unsigned>{1, 2}
              : std::vector<unsigned>{1, 2, 3, 4};
    const std::vector<std::uint64_t> seeds =
        quick ? std::vector<std::uint64_t>{1, 2, 3}
              : std::vector<std::uint64_t>{1, 2, 3, 4, 5, 6, 7, 8};
    const std::vector<double> scales =
        quick ? std::vector<double>{1.0}
              : std::vector<double>{0.3, 1.0};
    const std::vector<thrifty::WakeupPolicy> wakeups = {
        thrifty::WakeupPolicy::External,
        thrifty::WakeupPolicy::Internal,
        thrifty::WakeupPolicy::Hybrid,
    };

    std::vector<Point> points;
    for (unsigned dim : dims) {
        for (int three_hop = 0; three_hop <= 1; ++three_hop) {
            for (thrifty::WakeupPolicy wk : wakeups) {
                for (double scale : scales) {
                    for (std::uint64_t seed : seeds) {
                        points.push_back(
                            Point{dim, three_hop != 0, wk, scale, seed});
                    }
                }
            }
        }
    }

    // Repro mode: run exactly one point inline, no supervision.
    if (opts.onlyPoint >= 0) {
        if (static_cast<std::size_t>(opts.onlyPoint) >=
            points.size()) {
            std::fprintf(stderr,
                         "--only-point %ld out of range [0, %zu)%s\n",
                         opts.onlyPoint, points.size(),
                         quick ? " (with --quick)" : "");
            return 2;
        }
        const Point& p = points[opts.onlyPoint];
        std::fprintf(stderr, "point %ld: %s\n", opts.onlyPoint,
                     pointLabel(p).c_str());
        harness::ObsCapture capture(opts, "faults");
        std::fputs(runPoint(p, app,
                            static_cast<std::size_t>(opts.onlyPoint),
                            capture.active() ? &capture : nullptr)
                       .c_str(),
                   stdout);
        if (capture.statsEnabled())
            std::fputs(capture.predictionSummaryJson().c_str(),
                       stdout);
        capture.writeFiles();
        return 0;
    }

    harness::ObsCapture capture(opts, "faults");
    harness::PointTask task;
    task.run = [&](std::size_t i) {
        return runPoint(points[i], app, i,
                        capture.active() ? &capture : nullptr);
    };
    task.key = [&](std::size_t i) {
        return harness::fnv1a64("faults|iters=" +
                                std::to_string(app.iterations) + '|' +
                                pointLabel(points[i]));
    };
    task.seed = [&](std::size_t i) { return points[i].seed; };
    task.repro = [&](std::size_t i) {
        return "robustness_faults --only-point " + std::to_string(i) +
               opts.reproFlags() + "   # " + pointLabel(points[i]);
    };

    if (!opts.workerAddr.empty())
        return tb::svc::runCampaignWorker(opts, points.size(), task);

    tb::bench::banner("Robustness — fault-injection campaign",
                      harness::SystemConfig::small(dims.back()));

    harness::CampaignJournal journal;
    if (!opts.journalPath.empty())
        journal.open(opts.journalPath, opts.resume);

    const tb::svc::CampaignRun crun = tb::svc::runCampaignPoints(
        opts, points.size(), task, &journal, "faults");
    const harness::SupervisorReport& report = crun.report;
    journal.flush();

    // Canonical campaign output: deterministic across straight,
    // supervised and resumed runs (--out persists it atomically).
    std::ostringstream artifact;
    std::uint64_t injected = 0, watchdogs = 0, quarantines = 0;
    for (const std::string& line : crun.results) {
        if (line.empty())
            continue;
        artifact << line;
        injected += tb::bench::extractJsonU64(line, "faults_injected");
        watchdogs += tb::bench::extractJsonU64(line, "watchdog_fires");
        quarantines += tb::bench::extractJsonU64(line, "quarantines");
    }

    unsigned failures =
        static_cast<unsigned>(report.failures());

    // Determinism: an identical (spec, seed) pair must replay to
    // bit-identical stats and timing. Skipped when interrupted —
    // resume reruns it.
    if (!report.interrupted) {
        harness::SystemConfig sys = harness::SystemConfig::small(2);
        sys.seed = 1;
        thrifty::ThriftyConfig custom =
            thrifty::ThriftyConfig::thrifty();
        custom.hardening.enabled = true;
        const fault::FaultSpec spec =
            fault::FaultSpec::parse(specFor(1, 1.0));
        harness::RunOptions opt;
        opt.check = true;
        opt.customConfig = &custom;
        opt.faults = &spec;
        opt.livenessBudget = 200 * kMillisecond;
        const auto a = harness::runExperiment(sys, app,
                                              ConfigKind::Thrifty, opt);
        const auto b = harness::runExperiment(sys, app,
                                              ConfigKind::Thrifty, opt);
        if (a.execTime != b.execTime ||
            a.faultCounts != b.faultCounts ||
            a.totalEnergy() != b.totalEnergy() ||
            a.sync.watchdogFires != b.sync.watchdogFires) {
            ++failures;
            std::fprintf(stderr,
                         "FAIL determinism: identical (spec, seed) "
                         "replayed differently\n");
        } else {
            char buf[256];
            std::snprintf(buf, sizeof(buf),
                          "determinism: replay of (%s) bit-identical "
                          "(%llu faults)\n",
                          a.faultSpec.c_str(),
                          static_cast<unsigned long long>(
                              a.faultsInjected()));
            artifact << buf;
        }
    }

    {
        char buf[256];
        std::snprintf(
            buf, sizeof(buf),
            "\ncampaign: %zu run(s), %u failure(s); %llu fault(s) "
            "injected, %llu watchdog fire(s), %llu quarantine(s)\n",
            points.size(), failures,
            static_cast<unsigned long long>(injected),
            static_cast<unsigned long long>(watchdogs),
            static_cast<unsigned long long>(quarantines));
        artifact << buf;
    }
    artifact << (failures == 0 && !report.interrupted ? "PASS"
                                                      : "FAIL")
             << '\n';

    std::fputs(artifact.str().c_str(), stdout);
    std::fflush(stdout);

    if (failures > static_cast<unsigned>(report.failures())) {
        // The determinism check failed: surface it through the exit
        // code even though it is not a supervised point.
        const int rc = tb::bench::finishSupervisedCampaign(
            opts, crun, "faults", artifact.str(), &capture);
        return rc == 0 ? 1 : rc;
    }
    return tb::bench::finishSupervisedCampaign(
        opts, crun, "faults", artifact.str(), &capture);
}
