/**
 * @file
 * Fault-injection campaign: graceful degradation of the thrifty
 * runtime under deterministic adversarial conditions
 * (docs/ROBUSTNESS.md).
 *
 * Sweeps all fault kinds at two intensities across machine sizes
 * (2..16 nodes), both forwarding protocols (hub routing and DASH-style
 * three-hop), all three wake-up policies and eight injection seeds,
 * with the protocol checker and its liveness watchdogs armed. A run
 * passes when every barrier releases, every sleeper wakes and no
 * invariant trips; the campaign fails loudly otherwise. One point is
 * replayed to prove bit-identical determinism from (spec, seed).
 *
 *   robustness_faults [--quick] [--jobs N]
 *
 * Points are independent simulations, so --jobs shards them across
 * host threads; results are emitted in point order, byte-identical to
 * a serial run.
 *
 * Emits one JSON line per run in the shared campaign shape (see
 * bench_util.hh), comparable with robustness_seeds output.
 */

#include <cstdio>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "fault/fault_spec.hh"
#include "harness/parallel_runner.hh"

namespace {

using namespace tb;

/** Canonical all-kinds spec at @p scale of the base rates. */
std::string
specFor(std::uint64_t seed, double scale)
{
    char buf[256];
    std::snprintf(
        buf, sizeof(buf),
        "seed=%llu,drop-wake=%.3f,dup-wake=%.3f,delay-wake=%.3f,"
        "timer-drift=%.3f,timer-fail=%.3f,link-stall=%.3f,"
        "msg-delay=%.3f,flush-delay=%.3f,preempt=%.3f",
        static_cast<unsigned long long>(seed), 0.3 * scale,
        0.2 * scale, 0.2 * scale, 0.5 * scale, 0.3 * scale,
        0.05 * scale, 0.05 * scale, 0.3 * scale, 0.1 * scale);
    return buf;
}

const char*
wakeupName(thrifty::WakeupPolicy p)
{
    switch (p) {
      case thrifty::WakeupPolicy::External: return "external";
      case thrifty::WakeupPolicy::Internal: return "internal";
      case thrifty::WakeupPolicy::Hybrid:   return "hybrid";
    }
    return "?";
}

/** One sweep point of the campaign. */
struct Point
{
    unsigned dim = 1;
    bool threeHop = false;
    thrifty::WakeupPolicy wakeup = thrifty::WakeupPolicy::Hybrid;
    double scale = 1.0;
    std::uint64_t seed = 1;
};

/** What one point produced (deposited by index, emitted in order). */
struct PointResult
{
    bool ok = false;
    std::string json; ///< campaign JSON line (stdout)
    std::string err;  ///< failure diagnostic (stderr)
    std::uint64_t injected = 0;
    std::uint64_t watchdogs = 0;
    std::uint64_t quarantines = 0;
};

} // namespace

int
main(int argc, char** argv)
{
    using harness::ConfigKind;
    bool quick = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0)
            quick = true;
    }
    const unsigned jobs =
        harness::ParallelCampaignRunner::parseJobsArg(argc, argv);

    // Shrunk workload: the campaign is about surviving faults, not
    // about the headline numbers, so a few barrier instances per run
    // suffice.
    workloads::AppProfile app = workloads::appByName("Radiosity");
    if (app.iterations > 6)
        app.iterations = 6;

    const std::vector<unsigned> dims =
        quick ? std::vector<unsigned>{1, 2}
              : std::vector<unsigned>{1, 2, 3, 4};
    const std::vector<std::uint64_t> seeds =
        quick ? std::vector<std::uint64_t>{1, 2, 3}
              : std::vector<std::uint64_t>{1, 2, 3, 4, 5, 6, 7, 8};
    const std::vector<double> scales =
        quick ? std::vector<double>{1.0}
              : std::vector<double>{0.3, 1.0};
    const std::vector<thrifty::WakeupPolicy> wakeups = {
        thrifty::WakeupPolicy::External,
        thrifty::WakeupPolicy::Internal,
        thrifty::WakeupPolicy::Hybrid,
    };

    tb::bench::banner("Robustness — fault-injection campaign",
                      harness::SystemConfig::small(dims.back()));

    std::vector<Point> points;
    for (unsigned dim : dims) {
        for (int three_hop = 0; three_hop <= 1; ++three_hop) {
            for (thrifty::WakeupPolicy wk : wakeups) {
                for (double scale : scales) {
                    for (std::uint64_t seed : seeds) {
                        points.push_back(
                            Point{dim, three_hop != 0, wk, scale, seed});
                    }
                }
            }
        }
    }

    std::vector<PointResult> results(points.size());
    const harness::ParallelCampaignRunner runner(jobs);
    runner.run(points.size(), [&](std::size_t i) {
        const Point& p = points[i];
        PointResult& res = results[i];

        harness::SystemConfig sys = harness::SystemConfig::small(p.dim);
        sys.seed = p.seed;
        sys.memory.threeHopForwarding = p.threeHop;

        thrifty::ThriftyConfig custom = thrifty::ThriftyConfig::thrifty();
        custom.wakeup = p.wakeup;
        custom.hardening.enabled = true;

        const fault::FaultSpec spec =
            fault::FaultSpec::parse(specFor(p.seed, p.scale));

        harness::RunOptions opt;
        opt.check = true;
        opt.customConfig = &custom;
        opt.faults = &spec;
        opt.livenessBudget = 200 * kMillisecond;

        tb::bench::CampaignPoint pt;
        pt.campaign = "faults";
        pt.dim = p.dim;
        pt.seed = p.seed;
        pt.protocol = p.threeHop ? "three-hop" : "hub";
        pt.wakeup = wakeupName(p.wakeup);

        try {
            const auto r = harness::runExperiment(
                sys, app, ConfigKind::Thrifty, opt);
            res.injected = r.faultsInjected();
            res.watchdogs = r.sync.watchdogFires;
            res.quarantines = r.sync.quarantines;
            std::ostringstream os;
            tb::bench::printCampaignJson(os, pt, r);
            res.json = os.str();
            res.ok = true;
        } catch (const std::exception& e) {
            char buf[512];
            std::snprintf(buf, sizeof(buf),
                          "FAIL dim=%u %s %s seed=%llu scale=%.1f: %s\n",
                          p.dim, pt.protocol.c_str(), pt.wakeup.c_str(),
                          static_cast<unsigned long long>(p.seed),
                          p.scale, e.what());
            res.err = buf;
        }
    });

    unsigned failures = 0;
    std::uint64_t injected = 0, watchdogs = 0, quarantines = 0;
    for (const PointResult& res : results) {
        if (res.ok) {
            std::fputs(res.json.c_str(), stdout);
            injected += res.injected;
            watchdogs += res.watchdogs;
            quarantines += res.quarantines;
        } else {
            ++failures;
            std::fputs(res.err.c_str(), stderr);
        }
    }
    std::fflush(stdout);
    const unsigned runs = static_cast<unsigned>(points.size());

    // Determinism: an identical (spec, seed) pair must replay to
    // bit-identical stats and timing.
    {
        harness::SystemConfig sys = harness::SystemConfig::small(2);
        sys.seed = 1;
        thrifty::ThriftyConfig custom =
            thrifty::ThriftyConfig::thrifty();
        custom.hardening.enabled = true;
        const fault::FaultSpec spec =
            fault::FaultSpec::parse(specFor(1, 1.0));
        harness::RunOptions opt;
        opt.check = true;
        opt.customConfig = &custom;
        opt.faults = &spec;
        opt.livenessBudget = 200 * kMillisecond;
        const auto a = harness::runExperiment(sys, app,
                                              ConfigKind::Thrifty, opt);
        const auto b = harness::runExperiment(sys, app,
                                              ConfigKind::Thrifty, opt);
        if (a.execTime != b.execTime ||
            a.faultCounts != b.faultCounts ||
            a.totalEnergy() != b.totalEnergy() ||
            a.sync.watchdogFires != b.sync.watchdogFires) {
            ++failures;
            std::fprintf(stderr,
                         "FAIL determinism: identical (spec, seed) "
                         "replayed differently\n");
        } else {
            std::printf("determinism: replay of (%s) bit-identical "
                        "(%llu faults)\n",
                        a.faultSpec.c_str(),
                        static_cast<unsigned long long>(
                            a.faultsInjected()));
        }
    }

    std::printf("\ncampaign: %u run(s), %u failure(s); %llu fault(s) "
                "injected, %llu watchdog fire(s), %llu "
                "quarantine(s)\n",
                runs, failures,
                static_cast<unsigned long long>(injected),
                static_cast<unsigned long long>(watchdogs),
                static_cast<unsigned long long>(quarantines));
    std::printf("%s\n", failures == 0 ? "PASS" : "FAIL");
    return failures == 0 ? 0 : 1;
}
