/**
 * @file
 * Fault-injection campaign: graceful degradation of the thrifty
 * runtime under deterministic adversarial conditions
 * (docs/ROBUSTNESS.md).
 *
 * Sweeps all fault kinds at two intensities across machine sizes
 * (2..16 nodes), both forwarding protocols (hub routing and DASH-style
 * three-hop), all three wake-up policies and eight injection seeds,
 * with the protocol checker and its liveness watchdogs armed. A run
 * passes when every barrier releases, every sleeper wakes and no
 * invariant trips; the campaign fails loudly otherwise. One point is
 * replayed to prove bit-identical determinism from (spec, seed).
 *
 *   robustness_faults [--quick]
 *
 * Emits one JSON line per run in the shared campaign shape (see
 * bench_util.hh), comparable with robustness_seeds output.
 */

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "fault/fault_spec.hh"

namespace {

using namespace tb;

/** Canonical all-kinds spec at @p scale of the base rates. */
std::string
specFor(std::uint64_t seed, double scale)
{
    char buf[256];
    std::snprintf(
        buf, sizeof(buf),
        "seed=%llu,drop-wake=%.3f,dup-wake=%.3f,delay-wake=%.3f,"
        "timer-drift=%.3f,timer-fail=%.3f,link-stall=%.3f,"
        "msg-delay=%.3f,flush-delay=%.3f,preempt=%.3f",
        static_cast<unsigned long long>(seed), 0.3 * scale,
        0.2 * scale, 0.2 * scale, 0.5 * scale, 0.3 * scale,
        0.05 * scale, 0.05 * scale, 0.3 * scale, 0.1 * scale);
    return buf;
}

const char*
wakeupName(thrifty::WakeupPolicy p)
{
    switch (p) {
      case thrifty::WakeupPolicy::External: return "external";
      case thrifty::WakeupPolicy::Internal: return "internal";
      case thrifty::WakeupPolicy::Hybrid:   return "hybrid";
    }
    return "?";
}

} // namespace

int
main(int argc, char** argv)
{
    using harness::ConfigKind;
    bool quick = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0)
            quick = true;
    }

    // Shrunk workload: the campaign is about surviving faults, not
    // about the headline numbers, so a few barrier instances per run
    // suffice.
    workloads::AppProfile app = workloads::appByName("Radiosity");
    if (app.iterations > 6)
        app.iterations = 6;

    const std::vector<unsigned> dims =
        quick ? std::vector<unsigned>{1, 2}
              : std::vector<unsigned>{1, 2, 3, 4};
    const std::vector<std::uint64_t> seeds =
        quick ? std::vector<std::uint64_t>{1, 2, 3}
              : std::vector<std::uint64_t>{1, 2, 3, 4, 5, 6, 7, 8};
    const std::vector<double> scales =
        quick ? std::vector<double>{1.0}
              : std::vector<double>{0.3, 1.0};
    const std::vector<thrifty::WakeupPolicy> wakeups = {
        thrifty::WakeupPolicy::External,
        thrifty::WakeupPolicy::Internal,
        thrifty::WakeupPolicy::Hybrid,
    };

    tb::bench::banner("Robustness — fault-injection campaign",
                      harness::SystemConfig::small(dims.back()));

    unsigned runs = 0, failures = 0;
    std::uint64_t injected = 0, watchdogs = 0, quarantines = 0;

    for (unsigned dim : dims) {
        for (int three_hop = 0; three_hop <= 1; ++three_hop) {
            for (thrifty::WakeupPolicy wk : wakeups) {
                for (double scale : scales) {
                    for (std::uint64_t seed : seeds) {
                        harness::SystemConfig sys =
                            harness::SystemConfig::small(dim);
                        sys.seed = seed;
                        sys.memory.threeHopForwarding = three_hop != 0;

                        thrifty::ThriftyConfig custom =
                            thrifty::ThriftyConfig::thrifty();
                        custom.wakeup = wk;
                        custom.hardening.enabled = true;

                        const fault::FaultSpec spec =
                            fault::FaultSpec::parse(
                                specFor(seed, scale));

                        harness::RunOptions opt;
                        opt.check = true;
                        opt.customConfig = &custom;
                        opt.faults = &spec;
                        opt.livenessBudget = 200 * kMillisecond;

                        tb::bench::CampaignPoint pt;
                        pt.campaign = "faults";
                        pt.dim = dim;
                        pt.seed = seed;
                        pt.protocol = three_hop ? "three-hop" : "hub";
                        pt.wakeup = wakeupName(wk);

                        ++runs;
                        try {
                            const auto r = harness::runExperiment(
                                sys, app, ConfigKind::Thrifty, opt);
                            injected += r.faultsInjected();
                            watchdogs += r.sync.watchdogFires;
                            quarantines += r.sync.quarantines;
                            tb::bench::printCampaignJson(std::cout, pt,
                                                         r);
                        } catch (const std::exception& e) {
                            ++failures;
                            std::fprintf(stderr,
                                         "FAIL dim=%u %s %s seed=%llu "
                                         "scale=%.1f: %s\n",
                                         dim, pt.protocol.c_str(),
                                         pt.wakeup.c_str(),
                                         static_cast<unsigned long long>(
                                             seed),
                                         scale, e.what());
                        }
                        std::fflush(stdout);
                    }
                }
            }
        }
    }

    // Determinism: an identical (spec, seed) pair must replay to
    // bit-identical stats and timing.
    {
        harness::SystemConfig sys = harness::SystemConfig::small(2);
        sys.seed = 1;
        thrifty::ThriftyConfig custom =
            thrifty::ThriftyConfig::thrifty();
        custom.hardening.enabled = true;
        const fault::FaultSpec spec =
            fault::FaultSpec::parse(specFor(1, 1.0));
        harness::RunOptions opt;
        opt.check = true;
        opt.customConfig = &custom;
        opt.faults = &spec;
        opt.livenessBudget = 200 * kMillisecond;
        const auto a = harness::runExperiment(sys, app,
                                              ConfigKind::Thrifty, opt);
        const auto b = harness::runExperiment(sys, app,
                                              ConfigKind::Thrifty, opt);
        if (a.execTime != b.execTime ||
            a.faultCounts != b.faultCounts ||
            a.totalEnergy() != b.totalEnergy() ||
            a.sync.watchdogFires != b.sync.watchdogFires) {
            ++failures;
            std::fprintf(stderr,
                         "FAIL determinism: identical (spec, seed) "
                         "replayed differently\n");
        } else {
            std::printf("determinism: replay of (%s) bit-identical "
                        "(%llu faults)\n",
                        a.faultSpec.c_str(),
                        static_cast<unsigned long long>(
                            a.faultsInjected()));
        }
    }

    std::printf("\ncampaign: %u run(s), %u failure(s); %llu fault(s) "
                "injected, %llu watchdog fire(s), %llu "
                "quarantine(s)\n",
                runs, failures,
                static_cast<unsigned long long>(injected),
                static_cast<unsigned long long>(watchdogs),
                static_cast<unsigned long long>(quarantines));
    std::printf("%s\n", failures == 0 ? "PASS" : "FAIL");
    return failures == 0 ? 0 : 1;
}
