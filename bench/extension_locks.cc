/**
 * @file
 * Extension bench (paper future work, Section 7): the thrifty
 * mechanism applied to locks. Contended critical sections of varying
 * length, comparing a plain test-and-test-and-set spin lock against
 * the thrifty lock (predict wait, sleep, wake on the release's
 * invalidation).
 */

#include <cstdio>
#include <functional>

#include "bench_util.hh"
#include "thrifty/thrifty_lock.hh"

namespace {

using namespace tb;

struct Outcome
{
    double energy;
    Tick span;
    std::uint64_t sleeps;
};

Outcome
run(Tick hold, Tick think, unsigned rounds, bool thrifty_states)
{
    harness::Machine m(harness::SystemConfig::small(4)); // 16 threads
    thrifty::ThriftyLock lock(
        m.eventQueue(), m.config().numNodes(), m.memory(),
        thrifty_states ? power::SleepStateTable::paperDefault()
                       : power::SleepStateTable(),
        "lk");
    const unsigned n = m.config().numNodes();

    std::function<void(ThreadId, unsigned)> loop = [&](ThreadId tid,
                                                       unsigned r) {
        if (r >= rounds)
            return;
        m.thread(tid).compute(think, [&, tid, r]() {
            lock.acquire(m.thread(tid), [&, tid, r]() {
                m.thread(tid).compute(hold, [&, tid, r]() {
                    lock.release(m.thread(tid), [&, tid, r]() {
                        loop(tid, r + 1);
                    });
                });
            });
        });
    };
    for (ThreadId t = 0; t < n; ++t)
        loop(t, 0);
    const Tick span = m.run();
    return Outcome{m.totalEnergy().totalEnergy(), span,
                   lock.statistics().sleeps};
}

} // namespace

int
main()
{
    const harness::SystemConfig sys = harness::SystemConfig::small(4);
    tb::bench::banner(
        "Extension — thrifty locks (paper future work, Section 7)",
        sys);

    std::printf("16 threads, 6 acquisitions each, think time = "
                "hold/4.\n\n");
    std::printf("%14s %12s %12s %10s %12s\n", "critical sect.",
                "spin energy", "thrifty", "saving", "sleeps");

    for (Tick hold :
         {Tick{20 * kMicrosecond}, Tick{100 * kMicrosecond},
          Tick{500 * kMicrosecond}, Tick{2 * kMillisecond}}) {
        const Outcome spin = run(hold, hold / 4, 6, false);
        const Outcome thrifty = run(hold, hold / 4, 6, true);
        std::printf("%11llu us %11.3f J %11.3f J %9.1f%% %12llu\n",
                    static_cast<unsigned long long>(hold /
                                                    tb::kMicrosecond),
                    spin.energy, thrifty.energy,
                    100.0 * (1.0 - thrifty.energy / spin.energy),
                    static_cast<unsigned long long>(thrifty.sleeps));
        std::printf("%14s time: spin %.2fms vs thrifty %.2fms "
                    "(%+.2f%%)\n",
                    "",
                    tb::ticksToSeconds(spin.span) * 1e3,
                    tb::ticksToSeconds(thrifty.span) * 1e3,
                    100.0 * (static_cast<double>(thrifty.span) /
                                 static_cast<double>(spin.span) -
                             1.0));
        std::fflush(stdout);
    }

    std::printf("\nWith 16 contenders the queue behind a long "
                "critical section is deep; sleeping\nwaiters convert "
                "most of that spin energy into deep-sleep residency "
                "at ~1%%\ntime cost. For short critical sections the "
                "trade-off inverts: every handoff\nto a sleeping "
                "waiter pays an upward transition, which is why locks "
                "are a\nharder target than barriers (no "
                "thread-independent interval to predict) —\nexactly "
                "the open question the paper left as future work.\n");
    return 0;
}
