/**
 * @file
 * Reproduces Table 2: the studied applications sorted by Baseline
 * barrier imbalance, paper value vs measured value on our simulated
 * 64-node machine.
 */

#include <cstdio>

#include "bench_util.hh"

int
main()
{
    using namespace tb;
    const harness::SystemConfig sys =
        harness::SystemConfig::paperDefault();
    bench::banner("Table 2 — applications and barrier imbalance", sys);

    std::printf("%-11s %-28s %10s %10s %9s\n", "Application",
                "synthetic profile", "paper", "measured", "instances");
    std::printf("%-11s %-28s %10s %10s %9s\n", "-----------",
                "-----------------", "-----", "--------", "---------");

    double worst_abs_err = 0.0;
    for (const auto& app : workloads::paperApps()) {
        const auto r =
            harness::runExperiment(sys, app, harness::ConfigKind::Baseline);
        char desc[64];
        std::snprintf(desc, sizeof(desc), "%zu barriers x %u iters",
                      app.prologue.size() + app.loop.size(),
                      app.iterations ? app.iterations : 1);
        const double err =
            100.0 * (r.imbalance() - app.paperImbalance);
        worst_abs_err = std::max(worst_abs_err, std::abs(err));
        std::printf("%-11s %-28s %9.2f%% %9.2f%% %9llu\n",
                    app.name.c_str(), desc,
                    100.0 * app.paperImbalance, 100.0 * r.imbalance(),
                    static_cast<unsigned long long>(r.sync.instances));
        std::fflush(stdout);
    }
    std::printf("\nWorst absolute deviation from Table 2: %.2f "
                "percentage points\n",
                worst_abs_err);
    std::printf("(Near-balanced apps carry a ~1-2pp floor from "
                "check-in serialization;\n see EXPERIMENTS.md.)\n");
    return 0;
}
