/**
 * @file
 * Reproduces Figure 5: normalized energy consumption of the ten
 * SPLASH-2-like applications under the five configurations
 * (Baseline, Thrifty-Halt, Oracle-Halt, Thrifty, Ideal), broken into
 * Compute / Spin / Transition / Sleep, plus the Section 5.1 headline
 * averages over the five target applications.
 *
 *   figure5_energy [--jobs N]   # shard the 50 simulations over N threads
 */

#include <iostream>

#include "bench_util.hh"

int
main(int argc, char** argv)
{
    using namespace tb;
    const unsigned jobs =
        harness::ParallelCampaignRunner::parseJobsArg(argc, argv);
    const harness::SystemConfig sys =
        harness::SystemConfig::paperDefault();
    bench::banner("Figure 5 — normalized energy consumption", sys);

    const auto groups =
        bench::runAppConfigMatrix(sys, workloads::paperApps(), jobs);
    for (const auto& group : groups) {
        harness::report::printBreakdownGroup(std::cout, group,
                                             /*use_energy=*/true);
        harness::report::printStackedBars(std::cout, group,
                                          /*use_energy=*/true);
        std::cout << '\n' << std::flush;
    }

    harness::report::printSummary(std::cout, groups,
                                  workloads::targetAppNames());
    std::cout << "\nPaper reference (Section 5.1): Thrifty saves "
                 "~17% energy on the five target\napplications at "
                 "~2% slowdown; Thrifty-Halt saves ~11%. Shapes to "
                 "check: energy\nordering I <= T <= H <= B on "
                 "imbalanced apps, FFT/Cholesky == Baseline, Ocean\n"
                 "slightly above Baseline.\n";
    return 0;
}
