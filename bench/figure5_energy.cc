/**
 * @file
 * Reproduces Figure 5: normalized energy consumption of the ten
 * SPLASH-2-like applications under the five configurations
 * (Baseline, Thrifty-Halt, Oracle-Halt, Thrifty, Ideal), broken into
 * Compute / Spin / Transition / Sleep, plus the Section 5.1 headline
 * averages over the five target applications.
 *
 *   figure5_energy [--jobs N] [--deadline-ms N] [--retries N]
 *                  [--backoff-ms N] [--isolate] [--journal FILE]
 *                  [--resume] [--out FILE] [--manifest FILE]
 *                  [--only-point I] [--serve ADDR | --worker ADDR]
 *                  [--cache DIR]
 *
 * The 50 (app x configuration) simulations run under the campaign
 * supervisor: sharded over --jobs threads, optionally deadline-bounded
 * / retried / forked per point, and journaled so an interrupted run
 * resumes with byte-identical output (see docs/ROBUSTNESS.md,
 * "Supervised campaigns"). With --serve the same point space is
 * served to --worker processes over the distributed work queue
 * ("Distributed campaigns"), with byte-identical final output.
 */

#include <iostream>
#include <sstream>

#include "bench_util.hh"

int
main(int argc, char** argv)
{
    using namespace tb;
    const harness::CampaignOptions opts =
        harness::CampaignOptions::parse(argc, argv,
                                        /*allowQuick=*/false);
    harness::CampaignSupervisor::installSigintHandler();
    const harness::SystemConfig sys =
        harness::SystemConfig::paperDefault();
    const auto apps = workloads::paperApps();
    harness::ObsCapture capture(opts, "figure5_energy");

    if (opts.onlyPoint >= 0) {
        const auto kinds = bench::figureConfigs();
        const std::size_t count = apps.size() * kinds.size();
        if (static_cast<std::size_t>(opts.onlyPoint) >= count) {
            std::cerr << "--only-point " << opts.onlyPoint
                      << " out of range [0, " << count << ")\n";
            return 2;
        }
        const std::size_t a = opts.onlyPoint / kinds.size();
        const std::size_t k = opts.onlyPoint % kinds.size();
        harness::RunOptions ro;
        harness::ObsCapture::PointScope scope;
        capture.arm(opts.onlyPoint, &ro, &scope);
        const harness::ExperimentResult r =
            harness::runExperiment(sys, apps[a], kinds[k], ro);
        capture.deposit(opts.onlyPoint, r, &scope,
                        apps[a].name + "/" +
                            harness::configName(kinds[k]));
        std::cout << harness::serializeResult(r) << '\n';
        if (capture.statsEnabled())
            std::cout << capture.predictionSummaryJson();
        capture.writeFiles();
        return 0;
    }

    if (!opts.workerAddr.empty()) {
        return bench::runAppConfigMatrixWorker(sys, apps, opts,
                                               "figure5_energy");
    }

    bench::banner("Figure 5 — normalized energy consumption", sys);

    harness::CampaignJournal journal;
    if (!opts.journalPath.empty())
        journal.open(opts.journalPath, opts.resume);

    std::vector<std::vector<harness::ExperimentResult>> groups;
    const svc::CampaignRun run = bench::runAppConfigMatrixSupervised(
        sys, apps, opts, "figure5_energy", &journal, &groups,
        &capture);
    const harness::SupervisorReport& report = run.report;
    journal.flush();

    std::ostringstream artifact;
    if (report.failures() == 0 && !report.interrupted) {
        for (const auto& group : groups) {
            harness::report::printBreakdownGroup(artifact, group,
                                                 /*use_energy=*/true);
            harness::report::printStackedBars(artifact, group,
                                              /*use_energy=*/true);
            artifact << '\n';
        }
        harness::report::printSummary(artifact, groups,
                                      workloads::targetAppNames());
        artifact
            << "\nPaper reference (Section 5.1): Thrifty saves "
               "~17% energy on the five target\napplications at "
               "~2% slowdown; Thrifty-Halt saves ~11%. Shapes to "
               "check: energy\nordering I <= T <= H <= B on "
               "imbalanced apps, FFT/Cholesky == Baseline, Ocean\n"
               "slightly above Baseline.\n";
        std::cout << artifact.str() << std::flush;
    } else {
        std::cout << "figure withheld: " << report.failures()
                  << " point failure(s)"
                  << (report.interrupted ? ", interrupted" : "")
                  << " — see the failure manifest\n";
    }

    return bench::finishSupervisedCampaign(opts, run,
                                           "figure5_energy",
                                           artifact.str(), &capture);
}
