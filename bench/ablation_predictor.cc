/**
 * @file
 * Ablation of the BIT predictor (Section 3.2): the paper's last-value
 * predictor against an exponentially-weighted moving average and the
 * perfect-prediction oracle, on stable (Volrend/FMM) and swinging
 * (Ocean) interval patterns.
 */

#include <cstdio>

#include "bench_util.hh"

int
main()
{
    using namespace tb;
    const harness::SystemConfig sys =
        harness::SystemConfig::paperDefault();
    bench::banner("Ablation — BIT predictor family (Section 3.2)",
                  sys);

    for (const char* name : {"Volrend", "FMM", "Ocean"}) {
        const workloads::AppProfile app = workloads::appByName(name);
        const auto base = harness::runExperiment(
            sys, app, harness::ConfigKind::Baseline);
        std::printf("%s\n", name);
        std::printf("  %-16s %9s %9s %9s %9s\n", "predictor", "time",
                    "energy", "sleeps", "cutoffs");

        for (const char* kind : {"last-value", "moving-average"}) {
            thrifty::ThriftyConfig cfg =
                thrifty::ThriftyConfig::thrifty();
            cfg.predictorKind = kind;
            harness::RunOptions opt;
            opt.customConfig = &cfg;
            const auto r = harness::runExperiment(
                sys, app, harness::ConfigKind::Thrifty, opt);
            std::printf(
                "  %-16s %8.1f%% %8.1f%% %9llu %9llu\n", kind,
                100.0 * static_cast<double>(r.execTime) /
                    static_cast<double>(base.execTime),
                100.0 * r.totalEnergy() / base.totalEnergy(),
                static_cast<unsigned long long>(r.sync.sleeps),
                static_cast<unsigned long long>(r.sync.cutoffs));
            std::fflush(stdout);
        }
        {
            // Oracle with the full state table == Ideal prediction.
            thrifty::ThriftyConfig cfg =
                thrifty::ThriftyConfig::thrifty();
            cfg.oracle = true;
            harness::RunOptions opt;
            opt.customConfig = &cfg;
            const auto r = harness::runExperiment(
                sys, app, harness::ConfigKind::Thrifty, opt);
            std::printf(
                "  %-16s %8.1f%% %8.1f%% %9llu %9s\n", "oracle",
                100.0 * static_cast<double>(r.execTime) /
                    static_cast<double>(base.execTime),
                100.0 * r.totalEnergy() / base.totalEnergy(),
                static_cast<unsigned long long>(r.sync.sleeps), "-");
        }
        std::printf("\n");
    }
    std::printf("Paper reference: 'simple last-value prediction of "
                "PC-indexed barrier interval\ntime was very accurate' "
                "for most applications; Ocean's swings defeat it\n"
                "(Section 5.2), and smoothing does not rescue a "
                "bimodal pattern either.\n");
    return 0;
}
