/**
 * @file
 * Exploring hypothetical low-power sleep states: how do savings move
 * if transitions get faster or deeper states become available? The
 * sleep() table is fully user-configurable; this example sweeps
 * transition latency and state depth on a Volrend-like workload.
 *
 * This is the "what hardware should we ask for" question a system
 * architect would use this library to answer.
 */

#include <cstdio>

#include "harness/experiment.hh"
#include "power/sleep_states.hh"
#include "workloads/app_profile.hh"

namespace {

tb::power::SleepStateTable
scaledTable(double latency_scale)
{
    using namespace tb;
    std::vector<power::SleepState> states;
    for (std::size_t i = 0;
         i < power::SleepStateTable::paperDefault().size(); ++i) {
        power::SleepState s =
            power::SleepStateTable::paperDefault().at(i);
        s.transitionLatency = static_cast<Tick>(
            static_cast<double>(s.transitionLatency) * latency_scale);
        states.push_back(s);
    }
    return power::SleepStateTable(states);
}

} // namespace

int
main()
{
    using namespace tb;
    harness::SystemConfig sys = harness::SystemConfig::small(4);

    workloads::AppProfile app = workloads::appByName("Volrend");
    app.iterations = 10; // keep the example snappy

    const auto base =
        harness::runExperiment(sys, app, harness::ConfigKind::Baseline);

    std::printf("Volrend-like workload, %u nodes, Baseline = 100%%.\n\n",
                sys.numNodes());

    std::printf("1) Transition-latency sweep (Table 3 powers, "
                "latencies scaled):\n");
    std::printf("%14s %10s %10s\n", "latency scale", "energy", "time");
    for (double scale : {0.25, 0.5, 1.0, 2.0, 4.0, 8.0}) {
        thrifty::ThriftyConfig cfg = thrifty::ThriftyConfig::thrifty();
        cfg.states = scaledTable(scale);
        harness::RunOptions opt;
        opt.customConfig = &cfg;
        const auto r = harness::runExperiment(
            sys, app, harness::ConfigKind::Thrifty, opt);
        std::printf("%13.2fx %9.1f%% %9.2f%%\n", scale,
                    100.0 * r.totalEnergy() / base.totalEnergy(),
                    100.0 * static_cast<double>(r.execTime) /
                        static_cast<double>(base.execTime));
        std::fflush(stdout);
    }

    std::printf("\n2) A hypothetical ultra-deep state (99.9%% savings, "
                "200us transitions)\n   on top of Table 3:\n");
    {
        std::vector<power::SleepState> states;
        for (std::size_t i = 0;
             i < power::SleepStateTable::paperDefault().size(); ++i)
            states.push_back(
                power::SleepStateTable::paperDefault().at(i));
        power::SleepState ultra;
        ultra.name = "UltraDeep";
        ultra.powerFraction = 0.001;
        ultra.transitionLatency = 200 * kMicrosecond;
        ultra.snoopable = false;
        ultra.voltageReduced = true;
        states.push_back(ultra);

        thrifty::ThriftyConfig cfg = thrifty::ThriftyConfig::thrifty();
        cfg.states = power::SleepStateTable(states);
        harness::RunOptions opt;
        opt.customConfig = &cfg;
        const auto r = harness::runExperiment(
            sys, app, harness::ConfigKind::Thrifty, opt);
        std::printf("   energy %.1f%%, time %.2f%% of Baseline\n",
                    100.0 * r.totalEnergy() / base.totalEnergy(),
                    100.0 * static_cast<double>(r.execTime) /
                        static_cast<double>(base.execTime));
    }

    std::printf("\nTakeaway: at Volrend-scale intervals the savings "
                "are set by the sleep power,\nnot the transition "
                "latency — until the latency stops fitting inside "
                "the stall.\n");
    return 0;
}
