/**
 * @file
 * A guided tour of the coherence substrate and the thrifty barrier's
 * hardware hooks, driving the cache controllers directly (no
 * workload, no barrier objects): MESI state movement, the flag
 * monitor's external wake-up, and the sleeping cache's deferred
 * invalidations — the machinery of Section 3.3.
 */

#include <cstdio>

#include "mem/memory_system.hh"
#include "noc/network.hh"
#include "sim/event_queue.hh"

namespace {

using namespace tb;

const char*
st(mem::LineState s)
{
    return mem::lineStateName(s);
}

struct Demo
{
    EventQueue eq;
    noc::Network net;
    mem::MemorySystem mem;

    Demo() : net(eq, netCfg()), mem(eq, net, mem::MemoryConfig{}) {}

    static noc::NetworkConfig
    netCfg()
    {
        noc::NetworkConfig c;
        c.dimension = 2; // 4 nodes
        return c;
    }

    std::uint64_t
    load(NodeId n, Addr a)
    {
        std::uint64_t out = 0;
        mem.controller(n).load(a, [&](std::uint64_t v) { out = v; });
        eq.run();
        return out;
    }

    void
    store(NodeId n, Addr a, std::uint64_t v)
    {
        mem.controller(n).store(a, v, []() {});
        eq.run();
    }

    void
    states(Addr a, const char* label)
    {
        std::printf("  [%6.1fus] %-34s L2 states:",
                    static_cast<double>(eq.now()) / kMicrosecond,
                    label);
        for (NodeId n = 0; n < 4; ++n)
            std::printf(" n%u=%s", n, st(mem.controller(n).l2State(a)));
        std::printf("\n");
    }
};

} // namespace

int
main()
{
    Demo d;
    const Addr flag = d.mem.addressMap().allocShared(4096) + 64;

    std::printf("== 1. MESI movement on a shared line ==\n");
    d.load(0, flag);
    d.states(flag, "node0 loads (miss -> Exclusive)");
    d.load(1, flag);
    d.states(flag, "node1 loads (owner downgrades)");
    d.store(2, flag, 7);
    d.states(flag, "node2 stores (sharers invalidated)");
    d.load(3, flag);
    d.states(flag, "node3 loads dirty line (M -> S + S)");

    std::printf("\n== 2. External wake-up: the flag monitor ==\n");
    // Node 1 plays the early-arriving thread: it arms the monitor for
    // flag==8 and "sleeps"; node 0 plays the last thread and flips.
    bool asleep = false;
    d.mem.controller(1).setWakeHandler([&](mem::WakeReason r) {
        std::printf("  [%6.1fus] node1 WOKEN (%s)\n",
                    static_cast<double>(d.eq.now()) / kMicrosecond,
                    mem::wakeReasonName(r));
        asleep = false;
        return d.eq.now();
    });
    d.mem.controller(1).armFlagMonitor(flag, 8, [&](bool already) {
        std::printf("  [%6.1fus] node1 armed monitor (already "
                    "flipped: %s) -> sleeping\n",
                    static_cast<double>(d.eq.now()) / kMicrosecond,
                    already ? "yes" : "no");
        asleep = !already;
    });
    d.eq.run();
    std::printf("  [%6.1fus] node0 flips the flag to 8...\n",
                static_cast<double>(d.eq.now()) / kMicrosecond);
    d.store(0, flag, 8);
    std::printf("  node1 %s\n",
                asleep ? "STILL ASLEEP (bug!)" : "is awake again");

    std::printf("\n== 3. Deferred invalidations while non-snoopable "
                "==\n");
    const Addr data = flag + 128;
    d.load(1, data);
    d.load(3, data); // two sharers
    d.mem.controller(1).setSnoopable(false);
    std::printf("  node1's cache gated (deep sleep); node0 writes "
                "the line...\n");
    d.store(0, data, 99);
    std::printf("  store completed (node1 acked without cache "
                "access); deferred invals at node1: %zu\n",
                d.mem.controller(1).deferredInvalidations());
    d.mem.controller(1).setSnoopable(true);
    std::printf("  node1 wakes: deferred invalidation applied, L2 "
                "state = %s\n",
                st(d.mem.controller(1).l2State(data)));
    std::printf("  node1 reloads and sees the new value: %llu\n",
                static_cast<unsigned long long>(d.load(1, data)));
    return 0;
}
