/**
 * @file
 * Building custom workloads: sweep the barrier imbalance of a
 * synthetic application and watch the thrifty barrier's savings grow
 * with it — the paper's central proportionality ("energy waste is
 * largely proportional to the barrier imbalance").
 *
 * Also demonstrates mixing a non-repeating prologue (FFT-style, where
 * the PC-indexed predictor never warms up) with a predictable main
 * loop.
 */

#include <cstdio>

#include "harness/experiment.hh"
#include "workloads/app_profile.hh"

namespace {

tb::workloads::AppProfile
makeApp(double imbalance_cv)
{
    using namespace tb;
    workloads::AppProfile app;
    app.name = "sweep";

    // A couple of one-shot initialization barriers: these always run
    // conventionally (no history for their PCs).
    for (unsigned i = 0; i < 2; ++i) {
        workloads::PhaseSpec pre;
        pre.pc = 0x9000 + i;
        pre.meanCompute = 200 * kMicrosecond;
        pre.imbalanceCv = imbalance_cv;
        app.prologue.push_back(pre);
    }

    // The main loop: three barriers per iteration.
    for (unsigned i = 0; i < 3; ++i) {
        workloads::PhaseSpec p;
        p.pc = 0x1000 + i;
        p.meanCompute = (400 + 150 * i) * kMicrosecond;
        p.imbalanceCv = imbalance_cv;
        p.memAccesses = 16;
        app.loop.push_back(p);
    }
    app.iterations = 10;
    return app;
}

} // namespace

int
main()
{
    using namespace tb;
    harness::SystemConfig sys = harness::SystemConfig::small(4);

    std::printf("Imbalance sweep on a %u-node machine "
                "(3-barrier loop + 2-barrier prologue):\n\n",
                sys.numNodes());
    std::printf("%12s %12s %12s %12s %10s\n", "imbalanceCv",
                "measured", "energy", "time", "sleeps");

    for (double cv : {0.0, 0.02, 0.05, 0.10, 0.20, 0.40}) {
        const workloads::AppProfile app = makeApp(cv);
        const auto base = harness::runExperiment(
            sys, app, harness::ConfigKind::Baseline);
        const auto thrifty = harness::runExperiment(
            sys, app, harness::ConfigKind::Thrifty);
        std::printf(
            "%12.2f %11.1f%% %11.1f%% %11.2f%% %10llu\n", cv,
            100.0 * base.imbalance(),
            100.0 * thrifty.totalEnergy() / base.totalEnergy(),
            100.0 * static_cast<double>(thrifty.execTime) /
                static_cast<double>(base.execTime),
            static_cast<unsigned long long>(thrifty.sync.sleeps));
        std::fflush(stdout);
    }

    std::printf("\nEnergy (as %% of Baseline) falls as imbalance "
                "grows; execution time stays\nwithin a couple of "
                "percent throughout.\n");
    return 0;
}
